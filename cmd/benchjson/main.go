// Command benchjson folds `go test -bench` text output into a stable JSON
// artifact. Feed it one or more result files (or stdin) produced with
// -benchmem -count N; it groups the repeated runs of each benchmark and
// records every metric sample (ns/op, B/op, allocs/op, and custom
// b.ReportMetric units such as finalWL) plus min and median summaries.
//
// With -compare it instead diffs two previously-emitted JSON artifacts,
// reporting the per-benchmark median delta of one metric (ns/op by default)
// and exiting nonzero when any shared benchmark regressed past -threshold —
// the perf-trajectory gate between PR snapshots.
//
// Usage:
//
//	go test -bench . -benchmem -count 6 ./... | benchjson -o BENCH_PR2.json
//	benchjson -compare -threshold 1.30 BENCH_PR2.json BENCH_PR5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metric holds the repeated-run samples of one benchmark metric.
type metric struct {
	Samples []float64 `json:"samples"`
	Min     float64   `json:"min"`
	Median  float64   `json:"median"`
}

// benchmark is one named benchmark aggregated over -count runs.
type benchmark struct {
	Name       string             `json:"name"`
	Runs       int                `json:"runs"`
	Iterations []int64            `json:"iterations"`
	Metrics    map[string]*metric `json:"metrics"`
}

// report is the top-level JSON document.
type report struct {
	Benchmarks []*benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "-", "output path (- for stdout)")
	compare := flag.Bool("compare", false, "diff two benchjson files (old.json new.json) instead of parsing bench output")
	threshold := flag.Float64("threshold", 1.25, "compare mode: fail when a shared benchmark's new median exceeds old × threshold")
	metricFlag := flag.String("metric", "ns/op", "compare mode: metric to diff")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(1)
		}
		if *threshold <= 0 {
			fmt.Fprintf(os.Stderr, "benchjson: -threshold must be > 0, got %v\n", *threshold)
			os.Exit(1)
		}
		regressed, err := runCompare(flag.Arg(0), flag.Arg(1), *metricFlag, *threshold, os.Stdout, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past ×%.2f: %s\n",
				len(regressed), *threshold, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}

	rep, err := collect(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	if err := emit(rep, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// load reads a previously-emitted benchjson artifact.
func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// runCompare diffs the medians of one metric between two artifacts, writing
// a per-benchmark report to w (old-file order). Comparison keys strictly on
// benchmark name, so a benchmark present on only one side has nothing to
// diff: it is surfaced as a warning on warn (and noted in the report) but
// is never a failure — adding a benchmark must not require a lockstep
// baseline edit. runCompare returns the names of shared benchmarks whose
// new median exceeds old × threshold.
func runCompare(oldPath, newPath, metricName string, threshold float64, w, warn io.Writer) ([]string, error) {
	oldRep, err := load(oldPath)
	if err != nil {
		return nil, err
	}
	newRep, err := load(newPath)
	if err != nil {
		return nil, err
	}
	newByName := make(map[string]*benchmark, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		newByName[b.Name] = b
	}
	var regressed []string
	seen := make(map[string]bool, len(oldRep.Benchmarks))
	fmt.Fprintf(w, "compare %s -> %s (%s median, fail > x%.2f)\n", oldPath, newPath, metricName, threshold)
	for _, ob := range oldRep.Benchmarks {
		seen[ob.Name] = true
		om := ob.Metrics[metricName]
		nb := newByName[ob.Name]
		if nb == nil {
			fmt.Fprintf(w, "  %-60s removed\n", ob.Name)
			fmt.Fprintf(warn, "benchjson: warning: %s only in %s (removed?), not compared\n", ob.Name, oldPath)
			continue
		}
		nm := nb.Metrics[metricName]
		if om == nil || nm == nil || om.Median == 0 {
			fmt.Fprintf(w, "  %-60s no %s to compare\n", ob.Name, metricName)
			continue
		}
		ratio := nm.Median / om.Median
		mark := ""
		if ratio > threshold {
			mark = "  REGRESSED"
			regressed = append(regressed, ob.Name)
		}
		fmt.Fprintf(w, "  %-60s %14.1f -> %14.1f  x%.3f (%+.1f%%)%s\n",
			ob.Name, om.Median, nm.Median, ratio, (ratio-1)*100, mark)
	}
	for _, nb := range newRep.Benchmarks {
		if !seen[nb.Name] {
			fmt.Fprintf(w, "  %-60s added\n", nb.Name)
			fmt.Fprintf(warn, "benchjson: warning: %s only in %s (added?), not compared\n", nb.Name, newPath)
		}
	}
	return regressed, nil
}

// collect parses every input source in order and aggregates by benchmark
// name, preserving first-seen order.
func collect(paths []string) (*report, error) {
	rep := &report{}
	index := map[string]*benchmark{}
	if len(paths) == 0 {
		if err := parse(os.Stdin, rep, index); err != nil {
			return nil, err
		}
		return finish(rep), nil
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		err = parse(f, rep, index)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return finish(rep), nil
}

// parse scans one `go test -bench` output stream for result lines of the
// shape
//
//	BenchmarkName-4   123   4567 ns/op   89 B/op   1 allocs/op
//
// and merges the (value, unit) pairs into the aggregate. The memory columns
// are optional (runs without -benchmem omit them); unparsable tokens are
// skipped, not fatal.
func parse(r io.Reader, rep *report, index map[string]*benchmark) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." line without a result column
		}
		name := trimProcSuffix(strings.TrimPrefix(fields[0], "Benchmark"))
		b := index[name]
		if b == nil {
			b = &benchmark{Name: name, Metrics: map[string]*metric{}}
			index[name] = b
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
		b.Runs++
		b.Iterations = append(b.Iterations, iters)
		// Metric columns come in (value, unit) pairs, but runs without
		// -benchmem omit B/op and allocs/op, and stray tokens (a trailing
		// note, a lone unit) can break the pairing. Resync on anything that
		// is not a number followed by a unit instead of failing the file.
		for k := 2; k < len(fields); {
			v, err := strconv.ParseFloat(fields[k], 64)
			if err != nil || k+1 >= len(fields) {
				k++
				continue
			}
			unit := fields[k+1]
			m := b.Metrics[unit]
			if m == nil {
				m = &metric{}
				b.Metrics[unit] = m
			}
			m.Samples = append(m.Samples, v)
			k += 2
		}
	}
	return sc.Err()
}

// trimProcSuffix drops the trailing -GOMAXPROCS marker go test appends to
// benchmark names (only the final dash-digits group, so sub-benchmark names
// like sweep/n=60 survive intact).
func trimProcSuffix(name string) string {
	k := strings.LastIndexByte(name, '-')
	if k <= 0 {
		return name
	}
	suffix := name[k+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:k]
}

// finish computes the per-metric summaries.
func finish(rep *report) *report {
	for _, b := range rep.Benchmarks {
		for _, m := range b.Metrics {
			m.Min, m.Median = summarize(m.Samples)
		}
	}
	return rep
}

func summarize(samples []float64) (min, median float64) {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	min = sorted[0]
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return min, sorted[mid]
	}
	return min, (sorted[mid-1] + sorted[mid]) / 2
}

func emit(rep *report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
