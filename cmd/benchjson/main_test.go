package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTableII/ckta/qbp-1         	       1	  52034121 ns/op	        1203 finalWL	        1450 startWL	 5120 B/op	      12 allocs/op
BenchmarkTableII/ckta/qbp-1         	       1	  51782002 ns/op	        1203 finalWL	        1450 startWL	 5120 B/op	      12 allocs/op
BenchmarkComputeEta/kernel/n=60-1   	   12794	     17857 ns/op	       0 B/op	       0 allocs/op
BenchmarkComputeEta/kernel/n=60-1   	   12100	     18003 ns/op	       0 B/op	       0 allocs/op
BenchmarkComputeEta/kernel/n=60-1   	   12500	     17900 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	1.234s
`

func TestParseAggregates(t *testing.T) {
	rep := &report{}
	if err := parse(strings.NewReader(sample), rep, map[string]*benchmark{}); err != nil {
		t.Fatal(err)
	}
	finish(rep)
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	table := rep.Benchmarks[0]
	if table.Name != "TableII/ckta/qbp" {
		t.Fatalf("name = %q (GOMAXPROCS suffix not trimmed?)", table.Name)
	}
	if table.Runs != 2 || len(table.Iterations) != 2 {
		t.Fatalf("runs = %d, iterations = %v", table.Runs, table.Iterations)
	}
	wl := table.Metrics["finalWL"]
	if wl == nil || len(wl.Samples) != 2 || wl.Min != 1203 {
		t.Fatalf("finalWL metric = %+v", wl)
	}
	eta := rep.Benchmarks[1]
	if eta.Name != "ComputeEta/kernel/n=60" {
		t.Fatalf("name = %q (sub-benchmark dash mangled?)", eta.Name)
	}
	ns := eta.Metrics["ns/op"]
	if ns == nil || len(ns.Samples) != 3 {
		t.Fatalf("ns/op = %+v", ns)
	}
	if ns.Min != 17857 || ns.Median != 17900 {
		t.Fatalf("min/median = %v/%v, want 17857/17900", ns.Min, ns.Median)
	}
}

// TestParsePartialMetricColumns covers result lines that do not carry the
// full -benchmem column set: bare ns/op lines, custom metrics without
// memory columns, and stray tokens that would desync the (value, unit)
// pairing.
func TestParsePartialMetricColumns(t *testing.T) {
	cases := []struct {
		name  string
		line  string
		units map[string]float64 // unit -> single expected sample
	}{
		{
			"no benchmem",
			"BenchmarkSolve-8   100   250 ns/op",
			map[string]float64{"ns/op": 250},
		},
		{
			"custom metric only",
			"BenchmarkTableII/ckta-1   1   52034121 ns/op   1203 finalWL",
			map[string]float64{"ns/op": 52034121, "finalWL": 1203},
		},
		{
			"allocs without B/op",
			"BenchmarkGAP-4   500   9000 ns/op   3 allocs/op",
			map[string]float64{"ns/op": 9000, "allocs/op": 3},
		},
		{
			"stray token between pairs",
			"BenchmarkOdd-2   10   100 ns/op   note   7 allocs/op",
			map[string]float64{"ns/op": 100, "allocs/op": 7},
		},
		{
			"trailing value without unit",
			"BenchmarkTail-2   10   100 ns/op   42",
			map[string]float64{"ns/op": 100},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := &report{}
			if err := parse(strings.NewReader(tc.line+"\n"), rep, map[string]*benchmark{}); err != nil {
				t.Fatalf("parse: %v", err)
			}
			if len(rep.Benchmarks) != 1 {
				t.Fatalf("got %d benchmarks, want 1", len(rep.Benchmarks))
			}
			b := rep.Benchmarks[0]
			if len(b.Metrics) != len(tc.units) {
				t.Fatalf("metrics = %v, want units %v", b.Metrics, tc.units)
			}
			for unit, want := range tc.units {
				m := b.Metrics[unit]
				if m == nil || len(m.Samples) != 1 || m.Samples[0] != want {
					t.Errorf("metric %q = %+v, want one sample %v", unit, m, want)
				}
			}
		})
	}
}

func TestSummarizeEvenCount(t *testing.T) {
	min, median := summarize([]float64{4, 1, 3, 2})
	if min != 1 || median != 2.5 {
		t.Fatalf("min/median = %v/%v, want 1/2.5", min, median)
	}
}

// writeArtifact emits a minimal benchjson file from bench-output text.
func writeArtifact(t *testing.T, dir, name, benchText string) string {
	t.Helper()
	rep := &report{}
	if err := parse(strings.NewReader(benchText), rep, map[string]*benchmark{}); err != nil {
		t.Fatal(err)
	}
	finish(rep)
	path := filepath.Join(dir, name)
	if err := emit(rep, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReportsAndGates(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", strings.Join([]string{
		"BenchmarkStable-4   100   1000 ns/op",
		"BenchmarkStable-4   100   1020 ns/op",
		"BenchmarkFaster-4   100   5000 ns/op",
		"BenchmarkSlower-4   100   2000 ns/op",
		"BenchmarkGone-4     100   7000 ns/op",
	}, "\n")+"\n")
	newPath := writeArtifact(t, dir, "new.json", strings.Join([]string{
		"BenchmarkStable-4   100   1010 ns/op",
		"BenchmarkStable-4   100   1030 ns/op",
		"BenchmarkFaster-4   100   1000 ns/op",
		"BenchmarkSlower-4   100   3300 ns/op",
		"BenchmarkNew-4      100   4000 ns/op",
	}, "\n")+"\n")

	var sb, warnings strings.Builder
	regressed, err := runCompare(oldPath, newPath, "ns/op", 1.25, &sb, &warnings)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 1 || regressed[0] != "Slower" {
		t.Fatalf("regressed = %v, want [Slower]", regressed)
	}
	out := sb.String()
	for _, want := range []string{"Stable", "Faster", "REGRESSED", "removed", "added"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// One-side-only benchmarks warn — they never gate, so adding a bench
	// does not require a lockstep baseline edit.
	for _, want := range []string{"warning: Gone only in", "warning: New only in"} {
		if !strings.Contains(warnings.String(), want) {
			t.Fatalf("warnings missing %q:\n%s", want, warnings.String())
		}
	}
	if strings.Contains(warnings.String(), "Stable") {
		t.Fatalf("shared benchmark warned about:\n%s", warnings.String())
	}

	// A looser threshold passes the 1.65× slowdown.
	regressed, err = runCompare(oldPath, newPath, "ns/op", 2.0, &strings.Builder{}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none at ×2.0", regressed)
	}
}

func TestCompareMissingMetricAndBadFile(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", "BenchmarkOnlyAllocs-4   10   5 allocs/op   100 ns/op\n")
	newPath := writeArtifact(t, dir, "new.json", "BenchmarkOnlyAllocs-4   10   9 allocs/op   100 ns/op\n")
	var sb strings.Builder
	regressed, err := runCompare(oldPath, newPath, "finalWL", 1.25, &sb, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 || !strings.Contains(sb.String(), "no finalWL to compare") {
		t.Fatalf("missing-metric handling wrong: regressed=%v out=%q", regressed, sb.String())
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCompare(oldPath, bad, "ns/op", 1.25, &strings.Builder{}, &strings.Builder{}); err == nil {
		t.Fatal("malformed new.json must error")
	}
	if _, err := runCompare(filepath.Join(dir, "absent.json"), newPath, "ns/op", 1.25, &strings.Builder{}, &strings.Builder{}); err == nil {
		t.Fatal("missing old.json must error")
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"Solve-8":           "Solve",
		"Sweep/n=60-1":      "Sweep/n=60",
		"Sweep/n=60":        "Sweep/n=60", // no suffix: left alone
		"Odd-name":          "Odd-name",
		"BenchmarkRawDash-": "BenchmarkRawDash-",
		"workers=2-16":      "workers=2",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
