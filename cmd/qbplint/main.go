// Command qbplint runs the project's invariant-enforcing static analyzers
// (see internal/lint) over package directories.
//
// Usage:
//
//	qbplint [-enable list] [-disable list] [-list] [-tests=false]
//	        [-format text|json|sarif] [-o file]
//	        [-baseline file] [-write-baseline file] [-update-baseline file]
//	        [pattern ...]
//
// Patterns are package directories; a trailing /... walks recursively
// (testdata, vendor and hidden directories are skipped). With no pattern,
// ./... is assumed.
//
// -format selects the report encoding: the default one-line text, a flat
// JSON array, or SARIF 2.1.0 for code-scanning upload. -o writes the report
// to a file instead of stdout (the exit code is unchanged). -baseline
// subtracts the committed findings inventory before reporting, so only new
// findings fail the build; -write-baseline regenerates that inventory from
// the current findings and exits successfully. -update-baseline is the
// one-way ratchet: it rewrites an existing baseline keeping only groups
// still present (at the smaller count), so fixed findings can never return,
// and it refuses to add new ones. -tests=false skips
// type-checking in-package _test.go files (typed analyzers then fall back
// to non-test code only).
//
// Exit codes: 0 — no diagnostics; 1 — at least one diagnostic; 2 — usage or
// load error. CI runs `qbplint ./...` and fails the build on any finding;
// justified exceptions use a //lint:ignore <analyzer> <reason> comment on
// the flagged line or the line above.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable command body: flag parsing, analyzer selection, the
// lint run and report encoding, with every byte written to the supplied
// streams and the process exit code returned.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qbplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	tests := fs.Bool("tests", true, "type-check in-package _test.go files for typed analyzers")
	format := fs.String("format", "text", "report format: text, json or sarif")
	output := fs.String("o", "", "write the report to this file instead of stdout")
	baselinePath := fs.String("baseline", "", "subtract findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write the current findings to this baseline file and exit 0")
	updateBaseline := fs.String("update-baseline", "", "tighten this baseline file to the current findings (never grows it) and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(stderr, "qbplint: unknown -format %q (want text, json or sarif)\n", *format)
		return 2
	}
	analyzers, err := lint.Select(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loader.IncludeTestTypes = *tests
	diags, err := lint.Run(loader, dirs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *writeBaseline != "" {
		f, cerr := os.Create(*writeBaseline)
		if cerr != nil {
			fmt.Fprintln(stderr, cerr)
			return 2
		}
		werr := lint.NewBaseline(diags, loader.ModRoot).Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, werr)
			return 2
		}
		fmt.Fprintf(stderr, "qbplint: wrote %d finding group(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	if *updateBaseline != "" {
		base, rerr := lint.ReadBaseline(*updateBaseline)
		if rerr != nil {
			fmt.Fprintf(stderr, "%v (use -write-baseline to create one)\n", rerr)
			return 2
		}
		tightened, changed := base.Ratchet(diags, loader.ModRoot)
		if !changed {
			fmt.Fprintf(stderr, "qbplint: baseline %s already tight (%d group(s))\n", *updateBaseline, len(tightened.Findings))
			return 0
		}
		if err := tightened.WriteFile(*updateBaseline); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "qbplint: tightened %s: %d -> %d finding group(s)\n", *updateBaseline, len(base.Findings), len(tightened.Findings))
		return 0
	}

	if *baselinePath != "" {
		base, rerr := lint.ReadBaseline(*baselinePath)
		if rerr != nil {
			fmt.Fprintln(stderr, rerr)
			return 2
		}
		diags = base.Filter(diags, loader.ModRoot)
	}

	w := stdout
	if *output != "" {
		f, cerr := os.Create(*output)
		if cerr != nil {
			fmt.Fprintln(stderr, cerr)
			return 2
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = lint.WriteJSON(w, diags, loader.ModRoot)
	case "sarif":
		err = lint.WriteSARIF(w, diags, loader.ModRoot)
	default:
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "qbplint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
