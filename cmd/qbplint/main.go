// Command qbplint runs the project's invariant-enforcing static analyzers
// (see internal/lint) over package directories.
//
// Usage:
//
//	qbplint [-enable list] [-disable list] [-list] [pattern ...]
//
// Patterns are package directories; a trailing /... walks recursively
// (testdata, vendor and hidden directories are skipped). With no pattern,
// ./... is assumed.
//
// Exit codes: 0 — no diagnostics; 1 — at least one diagnostic; 2 — usage or
// load error. CI runs `qbplint ./...` and fails the build on any finding;
// justified exceptions use a //lint:ignore <analyzer> <reason> comment on
// the flagged line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("qbplint", flag.ContinueOnError)
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.Select(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := lint.Run(loader, dirs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qbplint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
