package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixtures = "../../internal/lint/testdata/src"

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list", []string{"-list"}, 0},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"unknown analyzer", []string{"-enable", "no-such", fixtures + "/panic_neg"}, 2},
		{"unknown analyzer in disable", []string{"-disable", "no-such", fixtures + "/panic_neg"}, 2},
		{"empty selection", []string{"-enable", "panic-in-library", "-disable", "panic-in-library", fixtures + "/panic_pos"}, 2},
		{"unknown format", []string{"-format", "xml", fixtures + "/panic_neg"}, 2},
		{"missing dir", []string{fixtures + "/does-not-exist"}, 2},
		{"missing baseline", []string{"-baseline", fixtures + "/no-such.json", fixtures + "/panic_neg"}, 2},
		{"positive fixture", []string{fixtures + "/panic_pos"}, 1},
		{"positive as json", []string{"-format", "json", fixtures + "/panic_pos"}, 1},
		{"positive as sarif", []string{"-format", "sarif", fixtures + "/panic_pos"}, 1},
		{"clean fixture", []string{fixtures + "/panic_neg"}, 0},
		{"disabled analyzer", []string{"-disable", "panic-in-library", fixtures + "/panic_pos"}, 0},
		{"tests disabled", []string{"-tests=false", "-enable", "shadow-err", fixtures + "/shadowerr_neg"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args, io.Discard, io.Discard); got != tc.want {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// TestRunStreams pins the seam contract: diagnostics and usage errors go to
// the stderr the caller supplied, reports and listings to the stdout, so a
// selection mistake is never a silent no-op run.
func TestRunStreams(t *testing.T) {
	var out, errs strings.Builder
	if got := run([]string{"-enable", "no-such"}, &out, &errs); got != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", got)
	}
	if !strings.Contains(errs.String(), `unknown analyzer "no-such"`) {
		t.Errorf("stderr %q does not name the unknown analyzer", errs.String())
	}

	out.Reset()
	errs.Reset()
	if got := run([]string{"-enable", "panic-in-library", "-disable", "panic-in-library"}, &out, &errs); got != 2 {
		t.Fatalf("empty selection exited %d, want 2", got)
	}
	if !strings.Contains(errs.String(), "matches no analyzers") {
		t.Errorf("stderr %q does not explain the empty selection", errs.String())
	}

	out.Reset()
	errs.Reset()
	if got := run([]string{"-list"}, &out, &errs); got != 0 {
		t.Fatalf("-list exited %d, want 0", got)
	}
	if !strings.Contains(out.String(), "lockset-race") || errs.Len() != 0 {
		t.Errorf("-list stdout missing analyzers or stderr non-empty: out=%q errs=%q", out.String(), errs.String())
	}
}

// TestPositiveFixturesFail asserts the exit-code contract on every analyzer's
// positive fixture.
func TestPositiveFixturesFail(t *testing.T) {
	if testing.Short() {
		t.Skip("each run re-warms the source importer")
	}
	for _, dir := range []string{
		"rand_pos", "index_pos", "floateq_pos", "capture_pos", "errdiscard_pos",
		"maporder_pos", "lockbal_pos", "flatbounds_pos", "shadowerr_pos",
	} {
		if got := run([]string{fixtures + "/" + dir}, io.Discard, io.Discard); got != 1 {
			t.Errorf("run(%s) = %d, want 1", dir, got)
		}
	}
}

// TestBaselineWorkflow exercises the write-then-filter round trip: a baseline
// regenerated from a positive fixture turns its exit code from 1 to 0, and
// -write-baseline itself always exits 0.
func TestBaselineWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("each run re-warms the source importer")
	}
	base := filepath.Join(t.TempDir(), "base.json")
	if got := run([]string{"-write-baseline", base, fixtures + "/panic_pos"}, io.Discard, io.Discard); got != 0 {
		t.Fatalf("-write-baseline exited %d, want 0", got)
	}
	if got := run([]string{"-baseline", base, fixtures + "/panic_pos"}, io.Discard, io.Discard); got != 0 {
		t.Errorf("baselined run exited %d, want 0", got)
	}
	// The baseline for panic_pos must not absorb findings elsewhere.
	if got := run([]string{"-baseline", base, fixtures + "/floateq_pos"}, io.Discard, io.Discard); got != 1 {
		t.Errorf("baselined run on other fixture exited %d, want 1", got)
	}
}

// TestOutputFile checks -o writes a parseable report without changing the
// exit code.
func TestOutputFile(t *testing.T) {
	if testing.Short() {
		t.Skip("each run re-warms the source importer")
	}
	out := filepath.Join(t.TempDir(), "report.sarif")
	if got := run([]string{"-format", "sarif", "-o", out, fixtures + "/panic_pos"}, io.Discard, io.Discard); got != 1 {
		t.Errorf("run -o exited %d, want 1", got)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Errorf("unexpected SARIF shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
}
