package main

import "testing"

const fixtures = "../../internal/lint/testdata/src"

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list", []string{"-list"}, 0},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"unknown analyzer", []string{"-enable", "no-such", fixtures + "/panic_neg"}, 2},
		{"missing dir", []string{fixtures + "/does-not-exist"}, 2},
		{"positive fixture", []string{fixtures + "/panic_pos"}, 1},
		{"clean fixture", []string{fixtures + "/panic_neg"}, 0},
		{"disabled analyzer", []string{"-disable", "panic-in-library", fixtures + "/panic_pos"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.want {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// TestPositiveFixturesFail asserts the exit-code contract on every analyzer's
// positive fixture.
func TestPositiveFixturesFail(t *testing.T) {
	if testing.Short() {
		t.Skip("each run re-warms the source importer")
	}
	for _, dir := range []string{"rand_pos", "index_pos", "floateq_pos", "capture_pos", "errdiscard_pos"} {
		if got := run([]string{fixtures + "/" + dir}); got != 1 {
			t.Errorf("run(%s) = %d, want 1", dir, got)
		}
	}
}
