package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	partition "repro"
)

// writeTinyProblem generates a small instance and serializes it to a file,
// returning the path.
func writeTinyProblem(t *testing.T) string {
	t.Helper()
	inst, err := partition.GenerateCircuit(partition.GenerateParams{
		Spec: partition.CircuitSpec{
			Name:              "cli-test",
			Components:        40,
			Wires:             120,
			TimingConstraints: 30,
			Seed:              7,
		},
		GridRows: 2,
		GridCols: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.prob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	werr := partition.WriteProblem(f, inst.Problem)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		t.Fatal(werr)
	}
	return path
}

// TestFlagValidation: every malformed knob is a usage error (exit 2) with a
// message naming the flag — before any file is opened or work is done.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // required substring of stderr
	}{
		{"missing-in", []string{"-method", "qbp"}, "-in is required"},
		{"bad-iterations", []string{"-in", "x.prob", "-iterations", "0"}, "-iterations must be >= 1"},
		{"bad-multistart", []string{"-in", "x.prob", "-multistart", "0"}, "-multistart must be >= 1"},
		{"negative-multistart", []string{"-in", "x.prob", "-multistart", "-3"}, "-multistart must be >= 1"},
		{"bad-workers", []string{"-in", "x.prob", "-workers", "0"}, "-workers must be >= 1"},
		{"bad-timeout", []string{"-in", "x.prob", "-timeout", "-1s"}, "-timeout must be >= 0"},
		{"bad-progress", []string{"-in", "x.prob", "-progress", "-1s"}, "-progress must be >= 0"},
		{"bad-matrix", []string{"-in", "x.prob", "-matrix", "csr"}, `-matrix must be auto, sparse or dense (got "csr")`},
		{"unparsable-flag", []string{"-in", "x.prob", "-iterations", "many"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(context.Background(), tc.args, &stdout, &stderr); code != 2 {
				t.Errorf("exit = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr = %q, want it to mention %q", stderr.String(), tc.want)
			}
			if stdout.Len() != 0 {
				t.Errorf("usage error wrote to stdout: %q", stdout.String())
			}
		})
	}

	// Unknown method: flags parse, the file loads, then the switch rejects.
	prob := writeTinyProblem(t)
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-in", prob, "-method", "annealer"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown method "annealer"`) {
		t.Errorf("stderr = %q, want unknown-method message", stderr.String())
	}
}

// TestReportLines: a real solve prints the report to stdout with the
// stats lines gated on the method, and progress/noise kept on stderr.
func TestReportLines(t *testing.T) {
	prob := writeTinyProblem(t)

	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-in", prob, "-method", "qbp", "-iterations", "3", "-seed", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"method           qbp", "cpu  ", "iterations       ", "matrix           ", "start WL         "} {
		if !strings.Contains(out, want) {
			t.Errorf("qbp report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "stopped          true") {
		t.Errorf("un-cancelled run reports stopped:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "feasible start:") {
		t.Errorf("feasible-start line should go to stderr, got %q", stderr.String())
	}

	// Non-QBP methods have no solver stats: those lines must be absent.
	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), []string{"-in", prob, "-method", "gkl", "-seed", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("gkl exit = %d, stderr: %s", code, stderr.String())
	}
	out = stdout.String()
	if !strings.Contains(out, "method           gkl") {
		t.Errorf("gkl report missing method line:\n%s", out)
	}
	for _, absent := range []string{"iterations       ", "matrix           "} {
		if strings.Contains(out, absent) {
			t.Errorf("gkl report has QBP-only line %q:\n%s", absent, out)
		}
	}
}
