package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	partition "repro"
)

// assertNoTempLitter fails when an atomic write left its temp file behind
// in dir.
func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

// TestInterruptReturnsBestSoFar: cancelling run's context mid-solve (the
// SIGINT path) still produces the full report with stopped=true, writes the
// -o assignment, and exits 3 — not the error code 1.
func TestInterruptReturnsBestSoFar(t *testing.T) {
	prob := writeTinyProblem(t)
	outPath := filepath.Join(t.TempDir(), "best.assign")

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()

	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{
		"-in", prob, "-method", "qbp", "-iterations", "50000000", "-seed", "1", "-o", outPath,
	}, &stdout, &stderr)
	if code != 3 {
		t.Fatalf("exit = %d, want 3 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "stopped          true") {
		t.Errorf("interrupted run did not report stopped:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr missing interrupt notice: %q", stderr.String())
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatalf("best-so-far assignment not written: %v", err)
	}
	a, err := partition.ReadAssignmentAuto(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 40 {
		t.Errorf("assignment has %d components, want 40", len(a))
	}
}

// TestInterruptBeforeSolution: a context cancelled before run starts means
// no incumbent ever exists; that is still the interrupt exit code, with a
// distinct message, and no output file.
func TestInterruptBeforeSolution(t *testing.T) {
	prob := writeTinyProblem(t)
	outPath := filepath.Join(t.TempDir(), "never.assign")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{"-in", prob, "-method", "qbp", "-o", outPath}, &stdout, &stderr)
	if code != 3 {
		t.Fatalf("exit = %d, want 3 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted before a solution existed") {
		t.Errorf("stderr = %q, want no-solution interrupt message", stderr.String())
	}
	if _, err := os.Stat(outPath); !os.IsNotExist(err) {
		t.Errorf("no solution existed but %s was written", outPath)
	}
}

// TestTimeoutStillExitsZero: an expired -timeout is a success (exit 0) with
// stopped=true — only a signal earns exit 3. CI's cancellation smoke
// depends on this distinction.
func TestTimeoutStillExitsZero(t *testing.T) {
	prob := writeTinyProblem(t)
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-in", prob, "-method", "qbp", "-iterations", "50000000", "-seed", "1", "-timeout", "150ms",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "stopped          true") {
		t.Errorf("timed-out run did not report stopped:\n%s", stdout.String())
	}
}

// TestConvertAtomic: -convert round-trips text -> binary through the atomic
// writer with no temp litter, and a failing write (unreachable destination
// directory) is an error that creates nothing.
func TestConvertAtomic(t *testing.T) {
	prob := writeTinyProblem(t)
	dir := t.TempDir()
	bin := filepath.Join(dir, "tiny.bin")

	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-in", prob, "-convert", bin}, &stdout, &stderr); code != 0 {
		t.Fatalf("convert exit = %d, stderr: %s", code, stderr.String())
	}
	assertNoTempLitter(t, dir)
	f, err := os.Open(bin)
	if err != nil {
		t.Fatal(err)
	}
	_, format, err := partition.ReadProblemDetect(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if format != partition.FormatBinary {
		t.Errorf("converted format = %v, want binary", format)
	}

	stderr.Reset()
	missing := filepath.Join(dir, "no-such-dir", "tiny.bin")
	if code := run(context.Background(), []string{"-in", prob, "-convert", missing}, &stdout, &stderr); code != 1 {
		t.Fatalf("convert into missing dir: exit = %d, want 1", code)
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Errorf("failed convert left a file at %s", missing)
	}
}

// TestOutAtomic: -o lands a parseable assignment with no temp litter next
// to it.
func TestOutAtomic(t *testing.T) {
	prob := writeTinyProblem(t)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "tiny.assign")

	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-in", prob, "-method", "qbp", "-iterations", "3", "-seed", "1", "-o", outPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	assertNoTempLitter(t, dir)
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	a, err := partition.ReadAssignmentAuto(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 40 {
		t.Errorf("assignment has %d components, want 40", len(a))
	}
}
