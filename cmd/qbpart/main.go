// Command qbpart partitions a circuit under timing and capacity
// constraints. It reads a problem in the plain-text format (see
// cmd/gencircuit), solves it with the chosen method, validates the solution
// independently and prints a report.
//
// Usage:
//
//	qbpart -in ckta.prob -method qbp -iterations 100 -o ckta.assign
//	qbpart -in ckta.prob -method qbp -multistart 4
//	qbpart -in ckta.prob -method gkl -relax-timing
//	qbpart -in ckta.prob -initial ckta.assign -method gfm
//	qbpart -in ckta.prob -check ckta.assign            # validate only
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	partition "repro"
)

func main() {
	var (
		in         = flag.String("in", "", "problem file (required)")
		method     = flag.String("method", "qbp", "solver: qbp, gfm, gkl or sa")
		iterations = flag.Int("iterations", 100, "QBP iterations")
		relax      = flag.Bool("relax-timing", false, "ignore timing constraints (Table II mode)")
		seed       = flag.Int64("seed", 0, "random seed")
		initial    = flag.String("initial", "", "initial assignment file (default: generated feasible start)")
		out        = flag.String("o", "", "write the final assignment to this file")
		multistart = flag.Int("multistart", 1, "independent QBP starts run concurrently (qbp only)")
		workers    = flag.Int("workers", 1, "goroutines sharding each solve's inner loops; results are identical for any value (qbp only)")
		check      = flag.String("check", "", "validate this assignment file against the problem and exit")
		show       = flag.Bool("show", false, "render the placement grid and wire-length histogram (square grids)")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	p, err := partition.ReadProblem(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	if *check != "" {
		cf, cerr := os.Open(*check)
		if cerr != nil {
			fatal(cerr)
		}
		a, cerr := partition.ReadAssignment(cf)
		cf.Close()
		if cerr != nil {
			fatal(cerr)
		}
		report, cerr := partition.Validate(p, a)
		if cerr != nil {
			fatal(cerr)
		}
		fmt.Print(report)
		if !report.Feasible {
			os.Exit(2)
		}
		return
	}

	var start partition.Assignment
	if *initial != "" {
		af, aerr := os.Open(*initial)
		if aerr != nil {
			fatal(aerr)
		}
		start, aerr = partition.ReadAssignment(af)
		af.Close()
		if aerr != nil {
			fatal(aerr)
		}
	} else {
		t0 := time.Now()
		start, err = partition.FeasibleStart(p, *seed, 40)
		if err != nil {
			fatal(fmt.Errorf("generating feasible start: %w", err))
		}
		fmt.Fprintf(os.Stderr, "feasible start: wire length %d (%.2fs)\n",
			p.WireLength(start), time.Since(t0).Seconds())
	}

	t0 := time.Now()
	var final partition.Assignment
	switch *method {
	case "qbp":
		o := partition.QBPOptions{
			Iterations:  *iterations,
			Initial:     start,
			RelaxTiming: *relax,
			Seed:        *seed,
			Workers:     *workers,
		}
		var res *partition.QBPResult
		var err error
		if *multistart > 1 {
			res, err = partition.SolveQBPMultiStart(p, partition.MultiStartOptions{
				Base: o, Starts: *multistart,
			})
		} else {
			res, err = partition.SolveQBP(p, o)
		}
		if err != nil {
			fatal(err)
		}
		final = res.Assignment
	case "gfm":
		res, serr := partition.SolveGFM(p, start, partition.GFMOptions{RelaxTiming: *relax})
		if serr != nil {
			fatal(serr)
		}
		final = res.Assignment
	case "gkl":
		res, serr := partition.SolveGKL(p, start, partition.GKLOptions{RelaxTiming: *relax})
		if serr != nil {
			fatal(serr)
		}
		final = res.Assignment
	case "sa":
		res, serr := partition.SolveSA(p, partition.SAOptions{
			Initial: start, RelaxTiming: *relax, Seed: *seed,
		})
		if serr != nil {
			fatal(serr)
		}
		final = res.Assignment
	default:
		fatal(fmt.Errorf("unknown method %q (want qbp, gfm, gkl or sa)", *method))
	}
	elapsed := time.Since(t0)

	report, err := partition.Validate(p, final)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("method           %s\n", *method)
	fmt.Printf("cpu              %.2fs\n", elapsed.Seconds())
	fmt.Printf("start WL         %d\n", p.WireLength(start))
	fmt.Print(report)
	if !report.Feasible && !*relax {
		fmt.Fprintln(os.Stderr, "warning: solution violates constraints")
	}

	if *show {
		if err := renderPlacement(p, final); err != nil {
			fmt.Fprintln(os.Stderr, "qbpart: cannot render:", err)
		}
	}

	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		if err := partition.WriteAssignment(of, final); err != nil {
			fatal(err)
		}
	}
}

// renderPlacement draws the placement assuming the partitions form the
// most-square grid with M slots (exact for the built-in generators).
func renderPlacement(p *partition.Problem, a partition.Assignment) error {
	m := p.M()
	rows := 1
	for r := 2; r*r <= m; r++ {
		if m%r == 0 {
			rows = r
		}
	}
	grid := partition.Grid{Rows: rows, Cols: m / rows}
	fmt.Println()
	if err := partition.RenderGrid(os.Stdout, p, grid, a); err != nil {
		return err
	}
	fmt.Println()
	return partition.RenderWireHistogram(os.Stdout, p, a)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qbpart:", err)
	os.Exit(1)
}
