// Command qbpart partitions a circuit under timing and capacity
// constraints. It reads a problem in the plain-text or binary format
// (auto-detected; see cmd/gencircuit), solves it with the chosen method,
// validates the solution independently and prints a report.
//
// Usage:
//
//	qbpart -in ckta.prob -method qbp -iterations 100 -o ckta.assign
//	qbpart -in ckta.prob -method qbp -multistart 4
//	qbpart -in ckta.prob -method qbp -timeout 2s      # best-so-far at deadline
//	qbpart -in ckta.prob -method qbp -progress 500ms  # periodic progress line
//	qbpart -in ckta.prob -method qbp -matrix dense    # force a coupling representation
//	qbpart -in big.prob -multilevel -coarsen-target 2048  # V-cycle for huge instances
//	qbpart -in ckta.prob -method gkl -relax-timing
//	qbpart -in ckta.prob -initial ckta.assign -method gfm
//	qbpart -in ckta.prob -check ckta.assign            # validate only
//	qbpart -in ckta.prob -convert ckta.bin             # text ⇄ binary
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	partition "repro"
	"repro/internal/atomicio"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flags parse from args,
// reports go to stdout, errors and progress to stderr, and the process exit
// code is the return value (0 ok, 1 failure, 2 usage error / infeasible
// check, 3 interrupted by a signal — the best-so-far result, when one
// exists, is still reported and written). ctx carries the interrupt: main
// wires it to SIGINT/SIGTERM so ^C lands on the solvers' cancellation
// contract instead of killing the process mid-write.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qbpart", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in         = fs.String("in", "", "problem file (required)")
		method     = fs.String("method", "qbp", "solver: qbp, gfm, gkl or sa")
		iterations = fs.Int("iterations", 100, "QBP iterations (must be >= 1)")
		relax      = fs.Bool("relax-timing", false, "ignore timing constraints (Table II mode)")
		seed       = fs.Int64("seed", 0, "random seed")
		initial    = fs.String("initial", "", "initial assignment file (default: generated feasible start)")
		out        = fs.String("o", "", "write the final assignment to this file")
		multistart = fs.Int("multistart", 1, "independent QBP starts run concurrently (qbp only, must be >= 1)")
		workers    = fs.Int("workers", 1, "goroutines sharding each solve's inner loops; results are identical for any value (qbp only, must be >= 1)")
		timeout    = fs.Duration("timeout", 0, "wall-clock budget for the solve; at expiry the best solution found so far is reported (0 = none)")
		progress   = fs.Duration("progress", 0, "print a progress line to stderr at most this often (qbp only, 0 = off)")
		matrix     = fs.String("matrix", "auto", "coupling-matrix representation: auto, sparse or dense (qbp only; results are identical for any value)")
		mlevel     = fs.Bool("multilevel", false, "solve with the multi-level V-cycle: coarsen, solve the coarsest level with qbp, refine per level (qbp only)")
		coarsenTgt = fs.Int("coarsen-target", 0, "coarsest-level size handed to the flat solver (multilevel only, 0 = default)")
		check      = fs.String("check", "", "validate this assignment file against the problem and exit")
		convert    = fs.String("convert", "", "rewrite the problem to this file in the other format (text ⇄ binary) and exit")
		show       = fs.Bool("show", false, "render the placement grid and wire-length histogram (square grids)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	usageError := func(msg string) int {
		fmt.Fprintln(stderr, "qbpart:", msg)
		fs.Usage()
		return 2
	}
	fatal := func(err error) int {
		fmt.Fprintln(stderr, "qbpart:", err)
		return 1
	}
	if *in == "" {
		return usageError("-in is required")
	}
	// Validate numeric knobs up front: the packages behind the facade each
	// apply their own defaulting to out-of-range values (and qbp and sa
	// disagree on what a non-positive count means), so a typo like
	// -multistart 0 must be a usage error here, not a silent reinterpretation.
	if *iterations < 1 {
		return usageError(fmt.Sprintf("-iterations must be >= 1 (got %d)", *iterations))
	}
	if *multistart < 1 {
		return usageError(fmt.Sprintf("-multistart must be >= 1 (got %d)", *multistart))
	}
	if *workers < 1 {
		return usageError(fmt.Sprintf("-workers must be >= 1 (got %d)", *workers))
	}
	if *timeout < 0 {
		return usageError(fmt.Sprintf("-timeout must be >= 0 (got %v)", *timeout))
	}
	if *progress < 0 {
		return usageError(fmt.Sprintf("-progress must be >= 0 (got %v)", *progress))
	}
	matrixRep, merr := partition.ParseMatrixRep(*matrix)
	if merr != nil {
		return usageError(fmt.Sprintf("-matrix must be auto, sparse or dense (got %q)", *matrix))
	}
	if *mlevel && *method != "qbp" {
		return usageError(fmt.Sprintf("-multilevel requires -method qbp (got %q)", *method))
	}
	if *mlevel && *initial != "" {
		return usageError("-multilevel derives its own per-level starts; -initial is not supported")
	}
	if *coarsenTgt < 0 {
		return usageError(fmt.Sprintf("-coarsen-target must be >= 0 (got %d)", *coarsenTgt))
	}
	if *coarsenTgt > 0 && !*mlevel {
		return usageError("-coarsen-target only applies with -multilevel")
	}

	f, err := os.Open(*in)
	if err != nil {
		return fatal(err)
	}
	p, format, err := partition.ReadProblemDetect(f)
	f.Close()
	if err != nil {
		return fatal(err)
	}

	if *convert != "" {
		// Convert to whichever format the input was not in. The write is
		// atomic (temp file + rename): a failure mid-write can never leave a
		// truncated problem file at the destination.
		target := partition.FormatBinary
		write := partition.WriteProblemBinary
		if format == partition.FormatBinary {
			target = partition.FormatText
			write = partition.WriteProblem
		}
		if cerr := atomicio.WriteFile(*convert, func(w io.Writer) error {
			return write(w, p)
		}); cerr != nil {
			return fatal(cerr)
		}
		fmt.Fprintf(stderr, "converted %s (%v) -> %s (%v)\n", *in, format, *convert, target)
		return 0
	}

	if *check != "" {
		cf, cerr := os.Open(*check)
		if cerr != nil {
			return fatal(cerr)
		}
		a, cerr := partition.ReadAssignmentAuto(cf)
		cf.Close()
		if cerr != nil {
			return fatal(cerr)
		}
		report, cerr := partition.Validate(p, a)
		if cerr != nil {
			return fatal(cerr)
		}
		fmt.Fprint(stdout, report)
		if !report.Feasible {
			return 2
		}
		return 0
	}

	// One deadline bounds the whole run (feasible-start generation plus the
	// solve): at expiry the solver returns its best incumbent with Stopped
	// set and the report below is produced from it as usual. The signal
	// context stays visible separately so an interrupt (exit 3) is
	// distinguishable from an expired -timeout (exit 0, still a success).
	sigCtx := ctx
	interrupted := func() bool { return sigCtx.Err() != nil }
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var start partition.Assignment
	if *mlevel {
		// The V-cycle derives its own per-level starts (cluster seed at the
		// coarsest level, projection below); a flat feasible-start pass over
		// a million-component instance would dominate the runtime.
	} else if *initial != "" {
		af, aerr := os.Open(*initial)
		if aerr != nil {
			return fatal(aerr)
		}
		start, aerr = partition.ReadAssignmentAuto(af)
		af.Close()
		if aerr != nil {
			return fatal(aerr)
		}
	} else {
		t0 := time.Now()
		start, err = partition.FeasibleStart(ctx, p, *seed, 40)
		if err != nil {
			if interrupted() {
				fmt.Fprintln(stderr, "qbpart: interrupted before a solution existed")
				return 3
			}
			return fatal(fmt.Errorf("generating feasible start: %w", err))
		}
		fmt.Fprintf(stderr, "feasible start: wire length %d (%.2fs)\n",
			p.WireLength(start), time.Since(t0).Seconds())
	}

	// A solver only errors out under cancellation when it was cancelled
	// before producing any incumbent; when that cancellation came from a
	// signal the run is "interrupted", not "failed".
	solveFatal := func(err error) int {
		if interrupted() {
			fmt.Fprintln(stderr, "qbpart: interrupted before a solution existed")
			return 3
		}
		return fatal(err)
	}

	t0 := time.Now()
	var final partition.Assignment
	var stopped bool
	var stats *partition.QBPSolveStats
	var levels []partition.MultilevelLevelStat
	switch *method {
	case "qbp":
		o := partition.QBPOptions{
			Iterations:  *iterations,
			Initial:     start,
			RelaxTiming: *relax,
			Seed:        *seed,
			Workers:     *workers,
			Matrix:      matrixRep,
			OnProgress:  progressPrinter(stderr, *progress),
		}
		if *mlevel {
			mres, merr := partition.SolveMultilevel(ctx, p, partition.MultilevelOptions{
				Coarse:        partition.MultiStartOptions{Base: o, Starts: *multistart},
				CoarsenTarget: *coarsenTgt,
			})
			if merr != nil {
				return solveFatal(merr)
			}
			final, stopped, stats, levels = mres.Assignment, mres.Stopped, &mres.Coarse.Stats, mres.Levels
			break
		}
		var res *partition.QBPResult
		var err error
		if *multistart > 1 {
			res, err = partition.SolveQBPMultiStart(ctx, p, partition.MultiStartOptions{
				Base: o, Starts: *multistart,
			})
		} else {
			res, err = partition.SolveQBP(ctx, p, o)
		}
		if err != nil {
			return solveFatal(err)
		}
		final, stopped, stats = res.Assignment, res.Stopped, &res.Stats
	case "gfm":
		res, serr := partition.SolveGFM(ctx, p, start, partition.GFMOptions{RelaxTiming: *relax})
		if serr != nil {
			return solveFatal(serr)
		}
		final, stopped = res.Assignment, res.Stopped
	case "gkl":
		res, serr := partition.SolveGKL(ctx, p, start, partition.GKLOptions{RelaxTiming: *relax})
		if serr != nil {
			return solveFatal(serr)
		}
		final, stopped = res.Assignment, res.Stopped
	case "sa":
		res, serr := partition.SolveSA(ctx, p, partition.SAOptions{
			Initial: start, RelaxTiming: *relax, Seed: *seed,
		})
		if serr != nil {
			return solveFatal(serr)
		}
		final, stopped = res.Assignment, res.Stopped
	default:
		return usageError(fmt.Sprintf("unknown method %q (want qbp, gfm, gkl or sa)", *method))
	}
	elapsed := time.Since(t0)

	report, err := partition.Validate(p, final)
	if err != nil {
		return fatal(err)
	}
	fmt.Fprintf(stdout, "method           %s\n", *method)
	fmt.Fprintf(stdout, "cpu              %.2fs\n", elapsed.Seconds())
	if stopped {
		fmt.Fprintf(stdout, "stopped          true (deadline/cancellation: best-so-far result)\n")
	}
	if stats != nil {
		fmt.Fprintf(stdout, "iterations       %d (%d starts, %d restarts)\n",
			stats.Iterations, stats.Starts, stats.Restarts)
		fmt.Fprintf(stdout, "matrix           %s (density %.4f, %d arcs)\n",
			stats.Matrix, stats.Density, stats.NNZ)
	}
	if levels != nil {
		sizes := make([]string, len(levels))
		moves := 0
		for k, l := range levels {
			sizes[k] = fmt.Sprintf("%d", l.N)
			moves += l.Moves
		}
		fmt.Fprintf(stdout, "levels           %d (%s components; %d refinement moves)\n",
			len(levels), strings.Join(sizes, " -> "), moves)
	}
	if start != nil {
		fmt.Fprintf(stdout, "start WL         %d\n", p.WireLength(start))
	}
	fmt.Fprint(stdout, report)
	if !report.Feasible && !*relax {
		fmt.Fprintln(stderr, "warning: solution violates constraints")
	}

	if *show {
		if err := renderPlacement(stdout, p, final); err != nil {
			fmt.Fprintln(stderr, "qbpart: cannot render:", err)
		}
	}

	if *out != "" {
		// Atomic for the same reason as -convert: an interrupt or disk error
		// mid-write must not replace a previous assignment with a truncated
		// one.
		if err := atomicio.WriteFile(*out, func(w io.Writer) error {
			return partition.WriteAssignment(w, final)
		}); err != nil {
			return fatal(err)
		}
	}
	if stopped && interrupted() {
		fmt.Fprintln(stderr, "qbpart: interrupted; best-so-far result reported")
		return 3
	}
	return 0
}

// progressPrinter returns an OnProgress callback that writes one status
// line to stderr at most once per interval (0 disables it). The callback
// runs concurrently from every multistart worker, so the rate limiter is
// locked.
func progressPrinter(stderr io.Writer, interval time.Duration) func(partition.QBPProgress) {
	if interval <= 0 {
		return nil
	}
	var mu sync.Mutex
	var last time.Time
	return func(pr partition.QBPProgress) {
		mu.Lock()
		defer mu.Unlock()
		if now := time.Now(); now.Sub(last) >= interval {
			last = now
			fmt.Fprintf(stderr,
				"progress: start %d iter %d/%d best penalized %d restarts %d elapsed %.1fs\n",
				pr.Start, pr.Iteration, pr.Iterations, pr.BestPenalized, pr.Restarts, pr.Elapsed.Seconds())
		}
	}
}

// renderPlacement draws the placement assuming the partitions form the
// most-square grid with M slots (exact for the built-in generators).
func renderPlacement(stdout io.Writer, p *partition.Problem, a partition.Assignment) error {
	m := p.M()
	rows := 1
	for r := 2; r*r <= m; r++ {
		if m%r == 0 {
			rows = r
		}
	}
	grid := partition.Grid{Rows: rows, Cols: m / rows}
	fmt.Fprintln(stdout)
	if err := partition.RenderGrid(stdout, p, grid, a); err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	return partition.RenderWireHistogram(stdout, p, a)
}
