// Command gencircuit emits a synthetic partitioning instance in the
// plain-text problem format: either one of the paper's seven named circuits
// (ckta…cktg, matching Table I exactly) or a parameterized instance.
//
// Usage:
//
//	gencircuit -name ckta > ckta.prob
//	gencircuit -components 200 -wires 1500 -timing 700 -seed 3 > custom.prob
package main

import (
	"flag"
	"fmt"
	"os"

	partition "repro"
)

func main() {
	var (
		name       = flag.String("name", "", "paper circuit name (ckta..cktg); overrides the other knobs")
		components = flag.Int("components", 200, "number of components")
		wires      = flag.Int64("wires", 1500, "total wire count")
		timing     = flag.Int("timing", 700, "number of timing constraints")
		seed       = flag.Int64("seed", 1, "generator seed")
		rows       = flag.Int("rows", 4, "partition grid rows")
		cols       = flag.Int("cols", 4, "partition grid columns")
		fanout     = flag.Int("fanout", 0, "max distinct wire partners per component (0 = unbounded); bounded fan-out yields realistic sparse netlists")
		out        = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if *fanout < 0 {
		fatal(fmt.Errorf("-fanout must be ≥ 0, got %d", *fanout))
	}
	if *name != "" && *fanout > 0 {
		fatal(fmt.Errorf("-fanout applies only to parameterized instances, not the published -name circuits"))
	}

	var inst *partition.Instance
	var err error
	if *name != "" {
		inst, err = partition.NamedCircuit(*name)
	} else {
		inst, err = partition.GenerateCircuit(partition.GenerateParams{
			Spec: partition.CircuitSpec{
				Name:              fmt.Sprintf("custom-%d", *seed),
				Components:        *components,
				Wires:             *wires,
				TimingConstraints: *timing,
				Seed:              *seed,
			},
			GridRows:  *rows,
			GridCols:  *cols,
			MaxFanout: *fanout,
		})
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := partition.WriteProblem(w, inst.Problem); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d components, %d wires, %d timing constraints, %d partitions\n",
		inst.Problem.Circuit.Name, inst.Problem.N(), inst.Problem.Circuit.TotalWireWeight(),
		len(inst.Problem.Circuit.Timing), inst.Problem.M())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gencircuit:", err)
	os.Exit(1)
}
