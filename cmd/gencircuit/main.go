// Command gencircuit emits a synthetic partitioning instance in the
// plain-text or binary problem format: either one of the paper's seven
// named circuits (ckta…cktg, matching Table I exactly) or a parameterized
// instance. With -stream the instance is generated straight into the
// output in binary without materializing the wire list, which is how
// million-component instances are produced.
//
// Usage:
//
//	gencircuit -name ckta > ckta.prob
//	gencircuit -components 200 -wires 1500 -timing 700 -seed 3 > custom.prob
//	gencircuit -name ckta -format binary -o ckta.bin
//	gencircuit -components 1000000 -wires 4000000 -timing 800000 -stream -o huge.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	partition "repro"
	"repro/internal/atomicio"
)

func main() {
	var (
		name       = flag.String("name", "", "paper circuit name (ckta..cktg); overrides the other knobs")
		components = flag.Int("components", 200, "number of components")
		wires      = flag.Int64("wires", 1500, "total wire count")
		timing     = flag.Int("timing", 700, "number of timing constraints")
		seed       = flag.Int64("seed", 1, "generator seed")
		rows       = flag.Int("rows", 4, "partition grid rows")
		cols       = flag.Int("cols", 4, "partition grid columns")
		fanout     = flag.Int("fanout", 0, "max distinct wire partners per component (0 = unbounded); bounded fan-out yields realistic sparse netlists")
		format     = flag.String("format", "text", "output serialization: text or binary")
		stream     = flag.Bool("stream", false, "generate straight to the output in binary, never materializing the wire list (parameterized instances; implies -format binary; no -fanout)")
		out        = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if *fanout < 0 {
		fatal(fmt.Errorf("-fanout must be ≥ 0, got %d", *fanout))
	}
	if *name != "" && *fanout > 0 {
		fatal(fmt.Errorf("-fanout applies only to parameterized instances, not the published -name circuits"))
	}
	if *format != "text" && *format != "binary" {
		fatal(fmt.Errorf("-format must be text or binary, got %q", *format))
	}
	if *stream {
		if *format == "text" && isFlagSet("format") {
			fatal(fmt.Errorf("-stream writes binary only"))
		}
		if *name != "" {
			fatal(fmt.Errorf("-stream applies to parameterized instances; the published -name circuits use the materializing generator"))
		}
		if *fanout > 0 {
			fatal(fmt.Errorf("-fanout is not supported in -stream mode"))
		}
	}

	params := partition.GenerateParams{
		Spec: partition.CircuitSpec{
			Name:              fmt.Sprintf("custom-%d", *seed),
			Components:        *components,
			Wires:             *wires,
			TimingConstraints: *timing,
			Seed:              *seed,
		},
		GridRows:  *rows,
		GridCols:  *cols,
		MaxFanout: *fanout,
	}

	// emit generates the instance into w and leaves the stderr summary line
	// in report. Running it through atomicio.WriteFile below makes -o
	// atomic: a generator or disk failure mid-write (easy to hit with
	// million-component -stream runs) can never leave a truncated instance
	// at the destination.
	var report string
	emit := func(w io.Writer) error {
		if *stream {
			stats, err := partition.StreamCircuit(params, w)
			if err != nil {
				return err
			}
			report = fmt.Sprintf("streamed %s: %d components, %d wires, %d timing constraints, %d partitions (binary)",
				params.Spec.Name, stats.Components, stats.Wires, stats.Timing, stats.Partitions)
			return nil
		}
		var inst *partition.Instance
		var err error
		if *name != "" {
			inst, err = partition.NamedCircuit(*name)
		} else {
			inst, err = partition.GenerateCircuit(params)
		}
		if err != nil {
			return err
		}
		write := partition.WriteProblem
		if *format == "binary" {
			write = partition.WriteProblemBinary
		}
		if err := write(w, inst.Problem); err != nil {
			return err
		}
		report = fmt.Sprintf("generated %s: %d components, %d wires, %d timing constraints, %d partitions (%s)",
			inst.Problem.Circuit.Name, inst.Problem.N(), inst.Problem.Circuit.TotalWireWeight(),
			len(inst.Problem.Circuit.Timing), inst.Problem.M(), *format)
		return nil
	}

	if *out == "" {
		if err := emit(os.Stdout); err != nil {
			fatal(err)
		}
	} else if err := atomicio.WriteFile(*out, emit); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, report)
}

// isFlagSet reports whether the named flag was passed explicitly.
func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gencircuit:", err)
	os.Exit(1)
}
