package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	partition "repro"
	"repro/internal/jobqueue"
)

// server is the HTTP face of a jobqueue.Pool.
type server struct {
	pool    *jobqueue.Pool
	maxBody int64
}

// newServer builds the daemon's handler over pool. maxBody caps request
// bodies in bytes (≤ 0 means 64 MiB).
func newServer(pool *jobqueue.Pool, maxBody int64) http.Handler {
	if maxBody <= 0 {
		maxBody = 64 << 20
	}
	s := &server{pool: pool, maxBody: maxBody}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// submitResponse acknowledges an accepted job.
type submitResponse struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Format     string `json:"format"` // detected problem serialization
	Components int    `json:"components"`
	Partitions int    `json:"partitions"`
	QueueDepth int    `json:"queue_depth"`
}

// statusResponse is the wire shape of a job snapshot.
type statusResponse struct {
	ID          string      `json:"id"`
	State       string      `json:"state"`
	Method      string      `json:"method"`
	Priority    int         `json:"priority"`
	Components  int         `json:"components"`
	Partitions  int         `json:"partitions"`
	SubmittedAt string      `json:"submitted_at"`
	StartedAt   string      `json:"started_at,omitempty"`
	FinishedAt  string      `json:"finished_at,omitempty"`
	Result      *resultBody `json:"result,omitempty"`
	Error       string      `json:"error,omitempty"`
}

// resultBody carries a finished job's solution.
type resultBody struct {
	Assignment       []int      `json:"assignment"`
	Objective        int64      `json:"objective"`
	WireLength       int64      `json:"wire_length"`
	Feasible         bool       `json:"feasible"`
	TimingViolations int        `json:"timing_violations"`
	Stopped          bool       `json:"stopped"`
	Stats            *statsBody `json:"stats,omitempty"`
}

// statsBody is the QBP telemetry summary.
type statsBody struct {
	Starts         int     `json:"starts"`
	Iterations     int     `json:"iterations"`
	Restarts       int     `json:"restarts"`
	EtaFull        int     `json:"eta_full"`
	EtaIncremental int     `json:"eta_incremental"`
	Matrix         string  `json:"matrix"`
	Density        float64 `json:"density"`
	NNZ            int     `json:"nnz"`
}

// progressBody is one SSE progress event payload.
type progressBody struct {
	Start         int   `json:"start"`
	Iteration     int   `json:"iteration"`
	Iterations    int   `json:"iterations"`
	BestPenalized int64 `json:"best_penalized"`
	BestFeasible  int64 `json:"best_feasible"`
	Restarts      int   `json:"restarts"`
	ElapsedMillis int64 `json:"elapsed_ms"`
}

// writeJSON writes v with the given status; encoding a fixed struct cannot
// fail except on a dead connection, where there is nobody left to tell.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError sends a JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// handleSubmit enqueues a solve: the body is the problem in the text or
// binary format (auto-detected), the query parameters are the solve knobs
// (method, iterations, multistart, workers, seed, relax, deadline,
// priority).
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	prob, format, err := partition.ReadProblemDetect(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("problem body exceeds the %d-byte limit", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parsing problem: %v", err))
		return
	}

	req := jobqueue.Request{Problem: prob}
	q := r.URL.Query()
	req.Method = q.Get("method")
	if err := queryInt(q.Get("iterations"), &req.Iterations); err != nil {
		writeError(w, http.StatusBadRequest, "iterations: "+err.Error())
		return
	}
	if err := queryInt(q.Get("multistart"), &req.MultiStart); err != nil {
		writeError(w, http.StatusBadRequest, "multistart: "+err.Error())
		return
	}
	if err := queryInt(q.Get("workers"), &req.Workers); err != nil {
		writeError(w, http.StatusBadRequest, "workers: "+err.Error())
		return
	}
	if err := queryInt(q.Get("priority"), &req.Priority); err != nil {
		writeError(w, http.StatusBadRequest, "priority: "+err.Error())
		return
	}
	if v := q.Get("seed"); v != "" {
		seed, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("seed: invalid integer %q", v))
			return
		}
		req.Seed = seed
	}
	if v := q.Get("relax"); v != "" {
		relax, perr := strconv.ParseBool(v)
		if perr != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("relax: invalid boolean %q", v))
			return
		}
		req.RelaxTiming = relax
	}
	if v := q.Get("deadline"); v != "" {
		d, perr := time.ParseDuration(v)
		if perr != nil || d < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("deadline: invalid duration %q", v))
			return
		}
		req.Deadline = d
	}

	job, err := s.pool.Submit(req)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	st := job.Status()
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:         job.ID(),
		State:      st.State.String(),
		Format:     format.String(),
		Components: st.Components,
		Partitions: st.Partitions,
		QueueDepth: s.pool.Metrics().QueueDepth,
	})
}

// writeSubmitError maps jobqueue admission errors to status codes:
// backpressure is 429 with a Retry-After hint, the size ceiling is 413,
// shutdown is 503, and malformed requests are 400.
func (s *server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobqueue.ErrQueueFull):
		m := s.pool.Metrics()
		retry := 1 + m.QueueDepth/m.Workers
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, jobqueue.ErrTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, err.Error())
	case errors.Is(err, jobqueue.ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// queryInt parses an optional integer query parameter into dst.
func queryInt(v string, dst *int) error {
	if v == "" {
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("invalid integer %q", v)
	}
	*dst = n
	return nil
}

// statusOf renders a job snapshot on the wire.
func statusOf(st jobqueue.Status) statusResponse {
	resp := statusResponse{
		ID:          st.ID,
		State:       st.State.String(),
		Method:      st.Method,
		Priority:    st.Priority,
		Components:  st.Components,
		Partitions:  st.Partitions,
		SubmittedAt: st.SubmittedAt.UTC().Format(time.RFC3339Nano),
	}
	if !st.StartedAt.IsZero() {
		resp.StartedAt = st.StartedAt.UTC().Format(time.RFC3339Nano)
	}
	if !st.FinishedAt.IsZero() {
		resp.FinishedAt = st.FinishedAt.UTC().Format(time.RFC3339Nano)
	}
	if out := st.Outcome; out != nil {
		if out.Err != "" {
			resp.Error = out.Err
		}
		if out.Assignment != nil {
			body := &resultBody{
				Assignment:       out.Assignment,
				Objective:        out.Objective,
				WireLength:       out.WireLength,
				Feasible:         out.Feasible,
				TimingViolations: out.TimingViolations,
				Stopped:          out.Stopped,
			}
			if s := out.Stats; s != nil {
				body.Stats = &statsBody{
					Starts:         s.Starts,
					Iterations:     s.Iterations,
					Restarts:       s.Restarts,
					EtaFull:        s.EtaFull,
					EtaIncremental: s.EtaIncremental,
					Matrix:         s.Matrix,
					Density:        s.Density,
					NNZ:            s.NNZ,
				}
			}
			resp.Result = body
		}
	}
	return resp
}

// handleStatus reports one job.
func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.pool.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, statusOf(job.Status()))
}

// handleList reports every tracked job in submission order.
func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.pool.Jobs()
	out := make([]statusResponse, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, statusOf(j.Status()))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCancel cancels a job: queued jobs move straight to canceled,
// running jobs complete promptly with their best-so-far incumbent.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.pool.Cancel(id) {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	job, _ := s.pool.Job(id)
	writeJSON(w, http.StatusAccepted, statusOf(job.Status()))
}

// handleEvents streams a job's lifecycle as Server-Sent Events: `state`
// events on transitions, rate-limited `progress` events carrying the
// incumbent trajectory, and a final `done` event with the full status
// (including the result) before the stream closes.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.pool.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	events, stop := job.Subscribe(64)
	defer stop()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// Lead with the current state so late subscribers see where they are.
	writeSSE(w, "state", struct {
		State string `json:"state"`
	}{job.Status().State.String()})
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-events:
			if !open {
				// Terminal: one final event with the whole outcome.
				writeSSE(w, "done", statusOf(job.Status()))
				flusher.Flush()
				return
			}
			switch ev.Type {
			case jobqueue.EventState:
				writeSSE(w, "state", struct {
					State string `json:"state"`
				}{ev.State.String()})
			case jobqueue.EventProgress:
				pr := ev.Progress
				writeSSE(w, "progress", progressBody{
					Start:         pr.Start,
					Iteration:     pr.Iteration,
					Iterations:    pr.Iterations,
					BestPenalized: pr.BestPenalized,
					BestFeasible:  pr.BestFeasible,
					Restarts:      pr.Restarts,
					ElapsedMillis: pr.Elapsed.Milliseconds(),
				})
			}
			flusher.Flush()
		}
	}
}

// writeSSE emits one event in the SSE wire format. Marshalling the fixed
// payload shapes cannot fail; a dead connection surfaces on the next
// flush/write and ends the stream.
func writeSSE(w http.ResponseWriter, event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(`{"error":"encoding event"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// handleHealthz reports liveness: 200 while serving, 503 once draining.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.pool.Metrics().Draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the pool snapshot in the Prometheus text
// exposition format, in a fixed deterministic order.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.pool.Metrics()
	var b bytes.Buffer

	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	hist := func(name, help string, h jobqueue.HistogramSnapshot) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", name, h.Sum, name, h.Count)
	}

	gauge("qbpartd_queue_depth", "Jobs waiting to run.", m.QueueDepth)
	gauge("qbpartd_inflight", "Jobs currently solving.", m.InFlight)
	gauge("qbpartd_workers", "Worker goroutines in the solve pool.", m.Workers)
	gauge("qbpartd_queue_capacity", "Bound on queued jobs.", m.QueueCap)
	draining := 0
	if m.Draining {
		draining = 1
	}
	gauge("qbpartd_draining", "1 while the daemon is shutting down.", draining)
	counter("qbpartd_jobs_submitted_total", "Jobs admitted to the queue.", m.Submitted)
	counter("qbpartd_jobs_completed_total", "Jobs finished with a result.", m.Completed)
	counter("qbpartd_jobs_failed_total", "Jobs finished with an error.", m.Failed)
	counter("qbpartd_jobs_canceled_total", "Jobs canceled before producing a result.", m.Canceled)
	counter("qbpartd_jobs_stopped_total", "Completed jobs cut short by a deadline or cancellation (best-so-far results).", m.Stopped)
	counter("qbpartd_rejected_queue_full_total", "Submissions rejected by backpressure (429).", m.RejectedFull)
	counter("qbpartd_rejected_too_large_total", "Submissions rejected by the instance-size ceiling (413).", m.RejectedSize)
	hist("qbpartd_wait_seconds", "Queue wait latency (submission to solve start).", m.WaitSeconds)
	hist("qbpartd_solve_seconds", "Solve latency (start to finish).", m.SolveSeconds)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write(b.Bytes()); err != nil {
		return // client went away mid-scrape
	}
}
