package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	partition "repro"
	"repro/internal/jobqueue"
	"repro/internal/testgen"
)

// newTestDaemon starts an httptest server over a fresh pool and registers
// its drain as cleanup.
func newTestDaemon(t *testing.T, cfg jobqueue.Config) (*httptest.Server, *jobqueue.Pool) {
	t.Helper()
	pool := jobqueue.New(cfg)
	ts := httptest.NewServer(newServer(pool, 1<<20))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := pool.Shutdown(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return ts, pool
}

// problemBytes serializes a small deterministic instance in the requested
// format.
func problemBytes(t *testing.T, seed int64, n int, binary bool) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p, _ := testgen.Random(rng, testgen.Config{N: n, TimingProb: 0.3, CapSlack: 1.5})
	var buf bytes.Buffer
	var err error
	if binary {
		err = partition.WriteProblemBinary(&buf, p)
	} else {
		err = partition.WriteProblem(&buf, p)
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postJob submits a problem body and decodes the acknowledgement.
func postJob(t *testing.T, ts *httptest.Server, body []byte, query string) (submitResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs?"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack submitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return ack, resp
}

// getStatus fetches and decodes one job status.
func getStatus(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
	}
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// pollDone polls a job until it reaches a terminal state.
func pollDone(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, ts, id)
		switch st.State {
		case "done", "failed", "canceled":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertNoGoroutineLeak fails the test at cleanup when the goroutine count
// has not settled back to its starting level.
func assertNoGoroutineLeak(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.Gosched()
			if runtime.NumGoroutine() <= base {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("goroutine leak: %d before, %d after", base, runtime.NumGoroutine())
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// TestSubmitPollResultRoundTrip: submit in both serializations, poll to
// completion, and check the result body — the daemon's core loop.
func TestSubmitPollResultRoundTrip(t *testing.T) {
	assertNoGoroutineLeak(t)
	ts, _ := newTestDaemon(t, jobqueue.Config{Workers: 2, QueueCap: 8})

	for _, tc := range []struct {
		name   string
		binary bool
		format string
	}{
		{"text", false, "text"},
		{"binary", true, "binary"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			body := problemBytes(t, 31, 30, tc.binary)
			ack, resp := postJob(t, ts, body, "method=qbp&iterations=8&seed=5")
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("POST: %d", resp.StatusCode)
			}
			if ack.Format != tc.format {
				t.Errorf("detected format %q, want %q", ack.Format, tc.format)
			}
			if ack.Components != 30 {
				t.Errorf("components = %d, want 30", ack.Components)
			}
			st := pollDone(t, ts, ack.ID)
			if st.State != "done" {
				t.Fatalf("state %q (error %q)", st.State, st.Error)
			}
			if st.Result == nil || len(st.Result.Assignment) != 30 {
				t.Fatal("missing assignment in result")
			}
			if st.Result.Stats == nil || st.Result.Stats.Iterations == 0 {
				t.Error("missing qbp stats")
			}
			if st.Result.Stopped {
				t.Error("unbounded solve reported stopped")
			}
		})
	}
}

// TestFixedSeedIdenticalAcrossDaemons: the same POST against daemons with
// worker pools of 1, 2 and 8 returns the identical assignment.
func TestFixedSeedIdenticalAcrossDaemons(t *testing.T) {
	assertNoGoroutineLeak(t)
	body := problemBytes(t, 32, 40, true)
	var reference []int
	for _, workers := range []int{1, 2, 8} {
		ts, _ := newTestDaemon(t, jobqueue.Config{Workers: workers, QueueCap: 8})
		ack, resp := postJob(t, ts, body, "method=qbp&iterations=10&multistart=3&seed=42")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("workers=%d: POST %d", workers, resp.StatusCode)
		}
		st := pollDone(t, ts, ack.ID)
		if st.State != "done" {
			t.Fatalf("workers=%d: state %q", workers, st.State)
		}
		got := st.Result.Assignment
		if reference == nil {
			reference = got
			continue
		}
		for c := range reference {
			if got[c] != reference[c] {
				t.Fatalf("workers=%d: assignment differs at component %d", workers, c)
			}
		}
	}
}

// TestCancelMidSolveReturnsIncumbent: DELETE on a running job completes it
// with stopped=true and a full assignment.
func TestCancelMidSolveReturnsIncumbent(t *testing.T) {
	assertNoGoroutineLeak(t)
	ts, pool := newTestDaemon(t, jobqueue.Config{Workers: 1, QueueCap: 4})

	body := problemBytes(t, 33, 40, false)
	ack, resp := postJob(t, ts, body, "method=qbp&iterations=50000000&seed=5")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	// Wait for the solve to actually start.
	j, _ := pool.Job(ack.ID)
	for j.Status().State == jobqueue.StateQueued {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let an incumbent form

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+ack.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %d", dresp.StatusCode)
	}
	st := pollDone(t, ts, ack.ID)
	if st.State != "done" {
		t.Fatalf("state %q, want done", st.State)
	}
	if st.Result == nil || !st.Result.Stopped {
		t.Error("cancelled job did not report a stopped best-so-far result")
	}
	if len(st.Result.Assignment) != 40 {
		t.Error("cancelled job missing its incumbent assignment")
	}
}

// TestDeadlineReturnsStopped: a deadline-bounded job completes with
// stopped=true and a feasible assignment.
func TestDeadlineReturnsStopped(t *testing.T) {
	assertNoGoroutineLeak(t)
	ts, _ := newTestDaemon(t, jobqueue.Config{Workers: 1, QueueCap: 4})
	body := problemBytes(t, 34, 40, false)
	ack, resp := postJob(t, ts, body, "method=qbp&iterations=50000000&seed=5&deadline=150ms")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	st := pollDone(t, ts, ack.ID)
	if st.State != "done" || st.Result == nil || !st.Result.Stopped {
		t.Fatalf("deadline job: state %q, want done with stopped=true", st.State)
	}
}

// TestQueueFull429: backpressure answers 429 with a Retry-After hint.
func TestQueueFull429(t *testing.T) {
	assertNoGoroutineLeak(t)
	ts, pool := newTestDaemon(t, jobqueue.Config{Workers: 1, QueueCap: 1})

	long := problemBytes(t, 35, 40, false)
	ack, resp := postJob(t, ts, long, "iterations=50000000&seed=1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST blocker: %d", resp.StatusCode)
	}
	j, _ := pool.Job(ack.ID)
	for j.Status().State == jobqueue.StateQueued {
		time.Sleep(time.Millisecond)
	}

	short := problemBytes(t, 36, 20, false)
	if _, resp := postJob(t, ts, short, "iterations=2"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST queued: %d", resp.StatusCode)
	}
	_, overflow := postJob(t, ts, short, "iterations=2")
	if overflow.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: %d, want 429", overflow.StatusCode)
	}
	if overflow.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	pool.Cancel(ack.ID)
}

// TestAdmission413AndBadRequests: the size ceiling answers 413; garbage
// bodies, bad knobs and unknown methods answer 400; unknown IDs 404.
func TestAdmission413AndBadRequests(t *testing.T) {
	assertNoGoroutineLeak(t)
	ts, _ := newTestDaemon(t, jobqueue.Config{Workers: 1, QueueCap: 4, MaxComponents: 25})

	if _, resp := postJob(t, ts, problemBytes(t, 37, 40, false), ""); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize POST: %d, want 413", resp.StatusCode)
	}
	if _, resp := postJob(t, ts, []byte("not a problem"), ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage POST: %d, want 400", resp.StatusCode)
	}
	small := problemBytes(t, 37, 20, false)
	if _, resp := postJob(t, ts, small, "method=annealer"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad method POST: %d, want 400", resp.StatusCode)
	}
	if _, resp := postJob(t, ts, small, "iterations=lots"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad iterations POST: %d, want 400", resp.StatusCode)
	}
	if _, resp := postJob(t, ts, small, "deadline=-3s"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad deadline POST: %d, want 400", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id GET: %d, want 404", resp.StatusCode)
	}
}

// TestEventStream: the SSE endpoint delivers progress events and a final
// done event carrying the result.
func TestEventStream(t *testing.T) {
	assertNoGoroutineLeak(t)
	ts, _ := newTestDaemon(t, jobqueue.Config{Workers: 1, QueueCap: 4, ProgressInterval: time.Nanosecond})

	// Iterations far beyond the deadline keep the solve alive long enough
	// for the SSE subscription to observe progress; the deadline then ends
	// it with a stopped best-so-far result in the done event.
	body := problemBytes(t, 38, 30, false)
	ack, resp := postJob(t, ts, body, "method=qbp&iterations=50000000&seed=5&deadline=400ms")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}

	sresp, err := http.Get(ts.URL + "/jobs/" + ack.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}

	var sawProgress bool
	var doneData string
	scanner := bufio.NewScanner(sresp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var pr progressBody
				if err := json.Unmarshal([]byte(data), &pr); err != nil {
					t.Fatalf("progress payload: %v", err)
				}
				if pr.Iteration > 0 {
					sawProgress = true
				}
			case "done":
				doneData = data
			}
		}
	}
	if err := scanner.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !sawProgress {
		t.Error("stream delivered no progress events")
	}
	if doneData == "" {
		t.Fatal("stream ended without a done event")
	}
	var final statusResponse
	if err := json.Unmarshal([]byte(doneData), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Result == nil || len(final.Result.Assignment) != 30 {
		t.Errorf("done event incomplete: state %q", final.State)
	}
}

// TestMetricsAndHealth: /metrics exposes the expected series and /healthz
// flips to 503 once draining.
func TestMetricsAndHealth(t *testing.T) {
	assertNoGoroutineLeak(t)
	ts, pool := newTestDaemon(t, jobqueue.Config{Workers: 2, QueueCap: 4})

	ack, resp := postJob(t, ts, problemBytes(t, 39, 20, false), "iterations=3&seed=2")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	pollDone(t, ts, ack.ID)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mbody)
	for _, want := range []string{
		"qbpartd_queue_depth 0",
		"qbpartd_workers 2",
		"qbpartd_jobs_submitted_total 1",
		"qbpartd_jobs_completed_total 1",
		`qbpartd_solve_seconds_bucket{le="+Inf"} 1`,
		"qbpartd_solve_seconds_count 1",
		"qbpartd_wait_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d, want 200", hresp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pool.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	hresp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", hresp.StatusCode)
	}

	// Submissions during drain: 503 with Retry-After.
	_, dresp := postJob(t, ts, problemBytes(t, 39, 20, false), "")
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("drain POST: %d, want 503", dresp.StatusCode)
	}
}

// TestListJobs: GET /jobs returns every submission in order.
func TestListJobs(t *testing.T) {
	assertNoGoroutineLeak(t)
	ts, _ := newTestDaemon(t, jobqueue.Config{Workers: 2, QueueCap: 8})
	body := problemBytes(t, 40, 20, false)
	var ids []string
	for i := 0; i < 3; i++ {
		ack, resp := postJob(t, ts, body, fmt.Sprintf("iterations=2&seed=%d", i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, ack.ID)
	}
	for _, id := range ids {
		pollDone(t, ts, id)
	}
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("list has %d entries, want 3", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s (submission order)", i, st.ID, ids[i])
		}
	}
}
