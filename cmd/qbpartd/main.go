// Command qbpartd is the partitioning service: a long-running HTTP daemon
// that accepts solve jobs, runs them on a bounded worker pool with
// per-worker warm solver scratch, enforces per-job deadlines and budgets
// through the solvers' cancellation contract, streams incumbent-trajectory
// progress as Server-Sent Events, and drains gracefully on SIGINT/SIGTERM —
// in-flight jobs complete with their best-so-far incumbents.
//
// API (see DESIGN.md §14 and the README quickstart):
//
//	POST   /jobs             submit a problem (text or binary body, auto-detected);
//	                         knobs as query parameters: method, iterations,
//	                         multistart, workers, seed, relax, deadline, priority
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        job status + result
//	GET    /jobs/{id}/events SSE progress stream (state, progress, done)
//	DELETE /jobs/{id}        cancel (running jobs return best-so-far)
//	GET    /metrics          Prometheus text metrics
//	GET    /healthz          liveness (503 while draining)
//
// Backpressure: a full queue answers 429 with Retry-After; instances above
// -max-components answer 413. A job with a fixed seed produces the
// identical assignment regardless of -workers or queue order.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobqueue"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the daemon lifecycle: parse flags, serve until a signal, drain,
// exit. 0 on a clean drain, 1 on serve/drain failure, 2 on usage errors.
func run(args []string) int {
	fs := flag.NewFlagSet("qbpartd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8077", "listen address")
		workers       = fs.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS); per-job determinism is independent of this")
		queueCap      = fs.Int("queue", 64, "queued-job bound; submissions beyond it get 429")
		maxComponents = fs.Int("max-components", 0, "reject instances with more components (0 = unlimited)")
		defDeadline   = fs.Duration("default-deadline", 0, "deadline applied to jobs that request none (0 = unbounded)")
		maxDeadline   = fs.Duration("max-deadline", 0, "cap on per-job deadlines (0 = no cap)")
		maxBody       = fs.Int64("max-body", 64<<20, "request body limit in bytes")
		grace         = fs.Duration("grace", 30*time.Second, "drain budget after SIGINT/SIGTERM before giving up on in-flight jobs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *queueCap < 1 || *workers < 0 || *maxComponents < 0 || *defDeadline < 0 || *maxDeadline < 0 || *maxBody < 1 || *grace < 0 {
		fmt.Fprintln(os.Stderr, "qbpartd: flag values must be non-negative (queue and max-body at least 1)")
		fs.Usage()
		return 2
	}

	// The same signal.NotifyContext mechanism that gives qbpart its
	// interrupt-safe best-so-far exit drives the daemon's graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pool := jobqueue.New(jobqueue.Config{
		Workers:         *workers,
		QueueCap:        *queueCap,
		MaxComponents:   *maxComponents,
		DefaultDeadline: *defDeadline,
		MaxDeadline:     *maxDeadline,
	})
	srv := &http.Server{Addr: *addr, Handler: newServer(pool, *maxBody)}

	serveErr := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "qbpartd: listening on %s (workers %d, queue %d)\n",
			*addr, pool.Workers(), pool.QueueCap())
		serveErr <- srv.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		// ListenAndServe only returns on failure here (Shutdown happens on
		// the signal path below).
		fmt.Fprintln(os.Stderr, "qbpartd:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "qbpartd: signal received, draining (in-flight jobs return best-so-far)")
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := pool.Shutdown(graceCtx); err != nil {
		fmt.Fprintln(os.Stderr, "qbpartd: drain:", err)
		code = 1
	}
	if err := srv.Shutdown(graceCtx); err != nil {
		fmt.Fprintln(os.Stderr, "qbpartd: http shutdown:", err)
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "qbpartd:", err)
		code = 1
	}
	fmt.Fprintln(os.Stderr, "qbpartd: drained, exiting")
	return code
}
