// Command benchtables regenerates the paper's evaluation tables end to end:
// Table I (circuit descriptions), Table II (partitioning without timing
// constraints) and Table III (with timing constraints), on the synthetic
// reconstructions of the seven industrial circuits.
//
// Usage:
//
//	benchtables               # all three tables
//	benchtables -table 3      # Table III only
//	benchtables -table 2 -format csv > table2.csv
//	benchtables -circuits ckta,cktb -iterations 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/report"
)

func main() {
	var (
		table      = flag.Int("table", 0, "table to regenerate: 1, 2 or 3 (default all)")
		circuits   = flag.String("circuits", "", "comma-separated circuit subset (default all seven)")
		iterations = flag.Int("iterations", 0, "QBP iterations (default: the paper's 100)")
		seed       = flag.Int64("seed", 0, "seed for the shared initial solution")
		format     = flag.String("format", "text", "output format for tables 2/3: text, csv or markdown")
		mcm        = flag.Bool("mcm", false, "run the MCM/TCM minimum-deviation experiment (§2.2.1) instead")
	)
	flag.Parse()

	if *mcm {
		if err := bench.WriteMCM(os.Stdout, bench.MCMConfig{Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		return
	}

	var names []string
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}
	cfg := bench.Config{Circuits: names, QBPIterations: *iterations, Seed: *seed}

	run := func(n int) error {
		switch n {
		case 1:
			return bench.WriteTableI(os.Stdout)
		case 2, 3:
			c := cfg
			c.Timing = n == 3
			switch *format {
			case "text":
				return bench.WriteTable(os.Stdout, c)
			case "csv", "markdown":
				rows, err := bench.Run(c)
				if err != nil {
					return err
				}
				if *format == "csv" {
					return report.WriteCSV(os.Stdout, rows)
				}
				return report.WriteMarkdown(os.Stdout, rows, c.Timing)
			default:
				return fmt.Errorf("unknown format %q", *format)
			}
		}
		return fmt.Errorf("unknown table %d", n)
	}

	tables := []int{1, 2, 3}
	if *table != 0 {
		tables = []int{*table}
	}
	for i, n := range tables {
		if i > 0 {
			fmt.Println()
		}
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
	}
}
