// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the ablations called out in DESIGN.md. Each benchmark iteration runs
// a full solve so `go test -bench . -benchtime 1x` reproduces one complete
// experiment; final wire lengths are reported as custom metrics so quality
// accompanies the timing.
package partition

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/paperex"
	"repro/internal/qbp"
	"repro/internal/qmatrix"
)

// instanceCache avoids regenerating circuits inside the timed loops.
var instanceCache = map[string]*Instance{}

func instance(b *testing.B, name string) *Instance {
	b.Helper()
	if in, ok := instanceCache[name]; ok {
		return in
	}
	in, err := NamedCircuit(name)
	if err != nil {
		b.Fatal(err)
	}
	instanceCache[name] = in
	return in
}

var startCache = map[string]Assignment{}

func sharedStart(b *testing.B, name string) Assignment {
	b.Helper()
	if a, ok := startCache[name]; ok {
		return a
	}
	in := instance(b, name)
	a, err := FeasibleStart(context.Background(), in.Problem, 0, 40)
	if err != nil {
		b.Fatal(err)
	}
	startCache[name] = a
	return a
}

// BenchmarkTableI regenerates the circuit-description table: it measures
// generation of each named instance and reports its published statistics.
func BenchmarkTableI(b *testing.B) {
	for _, spec := range PaperCircuits() {
		b.Run(spec.Name, func(b *testing.B) {
			var in *Instance
			for k := 0; k < b.N; k++ {
				var err error
				in, err = NamedCircuit(spec.Name)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(in.Problem.N()), "components")
			b.ReportMetric(float64(in.Problem.Circuit.TotalWireWeight()), "wires")
			b.ReportMetric(float64(len(in.Problem.Circuit.Timing)), "timing-constraints")
		})
	}
}

// tableBench runs one (circuit, method) cell of Table II (timing=false) or
// Table III (timing=true).
func tableBench(b *testing.B, name, method string, timing bool) {
	in := instance(b, name)
	start := sharedStart(b, name)
	p := in.Problem
	var wl int64
	for k := 0; k < b.N; k++ {
		switch method {
		case "qbp":
			res, err := SolveQBP(context.Background(), p, QBPOptions{Initial: start, RelaxTiming: !timing})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Feasible {
				b.Fatalf("qbp result infeasible on %s", name)
			}
			wl = res.WireLength
		case "gfm":
			res, err := SolveGFM(context.Background(), p, start, GFMOptions{RelaxTiming: !timing})
			if err != nil {
				b.Fatal(err)
			}
			wl = res.WireLength
		case "gkl":
			res, err := SolveGKL(context.Background(), p, start, GKLOptions{RelaxTiming: !timing})
			if err != nil {
				b.Fatal(err)
			}
			wl = res.WireLength
		}
	}
	b.ReportMetric(float64(p.WireLength(start)), "startWL")
	b.ReportMetric(float64(wl), "finalWL")
	b.ReportMetric(100*(1-float64(wl)/float64(p.WireLength(start))), "improve%")
}

// BenchmarkTableII reproduces Table II (no timing constraints): one
// sub-benchmark per circuit × method cell.
func BenchmarkTableII(b *testing.B) {
	for _, spec := range PaperCircuits() {
		for _, method := range []string{"qbp", "gfm", "gkl"} {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, method), func(b *testing.B) {
				tableBench(b, spec.Name, method, false)
			})
		}
	}
}

// BenchmarkTableIII reproduces Table III (with timing constraints).
func BenchmarkTableIII(b *testing.B) {
	for _, spec := range PaperCircuits() {
		for _, method := range []string{"qbp", "gfm", "gkl"} {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, method), func(b *testing.B) {
				tableBench(b, spec.Name, method, true)
			})
		}
	}
}

// BenchmarkFigure1Example solves the §3.3 worked example (the paper's only
// figure-level workload) end to end.
func BenchmarkFigure1Example(b *testing.B) {
	p := paperex.MustNew()
	for k := 0; k < b.N; k++ {
		res, err := SolveQBP(context.Background(), p, QBPOptions{Iterations: 50})
		if err != nil {
			b.Fatal(err)
		}
		if res.Objective != 14 {
			b.Fatalf("objective = %d, want the optimum 14", res.Objective)
		}
	}
}

// BenchmarkInitialSolution measures the paper's initial-feasible-solution
// protocol (QBP with B = 0) on every circuit.
func BenchmarkInitialSolution(b *testing.B) {
	for _, spec := range PaperCircuits() {
		b.Run(spec.Name, func(b *testing.B) {
			in := instance(b, spec.Name)
			for k := 0; k < b.N; k++ {
				if _, err := FeasibleStart(context.Background(), in.Problem, int64(k), 40); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkIterationSweep: "the solution quality is dependent on the number
// of iterations, the more CPU time spent, the better the results".
func BenchmarkIterationSweep(b *testing.B) {
	for _, iters := range []int{10, 25, 50, 100, 200} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			in := instance(b, "cktb")
			start := sharedStart(b, "cktb")
			var wl int64
			for k := 0; k < b.N; k++ {
				res, err := SolveQBP(context.Background(), in.Problem, QBPOptions{Iterations: iters, Initial: start})
				if err != nil {
					b.Fatal(err)
				}
				wl = res.WireLength
			}
			b.ReportMetric(float64(wl), "finalWL")
		})
	}
}

// BenchmarkPenaltySweep: sensitivity to the embedded penalty value (the
// paper uses 50 and warns that Theorem 1's huge U hurts numerically; here
// large penalties instead distort the search).
func BenchmarkPenaltySweep(b *testing.B) {
	for _, pen := range []int64{10, 50, 200, 1000} {
		b.Run(fmt.Sprintf("penalty=%d", pen), func(b *testing.B) {
			in := instance(b, "cktg")
			start := sharedStart(b, "cktg")
			var wl int64
			feasible := true
			for k := 0; k < b.N; k++ {
				res, err := SolveQBP(context.Background(), in.Problem, QBPOptions{Penalty: pen, Initial: start})
				if err != nil {
					b.Fatal(err)
				}
				wl = res.WireLength
				feasible = res.Feasible
			}
			b.ReportMetric(float64(wl), "finalWL")
			if !feasible {
				b.ReportMetric(1, "infeasible")
			}
		})
	}
}

// BenchmarkOmegaAblation compares the paper's STEP 3 (no ω term in η,
// default) against equation (3)'s η with the ω·u term.
func BenchmarkOmegaAblation(b *testing.B) {
	for _, withOmega := range []bool{false, true} {
		b.Run(fmt.Sprintf("omegaInEta=%v", withOmega), func(b *testing.B) {
			in := instance(b, "cktb")
			start := sharedStart(b, "cktb")
			var wl int64
			for k := 0; k < b.N; k++ {
				res, err := SolveQBP(context.Background(), in.Problem, QBPOptions{Initial: start, OmegaInEta: withOmega})
				if err != nil {
					b.Fatal(err)
				}
				wl = res.WireLength
			}
			b.ReportMetric(float64(wl), "finalWL")
		})
	}
}

// BenchmarkEnhancementAblation isolates the two robustness enhancements
// (stall restarts, final polish) against the literal §4.2 listing.
func BenchmarkEnhancementAblation(b *testing.B) {
	cases := []struct {
		name             string
		restarts, polish bool
	}{
		{"literal", false, false},
		{"restarts", true, false},
		{"polish", false, true},
		{"both", true, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			in := instance(b, "cktg")
			start := sharedStart(b, "cktg")
			var wl int64
			for k := 0; k < b.N; k++ {
				res, err := SolveQBP(context.Background(), in.Problem, QBPOptions{
					Initial:         start,
					DisableRestarts: !c.restarts,
					DisablePolish:   !c.polish,
				})
				if err != nil {
					b.Fatal(err)
				}
				wl = res.WireLength
			}
			b.ReportMetric(float64(wl), "finalWL")
		})
	}
}

// BenchmarkEtaSparseVsDense demonstrates the §4.3 enhancement: the sparse
// arc-list η accumulation versus the literal dense column sums over the
// materialized Q̂ (M²N² work). A reduced instance keeps the dense side
// tractable.
func BenchmarkEtaSparseVsDense(b *testing.B) {
	in, err := GenerateCircuit(GenerateParams{
		Spec: CircuitSpec{Name: "eta-ablation", Components: 96, Wires: 800, TimingConstraints: 400, Seed: 7},
	})
	if err != nil {
		b.Fatal(err)
	}
	p := in.Problem
	u := in.Golden
	m := p.M()
	b.Run("sparse", func(b *testing.B) {
		ec := qbp.NewEtaComputer(p, qbp.DefaultPenalty)
		b.ResetTimer()
		for k := 0; k < b.N; k++ {
			if eta := ec.Compute(u); eta == nil {
				b.Fatal("nil eta")
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		qhat := qmatrix.DenseQhat(p, qbp.DefaultPenalty)
		mn := len(qhat)
		eta := make([]float64, mn)
		b.ResetTimer()
		for k := 0; k < b.N; k++ {
			for s := 0; s < mn; s++ {
				var sum int64
				for j, i := range u {
					sum += qhat[qmatrix.Pack(i, j, m)][s]
				}
				eta[s] = float64(sum)
			}
		}
	})
}

// BenchmarkSimulatedAnnealing places the extra baseline next to the
// paper's three methods on one circuit (Table III configuration).
func BenchmarkSimulatedAnnealing(b *testing.B) {
	in := instance(b, "cktb")
	start := sharedStart(b, "cktb")
	var wl int64
	for k := 0; k < b.N; k++ {
		res, err := SolveSA(context.Background(), in.Problem, SAOptions{Initial: start, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		wl = res.WireLength
	}
	b.ReportMetric(float64(wl), "finalWL")
}

// BenchmarkMCM runs the §2.2.1 application experiment: minimum-deviation
// legalization of a perturbed designer assignment (PP(1,0)).
func BenchmarkMCM(b *testing.B) {
	var dev int64
	for k := 0; k < b.N; k++ {
		rows, err := bench.RunMCM(bench.MCMConfig{PerturbRates: []float64{0.3}})
		if err != nil {
			b.Fatal(err)
		}
		dev = rows[0].QBP.Deviation
	}
	b.ReportMetric(float64(dev), "qbp-deviation")
}

// BenchmarkMultiStart measures the concurrent multi-start extension: four
// independent solves on spare cores against one sequential solve.
func BenchmarkMultiStart(b *testing.B) {
	in := instance(b, "cktb")
	start := sharedStart(b, "cktb")
	b.Run("single", func(b *testing.B) {
		var wl int64
		for k := 0; k < b.N; k++ {
			res, err := SolveQBP(context.Background(), in.Problem, QBPOptions{Initial: start})
			if err != nil {
				b.Fatal(err)
			}
			wl = res.WireLength
		}
		b.ReportMetric(float64(wl), "finalWL")
	})
	b.Run("starts=4", func(b *testing.B) {
		var wl int64
		for k := 0; k < b.N; k++ {
			res, err := SolveQBPMultiStart(context.Background(), in.Problem, MultiStartOptions{
				Base: QBPOptions{Initial: start}, Starts: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			wl = res.WireLength
		}
		b.ReportMetric(float64(wl), "finalWL")
	})
}

// BenchmarkStartGenerators compares the two initial-solution paths: the
// paper's QBP(B=0) protocol and the ratio-cut cluster seed.
func BenchmarkStartGenerators(b *testing.B) {
	in := instance(b, "cktg")
	b.Run("feasible-start", func(b *testing.B) {
		var wl int64
		for k := 0; k < b.N; k++ {
			a, err := FeasibleStart(context.Background(), in.Problem, int64(k), 40)
			if err != nil {
				b.Fatal(err)
			}
			wl = in.Problem.WireLength(a)
		}
		b.ReportMetric(float64(wl), "startWL")
	})
	b.Run("cluster-seed", func(b *testing.B) {
		var wl int64
		for k := 0; k < b.N; k++ {
			clusters, err := NaturalClusters(in.Problem.Circuit, in.Problem.M(), ClusterOptions{})
			if err != nil {
				b.Fatal(err)
			}
			a, err := ClusterSeed(in.Problem, clusters)
			if err != nil {
				b.Fatal(err)
			}
			wl = in.Problem.WireLength(a)
		}
		b.ReportMetric(float64(wl), "startWL")
	})
}

var benchGKLPassSink int64

// BenchmarkGKLPassCost isolates why GKL is the CPU hog the paper cuts off
// after 6 passes: a single pass on the largest circuit.
func BenchmarkGKLPassCost(b *testing.B) {
	in := instance(b, "cktf")
	start := sharedStart(b, "cktf")
	for k := 0; k < b.N; k++ {
		res, err := SolveGKL(context.Background(), in.Problem, start, GKLOptions{MaxPasses: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchGKLPassSink = res.Objective
	}
}

// multilevelBenchInstance caches the big synthetic circuits for the V-cycle
// sweep; generating N=10⁵ takes longer than coarsening it.
func multilevelBenchInstance(b *testing.B, n int) *Instance {
	b.Helper()
	name := fmt.Sprintf("mlbench-%d", n)
	if in, ok := instanceCache[name]; ok {
		return in
	}
	in, err := GenerateCircuit(GenerateParams{Spec: CircuitSpec{
		Name:              name,
		Components:        n,
		Wires:             int64(4 * n),
		TimingConstraints: n / 10,
		Seed:              31,
	}})
	if err != nil {
		b.Fatal(err)
	}
	instanceCache[name] = in
	return in
}

// BenchmarkMultilevelVCycle measures the coarsen–solve–refine pipeline at
// sizes the flat solver cannot touch interactively: each op is one full
// V-cycle (hierarchy build, coarse multistart, per-level refinement) on a
// deg≈8 instance. finalWL tracks solution quality alongside the timing.
func BenchmarkMultilevelVCycle(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			in := multilevelBenchInstance(b, n)
			b.ResetTimer()
			var wl int64
			for k := 0; k < b.N; k++ {
				res, err := SolveMultilevel(context.Background(), in.Problem, MultilevelOptions{
					Coarse: MultiStartOptions{Base: QBPOptions{Iterations: 60, Seed: 7}, Starts: 2},
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Feasible {
					b.Fatalf("N=%d V-cycle infeasible", n)
				}
				wl = res.WireLength
			}
			b.ReportMetric(float64(wl), "finalWL")
		})
	}
}
