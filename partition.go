// Package partition is a performance-driven system partitioner: it assigns
// the variable-size components of a circuit to fixed-capacity partitions
// (FPGA devices, MCM/TCM chip slots) under capacity and pairwise timing
// constraints, minimizing a combination of placement preference and
// interconnection cost.
//
// It implements Shih & Kuh, "Quadratic Boolean Programming for
// Performance-Driven System Partitioning" (UCB/ERL M93/19, 1993): the
// partitioning problem PP(α,β) is reformulated *exactly* as an
// unconstrained-in-timing Quadratic Boolean Program by embedding the timing
// constraints into the cost matrix (the paper's Theorems 1 and 2), and
// solved with a generalized, sparsity-exploiting variant of Burkard's
// iterative heuristic. The two interchange baselines the paper compares
// against — GFM (generalized Fiduccia–Mattheyses single moves) and GKL
// (generalized Kernighan–Lin pair swaps) — are included, as are the
// substrates: a Generalized Assignment Problem solver, a Hungarian Linear
// Assignment solver, and the Quadratic Assignment special case.
//
// # Quick start
//
//	problem, _ := partition.NewProblem(circuit, topology, 0, 1, nil)
//	start, _ := partition.FeasibleStart(context.Background(), problem, 0, 40)
//	res, _ := partition.SolveQBP(context.Background(), problem, partition.QBPOptions{Initial: start})
//	fmt.Println(res.WireLength, res.Feasible)
//
// # Cancellation
//
// Every solver entry point takes a context.Context. A context that is
// already cancelled returns ctx.Err() immediately; a context cancelled (or
// whose deadline expires) mid-solve stops the search at the next iteration
// boundary and returns the best feasible incumbent found so far with the
// result's Stopped field set — not an error. Without a cancellation the
// result is bit-identical for any context, so context.Background() always
// reproduces the historical behavior. See DESIGN.md §9 for the full
// contract.
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package partition

import (
	"context"
	"io"

	"repro/internal/anneal"
	"repro/internal/bb"
	"repro/internal/cluster"
	"repro/internal/fm"
	"repro/internal/gap"
	"repro/internal/gen"
	"repro/internal/geometry"
	"repro/internal/kl"
	"repro/internal/lap"
	"repro/internal/model"
	"repro/internal/multilevel"
	"repro/internal/netlist"
	"repro/internal/qap"
	"repro/internal/qbp"
	"repro/internal/sparsemat"
	"repro/internal/textio"
	"repro/internal/timing"
	"repro/internal/validate"
	"repro/internal/viz"
)

// Core data model (see internal/model for full documentation).
type (
	// Circuit is the system to partition: component sizes, weighted
	// wires, and timing constraints.
	Circuit = model.Circuit
	// Wire is a weighted interconnection between two components.
	Wire = model.Wire
	// TimingConstraint bounds the inter-partition delay allowed between
	// two components.
	TimingConstraint = model.TimingConstraint
	// Topology is the fixed partition structure: capacities, the routing
	// cost matrix B and the routing delay matrix D.
	Topology = model.Topology
	// Problem is a PP(α,β) instance.
	Problem = model.Problem
	// Assignment maps each component to a partition.
	Assignment = model.Assignment
)

// Unconstrained marks a component pair with no timing bound.
const Unconstrained = model.Unconstrained

// NewProblem assembles and validates a problem instance; linear may be nil.
func NewProblem(c *Circuit, t *Topology, alpha, beta int64, linear [][]int64) (*Problem, error) {
	return model.NewProblem(c, t, alpha, beta, linear)
}

// Partition-array geometry (see internal/geometry).
type (
	// Grid is a rows×cols array of partition slots.
	Grid = geometry.Grid
	// Metric selects the inter-partition distance model.
	Metric = geometry.Metric
)

// Distance metrics for Grid topologies.
const (
	Manhattan        = geometry.Manhattan
	SquaredEuclidean = geometry.SquaredEuclidean
	UnitCrossing     = geometry.UnitCrossing
	Chebyshev        = geometry.Chebyshev
)

// QBP solver — the paper's contribution (see internal/qbp).
type (
	// QBPOptions tunes the generalized Burkard heuristic; the zero value
	// reproduces the paper's setup (100 iterations, penalty 50).
	QBPOptions = qbp.Options
	// QBPResult is the outcome of SolveQBP.
	QBPResult = qbp.Result
	// QBPIteration is a per-iteration progress snapshot.
	QBPIteration = qbp.Iteration
	// QBPProgress is the richer telemetry snapshot passed to
	// QBPOptions.OnProgress after every iteration.
	QBPProgress = qbp.Progress
	// QBPSolveStats is the per-solve telemetry carried in
	// QBPResult.Stats: iteration/restart/η-rebuild counters, the
	// incumbent-cost trajectory, and wall time per phase.
	QBPSolveStats = qbp.SolveStats
	// QBPTrajectoryPoint is one incumbent improvement in
	// QBPSolveStats.Trajectory.
	QBPTrajectoryPoint = qbp.TrajectoryPoint
)

// MatrixRep selects the coupling-matrix representation behind the QBP solve
// kernels (QBPOptions.Matrix): a CSR adjacency walk or a dense row scan. The
// solver builds the CSR once per solve and resolves MatrixAuto by measured
// density against QBPOptions.MatrixDensityThreshold. The choice can never
// change a result — both paths are bit-identical — only its cost.
type MatrixRep = sparsemat.Rep

// Coupling-matrix representations.
const (
	MatrixAuto   = sparsemat.RepAuto
	MatrixSparse = sparsemat.RepSparse
	MatrixDense  = sparsemat.RepDense
)

// ParseMatrixRep parses the flag spelling of a representation: "auto" (or
// empty), "sparse", or "dense".
func ParseMatrixRep(s string) (MatrixRep, error) {
	return sparsemat.ParseRep(s)
}

// SolveQBP partitions p with the generalized Burkard heuristic over the
// timing-embedded quadratic Boolean program. Cancelling ctx mid-solve
// returns the best incumbent so far with Stopped set (see the package
// comment for the full contract).
func SolveQBP(ctx context.Context, p *Problem, opts QBPOptions) (*QBPResult, error) {
	return qbp.Solve(ctx, p, opts)
}

// FeasibleStart produces an initial assignment satisfying both capacity and
// timing constraints, following the paper's protocol (QBP with B = 0).
// Cancelling ctx aborts the search with ctx.Err() — a partially feasible
// start is not useful, so there is no best-so-far here.
func FeasibleStart(ctx context.Context, p *Problem, seed int64, maxIterations int) (Assignment, error) {
	return qbp.FeasibleStart(ctx, p, seed, maxIterations)
}

// ConstructiveStart builds a capacity-feasible assignment by
// constraint-aware sequential placement.
func ConstructiveStart(p *Problem, penalty int64) (Assignment, error) {
	return qbp.ConstructiveStart(p, penalty)
}

// MinConflicts repairs timing violations in u in place (capacity
// preserving); returns the number of violated constraints remaining.
func MinConflicts(p *Problem, u Assignment, seed int64, maxSteps int) int {
	return qbp.MinConflicts(p, u, seed, maxSteps)
}

// Multi-start extension (see internal/qbp).
type (
	// MultiStartOptions tunes SolveQBPMultiStart.
	MultiStartOptions = qbp.MultiStartOptions
)

// SolveQBPMultiStart runs independent seeded QBP solves concurrently and
// returns the best result deterministically. Cancelling ctx stops feeding
// new starts, drains the in-flight workers (no goroutine leaks), and
// reduces whatever starts completed into a Stopped best-so-far result;
// ctx.Err() is returned only when no start completed at all.
func SolveQBPMultiStart(ctx context.Context, p *Problem, opts MultiStartOptions) (*QBPResult, error) {
	return qbp.SolveMultiStart(ctx, p, opts)
}

// Multi-level V-cycle solver (see internal/multilevel): coarsen by
// heavy-edge matching, solve the coarsest level with the flat QBP
// multistart, then uncoarsen with boundary-restricted GFM/GKL refinement
// per level. The hierarchy is exact — per-level objectives and feasibility
// project bit-identically onto the input problem — so the V-cycle scales
// the paper's formulation to millions of components without changing its
// accounting.
type (
	// MultilevelOptions tunes SolveMultilevel.
	MultilevelOptions = multilevel.Options
	// MultilevelResult is the outcome of SolveMultilevel.
	MultilevelResult = multilevel.Result
	// MultilevelLevelStat describes one hierarchy level of a
	// MultilevelResult.
	MultilevelLevelStat = multilevel.LevelStat
	// MultilevelHierarchy is a standalone contraction hierarchy
	// (CoarsenProblem) for callers that drive their own cycle.
	MultilevelHierarchy = multilevel.Hierarchy
)

// DefaultCoarsenTarget is the coarsest-level size SolveMultilevel hands to
// the flat solver when MultilevelOptions.CoarsenTarget is unset.
const DefaultCoarsenTarget = multilevel.DefaultCoarsenTarget

// SolveMultilevel partitions p with the multi-level V-cycle. The standing
// contracts hold: cancelling ctx mid-solve returns the best-so-far
// assignment projected to the finest level with Stopped set, and fixed-seed
// results are bit-identical for every Coarse.Workers value.
func SolveMultilevel(ctx context.Context, p *Problem, opts MultilevelOptions) (*MultilevelResult, error) {
	return multilevel.Solve(ctx, p, opts)
}

// CoarsenProblem builds the contraction hierarchy without solving — for
// inspection, testing, or custom cycles.
func CoarsenProblem(p *Problem, opts MultilevelOptions) (*MultilevelHierarchy, error) {
	return multilevel.Coarsen(p, opts)
}

// Exact reference solver (see internal/bb).
type (
	// ExactOptions tunes SolveExact.
	ExactOptions = bb.Options
	// ExactResult is the outcome of SolveExact.
	ExactResult = bb.Result
)

// SolveExact finds the certified optimum by branch and bound (mid-size
// instances; heuristics remain the tool for real circuits). Cancelling ctx
// mid-search returns the incumbent with Stopped set — a feasible upper
// bound rather than a proven optimum.
func SolveExact(ctx context.Context, p *Problem, opts ExactOptions) (ExactResult, error) {
	return bb.Solve(ctx, p, opts)
}

// Cycle-time-driven constraint derivation (see internal/timing).
type (
	// TimingGraph is a register-bounded combinational delay model.
	TimingGraph = timing.Graph
	// TimingArc is one directed signal connection of a TimingGraph.
	TimingArc = timing.Arc
	// TimingBudget is one derived routing budget.
	TimingBudget = timing.Budget
	// TimingOptions tunes DeriveTimingBudgets.
	TimingOptions = timing.Options
)

// DeriveTimingBudgets computes per-arc routing budgets for a target cycle
// time (the paper's D_C derivation).
func DeriveTimingBudgets(g *TimingGraph, opts TimingOptions) ([]TimingBudget, error) {
	return timing.Derive(g, opts)
}

// TimingConstraintsFromBudgets converts budgets into model constraints,
// keeping the tightest bound per pair.
func TimingConstraintsFromBudgets(budgets []TimingBudget) []TimingConstraint {
	return timing.Constraints(budgets)
}

// CriticalPathDelay returns the worst register-to-register intrinsic delay
// of a timing graph.
func CriticalPathDelay(g *TimingGraph) (int64, error) {
	return timing.CriticalPathDelay(g)
}

// Ratio-cut clustering (see internal/cluster).
type (
	// ClusterOptions tunes RatioCutSplit and NaturalClusters.
	ClusterOptions = cluster.Options
)

// RatioCutSplit bipartitions a circuit by ratio-cut improvement.
func RatioCutSplit(c *Circuit, opts ClusterOptions) ([]int, error) {
	return cluster.Split(c, opts)
}

// NaturalClusters recursively splits a circuit into k natural clusters.
func NaturalClusters(c *Circuit, k int, opts ClusterOptions) ([][]int, error) {
	return cluster.Clusters(c, k, opts)
}

// ClusterSeed maps natural clusters onto partitions as an initial
// assignment for the solvers.
func ClusterSeed(p *Problem, clusters [][]int) (Assignment, error) {
	return cluster.SeedAssignment(p, clusters)
}

// Simulated annealing — an additional baseline beyond the paper's GFM/GKL
// comparison (see internal/anneal).
type (
	// SAOptions tunes SolveSA.
	SAOptions = anneal.Options
	// SAResult is the outcome of SolveSA.
	SAResult = anneal.Result
)

// SolveSA anneals single-component moves over the penalized objective.
// Cancelling ctx mid-schedule returns the best state seen with Stopped set.
func SolveSA(ctx context.Context, p *Problem, opts SAOptions) (*SAResult, error) {
	return anneal.Solve(ctx, p, opts)
}

// Hypergraph front-end (see internal/netlist): real netlists connect two
// or more pins per net; these reductions produce the pairwise A matrix the
// formulation takes as input.
type (
	// Net is one hyperedge (two or more pins; Pins[0] drives).
	Net = netlist.Net
	// HyperNetlist is a hypergraph over the circuit's components.
	HyperNetlist = netlist.Netlist
	// NetModel selects the hyperedge-to-pairs reduction.
	NetModel = netlist.Model
)

// Hyperedge reduction models.
const (
	NetClique = netlist.Clique
	NetStar   = netlist.Star
)

// HypergraphCircuit assembles a Circuit from a hypergraph netlist. The
// returned denom scales the quadratic objective under the clique model.
func HypergraphCircuit(name string, sizes []int64, nl *HyperNetlist, m NetModel, timing []TimingConstraint) (*Circuit, int64, error) {
	return netlist.Circuit(name, sizes, nl, m, timing)
}

// CutNets counts nets spanning more than one partition under a.
func CutNets(nl *HyperNetlist, a Assignment) (int, error) {
	return netlist.CutNets(nl, a)
}

// Interchange baselines (see internal/fm and internal/kl).
type (
	// GFMOptions tunes the generalized Fiduccia–Mattheyses baseline.
	GFMOptions = fm.Options
	// GFMResult is the outcome of SolveGFM.
	GFMResult = fm.Result
	// GKLOptions tunes the generalized Kernighan–Lin baseline.
	GKLOptions = kl.Options
	// GKLResult is the outcome of SolveGKL.
	GKLResult = kl.Result
)

// SolveGFM improves a feasible assignment by FM-style single-move passes.
// Cancelling ctx mid-pass rolls the pass back to its best prefix and
// returns with Stopped set; the result stays feasible.
func SolveGFM(ctx context.Context, p *Problem, initial Assignment, opts GFMOptions) (*GFMResult, error) {
	return fm.Solve(ctx, p, initial, opts)
}

// SolveGKL improves a feasible assignment by KL-style pair-swap passes.
// Cancelling ctx mid-pass rolls the pass back to its best prefix and
// returns with Stopped set; the result stays feasible.
func SolveGKL(ctx context.Context, p *Problem, initial Assignment, opts GKLOptions) (*GKLResult, error) {
	return kl.Solve(ctx, p, initial, opts)
}

// Generalized and Linear Assignment special cases (§2.2.2 of the paper):
// PP(1,0) without timing constraints is a GAP; with M = N and unit
// sizes/capacities it is a LAP.
type (
	// GAPInstance is a min-cost Generalized Assignment Problem.
	GAPInstance = gap.Instance
	// GAPOptions tunes SolveGAP.
	GAPOptions = gap.Options
	// GAPRefineLevel selects the local refinement strength.
	GAPRefineLevel = gap.RefineLevel
)

// GAP refinement levels.
const (
	GAPRefineNone  = gap.RefineNone
	GAPRefineShift = gap.RefineShift
	GAPRefineSwap  = gap.RefineSwap
)

// SolveGAP runs the Martello–Toth-style heuristic with local refinement.
// ok reports capacity feasibility of the returned assignment. Cancelling
// ctx skips or cuts short the refinement sweeps; the constructed
// assignment is still returned.
func SolveGAP(ctx context.Context, in *GAPInstance, opts GAPOptions) (assign []int, cost float64, ok bool) {
	return gap.Solve(ctx, in, opts)
}

// SolveGAPExact finds the GAP optimum by branch and bound (small
// instances). Cancelling ctx mid-search returns the incumbent found so far
// (ok = false when none was reached yet).
func SolveGAPExact(ctx context.Context, in *GAPInstance) (assign []int, cost float64, ok bool) {
	return gap.SolveExact(ctx, in)
}

// SolveLAP solves the Linear Assignment Problem exactly (Hungarian
// algorithm): cost is n×m with n ≤ m; assign[row] = column.
func SolveLAP(cost [][]float64) (assign []int, total float64, err error) {
	return lap.Solve(cost)
}

// Quadratic Assignment special case (§2.2.3 of the paper).
type (
	// QAPInstance is a flow/distance Quadratic Assignment Problem.
	QAPInstance = qap.Instance
	// QAPOptions tunes SolveQAP.
	QAPOptions = qap.Options
	// QAPResult is the outcome of SolveQAP.
	QAPResult = qap.Result
)

// SolveQAP runs Burkard's original heuristic (LAP subproblems) on a QAP.
func SolveQAP(in *QAPInstance, opts QAPOptions) (*QAPResult, error) {
	return qap.Solve(in, opts)
}

// Validation (see internal/validate).
type (
	// Report is an independent evaluation of a solution.
	Report = validate.Report
)

// Validate recomputes the objective and all constraints of a solution from
// first principles.
func Validate(p *Problem, a Assignment) (*Report, error) {
	return validate.Check(p, a)
}

// Synthetic circuits (see internal/gen).
type (
	// CircuitSpec pins the published statistics of a generated circuit.
	CircuitSpec = gen.Spec
	// GenerateParams controls synthetic circuit generation.
	GenerateParams = gen.Params
	// Instance is a generated circuit with its feasibility witness.
	Instance = gen.Instance
)

// PaperCircuits lists the seven circuits of the paper's Table I.
func PaperCircuits() []CircuitSpec {
	return append([]CircuitSpec(nil), gen.Paper...)
}

// NamedCircuit generates one of the paper's circuits (ckta…cktg).
func NamedCircuit(name string) (*Instance, error) {
	return gen.Named(name)
}

// GenerateCircuit builds a synthetic instance from the parameters.
func GenerateCircuit(params GenerateParams) (*Instance, error) {
	return gen.Generate(params)
}

// StreamStats summarizes a circuit generated by StreamCircuit.
type StreamStats = gen.StreamStats

// StreamCircuit generates an instance with GenerateCircuit's statistical
// profile and writes it straight to w in the binary problem format without
// materializing the wire list, so million-component instances stay in
// O(N + M²) memory. Stream and Generate draw different (same-distribution)
// instances for the same seed; MaxFanout is not supported here.
func StreamCircuit(params GenerateParams, w io.Writer) (*StreamStats, error) {
	return gen.Stream(params, w)
}

// RenderGrid draws the partition array with per-slot component counts and
// capacity utilization as plain text.
func RenderGrid(w io.Writer, p *Problem, grid Grid, a Assignment) error {
	return viz.Grid(w, p, grid, a)
}

// RenderWireHistogram draws the weighted wire-length distribution of a.
func RenderWireHistogram(w io.Writer, p *Problem, a Assignment) error {
	return viz.WireHistogram(w, p, a)
}

// Serialization (see internal/textio).

// WriteProblem serializes p in the plain-text circuit format.
func WriteProblem(w io.Writer, p *Problem) error { return textio.WriteProblem(w, p) }

// ReadProblem parses a problem written by WriteProblem.
func ReadProblem(r io.Reader) (*Problem, error) { return textio.ReadProblem(r) }

// WriteAssignment serializes an assignment.
func WriteAssignment(w io.Writer, a Assignment) error { return textio.WriteAssignment(w, a) }

// ReadAssignment parses an assignment written by WriteAssignment.
func ReadAssignment(r io.Reader) (Assignment, error) { return textio.ReadAssignment(r) }

// Format identifies a problem/assignment serialization.
type Format = textio.Format

// Serialization formats.
const (
	// FormatText is the line-oriented format of WriteProblem.
	FormatText = textio.FormatText
	// FormatBinary is the versioned little-endian format of
	// WriteProblemBinary.
	FormatBinary = textio.FormatBinary
)

// WriteProblemBinary serializes p in the versioned binary format — the
// same model as WriteProblem, ~10× faster to parse at N ≥ 10⁵.
func WriteProblemBinary(w io.Writer, p *Problem) error { return textio.WriteProblemBinary(w, p) }

// ReadProblemBinary parses a problem written by WriteProblemBinary.
func ReadProblemBinary(r io.Reader) (*Problem, error) { return textio.ReadProblemBinary(r) }

// ReadProblemAuto reads a problem in either format, detected by magic.
func ReadProblemAuto(r io.Reader) (*Problem, error) { return textio.ReadProblemAuto(r) }

// ReadProblemDetect is ReadProblemAuto, also reporting the detected format.
func ReadProblemDetect(r io.Reader) (*Problem, Format, error) { return textio.ReadProblemDetect(r) }

// WriteAssignmentBinary serializes an assignment in the binary format.
func WriteAssignmentBinary(w io.Writer, a Assignment) error {
	return textio.WriteAssignmentBinary(w, a)
}

// ReadAssignmentBinary parses an assignment written by
// WriteAssignmentBinary.
func ReadAssignmentBinary(r io.Reader) (Assignment, error) { return textio.ReadAssignmentBinary(r) }

// ReadAssignmentAuto reads an assignment in either format.
func ReadAssignmentAuto(r io.Reader) (Assignment, error) { return textio.ReadAssignmentAuto(r) }
