package partition

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/paperex"
)

// TestFacadeEndToEnd drives the whole public API surface: build a problem,
// produce a feasible start, solve with all three methods, validate, and
// round-trip through the text format.
func TestFacadeEndToEnd(t *testing.T) {
	inst, err := GenerateCircuit(GenerateParams{
		Spec: CircuitSpec{Name: "facade", Components: 80, Wires: 500, TimingConstraints: 250, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := inst.Problem

	start, err := FeasibleStart(context.Background(), p, 0, 40)
	if err != nil {
		t.Fatal(err)
	}

	qres, err := SolveQBP(context.Background(), p, QBPOptions{Iterations: 50, Initial: start})
	if err != nil {
		t.Fatal(err)
	}
	if !qres.Feasible {
		t.Fatal("QBP result infeasible")
	}
	fres, err := SolveGFM(context.Background(), p, start, GFMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kres, err := SolveGKL(context.Background(), p, start, GKLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range map[string]Assignment{"qbp": qres.Assignment, "gfm": fres.Assignment, "gkl": kres.Assignment} {
		rep, verr := Validate(p, a)
		if verr != nil {
			t.Fatalf("%s: %v", name, verr)
		}
		if !rep.Feasible {
			t.Fatalf("%s: validation reports infeasible", name)
		}
		if rep.WireLength > p.WireLength(start) {
			t.Fatalf("%s: worse than the start", name)
		}
	}

	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.N() != p.N() || q.M() != p.M() {
		t.Fatal("problem did not round-trip")
	}
	buf.Reset()
	if err := WriteAssignment(&buf, qres.Assignment); err != nil {
		t.Fatal(err)
	}
	a, err := ReadAssignment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.WireLength(a) != qres.WireLength {
		t.Fatal("assignment did not round-trip")
	}
}

func TestFacadePaperExample(t *testing.T) {
	p := paperex.MustNew()
	res, err := SolveQBP(context.Background(), p, QBPOptions{Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 14 || !res.Feasible {
		t.Fatalf("paper example: objective %d feasible %v, want 14/true", res.Objective, res.Feasible)
	}
}

func TestFacadeConstructiveAndRepair(t *testing.T) {
	inst, err := NamedCircuit("cktb")
	if err != nil {
		t.Fatal(err)
	}
	u, err := ConstructiveStart(inst.Problem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Problem.CapacityFeasible(u) {
		t.Fatal("constructive start violates capacity")
	}
	left := MinConflicts(inst.Problem, u, 1, 100*inst.Problem.N())
	if left != 0 {
		t.Fatalf("min-conflicts left %d violations on cktb", left)
	}
	if err := inst.Problem.CheckFeasible(u); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeQAP(t *testing.T) {
	grid := Grid{Rows: 2, Cols: 2}
	dist, err := grid.DistanceMatrix(Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	inst := &QAPInstance{
		Flow: [][]int64{
			{0, 3, 0, 1},
			{3, 0, 2, 0},
			{0, 2, 0, 1},
			{1, 0, 1, 0},
		},
		Dist: dist,
	}
	res, err := SolveQAP(inst, QAPOptions{Iterations: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Cost(res.Perm); got != res.Cost {
		t.Fatalf("cost %d != recomputed %d", res.Cost, got)
	}
}

func TestPaperCircuitsListIsCopied(t *testing.T) {
	a := PaperCircuits()
	a[0].Name = "mutated"
	b := PaperCircuits()
	if b[0].Name == "mutated" {
		t.Fatal("PaperCircuits leaks internal state")
	}
}
