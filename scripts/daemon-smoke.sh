#!/bin/sh
# Daemon smoke test: build qbpartd, start it, submit a generated instance
# over HTTP, poll the job to completion, scrape /metrics, then SIGTERM the
# daemon and assert a clean graceful drain (exit 0). Pure POSIX sh + curl;
# no jq — job IDs are cut out of the JSON with grep.
set -eu

ADDR="${QBPARTD_ADDR:-127.0.0.1:8077}"
WORK="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
    status=$?
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -KILL "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
    exit $status
}
trap cleanup EXIT INT TERM

echo "daemon-smoke: building"
go build -o "$WORK/qbpartd" ./cmd/qbpartd
go run ./cmd/gencircuit -components 120 -wires 600 -timing 200 -seed 7 -o "$WORK/smoke.prob"

echo "daemon-smoke: starting qbpartd on $ADDR"
"$WORK/qbpartd" -addr "$ADDR" -workers 2 -queue 8 &
DAEMON_PID=$!

# Wait for the listener.
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "daemon-smoke: daemon never became healthy" >&2
        exit 1
    fi
    sleep 0.1
done

echo "daemon-smoke: submitting job"
ACK="$(curl -sf --data-binary @"$WORK/smoke.prob" \
    "http://$ADDR/jobs?method=qbp&iterations=50&seed=1&deadline=30s")"
JOB="$(printf '%s' "$ACK" | grep -o '"id":"[^"]*"' | head -n 1 | cut -d'"' -f4)"
if [ -z "$JOB" ]; then
    echo "daemon-smoke: no job id in acknowledgement: $ACK" >&2
    exit 1
fi
echo "daemon-smoke: submitted $JOB"

# Poll to a terminal state.
i=0
while :; do
    STATUS="$(curl -sf "http://$ADDR/jobs/$JOB")"
    STATE="$(printf '%s' "$STATUS" | grep -o '"state":"[^"]*"' | head -n 1 | cut -d'"' -f4)"
    case "$STATE" in
    done) break ;;
    failed | canceled)
        echo "daemon-smoke: job ended $STATE: $STATUS" >&2
        exit 1
        ;;
    esac
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "daemon-smoke: job stuck in state '$STATE'" >&2
        exit 1
    fi
    sleep 0.1
done
printf '%s' "$STATUS" | grep -q '"assignment":\[' || {
    echo "daemon-smoke: done without an assignment: $STATUS" >&2
    exit 1
}
echo "daemon-smoke: $JOB done"

echo "daemon-smoke: scraping /metrics"
METRICS="$(curl -sf "http://$ADDR/metrics")"
printf '%s\n' "$METRICS" | grep -q '^qbpartd_jobs_completed_total 1$' || {
    echo "daemon-smoke: metrics missing completed counter:" >&2
    printf '%s\n' "$METRICS" >&2
    exit 1
}
printf '%s\n' "$METRICS" | grep -q '^qbpartd_solve_seconds_count 1$' || {
    echo "daemon-smoke: metrics missing solve histogram:" >&2
    printf '%s\n' "$METRICS" >&2
    exit 1
}

echo "daemon-smoke: SIGTERM, expecting graceful drain"
kill -TERM "$DAEMON_PID"
EXIT=0
wait "$DAEMON_PID" || EXIT=$?
DAEMON_PID=""
if [ "$EXIT" -ne 0 ]; then
    echo "daemon-smoke: daemon exited $EXIT after SIGTERM, want 0" >&2
    exit 1
fi
echo "daemon-smoke: PASS"
