package partition

import (
	"context"
	"testing"
)

func TestFacadeTimingDerivation(t *testing.T) {
	g := &TimingGraph{
		Intrinsic: []int64{1, 2, 3, 1},
		Endpoint:  []bool{true, false, false, true},
		Arcs:      []TimingArc{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}},
	}
	cp, err := CriticalPathDelay(g)
	if err != nil {
		t.Fatal(err)
	}
	if cp != 7 {
		t.Fatalf("critical path %d, want 7", cp)
	}
	budgets, err := DeriveTimingBudgets(g, TimingOptions{CycleTime: 13, HopEstimate: 1})
	if err != nil {
		t.Fatal(err)
	}
	cs := TimingConstraintsFromBudgets(budgets)
	if len(cs) != 3 {
		t.Fatalf("%d constraints, want 3", len(cs))
	}
	for _, c := range cs {
		if c.MaxDelay != 4 {
			t.Fatalf("bound %d, want 4", c.MaxDelay)
		}
	}
}

func TestFacadeClustering(t *testing.T) {
	inst, err := NamedCircuit("cktg")
	if err != nil {
		t.Fatal(err)
	}
	side, err := RatioCutSplit(inst.Problem.Circuit, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, s := range side {
		if s == 0 {
			zeros++
		}
	}
	if zeros == 0 || zeros == len(side) {
		t.Fatal("degenerate bipartition")
	}
	clusters, err := NaturalClusters(inst.Problem.Circuit, 8, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seed, err := ClusterSeed(inst.Problem, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Problem.CapacityFeasible(seed) {
		t.Fatal("cluster seed violates capacity")
	}
}

func TestFacadeGAPAndLAP(t *testing.T) {
	in := &GAPInstance{
		Costs:      [][]float64{{1, 10, 10}, {10, 1, 1}},
		Sizes:      []int64{5, 5, 5},
		Capacities: []int64{10, 10},
	}
	assign, cost, ok := SolveGAP(context.Background(), in, GAPOptions{Refine: GAPRefineSwap})
	if !ok || cost != 3 || !in.Feasible(assign) {
		t.Fatalf("GAP: cost=%v ok=%v", cost, ok)
	}
	_, exCost, exOK := SolveGAPExact(context.Background(), in)
	if !exOK || exCost != 3 {
		t.Fatalf("exact GAP: cost=%v ok=%v", exCost, exOK)
	}
	_, total, err := SolveLAP([][]float64{{4, 1}, {2, 0}})
	if err != nil || total != 3 {
		t.Fatalf("LAP: total=%v err=%v", total, err)
	}
}

func TestFacadeExactAndMultiStart(t *testing.T) {
	inst, err := GenerateCircuit(GenerateParams{
		Spec:     CircuitSpec{Name: "tiny", Components: 10, Wires: 30, TimingConstraints: 12, Seed: 6},
		GridRows: 2, GridCols: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := inst.Problem
	exact, err := SolveExact(context.Background(), p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Found {
		t.Fatal("feasible instance reported infeasible")
	}
	multi, err := SolveQBPMultiStart(context.Background(), p, MultiStartOptions{
		Base:   QBPOptions{Iterations: 60},
		Starts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Feasible && multi.Objective < exact.Value {
		t.Fatalf("heuristic %d beat the certified optimum %d", multi.Objective, exact.Value)
	}
}

func TestFacadeMetricsAndConstants(t *testing.T) {
	g := Grid{Rows: 2, Cols: 2}
	for _, m := range []Metric{Manhattan, SquaredEuclidean, UnitCrossing, Chebyshev} {
		mat, _ := g.DistanceMatrix(m)
		if len(mat) != 4 || mat[0][0] != 0 {
			t.Fatalf("metric %v produced bad matrix", m)
		}
	}
	if Unconstrained <= 0 {
		t.Fatal("Unconstrained must be a large positive sentinel")
	}
}

func TestFacadeSimulatedAnnealing(t *testing.T) {
	inst, err := NamedCircuit("cktg")
	if err != nil {
		t.Fatal(err)
	}
	start, err := FeasibleStart(context.Background(), inst.Problem, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveSA(context.Background(), inst.Problem, SAOptions{Initial: start, Seed: 2, Stages: 30})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(inst.Problem, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverloadedCount != 0 {
		t.Fatal("SA violated capacity")
	}
	if res.WireLength != rep.WireLength {
		t.Fatalf("reported WL %d != validated %d", res.WireLength, rep.WireLength)
	}
}

func TestFacadeHypergraph(t *testing.T) {
	nl := &HyperNetlist{
		Components: 4,
		Nets: []Net{
			{Pins: []int{0, 1, 2}, Weight: 2},
			{Pins: []int{2, 3}, Weight: 1},
		},
	}
	c, denom, err := HypergraphCircuit("hyper", []int64{1, 1, 1, 1}, nl, NetClique, nil)
	if err != nil {
		t.Fatal(err)
	}
	if denom <= 0 || len(c.Wires) != 4 {
		t.Fatalf("denom=%d wires=%d", denom, len(c.Wires))
	}
	grid := Grid{Rows: 2, Cols: 2}
	dist, _ := grid.DistanceMatrix(Manhattan)
	topo := &Topology{Capacities: []int64{2, 2, 2, 2}, Cost: dist, Delay: dist}
	p, err := NewProblem(c, topo, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveQBP(context.Background(), p, QBPOptions{Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := CutNets(nl, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if cut < 0 || cut > 2 {
		t.Fatalf("cut nets = %d", cut)
	}
}
