// Cycle-time-driven partitioning: the paper's timing constraints "are
// driven by system cycle time and can be derived from the delay equations
// and intrinsic delay in combinational circuit components" (§2). This
// example builds a register-bounded datapath netlist, derives the D_C
// routing budgets for two target cycle times, and partitions the design
// onto a 2×4 board — showing how a tighter clock forces a tighter (more
// expensive) placement.
//
// Run with: go run ./examples/cycletime
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	partition "repro"
	"repro/internal/timing"
)

func main() {
	const stages, width = 6, 8 // a 6-stage, 8-lane pipelined datapath
	n := stages * width
	id := func(stage, lane int) int { return stage*width + lane }

	rng := rand.New(rand.NewSource(3))
	g := &timing.Graph{
		Intrinsic: make([]int64, n),
		Endpoint:  make([]bool, n),
	}
	circuit := &partition.Circuit{Name: "datapath", Sizes: make([]int64, n)}
	for j := 0; j < n; j++ {
		g.Intrinsic[j] = int64(1 + rng.Intn(4))
		circuit.Sizes[j] = int64(2 + rng.Intn(10))
	}
	// Stages 0 and 5 are register banks; the interior is combinational.
	for lane := 0; lane < width; lane++ {
		g.Endpoint[id(0, lane)] = true
		g.Endpoint[id(stages-1, lane)] = true
	}
	// Stage-to-stage connections: straight lanes plus some shuffles.
	addWire := func(a, b int, w int64) {
		circuit.Wires = append(circuit.Wires, partition.Wire{From: a, To: b, Weight: w})
		g.Arcs = append(g.Arcs, timing.Arc{From: a, To: b})
	}
	for s := 0; s+1 < stages; s++ {
		for lane := 0; lane < width; lane++ {
			addWire(id(s, lane), id(s+1, lane), int64(2+rng.Intn(3)))
			if rng.Intn(3) == 0 {
				addWire(id(s, lane), id(s+1, (lane+1)%width), 1)
			}
		}
	}

	cp, err := timing.CriticalPathDelay(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("datapath: %d components, %d nets, critical intrinsic path %d\n\n", n, len(circuit.Wires), cp)

	grid := partition.Grid{Rows: 2, Cols: 4}
	dist, err := grid.DistanceMatrix(partition.Manhattan)
	if err != nil {
		log.Fatal(err)
	}
	diameter, err := grid.Diameter(partition.Manhattan)
	if err != nil {
		log.Fatal(err)
	}

	for _, slackFactor := range []int64{10, 6} {
		cycle := cp + slackFactor // tighter second run
		budgets, err := timing.Derive(g, timing.Options{
			CycleTime:   cycle,
			HopEstimate: 1,
			MaxUseful:   diameter + 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		c := *circuit
		c.Timing = timing.Constraints(budgets)

		var total int64
		for _, s := range c.Sizes {
			total += s
		}
		topo := &partition.Topology{
			Capacities: make([]int64, grid.M()),
			Cost:       dist,
			Delay:      dist,
		}
		for i := range topo.Capacities {
			topo.Capacities[i] = total/int64(grid.M()) + 12
		}
		p, err := partition.NewProblem(&c, topo, 0, 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := partition.SolveQBP(context.Background(), p, partition.QBPOptions{Iterations: 120, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle time %d: %d critical budgets, wire length %d, feasible %v\n",
			cycle, len(c.Timing), res.WireLength, res.Feasible)
	}
	fmt.Println("\nthe tighter clock leaves less routing slack and turns more nets")
	fmt.Println("critical; the placement must keep each within its hop budget (§2).")
}
