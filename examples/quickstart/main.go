// Quickstart: the worked example of the paper's §3.3 built from scratch
// with the public API — three components a, b, c assigned to a 2×2 array of
// partitions, five wires between a and b, two between b and c, and one-hop
// timing budgets on both connected pairs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	partition "repro"
)

func main() {
	// B = D = the Manhattan distance matrix of the 2×2 partition array.
	grid := partition.Grid{Rows: 2, Cols: 2}
	dist, err := grid.DistanceMatrix(partition.Manhattan)
	if err != nil {
		log.Fatal(err)
	}

	circuit := &partition.Circuit{
		Name:  "paper-example",
		Sizes: []int64{1, 1, 1}, // a, b, c
		Wires: []partition.Wire{
			{From: 0, To: 1, Weight: 5}, // a—b: five interconnections
			{From: 1, To: 2, Weight: 2}, // b—c: two interconnections
		},
		Timing: []partition.TimingConstraint{
			{From: 0, To: 1, MaxDelay: 1}, // a and b must be adjacent
			{From: 1, To: 2, MaxDelay: 1}, // b and c must be adjacent
		},
	}
	topo := &partition.Topology{
		Capacities: []int64{1, 1, 1, 1}, // one unit component per slot
		Cost:       dist,
		Delay:      dist,
	}
	problem, err := partition.NewProblem(circuit, topo, 1, 1, nil)
	if err != nil {
		log.Fatal(err)
	}

	res, err := partition.SolveQBP(context.Background(), problem, partition.QBPOptions{Iterations: 50})
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"a", "b", "c"}
	fmt.Println("assignment (partition slots are numbered 1..4 as in the paper):")
	for j, i := range res.Assignment {
		fmt.Printf("  component %s -> partition %d\n", names[j], i+1)
	}
	fmt.Printf("wire length: %d (optimum: both wires at distance 1 = 7)\n", res.WireLength)
	fmt.Printf("feasible:    %v\n", res.Feasible)

	report, err := partition.Validate(problem, res.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("\nindependent validation:\n", report)
}
