// Quadratic Assignment special case (the paper's §2.2.3): when M = N and
// all sizes and capacities are equal, the partitioning problem degenerates
// to placing components on locations one-to-one — the classic QAP — and the
// generalized heuristic degenerates to Burkard's original one with Linear
// Assignment subproblems. This example places a 9-module datapath on a 3×3
// array and cross-checks the heuristic against exhaustive search (9! small
// enough to enumerate).
//
// Run with: go run ./examples/qap
package main

import (
	"fmt"
	"log"

	partition "repro"
)

func main() {
	// Flow: a 9-module datapath (modules 0..8) with a pipeline backbone
	// and some cross traffic (flow[i][j] = words/cycle between modules).
	flow := [][]int64{
		{0, 8, 0, 0, 2, 0, 0, 0, 0},
		{8, 0, 7, 0, 0, 1, 0, 0, 0},
		{0, 7, 0, 6, 0, 0, 2, 0, 0},
		{0, 0, 6, 0, 5, 0, 0, 1, 0},
		{2, 0, 0, 5, 0, 4, 0, 0, 2},
		{0, 1, 0, 0, 4, 0, 3, 0, 0},
		{0, 0, 2, 0, 0, 3, 0, 2, 0},
		{0, 0, 0, 1, 0, 0, 2, 0, 1},
		{0, 0, 0, 0, 2, 0, 0, 1, 0},
	}
	grid := partition.Grid{Rows: 3, Cols: 3}
	dist, err := grid.DistanceMatrix(partition.Manhattan)
	if err != nil {
		log.Fatal(err)
	}

	inst := &partition.QAPInstance{Flow: flow, Dist: dist}
	res, err := partition.SolveQAP(inst, partition.QAPOptions{Iterations: 200, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("placement (3×3 array):")
	at := make([]int, 9) // at[location] = module
	for mod, loc := range res.Perm {
		at[loc] = mod
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			fmt.Printf("  m%d", at[grid.Slot(r, c)])
		}
		fmt.Println()
	}
	fmt.Printf("heuristic cost: %d\n", res.Cost)

	// Exhaustive reference (9! = 362880 permutations).
	best := bruteForce(inst)
	fmt.Printf("exact optimum:  %d\n", best)
	if res.Cost == best {
		fmt.Println("the heuristic found the optimum")
	} else {
		fmt.Printf("gap to optimum: %.1f%%\n", 100*float64(res.Cost-best)/float64(best))
	}
}

func bruteForce(in *partition.QAPInstance) int64 {
	n := in.N()
	perm := make([]int, n)
	used := make([]bool, n)
	best := int64(-1)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			if c := in.Cost(perm); best < 0 || c < best {
				best = c
			}
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				used[i] = true
				perm[j] = i
				rec(j + 1)
				used[i] = false
			}
		}
	}
	rec(0)
	return best
}
