// Natural-cluster discovery and cluster-seeded partitioning: the paper's
// introduction distinguishes ratio-cut partitioning — "useful when we wish
// to … discover the so-called 'natural clusters' of the circuit" — from its
// own fixed-topology problem. This example runs both and connects them:
// ratio-cut clustering recovers the structure of a generated circuit, and
// mapping those clusters onto the partition array seeds the QBP iteration
// with a strong start.
//
// Run with: go run ./examples/clusters
package main

import (
	"context"
	"fmt"
	"log"

	partition "repro"
)

func main() {
	inst, err := partition.NamedCircuit("cktb")
	if err != nil {
		log.Fatal(err)
	}
	p := inst.Problem
	fmt.Printf("circuit %s: %d components, %d wires, %d partitions\n\n",
		p.Circuit.Name, p.N(), p.Circuit.TotalWireWeight(), p.M())

	// Discover as many natural clusters as there are partitions.
	clusters, err := partition.NaturalClusters(p.Circuit, p.M(), partition.ClusterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ratio-cut found %d clusters; largest sizes:", len(clusters))
	for k, cl := range clusters {
		if k == 6 {
			fmt.Print(" …")
			break
		}
		fmt.Printf(" %d", len(cl))
	}
	fmt.Println()

	// Seed the fixed-topology problem from the clusters and compare
	// against the standard feasible start.
	seed, err := partition.ClusterSeed(p, clusters)
	if err != nil {
		log.Fatal(err)
	}
	std, err := partition.FeasibleStart(context.Background(), p, 0, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwire length of cluster seed:     %d\n", p.WireLength(seed))
	fmt.Printf("wire length of standard start:   %d\n", p.WireLength(std))

	// The cluster seed satisfies capacity but not necessarily timing; let
	// QBP legalize and optimize from each start.
	fromClusters, err := partition.SolveQBP(context.Background(), p, partition.QBPOptions{Iterations: 100, Initial: seed})
	if err != nil {
		log.Fatal(err)
	}
	fromStandard, err := partition.SolveQBP(context.Background(), p, partition.QBPOptions{Iterations: 100, Initial: std})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQBP from cluster seed:   WL %d, feasible %v\n", fromClusters.WireLength, fromClusters.Feasible)
	fmt.Printf("QBP from standard start: WL %d, feasible %v\n", fromStandard.WireLength, fromStandard.Feasible)
}
