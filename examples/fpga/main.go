// Timing-driven multi-FPGA partitioning: a design too large for one device
// is split across a 4×4 array of FPGAs with limited logic capacity; signals
// crossing between devices pay board-level routing delay, and critical
// pairs carry cycle-time budgets. The example generates such a system,
// produces the shared feasible start the paper's protocol prescribes, and
// compares all three solvers — the paper's §5 experiment in miniature.
//
// Run with: go run ./examples/fpga
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	partition "repro"
)

func main() {
	inst, err := partition.GenerateCircuit(partition.GenerateParams{
		Spec: partition.CircuitSpec{
			Name:              "fpga-system",
			Components:        250,
			Wires:             2000,
			TimingConstraints: 900,
			Seed:              42,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	p := inst.Problem
	fmt.Printf("system: %d components, %d wires, %d timing constraints, %d FPGAs\n",
		p.N(), p.Circuit.TotalWireWeight(), len(p.Circuit.Timing), p.M())

	start, err := partition.FeasibleStart(context.Background(), p, 0, 40)
	if err != nil {
		log.Fatal(err)
	}
	startWL := p.WireLength(start)
	fmt.Printf("shared feasible start: wire length %d\n\n", startWL)

	type outcome struct {
		name string
		wl   int64
		cpu  time.Duration
		ok   bool
	}
	var results []outcome

	t0 := time.Now()
	q, err := partition.SolveQBP(context.Background(), p, partition.QBPOptions{Initial: start})
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, outcome{"QBP", q.WireLength, time.Since(t0), q.Feasible})

	t0 = time.Now()
	g, err := partition.SolveGFM(context.Background(), p, start, partition.GFMOptions{})
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, outcome{"GFM", g.WireLength, time.Since(t0), p.Feasible(g.Assignment)})

	t0 = time.Now()
	k, err := partition.SolveGKL(context.Background(), p, start, partition.GKLOptions{})
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, outcome{"GKL", k.WireLength, time.Since(t0), p.Feasible(k.Assignment)})

	fmt.Printf("%-5s %10s %8s %10s %9s\n", "", "final WL", "(-%)", "cpu", "feasible")
	for _, r := range results {
		fmt.Printf("%-5s %10d %7.1f%% %9.2fs %9v\n",
			r.name, r.wl, 100*(1-float64(r.wl)/float64(startWL)), r.cpu.Seconds(), r.ok)
	}
}
