// MCM/TCM re-partitioning (the paper's §2.2.1): a designer's initial manual
// assignment of functional blocks to TCM chip slots violates timing and
// capacity constraints; find a *legal* assignment that deviates minimally
// from the designer's intent. Deviation of a block is its size times the
// Manhattan distance between initial and final slot, so with the linear
// preference matrix p[i][j] = size_j · Manhattan(i, initial(j)) the problem
// is exactly PP(1,0).
//
// Run with: go run ./examples/mcm
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	partition "repro"
)

func main() {
	// A 60-block subsystem on a 4×4 TCM.
	inst, err := partition.GenerateCircuit(partition.GenerateParams{
		Spec: partition.CircuitSpec{
			Name:              "tcm-subsystem",
			Components:        60,
			Wires:             260,
			TimingConstraints: 120,
			Seed:              11,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	p := inst.Problem

	// The designer's manual assignment: a feasible layout scrambled by
	// intuition-driven misplacements — 30% of the blocks land somewhere
	// else, introducing capacity and timing violations.
	rng := rand.New(rand.NewSource(5))
	initial := inst.Golden.Clone()
	for j := range initial {
		if rng.Float64() < 0.30 {
			initial[j] = rng.Intn(p.M())
		}
	}
	before, err := partition.Validate(p, initial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designer's assignment: %d overloaded slots, %d timing violations\n",
		before.OverloadedCount, len(before.TimingViolations))

	// PP(1,0): deviation cost only. p[i][j] = size_j × Manhattan(i, initial(j)).
	grid := partition.Grid{Rows: 4, Cols: 4}
	dist, err := grid.DistanceMatrix(partition.Manhattan)
	if err != nil {
		log.Fatal(err)
	}
	linear := make([][]int64, p.M())
	for i := range linear {
		linear[i] = make([]int64, p.N())
		for j := range linear[i] {
			linear[i][j] = p.Circuit.Sizes[j] * dist[i][initial[j]]
		}
	}
	reassign, err := partition.NewProblem(p.Circuit, p.Topology, 1, 0, linear)
	if err != nil {
		log.Fatal(err)
	}

	res, err := partition.SolveQBP(context.Background(), reassign, partition.QBPOptions{Iterations: 150, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	after, err := partition.Validate(reassign, res.Assignment)
	if err != nil {
		log.Fatal(err)
	}

	moved, deviation := 0, int64(0)
	for j, i := range res.Assignment {
		if i != initial[j] {
			moved++
			deviation += p.Circuit.Sizes[j] * dist[i][initial[j]]
		}
	}
	fmt.Printf("legalized assignment:  %d overloaded slots, %d timing violations\n",
		after.OverloadedCount, len(after.TimingViolations))
	fmt.Printf("blocks moved:          %d of %d\n", moved, p.N())
	fmt.Printf("total deviation:       %d (size-weighted Manhattan)\n", deviation)
	if !after.Feasible {
		fmt.Println("note: no fully legal layout found; violations reported above")
	}
}
