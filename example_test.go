package partition_test

import (
	"context"
	"fmt"

	partition "repro"
)

// The paper's §3.3 worked example: three components on a 2×2 partition
// array with one-hop timing budgets on both connected pairs.
func ExampleSolveQBP() {
	grid := partition.Grid{Rows: 2, Cols: 2}
	dist, _ := grid.DistanceMatrix(partition.Manhattan)
	circuit := &partition.Circuit{
		Sizes: []int64{1, 1, 1},
		Wires: []partition.Wire{
			{From: 0, To: 1, Weight: 5},
			{From: 1, To: 2, Weight: 2},
		},
		Timing: []partition.TimingConstraint{
			{From: 0, To: 1, MaxDelay: 1},
			{From: 1, To: 2, MaxDelay: 1},
		},
	}
	topo := &partition.Topology{
		Capacities: []int64{1, 1, 1, 1},
		Cost:       dist,
		Delay:      dist,
	}
	p, err := partition.NewProblem(circuit, topo, 1, 1, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := partition.SolveQBP(context.Background(), p, partition.QBPOptions{Iterations: 50})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("wire length %d, feasible %v\n", res.WireLength, res.Feasible)
	// Output: wire length 7, feasible true
}

// The Linear Assignment special case (§2.2.2): with M = N and unit
// sizes/capacities the partitioner degenerates to a permutation problem,
// solved here exactly.
func ExampleSolveLAP() {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := partition.SolveLAP(cost)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("assignment %v, total %v\n", assign, total)
	// Output: assignment [1 0 2], total 5
}

// Deriving timing budgets from a register-bounded delay model (§2): a
// three-stage pipeline on a 13-unit clock leaves each net 4 units of
// routing delay.
func ExampleDeriveTimingBudgets() {
	g := &partition.TimingGraph{
		Intrinsic: []int64{1, 2, 3, 1},
		Endpoint:  []bool{true, false, false, true},
		Arcs: []partition.TimingArc{
			{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3},
		},
	}
	budgets, err := partition.DeriveTimingBudgets(g, partition.TimingOptions{
		CycleTime: 13, HopEstimate: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, b := range budgets {
		fmt.Printf("net %d→%d: budget %d\n", b.From, b.To, b.MaxDelay)
	}
	// Output:
	// net 0→1: budget 4
	// net 1→2: budget 4
	// net 2→3: budget 4
}

// Validating a solution independently of the solver that produced it.
func ExampleValidate() {
	grid := partition.Grid{Rows: 2, Cols: 2}
	dist, _ := grid.DistanceMatrix(partition.Manhattan)
	circuit := &partition.Circuit{
		Sizes: []int64{1, 1},
		Wires: []partition.Wire{{From: 0, To: 1, Weight: 3}},
	}
	topo := &partition.Topology{
		Capacities: []int64{1, 1, 1, 1},
		Cost:       dist,
		Delay:      dist,
	}
	p, _ := partition.NewProblem(circuit, topo, 0, 1, nil)
	report, err := partition.Validate(p, partition.Assignment{0, 3})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("wire length %d, feasible %v\n", report.WireLength, report.Feasible)
	// Output: wire length 6, feasible true
}
