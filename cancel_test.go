package partition

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// acceptanceInstance generates the "large generated instance" of the
// cancellation acceptance criterion: big enough that a full multistart
// solve takes far longer than 50 ms.
func acceptanceInstance(t *testing.T) *Problem {
	t.Helper()
	inst, err := GenerateCircuit(GenerateParams{
		Spec: CircuitSpec{
			Name:              "cancel-acceptance",
			Components:        1200,
			Wires:             9000,
			TimingConstraints: 2000,
			Seed:              11,
		},
		GridRows: 4,
		GridCols: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst.Problem
}

// TestSolveQBPMultiStartDeadline is the PR's acceptance criterion at the
// facade: a 50 ms deadline yields a capacity-feasible best-so-far
// assignment with Stopped set and zero leaked goroutines, and the same
// seed without a deadline reproduces the identical assignment across runs.
func TestSolveQBPMultiStartDeadline(t *testing.T) {
	p := acceptanceInstance(t)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := SolveQBPMultiStart(ctx, p, MultiStartOptions{
		Base:   QBPOptions{Iterations: 1 << 20, Seed: 21},
		Starts: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("deadline expired but Stopped not set")
	}
	norm := p.Normalized()
	if len(res.Assignment) != p.N() || !norm.CapacityFeasible(res.Assignment) {
		t.Fatal("best-so-far assignment is not capacity-feasible")
	}

	// No goroutine leaks: the worker pool must have drained by return.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", base, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSolveQBPDeterminismWithoutDeadline: the cancellation plumbing must
// not perturb an uncancelled solve — same seed, same assignment, with and
// without a live (never-firing) context.
func TestSolveQBPDeterminismWithoutDeadline(t *testing.T) {
	inst, err := NamedCircuit("ckta")
	if err != nil {
		t.Fatal(err)
	}
	p := inst.Problem
	a, err := SolveQBP(context.Background(), p, QBPOptions{Iterations: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	b, err := SolveQBP(ctx, p, QBPOptions{Iterations: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stopped || b.Stopped {
		t.Fatal("uncancelled solve reported Stopped")
	}
	for j := range a.Assignment {
		if a.Assignment[j] != b.Assignment[j] {
			t.Fatalf("assignments diverge at component %d", j)
		}
	}
}

// TestFacadeCancelledBeforeEntry: every facade solver returns ctx.Err()
// for a context already cancelled at entry.
func TestFacadeCancelledBeforeEntry(t *testing.T) {
	inst, err := NamedCircuit("ckta")
	if err != nil {
		t.Fatal(err)
	}
	p := inst.Problem
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := SolveQBP(ctx, p, QBPOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveQBP: err = %v, want context.Canceled", err)
	}
	if _, err := SolveQBPMultiStart(ctx, p, MultiStartOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveQBPMultiStart: err = %v, want context.Canceled", err)
	}
	if _, err := FeasibleStart(ctx, p, 0, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("FeasibleStart: err = %v, want context.Canceled", err)
	}
	if _, err := SolveSA(ctx, p, SAOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveSA: err = %v, want context.Canceled", err)
	}
	if _, err := SolveExact(ctx, p, ExactOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveExact: err = %v, want context.Canceled", err)
	}
	start, err := FeasibleStart(context.Background(), p, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveGFM(ctx, p, start, GFMOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveGFM: err = %v, want context.Canceled", err)
	}
	if _, err := SolveGKL(ctx, p, start, GKLOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveGKL: err = %v, want context.Canceled", err)
	}
}
