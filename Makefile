GO ?= go

.PHONY: all build test test-race bench tables cover fmt vet lint clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Every table/figure of the paper plus the ablations; one full run each.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# Regenerate the paper's Tables I-III end to end.
tables:
	$(GO) run ./cmd/benchtables

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# Project-specific invariants (panic-free libraries, seeded rand, qmatrix
# index packing, float tolerance, ...). Fails on any diagnostic.
lint:
	$(GO) run ./cmd/qbplint ./...

clean:
	$(GO) clean ./...
