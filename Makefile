GO ?= go

.PHONY: all build test test-race bench bench-compare tables cover fmt vet lint lint-baseline lint-sarif daemon-smoke clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Perf artifact: the paper tables/ablations (one full solve per op), the
# multilevel V-cycle sweep, plus the kernel micro-benchmarks (the
# sparse-vs-dense representation sweeps, the bit-packed membership kernels,
# and the text-vs-binary serializers), 6 repetitions each, folded into
# BENCH_PR10.json (ns/op, allocs/op, and the finalWL quality metric per
# instance).
BENCHJSON ?= BENCH_PR10.json
BENCH_MICRO = ComputeEta|PenalizedValue|GAPSolve|SolveWorkers|EtaIncrementalSweep|BitsetMembership|BinaryReadWrite

bench:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) test -bench . -benchmem -benchtime 1x -count 6 -run '^$$' . > $$tmp/tables.txt; \
	$(GO) test -bench '$(BENCH_MICRO)' -benchmem -benchtime 200ms -count 6 -run '^$$' \
		./internal/qbp ./internal/gap ./internal/bitset ./internal/textio > $$tmp/micro.txt; \
	$(GO) run ./cmd/benchjson -o $(BENCHJSON) $$tmp/tables.txt $$tmp/micro.txt; \
	echo "wrote $(BENCHJSON)"

# Perf gate: per-benchmark median deltas between the committed baseline and
# the current snapshot; exits nonzero when any shared benchmark regressed
# past ×1.25. CI runs this blocking. To accept an intentional perf change,
# refresh both files on one machine and commit them together:
#
#	make bench && cp $(BENCHJSON) BENCH_BASELINE.json
BENCH_OLD ?= BENCH_BASELINE.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare -threshold 1.25 $(BENCH_OLD) $(BENCHJSON)

# Regenerate the paper's Tables I-III end to end.
tables:
	$(GO) run ./cmd/benchtables

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# Project-specific invariants (panic-free libraries, seeded rand, qmatrix
# index packing, determinism/lock/bounds dataflow, ...). Strict: fails on
# any diagnostic not in the committed baseline (currently empty — new
# findings are fixed or //lint:ignore'd, not baselined, unless a PR
# documents why).
lint: vet
	$(GO) run ./cmd/qbplint -baseline .qbplint-baseline.json ./...

# Regenerate the accepted-findings inventory from the current tree.
lint-baseline:
	$(GO) run ./cmd/qbplint -write-baseline .qbplint-baseline.json ./...

# End-to-end daemon smoke: build qbpartd, submit a job over HTTP, poll it
# to completion, scrape /metrics, SIGTERM, assert a clean graceful drain.
daemon-smoke:
	sh scripts/daemon-smoke.sh

# Machine-readable report for code-scanning upload (does not fail the build).
lint-sarif:
	$(GO) run ./cmd/qbplint -format sarif -o qbplint.sarif ./... || true

clean:
	$(GO) clean ./...
