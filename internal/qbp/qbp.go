// Package qbp implements the paper's primary contribution: the partitioning
// problem under timing (C2) and capacity (C1) constraints, reformulated as
// an unconstrained-in-C2 Quadratic Boolean Program
//
//	min over y ∈ S of yᵀQ̂y,   S = {y satisfying C1 and C3},
//
// where Q̂ is the cost matrix with timing constraints embedded as raised
// entries (Theorem 2), solved by the generalized/enhanced Burkard heuristic
// of §4.2–§4.3:
//
//	STEP 2: bounds ω_r ≥ Σ_s q̂[r][s]·y_s for all y ∈ S (equation 2)
//	STEP 3: η_s = Σ_r q̂[r][s]·u_r (+ ω_s·u_s per equation 3), ξ = Σ ω_r·u_r
//	STEP 4: z = min over S of Σ η_r·u_r   — a Generalized Assignment Problem
//	STEP 5: h_r += η_r / max(1, |z − ξ|)
//	STEP 6: u ← argmin over S of Σ h_r·u_r — another GAP
//	STEP 7: keep the best yᵀQ̂y seen so far
//
// The two §4.3 enhancements are central here: the number of partitions M is
// small, and Q̂ is never materialized — η and ω are accumulated from sparse
// per-component wire/timing arc lists, so one iteration costs
// O(M·(nnz(A) + nnz(D_C)) + GAP) instead of M²N².
package qbp

import (
	"context"
	"errors"
	"fmt"
	"math"
	mbits "math/bits"
	"math/rand"
	"sort"
	"time"

	"repro/internal/adjacency"
	"repro/internal/bitset"
	"repro/internal/flatmat"
	"repro/internal/gains"
	"repro/internal/gap"
	"repro/internal/interrupt"
	"repro/internal/model"
	"repro/internal/qmatrix"
	"repro/internal/sparsemat"
)

// DefaultPenalty is the raised Q̂ entry for timing-violating assignment
// pairs; the paper uses 50 in all experiments.
const DefaultPenalty = 50

// DefaultIterations matches the paper's experimental setup (100 iterations
// per circuit).
const DefaultIterations = 100

// AutoPenaltyCeiling caps the AutoPenalty derivation. The penalty appears
// once per violated arc direction in yᵀQ̂y, so the ceiling leaves headroom
// for millions of simultaneous violations before the penalized value itself
// could wrap; couplings large enough to exceed it already out-bid any
// violation by construction, so clamping loses nothing.
const AutoPenaltyCeiling = math.MaxInt64 / (1 << 24)

// Options tunes Solve. The zero value reproduces the paper's setup.
type Options struct {
	// Iterations is the number of Burkard iterations (STEP 3–8);
	// ≤ 0 means DefaultIterations.
	Iterations int
	// Penalty is the raised Q̂ entry for timing-violating pairs;
	// ≤ 0 means DefaultPenalty. Ignored when AutoPenalty is set.
	Penalty int64
	// AutoPenalty derives the penalty from the problem scale instead:
	// 1 + the largest total coupling of any single component (its wire
	// weights times the largest B entry, plus its linear range), so no
	// single-component relocation can ever out-bid fixing a violation.
	// Theorem 2 allows any raised value; the paper's fixed 50 suits its
	// instances, while this choice adapts to arbitrary cost scales.
	AutoPenalty bool
	// RelaxTiming drops the timing constraints entirely (the paper's
	// Table II configuration): no entries of Q̂ are raised.
	RelaxTiming bool
	// OmegaInEta adds the ω_s·u_s term of equation (3) to η. The paper's
	// STEP 3 omits it (the heuristic then relinearizes at the current
	// point), and that is the default here too: the ω term makes every
	// currently-occupied slot look prohibitively expensive to the
	// subproblems, which destroys convergence in practice. Kept as an
	// ablation switch.
	OmegaInEta bool
	// Refine selects the GAP refinement level for the STEP 4/6
	// subproblems; the default is gap.RefineShift.
	Refine gap.RefineLevel
	// Initial is an optional starting assignment; it must satisfy C1.
	// When nil, a seeded random capacity-feasible start is generated
	// (the paper notes QBP maintains its quality "from any arbitrary
	// initial solution").
	Initial model.Assignment
	// Seed drives the random initial solution.
	Seed int64
	// StopOnFeasible stops as soon as any timing-feasible iterate is
	// found (used when generating initial solutions).
	StopOnFeasible bool
	// DisableRestarts turns off the stall handling: when the STEP 6
	// iterate repeats, the accumulated h is reset and the current iterate
	// is randomly kicked so the remaining iteration budget keeps
	// exploring. (An enhancement over the literal §4.2 listing, which
	// otherwise idles at a fixed point of the averaged direction; kept
	// switchable for ablation.)
	DisableRestarts bool
	// DisablePolish turns off the final polish: an exact local search on
	// the embedded objective yᵀQ̂y (single moves, then joint relocation of
	// violated pairs) applied to the best solutions found. (Enhancement;
	// kept switchable for ablation.)
	DisablePolish bool
	// OnIteration, when set, observes each iteration.
	OnIteration func(it Iteration)
	// OnProgress, when set, observes each iteration with the richer
	// telemetry snapshot (incumbents, restarts, wall time). Under
	// SolveMultiStart the same callback is invoked concurrently from every
	// worker, so it must be safe for concurrent use.
	OnProgress func(pr Progress)
	// Workers shards the solve pipeline's data-parallel loops (the η and h
	// accumulations and the polish candidate scans) across this many
	// goroutines. Every sharded loop either writes disjoint ranges or is
	// revalidated serially, so the result is bit-identical for every
	// Workers value — including the default serial path (≤ 1).
	Workers int
	// Matrix selects the coupling-matrix representation behind the solve
	// kernels: sparsemat.RepAuto (the zero value) picks CSR or dense by
	// measured density, RepSparse / RepDense force one. Both
	// representations enumerate the same couplings in the same order with
	// exact integer arithmetic, so the choice never changes the resulting
	// assignment — only the solve cost.
	Matrix sparsemat.Rep
	// MatrixDensityThreshold overrides the RepAuto crossover density;
	// ≤ 0 means sparsemat.DefaultDensityThreshold.
	MatrixDensityThreshold float64

	// Scratch, when non-nil, lends a reusable buffer holder to this solve:
	// the per-solve allocations of the pipeline are paid once and reused by
	// every later solve through the same holder, staying warm across
	// same-shape problems and reallocating transparently when the shape
	// changes. A holder must not be used by two solves concurrently (it is
	// a single buffer set, exactly like the per-worker scratch inside
	// SolveMultiStart — which manages its own holders and ignores this
	// field). Reuse can never change a result: every buffer is rebuilt or
	// invalidated at solve entry, a contract TestScratchReuseDeterminism
	// pins.
	Scratch *Scratch

	// sc lends a reusable scratch buffer set to this solve. Package-internal
	// (the multi-start workers share one per worker); nil means Solve
	// allocates its own and takes precedence over Scratch.
	sc *scratch
	// progressStart tags Progress snapshots with the multistart index.
	progressStart int
}

// Iteration is a progress snapshot passed to Options.OnIteration.
type Iteration struct {
	K         int     // 1-based iteration number
	StepZ     float64 // z of STEP 4
	Current   int64   // penalized value of u^(k+1)
	Best      int64   // best penalized value so far
	Penalized bool    // whether Current includes active penalties
}

// Progress is the telemetry snapshot passed to Options.OnProgress after
// every iteration. All fields are plain values — the callback may retain
// the struct.
type Progress struct {
	// Start is the multistart index that produced this snapshot
	// (0 for plain Solve).
	Start int
	// Iteration is the 1-based iteration just completed; Iterations is
	// the configured budget.
	Iteration, Iterations int
	// BestPenalized is the best embedded objective yᵀQ̂y seen so far.
	BestPenalized int64
	// BestFeasible is the best timing-feasible true objective seen so
	// far, or math.MaxInt64 when no feasible iterate has been seen yet.
	BestFeasible int64
	// Restarts counts the stall-triggered kicks so far.
	Restarts int
	// Elapsed is the wall time since the solve started.
	Elapsed time.Duration
}

// TrajectoryPoint records one improvement of the penalized incumbent.
type TrajectoryPoint struct {
	Iteration int   // 1-based iteration of the improvement (0 = initial)
	Penalized int64 // incumbent yᵀQ̂y after it
}

// SolveStats is the per-solve telemetry folded into Result.Stats:
// iteration counts, restart/η-rebuild counters, the incumbent-cost
// trajectory, and wall time per phase. Under SolveMultiStart the counters
// are summed over all completed starts (Starts reports how many) and the
// trajectory is the winning start's.
type SolveStats struct {
	// Starts is the number of completed solves folded into these stats
	// (1 for plain Solve).
	Starts int
	// Iterations counts Burkard iterations performed.
	Iterations int
	// Restarts counts stall-triggered kicks of the iterate.
	Restarts int
	// EtaFull and EtaIncremental count the STEP 3 η rebuild strategies
	// chosen (full recompute vs dirty-column refresh).
	EtaFull, EtaIncremental int
	// Matrix is the resolved coupling representation ("sparse" or
	// "dense"), Density the measured off-diagonal fill fraction
	// NNZ/(N·(N−1)), and NNZ the stored arc count. All starts of a
	// SolveMultiStart share one matrix, so the first completed start's
	// values are kept by the reduction.
	Matrix  string
	Density float64
	NNZ     int
	// Trajectory is the penalized-incumbent improvement history.
	Trajectory []TrajectoryPoint
	// SetupTime, IterTime and PolishTime are the wall times of the three
	// solve phases (ω/kernel construction, the iteration loop, the final
	// polish). Telemetry only — they never influence the search.
	SetupTime, IterTime, PolishTime time.Duration
}

// add folds another completed solve's counters into s (multistart
// reduction). Trajectories are not merged — the caller keeps the winner's.
func (s *SolveStats) add(o SolveStats) {
	s.Starts += o.Starts
	s.Iterations += o.Iterations
	s.Restarts += o.Restarts
	s.EtaFull += o.EtaFull
	s.EtaIncremental += o.EtaIncremental
	if s.Matrix == "" {
		s.Matrix, s.Density, s.NNZ = o.Matrix, o.Density, o.NNZ
	}
	s.SetupTime += o.SetupTime
	s.IterTime += o.IterTime
	s.PolishTime += o.PolishTime
}

// now is the telemetry clock behind SolveStats and Progress.Elapsed.
func now() time.Time {
	//lint:ignore map-order-leak telemetry wall clock: durations flow only into SolveStats/Progress, never into the search or its result ordering
	return time.Now()
}

// Result is the outcome of a solve.
type Result struct {
	// Assignment is the best solution found: the best timing-feasible one
	// when any was seen, otherwise the best by penalized value.
	Assignment model.Assignment
	// Objective is α·linear + β·quadratic of Assignment (no penalties).
	Objective int64
	// WireLength is the single-direction wire cost Σ w·b[A(j1)][A(j2)]
	// (the paper's reported metric for Manhattan B).
	WireLength int64
	// Penalized is the embedded objective yᵀQ̂y of Assignment.
	Penalized int64
	// TimingViolations counts violated constraints in Assignment.
	TimingViolations int
	// Feasible reports whether Assignment satisfies C1 and C2.
	Feasible bool
	// Iterations is the number of iterations performed.
	Iterations int
	// Stopped reports that the solve ended early because its context was
	// cancelled or its deadline expired; Assignment is then the best
	// incumbent found before the stop (always capacity-feasible).
	Stopped bool
	// Stats is the solve's telemetry (iterations, restarts, η rebuilds,
	// incumbent trajectory, per-phase wall time).
	Stats SolveStats
}

// solver carries the per-solve state.
type solver struct {
	p       *model.Problem // normalized PP(1,1)
	adj     *adjacency.Lists
	m, n    int
	b, d    [][]int64
	penalty int64
	relax   bool
	omega   []int64 // indexed by qmatrix.Pack(i, j, m)

	// Flat kernel state (initKernel).
	kern    *flatmat.Kernel
	csr     *sparsemat.CSR   // canonical coupling matrix, always built
	dns     *sparsemat.Dense // dense mirror, non-nil only when rep is dense
	rep     sparsemat.Rep    // resolved representation (sparse or dense)
	shards  []int            // balanced-arc-mass η shard bounds, nil when serial
	linFlat []int64          // item-major flat linear costs, nil when Linear is nil

	// Requested representation (from Options), consumed by initKernel.
	repReq       sparsemat.Rep
	repThreshold float64

	sc   *scratch
	pool *pool // nil means serial

	// ck is the cooperative-cancellation checker threaded through every
	// phase; the zero value (helper constructors) never stops.
	ck    interrupt.Checker
	stats SolveStats
}

// Scratch is an opaque reusable buffer holder for sequential solves (see
// Options.Scratch). The zero value is ready to use; the first solve through
// it allocates the buffers, later same-shape solves reuse them. Long-lived
// callers running many solves — the daemon's worker pool is the motivating
// one — hold one Scratch per worker goroutine.
type Scratch struct {
	sc *scratch
}

// lease returns the held buffer set, reallocating when the problem shape
// differs from the previous solve's, so a holder stays warm across
// same-shape solves and adapts silently otherwise.
func (w *Scratch) lease(m, n int) *scratch {
	if w.sc == nil || w.sc.m != m || w.sc.n != n {
		w.sc = newScratch(m, n)
	}
	return w.sc
}

// ensureScratch lazily attaches a scratch of the right shape; a lent
// scratch with mismatched dimensions is replaced rather than trusted.
func (s *solver) ensureScratch(lent *scratch) {
	if lent != nil && lent.m == s.m && lent.n == s.n {
		s.sc = lent
	}
	if s.sc == nil {
		s.sc = newScratch(s.m, s.n)
	}
	s.sc.etaValid = false
}

// Solve runs the generalized Burkard heuristic on p. A ctx that is already
// cancelled returns ctx.Err() immediately; a ctx cancelled mid-solve stops
// the iteration at the next boundary and returns the best incumbent found
// so far with Result.Stopped set. Without a cancellation the result is
// bit-identical for any ctx.
func Solve(ctx context.Context, p *model.Problem, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch opts.Matrix {
	case sparsemat.RepAuto, sparsemat.RepSparse, sparsemat.RepDense:
	default:
		return nil, fmt.Errorf("qbp: unknown matrix representation %d (want RepAuto, RepSparse or RepDense)", opts.Matrix)
	}
	t0 := now()
	norm := p.Normalized()
	s := &solver{
		p:            norm,
		adj:          adjacency.Build(norm.Circuit),
		m:            norm.M(),
		n:            norm.N(),
		b:            norm.Topology.Cost,
		d:            norm.Topology.Delay,
		relax:        opts.RelaxTiming,
		repReq:       opts.Matrix,
		repThreshold: opts.MatrixDensityThreshold,
	}
	s.penalty = opts.Penalty
	if s.penalty <= 0 {
		s.penalty = DefaultPenalty
	}
	if opts.AutoPenalty {
		s.penalty = s.autoPenalty()
	}
	iterations := opts.Iterations
	if iterations <= 0 {
		iterations = DefaultIterations
	}

	// Initial solution u^(1) ∈ S.
	var u []int
	if opts.Initial != nil {
		if len(opts.Initial) != s.n || !opts.Initial.Valid(s.m) {
			return nil, errors.New("qbp: initial assignment is not complete and in range")
		}
		if !norm.CapacityFeasible(opts.Initial) {
			return nil, errors.New("qbp: initial assignment violates capacity constraints (u⁽¹⁾ must lie in S)")
		}
		u = append([]int(nil), opts.Initial...)
	} else {
		var err error
		u, err = s.randomStart(rand.New(rand.NewSource(opts.Seed)))
		if err != nil {
			return nil, err
		}
	}

	// STEP 2: ω bounds (computed sparsely).
	s.omega = qmatrix.Omega(s.p, s.adj, s.effectivePenalty())

	// Flat kernels, reusable scratch, and the (optional) worker pool. The
	// η shard boundaries are cut by arc mass, not row count, so
	// skewed-degree instances keep every worker busy; they depend only on
	// the matrix and the worker count, never on the iterate, preserving
	// determinism.
	s.initKernel()
	lent := opts.sc
	if lent == nil && opts.Scratch != nil {
		lent = opts.Scratch.lease(s.m, s.n)
	}
	s.ensureScratch(lent)
	s.pool = newPool(opts.Workers)
	defer s.pool.close()
	if s.pool != nil {
		s.shards = s.csr.BalancedShards(opts.Workers)
	}
	s.ck = interrupt.New(ctx, 0)
	s.stats.Starts = 1
	s.stats.Matrix = s.rep.String()
	s.stats.Density = s.csr.Density()
	s.stats.NNZ = s.csr.NNZ()
	s.stats.SetupTime = now().Sub(t0)
	tIter := now()

	best := append([]int(nil), u...)
	bestVal := s.penalizedValue(u)
	var bestFeasible []int
	bestFeasibleObj := int64(math.MaxInt64)
	if s.relax || s.p.TimingFeasible(best) {
		bestFeasible = append([]int(nil), u...)
		bestFeasibleObj = s.p.Objective(u)
	}

	h := s.sc.h
	for r := range h {
		h[r] = 0
	}
	gapInst := &gap.Instance{
		Sizes:      s.p.Circuit.Sizes,
		Capacities: s.p.Topology.Capacities,
	}
	// The GAP subproblems are solved heuristically; pairwise-swap
	// refinement is what lets the linearized subproblem reshuffle
	// same-size components between partitions, which shift moves cannot
	// do under tight capacities. A small pass cap keeps each call cheap —
	// the subproblem only needs to be good, not converged.
	gapOpts := gap.Options{Refine: opts.Refine, MaxRefinePasses: 3}
	alternate := gapOpts.Refine == gap.RefineNone
	if alternate {
		gapOpts.Refine = gap.RefineSwap
	}

	rng := rand.New(rand.NewSource(opts.Seed + 0x9e3779b9))
	prev := s.sc.prev
	copy(prev, u)
	stall := 0
	lastRepaired := int64(math.MaxInt64)
	s.stats.Trajectory = append(s.stats.Trajectory, TrajectoryPoint{Iteration: 0, Penalized: bestVal})

	performed := 0
	for k := 1; k <= iterations; k++ {
		// Cooperative cancellation: one poll per iteration boundary keeps
		// the inner kernels branch-free; the GAP subproblems below poll
		// their own pass boundaries through the same ctx.
		if s.ck.Now() {
			break
		}
		// By default the GAP refinement level alternates between
		// iterations: deeply-refined (swap) subproblem solutions excel on
		// sparse circuits while lightly-refined (shift) ones track the
		// accumulated direction more smoothly on dense ones; alternating
		// gives the best-so-far tracker both trajectories.
		if alternate {
			if k%2 == 0 {
				gapOpts.Refine = gap.RefineShift
			} else {
				gapOpts.Refine = gap.RefineSwap
			}
		}
		// STEP 3: η from the sparse arc lists (incrementally against the
		// previous iterate where profitable), ξ from ω.
		etaI := s.refreshEta(u, opts.OmegaInEta)
		var xiI int64
		for j, i := range u {
			xiI += s.omega[qmatrix.Pack(i, j, s.m)]
		}
		xi := float64(xiI)

		// STEP 4: z = min Σ η_r u_r over S. The minimizer uz is a
		// relinearization of the quadratic objective at the current point,
		// so it is itself a useful candidate — STEP 7's best-so-far
		// tracking considers it alongside the STEP 6 iterate (an
		// enhancement over the literal listing, which only uses z).
		gapInst.FlatCosts, gapInst.FlatCosts64 = etaI, nil
		uz, z, ok4 := gap.Solve(ctx, gapInst, gapOpts)
		if !ok4 {
			if s.ck.Now() {
				break // cancelled mid-subproblem: keep the incumbent
			}
			return nil, errors.New("qbp: STEP 4 subproblem has no capacity-feasible solution")
		}
		if cur := s.penalizedValue(uz); cur < bestVal {
			bestVal = cur
			copy(best, uz)
			s.stats.Trajectory = append(s.stats.Trajectory, TrajectoryPoint{Iteration: k, Penalized: cur})
		}
		if s.relax || s.p.TimingFeasible(uz) {
			if obj := s.p.Objective(uz); obj < bestFeasibleObj {
				bestFeasibleObj = obj
				bestFeasible = append(bestFeasible[:0], uz...)
			}
		}

		// STEP 5: accumulate the direction vector h.
		denom := math.Abs(z - xi)
		if denom < 1 {
			denom = 1
		}
		s.accumulateH(h, etaI, denom)

		// STEP 6: next iterate from the accumulated direction.
		gapInst.FlatCosts, gapInst.FlatCosts64 = nil, h
		next, _, ok6 := gap.Solve(ctx, gapInst, gapOpts)
		if !ok6 {
			if s.ck.Now() {
				break
			}
			return nil, errors.New("qbp: STEP 6 subproblem has no capacity-feasible solution")
		}
		u = next
		performed = k

		// Stall handling: the averaged direction h has a fixed point; once
		// the iterate repeats, reset the accumulation and kick the iterate
		// so the remaining budget explores new basins (STEP 7's best-so-far
		// keeps everything already found).
		if !opts.DisableRestarts {
			if equalInts(u, prev) {
				stall++
			} else {
				stall = 0
			}
			copy(prev, u)
			if stall >= 2 {
				stall = 0
				for r := range h {
					h[r] = 0
				}
				s.kick(u, rng)
				s.stats.Restarts++
			}
		}

		// STEP 7: best-so-far by penalized value, plus the best
		// timing-feasible solution by true objective.
		cur := s.penalizedValue(u)
		if cur < bestVal {
			bestVal = cur
			copy(best, u)
			s.stats.Trajectory = append(s.stats.Trajectory, TrajectoryPoint{Iteration: k, Penalized: cur})
		}
		if s.relax || s.p.TimingFeasible(u) {
			if obj := s.p.Objective(u); obj < bestFeasibleObj {
				bestFeasibleObj = obj
				bestFeasible = append(bestFeasible[:0], u...)
			}
		}
		// Whenever the penalized incumbent improves, try to convert it
		// into a feasible candidate: under tight timing constraints the
		// whole-assignment GAP iterates are rarely feasible end-to-end, so
		// the feasible incumbent would otherwise only improve via the
		// final polish. Min-conflicts clears the few residual violations;
		// a feasibility-preserving greedy descent then recovers the wire
		// length the repair gave up.
		if !s.relax && !opts.DisablePolish && bestVal < lastRepaired {
			lastRepaired = bestVal
			w := model.Assignment(s.sc.wbuf)
			copy(w, best)
			s.polish(w, false)
			//lint:ignore alloc-in-hot-loop repair runs only when the incumbent improves (lastRepaired gate), not per iteration
			if minConflicts(s.p, w, opts.Seed+int64(k), 10*s.n, &s.ck) == 0 {
				s.polish(w, true)
				if obj := s.p.Objective(w); obj < bestFeasibleObj {
					bestFeasibleObj = obj
					bestFeasible = append(bestFeasible[:0], w...)
				}
			}
		}

		if opts.OnIteration != nil {
			opts.OnIteration(Iteration{
				K: k, StepZ: z, Current: cur, Best: bestVal,
				Penalized: !s.relax,
			})
		}
		if opts.OnProgress != nil {
			feas := bestFeasibleObj
			if bestFeasible == nil {
				feas = math.MaxInt64
			}
			opts.OnProgress(Progress{
				Start:         opts.progressStart,
				Iteration:     k,
				Iterations:    iterations,
				BestPenalized: bestVal,
				BestFeasible:  feas,
				Restarts:      s.stats.Restarts,
				Elapsed:       now().Sub(t0),
			})
		}
		if opts.StopOnFeasible && bestFeasible != nil {
			break
		}
	}
	s.stats.Iterations = performed
	s.stats.IterTime = now().Sub(tIter)
	tPolish := now()

	if !opts.DisablePolish && !s.ck.Now() {
		// Exact local search on yᵀQ̂y over S for the best penalized
		// solution; a feasibility-preserving variant for the best feasible
		// one. Either may promote a new best feasible solution. Skipped
		// entirely on cancellation — the incumbent returns promptly rather
		// than paying for a repair pass the caller no longer wants.
		s.polish(best, false)
		if val := s.penalizedValue(best); val < bestVal {
			bestVal = val
		}
		consider := func(w []int) {
			if s.relax || s.p.TimingFeasible(w) {
				if obj := s.p.Objective(w); obj < bestFeasibleObj {
					bestFeasibleObj = obj
					bestFeasible = append(bestFeasible[:0], w...)
				}
			}
		}
		consider(best)
		if !s.relax && !s.p.TimingFeasible(best) {
			// The penalized best often sits a handful of violations away
			// from feasibility; min-conflicts repair plus a
			// feasibility-preserving polish turns it into a candidate.
			w := append(model.Assignment(nil), best...)
			if minConflicts(s.p, w, opts.Seed, 30*s.n, &s.ck) == 0 {
				s.polish(w, true)
				consider(w)
			}
		}
		if bestFeasible != nil {
			s.polish(bestFeasible, !s.relax)
			s.strongPolish(bestFeasible)
			bestFeasibleObj = s.p.Objective(model.Assignment(bestFeasible))
		}
	}

	s.stats.PolishTime = now().Sub(tPolish)

	chosen := best
	if bestFeasible != nil {
		chosen = bestFeasible
	}
	a := model.Assignment(append([]int(nil), chosen...))
	res := &Result{
		Assignment:       a,
		Objective:        s.p.Objective(a),
		WireLength:       s.p.WireLength(a),
		Penalized:        s.penalizedValue(chosen),
		TimingViolations: s.p.CountTimingViolations(a),
		Iterations:       performed,
		Stopped:          s.ck.Stopped(),
		Stats:            s.stats,
	}
	res.Feasible = s.p.CapacityFeasible(a) && (s.relax || res.TimingViolations == 0)
	return res, nil
}

// effectivePenalty is the penalty actually embedded (0 when timing is
// relaxed, so ω and values reduce to the plain quadratic problem).
func (s *solver) effectivePenalty() int64 {
	if s.relax {
		return 0
	}
	return s.penalty
}

// satAdd adds two values already clamped to [0, AutoPenaltyCeiling],
// saturating at the ceiling instead of wrapping.
func satAdd(a, b int64) int64 {
	if a > AutoPenaltyCeiling-b {
		return AutoPenaltyCeiling
	}
	return a + b
}

// satCoupling is 2·w·b saturated at AutoPenaltyCeiling. Weights and cost
// entries are validated non-negative, so only the upper bound can be hit.
func satCoupling(w, b int64) int64 {
	if w <= 0 || b <= 0 {
		return 0
	}
	if b > AutoPenaltyCeiling || w > AutoPenaltyCeiling/(2*b) {
		return AutoPenaltyCeiling
	}
	return 2 * w * b
}

// autoPenalty returns 1 + the largest total coupling of any single
// component (both directions), so fixing any one timing violation always
// out-bids whatever wire cost the move adds. Every accumulation saturates
// at AutoPenaltyCeiling: near-MaxInt64 couplings would otherwise wrap the
// running total into a negative (or small positive) penalty that no longer
// out-bids violations, and a coupling at the ceiling already dominates any
// single-move gain by construction.
func (s *solver) autoPenalty() int64 {
	var maxB int64
	for _, row := range s.b {
		for _, v := range row {
			if v > maxB {
				maxB = v
			}
		}
	}
	var worst int64
	for j, arcs := range s.adj.Arcs {
		var tot int64
		for _, a := range arcs {
			tot = satAdd(tot, satCoupling(a.Weight, maxB))
		}
		if s.p.Linear != nil {
			var lo, hi int64 = math.MaxInt64, 0
			for i := 0; i < s.m; i++ {
				v := s.p.LinearAt(i, j)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if span := hi - lo; span > 0 {
				if span > AutoPenaltyCeiling {
					span = AutoPenaltyCeiling
				}
				tot = satAdd(tot, span)
			}
		}
		if tot > worst {
			worst = tot
		}
	}
	pen := worst
	if pen < AutoPenaltyCeiling {
		pen++
	}
	if pen < DefaultPenalty {
		pen = DefaultPenalty
	}
	return pen
}

// penalizedValue is yᵀQ̂y for the assignment u: linear term + for every
// ordered coupled pair either the raised penalty (violating slot, entry
// *set* to the penalty as in the paper's §3.3 matrix) or the wire coupling.
// The per-arc entry comes from the precomputed effective rows, so the loop
// carries no timing branches; the walk is the resolved representation's
// (O(nnz) CSR stream or dense row scans), with identical accumulation
// order either way.
func (s *solver) penalizedValue(u []int) int64 {
	var v int64
	if s.linFlat != nil {
		for j, i := range u {
			v += s.linFlat[qmatrix.Pack(i, j, s.m)]
		}
	}
	if s.dns != nil {
		for j1 := 0; j1 < s.n; j1++ {
			i1 := u[j1]
			wrow, crow := s.dns.Row(j1)
			for j2, c := range crow {
				if c == sparsemat.NoArc {
					continue
				}
				v += s.kern.Entry(int(c), i1, u[j2], wrow[j2])
			}
		}
		return v
	}
	cs := s.csr
	for j1 := 0; j1 < s.n; j1++ {
		i1 := u[j1]
		lo, hi := cs.Row(j1)
		// Slicing the parallel arc arrays to one shared length lets the
		// compiler drop the per-arc bounds checks.
		col := cs.Col[lo:hi]
		wt := cs.Weight[lo:hi:hi][:len(col)]
		cl := cs.Class[lo:hi:hi][:len(col)]
		for k := range col {
			v += s.kern.Entry(int(cl[k]), i1, u[col[k]], wt[k])
		}
	}
	return v
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// kick randomly relocates ~10% of the components (at least 2) to other
// partitions that still have room, preserving capacity feasibility. The
// endpoints of currently-violated timing constraints are kicked first:
// stalls with residual violations usually pin a small cluster that single
// and pairwise moves cannot untangle, and scattering exactly that cluster
// lets the next iterations re-place it jointly.
func (s *solver) kick(u []int, rng *rand.Rand) {
	loads := s.sc.loads
	for i := range loads {
		loads[i] = 0
	}
	for j, i := range u {
		loads[i] += s.p.Circuit.Sizes[j]
	}
	var targets []int
	if !s.relax {
		cs := s.csr
		seen := s.sc.seen
		seen.Reset()
		for j1 := 0; j1 < s.n; j1++ {
			lo, hi := cs.Row(j1)
			for k := lo; k < hi; k++ {
				md := cs.MaxDelay[k]
				if md == model.Unconstrained {
					continue
				}
				o := u[cs.Col[k]]
				if s.d[u[j1]][o] > md || s.d[o][u[j1]] > md {
					if !seen.Test(j1) {
						seen.Set(j1)
						targets = append(targets, j1)
					}
				}
			}
		}
	}
	moves := s.n / 10
	if moves < 2 {
		moves = 2
	}
	if len(targets) > moves {
		moves = len(targets)
	}
	for t := 0; t < moves; t++ {
		var j int
		if t < len(targets) {
			j = targets[t]
		} else {
			j = rng.Intn(s.n)
		}
		fits := s.sc.fits[:0]
		for i := 0; i < s.m; i++ {
			if i != u[j] && loads[i]+s.p.Circuit.Sizes[j] <= s.p.Topology.Capacities[i] {
				fits = append(fits, i)
			}
		}
		if len(fits) == 0 {
			continue
		}
		to := fits[rng.Intn(len(fits))]
		loads[u[j]] -= s.p.Circuit.Sizes[j]
		loads[to] += s.p.Circuit.Sizes[j]
		u[j] = to
	}
}

// pairCost is the both-direction Q̂ contribution of one arc in delay class
// c with wire weight w between partitions iA and iB: the raised penalty in
// each violated direction, the wire coupling otherwise. Evaluated from the
// precomputed effective rows.
func (s *solver) pairCost(iA, iB, c int, w int64) int64 {
	return s.kern.Entry(c, iA, iB, w) + s.kern.Entry(c, iB, iA, w)
}

// moveDeltaPenalized is the exact change of yᵀQ̂y when moving j to
// partition to, with everything else fixed at u: O(deg(j)) on the CSR
// path, one row scan on the dense path.
func (s *solver) moveDeltaPenalized(u []int, j, to int) int64 {
	cur := u[j]
	if cur == to {
		return 0
	}
	delta := s.p.LinearAt(to, j) - s.p.LinearAt(cur, j)
	if s.dns != nil {
		wrow, crow := s.dns.Row(j)
		for j2, c := range crow {
			if c == sparsemat.NoArc {
				continue
			}
			o := u[j2]
			delta += s.pairCost(to, o, int(c), wrow[j2]) - s.pairCost(cur, o, int(c), wrow[j2])
		}
		return delta
	}
	cs := s.csr
	lo, hi := cs.Row(j)
	col := cs.Col[lo:hi]
	wt := cs.Weight[lo:hi:hi][:len(col)]
	cl := cs.Class[lo:hi:hi][:len(col)]
	for k := range col {
		o := u[col[k]]
		c := int(cl[k])
		w := wt[k]
		delta += s.pairCost(to, o, c, w) - s.pairCost(cur, o, c, w)
	}
	return delta
}

// timingOKAt reports whether component j placed on partition to satisfies
// all its timing bounds against the current positions in u. Always a CSR
// walk — the bound scan touches only stored arcs regardless of which
// representation drives the cost kernels.
func (s *solver) timingOKAt(u []int, j, to int) bool {
	cs := s.csr
	lo, hi := cs.Row(j)
	col := cs.Col[lo:hi]
	bounds := cs.MaxDelay[lo:hi:hi][:len(col)]
	for k := range col {
		md := bounds[k]
		if md == model.Unconstrained {
			continue
		}
		o := u[col[k]]
		if s.d[to][o] > md || s.d[o][to] > md {
			return false
		}
	}
	return true
}

// polish runs an exact greedy local search on u in place. With
// preserveFeasible it only takes timing-feasibility-preserving moves
// (driving the true objective); otherwise it drives yᵀQ̂y directly and
// finishes by trying joint relocations of still-violated pairs. Capacity
// feasibility is always maintained.
func (s *solver) polish(u []int, preserveFeasible bool) {
	loads := s.sc.loads
	for i := range loads {
		loads[i] = 0
	}
	for j, i := range u {
		loads[i] += s.p.Circuit.Sizes[j]
	}
	for pass := 0; pass < 60; pass++ {
		// Pass-boundary cancellation: the assignment is consistent between
		// passes, so stopping here leaves u a valid (partially polished)
		// incumbent. The zero-value checker of the helper constructors
		// never fires.
		if s.ck.Now() {
			return
		}
		var improved bool
		if s.pool != nil {
			improved = s.polishPassSharded(u, loads, preserveFeasible)
		} else {
			improved = s.polishPass(u, loads, preserveFeasible)
		}
		if !improved {
			break
		}
	}
	if !preserveFeasible && !s.relax {
		s.repairPairs(u, loads)
	}
}

// polishPass is one serial best-improvement sweep: for each component in
// order, take the best capacity-feasible (and optionally
// timing-preserving) relocation.
func (s *solver) polishPass(u []int, loads []int64, preserveFeasible bool) bool {
	improved := false
	for j := 0; j < s.n; j++ {
		cur := u[j]
		bestTo, bestDelta := cur, int64(0)
		for to := 0; to < s.m; to++ {
			if to == cur || loads[to]+s.p.Circuit.Sizes[j] > s.p.Topology.Capacities[to] {
				continue
			}
			if preserveFeasible && !s.timingOKAt(u, j, to) {
				continue
			}
			if d := s.moveDeltaPenalized(u, j, to); d < bestDelta {
				bestDelta, bestTo = d, to
			}
		}
		if bestTo != cur {
			loads[cur] -= s.p.Circuit.Sizes[j]
			loads[bestTo] += s.p.Circuit.Sizes[j]
			u[j] = bestTo
			improved = true
		}
	}
	return improved
}

// polishPassSharded runs one polish pass with the candidate deltas (and
// timing gates) precomputed in parallel from a snapshot of u, then applies
// moves serially in component order. Deltas and timing gates depend only
// on a component's own slot and its neighbors' slots, so a snapshot row
// goes stale exactly when a neighbor moved earlier in the pass — those
// rows are recomputed serially before use, and capacity gating always
// reads the live loads. The applied move sequence is therefore identical
// to polishPass for every Workers value.
func (s *solver) polishPassSharded(u []int, loads []int64, preserveFeasible bool) bool {
	sc := s.sc
	sc.ensurePolishBufs()
	m := s.m
	u0 := sc.u0
	copy(u0, u)
	deltas, tim := sc.deltas, sc.timOK
	s.pool.forRange(s.n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			row := deltas[j*m : (j+1)*m]
			trow := tim[j*m : (j+1)*m]
			for to := 0; to < m; to++ {
				row[to] = s.moveDeltaPenalized(u0, j, to)
				if preserveFeasible {
					trow[to] = s.timingOKAt(u0, j, to)
				}
			}
		}
	})
	dirty := sc.dirty
	dirty.Reset()
	improved := false
	for j := 0; j < s.n; j++ {
		row := deltas[j*m : (j+1)*m]
		trow := tim[j*m : (j+1)*m]
		if dirty.Test(j) {
			for to := 0; to < m; to++ {
				row[to] = s.moveDeltaPenalized(u, j, to)
				if preserveFeasible {
					trow[to] = s.timingOKAt(u, j, to)
				}
			}
		}
		cur := u[j]
		bestTo, bestDelta := cur, int64(0)
		for to := 0; to < m; to++ {
			if to == cur || loads[to]+s.p.Circuit.Sizes[j] > s.p.Topology.Capacities[to] {
				continue
			}
			if preserveFeasible && !trow[to] {
				continue
			}
			if d := row[to]; d < bestDelta {
				bestDelta, bestTo = d, to
			}
		}
		if bestTo != cur {
			loads[cur] -= s.p.Circuit.Sizes[j]
			loads[bestTo] += s.p.Circuit.Sizes[j]
			u[j] = bestTo
			improved = true
			s.markNeighborsDirty(dirty, j)
		}
	}
	return improved
}

// strongPolish runs feasibility-preserving first-improvement sweeps of
// single moves and pair swaps on a feasible assignment until convergence,
// using the incremental move-delta table. This leaves the final solution
// locally optimal under the same move sets the interchange baselines use —
// the iteration supplies the basin, the polish the local optimum.
func (s *solver) strongPolish(u []int) {
	t, err := gains.New(s.p, s.adj, u)
	if err != nil {
		return
	}
	moveOK := func(j, to int) bool {
		if !t.CapacityOK(j, to) {
			return false
		}
		return s.relax || t.TimingOK(j, to)
	}
	swapOK := func(j1, j2 int) bool {
		if !t.SwapCapacityOK(j1, j2) {
			return false
		}
		return s.relax || t.SwapTimingOK(j1, j2)
	}
	for pass := 0; pass < 40; pass++ {
		if s.ck.Now() {
			break // the gains table is consistent between sweeps
		}
		improved := false
		if s.pool != nil {
			improved = s.strongMoveSweepSharded(t, moveOK)
			if s.strongSwapSweepSharded(t, swapOK) {
				improved = true
			}
		} else {
			for j := 0; j < s.n; j++ {
				cur := t.Partition(j)
				for to := 0; to < s.m; to++ {
					if to == cur || t.Delta(j, to) >= 0 || !moveOK(j, to) {
						continue
					}
					t.Apply(j, to)
					cur = to
					improved = true
				}
			}
			for j1 := 0; j1 < s.n; j1++ {
				for j2 := j1 + 1; j2 < s.n; j2++ {
					if t.Partition(j1) == t.Partition(j2) || t.SwapDelta(j1, j2) >= 0 || !swapOK(j1, j2) {
						continue
					}
					t.ApplySwap(j1, j2)
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	copy(u, t.Assignment())
}

// strongMoveSweepSharded is the single-move sweep of strongPolish with the
// candidate scan sharded: workers mark, from a read-only snapshot of the
// gains table and ignoring the (purely restrictive) capacity and timing
// gates, which components have any improving move at all. Marks are packed
// 64 per word and sharded over whole words, so no two workers ever write
// the same word. The serial apply walk then only visits marked components
// plus those whose neighborhood changed after an applied move — skipping
// clean stretches one fused (cand|dirty) word at a time, with the word
// re-read after every visit so marks set ahead of the cursor are seen,
// exactly as the bool-slice walk saw them — and every visit re-reads the
// live table, so the applied move sequence matches the serial sweep
// exactly.
func (s *solver) strongMoveSweepSharded(t *gains.Table, moveOK func(j, to int) bool) bool {
	sc := s.sc
	sc.ensurePolishBufs()
	cand, dirty := sc.cand, sc.dirty
	cw, dw := cand.Words(), dirty.Words()
	s.pool.forRange(len(cw), func(wlo, whi int) {
		for w := wlo; w < whi; w++ {
			var bw uint64
			base := w << 6
			end := s.n - base
			if end > 64 {
				end = 64
			}
			for b := 0; b < end; b++ {
				j := base + b
				cur := t.Partition(j)
				for to := 0; to < s.m; to++ {
					if to != cur && t.Delta(j, to) < 0 {
						bw |= 1 << uint(b)
						break
					}
				}
			}
			cw[w] = bw
		}
	})
	dirty.Reset()
	improved := false
	for j := 0; j < s.n; {
		w := j >> 6
		rem := (cw[w] | dw[w]) >> uint(j&63)
		if rem == 0 {
			j = (w + 1) << 6
			continue
		}
		j += mbits.TrailingZeros64(rem)
		cur := t.Partition(j)
		for to := 0; to < s.m; to++ {
			if to == cur || t.Delta(j, to) >= 0 || !moveOK(j, to) {
				continue
			}
			t.Apply(j, to)
			cur = to
			improved = true
			s.markNeighborsDirty(dirty, j)
		}
		j++
	}
	return improved
}

// strongSwapSweepSharded is the pair-swap sweep of strongPolish with the
// same snapshot-prefilter scheme: a pair can only have turned profitable
// since the snapshot if one of its endpoints moved or had a neighbor move,
// so unmarked rows need only be checked against dirty partners.
func (s *solver) strongSwapSweepSharded(t *gains.Table, swapOK func(j1, j2 int) bool) bool {
	sc := s.sc
	sc.ensurePolishBufs()
	cand, dirty := sc.cand, sc.dirty
	cw := cand.Words()
	s.pool.forRange(len(cw), func(wlo, whi int) {
		for w := wlo; w < whi; w++ {
			var bw uint64
			base := w << 6
			end := s.n - base
			if end > 64 {
				end = 64
			}
			for b := 0; b < end; b++ {
				j1 := base + b
				for j2 := j1 + 1; j2 < s.n; j2++ {
					if t.Partition(j1) != t.Partition(j2) && t.SwapDelta(j1, j2) < 0 {
						bw |= 1 << uint(b)
						break
					}
				}
			}
			cw[w] = bw
		}
	})
	dirty.Reset()
	improved := false
	apply := func(j1, j2 int) {
		t.ApplySwap(j1, j2)
		improved = true
		dirty.Set(j1)
		dirty.Set(j2)
		s.markNeighborsDirty(dirty, j1)
		s.markNeighborsDirty(dirty, j2)
	}
	for j1 := 0; j1 < s.n; j1++ {
		for j2 := j1 + 1; j2 < s.n; {
			// cand/dirty[j1] are re-read per pair: an applied swap in this
			// very row marks j1 dirty, and the rest of the row must then be
			// scanned in full, exactly as the serial sweep would. While the
			// row stays cold, the cursor jumps straight to the next dirty
			// partner (word-skip over clean stretches).
			if !cand.Test(j1) && !dirty.Test(j1) {
				if j2 = dirty.NextSet(j2); j2 >= s.n {
					break
				}
			}
			if t.Partition(j1) == t.Partition(j2) || t.SwapDelta(j1, j2) >= 0 || !swapOK(j1, j2) {
				j2++
				continue
			}
			apply(j1, j2)
			j2++
		}
	}
	return improved
}

// markNeighborsDirty marks every CSR partner of j in dirty — the shared
// invalidation walk of the sharded polish sweeps.
func (s *solver) markNeighborsDirty(dirty *bitset.Set, j int) {
	cs := s.csr
	lo, hi := cs.Row(j)
	for _, o := range cs.Col[lo:hi] {
		dirty.Set(int(o))
	}
}

// repairPairs tries joint relocations of both endpoints of each violated
// timing constraint — single moves cannot fix a pair whose only legal
// layouts move both components.
func (s *solver) repairPairs(u []int, loads []int64) {
	cs := s.csr
	for round := 0; round < 4; round++ {
		fixedAny := false
		for j1 := 0; j1 < s.n; j1++ {
			rlo, rhi := cs.Row(j1)
			for k := rlo; k < rhi; k++ {
				j2 := int(cs.Col[k])
				md := cs.MaxDelay[k]
				if j2 < j1 || md == model.Unconstrained {
					continue
				}
				s1, s2 := u[j1], u[j2]
				if s.d[s1][s2] <= md && s.d[s2][s1] <= md {
					continue // not violated
				}
				bestDelta := int64(0)
				bestI1, bestI2 := s1, s2
				for i1 := 0; i1 < s.m; i1++ {
					for i2 := 0; i2 < s.m; i2++ {
						if i1 == s1 && i2 == s2 {
							continue
						}
						if !s.jointCapacityOK(u, loads, j1, i1, j2, i2) {
							continue
						}
						if d := s.jointDeltaPenalized(u, j1, i1, j2, i2); d < bestDelta {
							bestDelta, bestI1, bestI2 = d, i1, i2
						}
					}
				}
				if bestI1 != s1 || bestI2 != s2 {
					sz1, sz2 := s.p.Circuit.Sizes[j1], s.p.Circuit.Sizes[j2]
					loads[s1] -= sz1
					loads[s2] -= sz2
					loads[bestI1] += sz1
					loads[bestI2] += sz2
					u[j1], u[j2] = bestI1, bestI2
					fixedAny = true
				}
			}
		}
		if !fixedAny {
			return
		}
	}
}

// jointCapacityOK checks capacities after moving j1→i1 and j2→i2
// simultaneously. The four affected (bin, size-delta) pairs are folded in
// fixed-size arrays — this sits inside repairPairs's M² scan, where a map
// per probe dominated the allocation profile.
func (s *solver) jointCapacityOK(u []int, loads []int64, j1, i1, j2, i2 int) bool {
	sz1, sz2 := s.p.Circuit.Sizes[j1], s.p.Circuit.Sizes[j2]
	bins := [4]int{u[j1], u[j2], i1, i2}
	deltas := [4]int64{-sz1, -sz2, sz1, sz2}
	for x := 0; x < 4; x++ {
		b := bins[x]
		dup := false
		for y := 0; y < x; y++ {
			if bins[y] == b {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		var d int64
		for y := x; y < 4; y++ {
			if bins[y] == b {
				d += deltas[y]
			}
		}
		if loads[b]+d > s.p.Topology.Capacities[b] {
			return false
		}
	}
	return true
}

// jointDeltaPenalized is the exact yᵀQ̂y change of moving j1→i1 and j2→i2
// simultaneously: two CSR row walks, O(deg(j1)+deg(j2)).
func (s *solver) jointDeltaPenalized(u []int, j1, i1, j2, i2 int) int64 {
	s1, s2 := u[j1], u[j2]
	delta := s.p.LinearAt(i1, j1) - s.p.LinearAt(s1, j1) +
		s.p.LinearAt(i2, j2) - s.p.LinearAt(s2, j2)
	cs := s.csr
	lo, hi := cs.Row(j1)
	for k := lo; k < hi; k++ {
		c := int(cs.Class[k])
		w := cs.Weight[k]
		if int(cs.Col[k]) == j2 {
			delta += s.pairCost(i1, i2, c, w) - s.pairCost(s1, s2, c, w)
			continue
		}
		o := u[cs.Col[k]]
		delta += s.pairCost(i1, o, c, w) - s.pairCost(s1, o, c, w)
	}
	lo, hi = cs.Row(j2)
	for k := lo; k < hi; k++ {
		if int(cs.Col[k]) == j1 {
			continue // already counted from j1's side
		}
		o := u[cs.Col[k]]
		c := int(cs.Class[k])
		w := cs.Weight[k]
		delta += s.pairCost(i2, o, c, w) - s.pairCost(s2, o, c, w)
	}
	return delta
}

// EtaComputer performs STEP 3 η accumulations with precomputed sparse
// state. Exposed for the sparse-vs-dense ablation benchmark; Solve uses the
// same flat kernels internally (plus incremental maintenance between
// iterations, which this one-shot API deliberately does not exploit).
type EtaComputer struct {
	s    *solver
	rows [][]float64
}

// NewEtaComputer prepares the sparse state (adjacency lists, ω bounds, flat
// effective-row kernels).
func NewEtaComputer(p *model.Problem, penalty int64) *EtaComputer {
	norm := p.Normalized()
	s := &solver{
		p:       norm,
		adj:     adjacency.Build(norm.Circuit),
		m:       norm.M(),
		n:       norm.N(),
		b:       norm.Topology.Cost,
		d:       norm.Topology.Delay,
		penalty: penalty,
	}
	if s.penalty <= 0 {
		s.penalty = DefaultPenalty
	}
	s.omega = qmatrix.Omega(norm, s.adj, s.penalty)
	s.initKernel()
	s.sc = newScratch(s.m, s.n)
	rows := make([][]float64, s.m)
	for i := range rows {
		//lint:ignore alloc-in-hot-loop one-time construction of the reused result matrix
		rows[i] = make([]float64, s.n)
	}
	return &EtaComputer{s: s, rows: rows}
}

// Compute fills and returns the M×N η matrix for assignment u. The returned
// matrix is reused across calls.
func (e *EtaComputer) Compute(u model.Assignment) [][]float64 {
	s := e.s
	etaI := s.sc.etaI
	s.etaFull(etaI, u, false)
	for i := 0; i < s.m; i++ {
		row := e.rows[i]
		for j := 0; j < s.n; j++ {
			row[j] = float64(etaI[qmatrix.Pack(i, j, s.m)])
		}
	}
	return e.rows
}

// MinConflicts runs a capacity-preserving min-conflicts repair on u in
// place: while timing violations remain, a random conflicted component is
// moved to the partition minimizing its own violation count (ties broken at
// random, occasional noise moves escape plateaus). Returns the number of
// violated constraints remaining after at most maxSteps moves. This is the
// classic constraint-satisfaction tail-cleaner: the QBP iteration reliably
// drives violations to a few percent, and this removes the rest.
func MinConflicts(p *model.Problem, u model.Assignment, seed int64, maxSteps int) int {
	// A zero Checker never fires, so the exported entry point keeps its
	// context-free signature and exact behavior.
	var ck interrupt.Checker
	return minConflicts(p, u, seed, maxSteps, &ck)
}

// minConflicts is the implementation; solver-internal callers thread their
// own Checker so a deadline interrupts the repair walk mid-run (returning
// the current violation count, like every other best-so-far path).
func minConflicts(p *model.Problem, u model.Assignment, seed int64, maxSteps int, ck *interrupt.Checker) int {
	norm := p.Normalized()
	n, m := norm.N(), norm.M()
	d := norm.Topology.Delay
	rng := rand.New(rand.NewSource(seed))

	type cons struct {
		other int
		dc    int64
	}
	cl := make([][]cons, n)
	for _, tc := range norm.Circuit.Timing {
		cl[tc.From] = append(cl[tc.From], cons{tc.To, tc.MaxDelay})
		cl[tc.To] = append(cl[tc.To], cons{tc.From, tc.MaxDelay})
	}
	loads := norm.Loads(u)
	viol := func(j, at int) int {
		v := 0
		for _, c := range cl[j] {
			o := u[c.other]
			if d[at][o] > c.dc || d[o][at] > c.dc {
				v++
			}
		}
		return v
	}

	// Incremental conflict bookkeeping: violCount per component, and the
	// conflicted components kept in a slice with a position index so that
	// membership updates and uniform random choice are both O(1).
	violCount := make([]int, n)
	pos := make([]int, n) // position in conflicted, -1 if absent
	conflicted := make([]int, 0, n)
	for j := 0; j < n; j++ {
		pos[j] = -1
		violCount[j] = viol(j, u[j])
	}
	setConflicted := func(j int) {
		inSet := pos[j] >= 0
		want := violCount[j] > 0
		switch {
		case want && !inSet:
			pos[j] = len(conflicted)
			conflicted = append(conflicted, j)
		case !want && inSet:
			last := conflicted[len(conflicted)-1]
			conflicted[pos[j]] = last
			pos[last] = pos[j]
			conflicted = conflicted[:len(conflicted)-1]
			pos[j] = -1
		}
	}
	for j := 0; j < n; j++ {
		setConflicted(j)
	}

	for step := 0; step < maxSteps; step++ {
		if len(conflicted) == 0 {
			return 0
		}
		if ck.Stop() {
			break
		}
		j := conflicted[rng.Intn(len(conflicted))]
		best := violCount[j]
		var cands []int
		noise := rng.Float64() < 0.08
		for i := 0; i < m; i++ {
			if i == u[j] || loads[i]+norm.Circuit.Sizes[j] > norm.Topology.Capacities[i] {
				continue
			}
			if noise {
				cands = append(cands, i)
				continue
			}
			c := viol(j, i)
			if c < best {
				best = c
				cands = cands[:0]
				cands = append(cands, i)
			} else if c == best {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			continue
		}
		to := cands[rng.Intn(len(cands))]
		from := u[j]
		loads[from] -= norm.Circuit.Sizes[j]
		loads[to] += norm.Circuit.Sizes[j]
		u[j] = to
		// Update violation counts along j's constraints only.
		for _, c := range cl[j] {
			o := u[c.other]
			was := d[from][o] > c.dc || d[o][from] > c.dc
			is := d[to][o] > c.dc || d[o][to] > c.dc
			if was != is {
				delta := 1
				if was {
					delta = -1
				}
				violCount[j] += delta
				violCount[c.other] += delta
				setConflicted(c.other)
			}
		}
		setConflicted(j)
	}
	total := 0
	for _, v := range violCount {
		total += v
	}
	return total / 2
}

// ConstructiveStart builds a capacity-feasible assignment by sequential
// placement: components are visited in BFS order over the coupling graph
// (highest timing degree first), and each is placed on the
// capacity-feasible partition that minimizes the embedded cost against its
// already-placed partners (timing violations at the penalty, wire cost
// otherwise), with load balance as the tie-breaker. On tightly-constrained
// circuits this seeds the iteration far closer to the feasible region than
// a random start.
func ConstructiveStart(p *model.Problem, penalty int64) (model.Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	norm := p.Normalized()
	s := &solver{
		p:   norm,
		adj: adjacency.Build(norm.Circuit),
		m:   norm.M(),
		n:   norm.N(),
		b:   norm.Topology.Cost,
		d:   norm.Topology.Delay,
	}
	if penalty <= 0 {
		penalty = DefaultPenalty
	}
	s.penalty = penalty
	s.initKernel()

	// BFS order seeded by decreasing timing degree.
	cs := s.csr
	tdeg := make([]int, s.n)
	for j := 0; j < s.n; j++ {
		lo, hi := cs.Row(j)
		for k := lo; k < hi; k++ {
			if cs.MaxDelay[k] != model.Unconstrained {
				tdeg[j]++
			}
		}
	}
	seedOrder := make([]int, s.n)
	for j := range seedOrder {
		seedOrder[j] = j
	}
	sort.Slice(seedOrder, func(x, y int) bool {
		if tdeg[seedOrder[x]] != tdeg[seedOrder[y]] {
			return tdeg[seedOrder[x]] > tdeg[seedOrder[y]]
		}
		return seedOrder[x] < seedOrder[y]
	})
	order := make([]int, 0, s.n)
	visited := make([]bool, s.n)
	queue := make([]int, 0, s.n)
	for _, seed := range seedOrder {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		//lint:ignore cancel-poll BFS visits each component exactly once (visited guard); bounded by n
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			order = append(order, j)
			lo, hi := cs.Row(j)
			for k := lo; k < hi; k++ {
				o := int(cs.Col[k])
				if !visited[o] {
					visited[o] = true
					queue = append(queue, o)
				}
			}
		}
	}

	u := make([]int, s.n)
	placed := make([]bool, s.n)
	loads := make([]int64, s.m)
	for _, j := range order {
		bestI, bestCost, bestLoad := -1, int64(math.MaxInt64), int64(0)
		for i := 0; i < s.m; i++ {
			if loads[i]+norm.Circuit.Sizes[j] > norm.Topology.Capacities[i] {
				continue
			}
			var cost int64 = norm.LinearAt(i, j)
			lo, hi := cs.Row(j)
			for k := lo; k < hi; k++ {
				o := int(cs.Col[k])
				if !placed[o] {
					continue
				}
				cost += s.pairCost(i, u[o], int(cs.Class[k]), cs.Weight[k])
			}
			if cost < bestCost || (cost == bestCost && loads[i] < bestLoad) {
				bestI, bestCost, bestLoad = i, cost, loads[i]
			}
		}
		if bestI < 0 {
			return nil, fmt.Errorf("qbp: constructive start: component %d (size %d) does not fit any partition", j, norm.Circuit.Sizes[j])
		}
		u[j] = bestI
		placed[j] = true
		loads[bestI] += norm.Circuit.Sizes[j]
	}
	return u, nil
}

// randomStart draws a random capacity-feasible assignment: components in
// random order, each placed on a random partition that still fits it. If
// that fails (very tight capacities), it falls back to first-fit decreasing
// onto the partition with the most remaining capacity.
func (s *solver) randomStart(rng *rand.Rand) ([]int, error) {
	u := make([]int, s.n)
	remaining := make([]int64, s.m)
	fits := make([]int, 0, s.m)
	for attempt := 0; attempt < 20; attempt++ {
		copy(remaining, s.p.Topology.Capacities)
		order := rng.Perm(s.n)
		ok := true
		for _, j := range order {
			fits = fits[:0]
			for i := 0; i < s.m; i++ {
				if remaining[i] >= s.p.Circuit.Sizes[j] {
					fits = append(fits, i)
				}
			}
			if len(fits) == 0 {
				ok = false
				break
			}
			i := fits[rng.Intn(len(fits))]
			u[j] = i
			remaining[i] -= s.p.Circuit.Sizes[j]
		}
		if ok {
			return u, nil
		}
	}
	// First-fit decreasing: largest components first, each onto the
	// partition with the most remaining capacity.
	order := make([]int, s.n)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := s.p.Circuit.Sizes[order[a]], s.p.Circuit.Sizes[order[b]]
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	copy(remaining, s.p.Topology.Capacities)
	for _, j := range order {
		bestI := 0
		for i := 1; i < s.m; i++ {
			if remaining[i] > remaining[bestI] {
				bestI = i
			}
		}
		if remaining[bestI] < s.p.Circuit.Sizes[j] {
			return nil, fmt.Errorf("qbp: cannot construct a capacity-feasible start (component %d of size %d does not fit)", j, s.p.Circuit.Sizes[j])
		}
		u[j] = bestI
		remaining[bestI] -= s.p.Circuit.Sizes[j]
	}
	return u, nil
}

// FeasibleStart reproduces the paper's protocol for producing the initial
// feasible solution shared by all methods: "use QBP algorithm with matrix B
// set to all zeros; this will generate an initial feasible solution in a
// few iterations". The quadratic cost disappears and only the embedded
// timing penalties (plus any linear term) drive the search, so the first
// timing-feasible iterate is returned.
func FeasibleStart(ctx context.Context, p *model.Problem, seed int64, maxIterations int) (model.Assignment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxIterations <= 0 {
		maxIterations = 30
	}
	zeroB := &model.Topology{
		Capacities: p.Topology.Capacities,
		Cost:       make([][]int64, p.M()),
		Delay:      p.Topology.Delay,
	}
	for i := range zeroB.Cost {
		//lint:ignore alloc-in-hot-loop once-per-call construction of the zero-B topology
		zeroB.Cost[i] = make([]int64, p.M())
	}
	zp := &model.Problem{
		Circuit:  p.Circuit,
		Topology: zeroB,
		Alpha:    p.Alpha,
		Beta:     p.Beta,
		Linear:   p.Linear,
	}
	ck := interrupt.New(ctx, 0)
	// Fast path: constraint-aware constructive placement plus min-conflicts
	// repair clears real circuits in milliseconds to seconds.
	if u, err := ConstructiveStart(zp, 0); err == nil {
		for attempt := 0; attempt < 3; attempt++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			w := append(model.Assignment(nil), u...)
			//lint:ignore alloc-in-hot-loop once-per-start repair attempt, at most three per FeasibleStart call
			if left := minConflicts(zp, w, seed+int64(attempt)*7919, 100*zp.N(), &ck); left == 0 {
				return w, nil
			}
		}
	}
	// Otherwise run the QBP(B=0) iteration from a few starts, each followed
	// by a min-conflicts pass on its best iterate.
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		res, err := Solve(ctx, zp, Options{
			Iterations:     maxIterations,
			Seed:           seed + int64(attempt)*1000003,
			StopOnFeasible: true,
		})
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, err
			}
			continue
		}
		if res.Feasible {
			return res.Assignment, nil
		}
		if res.Stopped {
			break // deadline hit mid-attempt: no feasible start to return
		}
		u := res.Assignment
		//lint:ignore alloc-in-hot-loop once-per-start repair attempt, at most eight per FeasibleStart call
		if left := minConflicts(zp, u, seed+int64(attempt), 30*zp.N(), &ck); left == 0 {
			return u, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, errors.New("qbp: could not reach a timing-feasible start (instance may be infeasible)")
}
