package qbp

import (
	"errors"
	"runtime"
	"sync"

	"repro/internal/model"
)

// MultiStartOptions tunes SolveMultiStart.
type MultiStartOptions struct {
	// Base is the per-start configuration; Seed is overridden per start
	// (Base.Seed + k) and Initial is only used for the first start.
	Base Options
	// Starts is the number of independent runs; ≤ 0 means 4.
	Starts int
	// Workers caps concurrent runs; ≤ 0 means GOMAXPROCS.
	Workers int
}

// SolveMultiStart runs independent seeded solves concurrently and returns
// the best result: the lowest-objective timing-feasible solution if any run
// found one, otherwise the lowest penalized value. The choice is
// deterministic for fixed options (ties broken by start index), regardless
// of scheduling. The paper observes that QBP "maintained the same kind of
// good results from any arbitrary initial solution"; multi-start turns that
// robustness into spare-core speedup — a deliberate extension, since the
// 1993 implementation was sequential.
func SolveMultiStart(p *model.Problem, opts MultiStartOptions) (*Result, error) {
	starts := opts.Starts
	if starts <= 0 {
		starts = 4
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > starts {
		workers = starts
	}

	results := make([]*Result, starts)
	errs := make([]error, starts)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for k := 0; k < starts; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := opts.Base
			o.Seed += int64(k) * 7_368_787
			if k > 0 {
				o.Initial = nil // later starts explore from random points
			}
			results[k], errs[k] = Solve(p, o)
		}(k)
	}
	wg.Wait()

	var best *Result
	var firstErr error
	for k := 0; k < starts; k++ {
		if errs[k] != nil {
			if firstErr == nil {
				firstErr = errs[k]
			}
			continue
		}
		r := results[k]
		if best == nil {
			best = r
			continue
		}
		switch {
		case r.Feasible && !best.Feasible:
			best = r
		case r.Feasible == best.Feasible && r.Feasible && r.Objective < best.Objective:
			best = r
		case r.Feasible == best.Feasible && !r.Feasible && r.Penalized < best.Penalized:
			best = r
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, errors.New("qbp: no start produced a result")
	}
	return best, nil
}
