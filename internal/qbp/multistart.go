package qbp

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/model"
)

// MultiStartOptions tunes SolveMultiStart.
type MultiStartOptions struct {
	// Base is the per-start configuration; Seed is replaced per start by
	// derivedSeed(Base.Seed, k) and Initial is only used for the first
	// start.
	Base Options
	// Starts is the number of independent runs; ≤ 0 means 4.
	Starts int
	// Workers caps concurrent runs; ≤ 0 means GOMAXPROCS.
	Workers int
}

// derivedSeed mixes the base seed and the start index through the
// splitmix64 finalizer, so every (seed, k) pair draws from an independent
// stream. The naive `seed + k·constant` scheme it replaces made user seed s
// at start k+1 replay the identical stream as seed s+constant at start k —
// correlated starts that defeat the point of multistart. Start 0 keeps the
// base seed unchanged, so a single-start multistart is bit-identical to a
// plain Solve with the same options.
func derivedSeed(base int64, k int) int64 {
	if k == 0 {
		return base
	}
	z := uint64(base) + uint64(k)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SolveMultiStart runs independent seeded solves concurrently and returns
// the best result: the lowest-objective timing-feasible solution if any run
// found one, otherwise the lowest penalized value. The choice is
// deterministic for fixed options (ties broken by start index), regardless
// of scheduling. The paper observes that QBP "maintained the same kind of
// good results from any arbitrary initial solution"; multi-start turns that
// robustness into spare-core speedup — a deliberate extension, since the
// 1993 implementation was sequential.
//
// Cancellation: a ctx already cancelled at entry returns ctx.Err() with no
// work started. A ctx cancelled mid-solve stops feeding new starts, lets
// the in-flight ones stop at their own iteration boundaries, waits for
// every worker to drain (no goroutine leaks), and reduces whatever starts
// completed — the result then carries Stopped=true and the best incumbent
// seen. Only when cancellation preempted every single start does the call
// return ctx.Err().
func SolveMultiStart(ctx context.Context, p *model.Problem, opts MultiStartOptions) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	starts := opts.Starts
	if starts <= 0 {
		starts = 4
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > starts {
		workers = starts
	}

	results := make([]*Result, starts)
	errs := make([]error, starts)
	// Exactly `workers` goroutines drain the start indices — not one
	// goroutine per start parked on a semaphore, which stacked `starts`
	// goroutines (and their solver state) up front. Each worker owns one
	// scratch buffer set, reused across every start it runs: all starts
	// solve the same problem shape, so the per-solve allocations of the
	// pipeline are paid once per worker instead of once per start.
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newScratch(p.M(), p.N())
			// The drain is cancellation-bounded one level up: the feed
			// loop below stops dispatching on ctx.Done and closes jobs,
			// and each Solve polls the same ctx internally.
			//lint:ignore cancel-poll jobs is closed by the ctx-gated feed loop and every Solve polls ctx itself
			for k := range jobs {
				o := opts.Base
				o.Seed = derivedSeed(opts.Base.Seed, k)
				if k > 0 {
					o.Initial = nil // later starts explore from random points
				}
				o.sc = sc
				o.progressStart = k
				results[k], errs[k] = Solve(ctx, p, o)
			}
		}()
	}
	// Feed until done or cancelled; on cancellation the remaining starts
	// are simply never dispatched, the in-flight ones stop at their next
	// check, and the close/Wait below still runs — workers always drain.
feed:
	for k := 0; k < starts; k++ {
		select {
		case jobs <- k:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	var best *Result
	bestK := -1
	var stats SolveStats
	stopped := false
	var firstErr error
	for k := 0; k < starts; k++ {
		if errs[k] != nil {
			// ctx errors from preempted starts are not solve failures —
			// their absence from the reduction is what cancellation means.
			if !errors.Is(errs[k], context.Canceled) && !errors.Is(errs[k], context.DeadlineExceeded) && firstErr == nil {
				firstErr = errs[k]
			}
			continue
		}
		r := results[k]
		if r == nil {
			continue // never dispatched
		}
		stats.add(r.Stats)
		if r.Stopped {
			stopped = true
		}
		if best == nil {
			best, bestK = r, k
			continue
		}
		switch {
		case r.Feasible && !best.Feasible:
			best, bestK = r, k
		case r.Feasible == best.Feasible && r.Feasible && r.Objective < best.Objective:
			best, bestK = r, k
		case r.Feasible == best.Feasible && !r.Feasible && r.Penalized < best.Penalized:
			best, bestK = r, k
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, firstErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err // cancelled before any start completed
		}
		return nil, errors.New("qbp: no start produced a result")
	}
	// The winner's Result is shared with results[bestK]; copy before
	// folding the aggregate telemetry in so per-start data stays intact.
	agg := *best
	stats.Trajectory = results[bestK].Stats.Trajectory
	agg.Stats = stats
	agg.Stopped = stopped || ctx.Err() != nil
	return &agg, nil
}
