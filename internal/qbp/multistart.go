package qbp

import (
	"errors"
	"runtime"
	"sync"

	"repro/internal/model"
)

// MultiStartOptions tunes SolveMultiStart.
type MultiStartOptions struct {
	// Base is the per-start configuration; Seed is overridden per start
	// (Base.Seed + k) and Initial is only used for the first start.
	Base Options
	// Starts is the number of independent runs; ≤ 0 means 4.
	Starts int
	// Workers caps concurrent runs; ≤ 0 means GOMAXPROCS.
	Workers int
}

// SolveMultiStart runs independent seeded solves concurrently and returns
// the best result: the lowest-objective timing-feasible solution if any run
// found one, otherwise the lowest penalized value. The choice is
// deterministic for fixed options (ties broken by start index), regardless
// of scheduling. The paper observes that QBP "maintained the same kind of
// good results from any arbitrary initial solution"; multi-start turns that
// robustness into spare-core speedup — a deliberate extension, since the
// 1993 implementation was sequential.
func SolveMultiStart(p *model.Problem, opts MultiStartOptions) (*Result, error) {
	starts := opts.Starts
	if starts <= 0 {
		starts = 4
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > starts {
		workers = starts
	}

	results := make([]*Result, starts)
	errs := make([]error, starts)
	// Exactly `workers` goroutines drain the start indices — not one
	// goroutine per start parked on a semaphore, which stacked `starts`
	// goroutines (and their solver state) up front. Each worker owns one
	// scratch buffer set, reused across every start it runs: all starts
	// solve the same problem shape, so the per-solve allocations of the
	// pipeline are paid once per worker instead of once per start.
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newScratch(p.M(), p.N())
			for k := range jobs {
				o := opts.Base
				o.Seed += int64(k) * 7_368_787
				if k > 0 {
					o.Initial = nil // later starts explore from random points
				}
				o.sc = sc
				results[k], errs[k] = Solve(p, o)
			}
		}()
	}
	for k := 0; k < starts; k++ {
		jobs <- k
	}
	close(jobs)
	wg.Wait()

	var best *Result
	var firstErr error
	for k := 0; k < starts; k++ {
		if errs[k] != nil {
			if firstErr == nil {
				firstErr = errs[k]
			}
			continue
		}
		r := results[k]
		if best == nil {
			best = r
			continue
		}
		switch {
		case r.Feasible && !best.Feasible:
			best = r
		case r.Feasible == best.Feasible && r.Feasible && r.Objective < best.Objective:
			best = r
		case r.Feasible == best.Feasible && !r.Feasible && r.Penalized < best.Penalized:
			best = r
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, errors.New("qbp: no start produced a result")
	}
	return best, nil
}
