package qbp

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/testgen"
)

func TestConstructiveStartProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N: 20 + rng.Intn(20), TimingProb: 0.3, CapSlack: 1.2 + rng.Float64(),
			WithLinear: trial%2 == 0,
		})
		u, err := ConstructiveStart(p, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		norm := p.Normalized()
		if len(u) != norm.N() || !u.Valid(norm.M()) {
			t.Fatalf("trial %d: incomplete start", trial)
		}
		if !norm.CapacityFeasible(u) {
			t.Fatalf("trial %d: capacity violated", trial)
		}
	}
}

func TestConstructiveStartDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	p, _ := testgen.Random(rng, testgen.Config{N: 25, TimingProb: 0.3})
	a, err := ConstructiveStart(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConstructiveStart(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("nondeterministic at component %d", j)
		}
	}
}

func TestConstructiveStartImpossibleCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	p, _ := testgen.Random(rng, testgen.Config{N: 10})
	for i := range p.Topology.Capacities {
		p.Topology.Capacities[i] = 0
	}
	if _, err := ConstructiveStart(p, 0); err == nil {
		t.Fatal("zero capacities accepted")
	}
}

func TestMinConflictsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 15; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N: 20, GridRows: 2, GridCols: 3, TimingProb: 0.4, CapSlack: 1.4,
		})
		norm := p.Normalized()
		u := make(model.Assignment, p.N())
		// Random capacity-feasible start via first-fit.
		remaining := append([]int64(nil), norm.Topology.Capacities...)
		for j := range u {
			for {
				i := rng.Intn(norm.M())
				if remaining[i] >= norm.Circuit.Sizes[j] {
					u[j] = i
					remaining[i] -= norm.Circuit.Sizes[j]
					break
				}
			}
		}
		before := norm.CountTimingViolations(u)
		left := MinConflicts(p, u, int64(trial), 50*p.N())
		// Reported count must match reality.
		if got := norm.CountTimingViolations(u); got != left {
			t.Fatalf("trial %d: reported %d violations, actual %d", trial, left, got)
		}
		// Capacity feasibility is preserved.
		if !norm.CapacityFeasible(u) {
			t.Fatalf("trial %d: capacity broken by repair", trial)
		}
		// The repair never increases violations (it only accepts
		// non-worsening moves aside from bounded noise, and reports the
		// end state).
		if left > before {
			t.Fatalf("trial %d: violations rose %d → %d", trial, before, left)
		}
	}
}

func TestMinConflictsNoConstraintsIsNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	p, golden := testgen.Random(rng, testgen.Config{N: 12, TimingProb: 0.0001})
	p.Circuit.Timing = nil
	u := golden.Clone()
	if left := MinConflicts(p, u, 0, 100); left != 0 {
		t.Fatalf("violations on a constraint-free circuit: %d", left)
	}
	for j := range u {
		if u[j] != golden[j] {
			t.Fatal("repair moved components with nothing to repair")
		}
	}
}

func TestEtaComputerMatchesDenseColumnSums(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	p, golden := testgen.Random(rng, testgen.Config{N: 8, TimingProb: 0.4})
	ec := NewEtaComputer(p, DefaultPenalty)
	eta := ec.Compute(golden)
	// Reference: dense column sums over Q̂, with the diagonal (linear)
	// entries charged at every slot per the Gilmore–Lawler refinement.
	norm := p.Normalized()
	m, n := norm.M(), norm.N()
	qhat := denseRef(norm, DefaultPenalty)
	for j2 := 0; j2 < n; j2++ {
		for i2 := 0; i2 < m; i2++ {
			var want float64
			s := i2 + j2*m
			for j1, i1 := range golden {
				if j1 == j2 {
					continue // diagonal handled below
				}
				want += float64(qhat[i1+j1*m][s])
			}
			want += float64(norm.LinearAt(i2, j2))
			if eta[i2][j2] != want {
				t.Fatalf("η[%d][%d] = %v, want %v", i2, j2, eta[i2][j2], want)
			}
		}
	}
}

// denseRef builds Q̂ with the same semantics as qmatrix.DenseQhat, inlined
// to keep this test independent of that package's implementation.
func denseRef(p *model.Problem, penalty int64) [][]int64 {
	m, n := p.M(), p.N()
	q := make([][]int64, m*n)
	for r := range q {
		q[r] = make([]int64, m*n)
	}
	b, d := p.Topology.Cost, p.Topology.Delay
	type key struct{ a, b int }
	w := map[key]int64{}
	dc := map[key]int64{}
	for _, wire := range p.Circuit.Wires {
		w[key{wire.From, wire.To}] += wire.Weight
		w[key{wire.To, wire.From}] += wire.Weight
	}
	for _, t := range p.Circuit.Timing {
		for _, k := range []key{{t.From, t.To}, {t.To, t.From}} {
			if cur, ok := dc[k]; !ok || t.MaxDelay < cur {
				dc[k] = t.MaxDelay
			}
		}
	}
	for j1 := 0; j1 < n; j1++ {
		for j2 := 0; j2 < n; j2++ {
			if j1 == j2 {
				continue
			}
			k := key{j1, j2}
			for i1 := 0; i1 < m; i1++ {
				for i2 := 0; i2 < m; i2++ {
					bound, constrained := dc[k]
					if constrained && d[i1][i2] > bound {
						q[i1+j1*m][i2+j2*m] = penalty
					} else {
						q[i1+j1*m][i2+j2*m] = w[k] * b[i1][i2]
					}
				}
			}
		}
	}
	return q
}
