package qbp

// Exactness tests for the flat performance kernels: the incremental η
// maintenance, the flat penalizedValue, and the Workers-sharded pipeline
// must agree bit for bit with their straightforward reference
// implementations — the PR 2 rework is a pure cost saving, never a
// behavioral change.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/adjacency"
	"repro/internal/model"
	"repro/internal/qmatrix"
	"repro/internal/sparsemat"
	"repro/internal/testgen"
)

// newTestSolver builds a solver with the flat kernels initialized, the way
// Solve does internally.
func newTestSolver(p *model.Problem, penalty int64, relax bool) *solver {
	norm := p.Normalized()
	s := &solver{
		p:       norm,
		adj:     adjacency.Build(norm.Circuit),
		m:       norm.M(),
		n:       norm.N(),
		b:       norm.Topology.Cost,
		d:       norm.Topology.Delay,
		penalty: penalty,
		relax:   relax,
	}
	s.omega = qmatrix.Omega(norm, s.adj, s.effectivePenalty())
	s.initKernel()
	s.sc = newScratch(s.m, s.n)
	return s
}

// checkEtaIncremental drives refreshEta through a sequence of perturbations
// and asserts exact equality with a from-scratch recompute after each one.
func checkEtaIncremental(t *testing.T, seed int64, moves int, withOmega, relax bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p, _ := testgen.Random(rng, testgen.Config{
		N: 15 + rng.Intn(25), TimingProb: 0.4, WithLinear: seed%2 == 0,
	})
	s := newTestSolver(p, DefaultPenalty, relax)
	u := make([]int, s.n)
	for j := range u {
		u[j] = rng.Intn(s.m)
	}
	got := s.refreshEta(u, withOmega) // full compute seeds the buffer
	want := make([]int64, s.m*s.n)
	for step := 0; step < 12; step++ {
		// Perturb a random subset (sometimes large, forcing the full-rebuild
		// branch; sometimes empty, the no-op branch).
		for x := 0; x < moves*(step%3); x++ {
			u[rng.Intn(s.n)] = rng.Intn(s.m)
		}
		got = s.refreshEta(u, withOmega)
		s.etaFull(want, u, withOmega)
		for r := range want {
			if got[r] != want[r] {
				i, j := qmatrix.Unpack(r, s.m)
				t.Fatalf("seed=%d step=%d: η[%d][%d] = %d, want %d (incremental diverged)",
					seed, step, i, j, got[r], want[r])
			}
		}
	}
}

func TestEtaIncrementalMatchesFull(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		checkEtaIncremental(t, seed, 1+int(seed%5), seed%3 == 0, seed%4 == 3)
	}
}

func FuzzEtaIncremental(f *testing.F) {
	f.Add(int64(1), 3, false, false)
	f.Add(int64(2), 1, true, false)
	f.Add(int64(3), 8, false, true)
	f.Add(int64(4), 20, true, true)
	f.Fuzz(func(t *testing.T, seed int64, moves int, withOmega, relax bool) {
		if moves < 0 || moves > 64 {
			t.Skip()
		}
		checkEtaIncremental(t, seed, moves, withOmega, relax)
	})
}

// refPenalizedValue is the branchy per-entry reference the flat kernel
// replaced: linear term plus, per ordered coupled pair, the raised penalty
// or the wire coupling.
func refPenalizedValue(s *solver, u []int) int64 {
	var v int64
	for j := 0; j < s.n; j++ {
		v += s.p.LinearAt(u[j], j)
	}
	for j1 := 0; j1 < s.n; j1++ {
		i1 := u[j1]
		for _, arc := range s.adj.Arcs[j1] {
			i2 := u[arc.Other]
			if !s.relax && arc.MaxDelay != model.Unconstrained && s.d[i1][i2] > arc.MaxDelay {
				v += s.penalty
			} else {
				v += arc.Weight * s.b[i1][i2]
			}
		}
	}
	return v
}

func TestPenalizedValueMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N: 10 + rng.Intn(30), TimingProb: 0.5, WithLinear: trial%2 == 0,
		})
		s := newTestSolver(p, DefaultPenalty, trial%5 == 4)
		u := make([]int, s.n)
		for probe := 0; probe < 10; probe++ {
			for j := range u {
				u[j] = rng.Intn(s.m)
			}
			if got, want := s.penalizedValue(u), refPenalizedValue(s, u); got != want {
				t.Fatalf("trial %d: penalizedValue = %d, want %d", trial, got, want)
			}
			// Move deltas must match value differences exactly.
			j, to := rng.Intn(s.n), rng.Intn(s.m)
			before := s.penalizedValue(u)
			d := s.moveDeltaPenalized(u, j, to)
			old := u[j]
			u[j] = to
			if after := s.penalizedValue(u); after-before != d {
				t.Fatalf("trial %d: moveDelta(%d→%d) = %d, value change %d", trial, old, to, d, after-before)
			}
		}
	}
}

// TestWorkersIndependence is the determinism contract of qbp.Options.Workers:
// a fixed seed yields the identical assignment no matter how the pipeline is
// sharded — for both coupling representations (the sparse kernels use
// balanced-arc-mass shard boundaries, the dense ones the same; both write
// disjoint columns). Run under -race this also exercises the pool for data
// races.
func TestWorkersIndependence(t *testing.T) {
	assertNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4; trial++ {
		cfg := testgen.Config{N: 30 + rng.Intn(30), TimingProb: 0.3, CapSlack: 1.4}
		if trial%2 == 1 {
			// Sparse-sampled instances exercise the CSR kernels and the
			// skewed-degree shard balancing.
			cfg.AvgDegree = 3 + 5*rng.Float64()
		}
		p, _ := testgen.Random(rng, cfg)
		for _, rep := range []sparsemat.Rep{sparsemat.RepSparse, sparsemat.RepDense} {
			base := Options{Iterations: 25, Seed: int64(trial), Matrix: rep}
			ref, err := Solve(context.Background(), p, base)
			if err != nil {
				t.Fatalf("trial %d rep=%v: %v", trial, rep, err)
			}
			for _, workers := range []int{2, 3, 7} {
				o := base
				o.Workers = workers
				got, err := Solve(context.Background(), p, o)
				if err != nil {
					t.Fatalf("trial %d rep=%v workers=%d: %v", trial, rep, workers, err)
				}
				if got.Objective != ref.Objective || got.Penalized != ref.Penalized {
					t.Fatalf("trial %d rep=%v workers=%d: objective %d/%d, want %d/%d",
						trial, rep, workers, got.Objective, got.Penalized, ref.Objective, ref.Penalized)
				}
				for j := range ref.Assignment {
					if got.Assignment[j] != ref.Assignment[j] {
						t.Fatalf("trial %d rep=%v workers=%d: assignment diverged at component %d",
							trial, rep, workers, j)
					}
				}
			}
		}
	}
}

// TestMultiStartSharedScratch checks that the per-worker scratch reuse does
// not leak state between starts: serial (1 worker) and concurrent runs pick
// the same winner.
func TestMultiStartSharedScratch(t *testing.T) {
	assertNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(101))
	p, _ := testgen.Random(rng, testgen.Config{N: 40, TimingProb: 0.3, CapSlack: 1.4})
	base := Options{Iterations: 15, Seed: 5}
	ref, err := SolveMultiStart(context.Background(), p, MultiStartOptions{Base: base, Starts: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		got, err := SolveMultiStart(context.Background(), p, MultiStartOptions{Base: base, Starts: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Objective != ref.Objective || got.Penalized != ref.Penalized || got.Feasible != ref.Feasible {
			t.Fatalf("workers=%d: %d/%d/%v, want %d/%d/%v", workers,
				got.Objective, got.Penalized, got.Feasible, ref.Objective, ref.Penalized, ref.Feasible)
		}
		for j := range ref.Assignment {
			if got.Assignment[j] != ref.Assignment[j] {
				t.Fatalf("workers=%d: assignment diverged at component %d", workers, j)
			}
		}
	}
}
