package qbp

// Bit-exactness tests for the coupling-representation choice: the CSR and
// dense kernels must agree exactly — η columns, penalized values and move
// deltas, final assignments — across random instances (sparse and dense),
// every Workers value, and mid-solve cancellation. The representation is a
// cost model, never a behavior.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/adjacency"
	"repro/internal/model"
	"repro/internal/qmatrix"
	"repro/internal/sparsemat"
	"repro/internal/testgen"
)

// newTestSolverRep is newTestSolver with a forced coupling representation.
func newTestSolverRep(p *model.Problem, penalty int64, relax bool, rep sparsemat.Rep) *solver {
	norm := p.Normalized()
	s := &solver{
		p:       norm,
		adj:     adjacency.Build(norm.Circuit),
		m:       norm.M(),
		n:       norm.N(),
		b:       norm.Topology.Cost,
		d:       norm.Topology.Delay,
		penalty: penalty,
		relax:   relax,
		repReq:  rep,
	}
	s.omega = qmatrix.Omega(norm, s.adj, s.effectivePenalty())
	s.initKernel()
	s.sc = newScratch(s.m, s.n)
	return s
}

// repTestInstance draws instances across the density spectrum: sparse
// sampled (bounded average degree), dense Bernoulli, and tiny.
func repTestInstance(rng *rand.Rand, trial int) *model.Problem {
	var cfg testgen.Config
	switch trial % 3 {
	case 0:
		cfg = testgen.Config{N: 30 + rng.Intn(40), AvgDegree: 2 + 4*rng.Float64(), TimingProb: 0.4}
	case 1:
		cfg = testgen.Config{N: 15 + rng.Intn(20), WireProb: 0.6, TimingProb: 0.4, WithLinear: true}
	default:
		cfg = testgen.Config{N: 4 + rng.Intn(6), WireProb: 0.4, TimingProb: 0.5}
	}
	p, _ := testgen.Random(rng, cfg)
	return p
}

// TestRepKernelsBitExact drives the sparse and dense kernel stacks side by
// side over the same perturbation sequence and asserts exact equality of η
// (full and incremental), penalized values, and move/joint deltas.
func TestRepKernelsBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 18; trial++ {
		p := repTestInstance(rng, trial)
		relax := trial%5 == 4
		sp := newTestSolverRep(p, DefaultPenalty, relax, sparsemat.RepSparse)
		dn := newTestSolverRep(p, DefaultPenalty, relax, sparsemat.RepDense)
		if sp.dns != nil || dn.dns == nil {
			t.Fatalf("trial %d: forced representations not honored", trial)
		}
		u := make([]int, sp.n)
		for j := range u {
			u[j] = rng.Intn(sp.m)
		}
		withOmega := trial%2 == 0
		for step := 0; step < 8; step++ {
			gotS := sp.refreshEta(u, withOmega)
			gotD := dn.refreshEta(u, withOmega)
			for r := range gotS {
				if gotS[r] != gotD[r] {
					i, j := qmatrix.Unpack(r, sp.m)
					t.Fatalf("trial %d step %d: η[%d][%d] sparse %d vs dense %d",
						trial, step, i, j, gotS[r], gotD[r])
				}
			}
			if vs, vd := sp.penalizedValue(u), dn.penalizedValue(u); vs != vd {
				t.Fatalf("trial %d step %d: penalizedValue sparse %d vs dense %d", trial, step, vs, vd)
			}
			j, to := rng.Intn(sp.n), rng.Intn(sp.m)
			if ds, dd := sp.moveDeltaPenalized(u, j, to), dn.moveDeltaPenalized(u, j, to); ds != dd {
				t.Fatalf("trial %d step %d: moveDelta sparse %d vs dense %d", trial, step, ds, dd)
			}
			j2 := rng.Intn(sp.n)
			i1, i2 := rng.Intn(sp.m), rng.Intn(sp.m)
			if j2 != j {
				if ds, dd := sp.jointDeltaPenalized(u, j, i1, j2, i2), dn.jointDeltaPenalized(u, j, i1, j2, i2); ds != dd {
					t.Fatalf("trial %d step %d: jointDelta sparse %d vs dense %d", trial, step, ds, dd)
				}
			}
			// Perturb: sometimes one component, sometimes many (forcing the
			// full-rebuild heuristic on the next refresh).
			for x := 0; x < 1+(step%3)*sp.n/3; x++ {
				u[rng.Intn(sp.n)] = rng.Intn(sp.m)
			}
		}
	}
}

// checkRepEquality solves one instance under both forced representations
// (and auto), across Workers values, asserting identical results.
func checkRepEquality(t *testing.T, seed int64, iterations, workers int, relax bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := repTestInstance(rng, int(seed))
	base := Options{Iterations: iterations, Seed: seed, RelaxTiming: relax}
	base.Matrix = sparsemat.RepSparse
	ref, err := Solve(context.Background(), p, base)
	if err != nil {
		t.Fatalf("seed %d sparse: %v", seed, err)
	}
	if ref.Stats.Matrix != "sparse" {
		t.Fatalf("seed %d: forced sparse reported %q", seed, ref.Stats.Matrix)
	}
	for _, rep := range []sparsemat.Rep{sparsemat.RepDense, sparsemat.RepAuto} {
		o := base
		o.Matrix = rep
		o.Workers = workers
		got, err := Solve(context.Background(), p, o)
		if err != nil {
			t.Fatalf("seed %d rep=%v: %v", seed, rep, err)
		}
		if got.Objective != ref.Objective || got.Penalized != ref.Penalized || got.Feasible != ref.Feasible {
			t.Fatalf("seed %d rep=%v workers=%d: %d/%d/%v, want %d/%d/%v", seed, rep, workers,
				got.Objective, got.Penalized, got.Feasible, ref.Objective, ref.Penalized, ref.Feasible)
		}
		for j := range ref.Assignment {
			if got.Assignment[j] != ref.Assignment[j] {
				t.Fatalf("seed %d rep=%v workers=%d: assignment diverged at component %d", seed, rep, workers, j)
			}
		}
		if got.Stats.Matrix == "" || got.Stats.NNZ != ref.Stats.NNZ || got.Stats.Density != ref.Stats.Density {
			t.Fatalf("seed %d rep=%v: stats matrix=%q nnz=%d density=%v, want nnz=%d density=%v",
				seed, rep, got.Stats.Matrix, got.Stats.NNZ, got.Stats.Density, ref.Stats.NNZ, ref.Stats.Density)
		}
	}
}

// TestRepEquality is the end-to-end contract: same seed ⇒ same assignment
// regardless of representation or Workers.
func TestRepEquality(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		checkRepEquality(t, seed, 12, 1+int(seed%4)*3, seed%4 == 3)
	}
}

func FuzzRepEquality(f *testing.F) {
	f.Add(int64(1), 5, 1, false)
	f.Add(int64(2), 10, 3, false)
	f.Add(int64(3), 8, 7, true)
	f.Fuzz(func(t *testing.T, seed int64, iterations, workers int, relax bool) {
		if iterations < 1 || iterations > 20 || workers < 1 || workers > 8 {
			t.Skip()
		}
		checkRepEquality(t, seed, iterations, workers, relax)
	})
}

// TestRepEqualityUnderCancellation cancels both representations' solves at
// the same iteration boundary and asserts they stop on the same incumbent:
// the PR 4 determinism-under-cancellation contract is representation-blind.
func TestRepEqualityUnderCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		p := repTestInstance(rng, trial)
		stopAt := 3 + trial
		run := func(rep sparsemat.Rep) *Result {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			res, err := Solve(ctx, p, Options{
				Iterations: 50,
				Seed:       int64(trial),
				Matrix:     rep,
				OnIteration: func(it Iteration) {
					if it.K == stopAt {
						cancel()
					}
				},
			})
			if err != nil {
				t.Fatalf("trial %d rep=%v: %v", trial, rep, err)
			}
			return res
		}
		ref := run(sparsemat.RepSparse)
		got := run(sparsemat.RepDense)
		if !ref.Stopped || !got.Stopped {
			t.Fatalf("trial %d: stopped sparse=%v dense=%v, want both", trial, ref.Stopped, got.Stopped)
		}
		if got.Objective != ref.Objective || got.Penalized != ref.Penalized {
			t.Fatalf("trial %d: cancelled objectives diverged: %d/%d vs %d/%d",
				trial, got.Objective, got.Penalized, ref.Objective, ref.Penalized)
		}
		for j := range ref.Assignment {
			if got.Assignment[j] != ref.Assignment[j] {
				t.Fatalf("trial %d: cancelled assignment diverged at component %d", trial, j)
			}
		}
	}
}

// TestMatrixOptionValidation pins the Options.Matrix contract: out-of-range
// values error up front, valid ones resolve and are reported in the stats.
func TestMatrixOptionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, _ := testgen.Random(rng, testgen.Config{N: 12})
	if _, err := Solve(context.Background(), p, Options{Iterations: 1, Matrix: sparsemat.Rep(99)}); err == nil {
		t.Fatal("invalid Matrix value must be rejected")
	}
	res, err := Solve(context.Background(), p, Options{Iterations: 1, Matrix: sparsemat.RepDense})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Matrix != "dense" || res.Stats.NNZ == 0 || res.Stats.Density <= 0 {
		t.Fatalf("stats not populated: matrix=%q nnz=%d density=%v",
			res.Stats.Matrix, res.Stats.NNZ, res.Stats.Density)
	}
	// A tiny threshold flips auto to dense on any coupled instance.
	res, err = Solve(context.Background(), p, Options{Iterations: 1, MatrixDensityThreshold: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Matrix != "dense" {
		t.Fatalf("threshold override ignored: resolved %q", res.Stats.Matrix)
	}
}
