package qbp

import "sync"

// pool is a reusable worker pool for the solve pipeline's shardable loops
// (the η/h accumulations and the polish candidate scans). Workers are
// started once per solve and fed closures over a channel, so per-iteration
// sharding costs a channel send per chunk rather than a goroutine spawn.
//
// Every loop dispatched here writes disjoint index ranges (or only reads),
// so the reduction is deterministic by construction: sharded runs produce
// bit-identical results to serial ones.
type pool struct {
	workers int
	tasks   chan func()
	once    sync.Once
	wg      sync.WaitGroup // worker goroutine lifetimes
}

// newPool returns a pool of the given width, or nil for workers ≤ 1 — the
// nil pool runs everything inline, which is the serial reference path.
func newPool(workers int) *pool {
	if workers <= 1 {
		return nil
	}
	return &pool{workers: workers}
}

func (p *pool) start() {
	p.tasks = make(chan func(), p.workers)
	for w := 0; w < p.workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
}

// close shuts the workers down. Safe on a nil or never-started pool.
func (p *pool) close() {
	if p == nil || p.tasks == nil {
		return
	}
	close(p.tasks)
	p.wg.Wait()
}

// forRange splits [0, n) into contiguous chunks and runs fn on each, one
// chunk per worker, blocking until all complete. fn must only touch state
// owned by its chunk. A nil pool (or a range too small to shard) runs
// fn(0, n) inline.
func (p *pool) forRange(n int, fn func(lo, hi int)) {
	if p == nil || n < 2*p.workers {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	p.once.Do(p.start)
	chunk := (n + p.workers - 1) / p.workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo := lo
		wg.Add(1)
		p.tasks <- func() {
			defer wg.Done()
			fn(lo, hi)
		}
	}
	wg.Wait()
}

// forShards runs fn over precomputed row-range boundaries (len(bounds)-1
// contiguous shards, e.g. sparsemat.CSR.BalancedShards output), one shard
// per task, blocking until all complete. Unlike forRange's equal-count
// chunks, the boundaries carry the load-balancing decision — equal arc
// mass, not equal row counts. fn must only touch state owned by its shard.
// A nil pool runs the whole span inline; empty shards are skipped.
func (p *pool) forShards(bounds []int, fn func(lo, hi int)) {
	n := len(bounds) - 1
	if n < 1 {
		return
	}
	if p == nil {
		if bounds[0] < bounds[n] {
			fn(bounds[0], bounds[n])
		}
		return
	}
	p.once.Do(p.start)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		lo, hi := bounds[s], bounds[s+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		p.tasks <- func() {
			defer wg.Done()
			fn(lo, hi)
		}
	}
	wg.Wait()
}
