package qbp

// Micro-benchmarks for the flat solve kernels, measured against the
// pre-kernel reference implementations (kept here verbatim as baselines).
// `make bench` folds these into BENCH_PR2.json.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/sparsemat"
	"repro/internal/testgen"
)

// referenceComputeEta is the branchy per-entry STEP 3 accumulation the
// effective-row kernel replaced: per arc, per target partition, a timing
// test against the delay matrix selects penalty or weighted coupling.
func referenceComputeEta(s *solver, u []int, eta [][]float64) {
	for i := 0; i < s.m; i++ {
		row := eta[i]
		for j := range row {
			row[j] = 0
		}
	}
	for j2 := 0; j2 < s.n; j2++ {
		for _, arc := range s.adj.Arcs[j2] {
			i1 := u[arc.Other]
			brow := s.b[i1]
			drow := s.d[i1]
			if s.relax || arc.MaxDelay == model.Unconstrained {
				if arc.Weight == 0 {
					continue
				}
				for i2 := 0; i2 < s.m; i2++ {
					eta[i2][j2] += float64(arc.Weight * brow[i2])
				}
			} else {
				for i2 := 0; i2 < s.m; i2++ {
					if drow[i2] > arc.MaxDelay {
						eta[i2][j2] += float64(s.penalty)
					} else {
						eta[i2][j2] += float64(arc.Weight * brow[i2])
					}
				}
			}
		}
		if s.p.Linear != nil {
			for i2 := 0; i2 < s.m; i2++ {
				eta[i2][j2] += float64(s.p.LinearAt(i2, j2))
			}
		}
	}
}

func benchSolver(b *testing.B, n int) (*solver, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	p, _ := testgen.Random(rng, testgen.Config{N: n, TimingProb: 0.4})
	s := newTestSolver(p, DefaultPenalty, false)
	u := make([]int, s.n)
	for j := range u {
		u[j] = rng.Intn(s.m)
	}
	return s, u
}

// benchSolverRep is benchSolver with an explicit instance shape and a forced
// coupling representation, for the sparse-vs-dense sweeps.
func benchSolverRep(b *testing.B, cfg testgen.Config, rep sparsemat.Rep) (*solver, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	p, _ := testgen.Random(rng, cfg)
	s := newTestSolverRep(p, DefaultPenalty, false, rep)
	u := make([]int, s.n)
	for j := range u {
		u[j] = rng.Intn(s.m)
	}
	return s, u
}

// repSweep spans the density spectrum the representation choice is about:
// bounded-fan-out netlists (the paper's instances) and a dense Bernoulli
// control where the CSR walk should roughly tie the dense row scan.
var repSweep = []struct {
	name string
	cfg  testgen.Config
}{
	{"deg4", testgen.Config{N: 400, AvgDegree: 4, TimingProb: 0.3}},
	{"deg16", testgen.Config{N: 400, AvgDegree: 16, TimingProb: 0.3}},
	{"p50", testgen.Config{N: 400, WireProb: 0.5, TimingProb: 0.3}},
}

func BenchmarkComputeEta(b *testing.B) {
	for _, n := range []int{60, 250} {
		s, u := benchSolver(b, n)
		rows := make([][]float64, s.m)
		for i := range rows {
			rows[i] = make([]float64, s.n)
		}
		b.Run(fmt.Sprintf("reference/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				referenceComputeEta(s, u, rows)
			}
		})
		b.Run(fmt.Sprintf("kernel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				s.etaFull(s.sc.etaI, u, false)
			}
		})
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			s.sc.etaValid = false
			s.refreshEta(u, false)
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				// A typical between-iteration diff: a handful of moves.
				for x := 0; x < 4; x++ {
					u[rng.Intn(s.n)] = rng.Intn(s.m)
				}
				s.refreshEta(u, false)
			}
		})
	}
	// Full-η recompute, CSR vs forced-dense, across the density sweep:
	// O(nnz·M) against O(N²·M).
	for _, dc := range repSweep {
		for _, rep := range []sparsemat.Rep{sparsemat.RepSparse, sparsemat.RepDense} {
			s, u := benchSolverRep(b, dc.cfg, rep)
			b.Run(fmt.Sprintf("%s/%s/n=%d", dc.name, rep, s.n), func(b *testing.B) {
				b.ReportAllocs()
				for k := 0; k < b.N; k++ {
					s.etaFull(s.sc.etaI, u, false)
				}
			})
		}
	}
}

func BenchmarkPenalizedValue(b *testing.B) {
	for _, n := range []int{60, 250} {
		s, u := benchSolver(b, n)
		b.Run(fmt.Sprintf("reference/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var sink int64
			for k := 0; k < b.N; k++ {
				sink += refPenalizedValue(s, u)
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("kernel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var sink int64
			for k := 0; k < b.N; k++ {
				sink += s.penalizedValue(u)
			}
			_ = sink
		})
	}
}

// BenchmarkSolveWorkers measures the end-to-end solve at different shard
// widths (identical outputs; wall-clock scales with available cores).
func BenchmarkSolveWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	p, _ := testgen.Random(rng, testgen.Config{N: 150, TimingProb: 0.3, CapSlack: 1.4})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				res, err := Solve(context.Background(), p, Options{Iterations: 20, Seed: 1, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if k == 0 {
					b.ReportMetric(float64(res.WireLength), "finalWL")
				}
			}
		})
	}
}

// BenchmarkEtaIncrementalSweep shows how the incremental path scales with
// the fraction of the iterate that moved between refreshes.
func BenchmarkEtaIncrementalSweep(b *testing.B) {
	s, u := benchSolver(b, 250)
	for _, moves := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("moves=%d", moves), func(b *testing.B) {
			b.ReportAllocs()
			s.sc.etaValid = false
			s.refreshEta(u, false)
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for k := 0; k < b.N; k++ {
				for x := 0; x < moves; x++ {
					u[rng.Intn(s.n)] = rng.Intn(s.m)
				}
				s.refreshEta(u, false)
			}
		})
	}
	// The acceptance sweep: a bounded-fan-out instance at N=2000 where the
	// incremental update is O(Σdeg(moved)·M) under CSR but pays an O(N) row
	// scan per dirty column under the forced-dense mirror. Steady state must
	// stay allocation-free on both paths.
	for _, dc := range []struct {
		name string
		cfg  testgen.Config
	}{
		{"deg12", testgen.Config{N: 2000, AvgDegree: 12, TimingProb: 0.3}},
		{"deg4", testgen.Config{N: 2000, AvgDegree: 4, TimingProb: 0.3}},
	} {
		for _, rep := range []sparsemat.Rep{sparsemat.RepSparse, sparsemat.RepDense} {
			s, u := benchSolverRep(b, dc.cfg, rep)
			b.Run(fmt.Sprintf("%s/%s/n=%d/moves=4", dc.name, rep, s.n), func(b *testing.B) {
				b.ReportAllocs()
				s.sc.etaValid = false
				s.refreshEta(u, false)
				rng := rand.New(rand.NewSource(7))
				b.ResetTimer()
				for k := 0; k < b.N; k++ {
					for x := 0; x < 4; x++ {
						u[rng.Intn(s.n)] = rng.Intn(s.m)
					}
					s.refreshEta(u, false)
				}
			})
		}
	}
}
