package qbp

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/testgen"
)

// largeProblem draws an instance big enough that a full solve takes far
// longer than the deadlines the tests below impose.
func largeProblem(t *testing.T) *model.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	p, _ := testgen.Random(rng, testgen.Config{N: 400, GridRows: 4, GridCols: 4, TimingProb: 0.2})
	return p
}

func TestSolveCancelledBeforeEntry(t *testing.T) {
	p := largeProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, p, Options{Iterations: 10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := SolveMultiStart(ctx, p, MultiStartOptions{Starts: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveMultiStart on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := FeasibleStart(ctx, p, 1, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("FeasibleStart on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestSolveDeadlineReturnsBestSoFar(t *testing.T) {
	p := largeProblem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res, err := Solve(ctx, p, Options{Iterations: 1 << 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("deadline expired but Stopped not set")
	}
	norm := p.Normalized()
	if len(res.Assignment) != p.N() || !norm.CapacityFeasible(res.Assignment) {
		t.Fatal("best-so-far assignment is not capacity-feasible")
	}
}

// TestMultiStartDeadlineBestSoFar is the acceptance-criterion scenario: a
// 50 ms deadline on a large instance yields a capacity-feasible incumbent
// with Stopped set and leaks no goroutines.
func TestMultiStartDeadlineBestSoFar(t *testing.T) {
	p := largeProblem(t)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := SolveMultiStart(ctx, p, MultiStartOptions{
		Base:   Options{Iterations: 1 << 20, Seed: 3},
		Starts: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("deadline expired but Stopped not set")
	}
	norm := p.Normalized()
	if len(res.Assignment) != p.N() || !norm.CapacityFeasible(res.Assignment) {
		t.Fatal("best-so-far assignment is not capacity-feasible")
	}
	if res.Stats.Starts < 1 {
		t.Fatalf("reduction folded %d starts, want >= 1", res.Stats.Starts)
	}
	waitGoroutines(t, base)
}

// TestMultiStartCancelMidSolve cancels from inside a progress callback —
// deterministically mid-solve — and expects a valid reduced result, not a
// panic or an error.
func TestMultiStartCancelMidSolve(t *testing.T) {
	p := largeProblem(t)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{Iterations: 1 << 20, Seed: 5}
	opts.OnProgress = func(pr Progress) {
		if pr.Iteration >= 2 {
			cancel()
		}
	}
	res, err := SolveMultiStart(ctx, p, MultiStartOptions{Base: opts, Starts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("cancelled mid-solve but Stopped not set")
	}
	norm := p.Normalized()
	if !norm.CapacityFeasible(res.Assignment) {
		t.Fatal("best-so-far assignment is not capacity-feasible")
	}
	waitGoroutines(t, base)
}

// TestSolveContextTransparency: a context that never fires must leave the
// solve bit-identical to context.Background().
func TestSolveContextTransparency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p, _ := testgen.Random(rng, testgen.Config{N: 24, TimingProb: 0.3})
	a, err := Solve(context.Background(), p, Options{Iterations: 25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b, err := Solve(ctx, p, Options{Iterations: 25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stopped || b.Stopped {
		t.Fatal("uncancelled solve reported Stopped")
	}
	if a.Objective != b.Objective || a.Penalized != b.Penalized {
		t.Fatalf("live context perturbed the solve: %d/%d vs %d/%d",
			a.Objective, a.Penalized, b.Objective, b.Penalized)
	}
	for j := range a.Assignment {
		if a.Assignment[j] != b.Assignment[j] {
			t.Fatalf("assignments diverge at component %d", j)
		}
	}
}

// TestSolveStatsPopulated checks the telemetry side of the contract on an
// ordinary (uncancelled) solve.
func TestSolveStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	p, _ := testgen.Random(rng, testgen.Config{N: 24, TimingProb: 0.3})
	var progressCalls int
	res, err := Solve(context.Background(), p, Options{
		Iterations: 15,
		Seed:       2,
		OnProgress: func(pr Progress) { progressCalls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Starts != 1 || st.Iterations != res.Iterations {
		t.Fatalf("stats count starts=%d iterations=%d, want 1/%d", st.Starts, st.Iterations, res.Iterations)
	}
	if st.EtaFull+st.EtaIncremental < st.Iterations {
		t.Fatalf("η rebuilds (%d full + %d incremental) < iterations (%d)",
			st.EtaFull, st.EtaIncremental, st.Iterations)
	}
	if len(st.Trajectory) == 0 || st.Trajectory[0].Iteration != 0 {
		t.Fatalf("trajectory missing its initial point: %+v", st.Trajectory)
	}
	for i := 1; i < len(st.Trajectory); i++ {
		if st.Trajectory[i].Penalized >= st.Trajectory[i-1].Penalized {
			t.Fatalf("trajectory not strictly improving at %d: %+v", i, st.Trajectory)
		}
	}
	if progressCalls != res.Iterations {
		t.Fatalf("OnProgress called %d times, want %d", progressCalls, res.Iterations)
	}
}

// TestMultiStartStatsAggregates checks the deterministic reduction of
// telemetry across starts.
func TestMultiStartStatsAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	p, _ := testgen.Random(rng, testgen.Config{N: 20, TimingProb: 0.3})
	res, err := SolveMultiStart(context.Background(), p, MultiStartOptions{
		Base:   Options{Iterations: 10, Seed: 4},
		Starts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped {
		t.Fatal("uncancelled multistart reported Stopped")
	}
	if res.Stats.Starts != 3 {
		t.Fatalf("Stats.Starts = %d, want 3", res.Stats.Starts)
	}
	if res.Stats.Iterations < 10 {
		t.Fatalf("aggregate iterations = %d, want >= 10", res.Stats.Iterations)
	}
}
