package qbp

import (
	"math/rand"
	"testing"

	"repro/internal/testgen"
)

func TestMultiStartPicksBestOfSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	p, _ := testgen.Random(rng, testgen.Config{N: 16, TimingProb: 0.3})
	base := Options{Iterations: 30, Seed: 5}

	multi, err := SolveMultiStart(p, MultiStartOptions{Base: base, Starts: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the same four runs sequentially and verify the selection.
	var want *Result
	for k := 0; k < 4; k++ {
		o := base
		o.Seed += int64(k) * 7_368_787
		r, err := Solve(p, o)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil ||
			(r.Feasible && !want.Feasible) ||
			(r.Feasible == want.Feasible && r.Feasible && r.Objective < want.Objective) ||
			(r.Feasible == want.Feasible && !r.Feasible && r.Penalized < want.Penalized) {
			want = r
		}
	}
	if multi.Objective != want.Objective || multi.Feasible != want.Feasible {
		t.Fatalf("multi-start picked objective %d (feasible %v), sequential best is %d (%v)",
			multi.Objective, multi.Feasible, want.Objective, want.Feasible)
	}
}

func TestMultiStartDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	p, _ := testgen.Random(rng, testgen.Config{N: 14, TimingProb: 0.3})
	o := MultiStartOptions{Base: Options{Iterations: 20, Seed: 1}, Starts: 6, Workers: 3}
	a, err := SolveMultiStart(p, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveMultiStart(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Penalized != b.Penalized {
		t.Fatalf("multi-start nondeterministic: %d/%d vs %d/%d", a.Objective, a.Penalized, b.Objective, b.Penalized)
	}
}

func TestMultiStartNeverWorseThanSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 5; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{N: 15, TimingProb: 0.4})
		base := Options{Iterations: 25, Seed: int64(trial)}
		single, err := Solve(p, base)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := SolveMultiStart(p, MultiStartOptions{Base: base, Starts: 4})
		if err != nil {
			t.Fatal(err)
		}
		if single.Feasible && multi.Feasible && multi.Objective > single.Objective {
			t.Fatalf("trial %d: multi-start (%d) worse than its own first start (%d)",
				trial, multi.Objective, single.Objective)
		}
	}
}

func TestMultiStartPropagatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p, _ := testgen.Random(rng, testgen.Config{N: 8})
	p.Circuit.Sizes[0] = -1
	if _, err := SolveMultiStart(p, MultiStartOptions{Starts: 3}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestMultiStartDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	p, _ := testgen.Random(rng, testgen.Config{N: 10})
	res, err := SolveMultiStart(p, MultiStartOptions{Base: Options{Iterations: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !p.Normalized().CapacityFeasible(res.Assignment) {
		t.Fatal("default multi-start produced unusable result")
	}
}
