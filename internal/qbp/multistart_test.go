package qbp

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/testgen"
)

func TestMultiStartPicksBestOfSequential(t *testing.T) {
	assertNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(44))
	p, _ := testgen.Random(rng, testgen.Config{N: 16, TimingProb: 0.3})
	base := Options{Iterations: 30, Seed: 5}

	multi, err := SolveMultiStart(context.Background(), p, MultiStartOptions{Base: base, Starts: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the same four runs sequentially and verify the selection.
	var want *Result
	for k := 0; k < 4; k++ {
		o := base
		o.Seed = derivedSeed(base.Seed, k)
		r, err := Solve(context.Background(), p, o)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil ||
			(r.Feasible && !want.Feasible) ||
			(r.Feasible == want.Feasible && r.Feasible && r.Objective < want.Objective) ||
			(r.Feasible == want.Feasible && !r.Feasible && r.Penalized < want.Penalized) {
			want = r
		}
	}
	if multi.Objective != want.Objective || multi.Feasible != want.Feasible {
		t.Fatalf("multi-start picked objective %d (feasible %v), sequential best is %d (%v)",
			multi.Objective, multi.Feasible, want.Objective, want.Feasible)
	}
}

func TestMultiStartDeterministic(t *testing.T) {
	assertNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(45))
	p, _ := testgen.Random(rng, testgen.Config{N: 14, TimingProb: 0.3})
	o := MultiStartOptions{Base: Options{Iterations: 20, Seed: 1}, Starts: 6, Workers: 3}
	a, err := SolveMultiStart(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveMultiStart(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Penalized != b.Penalized {
		t.Fatalf("multi-start nondeterministic: %d/%d vs %d/%d", a.Objective, a.Penalized, b.Objective, b.Penalized)
	}
}

func TestMultiStartNeverWorseThanSingle(t *testing.T) {
	assertNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 5; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{N: 15, TimingProb: 0.4})
		base := Options{Iterations: 25, Seed: int64(trial)}
		single, err := Solve(context.Background(), p, base)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := SolveMultiStart(context.Background(), p, MultiStartOptions{Base: base, Starts: 4})
		if err != nil {
			t.Fatal(err)
		}
		if single.Feasible && multi.Feasible && multi.Objective > single.Objective {
			t.Fatalf("trial %d: multi-start (%d) worse than its own first start (%d)",
				trial, multi.Objective, single.Objective)
		}
	}
}

func TestMultiStartPropagatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p, _ := testgen.Random(rng, testgen.Config{N: 8})
	p.Circuit.Sizes[0] = -1
	if _, err := SolveMultiStart(context.Background(), p, MultiStartOptions{Starts: 3}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestMultiStartDefaults(t *testing.T) {
	assertNoGoroutineLeak(t)
	rng := rand.New(rand.NewSource(48))
	p, _ := testgen.Random(rng, testgen.Config{N: 10})
	res, err := SolveMultiStart(context.Background(), p, MultiStartOptions{Base: Options{Iterations: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !p.Normalized().CapacityFeasible(res.Assignment) {
		t.Fatal("default multi-start produced unusable result")
	}
}

// TestDerivedSeedKeepsBaseAtStartZero pins the property that makes a
// one-start multistart bit-identical to a plain Solve.
func TestDerivedSeedKeepsBaseAtStartZero(t *testing.T) {
	for _, s := range []int64{0, 1, -7, 1 << 40} {
		if got := derivedSeed(s, 0); got != s {
			t.Fatalf("derivedSeed(%d, 0) = %d, want the base seed unchanged", s, got)
		}
	}
}

// TestDerivedSeedRegression is the regression for the additive scheme
// `seed + k·7_368_787`, under which user seed s at start k+1 replayed the
// identical stream as seed s+7_368_787 at start k.
func TestDerivedSeedRegression(t *testing.T) {
	const oldStride = 7_368_787
	for _, s := range []int64{0, 1, 42, -13, 1 << 33} {
		for k := 0; k < 64; k++ {
			if derivedSeed(s, k+1) == derivedSeed(s+oldStride, k) {
				t.Fatalf("seed %d start %d collides with seed %d start %d (old additive aliasing)",
					s, k+1, s+oldStride, k)
			}
		}
	}
}

// TestDerivedSeedNoCollisions: distinct (seed, start) pairs in realistic
// ranges must map to distinct per-start seeds.
func TestDerivedSeedNoCollisions(t *testing.T) {
	seen := make(map[int64]string, 16*1024)
	for _, s := range []int64{0, 1, 2, 3, 42, 1000003, -1, -42} {
		for k := 0; k < 2048; k++ {
			d := derivedSeed(s, k)
			if prev, dup := seen[d]; dup {
				t.Fatalf("derivedSeed(%d, %d) = %d collides with %s", s, k, d, prev)
			}
			seen[d] = fmt.Sprintf("(%d, %d)", s, k)
		}
	}
}
