package qbp

import (
	"math"
	"testing"

	"repro/internal/adjacency"
	"repro/internal/model"
)

// penaltySolver builds just enough of a solver to call autoPenalty, the
// same way Solve does.
func penaltySolver(t *testing.T, wires []model.Wire, maxB int64) *solver {
	t.Helper()
	c := &model.Circuit{Sizes: []int64{1, 1, 1}, Wires: wires}
	top := &model.Topology{
		Capacities: []int64{10, 10},
		Cost:       [][]int64{{0, maxB}, {maxB, 0}},
		Delay:      [][]int64{{0, 1}, {1, 0}},
	}
	p, err := model.NewProblem(c, top, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	norm := p.Normalized()
	return &solver{
		p:   norm,
		adj: adjacency.Build(norm.Circuit),
		m:   norm.M(),
		n:   norm.N(),
		b:   norm.Topology.Cost,
		d:   norm.Topology.Delay,
	}
}

// TestAutoPenaltyModerateUnchanged pins the historical derivation on
// ordinary magnitudes: largest total coupling + 1.
func TestAutoPenaltyModerateUnchanged(t *testing.T) {
	s := penaltySolver(t, []model.Wire{{From: 0, To: 1, Weight: 40}}, 3)
	// Component 0 couples to 1 with weight 40 in both directions of the
	// arc list: tot = 2·40·3 = 240, penalty 241.
	if got, want := s.autoPenalty(), int64(241); got != want {
		t.Fatalf("autoPenalty = %d, want %d", got, want)
	}
}

// TestAutoPenaltyOverflowClamps is the regression for the unchecked
// `tot += 2 * a.Weight * maxB` accumulation: near-MaxInt64 couplings used
// to wrap int64 into a negative (or small positive) penalty that no longer
// out-bid violations.
func TestAutoPenaltyOverflowClamps(t *testing.T) {
	huge := int64(math.MaxInt64/2 - 1)
	s := penaltySolver(t, []model.Wire{{From: 0, To: 1, Weight: huge}}, 3)
	got := s.autoPenalty()
	if got <= 0 {
		t.Fatalf("autoPenalty wrapped negative: %d", got)
	}
	if got != AutoPenaltyCeiling {
		t.Fatalf("autoPenalty = %d, want the documented ceiling %d", got, AutoPenaltyCeiling)
	}
}

// TestAutoPenaltyAccumulationSaturates: each arc's coupling fits the
// ceiling but their sum does not — the running total must saturate, not
// wrap.
func TestAutoPenaltyAccumulationSaturates(t *testing.T) {
	w := int64(AutoPenaltyCeiling / 3)
	s := penaltySolver(t, []model.Wire{
		{From: 0, To: 1, Weight: w},
		{From: 0, To: 2, Weight: w},
	}, 1)
	got := s.autoPenalty()
	if got <= 0 {
		t.Fatalf("autoPenalty wrapped negative: %d", got)
	}
	if got != AutoPenaltyCeiling {
		t.Fatalf("autoPenalty = %d, want the ceiling %d", got, AutoPenaltyCeiling)
	}
}

func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{1, 2, 3},
		{AutoPenaltyCeiling, 1, AutoPenaltyCeiling},
		{AutoPenaltyCeiling - 1, 1, AutoPenaltyCeiling},
		{AutoPenaltyCeiling / 2, AutoPenaltyCeiling/2 + 7, AutoPenaltyCeiling},
	}
	for _, c := range cases {
		if got := satAdd(c.a, c.b); got != c.want {
			t.Fatalf("satAdd(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSatCoupling(t *testing.T) {
	cases := []struct{ w, b, want int64 }{
		{0, 5, 0},
		{5, 0, 0},
		{3, 4, 24},
		{math.MaxInt64 / 2, 3, AutoPenaltyCeiling},
		{2, AutoPenaltyCeiling + 1, AutoPenaltyCeiling},
	}
	for _, c := range cases {
		if got := satCoupling(c.w, c.b); got != c.want {
			t.Fatalf("satCoupling(%d, %d) = %d, want %d", c.w, c.b, got, c.want)
		}
	}
}
