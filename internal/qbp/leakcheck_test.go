package qbp

import (
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles back to at most
// base (plus the runtime's own background workers already counted in base).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", base, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertNoGoroutineLeak snapshots the goroutine count and fails the test at
// cleanup when it has not settled back — the runtime counterpart of the
// chan-protocol analyzer's leak rules, applied to the multistart drain and
// the worker pool.
func assertNoGoroutineLeak(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() { waitGoroutines(t, base) })
}
