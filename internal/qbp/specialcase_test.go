package qbp

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/lap"
	"repro/internal/model"
)

// TestLinearAssignmentSpecialCase pins down §2.2.2 of the paper: PP(1,0)
// with M = N, unit sizes and unit capacities *is* the Linear Assignment
// Problem. The QBP solver run on such an instance must never beat the
// exact Hungarian optimum, and should usually attain it.
func TestLinearAssignmentSpecialCase(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	attained := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(4)
		lin := make([][]int64, n)
		costF := make([][]float64, n)
		for i := 0; i < n; i++ {
			lin[i] = make([]int64, n)
			costF[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := rng.Int63n(50)
				lin[i][j] = v
				costF[j][i] = float64(v) // LAP rows = components, cols = slots
			}
		}
		c := &model.Circuit{Sizes: make([]int64, n)}
		for j := range c.Sizes {
			c.Sizes[j] = 1
		}
		topo := &model.Topology{
			Capacities: make([]int64, n),
			Cost:       make([][]int64, n),
			Delay:      make([][]int64, n),
		}
		for i := 0; i < n; i++ {
			topo.Capacities[i] = 1
			topo.Cost[i] = make([]int64, n)
			topo.Delay[i] = make([]int64, n)
		}
		p, err := model.NewProblem(c, topo, 1, 0, lin)
		if err != nil {
			t.Fatal(err)
		}
		_, exact, err := lap.Solve(costF)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(context.Background(), p, Options{Iterations: 60, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		// Unit capacities force a permutation.
		seen := make([]bool, n)
		for _, i := range res.Assignment {
			if seen[i] {
				t.Fatalf("trial %d: not a permutation: %v", trial, res.Assignment)
			}
			seen[i] = true
		}
		if float64(res.Objective) < exact {
			t.Fatalf("trial %d: QBP %d beat the exact LAP optimum %v", trial, res.Objective, exact)
		}
		if float64(res.Objective) == exact {
			attained++
		}
	}
	if attained < trials*3/4 {
		t.Fatalf("LAP optimum attained in only %d/%d trials", attained, trials)
	}
}
