package qbp

// Property tests for the bit-packed membership kernels: the bitset fast
// paths (moved-set diff, dirty-column discovery, popcount partition sizes)
// must be bit-exact against plain bool-slice references recomputed
// independently in the test, across random assignments, both coupling
// representations, and every Workers setting — and cancellation must stay
// transparent to all of it. The packed layout is a cost model, never a
// behavior (same contract as sparse_test.go states for the matrix rep).

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sparsemat"
)

// TestBitsetDirtyDiscoveryBitExact drives refreshEta over random small
// perturbations (so the incremental path stays active) and asserts that
// the packed moved set and the extracted dirty-column list equal a plain
// bool-slice recomputation, and that the incrementally maintained η equals
// a from-scratch rebuild on a fresh solver.
func TestBitsetDirtyDiscoveryBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		p := repTestInstance(rng, trial)
		rep := sparsemat.RepSparse
		if trial%2 == 1 {
			rep = sparsemat.RepDense
		}
		s := newTestSolverRep(p, DefaultPenalty, trial%5 == 4, rep)
		u := make([]int, s.n)
		for j := range u {
			u[j] = rng.Intn(s.m)
		}
		withOmega := trial%2 == 0
		s.refreshEta(u, withOmega) // prime the incremental state
		prev := append([]int(nil), u...)
		for step := 0; step < 10; step++ {
			// Perturb few components: nm*3 <= n keeps the incremental path.
			for c := 0; c < 1+rng.Intn(2); c++ {
				u[rng.Intn(s.n)] = rng.Intn(s.m)
			}
			// Plain references, recomputed from first principles.
			movedPlain := make([]bool, s.n)
			dirtyPlain := make([]bool, s.n)
			nm := 0
			for j := range u {
				if u[j] != prev[j] {
					movedPlain[j] = true
					nm++
				}
			}
			for j := range u {
				if !movedPlain[j] {
					continue
				}
				lo, hi := s.csr.Row(j)
				for k := lo; k < hi; k++ {
					dirtyPlain[s.csr.Col[k]] = true
				}
			}
			var wantDirty []int
			for j, d := range dirtyPlain {
				if d {
					wantDirty = append(wantDirty, j)
				}
			}
			incremental := nm > 0 && nm*3 <= s.n

			got := s.refreshEta(u, withOmega)

			// sc.moved is rebuilt by every refresh diff; compare bit by bit.
			for j := 0; j < s.n; j++ {
				if s.sc.moved.Test(j) != movedPlain[j] {
					t.Fatalf("trial %d step %d: moved[%d] = %v, plain %v",
						trial, step, j, s.sc.moved.Test(j), movedPlain[j])
				}
			}
			if incremental {
				gotDirty := append([]int(nil), s.sc.dirtyCols...)
				if !sort.IntsAreSorted(gotDirty) {
					t.Fatalf("trial %d step %d: dirtyCols not ascending: %v", trial, step, gotDirty)
				}
				if len(gotDirty) != len(wantDirty) {
					t.Fatalf("trial %d step %d: %d dirty columns, plain %d",
						trial, step, len(gotDirty), len(wantDirty))
				}
				for k := range gotDirty {
					if gotDirty[k] != wantDirty[k] {
						t.Fatalf("trial %d step %d: dirtyCols[%d] = %d, plain %d",
							trial, step, k, gotDirty[k], wantDirty[k])
					}
				}
			}

			// η itself must equal a from-scratch rebuild.
			fresh := newTestSolverRep(p, DefaultPenalty, trial%5 == 4, rep)
			want := fresh.refreshEta(u, withOmega)
			for r := range want {
				if got[r] != want[r] {
					t.Fatalf("trial %d step %d: incremental η[%d] = %d, full rebuild %d",
						trial, step, r, got[r], want[r])
				}
			}
			copy(prev, u)
		}
	}
}

// TestBitsetSolveInvariantAcrossWorkers pins the tentpole determinism
// contract end to end: a fixed seed yields the bit-identical assignment for
// every Workers count and both coupling representations, with the packed
// membership kernels underneath all of them.
func TestBitsetSolveInvariantAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 4; trial++ {
		p := repTestInstance(rng, trial)
		var ref *Result
		for _, rep := range []sparsemat.Rep{sparsemat.RepSparse, sparsemat.RepDense} {
			for _, workers := range []int{1, 2, 8} {
				res, err := Solve(context.Background(), p, Options{
					Iterations: 25, Seed: int64(trial), Workers: workers, Matrix: rep,
				})
				if err != nil {
					t.Fatalf("trial %d rep=%v w=%d: %v", trial, rep, workers, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if res.Objective != ref.Objective || res.Penalized != ref.Penalized {
					t.Fatalf("trial %d rep=%v w=%d: objective %d/%d, reference %d/%d",
						trial, rep, workers, res.Objective, res.Penalized, ref.Objective, ref.Penalized)
				}
				for j := range ref.Assignment {
					if res.Assignment[j] != ref.Assignment[j] {
						t.Fatalf("trial %d rep=%v w=%d: assignment diverged at component %d",
							trial, rep, workers, j)
					}
				}
			}
		}
	}
}

// TestBitsetCancellationTransparent cancels solves at a fixed iteration
// boundary across Workers values and asserts the incumbents coincide: the
// packed kernels cannot make cancellation observable in the result.
func TestBitsetCancellationTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 4; trial++ {
		p := repTestInstance(rng, trial)
		stopAt := 3 + trial
		run := func(workers int) *Result {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			res, err := Solve(ctx, p, Options{
				Iterations: 50,
				Seed:       int64(trial),
				Workers:    workers,
				OnIteration: func(it Iteration) {
					if it.K == stopAt {
						cancel()
					}
				},
			})
			if err != nil {
				t.Fatalf("trial %d w=%d: %v", trial, workers, err)
			}
			return res
		}
		ref := run(1)
		for _, workers := range []int{2, 8} {
			got := run(workers)
			if !ref.Stopped || !got.Stopped {
				t.Fatalf("trial %d: stopped w1=%v w%d=%v, want both", trial, ref.Stopped, workers, got.Stopped)
			}
			if got.Objective != ref.Objective || got.Penalized != ref.Penalized {
				t.Fatalf("trial %d w=%d: cancelled objectives diverged: %d/%d vs %d/%d",
					trial, workers, got.Objective, got.Penalized, ref.Objective, ref.Penalized)
			}
			for j := range ref.Assignment {
				if got.Assignment[j] != ref.Assignment[j] {
					t.Fatalf("trial %d w=%d: cancelled assignment diverged at component %d", trial, workers, j)
				}
			}
		}
	}
}
