package qbp

import (
	"repro/internal/flatmat"
	"repro/internal/qmatrix"
)

// This file holds the flat performance kernels under the solve loop: the
// per-delay-class effective-row cache (flatmat.Kernel), the flat item-major
// η/h vectors, and the incremental η maintenance. All flat vectors use the
// qmatrix.Pack layout — entry (partition i, component j) lives at
// Pack(i, j, m) = i + j·m, so the per-component column is the contiguous
// subslice [j·m, (j+1)·m). That is exactly the access pattern of the GAP
// subproblems, so STEP 4 hands the η vector to gap.Solve with no copy and
// no float64 round-trip.

// initKernel builds the flat solve state from the solver's topology: flat
// mirrors of B and the delay matrix, the per-(delay-class, partition)
// effective rows, the per-arc class indices aligned with adj.Arcs, and the
// flat linear-cost mirror. Must run after s.penalty and s.relax are final.
func (s *solver) initKernel() {
	bm := flatmat.FromRows(s.b)
	dm := flatmat.FromRows(s.d)
	if s.relax {
		// Timing relaxed: every arc behaves as unconstrained, so no
		// penalty rows are needed at all.
		s.cls = make([][]int, s.n)
		for j, arcs := range s.adj.Arcs {
			if len(arcs) == 0 {
				continue
			}
			//lint:ignore alloc-in-hot-loop one-time kernel construction, not the iteration path
			s.cls[j] = make([]int, len(arcs))
			for k := range s.cls[j] {
				s.cls[j][k] = flatmat.UnconstrainedClass
			}
		}
		s.kern = flatmat.NewKernel(bm, dm, nil, 0)
	} else {
		bounds, classes := s.adj.DelayClasses()
		s.cls = classes
		s.kern = flatmat.NewKernel(bm, dm, bounds, s.penalty)
	}
	if s.p.Linear != nil {
		s.linFlat = make([]int64, s.m*s.n)
		for j := 0; j < s.n; j++ {
			for i := 0; i < s.m; i++ {
				s.linFlat[qmatrix.Pack(i, j, s.m)] = s.p.LinearAt(i, j)
			}
		}
	}
}

// scratch is the solver-owned reusable buffer set. One scratch serves many
// sequential solves of same-shape problems (the multi-start workers each
// own one), eliminating the per-call and per-iteration allocations of the
// solve loop's hot helpers.
type scratch struct {
	m, n int

	etaI     []int64 // flat η, item-major
	h        []float64
	etaU     []int // assignment etaI currently reflects
	etaValid bool

	loads []int64
	fits  []int
	prev  []int
	wbuf  []int

	moved     []bool
	colDirty  []bool
	dirtyCols []int

	// polish/strongPolish candidate-scan buffers (parallel path only;
	// allocated lazily).
	deltas []int64
	timOK  []bool
	cand   []bool
	dirty  []bool
	u0     []int
}

func newScratch(m, n int) *scratch {
	return &scratch{
		m:         m,
		n:         n,
		etaI:      make([]int64, m*n),
		h:         make([]float64, m*n),
		etaU:      make([]int, n),
		loads:     make([]int64, m),
		fits:      make([]int, 0, m),
		prev:      make([]int, n),
		wbuf:      make([]int, n),
		moved:     make([]bool, n),
		colDirty:  make([]bool, n),
		dirtyCols: make([]int, 0, n),
	}
}

// ensurePolishBufs sizes the snapshot buffers of the sharded candidate
// scans on first use.
func (sc *scratch) ensurePolishBufs() {
	if sc.deltas == nil {
		sc.deltas = make([]int64, sc.n*sc.m)
		sc.timOK = make([]bool, sc.n*sc.m)
		sc.cand = make([]bool, sc.n)
		sc.dirty = make([]bool, sc.n)
		sc.u0 = make([]int, sc.n)
	}
}

// etaCol returns component j's contiguous η column.
func etaCol(etaI []int64, j, m int) []int64 { return etaI[j*m : (j+1)*m] }

// refreshEta brings sc.etaI in sync with assignment u and returns it. The
// first call per solve computes η in full; later calls diff u against the
// assignment the buffer reflects and only rebuild the η columns of the
// moved components' neighbors. Both paths are exact int64 arithmetic, so
// they agree bit for bit — the incremental path is purely a cost saving
// proportional to how much of the iterate actually moved.
func (s *solver) refreshEta(u []int, withOmega bool) []int64 {
	sc := s.sc
	if !sc.etaValid {
		s.etaFull(sc.etaI, u, withOmega)
		s.stats.EtaFull++
		copy(sc.etaU, u)
		sc.etaValid = true
		return sc.etaI
	}
	nm := 0
	for j := range u {
		if u[j] != sc.etaU[j] {
			nm++
		}
	}
	switch {
	case nm == 0:
		return sc.etaI
	case nm*3 > s.n:
		// Most of the iterate moved (a GAP jump or a kick): a full rebuild
		// touches less memory than diffing nearly every column.
		s.etaFull(sc.etaI, u, withOmega)
		s.stats.EtaFull++
	default:
		s.etaIncremental(sc.etaI, sc.etaU, u, withOmega)
		s.stats.EtaIncremental++
	}
	copy(sc.etaU, u)
	return sc.etaI
}

// etaFull computes η from scratch: for every component column, the sum of
// the partners' effective rows, plus the flat linear diagonal and
// (optionally) the ω term at the current slot. Columns are independent, so
// the loop shards over components. The serial path calls the range body
// directly — building the shard closure would cost an allocation per call.
func (s *solver) etaFull(etaI []int64, u []int, withOmega bool) {
	if s.pool == nil {
		s.etaFullRange(etaI, u, withOmega, 0, s.n)
		return
	}
	s.pool.forRange(s.n, func(lo, hi int) {
		s.etaFullRange(etaI, u, withOmega, lo, hi)
	})
}

func (s *solver) etaFullRange(etaI []int64, u []int, withOmega bool, lo, hi int) {
	m := s.m
	for j2 := lo; j2 < hi; j2++ {
		col := etaCol(etaI, j2, m)
		for r := range col {
			col[r] = 0
		}
		cls := s.cls[j2]
		for k, arc := range s.adj.Arcs[j2] {
			c := cls[k]
			w := arc.Weight
			// The row loops stay inline: an accumulate call per arc costs
			// more than the whole length-M fused add at realistic M.
			if c == flatmat.UnconstrainedClass {
				if w == 0 {
					continue
				}
				row := s.kern.BRow(u[arc.Other])
				row = row[:len(col)]
				for r := range col {
					col[r] += w * row[r]
				}
			} else {
				mask, pen := s.kern.ClassRows(c, u[arc.Other])
				mask = mask[:len(col)]
				pen = pen[:len(col)]
				for r := range col {
					col[r] += w*mask[r] + pen[r]
				}
			}
		}
		if s.linFlat != nil {
			lcol := etaCol(s.linFlat, j2, m)
			lcol = lcol[:len(col)]
			for r := range col {
				col[r] += lcol[r]
			}
		}
		if withOmega {
			cur := u[j2]
			col[cur] += s.omega[qmatrix.Pack(cur, j2, m)]
		}
	}
}

// etaIncremental updates etaI from oldU to newU: only the columns with at
// least one moved partner are touched, each by subtracting the partner's
// old effective row and adding the new one. Dirty columns are disjoint, so
// the update shards over them.
func (s *solver) etaIncremental(etaI []int64, oldU, newU []int, withOmega bool) {
	m := s.m
	sc := s.sc
	moved := sc.moved
	for j := range newU {
		moved[j] = newU[j] != oldU[j]
	}
	dirty := sc.colDirty
	cols := sc.dirtyCols[:0]
	for j := range newU {
		if !moved[j] {
			continue
		}
		for _, arc := range s.adj.Arcs[j] {
			if !dirty[arc.Other] {
				dirty[arc.Other] = true
				cols = append(cols, arc.Other)
			}
		}
	}
	sc.dirtyCols = cols
	if s.pool == nil {
		s.etaIncrementalRange(etaI, oldU, newU, cols, 0, len(cols))
	} else {
		s.pool.forRange(len(cols), func(lo, hi int) {
			s.etaIncrementalRange(etaI, oldU, newU, cols, lo, hi)
		})
	}
	if withOmega {
		for j := range newU {
			if !moved[j] {
				continue
			}
			col := etaCol(etaI, j, m)
			col[oldU[j]] -= s.omega[qmatrix.Pack(oldU[j], j, m)]
			col[newU[j]] += s.omega[qmatrix.Pack(newU[j], j, m)]
		}
	}
	for _, o := range cols {
		dirty[o] = false
	}
}

// etaIncrementalRange re-derives the η columns cols[lo:hi]: per moved
// partner, one fused pass replacing its old effective row with the new one.
// old and new contributions cancel exactly in int64, so the fused
// (new − old) form is bit-identical to a subtract-then-add pair.
func (s *solver) etaIncrementalRange(etaI []int64, oldU, newU, cols []int, lo, hi int) {
	m := s.m
	moved := s.sc.moved
	for x := lo; x < hi; x++ {
		o := cols[x]
		col := etaCol(etaI, o, m)
		cls := s.cls[o]
		for k, arc := range s.adj.Arcs[o] {
			j := arc.Other
			if !moved[j] {
				continue
			}
			c := cls[k]
			w := arc.Weight
			if c == flatmat.UnconstrainedClass {
				if w == 0 {
					continue
				}
				oldRow := s.kern.BRow(oldU[j])
				newRow := s.kern.BRow(newU[j])
				oldRow = oldRow[:len(col)]
				newRow = newRow[:len(col)]
				for r := range col {
					col[r] += w * (newRow[r] - oldRow[r])
				}
			} else {
				om, op := s.kern.ClassRows(c, oldU[j])
				nm, np := s.kern.ClassRows(c, newU[j])
				om = om[:len(col)]
				op = op[:len(col)]
				nm = nm[:len(col)]
				np = np[:len(col)]
				for r := range col {
					col[r] += w*(nm[r]-om[r]) + np[r] - op[r]
				}
			}
		}
	}
}

// accumulateH folds the current η into the direction vector h (STEP 5):
// h[r] += float64(η[r]) / denom, sharded over flat index ranges. The
// division stays per-entry: multiplying by a precomputed reciprocal would
// change last-ulp rounding and break bit-compatibility with the float64
// reference implementation.
func (s *solver) accumulateH(h []float64, etaI []int64, denom float64) {
	if s.pool == nil {
		accumulateHRange(h, etaI, denom, 0, len(h))
		return
	}
	s.pool.forRange(len(h), func(lo, hi int) {
		accumulateHRange(h, etaI, denom, lo, hi)
	})
}

func accumulateHRange(h []float64, etaI []int64, denom float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		h[r] += float64(etaI[r]) / denom
	}
}
