package qbp

import (
	"repro/internal/bitset"
	"repro/internal/flatmat"
	"repro/internal/qmatrix"
	"repro/internal/sparsemat"
)

// This file holds the flat performance kernels under the solve loop: the
// per-delay-class effective-row cache (flatmat.Kernel), the CSR/dense
// coupling representations (sparsemat), the flat item-major η/h vectors,
// and the incremental η maintenance. All flat vectors use the qmatrix.Pack
// layout — entry (partition i, component j) lives at Pack(i, j, m) = i + j·m,
// so the per-component column is the contiguous subslice [j·m, (j+1)·m).
// That is exactly the access pattern of the GAP subproblems, so STEP 4 hands
// the η vector to gap.Solve with no copy and no float64 round-trip.
//
// Representation contract: the CSR and dense paths enumerate the same
// coupling multiset in the same ascending-partner order and accumulate in
// exact int64 arithmetic, so they are bit-identical — sparsemat.Rep (and the
// Workers count) can never change a result, only its cost.

// initKernel builds the flat solve state from the solver's topology: the CSR
// coupling matrix (and, when the representation resolves dense, its N×N
// mirror), the per-(delay-class, partition) effective rows, and the flat
// linear-cost mirror. Must run after s.penalty, s.relax and s.repReq are
// final.
func (s *solver) initKernel() {
	bm := flatmat.FromRows(s.b)
	dm := flatmat.FromRows(s.d)
	if s.relax {
		// Timing relaxed: every arc behaves as unconstrained, so no
		// penalty rows are needed at all.
		s.csr = sparsemat.FromLists(s.adj, nil)
		s.kern = flatmat.NewKernel(bm, dm, nil, 0)
	} else {
		bounds, classes := s.adj.DelayClasses()
		s.csr = sparsemat.FromLists(s.adj, classes)
		s.kern = flatmat.NewKernel(bm, dm, bounds, s.penalty)
	}
	s.rep = s.csr.Resolve(s.repReq, s.repThreshold)
	if s.rep == sparsemat.RepDense {
		s.dns = s.csr.ToDense()
	} else {
		s.dns = nil
	}
	if s.p.Linear != nil {
		s.linFlat = make([]int64, s.m*s.n)
		for j := 0; j < s.n; j++ {
			for i := 0; i < s.m; i++ {
				s.linFlat[qmatrix.Pack(i, j, s.m)] = s.p.LinearAt(i, j)
			}
		}
	}
}

// scratch is the solver-owned reusable buffer set. One scratch serves many
// sequential solves of same-shape problems (the multi-start workers each
// own one), eliminating the per-call and per-iteration allocations of the
// solve loop's hot helpers.
type scratch struct {
	m, n int

	etaI     []int64 // flat η, item-major
	h        []float64
	etaU     []int // assignment etaI currently reflects
	etaValid bool

	loads []int64
	fits  []int
	prev  []int
	wbuf  []int

	// Bit-packed marker sets of the incremental-η path: moved is built by
	// refreshEta's diff (and consumed by etaIncremental's word-skip walks),
	// colDirty collects the distinct dirty columns branch-free, dirtyCols
	// is the extracted ascending index list handed to the shards.
	moved     *bitset.Set
	colDirty  *bitset.Set
	dirtyCols []int

	// seen dedups the violated-endpoint collection of kick.
	seen *bitset.Set

	// polish/strongPolish candidate-scan buffers (parallel path only;
	// allocated lazily). cand and dirty are bit-packed so the serial apply
	// walks skip clean components 64 at a time.
	deltas []int64
	timOK  []bool
	cand   *bitset.Set
	dirty  *bitset.Set
	u0     []int
}

func newScratch(m, n int) *scratch {
	return &scratch{
		m:         m,
		n:         n,
		etaI:      make([]int64, m*n),
		h:         make([]float64, m*n),
		etaU:      make([]int, n),
		loads:     make([]int64, m),
		fits:      make([]int, 0, m),
		prev:      make([]int, n),
		wbuf:      make([]int, n),
		moved:     bitset.New(n),
		colDirty:  bitset.New(n),
		dirtyCols: make([]int, 0, n),
		seen:      bitset.New(n),
	}
}

// ensurePolishBufs sizes the snapshot buffers of the sharded candidate
// scans on first use.
func (sc *scratch) ensurePolishBufs() {
	if sc.deltas == nil {
		sc.deltas = make([]int64, sc.n*sc.m)
		sc.timOK = make([]bool, sc.n*sc.m)
		sc.cand = bitset.New(sc.n)
		sc.dirty = bitset.New(sc.n)
		sc.u0 = make([]int, sc.n)
	}
}

// etaCol returns component j's contiguous η column.
func etaCol(etaI []int64, j, m int) []int64 { return etaI[j*m : (j+1)*m] }

// refreshEta brings sc.etaI in sync with assignment u and returns it. The
// first call per solve computes η in full; later calls diff u against the
// assignment the buffer reflects and only rebuild the η columns of the
// moved components' neighbors. Both paths are exact int64 arithmetic, so
// they agree bit for bit — the incremental path is purely a cost saving
// proportional to how much of the iterate actually moved.
func (s *solver) refreshEta(u []int, withOmega bool) []int64 {
	sc := s.sc
	if !sc.etaValid {
		s.etaFull(sc.etaI, u, withOmega)
		s.stats.EtaFull++
		copy(sc.etaU, u)
		sc.etaValid = true
		return sc.etaI
	}
	// The diff both counts the moved components and packs them into the
	// moved bitset, so the incremental path below walks them word-skip
	// without a second O(N) scan.
	nm := 0
	moved := sc.moved
	moved.Reset()
	for j := range u {
		if u[j] != sc.etaU[j] {
			moved.Set(j)
			nm++
		}
	}
	switch {
	case nm == 0:
		return sc.etaI
	case nm*3 > s.n:
		// Most of the iterate moved (a GAP jump or a kick): a full rebuild
		// touches less memory than diffing nearly every column.
		s.etaFull(sc.etaI, u, withOmega)
		s.stats.EtaFull++
	default:
		s.etaIncremental(sc.etaU, u, withOmega)
		s.stats.EtaIncremental++
	}
	copy(sc.etaU, u)
	return sc.etaI
}

// etaFull computes η from scratch: for every component column, the sum of
// the partners' effective rows, plus the flat linear diagonal and
// (optionally) the ω term at the current slot. Columns are independent, so
// the loop shards over components — by balanced arc mass (s.shards), not by
// equal component counts, so skewed-degree instances keep every worker
// busy. The serial path calls the range body directly — building the shard
// closure would cost an allocation per call.
func (s *solver) etaFull(etaI []int64, u []int, withOmega bool) {
	if s.pool == nil || s.shards == nil {
		s.etaFullRange(etaI, u, withOmega, 0, s.n)
		return
	}
	s.pool.forShards(s.shards, func(lo, hi int) {
		s.etaFullRange(etaI, u, withOmega, lo, hi)
	})
}

// etaFullRange rebuilds the η columns [lo, hi): zero, accumulate the
// partners' effective rows (CSR or dense walk), then the linear and ω tails.
func (s *solver) etaFullRange(etaI []int64, u []int, withOmega bool, lo, hi int) {
	m := s.m
	dense := s.dns != nil
	for j2 := lo; j2 < hi; j2++ {
		col := etaCol(etaI, j2, m)
		for r := range col {
			col[r] = 0
		}
		if dense {
			s.accumColDense(col, u, j2)
		} else {
			s.accumColCSR(col, u, j2)
		}
		if s.linFlat != nil {
			lcol := etaCol(s.linFlat, j2, m)
			lcol = lcol[:len(col)]
			for r := range col {
				col[r] += lcol[r]
			}
		}
		if withOmega {
			cur := u[j2]
			col[cur] += s.omega[qmatrix.Pack(cur, j2, m)]
		}
	}
}

// accumColCSR adds the effective rows of component j2's partners into col:
// one fused length-M pass per stored arc, O(deg(j2)·M) total. The row loops
// stay inline — an accumulate call per arc costs more than the whole
// length-M fused add at realistic M.
func (s *solver) accumColCSR(col []int64, u []int, j2 int) {
	cs := s.csr
	lo, hi := cs.Row(j2)
	for k := lo; k < hi; k++ {
		c := cs.Class[k]
		w := cs.Weight[k]
		if c == sparsemat.UnconstrainedClass {
			if w == 0 {
				continue
			}
			row := s.kern.BRow(u[cs.Col[k]])
			row = row[:len(col)]
			for r := range col {
				col[r] += w * row[r]
			}
		} else {
			mask, pen := s.kern.ClassRows(int(c), u[cs.Col[k]])
			mask = mask[:len(col)]
			pen = pen[:len(col)]
			for r := range col {
				col[r] += w*mask[r] + pen[r]
			}
		}
	}
}

// accumColDense is the dense-mirror walk of accumColCSR: every partner slot
// of row j2 is visited and non-entries are skipped by the NoArc class tag,
// O(N + deg(j2)·M) per column. Partners come in the same ascending order as
// the CSR row, so the two accumulations are term-for-term identical.
func (s *solver) accumColDense(col []int64, u []int, j2 int) {
	wrow, crow := s.dns.Row(j2)
	for j1, c := range crow {
		if c == sparsemat.NoArc {
			continue
		}
		w := wrow[j1]
		if c == sparsemat.UnconstrainedClass {
			if w == 0 {
				continue
			}
			row := s.kern.BRow(u[j1])
			row = row[:len(col)]
			for r := range col {
				col[r] += w * row[r]
			}
		} else {
			mask, pen := s.kern.ClassRows(int(c), u[j1])
			mask = mask[:len(col)]
			pen = pen[:len(col)]
			for r := range col {
				col[r] += w*mask[r] + pen[r]
			}
		}
	}
}

// etaIncremental updates sc.etaI from oldU to newU: only the columns with at
// least one moved partner are touched, each by subtracting the partner's
// old effective row and adding the new one. The moved set must already be
// packed in sc.moved (refreshEta's diff does it); the dirty-column set is
// discovered from the CSR rows of the moved components — O(Σdeg(moved))
// branch-free bit ORs — and extracted in ascending column order. Dirty
// columns are disjoint, so the update shards over them (and their order
// cannot affect the result).
func (s *solver) etaIncremental(oldU, newU []int, withOmega bool) {
	m := s.m
	sc := s.sc
	etaI := sc.etaI
	moved := sc.moved
	dirty := sc.colDirty
	cs := s.csr
	for j := moved.NextSet(0); j < s.n; j = moved.NextSet(j + 1) {
		lo, hi := cs.Row(j)
		for k := lo; k < hi; k++ {
			dirty.Set(int(cs.Col[k]))
		}
	}
	cols := dirty.AppendIndices(sc.dirtyCols[:0])
	sc.dirtyCols = cols
	if s.pool == nil {
		s.etaIncrementalRange(etaI, oldU, newU, cols, 0, len(cols))
	} else {
		s.pool.forRange(len(cols), func(lo, hi int) {
			s.etaIncrementalRange(etaI, oldU, newU, cols, lo, hi)
		})
	}
	if withOmega {
		for j := moved.NextSet(0); j < s.n; j = moved.NextSet(j + 1) {
			col := etaCol(etaI, j, m)
			col[oldU[j]] -= s.omega[qmatrix.Pack(oldU[j], j, m)]
			col[newU[j]] += s.omega[qmatrix.Pack(newU[j], j, m)]
		}
	}
	dirty.Reset()
}

// etaIncrementalRange re-derives the η columns cols[lo:hi]: per moved
// partner, one fused pass replacing its old effective row with the new one.
// old and new contributions cancel exactly in int64, so the fused
// (new − old) form is bit-identical to a subtract-then-add pair.
func (s *solver) etaIncrementalRange(etaI []int64, oldU, newU, cols []int, lo, hi int) {
	m := s.m
	dense := s.dns != nil
	for x := lo; x < hi; x++ {
		o := cols[x]
		col := etaCol(etaI, o, m)
		if dense {
			s.updateColDense(col, oldU, newU, o)
		} else {
			s.updateColCSR(col, oldU, newU, o)
		}
	}
}

// updateColCSR swaps the moved partners' effective rows in col, walking only
// the stored arcs of column o: O(deg(o)·M) worst case, typically far less
// since only moved partners pay the row pass.
func (s *solver) updateColCSR(col []int64, oldU, newU []int, o int) {
	moved := s.sc.moved
	cs := s.csr
	lo, hi := cs.Row(o)
	for k := lo; k < hi; k++ {
		j := int(cs.Col[k])
		if !moved.Test(j) {
			continue
		}
		s.swapPartnerRow(col, int(cs.Class[k]), cs.Weight[k], oldU[j], newU[j])
	}
}

// updateColDense is the dense-mirror walk of updateColCSR: the whole partner
// row is scanned and unmoved or uncoupled slots are skipped.
func (s *solver) updateColDense(col []int64, oldU, newU []int, o int) {
	moved := s.sc.moved
	wrow, crow := s.dns.Row(o)
	for j, c := range crow {
		if c == sparsemat.NoArc || !moved.Test(j) {
			continue
		}
		s.swapPartnerRow(col, int(c), wrow[j], oldU[j], newU[j])
	}
}

// swapPartnerRow applies one partner relocation from partition from to
// partition to onto col: the fused (new − old) effective-row pass.
func (s *solver) swapPartnerRow(col []int64, c int, w int64, from, to int) {
	if c == sparsemat.UnconstrainedClass {
		if w == 0 {
			return
		}
		oldRow := s.kern.BRow(from)
		newRow := s.kern.BRow(to)
		oldRow = oldRow[:len(col)]
		newRow = newRow[:len(col)]
		for r := range col {
			col[r] += w * (newRow[r] - oldRow[r])
		}
	} else {
		om, op := s.kern.ClassRows(c, from)
		nm, np := s.kern.ClassRows(c, to)
		om = om[:len(col)]
		op = op[:len(col)]
		nm = nm[:len(col)]
		np = np[:len(col)]
		for r := range col {
			col[r] += w*(nm[r]-om[r]) + np[r] - op[r]
		}
	}
}

// accumulateH folds the current η into the direction vector h (STEP 5):
// h[r] += float64(η[r]) / denom, sharded over flat index ranges. The
// division stays per-entry: multiplying by a precomputed reciprocal would
// change last-ulp rounding and break bit-compatibility with the float64
// reference implementation.
func (s *solver) accumulateH(h []float64, etaI []int64, denom float64) {
	if s.pool == nil {
		accumulateHRange(h, etaI, denom, 0, len(h))
		return
	}
	s.pool.forRange(len(h), func(lo, hi int) {
		accumulateHRange(h, etaI, denom, lo, hi)
	})
}

func accumulateHRange(h []float64, etaI []int64, denom float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		h[r] += float64(etaI[r]) / denom
	}
}
