package qbp

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/gap"
	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/testgen"
)

func TestPaperExampleReachesOptimum(t *testing.T) {
	p := paperex.MustNew()
	res, err := Solve(context.Background(), p, Options{Iterations: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("result infeasible: %+v", res)
	}
	// Brute-force optimum of the worked example is 14 (both wires at
	// distance 1, counted in both directions).
	if res.Objective != 14 {
		t.Fatalf("objective = %d, want 14 (assignment %v)", res.Objective, res.Assignment)
	}
	if res.WireLength != 7 {
		t.Fatalf("wire length = %d, want 7", res.WireLength)
	}
	if res.Penalized != res.Objective {
		t.Fatalf("feasible solution must have no penalty contribution: %d vs %d", res.Penalized, res.Objective)
	}
}

func TestSolveValidatesInputs(t *testing.T) {
	p := paperex.MustNew()
	if _, err := Solve(context.Background(), p, Options{Initial: model.Assignment{0, 1}}); err == nil {
		t.Fatal("short initial accepted")
	}
	// Capacity-violating initial (two unit components on one unit slot).
	if _, err := Solve(context.Background(), p, Options{Initial: model.Assignment{0, 0, 1}}); err == nil {
		t.Fatal("capacity-violating initial accepted")
	}
	bad := paperex.MustNew()
	bad.Circuit.Sizes[0] = -1
	if _, err := Solve(context.Background(), bad, Options{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

// On small random instances the heuristic must return feasible solutions
// whose objective is close to the exact optimum.
func TestNearOptimalOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sumRatio float64
	count := 0
	for trial := 0; trial < 30; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N: 5 + rng.Intn(3), TimingProb: 0.4, WithLinear: trial%3 == 0,
		})
		exact, err := bruteforce.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !exact.Found {
			continue
		}
		res, err := Solve(context.Background(), p, Options{Iterations: 60, Seed: int64(trial), Refine: gap.RefineSwap})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("trial %d: infeasible result on feasible instance", trial)
		}
		if res.Objective < exact.Value {
			t.Fatalf("trial %d: heuristic %d beat the exact optimum %d — evaluation bug", trial, res.Objective, exact.Value)
		}
		if exact.Value > 0 {
			sumRatio += float64(res.Objective) / float64(exact.Value)
			count++
		}
	}
	if count < 15 {
		t.Fatalf("only %d usable trials", count)
	}
	if mean := sumRatio / float64(count); mean > 1.10 {
		t.Fatalf("mean quality ratio %0.3f; want ≤ 1.10", mean)
	}
}

// The paper's protocol: produce a feasible start with QBP(B=0), then run
// the full solve from it. Feasibility of the result is then guaranteed
// (the best timing-feasible iterate is tracked and the start is one), and
// the objective can only improve.
func TestPaperProtocolKeepsFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N: 24, GridRows: 2, GridCols: 3, TimingProb: 0.25, WireProb: 0.3, CapSlack: 1.3,
		})
		start, err := FeasibleStart(context.Background(), p, int64(trial), 40)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := Solve(context.Background(), p, Options{Iterations: 80, Seed: int64(trial), Initial: start})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("trial %d: %d timing violations remained despite feasible start", trial, res.TimingViolations)
		}
		if err := p.Normalized().CheckFeasible(res.Assignment); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Objective > p.Normalized().Objective(start) {
			t.Fatalf("trial %d: objective worsened from the start: %d > %d",
				trial, res.Objective, p.Normalized().Objective(start))
		}
	}
}

// From arbitrary random starts (the paper: "QBP maintained the same kind of
// good results from any arbitrary initial solution") feasibility is not
// formally guaranteed, but it must be reached in the vast majority of runs.
func TestRandomStartUsuallyReachesFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	feasible := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N: 24, GridRows: 2, GridCols: 3, TimingProb: 0.25, WireProb: 0.3, CapSlack: 1.3,
		})
		res, err := Solve(context.Background(), p, Options{Iterations: 80, Seed: int64(trial), AutoPenalty: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible {
			feasible++
		}
	}
	if feasible < trials-2 {
		t.Fatalf("only %d/%d random-start runs reached timing feasibility", feasible, trials)
	}
}

func TestRelaxTimingIgnoresConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p, _ := testgen.Random(rng, testgen.Config{N: 12, TimingProb: 0.6, TimingSlack: 0})
	relaxed, err := Solve(context.Background(), p, Options{Iterations: 40, Seed: 1, RelaxTiming: true})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Solve(context.Background(), p, Options{Iterations: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The relaxed optimum can only be at least as good (lower or equal
	// objective) since it searches a superset.
	if relaxed.Objective > strict.Objective {
		t.Fatalf("relaxed objective %d worse than constrained %d", relaxed.Objective, strict.Objective)
	}
	if !relaxed.Feasible { // Feasible means C1 (+C2 only when enforced)
		t.Fatal("relaxed solve must report capacity feasibility")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p, _ := testgen.Random(rng, testgen.Config{N: 15, TimingProb: 0.3})
	r1, err := Solve(context.Background(), p, Options{Iterations: 25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(context.Background(), p, Options{Iterations: 25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Objective != r2.Objective {
		t.Fatalf("same seed, different objectives: %d vs %d", r1.Objective, r2.Objective)
	}
	for j := range r1.Assignment {
		if r1.Assignment[j] != r2.Assignment[j] {
			t.Fatalf("same seed, different assignments at %d", j)
		}
	}
}

func TestInitialAssignmentRespected(t *testing.T) {
	p := paperex.MustNew()
	initial := model.Assignment{0, 1, 3} // feasible
	res, err := Solve(context.Background(), p, Options{Iterations: 10, Initial: initial})
	if err != nil {
		t.Fatal(err)
	}
	// The result can only improve on (or match) the initial objective.
	if res.Objective > p.Objective(initial) {
		t.Fatalf("result %d worse than initial %d", res.Objective, p.Objective(initial))
	}
}

func TestOnIterationTrace(t *testing.T) {
	p := paperex.MustNew()
	var ks []int
	_, err := Solve(context.Background(), p, Options{Iterations: 7, OnIteration: func(it Iteration) {
		ks = append(ks, it.K)
		if it.Best > it.Current && it.K > 1 {
			// Best must be ≤ Current by definition once updated... Best is
			// min over iterates, so Best ≤ Current always after update.
			t.Errorf("iteration %d: best %d > current %d", it.K, it.Best, it.Current)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 7 || ks[0] != 1 || ks[6] != 7 {
		t.Fatalf("trace iterations = %v, want 1..7", ks)
	}
}

func TestFeasibleStart(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N: 30, GridRows: 2, GridCols: 3, TimingProb: 0.3, CapSlack: 1.3,
		})
		a, err := FeasibleStart(context.Background(), p, int64(trial), 40)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := p.Normalized().CheckFeasible(a); err != nil {
			t.Fatalf("trial %d: start infeasible: %v", trial, err)
		}
	}
}

func TestMoreIterationsDoNotWorsen(t *testing.T) {
	// With restarts and polish disabled the iterate sequence for a fixed
	// seed is a pure prefix relation, so the tracked best penalized value
	// is monotone in the iteration budget (the paper: "the more CPU time
	// spent, the better the results").
	rng := rand.New(rand.NewSource(13))
	p, _ := testgen.Random(rng, testgen.Config{N: 14, TimingProb: 0.3})
	bestAt := map[int]int64{}
	opts := Options{Iterations: 80, Seed: 2, DisablePolish: true, DisableRestarts: true,
		OnIteration: func(it Iteration) { bestAt[it.K] = it.Best }}
	if _, err := Solve(context.Background(), p, opts); err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 80; k++ {
		if bestAt[k] > bestAt[k-1] {
			t.Fatalf("best worsened from %d to %d at iteration %d", bestAt[k-1], bestAt[k], k)
		}
	}
}

func TestAutoPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p, _ := testgen.Random(rng, testgen.Config{N: 10, TimingProb: 0.4, MaxWeight: 40})
	res, err := Solve(context.Background(), p, Options{Iterations: 60, Seed: 1, AutoPenalty: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("auto-penalty solve infeasible on feasible instance")
	}
}

func TestOmegaAblationStillSolves(t *testing.T) {
	p := paperex.MustNew()
	res, err := Solve(context.Background(), p, Options{Iterations: 50, Seed: 3, OmegaInEta: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("ablated solver returned infeasible solution")
	}
}
