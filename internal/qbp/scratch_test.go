package qbp

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/testgen"
)

// TestScratchReuseDeterminism: lending one Scratch holder across a sequence
// of solves — same shape, then a different shape, then back — yields
// results bit-identical to fresh solves. This is the contract the daemon's
// worker pool relies on: a worker keeps one warm holder and feeds it
// whatever jobs arrive, in whatever order.
func TestScratchReuseDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	pa, _ := testgen.Random(rng, testgen.Config{N: 30, TimingProb: 0.3})
	pb, _ := testgen.Random(rng, testgen.Config{N: 18, TimingProb: 0.2})
	ctx := context.Background()

	solve := func(p *model.Problem, seed int64, sc *Scratch) []int {
		t.Helper()
		res, err := Solve(ctx, p, Options{Iterations: 12, Seed: seed, Scratch: sc})
		if err != nil {
			t.Fatal(err)
		}
		return res.Assignment
	}

	// Reference results from cold solves (no holder).
	refA1 := solve(pa, 1, nil)
	refA2 := solve(pa, 2, nil)
	refB := solve(pb, 7, nil)

	// One holder threaded through the whole interleaved sequence.
	warm := &Scratch{}
	gotA1 := solve(pa, 1, warm)
	gotB := solve(pb, 7, warm)  // shape change: holder reallocates
	gotA2 := solve(pa, 2, warm) // back to the first shape
	gotA1again := solve(pa, 1, warm)

	assertSame := func(name string, got, want []int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("%s: differs at component %d (%d vs %d)", name, j, got[j], want[j])
			}
		}
	}
	assertSame("A seed 1 warm", gotA1, refA1)
	assertSame("B warm after shape change", gotB, refB)
	assertSame("A seed 2 warm", gotA2, refA2)
	assertSame("A seed 1 warm repeat", gotA1again, refA1)
}

// TestScratchLeaseShape: same shape keeps the same buffer set (the reuse is
// real), a different shape replaces it.
func TestScratchLeaseShape(t *testing.T) {
	w := &Scratch{}
	first := w.lease(4, 30)
	if again := w.lease(4, 30); again != first {
		t.Error("same-shape lease reallocated")
	}
	if other := w.lease(4, 18); other == first {
		t.Error("shape change kept the old buffers")
	}
}
