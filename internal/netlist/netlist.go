// Package netlist converts hypergraph netlists — the native form of real
// circuits, where one net connects two or more pins — into the pairwise
// interconnection matrix A of the partitioning formulation. The paper takes
// A as given ("the number of interconnections from component j1 to j2");
// this front-end provides the two standard reductions used to produce such
// matrices from multi-pin nets:
//
//   - Clique: a k-pin net becomes k·(k−1)/2 pairs, each of weight
//     W/(k−1) (scaled to integers) — the classic approximation whose total
//     incident weight per pin stays W.
//   - Star: a k-pin net becomes k−1 pairs from the first (driver) pin to
//     every sink, each of weight W — cheaper and exact for two-pin nets.
//
// Both reductions keep two-pin nets identical (one pair of weight W).
package netlist

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/model"
)

// Net is one hyperedge: two or more distinct pins (component indices) with
// a weight. Pins[0] is the driver for the star model.
type Net struct {
	Pins   []int
	Weight int64
}

// Netlist is a hypergraph over n components.
type Netlist struct {
	Components int
	Nets       []Net
}

// Validate checks pin ranges, arities and weights.
func (nl *Netlist) Validate() error {
	if nl.Components <= 0 {
		return errors.New("netlist: no components")
	}
	for k, net := range nl.Nets {
		if len(net.Pins) < 2 {
			return fmt.Errorf("netlist: net %d has %d pins, need ≥ 2", k, len(net.Pins))
		}
		if net.Weight <= 0 {
			return fmt.Errorf("netlist: net %d has non-positive weight %d", k, net.Weight)
		}
		seen := make(map[int]bool, len(net.Pins))
		for _, p := range net.Pins {
			if p < 0 || p >= nl.Components {
				return fmt.Errorf("netlist: net %d pin %d out of range [0,%d)", k, p, nl.Components)
			}
			if seen[p] {
				return fmt.Errorf("netlist: net %d repeats pin %d", k, p)
			}
			seen[p] = true
		}
	}
	return nil
}

// Model selects the hyperedge-to-pairs reduction.
type Model int

const (
	// Clique connects every pin pair with weight ≈ W/(k−1).
	Clique Model = iota
	// Star connects the driver (first pin) to every sink with weight W.
	Star
)

// scale keeps clique weights integral: every net contributes
// weight·scale/(k−1) per pair, so pairs from small nets stay comparable.
// 12 is divisible by k−1 for k ∈ {2,3,4,5,7,13}, covering typical fanouts
// with no rounding at all.
const scale = 12

// Wires reduces the hypergraph to the pairwise wire list of the
// formulation. Clique-model weights are scaled by a common factor
// (returned as denom) to stay integral: the caller's objective is then
// denom × the conventional clique-model wire length. Star returns denom 1.
// Duplicate pairs across nets accumulate.
func Wires(nl *Netlist, m Model) (wires []model.Wire, denom int64, err error) {
	if err := nl.Validate(); err != nil {
		return nil, 0, err
	}
	type key struct{ a, b int }
	acc := make(map[key]int64)
	add := func(a, b, w int64) {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		acc[key{x, y}] += w
	}
	switch m {
	case Clique:
		denom = scale
		for _, net := range nl.Nets {
			k := int64(len(net.Pins))
			per := net.Weight * scale / (k - 1)
			if per == 0 {
				per = 1 // huge nets: keep a nonzero coupling
			}
			for i := 0; i < len(net.Pins); i++ {
				for j := i + 1; j < len(net.Pins); j++ {
					add(int64(net.Pins[i]), int64(net.Pins[j]), per)
				}
			}
		}
	case Star:
		denom = 1
		for _, net := range nl.Nets {
			for _, sink := range net.Pins[1:] {
				add(int64(net.Pins[0]), int64(sink), net.Weight)
			}
		}
	default:
		return nil, 0, fmt.Errorf("netlist: unknown model %d", int(m))
	}
	wires = make([]model.Wire, 0, len(acc))
	for k, w := range acc {
		wires = append(wires, model.Wire{From: k.a, To: k.b, Weight: w})
	}
	sort.Slice(wires, func(x, y int) bool {
		if wires[x].From != wires[y].From {
			return wires[x].From < wires[y].From
		}
		return wires[x].To < wires[y].To
	})
	return wires, denom, nil
}

// Circuit assembles a model.Circuit from the hypergraph: sizes are taken
// as given, wires come from the chosen reduction, and timing constraints
// are passed through unchanged. The returned denom scales the quadratic
// objective (see Wires).
func Circuit(name string, sizes []int64, nl *Netlist, m Model, timing []model.TimingConstraint) (*model.Circuit, int64, error) {
	if len(sizes) != nl.Components {
		return nil, 0, fmt.Errorf("netlist: %d sizes for %d components", len(sizes), nl.Components)
	}
	wires, denom, err := Wires(nl, m)
	if err != nil {
		return nil, 0, err
	}
	c := &model.Circuit{Name: name, Sizes: sizes, Wires: wires, Timing: timing}
	if err := c.Validate(); err != nil {
		return nil, 0, err
	}
	return c, denom, nil
}

// CutNets counts, for an assignment, how many nets span more than one
// partition — the classic min-cut metric, reported alongside wire length
// so hypergraph users can see both.
func CutNets(nl *Netlist, a model.Assignment) (int, error) {
	if err := nl.Validate(); err != nil {
		return 0, err
	}
	cut := 0
	for _, net := range nl.Nets {
		first := a[net.Pins[0]]
		for _, p := range net.Pins[1:] {
			if a[p] != first {
				cut++
				break
			}
		}
	}
	return cut, nil
}
