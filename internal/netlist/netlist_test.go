package netlist

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func twoPin(a, b int, w int64) Net { return Net{Pins: []int{a, b}, Weight: w} }

func TestValidate(t *testing.T) {
	nl := &Netlist{Components: 4, Nets: []Net{twoPin(0, 1, 2), {Pins: []int{1, 2, 3}, Weight: 1}}}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		nl   *Netlist
	}{
		{"no components", &Netlist{}},
		{"one pin", &Netlist{Components: 2, Nets: []Net{{Pins: []int{0}, Weight: 1}}}},
		{"zero weight", &Netlist{Components: 2, Nets: []Net{{Pins: []int{0, 1}, Weight: 0}}}},
		{"out of range", &Netlist{Components: 2, Nets: []Net{twoPin(0, 5, 1)}}},
		{"repeated pin", &Netlist{Components: 2, Nets: []Net{{Pins: []int{1, 1}, Weight: 1}}}},
	}
	for _, tc := range cases {
		if err := tc.nl.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestTwoPinNetsIdenticalUnderBothModels(t *testing.T) {
	nl := &Netlist{Components: 3, Nets: []Net{twoPin(0, 1, 5), twoPin(1, 2, 2)}}
	star, d1, err := Wires(nl, Star)
	if err != nil {
		t.Fatal(err)
	}
	clique, d2, err := Wires(nl, Clique)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != 1 || d2 != scale {
		t.Fatalf("denoms %d, %d", d1, d2)
	}
	if len(star) != 2 || len(clique) != 2 {
		t.Fatalf("pair counts %d, %d, want 2 each", len(star), len(clique))
	}
	for k := range star {
		if clique[k].Weight != star[k].Weight*scale {
			t.Fatalf("pair %d: clique %d != star %d × scale", k, clique[k].Weight, star[k].Weight)
		}
	}
}

func TestCliqueWeights(t *testing.T) {
	// A 4-pin net of weight 2: 6 pairs of weight 2·12/3 = 8.
	nl := &Netlist{Components: 4, Nets: []Net{{Pins: []int{0, 1, 2, 3}, Weight: 2}}}
	wires, denom, err := Wires(nl, Clique)
	if err != nil {
		t.Fatal(err)
	}
	if denom != scale || len(wires) != 6 {
		t.Fatalf("denom=%d pairs=%d", denom, len(wires))
	}
	for _, w := range wires {
		if w.Weight != 8 {
			t.Fatalf("pair weight %d, want 8", w.Weight)
		}
	}
}

func TestStarUsesDriver(t *testing.T) {
	nl := &Netlist{Components: 4, Nets: []Net{{Pins: []int{2, 0, 3}, Weight: 5}}}
	wires, _, err := Wires(nl, Star)
	if err != nil {
		t.Fatal(err)
	}
	if len(wires) != 2 {
		t.Fatalf("%d pairs, want 2 (driver to each sink)", len(wires))
	}
	for _, w := range wires {
		if w.From != 2 && w.To != 2 {
			t.Fatalf("pair %v does not touch the driver", w)
		}
		if w.Weight != 5 {
			t.Fatalf("pair weight %d, want 5", w.Weight)
		}
	}
}

func TestDuplicatePairsAccumulate(t *testing.T) {
	nl := &Netlist{Components: 2, Nets: []Net{twoPin(0, 1, 3), twoPin(1, 0, 4)}}
	wires, _, err := Wires(nl, Star)
	if err != nil {
		t.Fatal(err)
	}
	if len(wires) != 1 || wires[0].Weight != 7 {
		t.Fatalf("wires = %v, want one pair of weight 7", wires)
	}
}

func TestCircuitAssembly(t *testing.T) {
	nl := &Netlist{Components: 3, Nets: []Net{{Pins: []int{0, 1, 2}, Weight: 1}}}
	c, denom, err := Circuit("hg", []int64{1, 2, 3}, nl, Clique, []model.TimingConstraint{{From: 0, To: 2, MaxDelay: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if denom != scale || c.Name != "hg" || len(c.Wires) != 3 || len(c.Timing) != 1 {
		t.Fatalf("bad circuit: %+v denom=%d", c, denom)
	}
	if _, _, err := Circuit("hg", []int64{1}, nl, Clique, nil); err == nil {
		t.Fatal("size/component mismatch accepted")
	}
}

func TestCutNets(t *testing.T) {
	nl := &Netlist{Components: 4, Nets: []Net{
		{Pins: []int{0, 1}, Weight: 1},
		{Pins: []int{0, 1, 2}, Weight: 1},
		{Pins: []int{2, 3}, Weight: 1},
	}}
	// 0,1 together; 2,3 together: only the 3-pin net is cut.
	cut, err := CutNets(nl, model.Assignment{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
	cut, _ = CutNets(nl, model.Assignment{0, 0, 0, 0})
	if cut != 0 {
		t.Fatalf("cut = %d, want 0 when everything shares a slot", cut)
	}
}

// Property: per-pin incident weight under the clique model equals
// W·scale for every pin of every net (the defining property of the
// W/(k−1) weighting), verified on random hypergraphs.
func TestCliquePinWeightInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(10)
		nl := &Netlist{Components: n}
		for e := 0; e < 8; e++ {
			k := 2 + rng.Intn(4) // arities 2..5 divide scale exactly
			perm := rng.Perm(n)[:k]
			nl.Nets = append(nl.Nets, Net{Pins: perm, Weight: int64(1 + rng.Intn(3))})
		}
		wires, _, err := Wires(nl, Clique)
		if err != nil {
			t.Fatal(err)
		}
		// Recompute per-pin incident weight per net from scratch: since
		// pairs merge across nets, check totals instead.
		wantTotal := make(map[int]int64)
		for _, net := range nl.Nets {
			for _, p := range net.Pins {
				wantTotal[p] += net.Weight * scale
			}
		}
		gotTotal := make(map[int]int64)
		for _, w := range wires {
			gotTotal[w.From] += w.Weight
			gotTotal[w.To] += w.Weight
		}
		for p, want := range wantTotal {
			if gotTotal[p] != want {
				t.Fatalf("trial %d: pin %d incident weight %d, want %d", trial, p, gotTotal[p], want)
			}
		}
	}
}
