package textio

// Run with: go test ./internal/textio -run TestRegenerateGolden -regen
// to rewrite testdata/golden-v1.prob after an intentional format change.

import (
	"flag"
	"os"
	"testing"

	"repro/internal/geometry"
	"repro/internal/model"
)

var regen = flag.Bool("regen", false, "regenerate testdata golden files")

func goldenProblem() *model.Problem {
	grid := geometry.Grid{Rows: 2, Cols: 2}
	dist, _ := grid.DistanceMatrix(geometry.Manhattan)
	c := &model.Circuit{
		Name:  "golden-v1",
		Sizes: []int64{3, 1, 2, 5},
		Wires: []model.Wire{
			{From: 0, To: 1, Weight: 4},
			{From: 1, To: 2, Weight: 1},
			{From: 0, To: 3, Weight: 2},
		},
		Timing: []model.TimingConstraint{
			{From: 0, To: 1, MaxDelay: 1},
			{From: 2, To: 3, MaxDelay: 2},
		},
	}
	topo := &model.Topology{
		Capacities: []int64{6, 6, 6, 6},
		Cost:       dist,
		Delay:      dist,
	}
	lin := [][]int64{
		{0, 1, 2, 3},
		{1, 0, 1, 2},
		{2, 1, 0, 1},
		{3, 2, 1, 0},
	}
	p, err := model.NewProblem(c, topo, 2, 3, lin)
	if err != nil {
		panic(err)
	}
	return p
}

func TestRegenerateGolden(t *testing.T) {
	if !*regen {
		t.Skip("pass -regen to rewrite the golden file")
	}
	f, err := os.Create("testdata/golden-v1.prob")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := WriteProblem(f, goldenProblem()); err != nil {
		t.Fatal(err)
	}
}

// TestFormatStability guards the on-disk format: files written by earlier
// releases must keep parsing identically, and the current writer must
// produce byte-identical output for the same problem.
func TestFormatStability(t *testing.T) {
	f, err := os.Open("testdata/golden-v1.prob")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadProblem(f)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenProblem()
	if !problemsEqual(got, want) {
		t.Fatal("golden file no longer parses to the original problem")
	}
	// Byte-identical writer output.
	raw, err := os.ReadFile("testdata/golden-v1.prob")
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	{
		tmp := &writeBuffer{}
		if err := WriteProblem(tmp, want); err != nil {
			t.Fatal(err)
		}
		buf = tmp.data
	}
	if string(buf) != string(raw) {
		t.Fatal("writer output changed; if intentional, regenerate with -regen and bump the format version")
	}
}

type writeBuffer struct{ data []byte }

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}
