package textio

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/model"
)

// benchProblem builds a deterministic N-component, deg≈8 instance without
// going through the generator: serialization cost is what is measured, so
// the topology just needs realistic section sizes.
func benchProblem(tb testing.TB, n int) *model.Problem {
	const m = 8
	c := &model.Circuit{Name: "bench", Sizes: make([]int64, n)}
	for j := 0; j < n; j++ {
		c.Sizes[j] = int64(1 + j%7)
	}
	for j := 0; j < n; j++ {
		for _, stride := range []int{1, 17, 257, 4099} {
			o := (j + stride) % n
			if o == j {
				continue
			}
			c.Wires = append(c.Wires, model.Wire{From: j, To: o, Weight: int64(1 + (j+stride)%4)})
		}
	}
	for j := 0; j < n; j += 16 {
		c.Timing = append(c.Timing, model.TimingConstraint{From: j, To: (j + 1) % n, MaxDelay: int64(2 + j%5)})
	}
	topo := &model.Topology{
		Capacities: make([]int64, m),
		Cost:       make([][]int64, m),
		Delay:      make([][]int64, m),
	}
	for i := 0; i < m; i++ {
		topo.Capacities[i] = int64(n)
		topo.Cost[i] = make([]int64, m)
		topo.Delay[i] = make([]int64, m)
		for k := 0; k < m; k++ {
			if i != k {
				topo.Cost[i][k] = int64(1 + (i+k)%3)
				topo.Delay[i][k] = int64(1 + (i*k)%4)
			}
		}
	}
	p, err := model.NewProblem(c, topo, 1, 1, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// BenchmarkBinaryReadWrite compares the text and binary serializations at
// N=10⁵ (≈4·10⁵ wire records), the scale where instance I/O starts to rival
// solve time. The read pair backs the PR's ≥5× speed / ≥10× alloc claim.
func BenchmarkBinaryReadWrite(b *testing.B) {
	p := benchProblem(b, 100_000)
	var text, bin bytes.Buffer
	if err := WriteProblem(&text, p); err != nil {
		b.Fatal(err)
	}
	if err := WriteProblemBinary(&bin, p); err != nil {
		b.Fatal(err)
	}
	b.Logf("text %d bytes, binary %d bytes", text.Len(), bin.Len())

	b.Run("read_text", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(text.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := ReadProblem(bytes.NewReader(text.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read_binary", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(bin.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := ReadProblemBinary(bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write_text", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(text.Len()))
		for i := 0; i < b.N; i++ {
			if err := WriteProblem(io.Discard, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write_binary", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(bin.Len()))
		for i := 0; i < b.N; i++ {
			if err := WriteProblemBinary(io.Discard, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
