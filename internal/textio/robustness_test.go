package textio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/paperex"
)

// TestParserNeverPanics feeds the reader thousands of corrupted variants of
// a valid problem file: every outcome must be a clean value or error, never
// a panic or a structurally invalid problem.
func TestParserNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProblem(&buf, paperex.MustNew()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		corrupted := append([]byte(nil), valid...)
		for edits := 1 + rng.Intn(4); edits > 0; edits-- {
			switch rng.Intn(4) {
			case 0: // flip a byte
				corrupted[rng.Intn(len(corrupted))] = byte(rng.Intn(256))
			case 1: // truncate
				corrupted = corrupted[:rng.Intn(len(corrupted)+1)]
			case 2: // duplicate a slice
				if len(corrupted) > 2 {
					a := rng.Intn(len(corrupted))
					b := a + rng.Intn(len(corrupted)-a)
					corrupted = append(corrupted[:b], append([]byte(string(corrupted[a:b])), corrupted[b:]...)...)
				}
			case 3: // insert junk line
				pos := rng.Intn(len(corrupted))
				corrupted = append(corrupted[:pos], append([]byte("\n-9 xx 77\n"), corrupted[pos:]...)...)
			}
			if len(corrupted) == 0 {
				break
			}
		}
		p, err := ReadProblem(bytes.NewReader(corrupted))
		if err == nil && p != nil {
			if verr := p.Validate(); verr != nil {
				t.Fatalf("trial %d: parser accepted a structurally invalid problem: %v", trial, verr)
			}
		}
	}
}

// TestAssignmentParserNeverPanics does the same for the assignment format.
func TestAssignmentParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := "qbpart-assignment v1 4\n0\n1\n2\n3\n"
	for trial := 0; trial < 2000; trial++ {
		b := []byte(base)
		for edits := 1 + rng.Intn(3); edits > 0; edits-- {
			if len(b) == 0 {
				break
			}
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
		}
		_, _ = ReadAssignment(strings.NewReader(string(b)))
	}
}
