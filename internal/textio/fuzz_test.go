package textio

import (
	"bytes"
	"testing"

	"repro/internal/paperex"
)

// problemSeeds returns valid and near-valid serializations for the fuzzers.
func problemSeeds(t interface{ Fatalf(string, ...any) }) [][]byte {
	var buf bytes.Buffer
	if err := WriteProblem(&buf, paperex.MustNew()); err != nil {
		t.Fatalf("seed WriteProblem: %v", err)
	}
	tiny := `qbpart-problem v1
name tiny
alpha 1
beta 10
components 2
1
1
wires 1
0 1 2
timing 1
0 1 9
partitions 2
4
4
cost
0 1
1 0
delay
0 3
3 0
`
	return [][]byte{
		buf.Bytes(),
		[]byte(tiny),
		[]byte(tiny + "linear\n0 0\n0 0\n"),
		[]byte("qbpart-problem v1\n"),
		[]byte("qbpart-problem v1\nname x\nalpha 1\nbeta 1\ncomponents -3\n"),
		[]byte("qbpart-problem v1\nname x\nalpha 1\nbeta 1\ncomponents 99999999999\n"),
		[]byte("# comment only\n"),
	}
}

// FuzzReadProblem checks that ReadProblem never panics on arbitrary input and
// that every accepted problem survives a canonical write/read/write
// round-trip byte-for-byte.
func FuzzReadProblem(f *testing.F) {
	for _, seed := range problemSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProblem(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only panics are failures
		}
		var first bytes.Buffer
		if err := WriteProblem(&first, p); err != nil {
			t.Fatalf("accepted problem failed to serialize: %v", err)
		}
		p2, err := ReadProblem(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := WriteProblem(&second, p2); err != nil {
			t.Fatalf("second serialize failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round-trip not canonical:\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
		}
	})
}

// FuzzReadAssignment checks that ReadAssignment never panics and that
// accepted assignments round-trip exactly.
func FuzzReadAssignment(f *testing.F) {
	f.Add([]byte("qbpart-assignment v1 3\n0\n1\n0\n"))
	f.Add([]byte("qbpart-assignment v1 0\n"))
	f.Add([]byte("qbpart-assignment v1 -1\n"))
	f.Add([]byte("qbpart-assignment v1 99999999999\n"))
	f.Add([]byte("# leading comment\nqbpart-assignment v1 1\n7\n"))
	f.Add([]byte("qbpart-problem v1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ReadAssignment(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteAssignment(&buf, a); err != nil {
			t.Fatalf("accepted assignment failed to serialize: %v", err)
		}
		a2, err := ReadAssignment(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own output failed: %v", err)
		}
		if len(a) != len(a2) {
			t.Fatalf("round-trip length %d != %d", len(a2), len(a))
		}
		for i := range a {
			if a[i] != a2[i] {
				t.Fatalf("round-trip mismatch at %d: %d != %d", i, a2[i], a[i])
			}
		}
	})
}
