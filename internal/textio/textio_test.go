package textio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/testgen"
)

func roundTrip(t *testing.T, p *model.Problem) *model.Problem {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProblem(&buf)
	if err != nil {
		t.Fatalf("read back: %v\n", err)
	}
	return q
}

func problemsEqual(a, b *model.Problem) bool {
	if a.Alpha != b.Alpha || a.Beta != b.Beta || a.N() != b.N() || a.M() != b.M() {
		return false
	}
	if a.Circuit.Name != b.Circuit.Name {
		return false
	}
	for j := range a.Circuit.Sizes {
		if a.Circuit.Sizes[j] != b.Circuit.Sizes[j] {
			return false
		}
	}
	if len(a.Circuit.Wires) != len(b.Circuit.Wires) || len(a.Circuit.Timing) != len(b.Circuit.Timing) {
		return false
	}
	for k := range a.Circuit.Wires {
		if a.Circuit.Wires[k] != b.Circuit.Wires[k] {
			return false
		}
	}
	for k := range a.Circuit.Timing {
		if a.Circuit.Timing[k] != b.Circuit.Timing[k] {
			return false
		}
	}
	for i := range a.Topology.Capacities {
		if a.Topology.Capacities[i] != b.Topology.Capacities[i] {
			return false
		}
		for k := range a.Topology.Cost[i] {
			if a.Topology.Cost[i][k] != b.Topology.Cost[i][k] || a.Topology.Delay[i][k] != b.Topology.Delay[i][k] {
				return false
			}
		}
	}
	if (a.Linear == nil) != (b.Linear == nil) {
		return false
	}
	if a.Linear != nil {
		for i := range a.Linear {
			for j := range a.Linear[i] {
				if a.Linear[i][j] != b.Linear[i][j] {
					return false
				}
			}
		}
	}
	return true
}

func TestProblemRoundTrip(t *testing.T) {
	if !problemsEqual(paperex.MustNew(), roundTrip(t, paperex.MustNew())) {
		t.Fatal("paper example did not round-trip")
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N: 10, TimingProb: 0.4, WithLinear: trial%2 == 0, Alpha: 2, Beta: 5,
		})
		if !problemsEqual(p, roundTrip(t, p)) {
			t.Fatalf("trial %d did not round-trip", trial)
		}
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	a := model.Assignment{3, 1, 4, 1, 5, 9, 2, 6}
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadAssignment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("length %d != %d", len(b), len(a))
	}
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("entry %d: %d != %d", j, b[j], a[j])
		}
	}
}

func TestCommentsAndBlankLinesIgnored(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProblem(&buf, paperex.MustNew()); err != nil {
		t.Fatal(err)
	}
	noisy := "# generated file\n\n" + strings.ReplaceAll(buf.String(), "wires", "# about to list wires\nwires")
	if _, err := ReadProblem(strings.NewReader(noisy)); err != nil {
		t.Fatalf("comments broke parsing: %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "something else\n"},
		{"truncated", "qbpart-problem v1\nname x\nalpha 1\nbeta 1\ncomponents 2\n5\n"},
		{"bad keyword", "qbpart-problem v1\nname x\nalpha 1\ngamma 1\n"},
		{"bad int", "qbpart-problem v1\nname x\nalpha one\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadProblem(strings.NewReader(tc.input)); err == nil {
				t.Fatalf("accepted %q", tc.input)
			}
		})
	}
	if _, err := ReadAssignment(strings.NewReader("nope\n")); err == nil {
		t.Fatal("bad assignment header accepted")
	}
	if _, err := ReadAssignment(strings.NewReader("qbpart-assignment v1 3\n1\n2\n")); err == nil {
		t.Fatal("truncated assignment accepted")
	}
}

func TestInvalidProblemRejectedOnWrite(t *testing.T) {
	p := paperex.MustNew()
	p.Circuit.Sizes[0] = -1
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err == nil {
		t.Fatal("invalid problem serialized")
	}
}

func TestNameSanitization(t *testing.T) {
	p := paperex.MustNew()
	p.Circuit.Name = "has spaces\tand tabs"
	q := roundTrip(t, p)
	if strings.ContainsAny(q.Circuit.Name, " \t\n") {
		t.Fatalf("name not sanitized: %q", q.Circuit.Name)
	}
	p.Circuit.Name = ""
	if got := roundTrip(t, p).Circuit.Name; got != "unnamed" {
		t.Fatalf("empty name round-tripped to %q", got)
	}
}
