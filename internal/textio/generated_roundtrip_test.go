package textio_test

// Round-trip of a full generated circuit through both serializers. This
// lives in an external test package because internal/gen streams through
// textio (gen -> textio), so an in-package test importing gen would be an
// import cycle.

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/textio"
)

func TestGeneratedCircuitRoundTrip(t *testing.T) {
	in := gen.MustNamed("cktb")

	var text bytes.Buffer
	if err := textio.WriteProblem(&text, in.Problem); err != nil {
		t.Fatal(err)
	}
	fromText, err := textio.ReadProblem(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	var bin bytes.Buffer
	if err := textio.WriteProblemBinary(&bin, in.Problem); err != nil {
		t.Fatal(err)
	}
	fromBin, format, err := textio.ReadProblemDetect(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if format != textio.FormatBinary {
		t.Fatalf("detected %v, want binary", format)
	}

	// Canonical text renderings are the equality oracle for both paths.
	var a, b bytes.Buffer
	if err := textio.WriteProblem(&a, fromText); err != nil {
		t.Fatal(err)
	}
	if err := textio.WriteProblem(&b, fromBin); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text.Bytes(), a.Bytes()) {
		t.Fatal("text round-trip changed the canonical rendering")
	}
	if !bytes.Equal(text.Bytes(), b.Bytes()) {
		t.Fatal("binary round-trip changed the canonical rendering")
	}
}
