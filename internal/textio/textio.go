// Package textio serializes problems and assignments as a plain-text,
// line-oriented format so circuits can be generated, stored, solved and
// validated by separate CLI invocations. The format is versioned and
// self-describing:
//
//	qbpart-problem v1
//	name <string>
//	alpha <int>
//	beta <int>
//	components <N>
//	<N lines: size>
//	wires <K>
//	<K lines: from to weight>
//	timing <T>
//	<T lines: from to maxdelay>
//	partitions <M>
//	<M lines: capacity>
//	cost
//	<M lines of M ints>
//	delay
//	<M lines of M ints>
//	linear            (optional section)
//	<M lines of N ints>
//
// Assignments are one header line "qbpart-assignment v1 <N>" followed by N
// partition indices, one per line. Lines starting with '#' are comments.
package textio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/model"
)

const (
	problemHeader    = "qbpart-problem v1"
	assignmentHeader = "qbpart-assignment v1"
)

// WriteProblem serializes p.
func WriteProblem(w io.Writer, p *model.Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, problemHeader)
	fmt.Fprintf(bw, "name %s\n", sanitizeName(p.Circuit.Name))
	fmt.Fprintf(bw, "alpha %d\n", p.Alpha)
	fmt.Fprintf(bw, "beta %d\n", p.Beta)
	fmt.Fprintf(bw, "components %d\n", p.N())
	for _, s := range p.Circuit.Sizes {
		fmt.Fprintln(bw, s)
	}
	fmt.Fprintf(bw, "wires %d\n", len(p.Circuit.Wires))
	for _, wr := range p.Circuit.Wires {
		fmt.Fprintf(bw, "%d %d %d\n", wr.From, wr.To, wr.Weight)
	}
	fmt.Fprintf(bw, "timing %d\n", len(p.Circuit.Timing))
	for _, t := range p.Circuit.Timing {
		fmt.Fprintf(bw, "%d %d %d\n", t.From, t.To, t.MaxDelay)
	}
	fmt.Fprintf(bw, "partitions %d\n", p.M())
	for _, c := range p.Topology.Capacities {
		fmt.Fprintln(bw, c)
	}
	fmt.Fprintln(bw, "cost")
	writeMatrix(bw, p.Topology.Cost)
	fmt.Fprintln(bw, "delay")
	writeMatrix(bw, p.Topology.Delay)
	if p.Linear != nil {
		fmt.Fprintln(bw, "linear")
		writeMatrix(bw, p.Linear)
	}
	return bw.Flush()
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return '-'
		}
		return r
	}, s)
}

func writeMatrix(w io.Writer, mat [][]int64) {
	for _, row := range mat {
		parts := make([]string, len(row))
		for k, v := range row {
			parts[k] = strconv.FormatInt(v, 10)
		}
		fmt.Fprintln(w, strings.Join(parts, " "))
	}
}

// reader yields non-empty, non-comment lines with position tracking.
type reader struct {
	sc   *bufio.Scanner
	line int
}

func newReader(r io.Reader) *reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	return &reader{sc: sc}
}

func (r *reader) next() (string, error) {
	for r.sc.Scan() {
		r.line++
		s := strings.TrimSpace(r.sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		return s, nil
	}
	if err := r.sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

func (r *reader) errf(format string, args ...any) error {
	return fmt.Errorf("textio: line %d: %s", r.line, fmt.Sprintf(format, args...))
}

// maxCount bounds every element count read from a header line. It sits far
// above any realistic instance (the paper's largest benchmark has 469
// components) while keeping a hostile header like "components 1e18" from
// driving a huge allocation before any element line is read.
const maxCount = 1 << 20

// keyword reads a line expected to be "<key> <int>" and returns the int.
func (r *reader) keyword(key string) (int64, error) {
	s, err := r.next()
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(s)
	if len(fields) != 2 || fields[0] != key {
		return 0, r.errf("expected %q <value>, got %q", key, s)
	}
	v, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, r.errf("bad %s value %q", key, fields[1])
	}
	return v, nil
}

// count reads a "<key> <int>" line and range-checks it as an element count.
func (r *reader) count(key string) (int, error) {
	v, err := r.keyword(key)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > maxCount {
		return 0, r.errf("%s count %d out of range [0, %d]", key, v, maxCount)
	}
	return int(v), nil
}

func (r *reader) ints(want int) ([]int64, error) {
	s, err := r.next()
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(s)
	if len(fields) != want {
		return nil, r.errf("expected %d values, got %d", want, len(fields))
	}
	out := make([]int64, want)
	for k, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, r.errf("bad integer %q", f)
		}
		out[k] = v
	}
	return out, nil
}

func (r *reader) matrix(rows, cols int) ([][]int64, error) {
	mat := make([][]int64, rows)
	for i := range mat {
		row, err := r.ints(cols)
		if err != nil {
			return nil, err
		}
		mat[i] = row
	}
	return mat, nil
}

// ReadProblem parses a problem written by WriteProblem.
func ReadProblem(rd io.Reader) (*model.Problem, error) {
	r := newReader(rd)
	s, err := r.next()
	if err != nil {
		return nil, fmt.Errorf("textio: empty input: %w", err)
	}
	if s != problemHeader {
		return nil, r.errf("bad header %q, want %q", s, problemHeader)
	}
	nameLine, err := r.next()
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(nameLine, "name ") {
		return nil, r.errf("expected name line, got %q", nameLine)
	}
	name := strings.TrimSpace(strings.TrimPrefix(nameLine, "name "))
	alpha, err := r.keyword("alpha")
	if err != nil {
		return nil, err
	}
	beta, err := r.keyword("beta")
	if err != nil {
		return nil, err
	}
	n, err := r.count("components")
	if err != nil {
		return nil, err
	}
	circuit := &model.Circuit{Name: name, Sizes: make([]int64, n)}
	for j := 0; j < n; j++ {
		v, verr := r.ints(1)
		if verr != nil {
			return nil, verr
		}
		circuit.Sizes[j] = v[0]
	}
	nw, err := r.count("wires")
	if err != nil {
		return nil, err
	}
	for k := 0; k < nw; k++ {
		v, verr := r.ints(3)
		if verr != nil {
			return nil, verr
		}
		circuit.Wires = append(circuit.Wires, model.Wire{From: int(v[0]), To: int(v[1]), Weight: v[2]})
	}
	nt, err := r.count("timing")
	if err != nil {
		return nil, err
	}
	for k := 0; k < nt; k++ {
		v, verr := r.ints(3)
		if verr != nil {
			return nil, verr
		}
		circuit.Timing = append(circuit.Timing, model.TimingConstraint{From: int(v[0]), To: int(v[1]), MaxDelay: v[2]})
	}
	m, err := r.count("partitions")
	if err != nil {
		return nil, err
	}
	topo := &model.Topology{Capacities: make([]int64, m)}
	for i := 0; i < m; i++ {
		v, verr := r.ints(1)
		if verr != nil {
			return nil, verr
		}
		topo.Capacities[i] = v[0]
	}
	if s, err = r.next(); err != nil || s != "cost" {
		return nil, r.errf("expected cost section (err=%v)", err)
	}
	if topo.Cost, err = r.matrix(m, m); err != nil {
		return nil, err
	}
	if s, err = r.next(); err != nil || s != "delay" {
		return nil, r.errf("expected delay section (err=%v)", err)
	}
	if topo.Delay, err = r.matrix(m, m); err != nil {
		return nil, err
	}
	var linear [][]int64
	if s, err = r.next(); err == nil {
		if s != "linear" {
			return nil, r.errf("unexpected trailing content %q", s)
		}
		if linear, err = r.matrix(m, n); err != nil {
			return nil, err
		}
	} else if err != io.EOF {
		return nil, err
	}
	return model.NewProblem(circuit, topo, alpha, beta, linear)
}

// WriteAssignment serializes a.
func WriteAssignment(w io.Writer, a model.Assignment) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d\n", assignmentHeader, len(a))
	for _, i := range a {
		fmt.Fprintln(bw, i)
	}
	return bw.Flush()
}

// ReadAssignment parses an assignment written by WriteAssignment.
func ReadAssignment(rd io.Reader) (model.Assignment, error) {
	r := newReader(rd)
	s, err := r.next()
	if err != nil {
		return nil, fmt.Errorf("textio: empty input: %w", err)
	}
	if !strings.HasPrefix(s, assignmentHeader+" ") {
		return nil, r.errf("bad header %q", s)
	}
	n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(s, assignmentHeader+" ")))
	if err != nil || n < 0 || n > maxCount {
		return nil, r.errf("bad assignment length in header %q", s)
	}
	a := make(model.Assignment, n)
	for j := 0; j < n; j++ {
		v, err := r.ints(1)
		if err != nil {
			return nil, err
		}
		a[j] = int(v[0])
	}
	return a, nil
}
