// Binary problem/assignment serialization. The text format (textio.go) is
// the human-readable interchange; at N ≥ 10⁵ its per-line parse and
// allocation cost dominates end-to-end solves, so this file adds a
// versioned little-endian binary mirror with fixed-width records and a
// streaming writer (generators emit million-component instances without
// materializing them).
//
// Problem layout (all integers little-endian):
//
//	magic    "QBPB" (4 bytes)
//	version  uint16 (currently 1)
//	nameLen  uint16, name bytes (sanitized like the text format)
//	alpha    int64
//	beta     int64
//	n        uint32  components
//	wires    uint32  wire records
//	timing   uint32  timing records
//	m        uint32  partitions
//	flags    uint8   bit 0: linear section present
//	sizes    n × int64
//	wires    wires × {from uint32, to uint32, weight int64}
//	timing   timing × {from uint32, to uint32, maxdelay int64}
//	caps     m × int64
//	cost     m·m × int64 (row-major)
//	delay    m·m × int64 (row-major)
//	linear   m·n × int64 (row-major, only when flags bit 0 is set)
//
// Assignment layout:
//
//	magic    "QBPA" (4 bytes)
//	version  uint16 (currently 1)
//	n        uint32
//	entries  n × uint32
//
// Every count is range-checked against the supported envelope before any
// allocation, and element storage grows with the bytes actually read, so a
// hostile header cannot demand a giant up-front allocation. Version bumps
// are additive: readers reject versions they do not know with
// ErrUnsupportedVersion instead of guessing (compatibility policy in
// DESIGN.md §12).
package textio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/model"
)

const (
	problemMagic    = "QBPB"
	assignmentMagic = "QBPA"
	binVersion      = 1

	// The binary envelope is sized for the million-component roadmap
	// (N=10⁶, deg≈8 ⇒ ~4·10⁶ arc records), far past the text format's
	// line-count cap, while still bounding what a header may announce.
	maxBinComponents = 1 << 27
	maxBinArcs       = 1 << 30
	maxBinPartitions = 1 << 12
	maxBinName       = 1 << 12
)

// Typed sentinel errors of the binary readers; match with errors.Is.
var (
	// ErrBadMagic reports input that does not start with the expected
	// binary magic (it may be the text format — see ReadProblemAuto).
	ErrBadMagic = errors.New("textio: bad binary magic")
	// ErrUnsupportedVersion reports a recognized magic with a format
	// version this reader does not implement.
	ErrUnsupportedVersion = errors.New("textio: unsupported binary format version")
	// ErrTruncated reports input that ended mid-header or mid-section.
	ErrTruncated = errors.New("textio: truncated binary input")
	// ErrHeaderRange reports a header count outside the supported
	// envelope (oversized or negative).
	ErrHeaderRange = errors.New("textio: binary header count out of range")
)

// Format identifies a serialization detected on a stream.
type Format int

const (
	// FormatText is the line-oriented format of WriteProblem.
	FormatText Format = iota
	// FormatBinary is the little-endian format of WriteProblemBinary.
	FormatBinary
)

// String names the format for reports.
func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "text"
}

// ProblemHeader declares the shape of a streamed binary problem up front,
// so the fixed-width sections that follow can be written (and later read)
// in one pass.
type ProblemHeader struct {
	Name        string
	Alpha, Beta int64
	Components  int
	Wires       int
	Timing      int
	Partitions  int
	HasLinear   bool
}

// Streaming writer section order; each constant is the section whose
// records the writer currently expects.
const (
	secSizes = iota
	secWires
	secTiming
	secCaps
	secCost
	secDelay
	secLinear
	secDone
)

// BinaryProblemWriter streams one binary problem: construct with
// NewBinaryProblemWriter (which writes the header), feed every section in
// layout order with the typed record methods, then Close. The writer
// enforces the declared counts — short or out-of-order sections are
// errors, so a Close without error guarantees a well-formed stream.
type BinaryProblemWriter struct {
	w       *bufio.Writer
	h       ProblemHeader
	section int
	left    int // records remaining in the current section
	buf     [16]byte
}

// NewBinaryProblemWriter validates the header against the format envelope
// and writes it. The caller owns flushing/closing the underlying writer;
// Close only flushes the internal buffer.
func NewBinaryProblemWriter(w io.Writer, h ProblemHeader) (*BinaryProblemWriter, error) {
	h.Name = sanitizeName(h.Name)
	switch {
	case h.Components < 2 || h.Components > maxBinComponents:
		return nil, fmt.Errorf("%w: components %d outside [2, %d]", ErrHeaderRange, h.Components, maxBinComponents)
	case h.Wires < 0 || h.Wires > maxBinArcs:
		return nil, fmt.Errorf("%w: wires %d outside [0, %d]", ErrHeaderRange, h.Wires, maxBinArcs)
	case h.Timing < 0 || h.Timing > maxBinArcs:
		return nil, fmt.Errorf("%w: timing %d outside [0, %d]", ErrHeaderRange, h.Timing, maxBinArcs)
	case h.Partitions < 1 || h.Partitions > maxBinPartitions:
		return nil, fmt.Errorf("%w: partitions %d outside [1, %d]", ErrHeaderRange, h.Partitions, maxBinPartitions)
	case len(h.Name) > maxBinName:
		return nil, fmt.Errorf("%w: name length %d exceeds %d", ErrHeaderRange, len(h.Name), maxBinName)
	}
	bw := &BinaryProblemWriter{w: bufio.NewWriterSize(w, 1<<16), h: h, section: secSizes, left: h.Components}
	bw.w.WriteString(problemMagic)
	binary.LittleEndian.PutUint16(bw.buf[:2], binVersion)
	binary.LittleEndian.PutUint16(bw.buf[2:4], uint16(len(h.Name)))
	bw.w.Write(bw.buf[:4])
	bw.w.WriteString(h.Name)
	binary.LittleEndian.PutUint64(bw.buf[:8], uint64(h.Alpha))
	binary.LittleEndian.PutUint64(bw.buf[8:16], uint64(h.Beta))
	bw.w.Write(bw.buf[:16])
	binary.LittleEndian.PutUint32(bw.buf[:4], uint32(h.Components))
	binary.LittleEndian.PutUint32(bw.buf[4:8], uint32(h.Wires))
	binary.LittleEndian.PutUint32(bw.buf[8:12], uint32(h.Timing))
	binary.LittleEndian.PutUint32(bw.buf[12:16], uint32(h.Partitions))
	bw.w.Write(bw.buf[:16])
	var flags byte
	if h.HasLinear {
		flags |= 1
	}
	bw.w.WriteByte(flags)
	return bw, nil
}

// advance consumes one record slot of section sec, stepping the state
// machine into the next expected section as quotas fill.
func (bw *BinaryProblemWriter) advance(sec int, what string) error {
	// Zero-length sections are skipped on entry, never waited in.
	for bw.left == 0 && bw.section < secDone {
		bw.section++
		switch bw.section {
		case secWires:
			bw.left = bw.h.Wires
		case secTiming:
			bw.left = bw.h.Timing
		case secCaps:
			bw.left = bw.h.Partitions
		case secCost, secDelay:
			bw.left = bw.h.Partitions // rows
		case secLinear:
			if bw.h.HasLinear {
				bw.left = bw.h.Partitions // rows
			}
		}
	}
	if bw.section != sec {
		return fmt.Errorf("textio: binary writer: %s out of order (section state %d)", what, bw.section)
	}
	bw.left--
	return nil
}

// WriteSize appends one component size (Components records expected).
func (bw *BinaryProblemWriter) WriteSize(size int64) error {
	if err := bw.advance(secSizes, "size"); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(bw.buf[:8], uint64(size))
	_, err := bw.w.Write(bw.buf[:8])
	return err
}

// arc writes one {from, to, value} record after range-checking the
// endpoints against the declared component count.
func (bw *BinaryProblemWriter) arc(from, to int, v int64, sec int, what string) error {
	if err := bw.advance(sec, what); err != nil {
		return err
	}
	if from < 0 || from >= bw.h.Components || to < 0 || to >= bw.h.Components {
		return fmt.Errorf("textio: binary writer: %s endpoints (%d, %d) outside [0, %d)", what, from, to, bw.h.Components)
	}
	binary.LittleEndian.PutUint32(bw.buf[:4], uint32(from))
	binary.LittleEndian.PutUint32(bw.buf[4:8], uint32(to))
	binary.LittleEndian.PutUint64(bw.buf[8:16], uint64(v))
	_, err := bw.w.Write(bw.buf[:16])
	return err
}

// WriteWire appends one wire record (Wires records expected).
func (bw *BinaryProblemWriter) WriteWire(from, to int, weight int64) error {
	return bw.arc(from, to, weight, secWires, "wire")
}

// WriteTiming appends one timing record (Timing records expected).
func (bw *BinaryProblemWriter) WriteTiming(from, to int, maxDelay int64) error {
	return bw.arc(from, to, maxDelay, secTiming, "timing")
}

// WriteCapacity appends one partition capacity (Partitions records
// expected).
func (bw *BinaryProblemWriter) WriteCapacity(c int64) error {
	if err := bw.advance(secCaps, "capacity"); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(bw.buf[:8], uint64(c))
	_, err := bw.w.Write(bw.buf[:8])
	return err
}

// row writes one fixed-width int64 row of the given expected length.
func (bw *BinaryProblemWriter) row(row []int64, want, sec int, what string) error {
	if err := bw.advance(sec, what); err != nil {
		return err
	}
	if len(row) != want {
		return fmt.Errorf("textio: binary writer: %s row has %d entries, want %d", what, len(row), want)
	}
	for _, v := range row {
		binary.LittleEndian.PutUint64(bw.buf[:8], uint64(v))
		if _, err := bw.w.Write(bw.buf[:8]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCostRow appends one M-wide cost-matrix row (Partitions rows).
func (bw *BinaryProblemWriter) WriteCostRow(row []int64) error {
	return bw.row(row, bw.h.Partitions, secCost, "cost")
}

// WriteDelayRow appends one M-wide delay-matrix row (Partitions rows).
func (bw *BinaryProblemWriter) WriteDelayRow(row []int64) error {
	return bw.row(row, bw.h.Partitions, secDelay, "delay")
}

// WriteLinearRow appends one N-wide linear-cost row (Partitions rows,
// only when the header declared HasLinear).
func (bw *BinaryProblemWriter) WriteLinearRow(row []int64) error {
	if !bw.h.HasLinear {
		return errors.New("textio: binary writer: linear row without HasLinear")
	}
	return bw.row(row, bw.h.Components, secLinear, "linear")
}

// Close verifies every declared section was fully written and flushes.
func (bw *BinaryProblemWriter) Close() error {
	// advance drains empty trailing sections; a complete stream lands
	// exactly on the done state, anything else still owes records.
	if err := bw.advance(secDone, "close"); err != nil {
		return fmt.Errorf("textio: binary writer: closed with incomplete sections (section %d, %d records owed)", bw.section, bw.left)
	}
	return bw.w.Flush()
}

// WriteProblemBinary serializes p in the binary format.
func WriteProblemBinary(w io.Writer, p *model.Problem) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw, err := NewBinaryProblemWriter(w, ProblemHeader{
		Name:       p.Circuit.Name,
		Alpha:      p.Alpha,
		Beta:       p.Beta,
		Components: p.N(),
		Wires:      len(p.Circuit.Wires),
		Timing:     len(p.Circuit.Timing),
		Partitions: p.M(),
		HasLinear:  p.Linear != nil,
	})
	if err != nil {
		return err
	}
	for _, s := range p.Circuit.Sizes {
		if err := bw.WriteSize(s); err != nil {
			return err
		}
	}
	for _, wr := range p.Circuit.Wires {
		if err := bw.WriteWire(wr.From, wr.To, wr.Weight); err != nil {
			return err
		}
	}
	for _, t := range p.Circuit.Timing {
		if err := bw.WriteTiming(t.From, t.To, t.MaxDelay); err != nil {
			return err
		}
	}
	for _, c := range p.Topology.Capacities {
		if err := bw.WriteCapacity(c); err != nil {
			return err
		}
	}
	for _, row := range p.Topology.Cost {
		if err := bw.WriteCostRow(row); err != nil {
			return err
		}
	}
	for _, row := range p.Topology.Delay {
		if err := bw.WriteDelayRow(row); err != nil {
			return err
		}
	}
	if p.Linear != nil {
		for _, row := range p.Linear {
			if err := bw.WriteLinearRow(row); err != nil {
				return err
			}
		}
	}
	return bw.Close()
}

// binReader decodes fixed-width sections through one reusable chunk
// buffer, so reading a section of any length costs one output allocation
// (plus growth past the initial cap) instead of per-record ones.
type binReader struct {
	r   io.Reader
	buf []byte
}

func newBinReader(r io.Reader) *binReader {
	return &binReader{r: r, buf: make([]byte, 1<<16)}
}

// initialCap bounds the up-front allocation for a declared count: storage
// beyond it grows only as records are actually read, so a hostile header
// cannot allocate more than the stream backs.
func initialCap(count int) int {
	if count > 1<<20 {
		return 1 << 20
	}
	return count
}

func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}

// full reads exactly b's length from the stream, mapping EOF to
// ErrTruncated.
func (br *binReader) full(b []byte) error {
	_, err := io.ReadFull(br.r, b)
	return truncated(err)
}

// int64s reads count little-endian int64 values.
func (br *binReader) int64s(count int) ([]int64, error) {
	out := make([]int64, 0, initialCap(count))
	for len(out) < count {
		chunk := count - len(out)
		if max := len(br.buf) / 8; chunk > max {
			chunk = max
		}
		b := br.buf[:chunk*8]
		if err := br.full(b); err != nil {
			return nil, err
		}
		for k := 0; k < chunk; k++ {
			out = append(out, int64(binary.LittleEndian.Uint64(b[k*8:])))
		}
	}
	return out, nil
}

// matrix reads rows×cols int64 values into row slices sharing one backing
// array.
func (br *binReader) matrix(rows, cols int) ([][]int64, error) {
	flat, err := br.int64s(rows * cols)
	if err != nil {
		return nil, err
	}
	mat := make([][]int64, rows)
	for i := range mat {
		mat[i] = flat[i*cols : (i+1)*cols]
	}
	return mat, nil
}

// ReadProblemBinary parses a problem written by WriteProblemBinary (or
// streamed through BinaryProblemWriter). The input must start at the
// magic; use ReadProblemAuto to dispatch between text and binary.
func ReadProblemBinary(rd io.Reader) (*model.Problem, error) {
	br := newBinReader(rd)
	if err := br.full(br.buf[:len(problemMagic)]); err != nil {
		return nil, err
	}
	if string(br.buf[:len(problemMagic)]) != problemMagic {
		return nil, fmt.Errorf("%w: got % x, want %q", ErrBadMagic, br.buf[:len(problemMagic)], problemMagic)
	}
	// version(2) + nameLen(2) complete the fixed prelude.
	if err := br.full(br.buf[:4]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint16(br.buf[:2]); v != binVersion {
		return nil, fmt.Errorf("%w: version %d, reader supports %d", ErrUnsupportedVersion, v, binVersion)
	}
	nameLen := int(binary.LittleEndian.Uint16(br.buf[2:4]))
	if nameLen > maxBinName {
		return nil, fmt.Errorf("%w: name length %d exceeds %d", ErrHeaderRange, nameLen, maxBinName)
	}
	// Name bytes, then alpha/beta (16), counts (16) and flags (1).
	rest := make([]byte, nameLen+16+16+1)
	if err := br.full(rest); err != nil {
		return nil, err
	}
	name := string(rest[:nameLen])
	fix := rest[nameLen:]
	alpha := int64(binary.LittleEndian.Uint64(fix[0:8]))
	beta := int64(binary.LittleEndian.Uint64(fix[8:16]))
	n := int64(binary.LittleEndian.Uint32(fix[16:20]))
	nw := int64(binary.LittleEndian.Uint32(fix[20:24]))
	nt := int64(binary.LittleEndian.Uint32(fix[24:28]))
	m := int64(binary.LittleEndian.Uint32(fix[28:32]))
	flags := fix[32]
	switch {
	case n < 2 || n > maxBinComponents:
		return nil, fmt.Errorf("%w: components %d outside [2, %d]", ErrHeaderRange, n, maxBinComponents)
	case nw > maxBinArcs:
		return nil, fmt.Errorf("%w: wires %d exceeds %d", ErrHeaderRange, nw, maxBinArcs)
	case nt > maxBinArcs:
		return nil, fmt.Errorf("%w: timing %d exceeds %d", ErrHeaderRange, nt, maxBinArcs)
	case m < 1 || m > maxBinPartitions:
		return nil, fmt.Errorf("%w: partitions %d outside [1, %d]", ErrHeaderRange, m, maxBinPartitions)
	case flags&^1 != 0:
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrUnsupportedVersion, flags)
	}

	circuit := &model.Circuit{Name: name}
	var err error
	if circuit.Sizes, err = br.int64s(int(n)); err != nil {
		return nil, err
	}
	if circuit.Wires, err = readWires(br, int(nw)); err != nil {
		return nil, err
	}
	timing, err := readArcs(br, int(nt))
	if err != nil {
		return nil, err
	}
	for _, a := range timing {
		circuit.Timing = append(circuit.Timing, model.TimingConstraint{From: a.from, To: a.to, MaxDelay: a.v})
	}
	topo := &model.Topology{}
	if topo.Capacities, err = br.int64s(int(m)); err != nil {
		return nil, err
	}
	if topo.Cost, err = br.matrix(int(m), int(m)); err != nil {
		return nil, err
	}
	if topo.Delay, err = br.matrix(int(m), int(m)); err != nil {
		return nil, err
	}
	var linear [][]int64
	if flags&1 != 0 {
		if linear, err = br.matrix(int(m), int(n)); err != nil {
			return nil, err
		}
	}
	// Reject trailing garbage so accepted inputs round-trip exactly.
	var one [1]byte
	if _, err := io.ReadFull(br.r, one[:]); err != io.EOF {
		return nil, fmt.Errorf("textio: trailing bytes after binary problem")
	}
	return model.NewProblem(circuit, topo, alpha, beta, linear)
}

type arc struct {
	from, to int
	v        int64
}

// readArcs reads count 16-byte {from, to, value} records.
func readArcs(br *binReader, count int) ([]arc, error) {
	out := make([]arc, 0, initialCap(count))
	for len(out) < count {
		chunk := count - len(out)
		if max := len(br.buf) / 16; chunk > max {
			chunk = max
		}
		b := br.buf[:chunk*16]
		if err := br.full(b); err != nil {
			return nil, err
		}
		for k := 0; k < chunk; k++ {
			rec := b[k*16:]
			out = append(out, arc{
				from: int(binary.LittleEndian.Uint32(rec[0:4])),
				to:   int(binary.LittleEndian.Uint32(rec[4:8])),
				v:    int64(binary.LittleEndian.Uint64(rec[8:16])),
			})
		}
	}
	return out, nil
}

// readWires is readArcs materialized as model.Wire records.
func readWires(br *binReader, count int) ([]model.Wire, error) {
	out := make([]model.Wire, 0, initialCap(count))
	for len(out) < count {
		chunk := count - len(out)
		if max := len(br.buf) / 16; chunk > max {
			chunk = max
		}
		b := br.buf[:chunk*16]
		if err := br.full(b); err != nil {
			return nil, err
		}
		for k := 0; k < chunk; k++ {
			rec := b[k*16:]
			out = append(out, model.Wire{
				From:   int(binary.LittleEndian.Uint32(rec[0:4])),
				To:     int(binary.LittleEndian.Uint32(rec[4:8])),
				Weight: int64(binary.LittleEndian.Uint64(rec[8:16])),
			})
		}
	}
	return out, nil
}

// WriteAssignmentBinary serializes a in the binary format.
func WriteAssignmentBinary(w io.Writer, a model.Assignment) error {
	if len(a) > maxBinComponents {
		return fmt.Errorf("%w: assignment length %d exceeds %d", ErrHeaderRange, len(a), maxBinComponents)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(assignmentMagic)
	var buf [8]byte
	binary.LittleEndian.PutUint16(buf[:2], binVersion)
	bw.Write(buf[:2])
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(a)))
	bw.Write(buf[:4])
	for _, i := range a {
		if i < 0 || int64(i) > int64(maxBinPartitions) {
			return fmt.Errorf("textio: assignment entry %d outside [0, %d]", i, maxBinPartitions)
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(i))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAssignmentBinary parses an assignment written by
// WriteAssignmentBinary.
func ReadAssignmentBinary(rd io.Reader) (model.Assignment, error) {
	br := newBinReader(rd)
	if err := br.full(br.buf[:len(assignmentMagic)]); err != nil {
		return nil, err
	}
	if string(br.buf[:len(assignmentMagic)]) != assignmentMagic {
		return nil, fmt.Errorf("%w: got % x, want %q", ErrBadMagic, br.buf[:len(assignmentMagic)], assignmentMagic)
	}
	if err := br.full(br.buf[:6]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint16(br.buf[:2]); v != binVersion {
		return nil, fmt.Errorf("%w: version %d, reader supports %d", ErrUnsupportedVersion, v, binVersion)
	}
	n := int64(binary.LittleEndian.Uint32(br.buf[2:6]))
	if n > maxBinComponents {
		return nil, fmt.Errorf("%w: assignment length %d exceeds %d", ErrHeaderRange, n, maxBinComponents)
	}
	a := make(model.Assignment, 0, initialCap(int(n)))
	for int64(len(a)) < n {
		chunk := int(n) - len(a)
		if max := len(br.buf) / 4; chunk > max {
			chunk = max
		}
		b := br.buf[:chunk*4]
		if err := br.full(b); err != nil {
			return nil, err
		}
		for k := 0; k < chunk; k++ {
			a = append(a, int(binary.LittleEndian.Uint32(b[k*4:])))
		}
	}
	var one [1]byte
	if _, err := io.ReadFull(br.r, one[:]); err != io.EOF {
		return nil, fmt.Errorf("textio: trailing bytes after binary assignment")
	}
	return a, nil
}

// ReadProblemDetect reads a problem in either format, reporting which one
// the stream carried. Detection peeks at the first four bytes: the binary
// magic dispatches to the binary reader, anything else to the text parser.
func ReadProblemDetect(rd io.Reader) (*model.Problem, Format, error) {
	br := bufio.NewReaderSize(rd, 1<<16)
	peek, err := br.Peek(len(problemMagic))
	if err == nil && string(peek) == problemMagic {
		p, rerr := ReadProblemBinary(br)
		return p, FormatBinary, rerr
	}
	p, rerr := ReadProblem(br)
	return p, FormatText, rerr
}

// ReadProblemAuto reads a problem in either format (see ReadProblemDetect).
func ReadProblemAuto(rd io.Reader) (*model.Problem, error) {
	p, _, err := ReadProblemDetect(rd)
	return p, err
}

// ReadAssignmentAuto reads an assignment in either format.
func ReadAssignmentAuto(rd io.Reader) (model.Assignment, error) {
	br := bufio.NewReaderSize(rd, 1<<16)
	peek, err := br.Peek(len(assignmentMagic))
	if err == nil && string(peek) == assignmentMagic {
		return ReadAssignmentBinary(br)
	}
	return ReadAssignment(br)
}
