package textio

import (
	"bytes"
	"testing"

	"repro/internal/paperex"
)

// binarySeeds returns valid and near-valid binary serializations.
func binarySeeds(t interface{ Fatalf(string, ...any) }) [][]byte {
	var p, a bytes.Buffer
	if err := WriteProblemBinary(&p, paperex.MustNew()); err != nil {
		t.Fatalf("seed WriteProblemBinary: %v", err)
	}
	if err := WriteAssignmentBinary(&a, []int{0, 1, 2, 1, 0}); err != nil {
		t.Fatalf("seed WriteAssignmentBinary: %v", err)
	}
	truncated := append([]byte(nil), p.Bytes()[:len(p.Bytes())/2]...)
	badVersion := append([]byte(nil), p.Bytes()...)
	badVersion[4] = 0x7f
	return [][]byte{
		p.Bytes(),
		a.Bytes(),
		truncated,
		badVersion,
		[]byte("QBPB"),
		[]byte("QBPA\x01\x00\xff\xff\xff\xff"),
	}
}

// FuzzBinaryRoundTrip checks that the binary readers never panic on
// arbitrary input and that every accepted value survives a canonical
// write/read/write round-trip byte-for-byte.
func FuzzBinaryRoundTrip(f *testing.F) {
	for _, seed := range binarySeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := ReadProblemBinary(bytes.NewReader(data)); err == nil {
			var first bytes.Buffer
			if err := WriteProblemBinary(&first, p); err != nil {
				t.Fatalf("accepted problem failed to serialize: %v", err)
			}
			p2, err := ReadProblemBinary(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("re-read of own output failed: %v", err)
			}
			var second bytes.Buffer
			if err := WriteProblemBinary(&second, p2); err != nil {
				t.Fatalf("second serialize failed: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatal("binary problem round-trip not canonical")
			}
		}
		if a, err := ReadAssignmentBinary(bytes.NewReader(data)); err == nil {
			var first bytes.Buffer
			if err := WriteAssignmentBinary(&first, a); err != nil {
				return // entries outside the writable range: rejection is fine
			}
			a2, err := ReadAssignmentBinary(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("re-read of own assignment output failed: %v", err)
			}
			var second bytes.Buffer
			if err := WriteAssignmentBinary(&second, a2); err != nil {
				t.Fatalf("second assignment serialize failed: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatal("binary assignment round-trip not canonical")
			}
		}
	})
}

// FuzzTextBinaryParity checks that any problem the text parser accepts is
// representable in the binary format with nothing lost: text → binary →
// read-back must equal the text parse, and re-rendering both to canonical
// text must agree byte-for-byte. Auto-detection must also route the binary
// bytes correctly.
func FuzzTextBinaryParity(f *testing.F) {
	for _, seed := range problemSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProblem(bytes.NewReader(data))
		if err != nil {
			return
		}
		var bin bytes.Buffer
		if err := WriteProblemBinary(&bin, p); err != nil {
			// The binary envelope is wider than the text one everywhere
			// (counts, name length), so a text-accepted problem must encode.
			t.Fatalf("text-accepted problem rejected by binary writer: %v", err)
		}
		q, format, err := ReadProblemDetect(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("binary read-back failed: %v", err)
		}
		if format != FormatBinary {
			t.Fatalf("auto-detect saw %v, want binary", format)
		}
		var fromText, fromBin bytes.Buffer
		if err := WriteProblem(&fromText, p); err != nil {
			t.Fatalf("canonical text of text parse: %v", err)
		}
		if err := WriteProblem(&fromBin, q); err != nil {
			t.Fatalf("canonical text of binary parse: %v", err)
		}
		if !bytes.Equal(fromText.Bytes(), fromBin.Bytes()) {
			t.Fatalf("text and binary disagree:\ntext path:\n%s\nbinary path:\n%s", fromText.Bytes(), fromBin.Bytes())
		}
	})
}
