package textio

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/testgen"
)

func binaryRoundTrip(t *testing.T, p *model.Problem) *model.Problem {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteProblemBinary(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProblemBinary(&buf)
	if err != nil {
		t.Fatalf("binary read back: %v", err)
	}
	return q
}

func TestBinaryProblemRoundTrip(t *testing.T) {
	if !problemsEqual(paperex.MustNew(), binaryRoundTrip(t, paperex.MustNew())) {
		t.Fatal("paper example did not round-trip through binary")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N: 12, TimingProb: 0.4, WithLinear: trial%2 == 0, Alpha: 2, Beta: 5,
		})
		if !problemsEqual(p, binaryRoundTrip(t, p)) {
			t.Fatalf("trial %d did not round-trip through binary", trial)
		}
	}
}

// TestBinaryMatchesText pins the two formats to the same model: a problem
// written both ways reads back identical either way (names go through the
// same sanitizer).
func TestBinaryMatchesText(t *testing.T) {
	p := paperex.MustNew()
	p.Circuit.Name = "name with spaces"
	viaText := roundTrip(t, p)
	viaBin := binaryRoundTrip(t, p)
	if !problemsEqual(viaText, viaBin) {
		t.Fatal("text and binary round-trips disagree")
	}
}

func TestBinaryAssignmentRoundTrip(t *testing.T) {
	a := model.Assignment{3, 1, 4, 1, 5, 9, 2, 6}
	var buf bytes.Buffer
	if err := WriteAssignmentBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadAssignmentBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("length %d != %d", len(b), len(a))
	}
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("entry %d: %d != %d", j, b[j], a[j])
		}
	}
	if err := WriteAssignmentBinary(&buf, model.Assignment{0, -1}); err == nil {
		t.Fatal("negative entry accepted")
	}
}

func TestReadProblemAutoDetects(t *testing.T) {
	p := paperex.MustNew()
	var text, bin bytes.Buffer
	if err := WriteProblem(&text, p); err != nil {
		t.Fatal(err)
	}
	if err := WriteProblemBinary(&bin, p); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		data []byte
		want Format
	}{
		{text.Bytes(), FormatText},
		{bin.Bytes(), FormatBinary},
	} {
		q, f, err := ReadProblemDetect(bytes.NewReader(tc.data))
		if err != nil {
			t.Fatalf("%v input: %v", tc.want, err)
		}
		if f != tc.want {
			t.Fatalf("detected %v, want %v", f, tc.want)
		}
		if !problemsEqual(p, q) {
			t.Fatalf("%v auto-read mismatch", tc.want)
		}
	}
	if _, err := ReadProblemAuto(bytes.NewReader(bin.Bytes())); err != nil {
		t.Fatalf("ReadProblemAuto binary: %v", err)
	}
}

func TestReadAssignmentAutoDetects(t *testing.T) {
	a := model.Assignment{0, 1, 2, 1}
	var text, bin bytes.Buffer
	if err := WriteAssignment(&text, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteAssignmentBinary(&bin, a); err != nil {
		t.Fatal(err)
	}
	for _, data := range [][]byte{text.Bytes(), bin.Bytes()} {
		b, err := ReadAssignmentAuto(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("entry %d: %d != %d", j, b[j], a[j])
			}
		}
	}
}

func TestBinaryTypedErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProblemBinary(&buf, paperex.MustNew()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte("NOPE"), good[4:]...)
		if _, err := ReadProblemBinary(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
		if _, err := ReadAssignmentBinary(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("assignment: got %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4], bad[5] = 0xff, 0xff
		if _, err := ReadProblemBinary(bytes.NewReader(bad)); !errors.Is(err, ErrUnsupportedVersion) {
			t.Fatalf("got %v, want ErrUnsupportedVersion", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		// Every proper prefix must fail with ErrTruncated — never panic,
		// never succeed.
		for _, cut := range []int{1, 3, 4, 6, 9, len(good) / 2, len(good) - 1} {
			if _, err := ReadProblemBinary(bytes.NewReader(good[:cut])); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut %d: got %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("oversized header", func(t *testing.T) {
		// Patch the component count (offset: 8 fixed + nameLen + 16) to an
		// absurd value; the reader must reject it before allocating.
		bad := append([]byte(nil), good...)
		nameLen := int(bad[6]) | int(bad[7])<<8
		off := 8 + nameLen + 16
		bad[off], bad[off+1], bad[off+2], bad[off+3] = 0xff, 0xff, 0xff, 0xff
		if _, err := ReadProblemBinary(bytes.NewReader(bad)); !errors.Is(err, ErrHeaderRange) {
			t.Fatalf("got %v, want ErrHeaderRange", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 0)
		if _, err := ReadProblemBinary(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("got %v, want trailing-bytes error", err)
		}
	})
}

func TestBinaryWriterEnforcesSections(t *testing.T) {
	h := ProblemHeader{Name: "x", Alpha: 1, Beta: 1, Components: 2, Wires: 1, Timing: 0, Partitions: 2}
	var buf bytes.Buffer
	bw, err := NewBinaryProblemWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteWire(0, 1, 1); err == nil {
		t.Fatal("wire before sizes accepted")
	}
	if err := bw.WriteSize(1); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err == nil {
		t.Fatal("Close with incomplete sections accepted")
	}

	// Out-of-range header fields are rejected up front.
	for _, bad := range []ProblemHeader{
		{Components: 1, Partitions: 2},
		{Components: 2, Partitions: 0},
		{Components: 2, Partitions: 2, Wires: -1},
		{Components: maxBinComponents + 1, Partitions: 2},
	} {
		if _, err := NewBinaryProblemWriter(&buf, bad); !errors.Is(err, ErrHeaderRange) {
			t.Fatalf("header %+v: got %v, want ErrHeaderRange", bad, err)
		}
	}

	// A complete stream produced record-by-record equals the one-shot
	// writer's output.
	p := paperex.MustNew()
	var oneShot bytes.Buffer
	if err := WriteProblemBinary(&oneShot, p); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	bw, err = NewBinaryProblemWriter(&streamed, ProblemHeader{
		Name: p.Circuit.Name, Alpha: p.Alpha, Beta: p.Beta,
		Components: p.N(), Wires: len(p.Circuit.Wires), Timing: len(p.Circuit.Timing),
		Partitions: p.M(), HasLinear: p.Linear != nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Circuit.Sizes {
		if err := bw.WriteSize(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range p.Circuit.Wires {
		if err := bw.WriteWire(w.From, w.To, w.Weight); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range p.Circuit.Timing {
		if err := bw.WriteTiming(c.From, c.To, c.MaxDelay); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range p.Topology.Capacities {
		if err := bw.WriteCapacity(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range p.Topology.Cost {
		if err := bw.WriteCostRow(row); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range p.Topology.Delay {
		if err := bw.WriteDelayRow(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oneShot.Bytes(), streamed.Bytes()) {
		t.Fatal("streamed output differs from one-shot WriteProblemBinary")
	}
}
