// Package anneal is a simulated-annealing partitioner — an *additional*
// baseline beyond the paper's GFM/GKL comparison (the dominant alternative
// school of placement/partitioning heuristics in the early 1990s). It
// anneals over the same embedded objective as the QBP solver: capacity
// constraints restrict the move set, timing constraints contribute penalty
// terms, so the temperature schedule can pass through infeasible states and
// the best feasible state seen is tracked separately.
package anneal

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"repro/internal/adjacency"
	"repro/internal/interrupt"
	"repro/internal/model"
	"repro/internal/qbp"
)

// Options tunes Solve. The zero value gives a schedule comparable in CPU
// to the paper's QBP budget on Table I circuits.
type Options struct {
	// MovesPerStage is the number of attempted moves per temperature;
	// ≤ 0 means 40·N.
	MovesPerStage int
	// Stages is the number of temperature steps; ≤ 0 means 60.
	Stages int
	// Cooling is the geometric factor per stage; 0 means 0.90.
	Cooling float64
	// Penalty is the timing-violation charge (as in the QBP embedding);
	// ≤ 0 means qbp.DefaultPenalty.
	Penalty int64
	// RelaxTiming drops the timing constraints.
	RelaxTiming bool
	// Initial seeds the search; it must satisfy C1. Nil draws a random
	// capacity-feasible start.
	Initial model.Assignment
	// Seed drives all randomness.
	Seed int64
}

// Result is the outcome of a solve.
type Result struct {
	Assignment model.Assignment
	Objective  int64
	WireLength int64
	Feasible   bool
	Moves      int64 // accepted moves
	// Stopped reports the schedule was cut short by ctx cancellation;
	// Assignment is then the best state seen before the stop.
	Stopped bool
}

// Solve anneals single-component moves over the penalized objective. A ctx
// already cancelled at entry returns ctx.Err(); cancellation mid-schedule
// stops at the next stage boundary (amortized move-level checks inside a
// stage) and returns the best state seen with Result.Stopped set.
func Solve(ctx context.Context, p *model.Problem, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	norm := p.Normalized()
	adj := adjacency.Build(norm.Circuit)
	n, m := norm.N(), norm.M()
	b, d := norm.Topology.Cost, norm.Topology.Delay
	penalty := opts.Penalty
	if penalty <= 0 {
		penalty = qbp.DefaultPenalty
	}
	movesPerStage := opts.MovesPerStage
	if movesPerStage <= 0 {
		movesPerStage = 40 * n
	}
	stages := opts.Stages
	if stages <= 0 {
		stages = 60
	}
	cooling := opts.Cooling
	if cooling == 0 {
		cooling = 0.90
	}
	if cooling <= 0 || cooling >= 1 {
		return nil, errors.New("anneal: cooling must be in (0,1)")
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Working state.
	var u model.Assignment
	if opts.Initial != nil {
		if len(opts.Initial) != n || !opts.Initial.Valid(m) || !norm.CapacityFeasible(opts.Initial) {
			return nil, errors.New("anneal: initial assignment must be complete and capacity-feasible")
		}
		u = opts.Initial.Clone()
	} else {
		var err error
		u, err = qbp.ConstructiveStart(norm, penalty)
		if err != nil {
			return nil, err
		}
	}
	loads := norm.Loads(u)

	// Penalized delta of moving j to partition `to` (both directions of
	// every arc, penalty *instead of* the coupling on violated slots).
	ord := func(i1, i2 int, arc adjacency.Arc) int64 {
		if !opts.RelaxTiming && arc.MaxDelay != model.Unconstrained && d[i1][i2] > arc.MaxDelay {
			return penalty
		}
		return arc.Weight * b[i1][i2]
	}
	moveDelta := func(j, to int) int64 {
		cur := u[j]
		delta := norm.LinearAt(to, j) - norm.LinearAt(cur, j)
		for _, arc := range adj.Arcs[j] {
			o := u[arc.Other]
			delta += ord(to, o, arc) + ord(o, to, arc) - ord(cur, o, arc) - ord(o, cur, arc)
		}
		return delta
	}
	value := func(a model.Assignment) int64 {
		var v int64
		for j := 0; j < n; j++ {
			v += norm.LinearAt(a[j], j)
		}
		for j := 0; j < n; j++ {
			for _, arc := range adj.Arcs[j] {
				v += ord(a[j], a[arc.Other], arc)
			}
		}
		return v
	}
	feasible := func(a model.Assignment) bool {
		return opts.RelaxTiming || norm.TimingFeasible(a)
	}

	cur := value(u)
	best := u.Clone()
	bestVal := cur
	var bestFeasible model.Assignment
	bestFeasibleObj := int64(math.MaxInt64)
	if feasible(u) {
		bestFeasible = u.Clone()
		bestFeasibleObj = norm.Objective(u)
	}

	// Initial temperature: the mean uphill delta of a move sample, so the
	// early acceptance rate is high without being hand-tuned.
	var sampleSum float64
	samples := 0
	for k := 0; k < 4*n; k++ {
		j := rng.Intn(n)
		to := rng.Intn(m)
		if to == u[j] || loads[to]+norm.Circuit.Sizes[j] > norm.Topology.Capacities[to] {
			continue
		}
		if dl := moveDelta(j, to); dl > 0 {
			sampleSum += float64(dl)
			samples++
		}
	}
	temp := 10.0
	if samples > 0 {
		temp = sampleSum / float64(samples)
	}

	var accepted int64
	ck := interrupt.New(ctx, 0)
	for stage := 0; stage < stages; stage++ {
		if ck.Now() {
			break
		}
		for move := 0; move < movesPerStage; move++ {
			if ck.Stop() {
				break
			}
			j := rng.Intn(n)
			to := rng.Intn(m)
			if to == u[j] || loads[to]+norm.Circuit.Sizes[j] > norm.Topology.Capacities[to] {
				continue
			}
			delta := moveDelta(j, to)
			if delta > 0 && rng.Float64() >= math.Exp(-float64(delta)/temp) {
				continue
			}
			loads[u[j]] -= norm.Circuit.Sizes[j]
			loads[to] += norm.Circuit.Sizes[j]
			u[j] = to
			cur += delta
			accepted++
			if cur < bestVal {
				bestVal = cur
				copy(best, u)
			}
			if cur < bestFeasibleObj && feasible(u) {
				// feasible ⇒ no penalties ⇒ cur is the true objective.
				bestFeasibleObj = cur
				bestFeasible = append(bestFeasible[:0], u...)
			}
		}
		temp *= cooling
	}

	chosen := best
	if bestFeasible != nil {
		chosen = bestFeasible
	}
	res := &Result{
		Assignment: chosen.Clone(),
		Objective:  norm.Objective(chosen),
		WireLength: norm.WireLength(chosen),
		Moves:      accepted,
		Stopped:    ck.Stopped(),
	}
	res.Feasible = norm.CapacityFeasible(chosen) && feasible(chosen)
	return res, nil
}
