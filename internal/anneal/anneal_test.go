package anneal

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/gen"
	"repro/internal/qbp"
	"repro/internal/testgen"
)

func TestValidatesInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, golden := testgen.Random(rng, testgen.Config{N: 8})
	if _, err := Solve(context.Background(), p, Options{Cooling: 2}); err == nil {
		t.Fatal("cooling ≥ 1 accepted")
	}
	if _, err := Solve(context.Background(), p, Options{Initial: golden[:2]}); err == nil {
		t.Fatal("short initial accepted")
	}
	bad := p
	bad.Circuit.Sizes[0] = -1
	if _, err := Solve(context.Background(), bad, Options{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestNearOptimalOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var sum float64
	count := 0
	for trial := 0; trial < 12; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{N: 6, TimingProb: 0.4})
		exact, err := bruteforce.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !exact.Found {
			continue
		}
		res, err := Solve(context.Background(), p, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			continue // SA has no feasibility guarantee; quality measured on feasible runs
		}
		if res.Objective < exact.Value {
			t.Fatalf("trial %d: SA %d beat the exact optimum %d", trial, res.Objective, exact.Value)
		}
		sum += float64(res.Objective) / float64(max64(exact.Value, 1))
		count++
	}
	if count < 6 {
		t.Fatalf("only %d feasible runs", count)
	}
	if mean := sum / float64(count); mean > 1.25 {
		t.Fatalf("mean ratio %.2f; annealer too weak", mean)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestCapacityAlwaysRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{N: 20, CapSlack: 1.15, TimingProb: 0.3})
		res, err := Solve(context.Background(), p, Options{Seed: int64(trial), Stages: 25})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Normalized().CapacityFeasible(res.Assignment) {
			t.Fatalf("trial %d: capacity violated", trial)
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, _ := testgen.Random(rng, testgen.Config{N: 15, TimingProb: 0.3})
	a, err := Solve(context.Background(), p, Options{Seed: 9, Stages: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), p, Options{Seed: 9, Stages: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Moves != b.Moves {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// On a real circuit the annealer must be competitive: it improves on the
// shared start and lands within 2× of QBP's wire length.
func TestCompetitiveOnPaperCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("annealer run takes seconds; skipped with -short")
	}
	in := gen.MustNamed("cktb")
	p := in.Problem
	start, err := qbp.FeasibleStart(context.Background(), p, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), p, Options{Initial: start, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("annealer lost timing feasibility from a feasible start and never recovered")
	}
	if res.WireLength >= p.WireLength(start) {
		t.Fatalf("no improvement: %d vs start %d", res.WireLength, p.WireLength(start))
	}
	q, err := qbp.Solve(context.Background(), p, qbp.Options{Initial: start})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.WireLength) > 2*float64(q.WireLength) {
		t.Fatalf("annealer WL %d more than 2× QBP's %d", res.WireLength, q.WireLength)
	}
	t.Logf("cktb: start %d, SA %d, QBP %d", p.WireLength(start), res.WireLength, q.WireLength)
}
