package anneal

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/testgen"
)

func TestSolveCancelledBeforeEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p, _ := testgen.Random(rng, testgen.Config{N: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, p, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSolveDeadlineReturnsBest: a schedule of 2²⁰ stages cannot complete
// within the deadline, so the anneal must stop mid-schedule and return its
// best state with Stopped set.
func TestSolveDeadlineReturnsBest(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	p, _ := testgen.Random(rng, testgen.Config{N: 40, TimingProb: 0.2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res, err := Solve(ctx, p, Options{Stages: 1 << 20, Cooling: 0.9999, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("deadline expired but Stopped not set")
	}
	norm := p.Normalized()
	if len(res.Assignment) != p.N() || !norm.CapacityFeasible(res.Assignment) {
		t.Fatal("best-so-far assignment is not capacity-feasible")
	}
}
