package cluster

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/qbp"
	"repro/internal/testgen"
)

// twoBlobs builds a circuit with two dense blocks joined by one weak wire.
func twoBlobs(perSide int, weight int64) *model.Circuit {
	n := 2 * perSide
	c := &model.Circuit{Sizes: make([]int64, n)}
	for j := range c.Sizes {
		c.Sizes[j] = 1
	}
	add := func(a, b int, w int64) {
		c.Wires = append(c.Wires, model.Wire{From: a, To: b, Weight: w})
	}
	for j1 := 0; j1 < perSide; j1++ {
		for j2 := j1 + 1; j2 < perSide; j2++ {
			add(j1, j2, weight)
			add(perSide+j1, perSide+j2, weight)
		}
	}
	add(0, perSide, 1) // the weak bridge
	return c
}

func TestSplitFindsTheObviousCut(t *testing.T) {
	c := twoBlobs(6, 5)
	side, err := Split(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All of blob 1 on one side, all of blob 2 on the other.
	for j := 1; j < 6; j++ {
		if side[j] != side[0] {
			t.Fatalf("blob 1 split apart: side[%d]=%d side[0]=%d", j, side[j], side[0])
		}
		if side[6+j] != side[6] {
			t.Fatalf("blob 2 split apart")
		}
	}
	if side[0] == side[6] {
		t.Fatal("the weak bridge was not cut")
	}
}

func TestSplitRespectsMinPart(t *testing.T) {
	c := twoBlobs(4, 3)
	side, err := Split(c, Options{MinPart: 3})
	if err != nil {
		t.Fatal(err)
	}
	count := [2]int{}
	for _, s := range side {
		if s < 0 {
			t.Fatal("component left unassigned")
		}
		count[s]++
	}
	if count[0] < 3 || count[1] < 3 {
		t.Fatalf("min part violated: %v", count)
	}
}

func TestClustersPartitionTheCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, _ := testgen.Random(rng, testgen.Config{N: 40, GridRows: 2, GridCols: 3})
	for _, k := range []int{1, 2, 5, 8} {
		clusters, err := Clusters(p.Circuit, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, p.N())
		for _, cl := range clusters {
			for _, j := range cl {
				if seen[j] {
					t.Fatalf("k=%d: component %d in two clusters", k, j)
				}
				seen[j] = true
			}
		}
		for j, s := range seen {
			if !s {
				t.Fatalf("k=%d: component %d in no cluster", k, j)
			}
		}
		if len(clusters) > k {
			t.Fatalf("k=%d: got %d clusters", k, len(clusters))
		}
	}
	if _, err := Clusters(p.Circuit, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// On generated circuits the recovered clusters must correlate with the
// hidden golden placement that induced the wiring: mean cluster purity
// (fraction of a cluster's weight in its majority golden partition) well
// above the 1/M baseline.
func TestClustersRecoverGoldenStructure(t *testing.T) {
	in := gen.MustNamed("cktb")
	p := in.Problem
	clusters, err := Clusters(p.Circuit, p.M(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var purity float64
	counted := 0
	for _, cl := range clusters {
		if len(cl) < 4 {
			continue
		}
		byPart := map[int]int{}
		for _, j := range cl {
			byPart[in.Golden[j]]++
		}
		best := 0
		for _, c := range byPart {
			if c > best {
				best = c
			}
		}
		purity += float64(best) / float64(len(cl))
		counted++
	}
	purity /= float64(counted)
	if purity < 0.30 { // baseline is 1/16 ≈ 0.06
		t.Fatalf("mean cluster purity %.2f barely above chance", purity)
	}
}

func TestSeedAssignmentFeasibleAndUseful(t *testing.T) {
	in := gen.MustNamed("cktb")
	p := in.Problem
	clusters, err := Clusters(p.Circuit, p.M(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	seed, err := SeedAssignment(p, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CapacityFeasible(seed) {
		t.Fatal("cluster seed violates capacity")
	}
	if !seed.Complete() {
		t.Fatal("cluster seed incomplete")
	}
	// The cluster seed must beat a random capacity-feasible placement on
	// wire length (that is its purpose).
	rng := rand.New(rand.NewSource(1))
	var randomWL int64
	for trial := 0; trial < 5; trial++ {
		r := make(model.Assignment, p.N())
		for j := range r {
			r[j] = rng.Intn(p.M())
		}
		randomWL += p.WireLength(r)
	}
	randomWL /= 5
	if got := p.WireLength(seed); got >= randomWL {
		t.Fatalf("cluster seed WL %d not better than random %d", got, randomWL)
	}
}

// The cluster seed is a working initial solution for the QBP iteration.
func TestSeedFeedsQBP(t *testing.T) {
	in := gen.MustNamed("cktg")
	p := in.Problem
	clusters, err := Clusters(p.Circuit, p.M(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	seed, err := SeedAssignment(p, clusters)
	if err != nil {
		t.Fatal(err)
	}
	res, err := qbp.Solve(context.Background(), p, qbp.Options{Iterations: 40, Initial: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("QBP from cluster seed did not reach feasibility")
	}
}

func TestSplitValidates(t *testing.T) {
	bad := twoBlobs(3, 2)
	bad.Sizes[0] = -1
	if _, err := Split(bad, Options{}); err == nil {
		t.Fatal("invalid circuit accepted")
	}
	if _, err := SeedAssignment(&model.Problem{}, nil); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestSingletonAndTinySubsets(t *testing.T) {
	c := &model.Circuit{Sizes: []int64{1}}
	side, err := Split(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if side[0] != 0 {
		t.Fatalf("singleton side = %d", side[0])
	}
}
