// Package cluster implements ratio-cut clustering — the "first type" of
// partitioning the paper's introduction contrasts with its own
// fixed-topology problem: with no partition structure given, minimize the
// Ratio Cut R(A,B) = cut(A,B) / (|A|·|B|) to discover the circuit's
// "natural clusters" (Wei & Cheng, refs [9,10] of the paper).
//
// Here it serves two roles: a standalone structure-discovery tool, and a
// cluster-aware seed generator for the fixed-topology solvers — natural
// clusters mapped onto partitions make a strong starting point for the QBP
// iteration.
package cluster

import (
	"errors"
	"sort"

	"repro/internal/adjacency"
	"repro/internal/model"
)

// Options tunes Split and Clusters.
type Options struct {
	// MaxPasses bounds the move passes per bipartition; ≤ 0 means 12.
	MaxPasses int
	// MinPart prevents degenerate cuts: each side of a split keeps at
	// least this many components; ≤ 0 means 2.
	MinPart int
}

// Split bipartitions the components {0..N-1} of c by iterative ratio-cut
// improvement: starting from a breadth-first half/half seed, single
// components move across the cut while the ratio R = cut/(|A|·|B|)
// improves. Returns the indicator side[j] ∈ {0, 1}.
func Split(c *model.Circuit, opts Options) ([]int, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	adj := adjacency.Build(c)
	return splitSubset(c, adj, allOf(c.N()), opts), nil
}

func allOf(n int) []int {
	s := make([]int, n)
	for j := range s {
		s[j] = j
	}
	return s
}

// splitSubset bipartitions the given subset, returning side indicators
// aligned with the full component index space (entries outside subset are
// -1).
func splitSubset(c *model.Circuit, adj *adjacency.Lists, subset []int, opts Options) []int {
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 12
	}
	minPart := opts.MinPart
	if minPart <= 0 {
		minPart = 2
	}
	n := c.N()
	side := make([]int, n)
	for j := range side {
		side[j] = -1
	}
	if len(subset) < 2 {
		for _, j := range subset {
			side[j] = 0
		}
		return side
	}
	inSubset := make([]bool, n)
	for _, j := range subset {
		inSubset[j] = true
	}

	// BFS seed from the highest-degree member: the first half explored
	// becomes side 0 — a connectivity-aware start.
	start := subset[0]
	for _, j := range subset {
		if adj.Degree(j) > adj.Degree(start) {
			start = j
		}
	}
	order := make([]int, 0, len(subset))
	seen := make([]bool, n)
	queue := []int{start}
	seen[start] = true
	//lint:ignore cancel-poll BFS visits each component exactly once (seen guard); bounded by the subset size
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		order = append(order, j)
		for _, arc := range adj.Arcs[j] {
			if inSubset[arc.Other] && !seen[arc.Other] && arc.Weight > 0 {
				seen[arc.Other] = true
				queue = append(queue, arc.Other)
			}
		}
	}
	for _, j := range subset { // disconnected leftovers
		if !seen[j] {
			order = append(order, j)
		}
	}
	half := len(subset) / 2
	for k, j := range order {
		if k < half {
			side[j] = 0
		} else {
			side[j] = 1
		}
	}

	// Cut weight and side populations.
	var cut int64
	count := [2]int{}
	for _, j := range subset {
		count[side[j]]++
		for _, arc := range adj.Arcs[j] {
			if j < arc.Other && inSubset[arc.Other] && side[j] != side[arc.Other] {
				cut += arc.Weight
			}
		}
	}
	// ratioBetter reports whether cut c1 with populations (a1,b1) is a
	// strictly better ratio than c2 with (a2,b2): c1/(a1·b1) < c2/(a2·b2),
	// compared in integers.
	ratioBetter := func(c1 int64, a1, b1 int, c2 int64, a2, b2 int) bool {
		return c1*int64(a2)*int64(b2) < c2*int64(a1)*int64(b1)
	}

	//lint:ignore cancel-poll bounded by maxPasses over a fixed subset; a seeding heuristic, not a solve loop
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for _, j := range subset {
			from := side[j]
			to := 1 - from
			if count[from] <= minPart {
				continue
			}
			// Cut delta of moving j: edges to the other side leave the
			// cut, edges to its own side enter it.
			var toOther, toOwn int64
			for _, arc := range adj.Arcs[j] {
				if !inSubset[arc.Other] || arc.Weight == 0 {
					continue
				}
				if side[arc.Other] == from {
					toOwn += arc.Weight
				} else {
					toOther += arc.Weight
				}
			}
			newCut := cut - toOther + toOwn
			if ratioBetter(newCut, count[from]-1, count[to]+1, cut, count[from], count[to]) {
				side[j] = to
				count[from]--
				count[to]++
				cut = newCut
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return side
}

// Clusters recursively ratio-cut-splits the circuit into k clusters,
// always splitting the largest remaining cluster. Each returned slice holds
// component indices; every component appears in exactly one cluster.
func Clusters(c *model.Circuit, k int, opts Options) ([][]int, error) {
	if k < 1 {
		return nil, errors.New("cluster: need at least one cluster")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	adj := adjacency.Build(c)
	clusters := [][]int{allOf(c.N())}
	for len(clusters) < k {
		// Split the largest splittable cluster.
		sort.Slice(clusters, func(a, b int) bool { return len(clusters[a]) > len(clusters[b]) })
		target := clusters[0]
		if len(target) < 2 {
			break // nothing left to split
		}
		side := splitSubset(c, adj, target, opts)
		var s0, s1 []int
		for _, j := range target {
			if side[j] == 0 {
				s0 = append(s0, j)
			} else {
				s1 = append(s1, j)
			}
		}
		if len(s0) == 0 || len(s1) == 0 {
			break // degenerate split; stop rather than loop
		}
		clusters = append(clusters[1:], s0, s1)
	}
	sort.Slice(clusters, func(a, b int) bool { return len(clusters[a]) > len(clusters[b]) })
	return clusters, nil
}

// SeedAssignment maps natural clusters onto the partitions of p: clusters
// in decreasing size are placed whole onto the partition with the most
// remaining capacity; members that no longer fit spill to the roomiest
// partitions individually. The result satisfies C1 whenever a first-fit
// placement exists; timing constraints are not considered (refine with the
// solvers).
func SeedAssignment(p *model.Problem, clusters [][]int) (model.Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := p.M()
	remaining := append([]int64(nil), p.Topology.Capacities...)
	a := model.NewAssignment(p.N())
	roomiest := func() int {
		best := 0
		for i := 1; i < m; i++ {
			if remaining[i] > remaining[best] {
				best = i
			}
		}
		return best
	}
	place := func(j, i int) error {
		if remaining[i] < p.Circuit.Sizes[j] {
			i = roomiest()
		}
		if remaining[i] < p.Circuit.Sizes[j] {
			return errors.New("cluster: component does not fit any partition")
		}
		a[j] = i
		remaining[i] -= p.Circuit.Sizes[j]
		return nil
	}
	for _, cl := range clusters {
		target := roomiest()
		// Largest members first so spills happen on small components.
		members := append([]int(nil), cl...)
		sort.Slice(members, func(x, y int) bool {
			if p.Circuit.Sizes[members[x]] != p.Circuit.Sizes[members[y]] {
				return p.Circuit.Sizes[members[x]] > p.Circuit.Sizes[members[y]]
			}
			return members[x] < members[y]
		})
		for _, j := range members {
			if err := place(j, target); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}
