// Package gen generates the synthetic industrial circuits used to
// reproduce the paper's evaluation. The seven original circuits ckta–cktg
// are proprietary, so this generator rebuilds instances that match every
// statistic the paper publishes about them — component count, wire count,
// timing-constraint count (Table I) — and its qualitative description:
// component sizes spanning about two orders of magnitude within a circuit,
// clustered ("natural cluster") connectivity, 16 partitions, and very tight
// timing and capacity constraints.
//
// Every instance is built around a hidden golden assignment drawn first;
// capacities cover its loads and every timing bound is satisfied by it, so
// the instance is guaranteed feasible — as the real circuits, which shipped
// as working systems, necessarily were. Generation is fully deterministic
// given the seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geometry"
	"repro/internal/model"
)

// Spec pins the published statistics of one circuit (paper Table I).
type Spec struct {
	Name              string
	Components        int
	Wires             int64 // total interconnection count Σ a[j1][j2]
	TimingConstraints int   // number of critical constrained pairs
	Seed              int64
}

// Paper lists the seven circuits of Table I. Seeds are arbitrary but fixed
// so the generated instances are stable across runs.
var Paper = []Spec{
	{Name: "ckta", Components: 339, Wires: 8200, TimingConstraints: 3464, Seed: 0xA},
	{Name: "cktb", Components: 357, Wires: 3017, TimingConstraints: 1325, Seed: 0xB},
	{Name: "cktc", Components: 545, Wires: 12141, TimingConstraints: 11545, Seed: 0xC},
	{Name: "cktd", Components: 521, Wires: 6309, TimingConstraints: 6009, Seed: 0xD},
	{Name: "ckte", Components: 380, Wires: 3831, TimingConstraints: 3760, Seed: 0xE},
	{Name: "cktf", Components: 607, Wires: 4809, TimingConstraints: 4683, Seed: 0xF},
	{Name: "cktg", Components: 472, Wires: 3376, TimingConstraints: 3376, Seed: 0x6},
}

// Params controls generation beyond the published statistics. The zero
// value (plus a Spec) reproduces the evaluation setup: a 4×4 partition
// array with Manhattan cost and delay, sizes 1–100, tight capacities.
type Params struct {
	Spec
	GridRows, GridCols int     // default 4×4 (16 partitions, as in §5)
	SizeMin, SizeMax   int64   // log-uniform component sizes; default 1..100
	CapacitySlack      float64 // capacity = max golden load × slack; default 1.10
	LocalProb          float64 // wire endpoint in the same golden partition; default 0.55
	NeighborProb       float64 // …in an adjacent partition; default 0.30
	// MaxFanout bounds the number of distinct wire partners per component
	// (0 = unbounded, the default — matching the published circuits, whose
	// fan-out is unstated). Endpoint draws that would push either side past
	// the bound are redrawn; when the redraw budget is exhausted the unit of
	// weight thickens an existing wire instead, so the total interconnection
	// count Σ a[j1][j2] still equals the published Wires figure exactly.
	MaxFanout int
	// TimingBudgetWeights weight the four absolute delay-budget tiers
	// (diameter/3, diameter/2, 2·diameter/3, 5·diameter/6 — i.e. 2/3/4/5
	// hops on the 4×4 grid). The default depends on the constraint
	// density 2·T/N: {30,35,20,15} normally, {10,25,35,30} for very dense
	// constraint sets (a design where nearly every pair is "critical"
	// cannot give every pair a one-hop budget and still exist).
	TimingBudgetWeights [4]int
}

func (p *Params) defaults() {
	if p.GridRows == 0 {
		p.GridRows = 4
	}
	if p.GridCols == 0 {
		p.GridCols = 4
	}
	if p.SizeMin == 0 {
		p.SizeMin = 1
	}
	if p.SizeMax == 0 {
		p.SizeMax = 100
	}
	if p.CapacitySlack == 0 {
		p.CapacitySlack = 1.10
	}
	if p.LocalProb == 0 {
		p.LocalProb = 0.55
	}
	if p.NeighborProb == 0 {
		p.NeighborProb = 0.30
	}
	if p.TimingBudgetWeights == [4]int{} {
		density := 0.0
		if p.Components > 0 {
			density = 2 * float64(p.TimingConstraints) / float64(p.Components)
		}
		if density > 22 {
			p.TimingBudgetWeights = [4]int{10, 25, 35, 30}
		} else {
			p.TimingBudgetWeights = [4]int{30, 35, 20, 15}
		}
	}
}

// Instance is a generated circuit together with its problem wrapper and the
// hidden golden assignment that witnesses feasibility.
type Instance struct {
	Problem *model.Problem
	Golden  model.Assignment
	Grid    geometry.Grid
	Spec    Spec
}

// Named generates the paper circuit with the given name on the standard
// 16-partition topology.
func Named(name string) (*Instance, error) {
	for _, s := range Paper {
		if s.Name == name {
			return Generate(Params{Spec: s})
		}
	}
	return nil, fmt.Errorf("gen: unknown circuit %q (have ckta..cktg)", name)
}

// MustNamed is Named for the known-good built-in specs; tests use it to
// avoid error plumbing on circuits whose generation is covered by gen's own
// tests.
func MustNamed(name string) *Instance {
	in, err := Named(name)
	if err != nil {
		//lint:ignore panic-in-library test convenience wrapper; Named covers the error path
		panic(err)
	}
	return in
}

// Generate builds an instance from the parameters.
func Generate(params Params) (*Instance, error) {
	params.defaults()
	s := params.Spec
	if s.Components <= 1 {
		return nil, fmt.Errorf("gen: need at least 2 components, got %d", s.Components)
	}
	grid := geometry.Grid{Rows: params.GridRows, Cols: params.GridCols}
	m := grid.M()
	if m < 2 {
		return nil, fmt.Errorf("gen: need at least 2 partitions, got %d", m)
	}
	maxPairs := int64(s.Components) * int64(s.Components-1) / 2
	if int64(s.TimingConstraints) > maxPairs {
		return nil, fmt.Errorf("gen: %d timing constraints exceed the %d distinct pairs", s.TimingConstraints, maxPairs)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	dist, err := grid.DistanceMatrix(geometry.Manhattan)
	if err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}

	// Component sizes: log-uniform over [SizeMin, SizeMax] — "different
	// sizes ranging about 2 orders of magnitude in the same circuit".
	sizes := make([]int64, s.Components)
	lnLo, lnHi := math.Log(float64(params.SizeMin)), math.Log(float64(params.SizeMax))
	for j := range sizes {
		sizes[j] = int64(math.Round(math.Exp(lnLo + rng.Float64()*(lnHi-lnLo))))
		if sizes[j] < params.SizeMin {
			sizes[j] = params.SizeMin
		}
	}

	// Golden assignment: random placement rebalanced by size so a tight
	// uniform capacity can cover it.
	golden := make(model.Assignment, s.Components)
	loads := make([]int64, m)
	for j := range golden {
		golden[j] = rng.Intn(m)
		loads[golden[j]] += sizes[j]
	}
	rebalance(rng, golden, sizes, loads)
	var maxLoad, total int64
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	capEach := int64(math.Ceil(float64(total) / float64(m) * params.CapacitySlack))
	if capEach < maxLoad {
		capEach = maxLoad
	}

	// Wires: locality-biased endpoints over the golden placement create the
	// "natural clusters"; duplicate pairs merge, so the total weight equals
	// the published wire count exactly.
	members := make([][]int, m)
	for j, i := range golden {
		members[i] = append(members[i], j)
	}
	neighbors := make([][]int, m) // partitions at Manhattan distance 1
	for i1 := 0; i1 < m; i1++ {
		for i2 := 0; i2 < m; i2++ {
			if dist[i1][i2] == 1 {
				neighbors[i1] = append(neighbors[i1], i2)
			}
		}
	}
	type pairKey struct{ a, b int }
	weights := make(map[pairKey]int64, int(s.Wires))
	var keys []pairKey // pairs in creation order, for the fan-out fallback
	deg := make([]int, s.Components)
	draw := func() pairKey {
		j1 := rng.Intn(s.Components)
		var j2 int
		switch r := rng.Float64(); {
		case r < params.LocalProb:
			j2 = pickOther(rng, members[golden[j1]], j1)
		case r < params.LocalProb+params.NeighborProb:
			nb := neighbors[golden[j1]]
			j2 = pickOther(rng, members[nb[rng.Intn(len(nb))]], j1)
		default:
			j2 = rng.Intn(s.Components)
		}
		if j2 < 0 || j2 == j1 {
			// Degenerate bucket; fall back to a uniform partner.
			for j2 = rng.Intn(s.Components); j2 == j1; j2 = rng.Intn(s.Components) {
			}
		}
		if j1 > j2 {
			j1, j2 = j2, j1
		}
		return pairKey{j1, j2}
	}
	overFanout := func(k pairKey) bool {
		return params.MaxFanout > 0 && weights[k] == 0 &&
			(deg[k.a] >= params.MaxFanout || deg[k.b] >= params.MaxFanout)
	}
	for placed := int64(0); placed < s.Wires; placed++ {
		k := draw()
		for attempt := 0; attempt < 32 && overFanout(k); attempt++ {
			k = draw()
		}
		if overFanout(k) {
			// Saturated endpoints everywhere we looked: thicken an existing
			// wire (chosen from the creation-ordered pair list, never by map
			// iteration) so Σ a[j1][j2] still lands on the published count.
			k = keys[rng.Intn(len(keys))]
		}
		if weights[k] == 0 {
			keys = append(keys, k)
			deg[k.a]++
			deg[k.b]++
		}
		weights[k]++
	}
	wires := make([]model.Wire, 0, len(weights))
	for k, w := range weights {
		wires = append(wires, model.Wire{From: k.a, To: k.b, Weight: w})
	}
	sort.Slice(wires, func(x, y int) bool {
		if wires[x].From != wires[y].From {
			return wires[x].From < wires[y].From
		}
		return wires[x].To < wires[y].To
	})

	// Timing constraints: wire pairs first (electrically connected pairs
	// carry cycle-time budgets), topped up with unconnected critical pairs
	// if the published count exceeds the distinct wire pairs. Bounds are
	// the golden distance plus a small slack, so the golden assignment is
	// feasible and the constraints are "very tight".
	timing := make([]model.TimingConstraint, 0, s.TimingConstraints)
	constrained := make(map[pairKey]bool, s.TimingConstraints)
	order := rng.Perm(len(wires))
	// Delay budgets are absolute (cycle-time driven), drawn from four
	// diameter-relative tiers, and floored at the pair's golden distance so
	// the golden assignment stays feasible. Budgets tied to the *golden*
	// distance itself (e.g. "golden + small slack") would couple every
	// constraint to the hidden layout and turn feasibility search into
	// hidden-geometry recovery — the paper's instances clearly were not
	// like that (QBP reached feasible starts in a few iterations).
	diameter, err := grid.Diameter(geometry.Manhattan)
	if err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	tier := func(num, den int64) int64 {
		b := (diameter*num + den - 1) / den
		if b < 1 {
			b = 1
		}
		return b
	}
	budgets := [4]int64{tier(1, 3), tier(1, 2), tier(2, 3), tier(5, 6)}
	weightTotal := 0
	for _, w := range params.TimingBudgetWeights {
		weightTotal += w
	}
	bound := func(j1, j2 int) int64 {
		r := rng.Intn(weightTotal)
		b := budgets[3]
		for t, w := range params.TimingBudgetWeights {
			if r < w {
				b = budgets[t]
				break
			}
			r -= w
		}
		if d := dist[golden[j1]][golden[j2]]; b < d {
			b = d
		}
		return b
	}
	for _, idx := range order {
		if len(timing) >= s.TimingConstraints {
			break
		}
		w := wires[idx]
		k := pairKey{w.From, w.To}
		constrained[k] = true
		timing = append(timing, model.TimingConstraint{
			From: w.From, To: w.To, MaxDelay: bound(w.From, w.To),
		})
	}
	for len(timing) < s.TimingConstraints {
		j1, j2 := rng.Intn(s.Components), rng.Intn(s.Components)
		if j1 == j2 {
			continue
		}
		if j1 > j2 {
			j1, j2 = j2, j1
		}
		k := pairKey{j1, j2}
		if constrained[k] {
			continue
		}
		constrained[k] = true
		timing = append(timing, model.TimingConstraint{
			From: j1, To: j2, MaxDelay: bound(j1, j2),
		})
	}

	circuit := &model.Circuit{Name: s.Name, Sizes: sizes, Wires: wires, Timing: timing}
	topo := &model.Topology{
		Capacities: make([]int64, m),
		Cost:       dist,
		Delay:      dist,
	}
	for i := range topo.Capacities {
		topo.Capacities[i] = capEach
	}
	p, err := model.NewProblem(circuit, topo, 0, 1, nil)
	if err != nil {
		return nil, fmt.Errorf("gen: generated invalid problem: %w", err)
	}
	if err := p.CheckFeasible(golden); err != nil {
		return nil, fmt.Errorf("gen: golden assignment infeasible: %w", err)
	}
	return &Instance{Problem: p, Golden: golden, Grid: grid, Spec: s}, nil
}

// pickOther draws a member of bucket different from j (-1 if impossible).
func pickOther(rng *rand.Rand, bucket []int, j int) int {
	if len(bucket) == 0 || (len(bucket) == 1 && bucket[0] == j) {
		return -1
	}
	for {
		if o := bucket[rng.Intn(len(bucket))]; o != j {
			return o
		}
	}
}

// rebalance moves components from overloaded to underloaded partitions
// until the spread is small, keeping the golden placement plausible.
func rebalance(rng *rand.Rand, golden model.Assignment, sizes []int64, loads []int64) {
	m := len(loads)
	var total int64
	for _, l := range loads {
		total += l
	}
	target := total / int64(m)
	for iter := 0; iter < 20*len(golden); iter++ {
		hi, lo := 0, 0
		for i := 1; i < m; i++ {
			if loads[i] > loads[hi] {
				hi = i
			}
			if loads[i] < loads[lo] {
				lo = i
			}
		}
		if loads[hi] <= target+target/20 {
			return
		}
		// Move a random component from the heaviest to the lightest
		// partition (size-permitting).
		var cands []int
		for j, i := range golden {
			if i == hi && loads[lo]+sizes[j] <= loads[hi]-sizes[j]+2*target/20+1 {
				cands = append(cands, j)
			}
		}
		if len(cands) == 0 {
			return
		}
		j := cands[rng.Intn(len(cands))]
		golden[j] = lo
		loads[hi] -= sizes[j]
		loads[lo] += sizes[j]
	}
}
