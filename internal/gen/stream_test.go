package gen

import (
	"bytes"
	"testing"

	"repro/internal/textio"
)

func TestStreamRoundTrip(t *testing.T) {
	params := Params{Spec: Spec{
		Name: "streamed", Components: 400, Wires: 3200, TimingConstraints: 900, Seed: 42,
	}}
	var buf bytes.Buffer
	stats, err := Stream(params, &buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := textio.ReadProblemBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if p.N() != 400 || p.M() != 16 {
		t.Fatalf("got N=%d M=%d, want 400/16", p.N(), p.M())
	}
	// Unit-weight records still sum to the published interconnection count.
	if got := p.Circuit.TotalWireWeight(); got != 3200 {
		t.Fatalf("total wire weight %d, want 3200", got)
	}
	if got := len(p.Circuit.Timing); got != 900 {
		t.Fatalf("timing count %d, want 900", got)
	}
	if err := p.CheckFeasible(stats.Golden); err != nil {
		t.Fatalf("golden assignment infeasible: %v", err)
	}

	// Fixed seed ⇒ byte-identical stream.
	var again bytes.Buffer
	if _, err := Stream(params, &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("stream output not deterministic")
	}
}

func TestStreamRejectsMaxFanout(t *testing.T) {
	_, err := Stream(Params{
		Spec:      Spec{Name: "x", Components: 10, Wires: 20, TimingConstraints: 5, Seed: 1},
		MaxFanout: 4,
	}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("MaxFanout accepted in stream mode")
	}
}

// TestStreamLarge exercises the streaming path at a size where the
// materializing generator's dedup map would start to hurt; it stays a
// smoke test (feasibility witness + header counts), not a benchmark.
func TestStreamLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large stream in -short mode")
	}
	var buf bytes.Buffer
	stats, err := Stream(Params{Spec: Spec{
		Name: "large", Components: 50_000, Wires: 200_000, TimingConstraints: 40_000, Seed: 7,
	}}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := textio.ReadProblemBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 50_000 || p.Circuit.TotalWireWeight() != 200_000 {
		t.Fatalf("unexpected shape: N=%d wires=%d", p.N(), p.Circuit.TotalWireWeight())
	}
	if err := p.CheckFeasible(stats.Golden); err != nil {
		t.Fatalf("golden assignment infeasible: %v", err)
	}
}
