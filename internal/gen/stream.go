package gen

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/model"
	"repro/internal/textio"
)

// StreamStats summarizes a streamed instance: the section counts that went
// into the header plus the golden assignment witnessing feasibility.
type StreamStats struct {
	Components int
	Wires      int64
	Timing     int
	Partitions int
	Golden     model.Assignment
}

// streamWireSalt decorrelates the wire-draw stream from the main rng so the
// timing phase can replay it from the seed alone.
const streamWireSalt = 0x77697265 // "wire"

// Stream generates an instance with the same statistical profile as
// Generate and writes it directly to w in the binary problem format,
// holding only O(N + M²) state — never the wire list. That is what makes
// N=10⁶, deg≈8 instances (≈4·10⁶ wire records) generable on a laptop:
// Generate's dedup map alone would be hundreds of MB.
//
// Two deliberate differences from Generate follow from the streaming
// constraint, both absorbed by the readers:
//
//   - Wires are emitted as unit-weight records, one per drawn connection,
//     so duplicate pairs appear as repeated records. Every consumer merges
//     them (adjacency.Build accumulates weights; the objective sums over
//     records), and Σ a[j1][j2] still equals Params.Wires exactly.
//   - Timing pairs replay the wire-draw rng from its seed instead of
//     permuting a materialized wire list, so constrained pairs are a prefix
//     sample of the connection stream (i.i.d. draws — a prefix is an
//     unbiased sample). Duplicate constraints are legal; the tightest
//     bound governs.
//
// MaxFanout requires global degree state and is not supported here; use
// Generate for bounded-fan-out instances. Stream and Generate produce
// different (but same-distribution) instances for the same seed.
func Stream(params Params, w io.Writer) (*StreamStats, error) {
	params.defaults()
	s := params.Spec
	if s.Components <= 1 {
		return nil, fmt.Errorf("gen: need at least 2 components, got %d", s.Components)
	}
	if params.MaxFanout > 0 {
		return nil, fmt.Errorf("gen: MaxFanout is not supported in stream mode (needs global degree state)")
	}
	grid := geometry.Grid{Rows: params.GridRows, Cols: params.GridCols}
	m := grid.M()
	if m < 2 {
		return nil, fmt.Errorf("gen: need at least 2 partitions, got %d", m)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	dist, err := grid.DistanceMatrix(geometry.Manhattan)
	if err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}

	// Sizes, golden assignment, capacities: identical construction to
	// Generate (log-uniform sizes, rebalanced random placement).
	sizes := make([]int64, s.Components)
	lnLo, lnHi := math.Log(float64(params.SizeMin)), math.Log(float64(params.SizeMax))
	for j := range sizes {
		sizes[j] = int64(math.Round(math.Exp(lnLo + rng.Float64()*(lnHi-lnLo))))
		if sizes[j] < params.SizeMin {
			sizes[j] = params.SizeMin
		}
	}
	golden := make(model.Assignment, s.Components)
	loads := make([]int64, m)
	for j := range golden {
		golden[j] = rng.Intn(m)
		loads[golden[j]] += sizes[j]
	}
	rebalance(rng, golden, sizes, loads)
	var maxLoad, total int64
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	capEach := int64(math.Ceil(float64(total) / float64(m) * params.CapacitySlack))
	if capEach < maxLoad {
		capEach = maxLoad
	}

	members := make([][]int, m)
	for j, i := range golden {
		members[i] = append(members[i], j)
	}
	neighbors := make([][]int, m)
	for i1 := 0; i1 < m; i1++ {
		for i2 := 0; i2 < m; i2++ {
			if dist[i1][i2] == 1 {
				neighbors[i1] = append(neighbors[i1], i2)
			}
		}
	}
	// draw replays deterministically given the rng: the wire section and
	// the timing section each walk the same pair stream from a fresh
	// identically-seeded rng.
	draw := func(rng *rand.Rand) (int, int) {
		j1 := rng.Intn(s.Components)
		var j2 int
		switch r := rng.Float64(); {
		case r < params.LocalProb:
			j2 = pickOther(rng, members[golden[j1]], j1)
		case r < params.LocalProb+params.NeighborProb:
			nb := neighbors[golden[j1]]
			j2 = pickOther(rng, members[nb[rng.Intn(len(nb))]], j1)
		default:
			j2 = rng.Intn(s.Components)
		}
		if j2 < 0 || j2 == j1 {
			for j2 = rng.Intn(s.Components); j2 == j1; j2 = rng.Intn(s.Components) {
			}
		}
		if j1 > j2 {
			j1, j2 = j2, j1
		}
		return j1, j2
	}

	bw, err := textio.NewBinaryProblemWriter(w, textio.ProblemHeader{
		Name:       s.Name,
		Alpha:      0,
		Beta:       1,
		Components: s.Components,
		Wires:      int(s.Wires),
		Timing:     s.TimingConstraints,
		Partitions: m,
	})
	if err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	for _, sz := range sizes {
		if err := bw.WriteSize(sz); err != nil {
			return nil, err
		}
	}
	wireRng := rand.New(rand.NewSource(s.Seed ^ streamWireSalt))
	for placed := int64(0); placed < s.Wires; placed++ {
		j1, j2 := draw(wireRng)
		if err := bw.WriteWire(j1, j2, 1); err != nil {
			return nil, err
		}
	}

	// Timing: same tiered absolute budgets as Generate, floored at the
	// golden distance so the golden assignment stays feasible.
	diameter, err := grid.Diameter(geometry.Manhattan)
	if err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	tier := func(num, den int64) int64 {
		b := (diameter*num + den - 1) / den
		if b < 1 {
			b = 1
		}
		return b
	}
	budgets := [4]int64{tier(1, 3), tier(1, 2), tier(2, 3), tier(5, 6)}
	weightTotal := 0
	for _, w := range params.TimingBudgetWeights {
		weightTotal += w
	}
	bound := func(j1, j2 int) int64 {
		r := rng.Intn(weightTotal)
		b := budgets[3]
		for t, w := range params.TimingBudgetWeights {
			if r < w {
				b = budgets[t]
				break
			}
			r -= w
		}
		if d := dist[golden[j1]][golden[j2]]; b < d {
			b = d
		}
		return b
	}
	replay := rand.New(rand.NewSource(s.Seed ^ streamWireSalt))
	emitted := 0
	for replayed := int64(0); emitted < s.TimingConstraints && replayed < s.Wires; replayed++ {
		j1, j2 := draw(replay)
		if err := bw.WriteTiming(j1, j2, bound(j1, j2)); err != nil {
			return nil, err
		}
		emitted++
	}
	for ; emitted < s.TimingConstraints; emitted++ {
		j1, j2 := rng.Intn(s.Components), rng.Intn(s.Components)
		for j2 == j1 {
			j2 = rng.Intn(s.Components)
		}
		if j1 > j2 {
			j1, j2 = j2, j1
		}
		if err := bw.WriteTiming(j1, j2, bound(j1, j2)); err != nil {
			return nil, err
		}
	}

	for i := 0; i < m; i++ {
		if err := bw.WriteCapacity(capEach); err != nil {
			return nil, err
		}
	}
	for i := 0; i < m; i++ {
		if err := bw.WriteCostRow(dist[i]); err != nil {
			return nil, err
		}
	}
	for i := 0; i < m; i++ {
		if err := bw.WriteDelayRow(dist[i]); err != nil {
			return nil, err
		}
	}
	if err := bw.Close(); err != nil {
		return nil, err
	}
	return &StreamStats{
		Components: s.Components,
		Wires:      s.Wires,
		Timing:     s.TimingConstraints,
		Partitions: m,
		Golden:     golden,
	}, nil
}
