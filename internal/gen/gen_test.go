package gen

import "testing"

// TestTableIStatistics: every generated paper circuit must match Table I
// exactly — this is the reproduction of Table I.
func TestTableIStatistics(t *testing.T) {
	for _, spec := range Paper {
		in, err := Named(spec.Name)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		c := in.Problem.Circuit
		if got := c.N(); got != spec.Components {
			t.Errorf("%s: %d components, want %d", spec.Name, got, spec.Components)
		}
		if got := c.TotalWireWeight(); got != spec.Wires {
			t.Errorf("%s: %d wires, want %d", spec.Name, got, spec.Wires)
		}
		if got := len(c.Timing); got != spec.TimingConstraints {
			t.Errorf("%s: %d timing constraints, want %d", spec.Name, got, spec.TimingConstraints)
		}
		if got := in.Problem.M(); got != 16 {
			t.Errorf("%s: %d partitions, want 16", spec.Name, got)
		}
	}
}

func TestGoldenIsFeasible(t *testing.T) {
	for _, spec := range Paper {
		in := MustNamed(spec.Name)
		if err := in.Problem.CheckFeasible(in.Golden); err != nil {
			t.Errorf("%s: golden infeasible: %v", spec.Name, err)
		}
	}
}

func TestSizesSpanTwoOrdersOfMagnitude(t *testing.T) {
	in := MustNamed("ckta")
	var lo, hi int64 = 1 << 62, 0
	for _, s := range in.Problem.Circuit.Sizes {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if lo < 1 || hi < 50*lo {
		t.Fatalf("size range [%d,%d] does not span ~2 orders of magnitude", lo, hi)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := MustNamed("cktb")
	b := MustNamed("cktb")
	if len(a.Problem.Circuit.Wires) != len(b.Problem.Circuit.Wires) {
		t.Fatal("wire lists differ across runs")
	}
	for k := range a.Problem.Circuit.Wires {
		if a.Problem.Circuit.Wires[k] != b.Problem.Circuit.Wires[k] {
			t.Fatalf("wire %d differs across runs", k)
		}
	}
	for j := range a.Golden {
		if a.Golden[j] != b.Golden[j] {
			t.Fatalf("golden assignment differs at %d", j)
		}
	}
}

func TestClusteredConnectivity(t *testing.T) {
	// The locality bias must show: a clear majority of wire weight connects
	// components in the same or adjacent golden partitions.
	in := MustNamed("ckta")
	dist := in.Problem.Topology.Delay
	var local, far, total int64
	for _, w := range in.Problem.Circuit.Wires {
		d := dist[in.Golden[w.From]][in.Golden[w.To]]
		total += w.Weight
		if d <= 1 {
			local += w.Weight
		} else {
			far += w.Weight
		}
	}
	if local*100 < total*70 {
		t.Fatalf("only %d/%d wire weight is local — clustering too weak", local, total)
	}
	if far == 0 {
		t.Fatal("no long wires at all — clustering unrealistically strong")
	}
}

func TestTightCapacities(t *testing.T) {
	in := MustNamed("cktc")
	total := in.Problem.Circuit.TotalSize()
	capTotal := in.Problem.Topology.TotalCapacity()
	// "Very tight": at most ~20% slack overall.
	if float64(capTotal) > 1.20*float64(total) {
		t.Fatalf("capacity %d too loose for total size %d", capTotal, total)
	}
	if capTotal < total {
		t.Fatalf("capacity %d cannot hold total size %d", capTotal, total)
	}
}

func TestTightTimingBounds(t *testing.T) {
	// Budgets are absolute tiers (2,3,4,5 hops on the 4x4 grid, diameter 6)
	// floored at the golden distance, so every bound lies in [2,6], every
	// bound admits the golden layout, and a clear majority are binding
	// (at most half the diameter).
	in := MustNamed("cktg")
	dist := in.Problem.Topology.Delay
	tight := 0
	for _, tc := range in.Problem.Circuit.Timing {
		d := dist[in.Golden[tc.From]][in.Golden[tc.To]]
		if tc.MaxDelay < d {
			t.Fatalf("constraint (%d,%d) bound %d below golden distance %d", tc.From, tc.To, tc.MaxDelay, d)
		}
		if tc.MaxDelay < 2 || tc.MaxDelay > 6 {
			t.Fatalf("constraint (%d,%d) bound %d outside [2,6]", tc.From, tc.To, tc.MaxDelay)
		}
		if tc.MaxDelay <= 3 {
			tight++
		}
	}
	if tight*2 < len(in.Problem.Circuit.Timing) {
		t.Fatalf("only %d/%d constraints are binding (bound <= 3)", tight, len(in.Problem.Circuit.Timing))
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Params{Spec: Spec{Name: "tiny", Components: 1}}); err == nil {
		t.Fatal("1-component instance accepted")
	}
	if _, err := Generate(Params{Spec: Spec{Name: "over", Components: 4, Wires: 3, TimingConstraints: 100}}); err == nil {
		t.Fatal("impossible timing-constraint count accepted")
	}
	if _, err := Named("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestCustomTopology(t *testing.T) {
	in, err := Generate(Params{
		Spec:     Spec{Name: "small", Components: 40, Wires: 120, TimingConstraints: 60, Seed: 9},
		GridRows: 2, GridCols: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Problem.M() != 4 {
		t.Fatalf("M = %d, want 4", in.Problem.M())
	}
	if err := in.Problem.CheckFeasible(in.Golden); err != nil {
		t.Fatal(err)
	}
}

func TestTimingConstraintsAreDistinctPairs(t *testing.T) {
	in := MustNamed("cktc") // more constraints than distinct wire pairs?
	seen := make(map[[2]int]bool)
	for _, tc := range in.Problem.Circuit.Timing {
		a, b := tc.From, tc.To
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if seen[k] {
			t.Fatalf("duplicate constrained pair (%d,%d)", a, b)
		}
		seen[k] = true
	}
}

func TestGoldenUsesAllPartitions(t *testing.T) {
	in := MustNamed("cktf")
	used := make([]bool, in.Problem.M())
	for _, i := range in.Golden {
		used[i] = true
	}
	for i, u := range used {
		if !u {
			t.Fatalf("partition %d unused by golden placement", i)
		}
	}
}

var sink *Instance

func BenchmarkGenerateCkta(b *testing.B) {
	for k := 0; k < b.N; k++ {
		sink = MustNamed("ckta")
	}
}

func BenchmarkGenerateCktc(b *testing.B) {
	for k := 0; k < b.N; k++ {
		sink = MustNamed("cktc")
	}
}
