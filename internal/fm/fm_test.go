package fm

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/paperex"
	"repro/internal/testgen"
)

func TestRejectsInfeasibleInitial(t *testing.T) {
	p := paperex.MustNew()
	if _, err := Solve(context.Background(), p, model.Assignment{0, 0, 1}, Options{}); err == nil {
		t.Fatal("capacity-violating initial accepted")
	}
	// a at slot 1, b at slot 4: distance 2 violates the a–b bound.
	if _, err := Solve(context.Background(), p, model.Assignment{0, 3, 1}, Options{}); err == nil {
		t.Fatal("timing-violating initial accepted")
	}
	// With timing relaxed the same start is fine.
	if _, err := Solve(context.Background(), p, model.Assignment{0, 3, 1}, Options{RelaxTiming: true}); err != nil {
		t.Fatalf("relaxed solve rejected feasible-capacity start: %v", err)
	}
	if _, err := Solve(context.Background(), p, model.Assignment{0, 1}, Options{}); err == nil {
		t.Fatal("short initial accepted")
	}
}

func TestImprovesPaperExample(t *testing.T) {
	p := paperex.MustNew()
	// Feasible but suboptimal start: a=slot1, b=slot2, c=slot4 → WL 5+2=7?
	// d(0,1)=1 (5 wires), d(1,3)=1 (2 wires) → WL 7 — already optimal.
	// Use a=slot1, b=slot3, c=slot4: d(0,2)=1 → 5, d(2,3)=1 → 2: also 7.
	// Every feasible layout of this tiny instance costs 7; check FM keeps it.
	initial := model.Assignment{0, 2, 3}
	res, err := Solve(context.Background(), p, initial, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WireLength != 7 {
		t.Fatalf("wire length = %d, want 7", res.WireLength)
	}
	if !p.Feasible(res.Assignment) {
		t.Fatal("result infeasible")
	}
}

func TestNeverWorsensAndStaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		p, golden := testgen.Random(rng, testgen.Config{
			N: 20, GridRows: 2, GridCols: 3, TimingProb: 0.3, WithLinear: trial%2 == 0,
		})
		norm := p.Normalized()
		res, err := Solve(context.Background(), p, golden, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Objective > norm.Objective(golden) {
			t.Fatalf("trial %d: objective worsened %d → %d", trial, norm.Objective(golden), res.Objective)
		}
		if err := norm.CheckFeasible(res.Assignment); err != nil {
			t.Fatalf("trial %d: result infeasible: %v", trial, err)
		}
		if got := norm.Objective(res.Assignment); got != res.Objective {
			t.Fatalf("trial %d: reported objective %d != recomputed %d", trial, res.Objective, got)
		}
	}
}

func TestRelaxedSearchReachesLowerCost(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	better, worse := 0, 0
	for trial := 0; trial < 15; trial++ {
		p, golden := testgen.Random(rng, testgen.Config{
			N: 18, TimingProb: 0.5, TimingSlack: 0,
		})
		strict, err := Solve(context.Background(), p, golden, Options{})
		if err != nil {
			t.Fatal(err)
		}
		relaxed, err := Solve(context.Background(), p, golden, Options{RelaxTiming: true})
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case relaxed.Objective < strict.Objective:
			better++
		case relaxed.Objective > strict.Objective:
			worse++
		}
	}
	// Greedy passes give no strict dominance guarantee, but removing
	// constraints must not systematically hurt.
	if worse > better {
		t.Fatalf("relaxed FM worse than constrained in %d/%d decisive trials", worse, better+worse)
	}
}

func TestMaxPassesBoundsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p, golden := testgen.Random(rng, testgen.Config{N: 25, TimingProb: 0.2})
	var passes []int64
	res, err := Solve(context.Background(), p, golden, Options{MaxPasses: 2, OnPass: func(pass int, obj int64) {
		passes = append(passes, obj)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes > 2 || len(passes) != res.Passes {
		t.Fatalf("passes = %d (callbacks %d), want ≤ 2", res.Passes, len(passes))
	}
}

func TestConvergenceTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p, golden := testgen.Random(rng, testgen.Config{N: 30, GridRows: 2, GridCols: 3})
	res, err := Solve(context.Background(), p, golden, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Convergence: re-running from the result must change nothing.
	again, err := Solve(context.Background(), p, res.Assignment, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Objective != res.Objective {
		t.Fatalf("second run improved %d → %d; first run did not converge", res.Objective, again.Objective)
	}
}
