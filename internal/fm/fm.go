// Package fm implements GFM, the first comparison baseline of the paper's
// §5: a generalization of the Fiduccia–Mattheyses interchange heuristic to
// M-way partitioning with arbitrary interconnection costs, variable
// component sizes and timing constraints. Each component carries M−1 gain
// entries (one per alternative partition); passes move one component at a
// time, locking it, allowing downhill moves, and roll back to the best
// prefix. A move is admissible only when it introduces no capacity or
// timing violation, so a feasible start stays feasible throughout — exactly
// the paper's protocol. Passes repeat until no pass improves ("runs till no
// more improvement is possible").
package fm

import (
	"context"
	"errors"
	"math"
	"math/bits"

	"repro/internal/adjacency"
	"repro/internal/bitset"
	"repro/internal/gains"
	"repro/internal/interrupt"
	"repro/internal/model"
)

// Options tunes Solve.
type Options struct {
	// MaxPasses bounds the number of passes; ≤ 0 means run to
	// convergence (the paper's GFM configuration).
	MaxPasses int
	// RelaxTiming ignores the timing constraints (Table II mode).
	RelaxTiming bool
	// MaxMovesPerPass bounds the moves attempted in one pass;
	// ≤ 0 means up to N (every component once).
	MaxMovesPerPass int
	// BoundaryOnly restricts move selection to boundary components —
	// those with a wire crossing partitions — refreshed at every pass
	// start and grown with the wire neighborhood of each applied move.
	// A search-space heuristic for the multi-level uncoarsening pass,
	// where improvements concentrate on the projection seams; interior
	// components with purely linear gains are only reached once a
	// neighbor's move exposes them. Off by default (the paper's GFM scans
	// every component).
	BoundaryOnly bool
	// OnPass, when set, observes the objective after every pass.
	OnPass func(pass int, objective int64)
}

// Result is the outcome of a solve.
type Result struct {
	Assignment model.Assignment
	Objective  int64 // α·linear + β·quadratic
	WireLength int64
	Passes     int
	Moves      int // accepted (kept) moves across all passes
	// Stopped reports the passes were cut short by ctx cancellation; the
	// interrupted pass was first rolled back to its best prefix, so the
	// returned assignment stays feasible and no worse than the pass start.
	Stopped bool
}

type move struct {
	j        int
	from, to int
}

// Solve improves a feasible initial assignment by FM-style passes. The
// initial assignment must satisfy C1 and (unless relaxed) C2; the result is
// guaranteed to satisfy them too. A ctx already cancelled at entry returns
// ctx.Err(); cancellation mid-pass stops the move selection, rolls the pass
// back to its best prefix, and returns with Result.Stopped set.
func Solve(ctx context.Context, p *model.Problem, initial model.Assignment, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	norm := p.Normalized()
	if !norm.CapacityFeasible(initial) || len(initial) != norm.N() || !initial.Valid(norm.M()) {
		return nil, errors.New("fm: initial assignment must be complete and capacity-feasible")
	}
	if !opts.RelaxTiming && !norm.TimingFeasible(initial) {
		return nil, errors.New("fm: initial assignment must be timing-feasible")
	}
	adj := adjacency.Build(norm.Circuit)
	t, err := gains.New(norm, adj, initial)
	if err != nil {
		return nil, err
	}
	n := norm.N()
	maxMoves := opts.MaxMovesPerPass
	if maxMoves <= 0 {
		maxMoves = n
	}

	admissible := func(j, to int) bool {
		if !t.CapacityOK(j, to) {
			return false
		}
		return opts.RelaxTiming || t.TimingOK(j, to)
	}

	ck := interrupt.New(ctx, 0)
	locked := bitset.New(n)
	lw := locked.Words()
	var cand *bitset.Set
	var cw []uint64
	if opts.BoundaryOnly {
		cand = bitset.New(n)
		cw = cand.Words()
	}
	trail := make([]move, 0, n)
	passes, kept := 0, 0
	for {
		passes++
		locked.Reset()
		if cand != nil {
			t.Boundary(cand)
		}
		trail = trail[:0]
		startObj := t.Objective()
		bestObj := startObj
		bestPrefix := 0

		for len(trail) < maxMoves {
			// One poll per selection (each costs O(N·M) gain scans); on
			// cancellation the roll-back below still runs, so the pass
			// never leaves a worse-than-prefix state behind.
			if ck.Now() {
				break
			}
			// Select the best admissible move over all unlocked
			// components and their M−1 alternative partitions. The scan
			// walks the complement of the lock set one word at a time
			// (ascending, like the plain loop it replaced), so
			// already-locked stretches cost one word test, not one branch
			// per component.
			bestDelta := int64(math.MaxInt64)
			bestJ, bestTo := -1, -1
			for wi, lwv := range lw {
				rem := ^lwv
				if cw != nil {
					rem &= cw[wi]
				}
				for ; rem != 0; rem &= rem - 1 {
					j := wi<<6 + bits.TrailingZeros64(rem)
					if j >= n {
						break
					}
					cur := t.Partition(j)
					row := t.DeltaRow(j)
					for to, d := range row {
						if to == cur || d >= bestDelta {
							continue
						}
						if admissible(j, to) {
							bestDelta, bestJ, bestTo = d, j, to
						}
					}
				}
			}
			if bestJ < 0 {
				break // no admissible move left
			}
			from := t.Partition(bestJ)
			t.Apply(bestJ, bestTo)
			locked.Set(bestJ)
			if cand != nil {
				// The move can turn interior wire neighbors into boundary
				// components; grow the candidate set so they stay visible
				// for the rest of the pass.
				for _, arc := range adj.Arcs[bestJ] {
					if arc.Weight != 0 {
						cand.Set(arc.Other)
					}
				}
			}
			trail = append(trail, move{j: bestJ, from: from, to: bestTo})
			if obj := t.Objective(); obj < bestObj {
				bestObj = obj
				bestPrefix = len(trail)
			}
		}

		// Roll back to the best prefix.
		for k := len(trail) - 1; k >= bestPrefix; k-- {
			t.Apply(trail[k].j, trail[k].from)
		}
		kept += bestPrefix
		if opts.OnPass != nil {
			opts.OnPass(passes, t.Objective())
		}
		improved := bestObj < startObj
		if !improved || ck.Stopped() || (opts.MaxPasses > 0 && passes >= opts.MaxPasses) {
			break
		}
	}

	a := t.Assignment()
	return &Result{
		Assignment: a,
		Objective:  norm.Objective(a),
		WireLength: norm.WireLength(a),
		Passes:     passes,
		Moves:      kept,
		Stopped:    ck.Stopped(),
	}, nil
}
