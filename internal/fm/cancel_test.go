package fm

import (
	"context"
	"errors"
	"testing"

	"repro/internal/model"
)

// improvableProblem returns a 2-partition instance whose given start is
// deliberately suboptimal (components 0 and 1 share a heavy wire but sit
// apart), so pass 1 is guaranteed to improve and a pass 2 is guaranteed to
// begin.
func improvableProblem(t *testing.T) (*model.Problem, model.Assignment) {
	t.Helper()
	c := &model.Circuit{
		Sizes: []int64{1, 1, 1, 1},
		Wires: []model.Wire{{From: 0, To: 1, Weight: 10}},
	}
	top := &model.Topology{
		Capacities: []int64{3, 3},
		Cost:       [][]int64{{0, 1}, {1, 0}},
		Delay:      [][]int64{{0, 1}, {1, 0}},
	}
	p, err := model.NewProblem(c, top, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p, model.Assignment{0, 1, 0, 1}
}

func TestSolveCancelledBeforeEntry(t *testing.T) {
	p, start := improvableProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, p, start, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSolveCancelBetweenPasses cancels from the pass-1 callback: pass 2
// then stops at its first move selection, rolls back to the best prefix,
// and returns a feasible result with Stopped set.
func TestSolveCancelBetweenPasses(t *testing.T) {
	p, start := improvableProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Solve(ctx, p, start, Options{
		OnPass: func(pass int, objective int64) { cancel() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("cancelled mid-solve but Stopped not set")
	}
	norm := p.Normalized()
	if !norm.CapacityFeasible(res.Assignment) {
		t.Fatal("result is not capacity-feasible")
	}
	// Pass 1 completed before the cancellation, so its improvement (the
	// heavy wire pulled into one partition) must be kept.
	if res.WireLength >= p.WireLength(start) {
		t.Fatalf("pass-1 improvement lost: wire length %d, start %d", res.WireLength, p.WireLength(start))
	}
}
