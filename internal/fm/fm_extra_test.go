package fm

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/testgen"
)

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p, golden := testgen.Random(rng, testgen.Config{N: 22, TimingProb: 0.3})
	a, err := Solve(context.Background(), p, golden, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), p, golden, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Passes != b.Passes || a.Moves != b.Moves {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for j := range a.Assignment {
		if a.Assignment[j] != b.Assignment[j] {
			t.Fatalf("assignments differ at %d", j)
		}
	}
}

// Pass objective trace must be non-increasing: each pass keeps its best
// prefix, so the post-pass objective never exceeds the pre-pass one.
func TestPassObjectiveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	p, golden := testgen.Random(rng, testgen.Config{N: 30, GridRows: 2, GridCols: 3, WireProb: 0.4})
	var trace []int64
	_, err := Solve(context.Background(), p, golden, Options{OnPass: func(pass int, obj int64) {
		trace = append(trace, obj)
	}})
	if err != nil {
		t.Fatal(err)
	}
	start := p.Normalized().Objective(golden)
	prev := start
	for k, obj := range trace {
		if obj > prev {
			t.Fatalf("pass %d worsened the objective: %d → %d", k+1, prev, obj)
		}
		prev = obj
	}
}

// MaxMovesPerPass caps the tentative sequence length.
func TestMaxMovesPerPass(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p, golden := testgen.Random(rng, testgen.Config{N: 30})
	res, err := Solve(context.Background(), p, golden, Options{MaxMovesPerPass: 2, MaxPasses: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves > 6 {
		t.Fatalf("kept %d moves with a 2-move × 3-pass cap", res.Moves)
	}
}

// With M = 1 there is nowhere to move: FM must terminate immediately with
// the initial assignment.
func TestSinglePartitionNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	p, golden := testgen.Random(rng, testgen.Config{N: 8, GridRows: 1, GridCols: 1, TimingProb: 0.0001})
	p.Circuit.Timing = nil
	res, err := Solve(context.Background(), p, golden, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Fatalf("moved %d components with one partition", res.Moves)
	}
}
