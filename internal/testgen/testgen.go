// Package testgen builds small random problem instances for tests: 2×2
// grids, a handful of components, random wires, timing bounds derived from
// a hidden feasible assignment so instances are guaranteed solvable.
package testgen

import (
	"math"
	"math/rand"

	"repro/internal/geometry"
	"repro/internal/model"
)

// Config controls Random.
type Config struct {
	N        int     // components (required)
	GridRows int     // default 2
	GridCols int     // default 2
	MaxSize  int64   // component sizes in [1, MaxSize]; default 4
	WireProb float64 // per-pair wire probability; default 0.5
	// AvgDegree > 0 switches wire generation from the per-pair Bernoulli
	// draw (WireProb, dense in N²) to sparse sampling: about N·AvgDegree/2
	// random pairs get a wire, so large instances come out with bounded
	// average fan-out (realistic netlist sparsity) at O(N·AvgDegree)
	// generation cost. Timing constraints then attach to the sampled
	// pairs with probability TimingProb. Zero keeps the dense default.
	AvgDegree   float64
	MaxWeight   int64   // wire weights in [1, MaxWeight]; default 3
	TimingProb  float64 // per-pair timing-constraint probability; default 0.3
	TimingSlack int64   // D_C = golden distance + [0, TimingSlack]; default 1
	CapSlack    float64 // capacity = avg load × CapSlack; default 1.4
	WithLinear  bool    // attach a random linear matrix P
	Alpha, Beta int64   // objective scaling; default 1,1
}

// Random draws an instance that is guaranteed feasible: a hidden golden
// assignment is drawn first, capacities cover its loads and every timing
// bound is satisfied by it.
func Random(rng *rand.Rand, cfg Config) (*model.Problem, model.Assignment) {
	if cfg.GridRows == 0 {
		cfg.GridRows = 2
	}
	if cfg.GridCols == 0 {
		cfg.GridCols = 2
	}
	if cfg.MaxSize == 0 {
		cfg.MaxSize = 4
	}
	if cfg.WireProb == 0 {
		cfg.WireProb = 0.5
	}
	if cfg.MaxWeight == 0 {
		cfg.MaxWeight = 3
	}
	if cfg.TimingProb == 0 {
		cfg.TimingProb = 0.3
	}
	if cfg.TimingSlack == 0 {
		cfg.TimingSlack = 1
	}
	if cfg.CapSlack == 0 {
		cfg.CapSlack = 1.4
	}
	if cfg.Alpha == 0 && cfg.Beta == 0 {
		cfg.Alpha, cfg.Beta = 1, 1
	}
	grid := geometry.Grid{Rows: cfg.GridRows, Cols: cfg.GridCols}
	m := grid.M()
	dist, err := grid.DistanceMatrix(geometry.Manhattan)
	if err != nil {
		//lint:ignore panic-in-library test-support generator with a hardwired valid metric
		panic("testgen: " + err.Error())
	}

	c := &model.Circuit{Name: "testgen", Sizes: make([]int64, cfg.N)}
	golden := make(model.Assignment, cfg.N)
	loads := make([]int64, m)
	for j := 0; j < cfg.N; j++ {
		c.Sizes[j] = 1 + rng.Int63n(cfg.MaxSize)
		golden[j] = rng.Intn(m)
		loads[golden[j]] += c.Sizes[j]
	}
	if cfg.AvgDegree > 0 {
		pairs := int(float64(cfg.N) * cfg.AvgDegree / 2)
		for t := 0; t < pairs; t++ {
			j1, j2 := rng.Intn(cfg.N), rng.Intn(cfg.N)
			if j1 == j2 {
				continue
			}
			c.Wires = append(c.Wires, model.Wire{
				From: j1, To: j2, Weight: 1 + rng.Int63n(cfg.MaxWeight),
			})
			if rng.Float64() < cfg.TimingProb {
				bound := dist[golden[j1]][golden[j2]] + rng.Int63n(cfg.TimingSlack+1)
				c.Timing = append(c.Timing, model.TimingConstraint{
					From: j1, To: j2, MaxDelay: bound,
				})
			}
		}
	} else {
		for j1 := 0; j1 < cfg.N; j1++ {
			for j2 := j1 + 1; j2 < cfg.N; j2++ {
				if rng.Float64() < cfg.WireProb {
					c.Wires = append(c.Wires, model.Wire{
						From: j1, To: j2, Weight: 1 + rng.Int63n(cfg.MaxWeight),
					})
				}
				if rng.Float64() < cfg.TimingProb {
					bound := dist[golden[j1]][golden[j2]] + rng.Int63n(cfg.TimingSlack+1)
					c.Timing = append(c.Timing, model.TimingConstraint{
						From: j1, To: j2, MaxDelay: bound,
					})
				}
			}
		}
	}
	var maxLoad int64
	var total int64
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	capEach := int64(math.Ceil(float64(total) / float64(m) * cfg.CapSlack))
	if capEach < maxLoad {
		capEach = maxLoad // golden must stay feasible
	}
	topo := &model.Topology{
		Capacities: make([]int64, m),
		Cost:       dist,
		Delay:      dist,
	}
	for i := range topo.Capacities {
		topo.Capacities[i] = capEach
	}
	var lin [][]int64
	if cfg.WithLinear {
		lin = make([][]int64, m)
		for i := range lin {
			lin[i] = make([]int64, cfg.N)
			for j := range lin[i] {
				lin[i][j] = rng.Int63n(8)
			}
		}
	}
	p, err := model.NewProblem(c, topo, cfg.Alpha, cfg.Beta, lin)
	if err != nil {
		// The generator guarantees a valid instance by construction; a
		// failure here is a testgen bug and every caller is a test, so
		// crashing with the cause beats threading an impossible error.
		//lint:ignore panic-in-library test-support generator; validity is guaranteed by construction
		panic("testgen: generated invalid problem: " + err.Error())
	}
	return p, golden
}
