// Package bb is an exact branch-and-bound solver for the timing- and
// capacity-constrained partitioning problem. It searches assignments
// depth-first in decreasing component-size order, pruning on capacity,
// timing feasibility against already-placed partners, and a
// Gilmore–Lawler-style lower bound (for every unplaced component, the
// cheapest placement against the placed prefix plus an optimistic bound on
// unplaced-pair couplings).
//
// It exists as a reference: exhaustive enumeration (internal/bruteforce)
// dies beyond N ≈ 10, while this reaches N ≈ 25–30 on sparse instances —
// enough to certify heuristic quality on mid-size circuits in tests and in
// EXPERIMENTS.md. It is not part of the paper (which is heuristic-only).
package bb

import (
	"context"
	"errors"
	"sort"

	"repro/internal/adjacency"
	"repro/internal/interrupt"
	"repro/internal/model"
)

// Result is the outcome of an exact search.
type Result struct {
	Assignment model.Assignment
	Value      int64
	Found      bool  // false when no feasible assignment exists
	Nodes      int64 // search-tree nodes expanded
	// Stopped reports the search was cut short by ctx cancellation; the
	// result is then the best incumbent found (a feasible upper bound),
	// not a proven optimum.
	Stopped bool
}

// Options tunes Solve.
type Options struct {
	// MaxNodes aborts the search after this many expanded nodes
	// (≤ 0 means 50 million). An aborted search returns an error.
	MaxNodes int64
	// Incumbent, when non-nil, seeds the upper bound with a known
	// feasible solution (dramatically improves pruning).
	Incumbent model.Assignment
}

type solver struct {
	p        *model.Problem
	adj      *adjacency.Lists
	m, n     int
	b, d     [][]int64
	order    []int // component visit order (decreasing size)
	rank     []int // rank[j] = position of j in order
	u        []int
	loads    []int64
	bestVal  int64
	bestU    []int
	found    bool
	nodes    int64
	maxNodes int64
	ck       interrupt.Checker
	// minTail[k] = optimistic bound on couplings strictly among order[k:]
	// (pairs with both endpoints unplaced), valued at the global minimum
	// B entry. linTail[k] = suffix sum of per-component linear minima.
	// The three bound pieces partition the remaining cost exactly:
	// acc (placed–placed), unplacedBound (placed–unplaced + linear),
	// minTail (unplaced–unplaced).
	minTail []int64
	linTail []int64
}

// Solve finds the exact optimum of PP(α,β) under C1, C2, C3. A ctx already
// cancelled at entry returns ctx.Err(); a ctx cancelled mid-search aborts
// the remaining tree at the next amortized check and returns the incumbent
// found so far with Result.Stopped set (Found stays false when no feasible
// assignment had been reached yet). Exhausting MaxNodes remains an error —
// a budget overrun is a sizing mistake, not a requested stop.
func Solve(ctx context.Context, p *model.Problem, opts Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	norm := p.Normalized()
	s := &solver{
		p:        norm,
		adj:      adjacency.Build(norm.Circuit),
		m:        norm.M(),
		n:        norm.N(),
		b:        norm.Topology.Cost,
		d:        norm.Topology.Delay,
		maxNodes: opts.MaxNodes,
	}
	if s.maxNodes <= 0 {
		s.maxNodes = 50_000_000
	}
	// Heavy-tailed search trees are exactly what cancellation exists for;
	// one poll per 4096 expanded nodes keeps detection latency far below
	// any realistic deadline at negligible per-node cost.
	s.ck = interrupt.New(ctx, 4096)

	// Visit order: decreasing size (capacity pruning bites early), ties by
	// decreasing coupling degree (cost pruning bites early).
	s.order = make([]int, s.n)
	for j := range s.order {
		s.order[j] = j
	}
	sort.Slice(s.order, func(x, y int) bool {
		a, b := s.order[x], s.order[y]
		if norm.Circuit.Sizes[a] != norm.Circuit.Sizes[b] {
			return norm.Circuit.Sizes[a] > norm.Circuit.Sizes[b]
		}
		if s.adj.Degree(a) != s.adj.Degree(b) {
			return s.adj.Degree(a) > s.adj.Degree(b)
		}
		return a < b
	})
	s.rank = make([]int, s.n)
	for k, j := range s.order {
		s.rank[j] = k
	}
	s.precomputeTail()

	s.u = make([]int, s.n)
	for j := range s.u {
		s.u[j] = model.Unassigned
	}
	s.loads = make([]int64, s.m)
	if opts.Incumbent != nil && norm.Feasible(opts.Incumbent) {
		s.found = true
		s.bestVal = norm.Objective(opts.Incumbent)
		s.bestU = append([]int(nil), opts.Incumbent...)
	}

	if aborted := s.dfs(0, 0); aborted && !s.ck.Stopped() {
		return Result{}, errors.New("bb: node budget exhausted before proving optimality")
	}
	res := Result{Found: s.found, Nodes: s.nodes, Stopped: s.ck.Stopped()}
	if s.found {
		res.Assignment = append(model.Assignment(nil), s.bestU...)
		res.Value = s.bestVal
	}
	return res, nil
}

// precomputeTail builds the suffix lower bound: for components at rank ≥ k,
// the sum of (a) each component's minimum linear cost and (b) for every
// coupled pair fully inside the suffix, weight × the smallest nonzero-able
// B entry (0 if any off-diagonal B entry is 0 or the pair can share a
// partition — we use the global minimum of B including the diagonal, which
// is almost always 0 and keeps the bound valid).
func (s *solver) precomputeTail() {
	minB := s.b[0][0]
	for _, row := range s.b {
		for _, v := range row {
			if v < minB {
				minB = v
			}
		}
	}
	linMin := make([]int64, s.n)
	if s.p.Linear != nil {
		for j := 0; j < s.n; j++ {
			best := s.p.LinearAt(0, j)
			for i := 1; i < s.m; i++ {
				if v := s.p.LinearAt(i, j); v < best {
					best = v
				}
			}
			linMin[j] = best
		}
	}
	s.minTail = make([]int64, s.n+1)
	s.linTail = make([]int64, s.n+1)
	for k := s.n - 1; k >= 0; k-- {
		j := s.order[k]
		s.linTail[k] = s.linTail[k+1] + linMin[j]
		t := s.minTail[k+1]
		// Couplings from j to later-ranked partners (counted once here,
		// doubled because the objective counts both directions).
		for _, arc := range s.adj.Arcs[j] {
			if s.rank[arc.Other] > k && arc.Weight > 0 {
				t += 2 * arc.Weight * minB
			}
		}
		s.minTail[k] = t
	}
}

// placedCost is the exact objective contribution of placing j on i against
// the already-placed components: linear term plus both-direction couplings.
func (s *solver) placedCost(j, i int) int64 {
	c := s.p.LinearAt(i, j)
	for _, arc := range s.adj.Arcs[j] {
		o := s.u[arc.Other]
		if o == model.Unassigned || arc.Weight == 0 {
			continue
		}
		c += arc.Weight * (s.b[i][o] + s.b[o][i])
	}
	return c
}

// timingOK checks j-on-i against placed partners only.
func (s *solver) timingOK(j, i int) bool {
	for _, arc := range s.adj.Arcs[j] {
		if arc.MaxDelay == model.Unconstrained {
			continue
		}
		o := s.u[arc.Other]
		if o == model.Unassigned {
			continue
		}
		if s.d[i][o] > arc.MaxDelay || s.d[o][i] > arc.MaxDelay {
			return false
		}
	}
	return true
}

// unplacedBound sums, over every unplaced component, its cheapest feasible
// single placement against the current prefix — linear term plus
// placed-to-unplaced couplings (a valid relaxation: couplings among the
// unplaced are excluded here and bounded separately by minTail).
func (s *solver) unplacedBound(fromRank int) (int64, bool) {
	var total int64
	for k := fromRank; k < s.n; k++ {
		j := s.order[k]
		best := int64(-1)
		for i := 0; i < s.m; i++ {
			if s.loads[i]+s.p.Circuit.Sizes[j] > s.p.Topology.Capacities[i] {
				continue
			}
			if !s.timingOK(j, i) {
				continue
			}
			if c := s.placedCost(j, i); best < 0 || c < best {
				best = c
			}
		}
		if best < 0 {
			return 0, false // some component has no feasible slot at all
		}
		total += best
	}
	return total, true
}

// dfs returns true when the search was aborted (node budget exhausted or
// ctx cancelled — the caller distinguishes the two via s.ck.Stopped()).
func (s *solver) dfs(rank int, acc int64) bool {
	s.nodes++
	if s.nodes > s.maxNodes {
		return true
	}
	if s.ck.Stop() {
		return true
	}
	if rank == s.n {
		if !s.found || acc < s.bestVal {
			s.found = true
			s.bestVal = acc
			s.bestU = append(s.bestU[:0], s.u...)
		}
		return false
	}
	// Prune with the relaxed completion bound every other level (it costs
	// O(remaining·M·deg)); the cheap suffix bound applies always. The
	// pieces are disjoint by construction, so their sum is a lower bound.
	if s.found {
		if acc+s.minTail[rank]+s.linTail[rank] >= s.bestVal {
			return false
		}
		if rank%2 == 0 {
			lb, feasible := s.unplacedBound(rank)
			if !feasible {
				return false
			}
			if acc+lb+s.minTail[rank] >= s.bestVal {
				return false
			}
		}
	}
	j := s.order[rank]
	sz := s.p.Circuit.Sizes[j]
	// Try partitions in increasing immediate-cost order.
	type cand struct {
		i int
		c int64
	}
	cands := make([]cand, 0, s.m)
	for i := 0; i < s.m; i++ {
		if s.loads[i]+sz > s.p.Topology.Capacities[i] {
			continue
		}
		if !s.timingOK(j, i) {
			continue
		}
		cands = append(cands, cand{i, s.placedCost(j, i)})
	}
	sort.Slice(cands, func(x, y int) bool {
		if cands[x].c != cands[y].c {
			return cands[x].c < cands[y].c
		}
		return cands[x].i < cands[y].i
	})
	for _, c := range cands {
		s.u[j] = c.i
		s.loads[c.i] += sz
		if s.dfs(rank+1, acc+c.c) {
			return true
		}
		s.loads[c.i] -= sz
		s.u[j] = model.Unassigned
	}
	return false
}
