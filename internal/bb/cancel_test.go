package bb

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/testgen"
)

func TestSolveCancelledBeforeEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, _ := testgen.Random(rng, testgen.Config{N: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, p, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSolveDeadlineStopsSearch: a search tree with 4⁶⁴ leaves cannot be
// exhausted within the deadline, so the solve must come back promptly with
// Stopped set instead of running to the node budget.
func TestSolveDeadlineStopsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p, _ := testgen.Random(rng, testgen.Config{N: 64, TimingProb: 0.1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	res, err := Solve(ctx, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("deadline expired but Stopped not set")
	}
	if res.Found {
		// Any incumbent reached before the stop must be a genuine
		// feasible upper bound.
		norm := p.Normalized()
		if !norm.CapacityFeasible(res.Assignment) || norm.CountTimingViolations(res.Assignment) != 0 {
			t.Fatal("stopped incumbent is not feasible")
		}
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}
