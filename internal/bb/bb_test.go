package bb

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/qbp"
	"repro/internal/testgen"
)

// TestMatchesBruteForce: the branch and bound must agree exactly with
// exhaustive enumeration on every small instance, feasible or not.
func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		p, _ := testgen.Random(rng, testgen.Config{
			N:          4 + rng.Intn(4),
			TimingProb: 0.4,
			WithLinear: trial%2 == 0,
			CapSlack:   1.1 + rng.Float64(),
		})
		exact, err := bruteforce.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(context.Background(), p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Found != exact.Found {
			t.Fatalf("trial %d: found=%v, brute force %v", trial, res.Found, exact.Found)
		}
		if !res.Found {
			continue
		}
		checked++
		if res.Value != exact.Value {
			t.Fatalf("trial %d: value %d, brute force %d", trial, res.Value, exact.Value)
		}
		if got := p.Normalized().Objective(res.Assignment); got != res.Value {
			t.Fatalf("trial %d: reported %d != recomputed %d", trial, res.Value, got)
		}
		if err := p.Normalized().CheckFeasible(res.Assignment); err != nil {
			t.Fatalf("trial %d: returned infeasible assignment: %v", trial, err)
		}
	}
	if checked < 30 {
		t.Fatalf("only %d feasible trials", checked)
	}
}

// TestMidSizeCertifiesHeuristic: on instances beyond brute-force reach, the
// exact optimum certifies QBP's quality.
func TestMidSizeCertifiesHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		p, golden := testgen.Random(rng, testgen.Config{
			N: 18, TimingProb: 0.3, WireProb: 0.25, CapSlack: 1.4,
		})
		// Small sparse instances have tiny objectives where a single basin
		// miss doubles the ratio; use a short multi-start as a user would.
		var heur *qbp.Result
		for seed := int64(0); seed < 3; seed++ {
			r, err := qbp.Solve(context.Background(), p, qbp.Options{Iterations: 80, Seed: 100*int64(trial) + seed})
			if err != nil {
				t.Fatal(err)
			}
			if heur == nil || (r.Feasible && (!heur.Feasible || r.Objective < heur.Objective)) {
				heur = r
			}
		}
		incumbent := heur.Assignment
		if !heur.Feasible {
			incumbent = golden
		}
		res, err := Solve(context.Background(), p, Options{Incumbent: incumbent, MaxNodes: 20_000_000})
		if err != nil {
			t.Skipf("trial %d: %v", trial, err) // bound too weak for this instance
		}
		if !res.Found {
			t.Fatalf("trial %d: instance with golden witness reported infeasible", trial)
		}
		if heur.Feasible && heur.Objective < res.Value {
			t.Fatalf("trial %d: heuristic %d beat the certified optimum %d", trial, heur.Objective, res.Value)
		}
		if heur.Feasible && float64(heur.Objective) > 1.35*float64(res.Value)+8 {
			t.Fatalf("trial %d: heuristic %d too far from optimum %d", trial, heur.Objective, res.Value)
		}
	}
}

func TestIncumbentSpeedsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, golden := testgen.Random(rng, testgen.Config{N: 12, TimingProb: 0.3})
	cold, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(context.Background(), p, Options{Incumbent: golden})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Value != cold.Value {
		t.Fatalf("incumbent changed the optimum: %d vs %d", warm.Value, cold.Value)
	}
	if warm.Nodes > cold.Nodes {
		t.Fatalf("incumbent did not help pruning: %d vs %d nodes", warm.Nodes, cold.Nodes)
	}
}

func TestNodeBudgetAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, _ := testgen.Random(rng, testgen.Config{N: 14, WireProb: 0.6})
	if _, err := Solve(context.Background(), p, Options{MaxNodes: 10}); err == nil {
		t.Fatal("tiny node budget did not abort")
	}
}

func TestInvalidProblemRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p, _ := testgen.Random(rng, testgen.Config{N: 4})
	p.Circuit.Sizes[0] = -1
	if _, err := Solve(context.Background(), p, Options{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}
