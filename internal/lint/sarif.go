package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Machine-readable output: a flat JSON array for scripting, and SARIF 2.1.0
// in the minimal shape GitHub code scanning ingests (tool.driver.rules with
// ruleIndex back-references, one physicalLocation per result, and
// %SRCROOT%-relative artifact URIs).

// sarifLog is the document root.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. root (the module
// root) relativizes file paths; paths outside root are kept absolute.
func WriteSARIF(w io.Writer, diags []Diagnostic, root string) error {
	// Rules: the distinct analyzers that fired, in sorted order, with docs
	// from the registry (pseudo-analyzers like "typecheck" get a stub).
	docs := map[string]string{
		"typecheck": "the package must type-check",
		"lint":      "suppression comments must be well-formed",
	}
	for _, a := range All() {
		docs[a.Name] = a.Doc
	}
	ruleIndex := make(map[string]int)
	var rules []sarifRule
	for _, d := range diags {
		if _, seen := ruleIndex[d.Analyzer]; !seen {
			ruleIndex[d.Analyzer] = -1 // placeholder; indexed after sorting
		}
	}
	names := make([]string, 0, len(ruleIndex))
	for name := range ruleIndex {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		ruleIndex[name] = i
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: docs[name]}})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		level := "error"
		if d.Analyzer == "lint" {
			level = "warning"
		}
		region := sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column}
		if region.StartLine <= 0 {
			region.StartLine = 1 // directory-scoped findings (typecheck)
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     level,
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       relativeURI(root, d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: region,
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "qbplint",
				InformationURI: "https://example.invalid/repro/qbplint",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// WriteJSON renders diagnostics as a flat JSON array for scripting.
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	type rec struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
	}
	out := make([]rec, 0, len(diags))
	for _, d := range diags {
		out = append(out, rec{
			Analyzer: d.Analyzer,
			File:     relativeURI(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relativeURI renders path relative to root with forward slashes; paths
// outside root stay as given (slash-normalized).
func relativeURI(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}
