package lint

import (
	"go/ast"
	"go/token"
)

// indexHelperPackages are the packages allowed to spell out the Theorem-1
// flat-index packing r = i + j·M by hand: qmatrix owns the Pack/Unpack
// helpers, model owns the assignment representation, and flatmat owns the
// row-major flat matrix layout under the performance kernels.
var indexHelperPackages = map[string]bool{
	"qmatrix": true,
	"model":   true,
	"flatmat": true,
}

// RawIndexArith flags subscripts of the shape x[i + j*m] (or x[j*m + i])
// outside the designated index-helper packages. The paper's Theorem 1 fixes
// one packing of the indicator matrix into the flat vector y; every ad-hoc
// re-derivation of it is a chance to transpose i and j silently. Use
// qmatrix.Pack and qmatrix.Unpack instead.
var RawIndexArith = &Analyzer{
	Name: "raw-index-arith",
	Doc:  "flattened index arithmetic belongs in qmatrix.Pack/Unpack",
	Run: func(p *Pass) {
		if indexHelperPackages[p.Pkg.Name] {
			return
		}
		for _, f := range p.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				idx, ok := n.(*ast.IndexExpr)
				if !ok {
					return true
				}
				if isFlattenArith(idx.Index) {
					p.Reportf(idx.Index.Pos(), "ad-hoc flattened index arithmetic; use qmatrix.Pack/Unpack")
				}
				return true
			})
		}
	},
}

// isFlattenArith matches a + b*c shaped expressions (either operand order),
// the signature of inline index packing.
func isFlattenArith(e ast.Expr) bool {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return false
	}
	return isProduct(bin.X) || isProduct(bin.Y)
}

func isProduct(e ast.Expr) bool {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	return ok && bin.Op == token.MUL
}
