package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChanProtocol checks per-channel send/recv/close discipline:
//
//   - close twice on the same channel on one path, or send after a close,
//     is a guaranteed runtime panic (a CFG dataflow tracks the close state
//     per channel key; joins that disagree degrade to "maybe" and stay
//     silent);
//   - a range over a locally-created channel whose close is unreachable —
//     counting closes through helpers via the ChanOps summaries — never
//     terminates, so every consumer goroutine leaks;
//   - a spawned goroutine sending on an unbuffered locally-created channel
//     with no select alternative leaks when the spawner can return without
//     receiving: the send blocks forever. The multistart drain pattern
//     (ctx-gated feed select, close + Wait) is the positive model.
var ChanProtocol = &Analyzer{
	Name:       "chan-protocol",
	Doc:        "channel send/recv/close discipline: no double close, no send after close, ranges need a close, no orphaned unbuffered sends",
	NeedsTypes: true,
	Run:        runChanProtocol,
}

func runChanProtocol(p *Pass) {
	if p.Prog == nil || p.Pkg.Info == nil {
		return
	}
	for _, fi := range p.Prog.FuncsOf(p.Pkg) {
		checkCloseStates(p, fi)
		checkLocalChannels(p, fi)
	}
}

// --- close-state dataflow (double close, send after close) ---

type chanState uint8

const (
	chanUnknown chanState = iota
	chanOpen              // a make() assigned on every path reaching here
	chanClosed            // close() executed most recently on every path
	chanMaybe             // paths disagree
)

type chanFact struct {
	state map[string]chanState
}

func newChanFact() chanFact { return chanFact{state: map[string]chanState{}} }

func (f chanFact) clone() chanFact {
	c := newChanFact()
	for k, v := range f.state {
		c.state[k] = v
	}
	return c
}

type chanInterp struct {
	info *types.Info
}

// step applies one CFG node; when p is non-nil, protocol violations are
// reported.
func (ci *chanInterp) step(f chanFact, n ast.Node, p *Pass) chanFact {
	switch s := n.(type) {
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return f
		}
		arg, ok := closeArg(ci.info, call)
		if !ok {
			return f
		}
		key := renderNode(arg)
		out := f.clone()
		if p != nil && f.state[key] == chanClosed {
			p.Reportf(call.Pos(), "channel %s closed twice on this path", key)
		}
		out.state[key] = chanClosed
		return out
	case *ast.SendStmt:
		key := renderNode(s.Chan)
		if p != nil && f.state[key] == chanClosed {
			p.Reportf(s.Pos(), "send on %s after it was closed on this path", key)
		}
		return f
	case *ast.AssignStmt:
		var out chanFact
		for i, rhs := range s.Rhs {
			if i >= len(s.Lhs) {
				break
			}
			if !isMakeChan(ci.info, rhs) {
				continue
			}
			if out.state == nil {
				out = f.clone()
			}
			out.state[renderNode(s.Lhs[i])] = chanOpen
		}
		if out.state != nil {
			return out
		}
	}
	return f
}

// mentionsClose pre-filters bodies without a close builtin call.
func (ci *chanInterp) mentionsClose(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := closeArg(ci.info, call); ok {
				found = true
			}
		}
		return !found
	})
	return found
}

type chanProblem struct {
	ci *chanInterp
}

func (p chanProblem) Entry() chanFact { return newChanFact() }

func (p chanProblem) Transfer(b *Block, in chanFact) chanFact {
	out := in
	for _, n := range b.Nodes {
		out = p.ci.step(out, n, nil)
	}
	return out
}

func (p chanProblem) Join(a, b chanFact) chanFact {
	j := newChanFact()
	keys := map[string]bool{}
	for k := range a.state {
		keys[k] = true
	}
	for k := range b.state {
		keys[k] = true
	}
	for k := range keys {
		if sa, sb := a.state[k], b.state[k]; sa == sb {
			j.state[k] = sa
		} else {
			j.state[k] = chanMaybe
		}
	}
	return j
}

func (p chanProblem) Equal(a, b chanFact) bool {
	if len(a.state) != len(b.state) {
		return false
	}
	for k, v := range a.state {
		if b.state[k] != v {
			return false
		}
	}
	return true
}

func checkCloseStates(p *Pass, fi *FuncInfo) {
	ci := &chanInterp{info: fi.Pkg.Info}
	if !ci.mentionsClose(fi.Body) {
		return
	}
	g := fi.Pkg.CFG(fi.Body)
	in := SolveForward[chanFact](g, chanProblem{ci})
	for _, b := range g.ReversePostorder() {
		fact, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			fact = ci.step(fact, n, p)
		}
	}
}

// --- local-channel lifecycle (range-needs-close, orphaned sends) ---

// localChan is one channel created by make() inside a function.
type localChan struct {
	v          *types.Var
	unbuffered bool
	ops        ChanOps
	escaped    bool
	rangePos   token.Pos // first range over the channel (anywhere in the fn)
	litSends   []litSend // sends inside spawned goroutine literals
}

// litSend is a send on the channel inside a spawned literal, with whether
// the enclosing select gives the goroutine another way out.
type litSend struct {
	pos       token.Pos
	hasEscape bool
}

func checkLocalChannels(p *Pass, fi *FuncInfo) {
	info := fi.Pkg.Info
	locals := map[*types.Var]*localChan{}
	inspectShallow(fi.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || !isMakeChan(info, rhs) {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			v, _ := info.Defs[id].(*types.Var)
			if v == nil {
				continue
			}
			call := ast.Unparen(rhs).(*ast.CallExpr)
			locals[v] = &localChan{v: v, unbuffered: len(call.Args) < 2 || isZeroConst(info, call.Args[1])}
		}
		return true
	})
	if len(locals) == 0 {
		return
	}

	parents := parentMap(fi.Body)
	spawnedLits := map[*ast.FuncLit]bool{}
	for _, s := range p.Prog.SpawnSites(fi) {
		if s.Target != nil && s.Target.Lit != nil {
			spawnedLits[s.Target.Lit] = true
		}
	}

	ast.Inspect(fi.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := info.Uses[id].(*types.Var)
		lc := locals[v]
		if lc == nil {
			return true
		}
		classifyChanUse(p, info, lc, id, parents, spawnedLits)
		return true
	})

	vars := make([]*types.Var, 0, len(locals))
	for v := range locals {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		lc := locals[v]
		if lc.escaped {
			continue
		}
		if lc.ops.Range && !lc.ops.Close && lc.rangePos != token.NoPos {
			p.Reportf(lc.rangePos, "range over %s but no close is reachable: the consuming goroutines never terminate", v.Name())
		}
		if lc.unbuffered && len(lc.litSends) > 0 {
			reportOrphanedSends(p, fi, lc, parents)
		}
	}
}

// classifyChanUse folds one identifier occurrence of a tracked channel into
// its lifecycle record: operation, escape, or spawned-literal send.
func classifyChanUse(p *Pass, info *types.Info, lc *localChan, id *ast.Ident, parents map[ast.Node]ast.Node, spawnedLits map[*ast.FuncLit]bool) {
	parent := parents[id]
	for {
		if pe, ok := parent.(*ast.ParenExpr); ok {
			parent = parents[pe]
			continue
		}
		break
	}
	switch x := parent.(type) {
	case *ast.SendStmt:
		if x.Value == id {
			lc.escaped = true // the channel itself moved over a channel
			return
		}
		lc.ops = lc.ops.or(ChanOps{Send: true})
		if lit := enclosingSpawnedLit(id, parents, spawnedLits); lit != nil {
			lc.litSends = append(lc.litSends, litSend{
				pos:       x.Pos(),
				hasEscape: selectHasAlternative(x, parents),
			})
		}
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			lc.ops = lc.ops.or(ChanOps{Recv: true})
		} else {
			lc.escaped = true // &ch or other unary use
		}
	case *ast.RangeStmt:
		if x.X == id {
			lc.ops = lc.ops.or(ChanOps{Recv: true, Range: true})
			if lc.rangePos == token.NoPos {
				lc.rangePos = x.Pos()
			}
		} else {
			lc.escaped = true
		}
	case *ast.CallExpr:
		if arg, ok := closeArg(info, x); ok && ast.Unparen(arg) == ast.Expr(id) {
			lc.ops = lc.ops.or(ChanOps{Close: true})
			return
		}
		if isLenOrCap(info, x) {
			return
		}
		// Argument to a module function: fold the callee's summary for the
		// receiving parameter; anything unresolved escapes.
		for i, arg := range x.Args {
			if ast.Unparen(arg) != ast.Expr(id) {
				continue
			}
			tgts, dyn := p.Prog.funTargets(info, x.Fun)
			if dyn || len(tgts) != 1 || tgts[0] == nil {
				lc.escaped = true
				return
			}
			if op, ok := tgts[0].ChanOps[i]; ok {
				lc.ops = lc.ops.or(op)
			}
			// A callee the summary knows nothing about may still hold the
			// channel; only trust it when its signature cannot store it.
			if tgts[0].Sig == nil {
				lc.escaped = true
			}
			return
		}
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			if ast.Unparen(lhs) == ast.Expr(id) {
				return // redefinition/reassignment target, not a read
			}
		}
		lc.escaped = true // aliased into another variable
	case *ast.BinaryExpr:
		// comparisons (ch == nil) are harmless
	case *ast.ValueSpec:
		// the declaration itself
	default:
		lc.escaped = true // return, composite literal, index, conversion, ...
	}
}

// enclosingSpawnedLit returns the innermost spawned literal containing id.
func enclosingSpawnedLit(id ast.Node, parents map[ast.Node]ast.Node, spawnedLits map[*ast.FuncLit]bool) *ast.FuncLit {
	for n := parents[id]; n != nil; n = parents[n] {
		if lit, ok := n.(*ast.FuncLit); ok {
			if spawnedLits[lit] {
				return lit
			}
			return nil // send lives in some other nested function
		}
	}
	return nil
}

// selectHasAlternative reports whether a send statement is the comm of a
// select case that has at least one other case or a default — the sending
// goroutine then has a way out even if nobody receives.
func selectHasAlternative(send *ast.SendStmt, parents map[ast.Node]ast.Node) bool {
	cc, ok := parents[send].(*ast.CommClause)
	if !ok || cc.Comm != ast.Stmt(send) {
		return false
	}
	// The clause's parent is the select's body block, not the SelectStmt.
	blk, ok := parents[cc].(*ast.BlockStmt)
	if !ok {
		return false
	}
	sel, ok := parents[blk].(*ast.SelectStmt)
	return ok && len(sel.Body.List) > 1
}

// reportOrphanedSends checks the spawner side: from each spawn statement,
// can the spawner reach its exit without receiving from the channel? If so
// the unbuffered sends in the spawned goroutine block forever on that path.
//
// A loop that receives from the channel anywhere in its extent counts as
// consuming for its whole span, including its exit condition: the counting
// fan-in (`for i := 0; i < n; i++ { <-ch }`) drains exactly as many sends
// as were spawned, and treating the loop-exhausted edge as a bypass would
// flag every such drain.
func reportOrphanedSends(p *Pass, fi *FuncInfo, lc *localChan, parents map[ast.Node]ast.Node) {
	g := fi.Pkg.CFG(fi.Body)
	consuming := consumingLoopSpans(fi, lc.v, parents)
	for _, s := range p.Prog.SpawnSites(fi) {
		if s.Target == nil || s.Target.Lit == nil || !litSendsOn(s.Target.Lit, lc) {
			continue
		}
		if spawnerCanExitWithoutRecv(g, s.Go, fi.Pkg.Info, lc.v, consuming) {
			for _, snd := range lc.litSends {
				if !snd.hasEscape && s.Target.Lit.Pos() <= snd.pos && snd.pos <= s.Target.Lit.End() {
					p.Reportf(snd.pos, "goroutine sends on unbuffered %s but the spawner can return without receiving: the send blocks forever and the goroutine leaks", lc.v.Name())
				}
			}
		}
	}
}

func litSendsOn(lit *ast.FuncLit, lc *localChan) bool {
	for _, snd := range lc.litSends {
		if lit.Pos() <= snd.pos && snd.pos <= lit.End() {
			return true
		}
	}
	return false
}

// consumingLoopSpans returns the source spans of every for/range loop that
// contains a receive from v outside any nested function literal.
func consumingLoopSpans(fi *FuncInfo, v *types.Var, parents map[ast.Node]ast.Node) []posSpan {
	info := fi.Pkg.Info
	var spans []posSpan
	mark := func(recv ast.Node) {
		for n := parents[recv]; n != nil; n = parents[n] {
			switch n.(type) {
			case *ast.FuncLit:
				return // the receive runs on some other goroutine
			case *ast.ForStmt, *ast.RangeStmt:
				spans = append(spans, posSpan{n.Pos(), n.End()})
			}
		}
	}
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		switch u := n.(type) {
		case *ast.UnaryExpr:
			if u.Op == token.ARROW && usesVar(info, u.X, v) {
				mark(n)
			}
		case *ast.RangeStmt:
			if usesVar(info, u.X, v) {
				mark(n)
			}
		}
		return true
	})
	return spans
}

type posSpan struct{ lo, hi token.Pos }

// spawnerCanExitWithoutRecv walks the spawner CFG from the go statement and
// reports whether the exit block is reachable through blocks that never
// receive from v.
func spawnerCanExitWithoutRecv(g *CFG, goStmt *ast.GoStmt, info *types.Info, v *types.Var, consuming []posSpan) bool {
	var start *Block
	startIdx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == ast.Node(goStmt) {
				start, startIdx = b, i
			}
		}
	}
	if start == nil {
		return false
	}
	recvs := func(b *Block, from int) bool {
		for _, n := range b.Nodes[from:] {
			for _, s := range consuming {
				if s.lo <= n.Pos() && n.Pos() <= s.hi {
					return true
				}
			}
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				switch u := x.(type) {
				case *ast.FuncLit:
					return false // other goroutines' receives don't unblock this path
				case *ast.UnaryExpr:
					if u.Op == token.ARROW && usesVar(info, u.X, v) {
						found = true
					}
				case *ast.RangeStmt:
					if usesVar(info, u.X, v) {
						found = true
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
		return false
	}
	seen := map[*Block]bool{}
	var dfs func(b *Block, from int) bool
	dfs = func(b *Block, from int) bool {
		if recvs(b, from) {
			return false
		}
		if b == g.Exit {
			return true
		}
		if from == 0 {
			if seen[b] {
				return false
			}
			seen[b] = true
		}
		for _, nb := range b.Succs {
			if dfs(nb, 0) {
				return true
			}
		}
		return false
	}
	return dfs(start, startIdx+1)
}

func usesVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return info.Uses[id] == types.Object(v)
}

// parentMap records each node's immediate parent within one body.
func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func isMakeChan(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

func isLenOrCap(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || (id.Name != "len" && id.Name != "cap") {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
