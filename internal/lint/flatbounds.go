package lint

import (
	"go/ast"
	"go/types"
)

// FlatBounds runs the symbolic interval analysis over every function that
// subscripts the backing vector of a flatmat.Matrix and demands a proof
// that each access stays inside the Theorem-1 packing: for m.V[e] it must
// show 0 ≤ e and e ≤ len(m.V)−1, and for m.V[lo:hi] that 0 ≤ lo, lo ≤ hi
// and hi ≤ len(m.V). Index arithmetic the domain cannot bound — which
// includes the canonical i*m.Stride+j with unconstrained i — is reported,
// so every branch-free kernel either carries loop bounds the prover can
// discharge or a justified suppression stating the caller contract.
//
// Only direct subscripts of the V field are checked; raw-index-arith
// already forces flat offsets through the designated helpers elsewhere.
var FlatBounds = &Analyzer{
	Name:       "flat-bounds",
	Doc:        "flat matrix indices must provably stay within len(m.V)",
	NeedsTypes: true,
	Run:        runFlatBounds,
}

// intervalProblem adapts intervalInterp to the generic dataflow solver.
type intervalProblem struct {
	ii *intervalInterp
}

func (p intervalProblem) Entry() intervalEnv {
	env := intervalEnv{}
	// Callee-side summary runs seed integer parameters as symbolic atoms.
	for v, atom := range p.ii.paramAtoms {
		if isIntegerVar(v) {
			env[v] = pointIval(polyAtom(atom))
		}
	}
	return env
}

func (p intervalProblem) Transfer(b *Block, in intervalEnv) intervalEnv {
	env := in
	for _, n := range b.Nodes {
		env = p.ii.transferNode(env, n)
	}
	return env
}

func (p intervalProblem) Join(a, b intervalEnv) intervalEnv {
	j := make(intervalEnv)
	for v, iv := range a {
		if w, ok := b[v]; ok {
			joined := ivalJoin(iv, w, p.ii.pr)
			if joined.hasLo || joined.hasHi {
				j[v] = joined
			}
		}
		// Variables known on one side only join with ⊤ and drop out.
	}
	return j
}

func (p intervalProblem) Equal(a, b intervalEnv) bool { return a.equal(b) }

// Refine narrows variable ranges along the true/false edges of condition
// leaf blocks (Succs[0] is the true edge by the CFG contract).
func (p intervalProblem) Refine(from *Block, succIdx int, out intervalEnv) intervalEnv {
	if from.Cond == nil {
		return out
	}
	return p.ii.refineCond(out, from.Cond, succIdx == 0)
}

// Widen keeps only the bounds that stabilized between loop iterations.
func (p intervalProblem) Widen(prev, next intervalEnv) intervalEnv {
	w := make(intervalEnv)
	for v, nv := range next {
		pv, ok := prev[v]
		if !ok {
			continue
		}
		widened := ivalWiden(pv, nv)
		if widened.hasLo || widened.hasHi {
			w[v] = widened
		}
	}
	return w
}

func runFlatBounds(p *Pass) {
	info := p.Info()
	forEachFuncBody(p, func(body *ast.BlockStmt) {
		analyzeFlatBounds(p, info, body)
	})
}

func analyzeFlatBounds(p *Pass, info *types.Info, body *ast.BlockStmt) {
	fb := &flatBoundsInterp{info: info}
	if !fb.mentionsFlatVector(body) {
		return
	}
	ii := &intervalInterp{info: info, pr: newProver(), prog: p.Prog}
	g := p.Pkg.CFG(body)
	in := SolveForward[intervalEnv](g, intervalProblem{ii})

	for _, b := range g.ReversePostorder() {
		env, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			fb.checkNode(p, ii, env, n)
			env = ii.transferNode(env, n)
		}
	}
}

type flatBoundsInterp struct {
	info *types.Info
}

// checkNode proves every flatmat vector subscript inside n (evaluated in
// env, the state before n executes).
func (fb *flatBoundsInterp) checkNode(p *Pass, ii *intervalInterp, env intervalEnv, n ast.Node) {
	inspectShallow(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.IndexExpr:
			sel, ok := fb.flatVector(x.X)
			if !ok {
				return true
			}
			lenP := polyAtom(lenSymbol(symbolFor(sel)))
			iv := ii.eval(env, x.Index)
			if !fb.proveIndex(ii, iv, lenP) {
				p.Reportf(x.Index.Pos(), "cannot prove flat index %s stays within len(%s)", renderNode(x.Index), renderNode(sel))
			}
		case *ast.SliceExpr:
			sel, ok := fb.flatVector(x.X)
			if !ok {
				return true
			}
			lenP := polyAtom(lenSymbol(symbolFor(sel)))
			if !fb.proveSlice(ii, env, x, lenP) {
				p.Reportf(x.Pos(), "cannot prove slice bounds of %s stay within len(%s)", renderNode(x), renderNode(sel))
			}
		}
		return true
	})
}

// proveIndex demands 0 ≤ iv.lo and iv.hi ≤ len−1.
func (fb *flatBoundsInterp) proveIndex(ii *intervalInterp, iv ival, lenP poly) bool {
	if !iv.bounded() {
		return false
	}
	if !ii.pr.ge0(iv.lo) {
		return false
	}
	limit, ok := polySub(lenP, polyConst(1))
	if !ok {
		return false
	}
	return ii.pr.leq(iv.hi, limit)
}

// proveSlice demands 0 ≤ lo ≤ hi ≤ len for v[lo:hi] (missing bounds
// default to 0 and len and hold trivially). Full three-index slices are
// checked on their capacity bound as well.
func (fb *flatBoundsInterp) proveSlice(ii *intervalInterp, env intervalEnv, x *ast.SliceExpr, lenP poly) bool {
	loIv := ival{lo: polyConst(0), hi: polyConst(0), hasLo: true, hasHi: true}
	if x.Low != nil {
		loIv = ii.eval(env, x.Low)
	}
	hiIv := pointIval(lenP)
	if x.High != nil {
		hiIv = ii.eval(env, x.High)
	}
	if !loIv.bounded() || !hiIv.bounded() {
		return false
	}
	if !ii.pr.ge0(loIv.lo) {
		return false
	}
	if !ii.pr.leq(loIv.hi, hiIv.lo) {
		return false
	}
	if !ii.pr.leq(hiIv.hi, lenP) {
		return false
	}
	if x.Max != nil {
		maxIv := ii.eval(env, x.Max)
		if !maxIv.bounded() || !ii.pr.leq(maxIv.hi, lenP) {
			return false
		}
	}
	return true
}

// flatVector reports e is the V field of a flatmat.Matrix (by value or
// pointer) and returns the selector for diagnostics.
func (fb *flatBoundsInterp) flatVector(e ast.Expr) (*ast.SelectorExpr, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "V" {
		return nil, false
	}
	tv, ok := fb.info.Types[sel.X]
	if !ok {
		return nil, false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Matrix" {
		return nil, false
	}
	pkg := named.Obj().Pkg()
	return sel, pkg != nil && pkg.Name() == "flatmat"
}

// mentionsFlatVector cheaply pre-filters functions that never touch a
// flatmat vector.
func (fb *flatBoundsInterp) mentionsFlatVector(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.IndexExpr:
			_, found = fb.flatVector(x.X)
		case *ast.SliceExpr:
			_, found = fb.flatVector(x.X)
		}
		return !found
	})
	return found
}
