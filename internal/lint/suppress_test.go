package lint

import (
	"strings"
	"testing"
)

func TestParseSuppression(t *testing.T) {
	cases := []struct {
		text      string
		names     []string
		match     bool
		malformed bool
	}{
		{"//lint:ignore float-equality tolerance is intentional", []string{"float-equality"}, true, false},
		{"//lint:ignore map-order-leak,shadow-err both are fine here", []string{"map-order-leak", "shadow-err"}, true, false},
		{"//lint:ignore\tfloat-equality\ttab-separated reason", []string{"float-equality"}, true, false},
		{"// not a directive", nil, false, false},
		{"//lint:ignored float-equality near miss", nil, false, false},
		{"//lint:ignore", nil, true, true},            // no analyzer, no reason
		{"//lint:ignore shadow-err", nil, true, true}, // missing reason
		{"//lint:ignore no-such-analyzer because", nil, true, true},
		{"//lint:ignore float-equality,, double comma", nil, true, true},
		{"//lint:ignore ,shadow-err leading comma", nil, true, true},
	}
	for _, tc := range cases {
		names, match, err := parseSuppression(tc.text)
		if match != tc.match || (err != nil) != tc.malformed {
			t.Errorf("parseSuppression(%q) = match %v, err %v; want match %v, malformed %v",
				tc.text, match, err, tc.match, tc.malformed)
			continue
		}
		if len(names) != len(tc.names) {
			t.Errorf("parseSuppression(%q) names = %v, want %v", tc.text, names, tc.names)
			continue
		}
		for i := range names {
			if names[i] != tc.names[i] {
				t.Errorf("parseSuppression(%q) names = %v, want %v", tc.text, names, tc.names)
			}
		}
	}
}

// FuzzParseSuppression checks the directive parser's invariants on
// arbitrary comment text: it never panics, non-matches carry no error and
// no names, and names are only returned for well-formed directives whose
// every element is a registered analyzer.
func FuzzParseSuppression(f *testing.F) {
	seeds := []string{
		"//lint:ignore float-equality tolerance is intentional",
		"//lint:ignore map-order-leak,shadow-err,lock-balance multi reason",
		"//lint:ignore",
		"//lint:ignore shadow-err",
		"//lint:ignore  ",
		"//lint:ignore ,,, reason",
		"//lint:ignore ,shadow-err, dangling commas",
		"//lint:ignore float-equality,",
		"//lint:ignored float-equality near miss",
		"//lint:ignoreX y z",
		"//lint:ignore\t\tflat-bounds\ttabs",
		"//lint:ignore \x00 nul",
		"// ordinary comment",
		"",
		"//lint:ignore é–analyzer ünicode",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		names, match, err := parseSuppression(text)
		if !match {
			if err != nil || names != nil {
				t.Fatalf("non-match returned names=%v err=%v", names, err)
			}
			return
		}
		if !strings.HasPrefix(text, ignorePrefix) {
			t.Fatalf("match without %q prefix: %q", ignorePrefix, text)
		}
		if err != nil {
			if names != nil {
				t.Fatalf("malformed directive returned names %v", names)
			}
			return
		}
		if len(names) == 0 {
			t.Fatal("well-formed directive returned no names")
		}
		for _, n := range names {
			if !knownAnalyzer(n) {
				t.Fatalf("accepted unknown analyzer %q in %q", n, text)
			}
			if strings.ContainsAny(n, ", \t") {
				t.Fatalf("name %q not fully split", n)
			}
		}
		// Parsing is a pure function of the text.
		again, match2, err2 := parseSuppression(text)
		if match2 != match || (err2 == nil) != (err == nil) || len(again) != len(names) {
			t.Fatalf("parse not deterministic for %q", text)
		}
	})
}
