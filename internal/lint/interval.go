package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Symbolic interval abstract interpretation for integer expressions.
//
// Bounds are multivariate polynomials over *symbolic atoms* — opaque
// nonnegative quantities such as len(m.V), m.Stride, or the integer
// quotient (len(v))/(stride). A variable's abstract value is an interval
// [lo, hi] whose ends are such polynomials (either end may be missing =
// unbounded). The domain is just strong enough to discharge the Theorem-1
// flat-index obligations: with i ∈ [0, rows-1], j ∈ [0, stride-1] and
// rows = len(v)/stride, the packing i*stride+j provably stays below
// len(v), while arithmetic the domain cannot bound is reported.
//
// Soundness caveat (documented in DESIGN.md §8): atoms are assumed
// nonnegative. For the quantities the analysis names (len/cap results,
// loop bounds that admit at least one iteration, matrix strides) this
// holds in every reachable state the solver constructs; a negative stride
// would fail at runtime long before order-of-evaluation mattered.

// poly is a polynomial with int64 coefficients: monomial key "" is the
// constant term, any other key is a '*'-joined sorted list of atom names
// (with multiplicity).
type poly map[string]int64

const (
	polyMaxTerms  = 24
	polyMaxDegree = 4
	polyMaxCoeff  = int64(1) << 40
)

func polyConst(c int64) poly { return poly{"": c} }
func polyAtom(sym string) poly {
	return poly{sym: 1}
}

func (p poly) clone() poly {
	q := make(poly, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

func (p poly) constant() (int64, bool) {
	switch len(p) {
	case 0:
		return 0, true
	case 1:
		c, ok := p[""]
		return c, ok
	}
	return 0, false
}

func (p poly) equal(q poly) bool {
	if len(p) != len(q) {
		// Zero coefficients are never stored, so length differences are real.
		return false
	}
	for k, v := range p {
		if q[k] != v {
			return false
		}
	}
	return true
}

// ok reports the polynomial is within the complexity caps.
func (p poly) ok() bool {
	if len(p) > polyMaxTerms {
		return false
	}
	for k, v := range p {
		if v > polyMaxCoeff || v < -polyMaxCoeff {
			return false
		}
		if k != "" && strings.Count(k, "*")+1 > polyMaxDegree {
			return false
		}
	}
	return true
}

func polyAdd(a, b poly) (poly, bool) {
	s := a.clone()
	for k, v := range b {
		s[k] += v
		if s[k] == 0 {
			delete(s, k)
		}
	}
	return s, s.ok()
}

func polyNeg(a poly) poly {
	n := make(poly, len(a))
	for k, v := range a {
		n[k] = -v
	}
	return n
}

func polySub(a, b poly) (poly, bool) { return polyAdd(a, polyNeg(b)) }

func polyMul(a, b poly) (poly, bool) {
	s := make(poly)
	for ka, va := range a {
		for kb, vb := range b {
			k := mulKeys(ka, kb)
			s[k] += va * vb
			if s[k] == 0 {
				delete(s, k)
			}
		}
	}
	return s, s.ok()
}

// mulKeys merges two monomial keys into a canonical sorted product.
func mulKeys(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	syms := append(strings.Split(a, "*"), strings.Split(b, "*")...)
	sort.Strings(syms)
	return strings.Join(syms, "*")
}

// divAtom records that atom name is the integer quotient num/den, enabling
// the cancellation rule name·den ≤ num during nonnegativity proofs.
type divAtom struct {
	num string // monomial key of the numerator
	den string // single atom name of the denominator
}

// prover decides polynomial nonnegativity under the all-atoms-nonnegative
// assumption, with integer-division cancellation.
type prover struct {
	divs map[string]divAtom
}

func newProver() *prover { return &prover{divs: make(map[string]divAtom)} }

// quotient returns (registering if needed) the atom for num/den.
func (pr *prover) quotient(num, den string) string {
	name := "(" + num + ")/(" + den + ")"
	pr.divs[name] = divAtom{num: num, den: den}
	return name
}

// ge0 reports whether p ≥ 0 is provable: after rewriting q·den → num for
// registered quotients q = num/den on negatively-weighted monomials
// (sound since 0 ≤ (num/den)·den ≤ num for den ≥ 1, and both sides are 0
// when den = 0 never executes the division), every coefficient must be
// nonnegative.
func (pr *prover) ge0(p poly) bool {
	p = p.clone()
	for pass := 0; pass < 4; pass++ {
		rewrote := false
		for k, v := range p {
			if v >= 0 || k == "" {
				continue
			}
			syms := strings.Split(k, "*")
			done := false
			for i := 0; i < len(syms) && !done; i++ {
				da, isDiv := pr.divs[syms[i]]
				if !isDiv {
					continue
				}
				for j := 0; j < len(syms); j++ {
					if j == i || syms[j] != da.den {
						continue
					}
					rest := make([]string, 0, len(syms))
					for t, s := range syms {
						if t != i && t != j {
							rest = append(rest, s)
						}
					}
					newKey := da.num
					for _, s := range rest {
						newKey = mulKeys(newKey, s)
					}
					p[newKey] += v
					if p[newKey] == 0 {
						delete(p, newKey)
					}
					delete(p, k)
					rewrote, done = true, true
					break
				}
			}
		}
		if !rewrote {
			break
		}
	}
	for _, v := range p {
		if v < 0 {
			return false
		}
	}
	return true
}

// leq reports a ≤ b provable.
func (pr *prover) leq(a, b poly) bool {
	d, ok := polySub(b, a)
	return ok && pr.ge0(d)
}

// ival is an interval with optional polynomial bounds.
type ival struct {
	lo, hi poly
	hasLo  bool
	hasHi  bool
}

func unboundedIval() ival    { return ival{} }
func pointIval(p poly) ival  { return ival{lo: p, hi: p, hasLo: true, hasHi: true} }
func constIval(c int64) ival { return pointIval(polyConst(c)) }
func (v ival) bounded() bool { return v.hasLo && v.hasHi }
func (v ival) equal(w ival) bool {
	if v.hasLo != w.hasLo || v.hasHi != w.hasHi {
		return false
	}
	if v.hasLo && !v.lo.equal(w.lo) {
		return false
	}
	if v.hasHi && !v.hi.equal(w.hi) {
		return false
	}
	return true
}

func ivalAdd(a, b ival) ival {
	var r ival
	if a.hasLo && b.hasLo {
		if lo, ok := polyAdd(a.lo, b.lo); ok {
			r.lo, r.hasLo = lo, true
		}
	}
	if a.hasHi && b.hasHi {
		if hi, ok := polyAdd(a.hi, b.hi); ok {
			r.hi, r.hasHi = hi, true
		}
	}
	return r
}

func ivalSub(a, b ival) ival {
	var r ival
	if a.hasLo && b.hasHi {
		if lo, ok := polySub(a.lo, b.hi); ok {
			r.lo, r.hasLo = lo, true
		}
	}
	if a.hasHi && b.hasLo {
		if hi, ok := polySub(a.hi, b.lo); ok {
			r.hi, r.hasHi = hi, true
		}
	}
	return r
}

// ivalMul multiplies two intervals. Precise cases: exact constants on
// either side, and the both-provably-nonnegative case the index math uses.
func ivalMul(a, b ival, pr *prover) ival {
	if c, ok := a.exactConst(); ok {
		return b.scale(c)
	}
	if c, ok := b.exactConst(); ok {
		return a.scale(c)
	}
	if a.hasLo && b.hasLo && pr.ge0(a.lo) && pr.ge0(b.lo) {
		var r ival
		if lo, ok := polyMul(a.lo, b.lo); ok {
			r.lo, r.hasLo = lo, true
		}
		if a.hasHi && b.hasHi {
			if hi, ok := polyMul(a.hi, b.hi); ok {
				r.hi, r.hasHi = hi, true
			}
		}
		return r
	}
	return unboundedIval()
}

func (v ival) exactConst() (int64, bool) {
	if !v.bounded() || !v.lo.equal(v.hi) {
		return 0, false
	}
	return v.lo.constant()
}

func (v ival) scale(c int64) ival {
	var r ival
	mul := func(p poly) (poly, bool) { return polyMul(p, polyConst(c)) }
	if c >= 0 {
		if v.hasLo {
			if lo, ok := mul(v.lo); ok {
				r.lo, r.hasLo = lo, true
			}
		}
		if v.hasHi {
			if hi, ok := mul(v.hi); ok {
				r.hi, r.hasHi = hi, true
			}
		}
		return r
	}
	if v.hasHi {
		if lo, ok := mul(v.hi); ok {
			r.lo, r.hasLo = lo, true
		}
	}
	if v.hasLo {
		if hi, ok := mul(v.lo); ok {
			r.hi, r.hasHi = hi, true
		}
	}
	return r
}

// ivalJoin is the lattice join: keep a bound only when both sides agree or
// one side provably dominates.
func ivalJoin(a, b ival, pr *prover) ival {
	var r ival
	if a.hasLo && b.hasLo {
		switch {
		case a.lo.equal(b.lo):
			r.lo, r.hasLo = a.lo, true
		case pr.leq(a.lo, b.lo):
			r.lo, r.hasLo = a.lo, true
		case pr.leq(b.lo, a.lo):
			r.lo, r.hasLo = b.lo, true
		}
	}
	if a.hasHi && b.hasHi {
		switch {
		case a.hi.equal(b.hi):
			r.hi, r.hasHi = a.hi, true
		case pr.leq(b.hi, a.hi):
			r.hi, r.hasHi = a.hi, true
		case pr.leq(a.hi, b.hi):
			r.hi, r.hasHi = b.hi, true
		}
	}
	return r
}

// ivalWiden drops any bound that did not stabilize between iterations.
func ivalWiden(prev, next ival) ival {
	var r ival
	if prev.hasLo && next.hasLo && prev.lo.equal(next.lo) {
		r.lo, r.hasLo = next.lo, true
	}
	if prev.hasHi && next.hasHi && prev.hi.equal(next.hi) {
		r.hi, r.hasHi = next.hi, true
	}
	return r
}

// intervalEnv maps variables to their abstract intervals. Environments are
// treated as immutable; transfer functions clone before writing.
type intervalEnv map[*types.Var]ival

func (e intervalEnv) clone() intervalEnv {
	c := make(intervalEnv, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

func (e intervalEnv) equal(o intervalEnv) bool {
	if len(e) != len(o) {
		return false
	}
	for k, v := range e {
		w, ok := o[k]
		if !ok || !v.equal(w) {
			return false
		}
	}
	return true
}

// intervalInterp evaluates expressions and transfers statements over
// intervalEnv facts for one function.
//
// prog, when set, enables cross-call reasoning: calls to module functions
// evaluate to their substituted result summaries (summary.go). paramAtoms
// and lenAtoms are set only on callee-side summary computations: paramAtoms
// seeds integer parameters into the entry environment as "$name" atoms
// (denoting the entry value, so later mutation stays sound); lenAtoms
// renames len/cap of unreassigned parameters to "len($name)" so the bound
// survives to the call site.
type intervalInterp struct {
	info       *types.Info
	pr         *prover
	prog       *Program
	paramAtoms map[*types.Var]string
	lenAtoms   map[*types.Var]string
}

// symbolFor renders an expression as a canonical atom name.
func symbolFor(e ast.Expr) string { return renderNode(e) }

// lenSymbol is the atom naming len(x) for the rendered base expression.
func lenSymbol(base string) string { return "len(" + base + ")" }

// varOf resolves a (possibly parenthesized) identifier to its variable.
func (ii *intervalInterp) varOf(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := ii.info.Uses[id]
	if obj == nil {
		obj = ii.info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// eval computes the interval of an integer expression under env.
func (ii *intervalInterp) eval(env intervalEnv, e ast.Expr) ival {
	e = ast.Unparen(e)
	// Constant-folded expressions are exact regardless of shape.
	if tv, ok := ii.info.Types[e]; ok && tv.Value != nil {
		if c, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return constIval(c)
		}
	}
	switch x := e.(type) {
	case *ast.BasicLit:
		if x.Kind == token.INT {
			if c, err := strconv.ParseInt(x.Value, 0, 64); err == nil {
				return constIval(c)
			}
		}
	case *ast.Ident:
		if v := ii.varOf(x); v != nil {
			if iv, ok := env[v]; ok {
				return iv
			}
		}
	case *ast.SelectorExpr:
		// A pure field read is a stable symbolic atom (killed on any write
		// to its base variable).
		if ii.pureChain(x) {
			return pointIval(polyAtom(symbolFor(x)))
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") && len(x.Args) == 1 {
			if _, isBuiltin := ii.info.Uses[id].(*types.Builtin); isBuiltin {
				sym := symbolFor(x.Args[0])
				if ii.lenAtoms != nil {
					if v := ii.varOf(x.Args[0]); v != nil {
						if a, ok := ii.lenAtoms[v]; ok {
							sym = a
						}
					}
				}
				return pointIval(polyAtom(lenSymbol(sym)))
			}
		}
		// Integer conversions pass the operand's bounds through when the
		// conversion is value-exact, so header counts keep their proven
		// ranges across the int(n)/int64(cap) hops the readers do. The
		// module builds 64-bit only, so int/uint/uintptr count as 64 wide.
		if tv, ok := ii.info.Types[ast.Unparen(x.Fun)]; ok && tv.IsType() && len(x.Args) == 1 {
			if atv, ok := ii.info.Types[x.Args[0]]; ok && convExact(tv.Type, atv.Type) {
				return ii.eval(env, x.Args[0])
			}
			return unboundedIval()
		}
		if ii.prog != nil {
			if iv, ok := ii.prog.callResultIval(ii, env, x); ok {
				return iv
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			return ii.eval(env, x.X).scale(-1)
		}
		if x.Op == token.ADD {
			return ii.eval(env, x.X)
		}
	case *ast.BinaryExpr:
		a := ii.eval(env, x.X)
		b := ii.eval(env, x.Y)
		switch x.Op {
		case token.ADD:
			return ivalAdd(a, b)
		case token.SUB:
			return ivalSub(a, b)
		case token.MUL:
			return ivalMul(a, b, ii.pr)
		case token.QUO:
			return ii.evalQuo(a, b)
		case token.REM:
			// a % b ∈ [0, b-1] when both operands are provably nonnegative.
			if a.hasLo && ii.pr.ge0(a.lo) && b.hasHi && b.hasLo && ii.pr.ge0(b.lo) {
				if hi, ok := polySub(b.hi, polyConst(1)); ok {
					return ival{lo: polyConst(0), hi: hi, hasLo: true, hasHi: true}
				}
			}
		}
	}
	return unboundedIval()
}

// evalQuo models integer division: exact for constants, and a registered
// quotient atom when both operands are single symbolic atoms (the
// rows = len(v)/stride pattern).
func (ii *intervalInterp) evalQuo(a, b ival) ival {
	if ca, ok := a.exactConst(); ok {
		if cb, ok := b.exactConst(); ok && cb != 0 {
			return constIval(ca / cb)
		}
		return unboundedIval()
	}
	na, aPoint := a.pointMonomial()
	nb, bPoint := b.pointMonomial()
	if aPoint && bPoint && !strings.Contains(nb, "*") {
		return pointIval(polyAtom(ii.pr.quotient(na, nb)))
	}
	// Integer division of a nonnegative numerator by a divisor ≥ 1 only
	// shrinks: a/b ∈ [0, a.hi]. Covers len(v)/2 midpoints.
	if a.hasLo && ii.pr.ge0(a.lo) && b.hasLo {
		if dm1, ok := polySub(b.lo, polyConst(1)); ok && ii.pr.ge0(dm1) {
			r := ival{lo: polyConst(0), hasLo: true}
			if a.hasHi {
				r.hi, r.hasHi = a.hi, true
			}
			return r
		}
	}
	return unboundedIval()
}

// pointMonomial reports v is exactly one monomial with coefficient 1 and
// returns its key.
func (v ival) pointMonomial() (string, bool) {
	if !v.bounded() || !v.lo.equal(v.hi) || len(v.lo) != 1 {
		return "", false
	}
	//lint:ignore map-order-leak v.lo has exactly one entry (len check above)
	for k, c := range v.lo {
		if k != "" && c == 1 {
			return k, true
		}
	}
	return "", false
}

// convExact reports whether converting a src-typed value to dst cannot
// change it: signed→signed or unsigned→unsigned into at least the same
// width, or unsigned into a strictly wider signed kind. Everything else
// (narrowing, signed→unsigned) can wrap and keeps no bound.
func convExact(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	dw, dsigned, ok := intWidth(dst)
	if !ok {
		return false
	}
	sw, ssigned, ok := intWidth(src)
	if !ok {
		return false
	}
	switch {
	case ssigned == dsigned:
		return dw >= sw
	case !ssigned && dsigned:
		return dw > sw
	}
	return false
}

// intWidth classifies an integer kind by bit width and signedness under the
// module's 64-bit-only build targets.
func intWidth(t types.Type) (width int, signed, ok bool) {
	b, isBasic := t.Underlying().(*types.Basic)
	if !isBasic {
		return 0, false, false
	}
	switch b.Kind() {
	case types.Int8:
		return 8, true, true
	case types.Int16:
		return 16, true, true
	case types.Int32:
		return 32, true, true
	case types.Int, types.Int64:
		return 64, true, true
	case types.Uint8:
		return 8, false, true
	case types.Uint16:
		return 16, false, true
	case types.Uint32:
		return 32, false, true
	case types.Uint, types.Uint64, types.Uintptr:
		return 64, false, true
	}
	return 0, false, false
}

// pureChain reports whether e is an ident/selector chain without calls or
// indexing — safe to name as a symbol.
func (ii *intervalInterp) pureChain(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return true
		case *ast.SelectorExpr:
			e = x.X
		default:
			return false
		}
	}
}

// assign records v := value in a cloned environment, killing symbols the
// write invalidates.
func (ii *intervalInterp) transferNode(env intervalEnv, n ast.Node) intervalEnv {
	switch s := n.(type) {
	case *ast.AssignStmt:
		return ii.transferAssign(env, s)
	case *ast.IncDecStmt:
		if v := ii.varOf(s.X); v != nil {
			env = env.clone()
			env = ii.killMentions(env, v.Name())
			delta := constIval(1)
			if s.Tok == token.DEC {
				delta = constIval(-1)
			}
			cur, ok := env[v]
			if !ok {
				cur = unboundedIval()
			}
			env[v] = ivalAdd(cur, delta)
		}
		return env
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return env
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v, _ := ii.info.Defs[name].(*types.Var)
				if v == nil {
					continue
				}
				env = env.clone()
				env = ii.killMentions(env, v.Name())
				switch {
				case i < len(vs.Values):
					env[v] = ii.eval(env, vs.Values[i])
				case vs.Type != nil && isIntegerVar(v):
					env[v] = constIval(0) // zero value
				}
			}
		}
		return env
	}
	return env
}

func (ii *intervalInterp) transferAssign(env intervalEnv, s *ast.AssignStmt) intervalEnv {
	env = env.clone()
	// Invalidate symbols that mention any written base variable: an
	// assignment to v changes len(v), v.Stride, ...
	for _, lhs := range s.Lhs {
		if base := rootIdent(lhs); base != nil {
			env = ii.killMentions(env, base.Name)
		}
	}
	if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				if v := ii.varOf(lhs); v != nil && isIntegerVar(v) {
					env[v] = ii.eval(env, s.Rhs[i])
				} else if v := ii.varOf(lhs); v != nil {
					delete(env, v)
				}
			}
		} else {
			for _, lhs := range s.Lhs {
				if v := ii.varOf(lhs); v != nil {
					delete(env, v)
				}
			}
		}
		return env
	}
	// Compound assignment on a single variable.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		v := ii.varOf(s.Lhs[0])
		if v == nil || !isIntegerVar(v) {
			return env
		}
		cur, ok := env[v]
		if !ok {
			cur = unboundedIval()
		}
		rhs := ii.eval(env, s.Rhs[0])
		switch s.Tok {
		case token.ADD_ASSIGN:
			env[v] = ivalAdd(cur, rhs)
		case token.SUB_ASSIGN:
			env[v] = ivalSub(cur, rhs)
		case token.MUL_ASSIGN:
			env[v] = ivalMul(cur, rhs, ii.pr)
		default:
			delete(env, v)
		}
	}
	return env
}

// killMentions drops every interval whose bounds reference an atom that
// mentions name as a syntactic token (len(v), v.Stride, (len(v))/(s), …).
func (ii *intervalInterp) killMentions(env intervalEnv, name string) intervalEnv {
	mentions := func(p poly) bool {
		for k := range p {
			if k == "" {
				continue
			}
			if atomMentions(k, name) {
				return true
			}
		}
		return false
	}
	for v, iv := range env {
		if (iv.hasLo && mentions(iv.lo)) || (iv.hasHi && mentions(iv.hi)) {
			delete(env, v)
		}
	}
	return env
}

// atomMentions reports whether identifier name occurs in the atom string
// at a token boundary.
func atomMentions(atom, name string) bool {
	for i := 0; i+len(name) <= len(atom); i++ {
		if atom[i:i+len(name)] != name {
			continue
		}
		beforeOK := i == 0 || !isWordByte(atom[i-1])
		after := i + len(name)
		afterOK := after == len(atom) || !isWordByte(atom[after])
		if beforeOK && afterOK {
			return true
		}
	}
	return false
}

func isWordByte(b byte) bool {
	return b == '_' || ('0' <= b && b <= '9') || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z')
}

// refineCond narrows env under cond being true (holds) or false.
func (ii *intervalInterp) refineCond(env intervalEnv, cond ast.Expr, holds bool) intervalEnv {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return env
	}
	op := bin.Op
	if !holds {
		switch op {
		case token.LSS:
			op = token.GEQ
		case token.LEQ:
			op = token.GTR
		case token.GTR:
			op = token.LEQ
		case token.GEQ:
			op = token.LSS
		case token.EQL:
			op = token.NEQ
		case token.NEQ:
			op = token.EQL
		default:
			return env
		}
	}
	env = ii.refineRel(env, bin.X, op, bin.Y)
	// Mirror for the right operand: x OP y ⇒ y (flip OP) x.
	flip := map[token.Token]token.Token{
		token.LSS: token.GTR, token.LEQ: token.GEQ,
		token.GTR: token.LSS, token.GEQ: token.LEQ,
		token.EQL: token.EQL, token.NEQ: token.NEQ,
	}
	if f, ok := flip[op]; ok {
		env = ii.refineRel(env, bin.Y, f, bin.X)
	}
	return env
}

// refineRel narrows the interval of lhs (when it is a variable) under
// lhs OP rhs.
func (ii *intervalInterp) refineRel(env intervalEnv, lhs ast.Expr, op token.Token, rhs ast.Expr) intervalEnv {
	v := ii.varOf(lhs)
	if v == nil || !isIntegerVar(v) {
		return env
	}
	r := ii.eval(env, rhs)
	cur, ok := env[v]
	if !ok {
		cur = unboundedIval()
	}
	setHi := func(p poly) {
		if !cur.hasHi || !ii.pr.leq(cur.hi, p) {
			cur.hi, cur.hasHi = p, true
		}
	}
	setLo := func(p poly) {
		if !cur.hasLo || !ii.pr.leq(p, cur.lo) {
			cur.lo, cur.hasLo = p, true
		}
	}
	switch op {
	case token.LSS:
		if r.hasHi {
			if hi, ok := polySub(r.hi, polyConst(1)); ok {
				setHi(hi)
			}
		}
	case token.LEQ:
		if r.hasHi {
			setHi(r.hi)
		}
	case token.GTR:
		if r.hasLo {
			if lo, ok := polyAdd(r.lo, polyConst(1)); ok {
				setLo(lo)
			}
		}
	case token.GEQ:
		if r.hasLo {
			setLo(r.lo)
		}
	case token.EQL:
		if r.hasHi {
			setHi(r.hi)
		}
		if r.hasLo {
			setLo(r.lo)
		}
	default:
		return env
	}
	env = env.clone()
	env[v] = cur
	return env
}

// isIntegerVar reports whether v has an integer (or untyped int) type.
func isIntegerVar(v *types.Var) bool {
	basic, ok := v.Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// rootIdent walks to the base identifier of an lvalue/selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
