package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Interprocedural layer, part 1: the module-internal call graph.
//
// A Program is the whole-run view over every package the loader has
// type-checked: one FuncInfo per declared function/method and per function
// literal, connected by resolved call edges. Resolution is CHA-style over
// the existing go/types info:
//
//   - direct calls (idents, package-qualified names, concrete-receiver
//     methods) resolve to their single definition;
//   - interface method calls fan out to every module-internal method with
//     the same name whose receiver type implements the interface;
//   - calls through function values (the Options callback fields, worker
//     closures handed to pool.forRange, ...) fan out to every function
//     ever stored into that variable, field or parameter, collected by a
//     whole-program store/argument-binding pass.
//
// Edges carry their kind: Dyn marks function-value dispatch (a "may call
// one of these" set, excluded from must-not-allocate propagation), Spawn
// marks go statements. Calls the graph cannot resolve (standard library,
// method values, channels of closures) simply contribute no edge; the
// summary layer treats them pessimistically where it matters (purity).
type Program struct {
	modPath string
	pkgs    []*Package

	funcs map[*types.Func]*FuncInfo
	lits  map[*ast.FuncLit]*FuncInfo
	all   []*FuncInfo // stable (package dir, file, position) order

	// varFuncs is the function-value tracking table: every function or
	// literal ever stored into a variable, struct field or parameter.
	varFuncs map[*types.Var][]*FuncInfo

	sccs  [][]*FuncInfo // Tarjan output, callee-first (bottom-up) order
	reach map[*FuncInfo]bool

	// Ceiling-taint state (see summary.go).
	fieldCeil map[*types.Var]bool
	paramCeil map[*types.Var]bool

	results    map[*types.Func]*resultSummary
	resultBusy map[*types.Func]bool
	localCeil  map[*FuncInfo]map[*types.Var]bool

	// Concurrency topology (see goroutine.go).
	spawns    map[*FuncInfo][]*SpawnSite
	spawnTgt  map[*FuncInfo]bool
	concLit   map[*FuncInfo]bool
	freeVars  map[*FuncInfo][]*types.Var
	handoff   map[*FuncInfo]map[*types.Var]bool
	acquires  map[*FuncInfo]map[string]bool
	lockExits map[*FuncInfo]map[string]int
}

// FuncInfo is one function in the Program: a declared function or method
// (Fn != nil) or a function literal (Lit != nil).
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *Package
	Body *ast.BlockStmt
	Sig  *types.Signature

	Edges []CallEdge

	// Bottom-up summaries over the SCC condensation (see summary.go).
	Polls     bool // may reach a cancellation poll (ctx.Err/ctx.Done)
	Allocates bool // may make() or append onto a fresh slice (static paths)
	Spawns    bool // contains (or reaches) a go statement
	Pure      bool // no observable side effects on caller-visible state
	Ceiling   bool // result may carry a ceiling-scale int64 (see taint)

	// Concurrency summaries (see goroutine.go): lock keys this function may
	// acquire (template form, sorted), and per-parameter channel/WaitGroup
	// operations it (or a helper it hands the parameter to) performs.
	Acquires []string
	ChanOps  map[int]ChanOps
	WGOps    map[int]WGOps

	pollsBase  bool
	allocBase  bool
	spawnBase  bool
	impureBase bool

	// Tarjan scratch.
	index, lowlink int
	onStack        bool
}

// Name returns a human-readable identifier for diagnostics.
func (fi *FuncInfo) Name() string {
	if fi.Fn != nil {
		return fi.Fn.Name()
	}
	return "func literal"
}

// CallEdge is one resolved call site target.
type CallEdge struct {
	To    *FuncInfo
	Dyn   bool // dispatched through a tracked function value
	Spawn bool // via a go statement
}

// Program returns the interprocedural view over every package loaded so
// far, rebuilt only when new packages have been loaded since the last call.
func (l *Loader) Program() *Program {
	if l.prog != nil && l.progGen == len(l.pkgs) {
		return l.prog
	}
	dirs := make([]string, 0, len(l.pkgs))
	for d := range l.pkgs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, d := range dirs {
		if p := l.pkgs[d]; p.Info != nil {
			pkgs = append(pkgs, p)
		}
	}
	l.prog = buildProgram(l.ModPath, pkgs)
	l.progGen = len(l.pkgs)
	return l.prog
}

func buildProgram(modPath string, pkgs []*Package) *Program {
	prog := &Program{
		modPath:    modPath,
		pkgs:       pkgs,
		funcs:      make(map[*types.Func]*FuncInfo),
		lits:       make(map[*ast.FuncLit]*FuncInfo),
		varFuncs:   make(map[*types.Var][]*FuncInfo),
		reach:      make(map[*FuncInfo]bool),
		fieldCeil:  make(map[*types.Var]bool),
		paramCeil:  make(map[*types.Var]bool),
		results:    make(map[*types.Func]*resultSummary),
		resultBusy: make(map[*types.Func]bool),
		localCeil:  make(map[*FuncInfo]map[*types.Var]bool),
		spawns:     make(map[*FuncInfo][]*SpawnSite),
		spawnTgt:   make(map[*FuncInfo]bool),
		concLit:    make(map[*FuncInfo]bool),
		freeVars:   make(map[*FuncInfo][]*types.Var),
		handoff:    make(map[*FuncInfo]map[*types.Var]bool),
		acquires:   make(map[*FuncInfo]map[string]bool),
		lockExits:  make(map[*FuncInfo]map[string]int),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch d := n.(type) {
				case *ast.FuncDecl:
					fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if fn == nil || d.Body == nil {
						return true
					}
					sig, _ := fn.Type().(*types.Signature)
					fi := &FuncInfo{Fn: fn, Decl: d, Pkg: pkg, Body: d.Body, Sig: sig}
					prog.funcs[fn] = fi
					prog.all = append(prog.all, fi)
				case *ast.FuncLit:
					sig, _ := pkg.Info.Types[d].Type.(*types.Signature)
					fi := &FuncInfo{Lit: d, Pkg: pkg, Body: d.Body, Sig: sig}
					prog.lits[d] = fi
					prog.all = append(prog.all, fi)
				}
				return true
			})
		}
	}
	prog.trackFuncValues()
	for _, fi := range prog.all {
		prog.buildEdges(fi)
	}
	prog.tarjan()
	prog.summarize()
	prog.summarizeConcurrency()
	prog.findReachable()
	prog.ceilingFixpoint()
	return prog
}

// FuncsOf returns the package's functions and literals in source order.
func (prog *Program) FuncsOf(pkg *Package) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range prog.all {
		if fi.Pkg == pkg {
			out = append(out, fi)
		}
	}
	return out
}

// FuncOf maps a declared function object to its FuncInfo (nil if unknown).
func (prog *Program) FuncOf(fn *types.Func) *FuncInfo { return prog.funcs[fn] }

// LitOf maps a function literal to its FuncInfo (nil if unknown).
func (prog *Program) LitOf(lit *ast.FuncLit) *FuncInfo { return prog.lits[lit] }

// Reachable reports whether fi is reachable from a solver entry point.
func (prog *Program) Reachable(fi *FuncInfo) bool { return prog.reach[fi] }

// trackFuncValues records, for every variable/field/parameter, the set of
// functions ever stored into it: plain assignments, var declarations,
// composite-literal fields (keyed and positional), and function-typed
// arguments bound to the parameters of statically-resolved callees.
// Variable-to-variable copies (poll := func(){...}; Options{On: poll}) are
// collected as edges and resolved to a fixpoint afterwards, so the set is
// insensitive to the order stores appear in the source.
func (prog *Program) trackFuncValues() {
	copies := make(map[*types.Var][]*types.Var) // dst <- srcs
	for _, pkg := range prog.pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					if len(x.Lhs) == len(x.Rhs) {
						for i := range x.Lhs {
							prog.recordStore(info, copies, x.Lhs[i], x.Rhs[i])
						}
					}
				case *ast.ValueSpec:
					if len(x.Names) == len(x.Values) {
						for i := range x.Names {
							prog.recordStore(info, copies, x.Names[i], x.Values[i])
						}
					}
				case *ast.CompositeLit:
					prog.recordCompositeStores(info, copies, x)
				case *ast.CallExpr:
					prog.recordArgBindings(info, copies, x)
				}
				return true
			})
		}
	}
	prog.propagateCopies(copies)
}

// propagateCopies folds the functions known for each copy source into its
// destinations until nothing changes.
func (prog *Program) propagateCopies(copies map[*types.Var][]*types.Var) {
	for changed := true; changed; {
		changed = false
		for dst, srcs := range copies {
			have := make(map[*FuncInfo]bool, len(prog.varFuncs[dst]))
			for _, fi := range prog.varFuncs[dst] {
				have[fi] = true
			}
			for _, src := range srcs {
				for _, fi := range prog.varFuncs[src] {
					if !have[fi] {
						have[fi] = true
						prog.varFuncs[dst] = append(prog.varFuncs[dst], fi)
						changed = true
					}
				}
			}
		}
	}
}

func (prog *Program) recordStore(info *types.Info, copies map[*types.Var][]*types.Var, lhs ast.Expr, rhs ast.Expr) {
	v := lvalueVar(info, lhs)
	if v == nil {
		return
	}
	if tgts := prog.funcValues(info, rhs); len(tgts) > 0 {
		prog.varFuncs[v] = append(prog.varFuncs[v], tgts...)
	} else if src := funcVarRef(info, rhs); src != nil {
		copies[v] = append(copies[v], src)
	}
}

// funcVarRef resolves an expression to a function-typed variable it reads,
// for the copy-propagation pass.
func funcVarRef(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
				return v
			}
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
				return v
			}
		}
	}
	return nil
}

func (prog *Program) recordCompositeStores(info *types.Info, copies map[*types.Var][]*types.Var, cl *ast.CompositeLit) {
	tv, ok := info.Types[cl]
	if !ok {
		return
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range cl.Elts {
		if kv, isKV := el.(*ast.KeyValueExpr); isKV {
			key, isIdent := kv.Key.(*ast.Ident)
			if !isIdent {
				continue
			}
			if v, isVar := info.Uses[key].(*types.Var); isVar {
				if tgts := prog.funcValues(info, kv.Value); len(tgts) > 0 {
					prog.varFuncs[v] = append(prog.varFuncs[v], tgts...)
				} else if src := funcVarRef(info, kv.Value); src != nil {
					copies[v] = append(copies[v], src)
				}
			}
			continue
		}
		if i < st.NumFields() {
			if tgts := prog.funcValues(info, el); len(tgts) > 0 {
				prog.varFuncs[st.Field(i)] = append(prog.varFuncs[st.Field(i)], tgts...)
			} else if src := funcVarRef(info, el); src != nil {
				copies[st.Field(i)] = append(copies[st.Field(i)], src)
			}
		}
	}
}

// recordArgBindings binds function-typed arguments of statically-resolved
// calls to the callee's parameters, so later calls *through* the parameter
// resolve (the pool.forRange(n, fn) pattern).
func (prog *Program) recordArgBindings(info *types.Info, copies map[*types.Var][]*types.Var, call *ast.CallExpr) {
	tgts, dyn := prog.funTargets(info, call.Fun)
	if dyn || len(tgts) != 1 || tgts[0] == nil || tgts[0].Sig == nil {
		return
	}
	params := tgts[0].Sig.Params()
	n := params.Len()
	if tgts[0].Sig.Variadic() {
		n-- // skip the variadic tail: one param, many args
	}
	for i := 0; i < n && i < len(call.Args); i++ {
		if tgts := prog.funcValues(info, call.Args[i]); len(tgts) > 0 {
			prog.varFuncs[params.At(i)] = append(prog.varFuncs[params.At(i)], tgts...)
		} else if src := funcVarRef(info, call.Args[i]); src != nil {
			copies[params.At(i)] = append(copies[params.At(i)], src)
		}
	}
}

// funcValues resolves an expression to the function values it may denote:
// what funcValue sees directly, plus — for a call with a single static
// target returning one function-typed result — the functions returned by
// the callee's return statements. That is how a constructed callback
// (OnProgress: progressPrinter(w, d)) connects to the literal inside the
// constructor.
func (prog *Program) funcValues(info *types.Info, e ast.Expr) []*FuncInfo {
	if tgt := prog.funcValue(info, e); tgt != nil {
		return []*FuncInfo{tgt}
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if tv, ok := info.Types[call]; !ok || tv.Type == nil {
		return nil
	} else if _, isSig := tv.Type.Underlying().(*types.Signature); !isSig {
		return nil
	}
	tgts, dyn := prog.funTargets(info, call.Fun)
	if dyn || len(tgts) != 1 || tgts[0] == nil || tgts[0].Body == nil {
		return nil
	}
	var out []*FuncInfo
	inspectShallow(tgts[0].Body, func(n ast.Node) bool {
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		for _, res := range ret.Results {
			if tgt := prog.funcValue(tgts[0].Pkg.Info, res); tgt != nil {
				out = append(out, tgt)
			}
		}
		return true
	})
	return out
}

// funcValue resolves an expression to the FuncInfo it denotes as a value:
// a function literal, or a reference to a declared function.
func (prog *Program) funcValue(info *types.Info, e ast.Expr) *FuncInfo {
	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return prog.lits[x]
	case *ast.Ident:
		if fn, ok := info.Uses[x].(*types.Func); ok {
			return prog.funcs[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
			return prog.funcs[fn]
		}
	}
	return nil
}

// lvalueVar resolves an assignment target to the variable it writes: a
// plain identifier, a struct field selector, or a package-level variable.
func lvalueVar(info *types.Info, lhs ast.Expr) *types.Var {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := info.Defs[x]
		if obj == nil {
			obj = info.Uses[x]
		}
		v, _ := obj.(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// buildEdges resolves every call site directly inside fi's body (nested
// function literals are their own nodes and get their own walk).
func (prog *Program) buildEdges(fi *FuncInfo) {
	info := fi.Pkg.Info
	spawned := make(map[*ast.CallExpr]bool)
	type edgeKey struct {
		to    *FuncInfo
		dyn   bool
		spawn bool
	}
	seen := make(map[edgeKey]bool)
	add := func(call *ast.CallExpr, spawn bool) {
		tgts, dyn := prog.funTargets(info, call.Fun)
		for _, t := range tgts {
			if t == nil {
				continue
			}
			k := edgeKey{t, dyn, spawn}
			if seen[k] {
				continue
			}
			seen[k] = true
			fi.Edges = append(fi.Edges, CallEdge{To: t, Dyn: dyn, Spawn: spawn})
		}
	}
	inspectShallow(fi.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			spawned[x.Call] = true
			add(x.Call, true)
		case *ast.CallExpr:
			if !spawned[x] {
				add(x, false)
			}
		}
		return true
	})
}

// funTargets resolves the callee expression of a call. dyn reports the
// set came from function-value tracking (may-call, not must-call).
func (prog *Program) funTargets(info *types.Info, fun ast.Expr) (tgts []*FuncInfo, dyn bool) {
	switch x := ast.Unparen(fun).(type) {
	case *ast.FuncLit:
		return []*FuncInfo{prog.lits[x]}, false
	case *ast.IndexExpr: // generic instantiation f[T](...)
		return prog.funTargets(info, x.X)
	case *ast.IndexListExpr:
		return prog.funTargets(info, x.X)
	case *ast.Ident:
		switch obj := info.Uses[x].(type) {
		case *types.Func:
			return []*FuncInfo{prog.funcs[obj]}, false
		case *types.Var:
			return prog.varFuncs[obj], true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				fn, _ := sel.Obj().(*types.Func)
				if fn == nil {
					return nil, false
				}
				if iface, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					return prog.chaTargets(iface, fn.Name()), false
				}
				return []*FuncInfo{prog.funcs[fn]}, false
			case types.FieldVal:
				if v, isVar := sel.Obj().(*types.Var); isVar {
					return prog.varFuncs[v], true
				}
			}
			return nil, false
		}
		// Package-qualified reference: pkg.Fn or pkg.Var.
		switch obj := info.Uses[x.Sel].(type) {
		case *types.Func:
			return []*FuncInfo{prog.funcs[obj]}, false
		case *types.Var:
			return prog.varFuncs[obj], true
		}
	}
	return nil, false
}

// chaTargets is class-hierarchy analysis for an interface method call:
// every module-internal method with the same name whose receiver type
// (or its pointer) implements the interface.
func (prog *Program) chaTargets(iface *types.Interface, name string) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range prog.all {
		if fi.Fn == nil || fi.Sig == nil || fi.Sig.Recv() == nil || fi.Fn.Name() != name {
			continue
		}
		rt := fi.Sig.Recv().Type()
		if types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface) {
			out = append(out, fi)
		}
	}
	return out
}

// tarjan computes strongly-connected components of the call graph in
// callee-first order: when an SCC is emitted, every SCC it calls into has
// already been emitted, so bottom-up summary propagation can walk prog.sccs
// front to back (iterating only within each SCC for recursion).
func (prog *Program) tarjan() {
	index := 1
	var stack []*FuncInfo
	var strongconnect func(fi *FuncInfo)
	strongconnect = func(fi *FuncInfo) {
		fi.index, fi.lowlink = index, index
		index++
		stack = append(stack, fi)
		fi.onStack = true
		for _, e := range fi.Edges {
			w := e.To
			switch {
			case w.index == 0:
				strongconnect(w)
				if w.lowlink < fi.lowlink {
					fi.lowlink = w.lowlink
				}
			case w.onStack:
				if w.index < fi.lowlink {
					fi.lowlink = w.index
				}
			}
		}
		if fi.lowlink == fi.index {
			var scc []*FuncInfo
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				scc = append(scc, w)
				if w == fi {
					break
				}
			}
			prog.sccs = append(prog.sccs, scc)
		}
	}
	for _, fi := range prog.all {
		if fi.index == 0 {
			strongconnect(fi)
		}
	}
}

// findReachable marks every function reachable from a solver entry point:
// an exported function of a non-main package that imports the interrupt
// package and either is named Solve* or takes a context.Context. These are
// exactly the API points whose documented contract promises cancellation.
func (prog *Program) findReachable() {
	interruptPath := prog.modPath + "/internal/interrupt"
	importsInterrupt := make(map[*Package]bool)
	for _, pkg := range prog.pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, imp := range pkg.Types.Imports() {
			if imp.Path() == interruptPath {
				importsInterrupt[pkg] = true
			}
		}
	}
	var work []*FuncInfo
	for _, fi := range prog.all {
		if fi.Fn == nil || !fi.Fn.Exported() || fi.Pkg.IsCommand() || !importsInterrupt[fi.Pkg] {
			continue
		}
		if strings.HasPrefix(fi.Fn.Name(), "Solve") || hasContextParam(fi.Sig) {
			prog.reach[fi] = true
			work = append(work, fi)
		}
	}
	for len(work) > 0 {
		fi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range fi.Edges {
			if !prog.reach[e.To] {
				prog.reach[e.To] = true
				work = append(work, e.To)
			}
		}
	}
}

func hasContextParam(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
