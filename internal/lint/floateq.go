package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEquality flags == and != between floating-point expressions in
// non-test library code. Accumulated costs and improvement ratios are
// float64; exact comparison of computed floats is almost always a rounding
// bug. Two escapes are deliberate:
//
//   - comparison against a literal 0: the zero value is the idiomatic
//     "option not set" sentinel in config structs, and 0.0 is exactly
//     representable;
//   - comparisons inside tolerance helpers, recognized by an approx/almost/
//     near/tol/exact fragment in the enclosing function name, which exist
//     precisely to centralize the tolerance logic.
var FloatEquality = &Analyzer{
	Name:       "float-equality",
	Doc:        "no ==/!= between floats outside tolerance helpers (literal 0 sentinel allowed)",
	NeedsTypes: true,
	Run: func(p *Pass) {
		info := p.Pkg.Info
		for _, f := range p.Files() {
			for _, decl := range f.Decls {
				funcName := ""
				if fd, ok := decl.(*ast.FuncDecl); ok {
					funcName = fd.Name.Name
				}
				if isToleranceHelper(funcName) {
					continue
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					bin, ok := n.(*ast.BinaryExpr)
					if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
						return true
					}
					if !isFloat(info, bin.X) || !isFloat(info, bin.Y) {
						return true
					}
					if isZeroLiteral(bin.X) || isZeroLiteral(bin.Y) {
						return true
					}
					p.Reportf(bin.OpPos, "%s between float expressions; compare with an explicit tolerance", bin.Op)
					return true
				})
			}
		}
	},
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isZeroLiteral matches the literals 0 and 0.0 (possibly parenthesized or
// negated — -0.0 is still exact).
func isZeroLiteral(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok {
		return false
	}
	switch lit.Value {
	case "0", "0.0", "0.", ".0":
		return true
	}
	return false
}

func isToleranceHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range []string{"approx", "almost", "near", "tol", "exact"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}
