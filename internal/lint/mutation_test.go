package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The negative controls: the interprocedural analyzers must notice when the
// real repository's safety idioms are removed. Each test copies one package
// into a fresh directory, applies one textual mutation, and lints the copy —
// the module-internal imports still resolve against the real repository, so
// the copy type-checks exactly like the original.

// copyPkg copies the non-test sources of the package at relDir (relative to
// this directory) into a temp directory, applying mutate to each file's
// contents.
func copyPkg(t *testing.T, relDir string, mutate func(string) string) string {
	t.Helper()
	src := filepath.Join(strings.Split(relDir, "/")...)
	dir := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(mutate(string(data))), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// copyQBP copies qbp's non-test sources into a temp directory, applying
// mutate to each file's contents.
func copyQBP(t *testing.T, mutate func(string) string) string {
	t.Helper()
	return copyPkg(t, "../qbp", mutate)
}

// mutated wraps a single-occurrence replacement and fails the test when the
// anchor text is missing, so silently-rotted mutations cannot pass.
func mutated(t *testing.T, old, new string) func(string) string {
	t.Helper()
	hit := false
	t.Cleanup(func() {
		if !hit {
			t.Fatalf("mutation anchor %q not found in copied sources", old)
		}
	})
	return func(s string) string {
		out := strings.Replace(s, old, new, 1)
		if out != s {
			hit = true
		}
		return out
	}
}

// scanMutation fails on type-check errors and reports whether analyzer fired.
func scanMutation(t *testing.T, diags []Diagnostic, analyzer string) bool {
	t.Helper()
	fired := false
	for _, d := range diags {
		if d.Analyzer == "typecheck" {
			t.Fatalf("mutated copy failed to type-check: %s", d.Message)
		}
		if d.Analyzer == analyzer {
			fired = true
		}
	}
	return fired
}

// requireExactly asserts the intended analyzer fired and that the mutation
// did not wake any other analyzer — each dropped idiom has one diagnosis.
func requireExactly(t *testing.T, diags []Diagnostic, analyzer string) {
	t.Helper()
	if !scanMutation(t, diags, analyzer) {
		t.Errorf("%s silent on mutated copy: %v", analyzer, keys(diags))
	}
	for _, d := range diags {
		if d.Analyzer != analyzer {
			t.Errorf("mutation woke %s besides %s: %v", d.Analyzer, analyzer, keys(diags))
			return
		}
	}
}

// TestMutationControl pins the baseline: an unmutated copy is lint-clean,
// so any finding in the tests below is caused by the mutation alone.
func TestMutationControl(t *testing.T) {
	dir := copyQBP(t, func(s string) string { return s })
	if diags := runFixture(t, dir); len(diags) != 0 {
		t.Errorf("unmutated qbp copy not clean: %v", keys(diags))
	}
}

// TestMutationCancelPoll deletes the Checker polls from the solver loops;
// cancel-poll must report the now-unguarded loops.
func TestMutationCancelPoll(t *testing.T) {
	dir := copyQBP(t, func(s string) string {
		return strings.ReplaceAll(s, "s.ck.Now()", "false")
	})
	diags := runFixture(t, dir)
	if !scanMutation(t, diags, "cancel-poll") {
		t.Errorf("cancel-poll silent after removing solver polls: %v", keys(diags))
	}
}

// TestMutationIntOverflow replaces one satAdd call site with a raw +;
// int-overflow must report the unguarded ceiling-scale addition.
func TestMutationIntOverflow(t *testing.T) {
	dir := copyQBP(t, mutated(t, "tot = satAdd(tot, span)", "tot = tot + span"))
	diags := runFixture(t, dir)
	if !scanMutation(t, diags, "int-overflow") {
		t.Errorf("int-overflow silent after replacing satAdd with +: %v", keys(diags))
	}
}

// TestMutationQbpartControl pins the second mutation substrate: the qbpart
// command (whose progress printer is invoked concurrently from the solver's
// workers) lints clean before any mutation.
func TestMutationQbpartControl(t *testing.T) {
	dir := copyPkg(t, "../../cmd/qbpart", func(s string) string { return s })
	if diags := runFixture(t, dir); len(diags) != 0 {
		t.Errorf("unmutated qbpart copy not clean: %v", keys(diags))
	}
}

// TestMutationDropLock deletes the real mu.Lock() guarding the progress
// printer's rate limiter. The callback literal is spawned (through the
// facade's OnProgress field) from every multistart worker, so the now
// lock-free `last = now` write must trip lockset-race — and nothing else.
func TestMutationDropLock(t *testing.T) {
	dir := copyPkg(t, "../../cmd/qbpart", mutated(t, "\t\tmu.Lock()\n", ""))
	requireExactly(t, runFixture(t, dir), "lockset-race")
}

// TestMutationDropClose deletes the multistart feed's close(jobs). The
// workers range over jobs, so the missing close means they never terminate;
// chan-protocol must report the range — and nothing else.
func TestMutationDropClose(t *testing.T) {
	dir := copyQBP(t, mutated(t, "\tclose(jobs)\n", ""))
	requireExactly(t, runFixture(t, dir), "chan-protocol")
}

// TestMutationDropDone deletes the multistart worker's deferred wg.Done().
// Every wg.Add(1) is then unmatched and the trailing Wait deadlocks;
// wg-balance must report the Add — and nothing else.
func TestMutationDropDone(t *testing.T) {
	dir := copyQBP(t, mutated(t,
		"defer wg.Done()\n\t\t\tsc := newScratch(p.M(), p.N())",
		"sc := newScratch(p.M(), p.N())"))
	requireExactly(t, runFixture(t, dir), "wg-balance")
}

// binaryGrowthProbe rides along with the textio copy: it pushes a
// hostile-header-scale count through initialCap and scales the result by a
// per-record width, the exact shape of the binary readers' section
// allocations. With the growth bound intact the product is provably small;
// without it the bound is the attacker's and the arithmetic is unbounded.
const binaryGrowthProbe = `package textio

// capProbeBytes is the lint probe for the allocation-growth cap: the
// up-front byte budget of a section must stay header-independent.
func capProbeBytes() int64 {
	hostile := int64(1) << 62 // what a forged header may declare
	capped := int64(initialCap(int(hostile)))
	return capped * 16
}
`

// copyTextio copies internal/textio plus the growth probe.
func copyTextio(t *testing.T, mutate func(string) string) string {
	t.Helper()
	dir := copyPkg(t, "../textio", mutate)
	if err := os.WriteFile(filepath.Join(dir, "probe_lint.go"), []byte(binaryGrowthProbe), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestMutationGrowthCapControl: with the stream-backed growth bound in
// place, the probe's allocation math is certified by initialCap's result
// summary (through the int()/int64() conversions) and the copy is clean.
func TestMutationGrowthCapControl(t *testing.T) {
	dir := copyTextio(t, func(s string) string { return s })
	if diags := runFixture(t, dir); len(diags) != 0 {
		t.Errorf("unmutated textio copy with probe not clean: %v", keys(diags))
	}
}

// TestMutationGrowthCap removes initialCap's bound, reducing it to the
// identity: a hostile header then dictates the up-front allocation, and
// int-overflow must report the probe's unbounded scaling.
func TestMutationGrowthCap(t *testing.T) {
	dir := copyTextio(t, mutated(t,
		"if count > 1<<20 {\n\t\treturn 1 << 20\n\t}\n\treturn count",
		"return count"))
	diags := runFixture(t, dir)
	if !scanMutation(t, diags, "int-overflow") {
		t.Errorf("int-overflow silent after removing the growth bound: %v", keys(diags))
	}
}
