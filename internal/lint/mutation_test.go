package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The negative controls: the interprocedural analyzers must notice when the
// real solver's safety idioms are removed. Each test copies the qbp package
// into a fresh directory, applies one textual mutation, and lints the copy —
// the module-internal imports still resolve against the real repository, so
// the copy type-checks exactly like the original.

// copyQBP copies qbp's non-test sources into a temp directory, applying
// mutate to each file's contents.
func copyQBP(t *testing.T, mutate func(string) string) string {
	t.Helper()
	src := filepath.Join("..", "qbp")
	dir := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(mutate(string(data))), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// scanMutation fails on type-check errors and reports whether analyzer fired.
func scanMutation(t *testing.T, diags []Diagnostic, analyzer string) bool {
	t.Helper()
	fired := false
	for _, d := range diags {
		if d.Analyzer == "typecheck" {
			t.Fatalf("mutated copy failed to type-check: %s", d.Message)
		}
		if d.Analyzer == analyzer {
			fired = true
		}
	}
	return fired
}

// TestMutationControl pins the baseline: an unmutated copy is lint-clean,
// so any finding in the tests below is caused by the mutation alone.
func TestMutationControl(t *testing.T) {
	dir := copyQBP(t, func(s string) string { return s })
	if diags := runFixture(t, dir); len(diags) != 0 {
		t.Errorf("unmutated qbp copy not clean: %v", keys(diags))
	}
}

// TestMutationCancelPoll deletes the Checker polls from the solver loops;
// cancel-poll must report the now-unguarded loops.
func TestMutationCancelPoll(t *testing.T) {
	dir := copyQBP(t, func(s string) string {
		return strings.ReplaceAll(s, "s.ck.Now()", "false")
	})
	diags := runFixture(t, dir)
	if !scanMutation(t, diags, "cancel-poll") {
		t.Errorf("cancel-poll silent after removing solver polls: %v", keys(diags))
	}
}

// TestMutationIntOverflow replaces one satAdd call site with a raw +;
// int-overflow must report the unguarded ceiling-scale addition.
func TestMutationIntOverflow(t *testing.T) {
	mutated := false
	dir := copyQBP(t, func(s string) string {
		out := strings.Replace(s, "tot = satAdd(tot, span)", "tot = tot + span", 1)
		if out != s {
			mutated = true
		}
		return out
	})
	if !mutated {
		t.Fatal("mutation target `tot = satAdd(tot, span)` not found in qbp sources")
	}
	diags := runFixture(t, dir)
	if !scanMutation(t, diags, "int-overflow") {
		t.Errorf("int-overflow silent after replacing satAdd with +: %v", keys(diags))
	}
}
