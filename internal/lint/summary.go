package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// Interprocedural layer, part 2: bottom-up function summaries.
//
// Boolean summaries (Polls, Allocates, Spawns, Pure) are propagated over
// the SCC condensation in callee-first order, iterating inside each SCC to
// a fixpoint so recursion converges. Polls/Allocates/Spawns take the least
// fixpoint from false (a fact must be witnessed by some path); Pure takes
// the greatest fixpoint from the local base (a recursive cycle with no
// impure statement stays pure).
//
// On top of the booleans sit two value-level summaries:
//
//   - ceiling taint: a whole-program fixpoint marking every variable,
//     field, parameter and result that may carry a "ceiling-scale" int64 —
//     a value derived from a constant ≥ 2^32 (MaxInt64 sentinels,
//     AutoPenaltyCeiling, Theorem-1 U) through +, -, *, <<. The int-overflow
//     analyzer flags raw arithmetic on such values. Element reads and
//     writes through an index expression deliberately launder taint: the
//     coupling kernels store *clamped* values into slices, so a slice
//     element is at most AutoPenaltyCeiling and a bounded sum of them
//     cannot overflow — this boundary is what keeps the η kernels clean.
//
//   - result intervals: for a single-int-result function, the symbolic
//     interval of its return value expressed over parameter atoms ($n,
//     len($xs)), computed by running the intraprocedural interval dataflow
//     over the callee body and joining at returns. Call sites substitute
//     argument intervals for the atoms, which is how flat-bounds proves
//     indices across call boundaries and int-overflow certifies results
//     like satAdd's hi = AutoPenaltyCeiling.

// scanBase computes the local (non-transitive) facts of one function.
func (prog *Program) scanBase(fi *FuncInfo) {
	info := fi.Pkg.Info
	impure := false
	inspectShallow(fi.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isPollCall(info, x) {
				fi.pollsBase = true
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				switch {
				case id.Name == "make":
					fi.allocBase = true
				case id.Name == "append" && len(x.Args) > 0 && freshSliceBase(x.Args[0]):
					fi.allocBase = true
				}
			}
			if !impure && !prog.callIsEffectFree(info, x) {
				impure = true
			}
		case *ast.GoStmt:
			fi.spawnBase = true
			impure = true
		case *ast.DeferStmt:
			impure = true
		case *ast.SendStmt:
			impure = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW { // channel receive consumes shared state
				impure = true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if !localScalarWrite(info, fi, lhs) {
					impure = true
				}
			}
		case *ast.IncDecStmt:
			if !localScalarWrite(info, fi, x.X) {
				impure = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					impure = true
				}
			}
		}
		return true
	})
	fi.impureBase = impure
	fi.Pure = !impure // refined downward by summarize
}

// localScalarWrite reports lhs is a plain identifier naming a variable
// declared inside fi — the only write shape with no caller-visible effect.
// Index, star and selector stores may alias caller memory and count as
// impure; so do writes to captured or package-level variables.
func localScalarWrite(info *types.Info, fi *FuncInfo, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return fi.spanContains(v.Pos())
}

// spanContains reports whether pos lies inside the function's source span
// (including the parameter list, so parameter writes count as local).
func (fi *FuncInfo) spanContains(pos token.Pos) bool {
	if fi.Decl != nil {
		return pos >= fi.Decl.Pos() && pos <= fi.Decl.End()
	}
	if fi.Lit != nil {
		return pos >= fi.Lit.Pos() && pos <= fi.Lit.End()
	}
	return false
}

// callIsEffectFree reports a call that cannot mutate caller-visible state:
// an effect-free builtin, a type conversion, or a statically-resolved
// module function (whose own purity the SCC fixpoint folds in afterwards).
func (prog *Program) callIsEffectFree(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "make", "new", "min", "max", "append":
				return true
			}
			return false // copy, delete, close, panic, print, recover, clear
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return true // conversion
	}
	tgts, dyn := prog.funTargets(info, fun)
	if dyn || len(tgts) == 0 {
		return false // function value or unresolved (stdlib) call
	}
	for _, t := range tgts {
		if t == nil {
			return false
		}
	}
	return true // transitive purity folded in by summarize
}

// isPollCall reports a direct cancellation poll: a method call Err or Done
// on a context.Context value. interrupt.Checker.Stop and .Now poll through
// their own bodies (they call c.ctx.Err()), so they need no axiom — the
// transitive closure reaches them like any other helper.
func isPollCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name := sel.Sel.Name; name != "Err" && name != "Done" {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return isContextType(s.Recv())
}

// summarize propagates the boolean summaries bottom-up over prog.sccs.
func (prog *Program) summarize() {
	for _, fi := range prog.all {
		prog.scanBase(fi)
	}
	for _, scc := range prog.sccs {
		for {
			changed := false
			for _, fi := range scc {
				polls := fi.pollsBase
				allocs := fi.allocBase
				spawns := fi.spawnBase
				pure := !fi.impureBase
				for _, e := range fi.Edges {
					polls = polls || e.To.Polls
					spawns = spawns || e.To.Spawns
					pure = pure && e.To.Pure
					if !e.Dyn {
						// Dynamic dispatch is a may-call set; charging every
						// tracked closure's allocations to every caller of the
						// dispatching helper (pool.forRange) would drown the
						// hotalloc signal, so Allocates follows static edges.
						allocs = allocs || e.To.Allocates
					}
				}
				if polls != fi.Polls || allocs != fi.Allocates || spawns != fi.Spawns || pure != fi.Pure {
					fi.Polls, fi.Allocates, fi.Spawns, fi.Pure = polls, allocs, spawns, pure
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// ceilingScale is the taint threshold: any int64 constant at or above 2^32
// is "ceiling-scale". AutoPenaltyCeiling (≈ 5.5·10^11), Theorem-1 U on
// large instances, and the MaxInt64 sentinels all clear it; component
// weights, wire counts and partition capacities never come close.
const ceilingScale = int64(1) << 32

// ceilingFixpoint runs the whole-program taint propagation to a fixpoint:
// local variable taint feeds field stores, argument-to-parameter bindings
// and returns, which feed other functions' local taint on the next pass.
func (prog *Program) ceilingFixpoint() {
	prog.scanTopLevelVars()
	for pass := 0; pass < 32; pass++ {
		changed := false
		for _, fi := range prog.all {
			if prog.taintScan(fi) {
				changed = true
			}
		}
		if prog.scanTopLevelVars() {
			changed = true
		}
		if !changed {
			break
		}
	}
}

// scanTopLevelVars taints package-level variables initialized to
// ceiling-scale expressions.
func (prog *Program) scanTopLevelVars() bool {
	changed := false
	for _, pkg := range prog.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, name := range vs.Names {
						v, _ := pkg.Info.Defs[name].(*types.Var)
						if v == nil || prog.fieldCeil[v] {
							continue
						}
						if prog.exprCeilIn(pkg.Info, localEnv{}, vs.Values[i]) {
							prog.fieldCeil[v] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return changed
}

// taintScan recomputes fi's local taint under the current global maps and
// propagates it outward (fields, parameters, results). Reports whether any
// global fact changed.
func (prog *Program) taintScan(fi *FuncInfo) bool {
	local := prog.localTaintFixpoint(fi)
	prog.localCeil[fi] = local
	info := fi.Pkg.Info
	changed := false
	markField := func(v *types.Var) {
		if v != nil && !prog.fieldCeil[v] {
			prog.fieldCeil[v] = true
			changed = true
		}
	}
	inspectShallow(fi.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			taintingTok := x.Tok == token.ASSIGN || x.Tok == token.DEFINE ||
				x.Tok == token.ADD_ASSIGN || x.Tok == token.SUB_ASSIGN ||
				x.Tok == token.MUL_ASSIGN || x.Tok == token.SHL_ASSIGN
			if !taintingTok || len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if !prog.exprCeilIn(info, localEnv{fi, local}, x.Rhs[i]) {
					continue
				}
				lhs = ast.Unparen(lhs)
				if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
					continue // laundering boundary: element stores drop taint
				}
				if id, isIdent := lhs.(*ast.Ident); isIdent {
					if v := localTaintTarget(info, fi, id); v != nil {
						continue // already in the local set
					}
				}
				markField(lvalueVar(info, lhs))
			}
		case *ast.CompositeLit:
			prog.taintCompositeFields(info, localEnv{fi, local}, x, markField)
		case *ast.CallExpr:
			tgts, dyn := prog.funTargets(info, x.Fun)
			if dyn {
				return true
			}
			for _, t := range tgts {
				if t == nil || t.Sig == nil {
					continue
				}
				params := t.Sig.Params()
				np := params.Len()
				if t.Sig.Variadic() {
					np--
				}
				for i := 0; i < np && i < len(x.Args); i++ {
					if prog.exprCeilIn(info, localEnv{fi, local}, x.Args[i]) {
						p := params.At(i)
						if !prog.paramCeil[p] {
							prog.paramCeil[p] = true
							changed = true
						}
					}
				}
			}
		case *ast.ReturnStmt:
			if fi.Ceiling {
				return true
			}
			for _, r := range x.Results {
				if prog.exprCeilIn(info, localEnv{fi, local}, r) {
					fi.Ceiling = true
					changed = true
					break
				}
			}
			if len(x.Results) == 0 && fi.Sig != nil {
				// Naked return: taint flows through named result variables.
				res := fi.Sig.Results()
				for i := 0; i < res.Len(); i++ {
					if local[res.At(i)] {
						fi.Ceiling = true
						changed = true
						break
					}
				}
			}
		}
		return true
	})
	return changed
}

func (prog *Program) taintCompositeFields(info *types.Info, env localEnv, cl *ast.CompositeLit, markField func(*types.Var)) {
	tv, ok := info.Types[cl]
	if !ok {
		return
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range cl.Elts {
		if kv, isKV := el.(*ast.KeyValueExpr); isKV {
			key, isIdent := kv.Key.(*ast.Ident)
			if !isIdent || !prog.exprCeilIn(info, env, kv.Value) {
				continue
			}
			if v, isVar := info.Uses[key].(*types.Var); isVar {
				markField(v)
			}
			continue
		}
		if i < st.NumFields() && prog.exprCeilIn(info, env, el) {
			markField(st.Field(i))
		}
	}
}

// localEnv bundles a function with its local taint set for exprCeilIn.
type localEnv struct {
	fi    *FuncInfo
	local map[*types.Var]bool
}

// localTaintFixpoint computes the flow-insensitive local taint set of fi
// under the current global maps: every local variable assigned (directly
// or via +=, -=, *=, <<=) a ceiling-scale expression.
func (prog *Program) localTaintFixpoint(fi *FuncInfo) map[*types.Var]bool {
	info := fi.Pkg.Info
	local := make(map[*types.Var]bool)
	for {
		changed := false
		env := localEnv{fi, local}
		mark := func(lhs ast.Expr, rhs ast.Expr) {
			if !prog.exprCeilIn(info, env, rhs) {
				return
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				return
			}
			if v := localTaintTarget(info, fi, id); v != nil && !local[v] {
				local[v] = true
				changed = true
			}
		}
		inspectShallow(fi.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				switch x.Tok {
				case token.ASSIGN, token.DEFINE,
					token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.SHL_ASSIGN:
					if len(x.Lhs) == len(x.Rhs) {
						for i := range x.Lhs {
							mark(x.Lhs[i], x.Rhs[i])
						}
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) == len(x.Values) {
					for i := range x.Names {
						mark(x.Names[i], x.Values[i])
					}
				}
			}
			return true
		})
		if !changed {
			return local
		}
	}
}

// localTaintTarget resolves id to a variable declared within fi (captured
// and package-level variables propagate through fieldCeil instead).
func localTaintTarget(info *types.Info, fi *FuncInfo, id *ast.Ident) *types.Var {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !fi.spanContains(v.Pos()) {
		return nil
	}
	return v
}

// ExprCeil reports whether e may evaluate to a ceiling-scale int64 inside
// fi, using the converged taint state.
func (prog *Program) ExprCeil(fi *FuncInfo, e ast.Expr) bool {
	return prog.exprCeilIn(fi.Pkg.Info, localEnv{fi, prog.localCeil[fi]}, e)
}

// exprCeilIn is the taint transfer over expressions. Constants decide by
// magnitude; identifiers/fields consult the taint maps; +, -, *, << and
// sign flips propagate; integer division, shifts right, comparisons and —
// crucially — index expressions do not.
func (prog *Program) exprCeilIn(info *types.Info, env localEnv, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		val := constant.ToInt(tv.Value)
		if val.Kind() != constant.Int {
			return false
		}
		c, exact := constant.Int64Val(val)
		if !exact {
			return true // doesn't fit int64: certainly ceiling-scale
		}
		return c >= ceilingScale || c <= -ceilingScale
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return (env.local != nil && env.local[v]) || prog.paramCeil[v] || prog.fieldCeil[v]
		}
	case *ast.SelectorExpr:
		if v := lvalueVar(info, x); v != nil {
			return prog.fieldCeil[v]
		}
	case *ast.CallExpr:
		tgts, dyn := prog.funTargets(info, x.Fun)
		if dyn {
			return false
		}
		for _, t := range tgts {
			if t != nil && t.Ceiling {
				return true
			}
		}
		// Conversions preserve the operand's taint: int64(x).
		if tv, ok := info.Types[ast.Unparen(x.Fun)]; ok && tv.IsType() && len(x.Args) == 1 {
			return prog.exprCeilIn(info, env, x.Args[0])
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return prog.exprCeilIn(info, env, x.X)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.SHL:
			return prog.exprCeilIn(info, env, x.X) || prog.exprCeilIn(info, env, x.Y)
		}
	}
	return false
}

// --- result interval summaries ---------------------------------------------

// resultSummary is the symbolic interval of a function's single integer
// result, expressed over parameter atoms: "$n" for an integer parameter n,
// "len($xs)" for the length of a parameter xs that the body never
// reassigns. Bounds mentioning anything else (receiver fields, locals,
// globals) are dropped at the call site.
type resultSummary struct {
	iv        ival
	intParams map[string]int // "$name" → parameter index
	lenParams map[string]int // "len($name)" → parameter index
}

// ResultSummary computes (and memoizes) the result interval of fn, or nil
// when the function is unknown, recursive, multi-result, non-integer, or
// yields no usable bound. Soundness rides on the prover's atoms-nonnegative
// premise, so call sites must prove every integer argument ≥ 0 before
// substituting (callResultIval does).
func (prog *Program) ResultSummary(fn *types.Func) *resultSummary {
	if rs, ok := prog.results[fn]; ok {
		return rs
	}
	fi := prog.funcs[fn]
	if fi == nil || fi.Sig == nil || prog.resultBusy[fn] {
		return nil // unknown or recursive: no summary (do not cache the busy case)
	}
	res := fi.Sig.Results()
	var resultVar *types.Var
	if res.Len() == 1 {
		resultVar = res.At(0)
	}
	if resultVar == nil || !isIntegerVar(resultVar) {
		prog.results[fn] = nil
		return nil
	}
	prog.resultBusy[fn] = true
	defer delete(prog.resultBusy, fn)

	mutated := mutatedVars(fi.Pkg.Info, fi.Body)
	ii := &intervalInterp{
		info:       fi.Pkg.Info,
		pr:         newProver(),
		prog:       prog,
		paramAtoms: make(map[*types.Var]string),
		lenAtoms:   make(map[*types.Var]string),
	}
	params := fi.Sig.Params()
	for i := 0; i < params.Len(); i++ {
		v := params.At(i)
		if v.Name() == "" || v.Name() == "_" {
			continue
		}
		atom := "$" + v.Name()
		if isIntegerVar(v) {
			// Seeded into the entry environment; sound under mutation since
			// the atom denotes the entry value and transfer tracks the rest.
			ii.paramAtoms[v] = atom
		} else if !mutated[v] {
			// len($v) names the length of an unreassigned slice/map/chan
			// parameter; reassignment would silently change the quantity.
			ii.lenAtoms[v] = atom
		}
	}

	g := fi.Pkg.CFG(fi.Body)
	in := SolveForward[intervalEnv](g, intervalProblem{ii})
	var out ival
	first := true
	for _, b := range g.ReversePostorder() {
		env, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			if ret, isRet := n.(*ast.ReturnStmt); isRet {
				var iv ival
				switch {
				case len(ret.Results) == 1:
					iv = ii.eval(env, ret.Results[0])
				case len(ret.Results) == 0 && resultVar.Name() != "":
					iv = env[resultVar]
				}
				if first {
					out, first = iv, false
				} else {
					out = ivalJoin(out, iv, ii.pr)
				}
			}
			env = ii.transferNode(env, n)
		}
	}
	if first || (!out.hasLo && !out.hasHi) {
		prog.results[fn] = nil
		return nil
	}
	rs := &resultSummary{iv: out, intParams: make(map[string]int), lenParams: make(map[string]int)}
	for i := 0; i < params.Len(); i++ {
		v := params.At(i)
		if a, ok := ii.paramAtoms[v]; ok {
			rs.intParams[a] = i
		}
		if a, ok := ii.lenAtoms[v]; ok {
			rs.lenParams[lenSymbol(a)] = i
		}
	}
	prog.results[fn] = rs
	return rs
}

// callResultIval substitutes caller-side argument intervals into the
// callee's result summary. Reports ok = false when no bound survives.
func (prog *Program) callResultIval(caller *intervalInterp, env intervalEnv, call *ast.CallExpr) (ival, bool) {
	tgts, dyn := prog.funTargets(caller.info, call.Fun)
	if dyn || len(tgts) != 1 || tgts[0] == nil || tgts[0].Fn == nil || tgts[0].Sig == nil {
		return ival{}, false
	}
	fi := tgts[0]
	if fi.Sig.Variadic() {
		return ival{}, false
	}
	params := fi.Sig.Params()
	if len(call.Args) != params.Len() {
		return ival{}, false // f(g()) tuple spread
	}
	rs := prog.ResultSummary(fi.Fn)
	if rs == nil {
		return ival{}, false
	}
	argIv := make([]ival, len(call.Args))
	for i, a := range call.Args {
		argIv[i] = caller.eval(env, a)
	}
	// Atoms-nonnegative premise: the callee's derivation may have assumed
	// any of its integer parameter atoms ≥ 0.
	for _, idx := range rs.intParams {
		if !argIv[idx].hasLo || !caller.pr.ge0(argIv[idx].lo) {
			return ival{}, false
		}
	}
	subst := func(p poly, upper bool) (poly, bool) {
		out := poly{}
		// Sorted monomials: the sum is commutative, but failure (a cap hit
		// inside polyAdd/polyMul) must not depend on map iteration order.
		monos := make([]string, 0, len(p))
		for mono := range p {
			monos = append(monos, mono)
		}
		sort.Strings(monos)
		for _, mono := range monos {
			c := p[mono]
			var term poly
			if mono == "" {
				term = polyConst(c)
			} else if idx, isInt := rs.intParams[mono]; isInt {
				av := argIv[idx]
				var bp poly
				if (c > 0) == upper {
					if !av.hasHi {
						return nil, false
					}
					bp = av.hi
				} else {
					if !av.hasLo {
						return nil, false
					}
					bp = av.lo
				}
				var ok bool
				if term, ok = polyMul(bp, polyConst(c)); !ok {
					return nil, false
				}
			} else if idx, isLen := rs.lenParams[mono]; isLen {
				arg := ast.Unparen(call.Args[idx])
				if !caller.pureChain(arg) {
					return nil, false
				}
				var ok bool
				if term, ok = polyMul(polyAtom(lenSymbol(symbolFor(arg))), polyConst(c)); !ok {
					return nil, false
				}
			} else {
				return nil, false // receiver field, local, quotient, product atom
			}
			var ok bool
			if out, ok = polyAdd(out, term); !ok {
				return nil, false
			}
		}
		return out, true
	}
	var r ival
	if rs.iv.hasLo {
		if lo, ok := subst(rs.iv.lo, false); ok {
			r.lo, r.hasLo = lo, true
		}
	}
	if rs.iv.hasHi {
		if hi, ok := subst(rs.iv.hi, true); ok {
			r.hi, r.hasHi = hi, true
		}
	}
	if !r.hasLo && !r.hasHi {
		return ival{}, false
	}
	return r, true
}

// mutatedVars collects variables whose value (not element) may change in
// body: assignment or ++/-- targets, range loop variables reusing existing
// names, and address-taken variables.
func mutatedVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	mark := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if v, isVar := obj.(*types.Var); isVar {
			out[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.RangeStmt:
			mark(x.Key)
			mark(x.Value)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if base := rootIdent(x.X); base != nil {
					mark(base)
				}
			}
		}
		return true
	})
	return out
}
