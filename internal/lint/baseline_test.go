package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func baselineDiag(file, analyzer, message string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: "/mod/" + file, Line: 1},
		Analyzer: analyzer,
		Message:  message,
	}
}

func TestRatchet(t *testing.T) {
	base := &Baseline{Version: 1, Findings: []BaselineEntry{
		{File: "a.go", Analyzer: "cancel-poll", Message: "m1", Count: 2},
		{File: "b.go", Analyzer: "int-overflow", Message: "m2", Count: 1},
		{File: "c.go", Analyzer: "flat-bounds", Message: "m3", Count: 1},
	}}

	// Current run: a.go shrank to one instance, b.go unchanged, c.go fixed,
	// and d.go is brand new.
	diags := []Diagnostic{
		baselineDiag("a.go", "cancel-poll", "m1"),
		baselineDiag("b.go", "int-overflow", "m2"),
		baselineDiag("d.go", "nondet-reduce", "m4"),
	}
	out, changed := base.Ratchet(diags, "/mod")
	if !changed {
		t.Fatal("Ratchet reported no change despite a fixed and a shrunk group")
	}
	want := []BaselineEntry{
		{File: "a.go", Analyzer: "cancel-poll", Message: "m1", Count: 1},
		{File: "b.go", Analyzer: "int-overflow", Message: "m2", Count: 1},
	}
	if len(out.Findings) != len(want) {
		t.Fatalf("Findings = %+v, want %+v", out.Findings, want)
	}
	for i := range want {
		if out.Findings[i] != want[i] {
			t.Errorf("Findings[%d] = %+v, want %+v", i, out.Findings[i], want[i])
		}
	}

	// Idempotent: ratcheting the tightened baseline against the same run
	// reports no change (the new d.go finding is never absorbed).
	again, changed := out.Ratchet(diags, "/mod")
	if changed {
		t.Errorf("second Ratchet changed: %+v", again.Findings)
	}

	// A count can never grow, even when the current run has more instances.
	grown := []Diagnostic{
		baselineDiag("a.go", "cancel-poll", "m1"),
		baselineDiag("a.go", "cancel-poll", "m1"),
		baselineDiag("a.go", "cancel-poll", "m1"),
		baselineDiag("b.go", "int-overflow", "m2"),
	}
	out2, changed := out.Ratchet(grown, "/mod")
	if changed {
		t.Errorf("Ratchet changed on a superset run: %+v", out2.Findings)
	}
	if out2.Findings[0].Count != 1 {
		t.Errorf("a.go count grew to %d; the ratchet only tightens", out2.Findings[0].Count)
	}
}

func TestBaselineWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	b := &Baseline{Version: 1, Findings: []BaselineEntry{
		{File: "a.go", Analyzer: "cancel-poll", Message: "m", Count: 1},
	}}
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Findings) != 1 || got.Findings[0] != b.Findings[0] {
		t.Errorf("round-trip = %+v, want %+v", got.Findings, b.Findings)
	}
	// No temp debris left behind after a successful write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("directory has %d entries after WriteFile, want just the baseline", len(ents))
	}
}
