package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// This file builds per-function control-flow graphs, the substrate every
// dataflow analyzer (map-order-leak, lock-balance, flat-bounds) runs on.
// The builder covers the full Go statement surface the solver code uses:
// if/for/range/switch/select, goto and labeled break/continue, defer, and
// short-circuit && / || (conditions are decomposed into one block per leaf
// so edge facts can be refined per comparison).

// Block is one basic block: a maximal straight-line sequence of statements
// (and condition leaves) with branching only at the end.
//
// Edge ordering is part of the contract: when Cond is non-nil the block
// ends in a two-way branch and Succs[0] is the true edge, Succs[1] the
// false edge. A range head (Kind "range.head") likewise has Succs[0] enter
// the loop body and Succs[1] leave it.
type Block struct {
	Index int
	Kind  string     // "entry", "exit", "if.then", "for.head", ... (stable, used by golden tests)
	Nodes []ast.Node // statements and condition expressions in execution order
	Cond  ast.Expr   // the branch condition leaf, when this block branches
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Exit is the single
// synthetic exit block every return, panic and fall-off-the-end reaches.
// Deferred calls are not spliced into the exit edges; they are recorded in
// Defers (in source order — they run LIFO) for analyzers that model them.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the CFG of one function body. It never fails: constructs
// the builder does not model precisely (e.g. recover-based resumption) degrade
// to conservative extra edges, not errors.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:      &CFG{},
		labels: make(map[string]*labelInfo),
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = &Block{Kind: "exit"}
	b.cur = b.newBlock("body")
	b.edge(b.g.Entry, b.cur)
	b.stmtList(body.List)
	b.terminate(b.g.Exit) // fall off the end
	// Place the exit block last and index it.
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// labelInfo tracks one label: the goto target block and, when the label
// names a loop/switch/select, the break/continue destinations.
type labelInfo struct {
	target     *Block // goto destination (also the loop head for labeled loops)
	breakTo    *Block
	continueTo *Block
}

// loopCtx is the enclosing break/continue context (innermost last).
type loopCtx struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block // nil after a terminator until the next block starts
	loops  []loopCtx
	labels map[string]*labelInfo
	// fallthroughTo is the next case body while building a switch case.
	fallthroughTo *Block
	// pendingLabel carries a label name into the immediately following
	// loop/switch statement so labeled break/continue can resolve to it.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// block returns the current block, reviving an unreachable one after a
// terminator (dead code still needs a home so analyzers can see it).
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

// terminate ends the current block with an edge to dst (if reachable).
func (b *cfgBuilder) terminate(dst *Block) {
	if b.cur != nil {
		b.edge(b.cur, dst)
	}
	b.cur = nil
}

func (b *cfgBuilder) add(n ast.Node) { blk := b.block(); blk.Nodes = append(blk.Nodes, n) }

// takeLabel consumes the pending label of a labeled loop/switch/select so
// nested statements do not inherit it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// setLoopLabel records the break/continue destinations of a labeled
// statement, preserving the goto target the enclosing LabeledStmt placed.
func (b *cfgBuilder) setLoopLabel(label string, target, breakTo, continueTo *Block) {
	li := b.labels[label]
	if li == nil {
		li = &labelInfo{target: target}
		b.labels[label] = li
	}
	li.breakTo = breakTo
	li.continueTo = continueTo
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if _, isLoop := s.(*ast.LabeledStmt); !isLoop {
		defer func() { b.pendingLabel = "" }()
	}
	switch s := s.(type) {
	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt:
		b.add(s)
	case *ast.EmptyStmt:
		// nothing
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.terminate(b.g.Exit)
		}
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.g.Exit)
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	default:
		b.add(s)
	}
}

// cond decomposes a condition into leaf blocks: short-circuit && and ||
// become explicit branches, so every leaf comparison gets its own block
// with [true, false] successor edges dataflow can refine on.
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	}
	blk := b.block()
	blk.Nodes = append(blk.Nodes, e)
	blk.Cond = ast.Unparen(e)
	b.edge(blk, t)
	b.edge(blk, f)
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	then := b.newBlock("if.then")
	after := b.newBlock("if.after")
	var alt *Block
	if s.Else != nil {
		alt = b.newBlock("if.else")
	} else {
		alt = after
	}
	b.cond(s.Cond, then, alt)
	b.cur = then
	b.stmtList(s.Body.List)
	b.terminate(after)
	if s.Else != nil {
		b.cur = alt
		b.stmt(s.Else)
		b.terminate(after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	contTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		contTo = post
	}
	b.terminate(head)
	b.cur = head
	if s.Cond != nil {
		b.cond(s.Cond, body, after)
	} else {
		b.terminate(body)
	}
	if label != "" {
		b.setLoopLabel(label, head, after, contTo)
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: contTo})
	b.cur = body
	b.stmtList(s.Body.List)
	b.terminate(contTo)
	b.loops = b.loops[:len(b.loops)-1]
	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.terminate(head)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	b.terminate(head)
	head.Nodes = append(head.Nodes, s)
	b.edge(head, body)  // Succs[0]: next element
	b.edge(head, after) // Succs[1]: exhausted
	if label != "" {
		b.setLoopLabel(label, head, after, head)
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.terminate(head)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause, blk *Block) {
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
	})
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause, blk *Block) {
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
	})
}

// caseClauses lowers a (type) switch body: a chain of test blocks, one per
// clause, each branching to its case body or the next test; the default
// clause (or fall-off) closes the chain. fallthrough edges go body→body.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, label string, addTests func(*ast.CaseClause, *Block)) {
	after := b.newBlock("switch.after")
	if label != "" {
		b.setLoopLabel(label, b.block(), after, nil)
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})

	var cases []*ast.CaseClause
	var defaultCase *ast.CaseClause
	for _, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			defaultCase = cc
		} else {
			cases = append(cases, cc)
		}
	}
	// Bodies first, so fallthrough targets exist while tests are wired.
	bodies := make(map[*ast.CaseClause]*Block)
	for _, cc := range cases {
		bodies[cc] = b.newBlock("case.body")
	}
	if defaultCase != nil {
		bodies[defaultCase] = b.newBlock("case.default")
	}
	// Test chain.
	for _, cc := range cases {
		test := b.newBlock("case.test")
		b.terminate(test)
		b.cur = test
		addTests(cc, test)
		b.edge(test, bodies[cc])
		b.cur = test // next edge continues the chain
	}
	// Last test (or the head when there are no cases) falls to default/after.
	if defaultCase != nil {
		b.terminate(bodies[defaultCase])
	} else {
		b.terminate(after)
	}
	// Case bodies, in source order so fallthrough finds the next body.
	ordered := make([]*ast.CaseClause, 0, len(clauses))
	for _, cs := range clauses {
		ordered = append(ordered, cs.(*ast.CaseClause))
	}
	for i, cc := range ordered {
		b.cur = bodies[cc]
		if i+1 < len(ordered) {
			b.fallthroughTo = bodies[ordered[i+1]]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(cc.Body)
		b.terminate(after)
	}
	b.fallthroughTo = nil
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.block()
	head.Kind = "select.head"
	after := b.newBlock("select.after")
	if label != "" {
		b.setLoopLabel(label, head, after, nil)
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.terminate(after)
	}
	b.loops = b.loops[:len(b.loops)-1]
	// A select with no clauses blocks forever: after is unreachable, which
	// the graph represents faithfully (no head→after edge).
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	// A label is a goto target even when nothing loops on it; create (or
	// adopt) its block so forward gotos resolve.
	li := b.labels[name]
	target := b.newBlock("label." + name)
	if li != nil && li.target != nil {
		// Forward goto already made a placeholder: redirect it here.
		placeholder := li.target
		for _, p := range placeholder.Preds {
			for i, sc := range p.Succs {
				if sc == placeholder {
					p.Succs[i] = target
				}
			}
			target.Preds = append(target.Preds, p)
		}
		placeholder.Preds = nil
		placeholder.Kind = "label.dead"
	}
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	li.target = target
	b.terminate(target)
	b.cur = target
	b.pendingLabel = name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.breakTo != nil {
				b.terminate(li.breakTo)
				return
			}
			// Labeled loop not yet built (label on a following statement):
			// resolve via the loop stack by name.
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].label == s.Label.Name {
					b.terminate(b.loops[i].breakTo)
					return
				}
			}
			b.cur = nil
			return
		}
		for i := len(b.loops) - 1; i >= 0; i-- {
			b.terminate(b.loops[i].breakTo)
			return
		}
		b.cur = nil
	case token.CONTINUE:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.continueTo != nil {
				b.terminate(li.continueTo)
				return
			}
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].label == s.Label.Name && b.loops[i].continueTo != nil {
					b.terminate(b.loops[i].continueTo)
					return
				}
			}
			b.cur = nil
			return
		}
		for i := len(b.loops) - 1; i >= 0; i-- {
			if b.loops[i].continueTo != nil {
				b.terminate(b.loops[i].continueTo)
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		if s.Label == nil {
			b.cur = nil
			return
		}
		li := b.labels[s.Label.Name]
		if li == nil || li.target == nil {
			// Forward goto: park an placeholder the label will adopt.
			li = &labelInfo{target: b.newBlock("label." + s.Label.Name + ".pending")}
			b.labels[s.Label.Name] = li
		}
		b.terminate(li.target)
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.terminate(b.fallthroughTo)
		} else {
			b.cur = nil
		}
	}
}

// isPanicCall reports whether e is a call to the builtin panic. Without type
// information this is syntactic; a local function named panic is rare enough
// (and forbidden by panic-in-library anyway) that the over-approximation is
// harmless for control flow.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder — the canonical iteration order for forward dataflow.
func (g *CFG) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks)+1)
	var order []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if b.Index < len(seen) && seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			visit(s)
		}
		order = append(order, b)
	}
	visit(g.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// LoopHeads returns the set of blocks that are targets of a back edge under
// the reverse-postorder numbering — the widening points of the interval
// analysis.
func (g *CFG) LoopHeads() map[*Block]bool {
	rpo := g.ReversePostorder()
	num := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		num[b] = i
	}
	heads := make(map[*Block]bool)
	for _, b := range rpo {
		for _, s := range b.Succs {
			if ns, ok := num[s]; ok && ns <= num[b] {
				heads[s] = true
			}
		}
	}
	return heads
}

// String renders the graph one block per line:
//
//	b1 for.head [i < n] -> b2 b4
//
// Conditional blocks print the condition; the successor order is the edge
// order (true first). Used by the golden CFG tests and for debugging.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		if blk.Kind == "label.dead" {
			continue // placeholder emptied by label adoption
		}
		fmt.Fprintf(&sb, "b%d %s", blk.Index, blk.Kind)
		if blk.Cond != nil {
			fmt.Fprintf(&sb, " [%s]", renderNode(blk.Cond))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// renderNode prints an AST node as compact single-line source.
func renderNode(n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := buf.String()
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
