package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses one function body and builds its CFG.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// TestCFGGolden pins the successor structure of the constructs the dataflow
// engine depends on: goto, labeled break/continue, select with default, and
// defer before panic.
func TestCFGGolden(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // exact String() output
	}{
		{
			name: "goto_forward_and_back",
			body: `
	x := 0
	goto skip
	x = 1
skip:
	x++
	if x > 3 {
		goto skip
	}
	_ = x`,
			want: `b0 entry -> b1
b1 body -> b4
b3 unreachable -> b4
b4 label.skip [x > 3] -> b5 b6
b5 if.then -> b4
b6 if.after -> b7
b7 exit
`,
		},
		{
			name: "labeled_break_continue",
			body: `
outer:
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if j == i {
				continue outer
			}
			if j > i {
				break outer
			}
		}
	}`,
			want: `b0 entry -> b1
b1 body -> b2
b2 label.outer -> b3
b3 for.head [i < 9] -> b4 b5
b4 for.body -> b7
b5 for.after -> b15
b6 for.post -> b3
b7 for.head [j < 9] -> b8 b9
b8 for.body [j == i] -> b11 b12
b9 for.after -> b6
b10 for.post -> b7
b11 if.then -> b6
b12 if.after [j > i] -> b13 b14
b13 if.then -> b5
b14 if.after -> b10
b15 exit
`,
		},
		{
			name: "select_with_default",
			body: `
	var c chan int
	select {
	case v := <-c:
		_ = v
	case c <- 1:
	default:
		return
	}
	_ = c`,
			want: `b0 entry -> b1
b1 select.head -> b3 b4 b5
b2 select.after -> b6
b3 select.case -> b2
b4 select.case -> b2
b5 select.default -> b6
b6 exit
`,
		},
		{
			name: "defer_before_panic",
			body: `
	mu := 0
	defer func() { _ = mu }()
	if mu == 0 {
		panic("boom")
	}
	_ = mu`,
			want: `b0 entry -> b1
b1 body [mu == 0] -> b2 b3
b2 if.then -> b4
b3 if.after -> b4
b4 exit
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildTestCFG(t, tc.body)
			got := g.String()
			if got != tc.want {
				t.Errorf("CFG mismatch\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}

// TestCFGPredecessors checks Preds mirror Succs exactly.
func TestCFGPredecessors(t *testing.T) {
	g := buildTestCFG(t, `
loop:
	for i := 0; i < 4; i++ {
		switch i {
		case 0:
			continue loop
		case 1:
			break loop
		default:
			goto done
		}
	}
done:
	return`)
	fwd := make(map[*Block]map[*Block]int)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if fwd[s] == nil {
				fwd[s] = make(map[*Block]int)
			}
			fwd[s][b]++
		}
	}
	for _, b := range g.Blocks {
		back := make(map[*Block]int)
		for _, p := range b.Preds {
			back[p]++
		}
		want := fwd[b]
		if len(back) != len(want) {
			t.Errorf("b%d: preds %v != inverted succs %v", b.Index, back, want)
			continue
		}
		for p, n := range want {
			if back[p] != n {
				t.Errorf("b%d: pred b%d count = %d, want %d", b.Index, p.Index, back[p], n)
			}
		}
	}
}

// TestCFGDefersRecorded checks defer statements are collected in source
// order for the analyzers that model function-exit effects.
func TestCFGDefersRecorded(t *testing.T) {
	g := buildTestCFG(t, `
	defer println("a")
	if true {
		defer println("b")
	}
	panic("x")`)
	if len(g.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(g.Defers))
	}
	if g.Defers[0].Pos() >= g.Defers[1].Pos() {
		t.Errorf("defers not in source order")
	}
}

// TestCFGShortCircuit checks && / || decompose into per-leaf condition
// blocks with true-first edge ordering.
func TestCFGShortCircuit(t *testing.T) {
	g := buildTestCFG(t, `
	a, b, c := 1, 2, 3
	if a < b && (b < c || c < 9) {
		_ = a
	}`)
	var leaves []string
	for _, blk := range g.Blocks {
		if blk.Cond != nil {
			leaves = append(leaves, renderNode(blk.Cond))
		}
	}
	want := []string{"a < b", "b < c", "c < 9"}
	if strings.Join(leaves, ",") != strings.Join(want, ",") {
		t.Errorf("condition leaves = %v, want %v", leaves, want)
	}
	// Every leaf block must have exactly two successors (true, false).
	for _, blk := range g.Blocks {
		if blk.Cond != nil && len(blk.Succs) != 2 {
			t.Errorf("cond block b%d has %d successors, want 2", blk.Index, len(blk.Succs))
		}
	}
}

// TestCFGReversePostorder checks entry comes first and every non-back edge
// source precedes its target.
func TestCFGReversePostorder(t *testing.T) {
	g := buildTestCFG(t, `
	for i := 0; i < 3; i++ {
		if i == 1 {
			continue
		}
	}
	return`)
	rpo := g.ReversePostorder()
	if len(rpo) == 0 || rpo[0] != g.Entry {
		t.Fatalf("reverse postorder does not start at entry")
	}
	heads := g.LoopHeads()
	if len(heads) != 1 {
		t.Errorf("loop heads = %d, want 1 (the for head)", len(heads))
	}
	for h := range heads {
		if h.Kind != "for.head" {
			t.Errorf("loop head kind = %q, want for.head", h.Kind)
		}
	}
}
