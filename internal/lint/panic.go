package lint

import (
	"go/ast"
	"go/types"
)

// PanicInLibrary flags panic(...) calls in non-main, non-test packages.
// Library code must return errors: a panic deep inside a solver kills the
// whole multi-start fleet (and any future server) instead of failing one
// request. Must-style helpers that intentionally wrap a checked constructor
// belong behind an explicit //lint:ignore with the justification.
var PanicInLibrary = &Analyzer{
	Name: "panic-in-library",
	Doc:  "library packages must return errors instead of calling panic",
	Run: func(p *Pass) {
		if p.Pkg.IsCommand() {
			return
		}
		for _, f := range p.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				// With type info, make sure this is the builtin and not a
				// local function that happens to be named panic.
				if p.Pkg.Info != nil {
					if obj := p.Pkg.Info.Uses[id]; obj != nil {
						if _, builtin := obj.(*types.Builtin); !builtin {
							return true
						}
					}
				}
				p.Reportf(call.Pos(), "panic in library package %q; return an error instead", p.Pkg.Name)
				return true
			})
		}
	},
}
