package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// randGlobalFuncs are the math/rand (and math/rand/v2) package-level
// functions that draw from the process-global generator. rand.New,
// rand.NewSource and rand.NewZipf are constructors and stay allowed.
var randGlobalFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true, "N": true,
}

// UnseededRand flags package-level math/rand calls in non-test code. The
// multi-start solver promises bit-for-bit seed determinism; global-state
// randomness breaks it silently, so every randomized routine must thread an
// explicit *rand.Rand built from a caller-supplied seed.
var UnseededRand = &Analyzer{
	Name: "unseeded-rand",
	Doc:  "thread an explicit seeded *rand.Rand; never use math/rand global state",
	Run: func(p *Pass) {
		for _, f := range p.Files() {
			// Names under which math/rand[/v2] is imported in this file.
			randNames := make(map[string]bool)
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || (path != "math/rand" && path != "math/rand/v2") {
					continue
				}
				name := "rand"
				if imp.Name != nil {
					name = imp.Name.Name
				}
				randNames[name] = true
			}
			if len(randNames) == 0 {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || !randNames[id.Name] || !randGlobalFuncs[sel.Sel.Name] {
					return true
				}
				// With type info, confirm the receiver is the package (not a
				// local variable shadowing the import name).
				if p.Pkg.Info != nil {
					obj := p.Pkg.Info.Uses[id]
					if _, isPkg := obj.(*types.PkgName); obj != nil && !isPkg {
						return true
					}
				}
				p.Reportf(sel.Pos(), "global rand.%s breaks seed determinism; thread a seeded *rand.Rand", sel.Sel.Name)
				return true
			})
		}
	},
}
