package lint

import (
	"go/types"
	"testing"
)

// loadProgram loads a fixture directory through the shared loader and
// returns its package together with the interprocedural program view.
func loadProgram(t *testing.T, dir string) (*Package, *Program) {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.Load("testdata/src/" + dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	if pkg.Info == nil {
		t.Fatalf("Load(%s): package did not type-check: %v", dir, pkg.TypeErr)
	}
	return pkg, l.Program()
}

func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, _ := pkg.Types.Scope().Lookup(name).(*types.Func)
	if fn == nil {
		t.Fatalf("%s: no such function in %s", name, pkg.ImportPath)
	}
	return fn
}

// TestReachability: exported entry points with a Checker in scope mark their
// unexported callees reachable; unrelated helpers stay out.
func TestReachability(t *testing.T) {
	pkg, prog := loadProgram(t, "cancelpoll_pos")
	solve := prog.FuncOf(lookupFunc(t, pkg, "Solve"))
	drain := prog.FuncOf(lookupFunc(t, pkg, "drain"))
	if solve == nil || drain == nil {
		t.Fatal("FuncOf returned nil for fixture functions")
	}
	if !prog.Reachable(solve) {
		t.Error("Solve (exported, ctx param, interrupt import) not marked reachable")
	}
	if !prog.Reachable(drain) {
		t.Error("drain (called from Solve) not marked reachable")
	}

	// hotalloc_summary has no interrupt import, so nothing is an entry.
	pkg2, prog2 := loadProgram(t, "hotalloc_summary")
	sweep := prog2.FuncOf(lookupFunc(t, pkg2, "Sweep"))
	if sweep == nil {
		t.Fatal("FuncOf(Sweep) = nil")
	}
	if prog2.Reachable(sweep) {
		t.Error("Sweep marked reachable despite the package promising no cancellation")
	}
}

// TestPollSummaries: polling propagates bottom-up from ctx.Err/Done through
// module-internal calls, including interface and function-value indirection.
func TestPollSummaries(t *testing.T) {
	pkg, prog := loadProgram(t, "cancelpoll_iface")
	ckStopper, _ := pkg.Types.Scope().Lookup("ckStopper").(*types.TypeName)
	if ckStopper == nil {
		t.Fatal("ckStopper type not found")
	}
	named := ckStopper.Type().(*types.Named)
	var stopping *types.Func
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Stopping" {
			stopping = named.Method(i)
		}
	}
	if stopping == nil {
		t.Fatal("ckStopper.Stopping not found")
	}
	fi := prog.FuncOf(stopping)
	if fi == nil || !fi.Polls {
		t.Errorf("ckStopper.Stopping should inherit Polls from Checker.Stop; got %+v", fi)
	}
}

// TestAllocSummaries: Allocates propagates through unexported helpers but
// reflects only what the body (and its callees) do.
func TestAllocSummaries(t *testing.T) {
	pkg, prog := loadProgram(t, "hotalloc_summary")
	build := prog.FuncOf(lookupFunc(t, pkg, "buildScratch"))
	reuse := prog.FuncOf(lookupFunc(t, pkg, "reuse"))
	sweep := prog.FuncOf(lookupFunc(t, pkg, "Sweep"))
	if build == nil || reuse == nil || sweep == nil {
		t.Fatal("FuncOf returned nil for fixture functions")
	}
	if !build.Allocates {
		t.Error("buildScratch (make in body) should have Allocates = true")
	}
	if reuse.Allocates {
		t.Error("reuse (writes into its argument) should have Allocates = false")
	}
	if !sweep.Allocates {
		t.Error("Sweep (calls buildScratch) should inherit Allocates transitively")
	}
}

// TestResultSummaries: integer result intervals are expressed over parameter
// atoms and substituted at call sites.
func TestResultSummaries(t *testing.T) {
	pkg, prog := loadProgram(t, "flatbounds_interproc")

	rs := prog.ResultSummary(lookupFunc(t, pkg, "upTo"))
	if rs == nil {
		t.Fatal("upTo: no result summary")
	}
	if !rs.iv.hasHi || !rs.iv.hasLo {
		t.Errorf("upTo: want exact len($xs) interval, got %+v", rs.iv)
	}
	if _, ok := rs.lenParams["len($xs)"]; !ok {
		t.Errorf("upTo: len($xs) not registered as a length param: %v", rs.lenParams)
	}

	rs = prog.ResultSummary(lookupFunc(t, pkg, "offset"))
	if rs == nil {
		t.Fatal("offset: no result summary")
	}
	if idx, ok := rs.intParams["$n"]; !ok || idx != 0 {
		t.Errorf("offset: $n should map to parameter 0: %v", rs.intParams)
	}

	// The ceiling-capped satAdd shape: hi must be the constant cap.
	pkg2, prog2 := loadProgram(t, "intoverflow_neg")
	rs = prog2.ResultSummary(lookupFunc(t, pkg2, "satAdd"))
	if rs == nil {
		t.Fatal("satAdd: no result summary")
	}
	c, isConst := rs.iv.hi.constant()
	if !rs.iv.hasHi || !isConst || c != 1<<35 {
		t.Errorf("satAdd: want constant hi 1<<35, got hasHi=%v hi=%v", rs.iv.hasHi, rs.iv.hi)
	}
}

// TestCeilingTaint: ExprCeil sees ceiling-scale constants, values flowing
// through calls, and stops at the slice-store laundering boundary.
func TestCeilingTaint(t *testing.T) {
	pkg, prog := loadProgram(t, "intoverflow_pos")
	inflate := prog.FuncOf(lookupFunc(t, pkg, "Inflate"))
	if inflate == nil || !inflate.Ceiling {
		t.Error("Inflate returns a ceiling-scale value; Ceiling summary should be true")
	}

	pkg2, prog2 := loadProgram(t, "intoverflow_launder")
	spread := prog2.FuncOf(lookupFunc(t, pkg2, "Spread"))
	if spread == nil {
		t.Fatal("FuncOf(Spread) = nil")
	}
	if spread.Ceiling {
		t.Error("Spread sums laundered slice elements; Ceiling summary should be false")
	}
}
