package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// staticDiags is a fixed diagnostic set exercising rule dedup/sorting, the
// pseudo-analyzer level downgrade, line clamping for directory-scoped
// findings, and path relativization.
func staticDiags() []Diagnostic {
	return []Diagnostic{
		{
			Analyzer: "typecheck",
			Pos:      token.Position{Filename: "/mod/internal/qbp"},
			Message:  "type-check failed: undefined: x",
		},
		{
			Analyzer: "map-order-leak",
			Pos:      token.Position{Filename: "/mod/internal/qbp/solve.go", Line: 42, Column: 2},
			Message:  "map iteration order flows into return at line 48 without an intervening sort",
		},
		{
			Analyzer: "map-order-leak",
			Pos:      token.Position{Filename: "/mod/internal/qbp/solve.go", Line: 90, Column: 2},
			Message:  "map iteration order flows into append at line 91 without an intervening sort",
		},
		{
			Analyzer: "lint",
			Pos:      token.Position{Filename: "/mod/internal/gap/gap.go", Line: 7, Column: 1},
			Message:  "malformed //lint:ignore comment: missing reason",
		},
		{
			Analyzer: "flat-bounds",
			Pos:      token.Position{Filename: "/outside/tree.go", Line: 3, Column: 9},
			Message:  "cannot prove flat index i*m.Stride+j stays within len(m.V)",
		},
	}
}

// TestSARIFGolden byte-compares WriteSARIF output against the committed
// golden file. Regenerate with: go test ./internal/lint -run TestSARIFGolden -update
func TestSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, staticDiags(), "/mod"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	golden := filepath.Join("testdata", "golden.sarif")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output differs from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestSARIFShape asserts the structural invariants GitHub code scanning
// requires of a SARIF 2.1.0 upload, independent of exact serialization.
func TestSARIFShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, staticDiags(), "/mod"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name           string `json:"name"`
					InformationURI string `json:"informationUri"`
					Rules          []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-schema-2.1.0.json") {
		t.Errorf("$schema = %q, want a 2.1.0 schema URI", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "qbplint" {
		t.Errorf("driver.name = %q, want qbplint", run.Tool.Driver.Name)
	}
	if run.Tool.Driver.InformationURI == "" {
		t.Error("driver.informationUri is empty")
	}

	// Rules: sorted, distinct, covering exactly the analyzers that fired.
	wantRules := []string{"flat-bounds", "lint", "map-order-leak", "typecheck"}
	if len(run.Tool.Driver.Rules) != len(wantRules) {
		t.Fatalf("rules = %d, want %d", len(run.Tool.Driver.Rules), len(wantRules))
	}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID != wantRules[i] {
			t.Errorf("rules[%d].id = %q, want %q", i, r.ID, wantRules[i])
		}
		if r.ShortDescription.Text == "" {
			t.Errorf("rules[%d] (%s) has empty shortDescription", i, r.ID)
		}
	}

	if len(run.Results) != len(staticDiags()) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(staticDiags()))
	}
	for i, res := range run.Results {
		if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("results[%d]: ruleIndex %d does not point at rule %q", i, res.RuleIndex, res.RuleID)
		}
		wantLevel := "error"
		if res.RuleID == "lint" {
			wantLevel = "warning"
		}
		if res.Level != wantLevel {
			t.Errorf("results[%d] (%s): level = %q, want %q", i, res.RuleID, res.Level, wantLevel)
		}
		if res.Message.Text == "" {
			t.Errorf("results[%d]: empty message", i)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("results[%d]: locations = %d, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("results[%d]: uriBaseId = %q, want %%SRCROOT%%", i, loc.ArtifactLocation.URIBaseID)
		}
		if strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("results[%d]: uri %q contains backslashes", i, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("results[%d]: startLine = %d, want >= 1", i, loc.Region.StartLine)
		}
	}

	// Relativization: in-module paths lose the root, outside paths stay.
	if uri := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "internal/qbp/solve.go" {
		t.Errorf("in-module uri = %q, want internal/qbp/solve.go", uri)
	}
	if uri := run.Results[4].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "/outside/tree.go" {
		t.Errorf("outside-module uri = %q, want /outside/tree.go", uri)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, staticDiags(), "/mod"); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out) != len(staticDiags()) {
		t.Fatalf("records = %d, want %d", len(out), len(staticDiags()))
	}
	if out[1].File != "internal/qbp/solve.go" || out[1].Line != 42 {
		t.Errorf("record[1] = %+v, want internal/qbp/solve.go:42", out[1])
	}

	// Empty input must still encode as [], not null, for jq pipelines.
	buf.Reset()
	if err := WriteJSON(&buf, nil, "/mod"); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("WriteJSON(nil) = %q, want []", s)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := staticDiags()
	b := NewBaseline(diags, "/mod")

	// Two map-order-leak findings in the same file carry different messages,
	// so they land in distinct entries; total groups = 5.
	if len(b.Findings) != 5 {
		t.Fatalf("findings = %d, want 5: %+v", len(b.Findings), b.Findings)
	}
	for i := 1; i < len(b.Findings); i++ {
		a, c := b.Findings[i-1], b.Findings[i]
		if a.File > c.File || (a.File == c.File && a.Analyzer > c.Analyzer) {
			t.Errorf("findings not sorted at %d: %+v before %+v", i, a, c)
		}
	}

	// Round-trip through the JSON encoding.
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}

	// A baseline generated from the findings absorbs all of them...
	if kept := got.Filter(diags, "/mod"); len(kept) != 0 {
		t.Errorf("Filter left %d diagnostics, want 0: %v", len(kept), kept)
	}
	// ...but a NEW instance beyond the recorded count passes through.
	extra := append(append([]Diagnostic(nil), diags...), diags[1])
	if kept := got.Filter(extra, "/mod"); len(kept) != 1 {
		t.Errorf("Filter(extra) left %d diagnostics, want 1", len(kept))
	}
	// Line-number drift must NOT invalidate the baseline.
	moved := append([]Diagnostic(nil), diags...)
	moved[1].Pos.Line = 57
	if kept := got.Filter(moved, "/mod"); len(kept) != 0 {
		t.Errorf("Filter after line drift left %d diagnostics, want 0", len(kept))
	}
}

func TestBaselineVersionCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil {
		t.Error("ReadBaseline accepted version 99")
	}
}
