package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Interprocedural layer, part 3: concurrency topology.
//
// On top of the call graph this file records where goroutines are born and
// what crosses into them: every go statement becomes a SpawnSite; the free
// variables of a spawned literal and the values sent over channels form the
// escape set of the spawner. Function summaries grow three concurrency
// facts propagated bottom-up over the SCC condensation, mirroring how
// Polls/Allocates travel:
//
//   - Acquires: the lock keys a function may take, transitively through
//     static callees. Keys over the receiver or a parameter are kept in
//     template form ($recv.mu, $arg0) and instantiated with the caller's
//     argument rendering at each call site, so s.lock() helpers connect to
//     the mutex they guard.
//   - ChanOps: per channel-typed parameter, whether the function (or a
//     helper it hands the channel to) sends, receives, ranges or closes it.
//     This is how chan-protocol credits a close that happens two helpers
//     down.
//   - WGOps: per *sync.WaitGroup parameter, whether Add/Done/Wait happen,
//     so wg-balance matches an Add against a Done that lives in a helper.
//
// The last piece is the concurrently-invoked literal set: starting from the
// targets of replicated spawn sites (a go statement under a loop, or
// several go statements in one function), every function reachable through
// call edges runs on worker goroutines; a literal reached from there
// through a *tracked function value* (a Dyn edge from a function other
// than the one that defines it) is a closure whose single frame is shared
// by all those workers — the OnProgress callback pattern. lockset-race
// checks writes to its captured variables.

// SpawnSite is one go statement in a function.
type SpawnSite struct {
	Caller *FuncInfo
	Target *FuncInfo // the spawned function or literal; nil when unresolved
	Go     *ast.GoStmt
	// InLoop marks a go statement executing under a for/range loop: one
	// site, many concurrently-live goroutines, so the spawned body races
	// with other instances of itself.
	InLoop bool
}

// ChanOps records which operations happen to one channel value.
type ChanOps struct {
	Send, Recv, Close, Range bool
}

func (c ChanOps) or(o ChanOps) ChanOps {
	return ChanOps{c.Send || o.Send, c.Recv || o.Recv, c.Close || o.Close, c.Range || o.Range}
}

func (c ChanOps) any() bool { return c.Send || c.Recv || c.Close || c.Range }

// WGOps records which sync.WaitGroup methods are called on one value.
type WGOps struct {
	Add, Done, Wait bool
}

func (w WGOps) or(o WGOps) WGOps {
	return WGOps{w.Add || o.Add, w.Done || o.Done, w.Wait || o.Wait}
}

func (w WGOps) any() bool { return w.Add || w.Done || w.Wait }

// wgMethods are the fully-qualified WaitGroup methods.
var wgMethods = map[string]string{
	"(*sync.WaitGroup).Add":  "Add",
	"(*sync.WaitGroup).Done": "Done",
	"(*sync.WaitGroup).Wait": "Wait",
}

// SpawnSites returns fi's go statements in source order.
func (prog *Program) SpawnSites(fi *FuncInfo) []*SpawnSite { return prog.spawns[fi] }

// ConcurrentLit reports whether fi is a function literal whose one closure
// frame is invoked from goroutine context through a tracked function value
// (see the file comment) — its captured variables are shared state.
func (prog *Program) ConcurrentLit(fi *FuncInfo) bool { return prog.concLit[fi] }

// SpawnTarget reports whether fi is the direct target of some go statement.
func (prog *Program) SpawnTarget(fi *FuncInfo) bool { return prog.spawnTgt[fi] }

// FreeVars returns the variables fi references but does not declare:
// captured locals of enclosing functions and package-level variables, in
// declaration-position order. Struct fields are excluded (the root variable
// of the selector is what escapes).
func (prog *Program) FreeVars(fi *FuncInfo) []*types.Var {
	if vs, ok := prog.freeVars[fi]; ok {
		return vs
	}
	info := fi.Pkg.Info
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] || fi.spanContains(v.Pos()) {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	prog.freeVars[fi] = out
	return out
}

// HandoffVars returns the variables fi moves through channels: values sent
// (ch <- v) and receive targets (v = <-ch, v := <-ch). A variable handed
// off this way has a happens-before edge between its writer and reader, so
// lockset-race exempts it.
func (prog *Program) HandoffVars(fi *FuncInfo) map[*types.Var]bool {
	if m, ok := prog.handoff[fi]; ok {
		return m
	}
	info := fi.Pkg.Info
	m := make(map[*types.Var]bool)
	mark := func(e ast.Expr) {
		if root := rootIdent(e); root != nil {
			if v, ok := info.Uses[root].(*types.Var); ok {
				m[v] = true
			} else if v, ok := info.Defs[root].(*types.Var); ok {
				m[v] = true
			}
		}
	}
	// The whole body including nested literals: a send inside the spawned
	// goroutine is exactly the handoff that orders its writes.
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			mark(x.Value)
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					if i < len(x.Lhs) {
						mark(x.Lhs[i])
					}
				}
			}
		}
		return true
	})
	prog.handoff[fi] = m
	return m
}

// EscapedVars returns the variables declared in fi that escape its
// goroutine boundary: free variables of the literals fi spawns, plus the
// values fi sends over channels, in declaration order.
func (prog *Program) EscapedVars(fi *FuncInfo) []*types.Var {
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	add := func(v *types.Var) {
		if v != nil && !seen[v] && fi.spanContains(v.Pos()) {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, s := range prog.spawns[fi] {
		if s.Target != nil && s.Target.Lit != nil {
			for _, v := range prog.FreeVars(s.Target) {
				add(v)
			}
		}
	}
	info := fi.Pkg.Info
	inspectShallow(fi.Body, func(n ast.Node) bool {
		if send, ok := n.(*ast.SendStmt); ok {
			if root := rootIdent(send.Value); root != nil {
				if v, ok := info.Uses[root].(*types.Var); ok {
					add(v)
				}
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// summarizeConcurrency collects spawn sites and propagates the Acquires /
// ChanOps / WGOps summaries bottom-up over the SCC condensation.
func (prog *Program) summarizeConcurrency() {
	for _, fi := range prog.all {
		prog.scanConcurrencyBase(fi)
	}
	for _, scc := range prog.sccs {
		for {
			changed := false
			for _, fi := range scc {
				if prog.propagateConcurrency(fi) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	for _, fi := range prog.all {
		keys := make([]string, 0, len(prog.acquires[fi]))
		for k := range prog.acquires[fi] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fi.Acquires = keys
	}
	prog.markConcurrentLits()
}

// scanConcurrencyBase records fi's local facts: go statements (with loop
// containment decided by source spans), direct lock acquisitions, and
// channel/WaitGroup operations on its own parameters.
func (prog *Program) scanConcurrencyBase(fi *FuncInfo) {
	info := fi.Pkg.Info

	// Spawn sites: go statements directly in fi (a go inside a nested
	// literal belongs to that literal's FuncInfo).
	var loops []ast.Node
	inspectShallow(fi.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
		return true
	})
	inspectShallow(fi.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		var target *FuncInfo
		if tgts, _ := prog.funTargets(info, g.Call.Fun); len(tgts) == 1 {
			target = tgts[0]
		}
		inLoop := false
		for _, l := range loops {
			if l.Pos() <= g.Pos() && g.End() <= l.End() {
				inLoop = true
				break
			}
		}
		site := &SpawnSite{Caller: fi, Target: target, Go: g, InLoop: inLoop}
		prog.spawns[fi] = append(prog.spawns[fi], site)
		if target != nil {
			prog.spawnTgt[target] = true
		}
		return true
	})

	// Parameter index tables for the per-parameter op summaries.
	chanParam := make(map[*types.Var]int)
	wgParam := make(map[*types.Var]int)
	if fi.Sig != nil {
		params := fi.Sig.Params()
		for i := 0; i < params.Len(); i++ {
			v := params.At(i)
			if _, ok := v.Type().Underlying().(*types.Chan); ok {
				chanParam[v] = i
			}
			if isWaitGroupType(v.Type()) {
				wgParam[v] = i
			}
		}
	}
	rootVar := func(e ast.Expr) *types.Var {
		root := rootIdent(e)
		if root == nil {
			return nil
		}
		if v, ok := info.Uses[root].(*types.Var); ok {
			return v
		}
		v, _ := info.Defs[root].(*types.Var)
		return v
	}
	markChan := func(e ast.Expr, op ChanOps) {
		if v := rootVar(e); v != nil {
			if i, ok := chanParam[v]; ok {
				if fi.ChanOps == nil {
					fi.ChanOps = make(map[int]ChanOps)
				}
				fi.ChanOps[i] = fi.ChanOps[i].or(op)
			}
		}
	}

	// Ops are collected over the full body including nested literals: a
	// close parked in a deferred or spawned literal still happens under
	// this function's dynamic extent, and these are may-facts.
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			markChan(x.Chan, ChanOps{Send: true})
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				markChan(x.X, ChanOps{Recv: true})
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					markChan(x.X, ChanOps{Recv: true, Range: true})
				}
			}
		case *ast.CallExpr:
			if arg, ok := closeArg(info, x); ok {
				markChan(arg, ChanOps{Close: true})
				return true
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
					full := fn.FullName()
					if name, isWG := wgMethods[full]; isWG {
						if v := rootVar(sel.X); v != nil {
							if i, ok := wgParam[v]; ok {
								if fi.WGOps == nil {
									fi.WGOps = make(map[int]WGOps)
								}
								op := WGOps{Add: name == "Add", Done: name == "Done", Wait: name == "Wait"}
								fi.WGOps[i] = fi.WGOps[i].or(op)
							}
						}
					}
					if op, isLock := lockMethods[full]; isLock && op.delta > 0 {
						key := prog.normalizeExprKey(fi, sel.X)
						if op.read {
							key += "\x00R"
						}
						if prog.acquires[fi] == nil {
							prog.acquires[fi] = make(map[string]bool)
						}
						prog.acquires[fi][key] = true
					}
				}
			}
		}
		return true
	})
}

// propagateConcurrency folds one round of callee summaries into fi:
// channel/WaitGroup parameters passed along to static callees inherit the
// callee's per-parameter ops, and the callee's acquired lock keys are
// instantiated with the call-site arguments. Reports whether fi changed.
func (prog *Program) propagateConcurrency(fi *FuncInfo) bool {
	info := fi.Pkg.Info
	changed := false

	chanParam := make(map[*types.Var]int)
	wgParam := make(map[*types.Var]int)
	if fi.Sig != nil {
		params := fi.Sig.Params()
		for i := 0; i < params.Len(); i++ {
			v := params.At(i)
			if _, ok := v.Type().Underlying().(*types.Chan); ok {
				chanParam[v] = i
			}
			if isWaitGroupType(v.Type()) {
				wgParam[v] = i
			}
		}
	}

	ast.Inspect(fi.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tgts, dyn := prog.funTargets(info, call.Fun)
		if dyn || len(tgts) != 1 || tgts[0] == nil || tgts[0] == fi {
			if len(tgts) == 1 && tgts[0] == fi {
				return true // direct recursion adds nothing new
			}
			return true
		}
		t := tgts[0]
		// Lock keys cross the call with $recv/$argN templates instantiated
		// against this call site (and re-normalized against fi's own
		// receiver/parameters, so chains keep their template form).
		for _, k := range sortedKeys(prog.acquires[t]) {
			inst, ok := prog.instantiateKey(fi, k, call)
			if !ok {
				continue
			}
			if prog.acquires[fi] == nil {
				prog.acquires[fi] = make(map[string]bool)
			}
			if !prog.acquires[fi][inst] {
				prog.acquires[fi][inst] = true
				changed = true
			}
		}
		// Channel and WaitGroup parameters handed to the callee inherit the
		// callee's ops on the receiving parameter.
		for i, arg := range call.Args {
			root := rootIdent(arg)
			if root == nil {
				continue
			}
			v, _ := info.Uses[root].(*types.Var)
			if v == nil {
				continue
			}
			if j, ok := chanParam[v]; ok {
				if op, has := t.ChanOps[i]; has && op.any() {
					if fi.ChanOps == nil {
						fi.ChanOps = make(map[int]ChanOps)
					}
					merged := fi.ChanOps[j].or(op)
					if merged != fi.ChanOps[j] {
						fi.ChanOps[j] = merged
						changed = true
					}
				}
			}
			if j, ok := wgParam[v]; ok {
				if op, has := t.WGOps[i]; has && op.any() {
					if fi.WGOps == nil {
						fi.WGOps = make(map[int]WGOps)
					}
					merged := fi.WGOps[j].or(op)
					if merged != fi.WGOps[j] {
						fi.WGOps[j] = merged
						changed = true
					}
				}
			}
		}
		return true
	})
	return changed
}

// markConcurrentLits computes the concurrently-invoked literal set: BFS
// from the targets of replicated spawn sites over call edges; every Dyn
// edge to a literal defined in some *other* function marks that literal (a
// local f := func(){...}; f() stays single-goroutine).
func (prog *Program) markConcurrentLits() {
	enclosing := prog.enclosingFuncs()
	seen := make(map[*FuncInfo]bool)
	var work []*FuncInfo
	push := func(fi *FuncInfo) {
		if fi != nil && !seen[fi] {
			seen[fi] = true
			work = append(work, fi)
		}
	}
	for _, fi := range prog.all {
		sites := prog.spawns[fi]
		for _, s := range sites {
			if s.Target != nil && (s.InLoop || len(sites) > 1) {
				push(s.Target)
			}
		}
	}
	for len(work) > 0 {
		fi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range fi.Edges {
			if e.Dyn && e.To.Lit != nil && enclosing[e.To] != fi {
				prog.concLit[e.To] = true
			}
			push(e.To)
		}
	}
}

// enclosingFuncs maps every literal to the function whose source span most
// tightly contains it.
func (prog *Program) enclosingFuncs() map[*FuncInfo]*FuncInfo {
	out := make(map[*FuncInfo]*FuncInfo)
	for _, lit := range prog.all {
		if lit.Lit == nil {
			continue
		}
		var best *FuncInfo
		for _, fi := range prog.all {
			if fi == lit || fi.Pkg != lit.Pkg || !fi.spanContains(lit.Lit.Pos()) {
				continue
			}
			if best == nil || best.span() > fi.span() {
				best = fi
			}
		}
		out[lit] = best
	}
	return out
}

// span is the source extent of the function, for tightest-enclosing tests.
func (fi *FuncInfo) span() int {
	if fi.Decl != nil {
		return int(fi.Decl.End() - fi.Decl.Pos())
	}
	if fi.Lit != nil {
		return int(fi.Lit.End() - fi.Lit.Pos())
	}
	return 1 << 30
}

// normalizeExprKey renders a lock-owner expression as a summary key: the
// receiver becomes $recv, parameter i becomes $argi, anything else keeps
// its source rendering (stripped of a leading &).
func (prog *Program) normalizeExprKey(fi *FuncInfo, e ast.Expr) string {
	render := strings.TrimPrefix(renderNode(e), "&")
	root := rootIdent(e)
	if root == nil || fi.Sig == nil {
		return render
	}
	info := fi.Pkg.Info
	v, _ := info.Uses[root].(*types.Var)
	if v == nil {
		v, _ = info.Defs[root].(*types.Var)
	}
	if v == nil {
		return render
	}
	if recv := fi.Sig.Recv(); recv != nil && v == recv {
		return replaceKeyRoot(render, root.Name, "$recv")
	}
	params := fi.Sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == v {
			return replaceKeyRoot(render, root.Name, "$arg"+strconv.Itoa(i))
		}
	}
	return render
}

// instantiateKey rewrites a callee lock-key template against one call site:
// $recv becomes the method receiver expression, $argN the N-th argument,
// each re-normalized against the caller so summary chains stay symbolic.
func (prog *Program) instantiateKey(caller *FuncInfo, key string, call *ast.CallExpr) (string, bool) {
	base, read := cutLockSuffix(key)
	var out string
	switch {
	case base == "$recv" || strings.HasPrefix(base, "$recv."):
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		out = prog.normalizeExprKey(caller, sel.X) + strings.TrimPrefix(base, "$recv")
	case strings.HasPrefix(base, "$arg"):
		rest := strings.TrimPrefix(base, "$arg")
		dot := strings.IndexByte(rest, '.')
		numEnd := len(rest)
		if dot >= 0 {
			numEnd = dot
		}
		i, err := strconv.Atoi(rest[:numEnd])
		if err != nil || i >= len(call.Args) {
			return "", false
		}
		out = prog.normalizeExprKey(caller, call.Args[i]) + rest[numEnd:]
	default:
		out = base // package-level or otherwise absolute key
	}
	if read {
		out += "\x00R"
	}
	return out, true
}

func replaceKeyRoot(render, rootName, repl string) string {
	if render == rootName {
		return repl
	}
	if strings.HasPrefix(render, rootName+".") {
		return repl + render[len(rootName):]
	}
	return render
}

// lockExitDelta summarizes the net lock effect of calling fi: +1 for a key
// provably held at exit with no deferred release (an acquire helper), -1
// for a key provably released (a release helper). Keys are in template
// form; callers instantiate them per call site.
func (prog *Program) lockExitDelta(fi *FuncInfo) map[string]int {
	if d, ok := prog.lockExits[fi]; ok {
		return d
	}
	prog.lockExits[fi] = nil // recursion guard for the CFG solve below
	lb := &lockInterp{info: fi.Pkg.Info}
	if !lb.mentionsLocks(fi.Body) {
		d := map[string]int{}
		prog.lockExits[fi] = d
		return d
	}
	g := fi.Pkg.CFG(fi.Body)
	in := SolveForward[lockFact](g, lockProblem{lb})
	d := map[string]int{}
	if exit, ok := in[g.Exit]; ok {
		for key, st := range exit.state {
			tmpl := prog.normalizeRawKey(fi, key)
			switch {
			case st == lockHeld && !exit.deferred[key]:
				d[tmpl] = +1
			case st == lockReleased:
				d[tmpl] = -1
			}
		}
	}
	prog.lockExits[fi] = d
	return d
}

// normalizeRawKey rewrites a rendered lock key into template form by its
// root name: the receiver's name maps to $recv, a parameter's to $argN.
func (prog *Program) normalizeRawKey(fi *FuncInfo, key string) string {
	base, read := cutLockSuffix(key)
	rootName := base
	if dot := strings.IndexByte(base, '.'); dot >= 0 {
		rootName = base[:dot]
	}
	out := base
	if fi.Sig != nil {
		if recv := fi.Sig.Recv(); recv != nil && recv.Name() == rootName {
			out = replaceKeyRoot(base, rootName, "$recv")
		} else {
			params := fi.Sig.Params()
			for i := 0; i < params.Len(); i++ {
				if params.At(i).Name() == rootName {
					out = replaceKeyRoot(base, rootName, "$arg"+strconv.Itoa(i))
					break
				}
			}
		}
	}
	if read {
		out += "\x00R"
	}
	return out
}

// closeArg decodes a call to the close builtin and returns its argument.
func closeArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil, false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, false
	}
	return call.Args[0], true
}

// isWaitGroupType reports t is sync.WaitGroup or a pointer to it.
func isWaitGroupType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isSyncPrimType reports t is one of the sync package's primitives (or a
// pointer to one): their internal state is concurrency-safe by contract.
func isSyncPrimType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool", "Locker":
		return true
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
