package lint

import (
	"go/ast"
	"go/types"
)

// IgnoredError flags `_ =` discards of error-typed values in non-main,
// non-test code. The validation pipeline exists so that no wrong number can
// ship silently; a discarded error is exactly such a silent path. Handle it,
// return it, or suppress with the justification.
var IgnoredError = &Analyzer{
	Name:       "ignored-error",
	Doc:        "library code must not discard error values with _ =",
	NeedsTypes: true,
	Run: func(p *Pass) {
		if p.Pkg.IsCommand() {
			return
		}
		info := p.Pkg.Info
		for _, f := range p.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				assign, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range assign.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" {
						continue
					}
					if t := rhsType(info, assign, i); t != nil && isErrorType(t) {
						p.Reportf(id.Pos(), "error value discarded with _; handle or return it")
					}
				}
				return true
			})
		}
	},
}

// rhsType resolves the type assigned to the i-th left-hand side: a matching
// right-hand expression for 1:1 assignments, or the i-th result of the
// single multi-value call/expression otherwise.
func rhsType(info *types.Info, assign *ast.AssignStmt, i int) types.Type {
	if len(assign.Lhs) == len(assign.Rhs) {
		if tv, ok := info.Types[assign.Rhs[i]]; ok {
			return tv.Type
		}
		return nil
	}
	if len(assign.Rhs) != 1 {
		return nil
	}
	tv, ok := info.Types[assign.Rhs[0]]
	if !ok || tv.Type == nil {
		return nil
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok || i >= tuple.Len() {
		return nil
	}
	return tuple.At(i).Type()
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
