package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
)

// IntOverflow flags raw int64 arithmetic on ceiling-scale values — the
// autoPenalty bug class. A value is ceiling-scale when the taint analysis
// (summary.go) can derive it from a constant ≥ 2^32: the MaxInt64
// best-so-far sentinels, model.Unconstrained, AutoPenaltyCeiling, or a
// Theorem-1 penalty U, directly or through any chain of +, -, *, <<,
// struct fields, parameters and results across the call graph. Adding or
// multiplying two such values with a bare `+`/`*` (or `+=`, `*=`, `++`)
// can exceed MaxInt64 and silently flip sign, which is exactly why
// satAdd/satCoupling exist.
//
// A site is certified safe — and not reported — when one of three
// arguments applies:
//
//  1. saturation-guard idiom: a dominating condition upper-bounds one
//     operand by an expression that *compensates* for the other (mentions
//     it under a - or /), the satAdd/satCoupling shape:
//
//     if a > AutoPenaltyCeiling-b { return AutoPenaltyCeiling }
//     return a + b
//
//  2. constant headroom: every operand is upper-bounded by a constant and
//     the combined constant cannot reach MaxInt64 (the `if pen <
//     AutoPenaltyCeiling { pen++ }` shape), checked either syntactically
//     from dominating conditions or by the interval dataflow (which also
//     consumes callee result summaries, so `satAdd(a,b)+1` is safe via
//     satAdd's hi = AutoPenaltyCeiling);
//
//  3. sentinel exclusion: a dominating condition rules out the sentinel
//     constant itself (`if best == math.MaxInt64 { continue }` and the
//     flipped !=-guard), which un-taints that operand.
//
// Loop accumulation defeats all three (the interval widens, no guard
// survives the back edge) — by design: a loop summing couplings is the
// satAdd use case.
//
// Index-expression reads and writes launder taint (see summary.go): the
// kernels store clamped values into slices, so slice elements are bounded
// by AutoPenaltyCeiling and their bounded sums cannot overflow.
var IntOverflow = &Analyzer{
	Name:       "int-overflow",
	Doc:        "raw +/* on ceiling-scale int64 values must go through satAdd/satCoupling or a saturation guard",
	NeedsTypes: true,
	Run:        runIntOverflow,
}

func runIntOverflow(p *Pass) {
	if p.Prog == nil || p.Pkg.Info == nil {
		return
	}
	for _, fi := range p.Prog.FuncsOf(p.Pkg) {
		c := &overflowCheck{p: p, fi: fi}
		c.walkStmts(fi.Body.List, nil)
		c.resolve()
	}
}

// guardFact is a condition known true (holds) or false on the paths
// reaching a statement: enclosing if branches, and the negation of any
// preceding early-exit if in the same statement list.
type guardFact struct {
	cond  ast.Expr
	holds bool
}

type ovfCandidate struct {
	site     ast.Node // *ast.BinaryExpr, *ast.AssignStmt or *ast.IncDecStmt
	pos      token.Pos
	op       string     // "+", "*", "+=", "*=", "++"
	operands []ast.Expr // the raw operands (IncDec has an implicit const 1)
	facts    []guardFact
}

type overflowCheck struct {
	p     *Pass
	fi    *FuncInfo
	cands []*ovfCandidate
}

// walkStmts visits a statement list threading guard facts.
func (c *overflowCheck) walkStmts(stmts []ast.Stmt, facts []guardFact) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ast.IfStmt:
			if x.Init != nil {
				c.collect(x.Init, facts)
			}
			c.collect(x.Cond, facts)
			c.walkStmts(x.Body.List, append(facts, guardFact{x.Cond, true}))
			switch e := x.Else.(type) {
			case *ast.BlockStmt:
				c.walkStmts(e.List, append(facts, guardFact{x.Cond, false}))
			case *ast.IfStmt:
				c.walkStmts([]ast.Stmt{e}, append(facts, guardFact{x.Cond, false}))
			}
			if x.Else == nil && blockTerminates(x.Body) {
				// The branch never falls through, so its negation holds below.
				facts = append(facts[:len(facts):len(facts)], guardFact{x.Cond, false})
			}
		case *ast.BlockStmt:
			c.walkStmts(x.List, facts)
		case *ast.LabeledStmt:
			c.walkStmts([]ast.Stmt{x.Stmt}, facts)
		case *ast.ForStmt:
			if x.Init != nil {
				c.collect(x.Init, facts)
			}
			// Facts about variables the loop mutates do not survive the
			// back edge; drop them before analyzing cond/post/body.
			inner := dropMutatedFacts(facts, x)
			if x.Cond != nil {
				c.collect(x.Cond, inner)
				inner = append(inner[:len(inner):len(inner)], guardFact{x.Cond, true})
			}
			if x.Post != nil {
				c.collect(x.Post, inner)
			}
			c.walkStmts(x.Body.List, inner)
		case *ast.RangeStmt:
			c.collect(x.X, facts)
			c.walkStmts(x.Body.List, dropMutatedFacts(facts, x))
		case *ast.SwitchStmt:
			if x.Init != nil {
				c.collect(x.Init, facts)
			}
			if x.Tag != nil {
				c.collect(x.Tag, facts)
			}
			walkCaseBodies(x.Body, func(ss []ast.Stmt) { c.walkStmts(ss, facts) })
		case *ast.TypeSwitchStmt:
			walkCaseBodies(x.Body, func(ss []ast.Stmt) { c.walkStmts(ss, facts) })
		case *ast.SelectStmt:
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					if cc.Comm != nil {
						c.collect(cc.Comm, facts)
					}
					c.walkStmts(cc.Body, facts)
				}
			}
		default:
			c.collect(s, facts)
		}
	}
}

// collect records every overflow-candidate site inside n (which contains
// no nested statement control flow) with a snapshot of the current facts.
func (c *overflowCheck) collect(n ast.Node, facts []guardFact) {
	info := c.p.Pkg.Info
	inspectShallow(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.BinaryExpr:
			if x.Op != token.ADD && x.Op != token.MUL {
				return true
			}
			if !isInt64Expr(info, x) || isConstExpr(info, x) {
				return true
			}
			c.addCandidate(x, x.Pos(), x.Op.String(), []ast.Expr{x.X, x.Y}, facts)
		case *ast.AssignStmt:
			if x.Tok != token.ADD_ASSIGN && x.Tok != token.MUL_ASSIGN {
				return true
			}
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 || !isInt64Expr(info, x.Lhs[0]) {
				return true
			}
			c.addCandidate(x, x.TokPos, x.Tok.String(), []ast.Expr{x.Lhs[0], x.Rhs[0]}, facts)
		case *ast.IncDecStmt:
			if x.Tok != token.INC || !isInt64Expr(info, x.X) {
				return true
			}
			c.addCandidate(x, x.TokPos, "++", []ast.Expr{x.X}, facts)
		}
		return true
	})
}

func (c *overflowCheck) addCandidate(site ast.Node, pos token.Pos, op string, operands []ast.Expr, facts []guardFact) {
	tainted := false
	for _, o := range operands {
		if c.p.Prog.ExprCeil(c.fi, o) {
			tainted = true
			break
		}
	}
	if !tainted {
		return
	}
	snap := append([]guardFact(nil), facts...)
	c.cands = append(c.cands, &ovfCandidate{site: site, pos: pos, op: op, operands: operands, facts: snap})
}

// resolve certifies or reports the collected candidates. The interval
// dataflow runs at most once per function, only when a candidate survives
// the syntactic arguments.
func (c *overflowCheck) resolve() {
	if len(c.cands) == 0 {
		return
	}
	var unresolved []*ovfCandidate
	for _, cand := range c.cands {
		if !c.certified(cand) {
			unresolved = append(unresolved, cand)
		}
	}
	if len(unresolved) == 0 {
		return
	}
	byNode := make(map[ast.Node]*ovfCandidate, len(unresolved))
	for _, cand := range unresolved {
		byNode[cand.site] = cand
	}
	info := c.p.Pkg.Info
	ii := &intervalInterp{info: info, pr: newProver(), prog: c.p.Prog}
	g := c.p.Pkg.CFG(c.fi.Body)
	in := SolveForward[intervalEnv](g, intervalProblem{ii})
	for _, b := range g.ReversePostorder() {
		env, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			inspectShallow(n, func(m ast.Node) bool {
				cand := byNode[m]
				if cand == nil {
					return true
				}
				if c.intervalSafe(ii, env, cand) {
					delete(byNode, m)
				}
				return true
			})
			env = ii.transferNode(env, n)
		}
	}
	for _, cand := range unresolved {
		if byNode[cand.site] == nil {
			continue
		}
		c.p.Reportf(cand.pos, "unchecked %s on ceiling-scale int64 values can exceed MaxInt64; use satAdd/satCoupling or guard the headroom first", cand.op)
	}
}

// intervalSafe certifies a site whose result has a provable constant upper
// bound: the polynomial domain caps coefficients at 2^40, so any constant
// bound it can represent is far below MaxInt64.
func (c *overflowCheck) intervalSafe(ii *intervalInterp, env intervalEnv, cand *ovfCandidate) bool {
	var result ival
	switch site := cand.site.(type) {
	case *ast.BinaryExpr:
		result = ii.eval(env, site)
	case *ast.AssignStmt:
		lhs, rhs := ii.eval(env, site.Lhs[0]), ii.eval(env, site.Rhs[0])
		if site.Tok == token.ADD_ASSIGN {
			result = ivalAdd(lhs, rhs)
		} else {
			result = ivalMul(lhs, rhs, ii.pr)
		}
	case *ast.IncDecStmt:
		result = ivalAdd(ii.eval(env, site.X), constIval(1))
	}
	if !result.hasHi {
		return false
	}
	_, isConst := result.hi.constant()
	return isConst
}

// certified applies the syntactic arguments: sentinel exclusion, the
// compensating-guard idiom, and constant headroom from dominating bounds.
func (c *overflowCheck) certified(cand *ovfCandidate) bool {
	info := c.p.Pkg.Info
	bounds := upperBoundFacts(cand.facts)

	anyTainted := false
	for _, o := range cand.operands {
		if c.p.Prog.ExprCeil(c.fi, o) && !c.sentinelCleared(cand.facts, renderNode(o)) {
			anyTainted = true
			break
		}
	}
	if !anyTainted {
		return true
	}

	// Compensating guard: some operand is bounded by an expression that
	// subtracts (or divides by) another operand — the satAdd shape, where
	// the bound's slack absorbs the partner exactly.
	for i, o := range cand.operands {
		r := renderNode(o)
		for _, b := range bounds {
			if b.target != r || !hasSubOrQuo(b.by) {
				continue
			}
			for j, other := range cand.operands {
				if j != i && atomMentions(renderNode(b.by), renderNode(other)) {
					return true
				}
			}
		}
	}

	// Constant headroom: every operand carries a constant upper bound
	// (its own value, or a dominating comparison against a constant), and
	// the combination provably stays below MaxInt64.
	upper := make([]int64, 0, len(cand.operands)+1)
	for _, o := range cand.operands {
		if v, ok := constInt64(info, o); ok {
			upper = append(upper, v)
			continue
		}
		r := renderNode(o)
		bounded := false
		for _, b := range bounds {
			if b.target != r {
				continue
			}
			if v, ok := constInt64(info, b.by); ok {
				upper = append(upper, v)
				bounded = true
				break
			}
		}
		if !bounded {
			return false
		}
	}
	if cand.op == "++" {
		upper = append(upper, 1)
	}
	return combinedHeadroomOK(cand.op, upper)
}

// combinedHeadroomOK checks the constant upper bounds cannot overflow when
// combined with the site's operator (magnitudes, so sign games cannot
// sneak past it).
func combinedHeadroomOK(op string, upper []int64) bool {
	mag := func(v int64) int64 {
		if v == math.MinInt64 {
			return math.MaxInt64
		}
		if v < 0 {
			return -v
		}
		return v
	}
	switch op {
	case "+", "+=", "++":
		var sum int64
		for _, v := range upper {
			m := mag(v)
			if sum > math.MaxInt64-m {
				return false
			}
			sum += m
		}
		return true
	case "*", "*=":
		prod := int64(1)
		for _, v := range upper {
			m := mag(v)
			if m == 0 {
				return true
			}
			if prod > math.MaxInt64/m {
				return false
			}
			prod *= m
		}
		return true
	}
	return false
}

// sentinelCleared reports a dominating condition excludes the sentinel
// constant from the operand: x != BIG holding, or x == BIG known false.
func (c *overflowCheck) sentinelCleared(facts []guardFact, operand string) bool {
	info := c.p.Pkg.Info
	for _, f := range facts {
		bin, ok := ast.Unparen(f.cond).(*ast.BinaryExpr)
		if !ok {
			continue
		}
		op := bin.Op
		if !f.holds {
			op = negateCmp(op)
		}
		if op != token.NEQ {
			continue
		}
		x, y := bin.X, bin.Y
		if renderNode(x) == operand && isCeilingConst(info, y) {
			return true
		}
		if renderNode(y) == operand && isCeilingConst(info, x) {
			return true
		}
	}
	return false
}

// upperBound is "target ≤ (roughly) by", extracted from a dominating
// comparison. LSS vs LEQ slack is irrelevant to the shape checks.
type upperBound struct {
	target string
	by     ast.Expr
}

func upperBoundFacts(facts []guardFact) []upperBound {
	var out []upperBound
	for _, f := range facts {
		bin, ok := ast.Unparen(f.cond).(*ast.BinaryExpr)
		if !ok {
			continue
		}
		op := bin.Op
		if !f.holds {
			op = negateCmp(op)
		}
		switch op {
		case token.LSS, token.LEQ:
			out = append(out, upperBound{renderNode(bin.X), bin.Y})
		case token.GTR, token.GEQ:
			out = append(out, upperBound{renderNode(bin.Y), bin.X})
		case token.EQL:
			out = append(out, upperBound{renderNode(bin.X), bin.Y})
			out = append(out, upperBound{renderNode(bin.Y), bin.X})
		}
	}
	return out
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return token.ILLEGAL
}

func hasSubOrQuo(e ast.Expr) bool {
	found := false
	inspectShallow(e, func(n ast.Node) bool {
		if bin, ok := n.(*ast.BinaryExpr); ok && (bin.Op == token.SUB || bin.Op == token.QUO) {
			found = true
			return false
		}
		return !found
	})
	return found
}

func isInt64Expr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func constInt64(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	val := constant.ToInt(tv.Value)
	if val.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(val)
}

func isCeilingConst(info *types.Info, e ast.Expr) bool {
	v, ok := constInt64(info, e)
	return ok && (v >= ceilingScale || v <= -ceilingScale)
}

// dropMutatedFacts removes facts mentioning any variable the loop assigns,
// since they need not hold past the first iteration.
func dropMutatedFacts(facts []guardFact, loop ast.Node) []guardFact {
	assigned := make(map[string]bool)
	inspectShallow(loop, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if base := rootIdent(lhs); base != nil {
					assigned[base.Name] = true
				}
			}
		case *ast.IncDecStmt:
			if base := rootIdent(x.X); base != nil {
				assigned[base.Name] = true
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if e == nil {
					continue
				}
				if base := rootIdent(e); base != nil {
					assigned[base.Name] = true
				}
			}
		}
		return true
	})
	if len(assigned) == 0 {
		return facts
	}
	var kept []guardFact
	for _, f := range facts {
		mentions := false
		inspectShallow(f.cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && assigned[id.Name] {
				mentions = true
				return false
			}
			return !mentions
		})
		if !mentions {
			kept = append(kept, f)
		}
	}
	return kept
}

// blockTerminates reports the block never falls through: its last
// statement is a return, branch, or panic call.
func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}
