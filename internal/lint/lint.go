// Package lint is a project-specific static-analysis framework enforcing
// solver invariants the Go compiler cannot see: library code must return
// errors rather than panic, randomized heuristics must thread an explicit
// seeded *rand.Rand, the Theorem-1 flat index r = i + j·M must come from the
// designated helpers, float64 results must not be compared with ==, goroutine
// literals must not capture loop variables, and error values must not be
// discarded with `_ =`.
//
// Analyzers run per package directory. Non-test files are fully type-checked
// (see Loader); _test.go files are parsed only, so analyzers that need type
// information never see them. Findings can be suppressed with a justified
// comment on the offending line or the line above:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; a malformed suppression is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned as file:line:col.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the tool's one-line output format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one invariant check.
type Analyzer struct {
	Name string // kebab-case identifier used in flags and suppressions
	Doc  string // one-line description of the enforced invariant

	// NeedsTypes restricts the analyzer to packages that type-checked; it
	// never runs on _test.go files (they carry no type information).
	NeedsTypes bool
	// IncludeTests extends a syntactic analyzer to _test.go files.
	IncludeTests bool

	Run func(*Pass)
}

// Pass hands one package to one analyzer and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet

	// Prog is the interprocedural view over every package the loader has
	// seen (call graph + summaries). Nil when the driver runs an analyzer
	// in isolation; analyzers degrade to their intraprocedural behavior.
	Prog *Program

	diags *[]Diagnostic
}

// Files returns the files the analyzer should inspect: non-test files
// always, plus test files when the analyzer opts in. A typed analyzer that
// opts into tests only sees the in-package test files, and only when the
// loader managed to type-check them (see Package.TestInfo).
func (p *Pass) Files() []*ast.File {
	files := p.Pkg.Files
	if p.Analyzer.IncludeTests {
		extra := p.Pkg.TestFiles
		if p.Analyzer.NeedsTypes {
			if p.Pkg.TestInfo != nil {
				extra = p.Pkg.TestInPkg
			} else {
				extra = nil
			}
		}
		files = append(append([]*ast.File(nil), files...), extra...)
	}
	return files
}

// Info returns the type information matching Files(): the combined
// files+tests check for typed analyzers that opted into test files, the
// plain package check otherwise.
func (p *Pass) Info() *types.Info {
	if p.Analyzer.IncludeTests && p.Pkg.TestInfo != nil {
		return p.Pkg.TestInfo
	}
	return p.Pkg.Info
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the registered analyzers in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PanicInLibrary,
		UnseededRand,
		RawIndexArith,
		FloatEquality,
		GoroutineLoopCapture,
		IgnoredError,
		AllocInHotLoop,
		MapOrderLeak,
		LockBalance,
		FlatBounds,
		ShadowErr,
		CancelPoll,
		IntOverflow,
		NondetReduce,
		LocksetRace,
		ChanProtocol,
		WGBalance,
	}
}

// Select resolves -enable/-disable comma lists against the registry: enable
// empty means all analyzers, otherwise only those named; disable removes
// names afterwards. Unknown names are an error.
func Select(enable, disable string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	split := func(csv string) ([]string, error) {
		var out []string
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			out = append(out, name)
		}
		return out, nil
	}
	on := make(map[string]bool)
	if names, err := split(enable); err != nil {
		return nil, err
	} else if len(names) > 0 {
		for _, n := range names {
			on[n] = true
		}
	} else {
		for n := range byName {
			on[n] = true
		}
	}
	names, err := split(disable)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		delete(on, n)
	}
	var out []*Analyzer
	for _, a := range All() {
		if on[a.Name] {
			out = append(out, a)
		}
	}
	// A selection that nets out to nothing would make the tool exit 0
	// having checked nothing — surface it as the usage error it is.
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: the -enable/-disable selection matches no analyzers")
	}
	return out, nil
}

// Run loads every directory and applies the analyzers, returning the
// surviving (unsuppressed) diagnostics sorted by position. Packages that
// fail type-checking contribute a "typecheck" diagnostic and still run the
// syntactic analyzers.
func Run(l *Loader, dirs []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	// Phase 1: load every requested directory (plus, transitively, every
	// module-internal import), so the interprocedural view below spans the
	// whole closure rather than one directory at a time.
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	prog := l.Program()
	// Phase 2: run the analyzers per package against the shared Program.
	for _, pkg := range pkgs {
		if pkg.TypeErr != nil {
			diags = append(diags, Diagnostic{
				Analyzer: "typecheck",
				Pos:      token.Position{Filename: pkg.Dir},
				Message:  pkg.TypeErr.Error(),
			})
		}
		for _, a := range analyzers {
			if a.NeedsTypes && pkg.Info == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Fset: l.Fset, Prog: prog, diags: &diags}
			a.Run(pass)
		}
		diags = applySuppressions(l.Fset, pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ExpandPatterns resolves command-line package patterns to package
// directories: "dir" names one directory, "dir/..." (and "./...") walks
// recursively, skipping testdata, vendor, hidden and non-Go directories.
func ExpandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if root == "" || root == "." {
			root = "."
		}
		if !recursive {
			if ok, err := hasGoFiles(root); err != nil {
				return nil, err
			} else if !ok {
				return nil, fmt.Errorf("lint: no Go files in %s", root)
			}
			add(filepath.Clean(root))
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if ok, err := hasGoFiles(path); err != nil {
				return err
			} else if ok {
				add(filepath.Clean(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}
