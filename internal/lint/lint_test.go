package lint

import (
	"fmt"
	"go/token"
	"strings"
	"sync"
	"testing"
)

// sharedLoader memoizes packages (including the stdlib warm-up) across every
// fixture test in this file.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// runFixture applies all analyzers to one fixture directory.
func runFixture(t *testing.T, dir string) []Diagnostic {
	t.Helper()
	diags, err := Run(testLoader(t), []string{dir}, All())
	if err != nil {
		t.Fatalf("Run(%s): %v", dir, err)
	}
	return diags
}

// keys flattens diagnostics to "analyzer:line" for compact comparison.
func keys(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s:%d", d.Analyzer, d.Pos.Line))
	}
	return out
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		dir  string
		want []string // "analyzer:line", in Run's sorted order
	}{
		{"panic_pos", []string{"panic-in-library:9", "panic-in-library:20"}},
		{"panic_neg", nil},
		{"panic_main", nil},
		{"rand_pos", []string{"unseeded-rand:12", "unseeded-rand:17", "unseeded-rand:22"}},
		{"rand_neg", nil},
		{"index_pos", []string{"raw-index-arith:8", "raw-index-arith:10"}},
		{"index_neg", nil},
		{"floateq_pos", []string{"float-equality:6", "float-equality:11"}},
		{"floateq_neg", nil},
		{"capture_pos", []string{
			"goroutine-loop-capture:13", "goroutine-loop-capture:13", "goroutine-loop-capture:13",
			"goroutine-loop-capture:26", "goroutine-loop-capture:26",
		}},
		{"capture_neg", nil},
		{"errdiscard_pos", []string{"ignored-error:8", "ignored-error:16"}},
		{"errdiscard_neg", nil},
		{"hotalloc_pos", []string{
			"alloc-in-hot-loop:9", "alloc-in-hot-loop:19", "alloc-in-hot-loop:20",
			"alloc-in-hot-loop:32",
		}},
		{"hotalloc_neg", nil},
		{"hotalloc_cold", nil},
		{"hotalloc_interrupt", nil},
		// The CSR coupling layer's pinned profile: suppressed one-time build
		// allocation, alloc-free steady-state dirty-column reuse.
		{"hotalloc_csr", nil},
		// The multilevel hierarchy's pinned profile: suppressed once-per-level
		// contraction allocation, alloc-free steady-state sweep scratch reuse.
		{"hotalloc_hierarchy", nil},
		{"suppress_ok", nil},
		{"suppress_bad", []string{"lint:7", "panic-in-library:8", "lint:16", "panic-in-library:17"}},
		{"mod_import", nil},
		{"buildtags", nil},
		{"maporder_pos", []string{"map-order-leak:12", "map-order-leak:25", "map-order-leak:34"}},
		{"maporder_neg", nil},
		{"maporder_suppress", nil},
		{"maporder_entropy", []string{"map-order-leak:12", "map-order-leak:18", "unseeded-rand:18"}},
		{"lockbal_pos", []string{"lock-balance:15", "lock-balance:29"}},
		{"lockbal_neg", nil},
		{"lockbal_suppress", nil},
		{"flatbounds_pos", []string{"flat-bounds:10", "flat-bounds:15", "flat-bounds:22"}},
		{"flatbounds_neg", nil},
		{"flatbounds_suppress", nil},
		// The p_test.go finding proves typed analyzers reach test files via
		// the loader's combined check (satellite: test type-checking).
		{"shadowerr_pos", []string{"shadow-err:21", "shadow-err:38", "shadow-err:8"}},
		{"shadowerr_neg", nil},
		{"shadowerr_suppress", nil},
		// Interprocedural analyzers: call graph + summaries (PR 6).
		{"cancelpoll_pos", []string{
			"cancel-poll:17", "cancel-poll:21", "cancel-poll:24", "cancel-poll:39",
		}},
		{"cancelpoll_neg", nil},
		{"cancelpoll_bfs", nil},      // visited-guard exemption pinned by suppression
		{"cancelpoll_callback", nil}, // poll resolved through a tracked function value
		{"cancelpoll_iface", nil},    // poll resolved through CHA on an interface call
		{"intoverflow_pos", []string{
			"int-overflow:19", "int-overflow:25", "int-overflow:33", "int-overflow:34",
		}},
		{"intoverflow_neg", nil},
		{"intoverflow_launder", nil}, // slice stores drop taint at the element boundary
		{"nondetreduce_pos", []string{
			"nondet-reduce:24", "nondet-reduce:39", "nondet-reduce:53",
		}},
		{"nondetreduce_neg", nil},
		// A hot loop allocating through an unexported helper (summary-driven);
		// the exported callee and the non-allocating helper stay exempt.
		{"hotalloc_summary", []string{"alloc-in-hot-loop:29"}},
		// Result summaries prove Shifted's offset(i) in-bounds and refute
		// ShiftedAll's.
		{"flatbounds_interproc", []string{"flat-bounds:36"}},
		// Concurrency analyzers: goroutine topology + summaries (PR 8).
		{"lockset_pos", []string{"lockset-race:14", "lockset-race:32", "lockset-race:46"}},
		{"lockset_neg", nil},
		// Locks acquired through helper methods resolve via lockExitDelta.
		{"lockset_helper", []string{"lockset-race:55"}},
		// Shared-frame callbacks (Options fields, constructor-returned
		// literals) are checked through the concurrent-literal marking.
		{"lockset_closure", []string{"lockset-race:32", "lockset-race:54"}},
		{"lockset_suppress", nil},
		{"chanproto_pos", []string{
			"chan-protocol:14", "chan-protocol:21", "chan-protocol:31", "chan-protocol:42",
		}},
		{"chanproto_neg", nil}, // the multistart drain pattern is the model
		{"chanproto_suppress", nil},
		{"wgbal_pos", []string{"wg-balance:14", "wg-balance:26"}},
		{"wgbal_neg", nil},
		{"wgbal_suppress", nil},
		// One //lint:ignore naming several analyzers covers them all.
		{"conc_multi_suppress", nil},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			got := keys(runFixture(t, "testdata/src/"+tc.dir))
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Errorf("diagnostics = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestBrokenPackage checks that a package failing type-check yields a
// "typecheck" diagnostic while syntactic analyzers still run.
func TestBrokenPackage(t *testing.T) {
	diags := runFixture(t, "testdata/src/broken")
	var haveTypecheck, havePanic bool
	for _, d := range diags {
		switch d.Analyzer {
		case "typecheck":
			haveTypecheck = true
			if !strings.Contains(d.Message, "undefinedName") {
				t.Errorf("typecheck message = %q, want mention of undefinedName", d.Message)
			}
		case "panic-in-library":
			havePanic = true
			if d.Pos.Line != 7 {
				t.Errorf("panic diagnostic at line %d, want 7", d.Pos.Line)
			}
		default:
			t.Errorf("unexpected analyzer %q", d.Analyzer)
		}
	}
	if !haveTypecheck || !havePanic {
		t.Errorf("got typecheck=%v panic=%v, want both", haveTypecheck, havePanic)
	}
}

// TestNeedsTypesSkipped checks that type-dependent analyzers stay silent on a
// package without type information instead of misfiring.
func TestNeedsTypesSkipped(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.Load("testdata/src/broken")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if pkg.TypeErr == nil || pkg.Info != nil {
		t.Fatalf("fixture should fail type-check with nil Info; TypeErr=%v Info=%v", pkg.TypeErr, pkg.Info)
	}
	for _, a := range All() {
		if !a.NeedsTypes {
			continue
		}
		diags, err := Run(l, []string{"testdata/src/broken"}, []*Analyzer{a})
		if err != nil {
			t.Fatalf("Run(%s): %v", a.Name, err)
		}
		for _, d := range diags {
			if d.Analyzer == a.Name {
				t.Errorf("%s reported %v on an un-typed package", a.Name, d)
			}
		}
	}
}

// TestModuleImportResolution checks the loader resolved a module-internal
// import from source (mod_import imports repro/internal/geometry).
func TestModuleImportResolution(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.Load("testdata/src/mod_import")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if pkg.TypeErr != nil {
		t.Fatalf("type-check failed: %v", pkg.TypeErr)
	}
	found := false
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "repro/internal/geometry" {
			found = true
		}
	}
	if !found {
		t.Errorf("imports = %v, want repro/internal/geometry", pkg.Types.Imports())
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("", "")
	if err != nil {
		t.Fatalf("Select all: %v", err)
	}
	if len(all) != len(All()) {
		t.Errorf("Select(\"\", \"\") = %d analyzers, want %d", len(all), len(All()))
	}

	one, err := Select("float-equality", "")
	if err != nil {
		t.Fatalf("Select enable: %v", err)
	}
	if len(one) != 1 || one[0].Name != "float-equality" {
		t.Errorf("Select(float-equality) = %v", one)
	}

	rest, err := Select("", "panic-in-library, ignored-error")
	if err != nil {
		t.Fatalf("Select disable: %v", err)
	}
	if len(rest) != len(All())-2 {
		t.Errorf("disable two: got %d analyzers, want %d", len(rest), len(All())-2)
	}
	for _, a := range rest {
		if a.Name == "panic-in-library" || a.Name == "ignored-error" {
			t.Errorf("disabled analyzer %q still selected", a.Name)
		}
	}

	if _, err := Select("no-such", ""); err == nil {
		t.Error("Select(no-such) did not fail")
	}
	if _, err := Select("", "no-such"); err == nil {
		t.Error("Select(disable no-such) did not fail")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "float-equality",
		Pos:      token.Position{Filename: "a/b.go", Line: 4, Column: 7},
		Message:  "== between float expressions",
	}
	want := "a/b.go:4:7: == between float expressions [float-equality]"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestExpandPatterns(t *testing.T) {
	// Recursive walk below testdata/src finds every fixture directory.
	dirs, err := ExpandPatterns([]string{"testdata/src/..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	if len(dirs) < 15 {
		t.Errorf("found %d fixture dirs, want >= 15: %v", len(dirs), dirs)
	}

	// Walking the package itself skips testdata entirely.
	dirs, err = ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns(./...): %v", err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("recursive walk did not skip testdata: %v", dirs)
		}
	}

	// A plain directory pattern resolves to exactly itself.
	dirs, err = ExpandPatterns([]string{"testdata/src/panic_pos"})
	if err != nil {
		t.Fatalf("ExpandPatterns(dir): %v", err)
	}
	if len(dirs) != 1 || dirs[0] != "testdata/src/panic_pos" {
		t.Errorf("ExpandPatterns(dir) = %v", dirs)
	}

	// A directory without Go files is an error.
	if _, err := ExpandPatterns([]string{"testdata"}); err == nil {
		t.Error("ExpandPatterns(testdata) did not fail on a Go-less directory")
	}
}

// TestSuppressionInSameLine checks the end-of-line form of //lint:ignore.
func TestSuppressionSelfAndNextLine(t *testing.T) {
	diags := runFixture(t, "testdata/src/suppress_ok")
	if len(diags) != 0 {
		t.Errorf("suppress_ok should be clean, got %v", diags)
	}
}
