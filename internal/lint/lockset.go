package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LocksetRace implements a static lockset discipline over the goroutine
// topology: a variable written from two or more concurrently-live
// goroutines must be protected by a consistent mutex lockset, moved
// through a channel handoff, or ordered by the pre-spawn / post-Wait
// happens-before edges. The lockset at each access comes from the same CFG
// facts lock-balance computes, extended through lock-helper calls via the
// function summaries.
//
// Two access patterns are checked:
//
//   - Spawner conflicts: inside a function with go statements, writes from
//     distinct spawned closures, from a replicated closure (a go under a
//     loop races with its own instances), or from the spawner's own code
//     between the first spawn and the matching WaitGroup.Wait all count as
//     concurrent. Pre-spawn initialization and post-Wait reduction are
//     happens-before ordered and exempt; so are element writes to disjoint
//     indices (the worker-k-owns-slot-k pattern) and values moved over
//     channels.
//
//   - Shared-frame closures: a function literal invoked from goroutine
//     context through a tracked function value (an Options callback
//     invoked by every worker) has one frame shared by all callers, so
//     writes to its captured variables must hold a write lock.
var LocksetRace = &Analyzer{
	Name:       "lockset-race",
	Doc:        "writes shared across concurrently-live goroutines must hold a consistent lock",
	NeedsTypes: true,
	Run:        runLocksetRace,
}

func runLocksetRace(p *Pass) {
	if p.Prog == nil || p.Pkg.Info == nil {
		return
	}
	for _, fi := range p.Prog.FuncsOf(p.Pkg) {
		if len(p.Prog.SpawnSites(fi)) > 0 {
			checkSpawnerRaces(p, fi)
		}
		// Direct spawn targets are already covered as part of their
		// spawner's conflict analysis; the shared-frame check is for
		// callback literals invoked through function values.
		if p.Prog.ConcurrentLit(fi) && !p.Prog.SpawnTarget(fi) {
			checkSharedFrameWrites(p, fi)
		}
	}
}

// raceAccess is one write to a shared variable in some concurrent context.
type raceAccess struct {
	pos     token.Pos
	lockset []string // write-lock keys provably held at the write
	ctx     int      // context id: spawn-site index, or -1 for the spawner
	inLoop  bool     // context is a replicated (looped) goroutine
}

// checkSpawnerRaces analyzes one spawning function: collects writes per
// concurrent context, groups them by variable, and reports variables whose
// concurrent writes share no lock.
func checkSpawnerRaces(p *Pass, fi *FuncInfo) {
	prog := p.Prog
	sites := prog.SpawnSites(fi)
	handoff := prog.HandoffVars(fi)

	writes := make(map[*types.Var][]raceAccess)
	record := func(fn *FuncInfo, ctx int, inLoop bool, lo, hi token.Pos) {
		sets := lockSetsFor(p, fn)
		collectWrites(fn, func(v *types.Var, n ast.Node, pos token.Pos) {
			if pos < lo || pos >= hi {
				return
			}
			writes[v] = append(writes[v], raceAccess{
				pos: pos, lockset: sets.at(n, pos), ctx: ctx, inLoop: inLoop,
			})
		})
	}

	for i, s := range sites {
		if s.Target == nil || s.Target.Lit == nil {
			continue
		}
		record(s.Target, i, s.InLoop, s.Target.Body.Pos(), s.Target.Body.End())
	}

	// The spawner's own writes count only between the first spawn and the
	// first WaitGroup.Wait after it: before the spawn nothing else runs,
	// after the Wait every worker has finished.
	firstSpawn := sites[0].Go.Pos()
	waitPos := fi.Body.End()
	info := fi.Pkg.Info
	inspectShallow(fi.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= firstSpawn || call.Pos() >= waitPos {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && wgMethods[fn.FullName()] == "Wait" {
				waitPos = call.Pos()
			}
		}
		return true
	})
	record(fi, -1, false, firstSpawn, waitPos)

	vars := make([]*types.Var, 0, len(writes))
	for v := range writes {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })

	for _, v := range vars {
		if handoff[v] || isConcurrencySafeType(v.Type()) {
			continue
		}
		acc := writes[v]
		ctxs := map[int]bool{}
		conflict := false
		for _, a := range acc {
			ctxs[a.ctx] = true
			// A replicated goroutine writing a variable declared outside
			// its own literal races with its sibling instances.
			if a.inLoop && !declaredIn(v, siteTarget(sites, a.ctx)) {
				conflict = true
			}
		}
		if len(ctxs) >= 2 {
			conflict = true
		}
		if !conflict {
			continue
		}
		common := commonLockset(acc)
		if len(common) > 0 {
			continue
		}
		// Anchor the report on the earliest write with no lock held (the
		// offending side when only one writer forgot), falling back to the
		// earliest write when the locksets are merely inconsistent.
		first := acc[0]
		for _, a := range acc[1:] {
			if a.pos < first.pos {
				first = a
			}
		}
		for _, a := range acc {
			if len(a.lockset) == 0 && (len(first.lockset) > 0 || a.pos < first.pos) {
				first = a
			}
		}
		p.Reportf(first.pos, "%s is written from %d concurrently-live goroutine contexts with no consistent lock; protect it, hand it off over a channel, or move the write before the spawns / after Wait",
			v.Name(), max(len(ctxs), 2))
	}
}

func siteTarget(sites []*SpawnSite, ctx int) *FuncInfo {
	if ctx >= 0 && ctx < len(sites) {
		return sites[ctx].Target
	}
	return nil
}

func declaredIn(v *types.Var, fi *FuncInfo) bool {
	return fi != nil && fi.spanContains(v.Pos())
}

// checkSharedFrameWrites reports writes to captured or package-level
// variables from a shared-frame closure that hold no write lock.
func checkSharedFrameWrites(p *Pass, fi *FuncInfo) {
	sets := lockSetsFor(p, fi)
	collectWrites(fi, func(v *types.Var, n ast.Node, pos token.Pos) {
		if fi.spanContains(v.Pos()) || isConcurrencySafeType(v.Type()) {
			return
		}
		if len(sets.at(n, pos)) == 0 {
			p.Reportf(pos, "%s is captured by a callback invoked from concurrent goroutines and written with no lock held", v.Name())
		}
	})
}

// collectWrites walks fn's body (nested literals excluded: they are their
// own nodes) and calls report for every write whose target resolves to a
// whole variable. Element writes (s[i] = x, *p = x) are skipped: index-
// disjoint slots per worker are the standard deterministic fan-in shape,
// and pointer stores alias beyond what a lockset key can name.
func collectWrites(fn *FuncInfo, report func(v *types.Var, n ast.Node, pos token.Pos)) {
	info := fn.Pkg.Info
	target := func(lhs ast.Expr) *types.Var {
		switch ast.Unparen(lhs).(type) {
		case *ast.IndexExpr, *ast.StarExpr:
			return nil
		}
		root := rootIdent(lhs)
		if root == nil || root.Name == "_" {
			return nil
		}
		if _, isDef := info.Defs[root]; isDef && ast.Unparen(lhs) == ast.Expr(root) {
			return nil // declaration of a fresh variable, not a shared write
		}
		if v, ok := info.Uses[root].(*types.Var); ok && !v.IsField() {
			return v
		}
		return nil
	}
	inspectShallow(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if v := target(lhs); v != nil {
					report(v, n, lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if v := target(x.X); v != nil {
				report(v, n, x.X.Pos())
			}
		}
		return true
	})
}

// commonLockset intersects the write-lock keys held across all accesses.
func commonLockset(acc []raceAccess) []string {
	if len(acc) == 0 {
		return nil
	}
	common := map[string]bool{}
	for _, k := range acc[0].lockset {
		common[k] = true
	}
	for _, a := range acc[1:] {
		have := map[string]bool{}
		for _, k := range a.lockset {
			have[k] = true
		}
		for k := range common {
			if !have[k] {
				delete(common, k)
			}
		}
	}
	return sortedKeys(common)
}

// lockSets indexes the write-lock keys provably held at entry to each CFG
// node of one function body.
type lockSets struct {
	byNode map[ast.Node][]string
	spans  []lockSpan
}

type lockSpan struct {
	lo, hi token.Pos
	keys   []string
}

// at returns the lockset for a node, falling back to the innermost CFG
// node whose span contains pos (for writes nested in statement inits or
// select clauses).
func (ls *lockSets) at(n ast.Node, pos token.Pos) []string {
	if keys, ok := ls.byNode[n]; ok {
		return keys
	}
	var best *lockSpan
	for i := range ls.spans {
		s := &ls.spans[i]
		if s.lo <= pos && pos < s.hi {
			if best == nil || (s.lo >= best.lo && s.hi <= best.hi) {
				best = s
			}
		}
	}
	if best != nil {
		return best.keys
	}
	return nil
}

// lockSetsFor runs the lock-balance dataflow over fn's body, extended
// through lock-helper calls (a callee whose summary proves it acquires or
// releases a key), and replays each block recording the must-held write
// locks at every node.
func lockSetsFor(p *Pass, fn *FuncInfo) *lockSets {
	ls := &lockSets{byNode: map[ast.Node][]string{}}
	ri := &raceInterp{
		lb:   &lockInterp{info: fn.Pkg.Info},
		prog: p.Prog,
		fn:   fn,
	}
	if !ri.mentionsAnyLocks(fn.Body) {
		return ls
	}
	g := fn.Pkg.CFG(fn.Body)
	in := SolveForward[lockFact](g, raceLockProblem{ri})
	for _, b := range g.ReversePostorder() {
		fact, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			keys := heldWriteLocks(fact)
			ls.byNode[n] = keys
			ls.spans = append(ls.spans, lockSpan{n.Pos(), n.End(), keys})
			fact = ri.step(fact, n)
		}
	}
	return ls
}

func heldWriteLocks(f lockFact) []string {
	var keys []string
	for k, st := range f.state {
		if st == lockHeld && !strings.HasSuffix(k, "\x00R") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// raceLockProblem is the lock-balance dataflow with helper calls applied.
type raceLockProblem struct {
	ri *raceInterp
}

func (p raceLockProblem) Entry() lockFact { return newLockFact() }

func (p raceLockProblem) Transfer(b *Block, in lockFact) lockFact {
	out := in
	for _, n := range b.Nodes {
		out = p.ri.step(out, n)
	}
	return out
}

func (p raceLockProblem) Join(a, b lockFact) lockFact { return lockProblem{}.Join(a, b) }
func (p raceLockProblem) Equal(a, b lockFact) bool    { return lockProblem{}.Equal(a, b) }

// raceInterp extends the lock-balance transfer with interprocedural lock
// helpers: an expression-statement call to a single static target whose
// exit summary proves a net acquire (+1) or release (-1) of a key updates
// the fact as if the Lock/Unlock were inline, with the summary's $recv /
// $argN templates instantiated from the call site.
type raceInterp struct {
	lb   *lockInterp
	prog *Program
	fn   *FuncInfo
}

func (r *raceInterp) step(f lockFact, n ast.Node) lockFact {
	out := r.lb.step(f, n, nil)
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return out
	}
	if _, _, _, isLock := r.lb.lockOp(es.X); isLock {
		return out
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return out
	}
	tgts, dyn := r.prog.funTargets(r.lb.info, call.Fun)
	if dyn || len(tgts) != 1 || tgts[0] == nil || tgts[0] == r.fn {
		return out
	}
	deltas := r.prog.lockExitDelta(tgts[0])
	if len(deltas) == 0 {
		return out
	}
	keys := make([]string, 0, len(deltas))
	for k := range deltas {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	mut := out.clone()
	changed := false
	for _, k := range keys {
		inst, ok := instantiateKeyRaw(k, call)
		if !ok {
			continue
		}
		changed = true
		if deltas[k] > 0 {
			mut.state[inst] = lockHeld
			if cur, have := mut.pos[inst]; !have || call.Pos() < cur {
				mut.pos[inst] = call.Pos()
			}
		} else {
			mut.state[inst] = lockReleased
			delete(mut.pos, inst)
		}
	}
	if !changed {
		return out
	}
	return mut
}

// mentionsAnyLocks pre-filters: the body mentions a sync lock method
// directly, or calls some module function that does.
func (r *raceInterp) mentionsAnyLocks(body *ast.BlockStmt) bool {
	if r.lb.mentionsLocks(body) {
		return true
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tgts, dyn := r.prog.funTargets(r.lb.info, call.Fun)
		if !dyn && len(tgts) == 1 && tgts[0] != nil && len(r.prog.lockExitDelta(tgts[0])) > 0 {
			found = true
		}
		return !found
	})
	return found
}

// instantiateKeyRaw rewrites a summary lock-key template into the caller's
// concrete rendering: $recv becomes the receiver expression of the call,
// $argN the N-th argument. Unlike Program.instantiateKey the result is NOT
// re-normalized, so it matches the raw renderNode keys the intraprocedural
// facts use.
func instantiateKeyRaw(key string, call *ast.CallExpr) (string, bool) {
	base, read := cutLockSuffix(key)
	var out string
	switch {
	case base == "$recv" || strings.HasPrefix(base, "$recv."):
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		out = strings.TrimPrefix(renderNode(sel.X), "&") + strings.TrimPrefix(base, "$recv")
	case strings.HasPrefix(base, "$arg"):
		rest := strings.TrimPrefix(base, "$arg")
		numEnd := len(rest)
		if dot := strings.IndexByte(rest, '.'); dot >= 0 {
			numEnd = dot
		}
		i, err := atoiSafe(rest[:numEnd])
		if err != nil || i >= len(call.Args) {
			return "", false
		}
		out = strings.TrimPrefix(renderNode(call.Args[i]), "&") + rest[numEnd:]
	default:
		out = base
	}
	if read {
		out += "\x00R"
	}
	return out, true
}

func atoiSafe(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, errNotANumber
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errNotANumber
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

var errNotANumber = errorString("not a number")

type errorString string

func (e errorString) Error() string { return string(e) }

// isConcurrencySafeType reports types whose writes need no external lock:
// the sync primitives themselves, channels (their operations synchronize),
// and function values (tracked elsewhere; overwriting one concurrently is
// rare enough that renders would drown real findings).
func isConcurrencySafeType(t types.Type) bool {
	if isSyncPrimType(t) {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Chan, *types.Signature:
		return true
	}
	return false
}
