package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

const ignorePrefix = "//lint:ignore"

// suppressionKey addresses one (file, line) position a suppression covers.
type suppressionKey struct {
	file string
	line int
}

// parseSuppression interprets one comment's text as a
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// directive. match is false when the comment is not a suppression at all
// (including near-misses like //lint:ignored). A matching but malformed
// directive — missing reason, empty or unknown analyzer name — returns a
// non-nil err describing the problem; names is non-empty exactly when
// match is true and err is nil.
func parseSuppression(text string) (names []string, match bool, err error) {
	if !strings.HasPrefix(text, ignorePrefix) {
		return nil, false, nil
	}
	rest := strings.TrimPrefix(text, ignorePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false, nil // e.g. //lint:ignored — not ours
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, true, errors.New("malformed suppression: want //lint:ignore <analyzer>[,<analyzer>...] <reason>")
	}
	names = strings.Split(fields[0], ",")
	for _, n := range names {
		if !knownAnalyzer(n) {
			return nil, true, fmt.Errorf("suppression names unknown analyzer %q", n)
		}
	}
	return names, true, nil
}

// applySuppressions drops diagnostics covered by a well-formed suppression
// comment on the same line or the line directly above, and appends a "lint"
// diagnostic for every malformed suppression comment. Diagnostics belonging
// to other packages pass through untouched.
func applySuppressions(fset *token.FileSet, pkg *Package, diags []Diagnostic) []Diagnostic {
	covered := make(map[suppressionKey]map[string]bool)
	var malformed []Diagnostic
	files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, match, err := parseSuppression(c.Text)
				if !match {
					continue
				}
				pos := fset.Position(c.Pos())
				if err != nil {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  err.Error(),
					})
					continue
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := suppressionKey{pos.Filename, line}
					if covered[k] == nil {
						covered[k] = make(map[string]bool)
					}
					for _, n := range names {
						covered[k][n] = true
					}
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if set := covered[suppressionKey{d.Pos.Filename, d.Pos.Line}]; set != nil && set[d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, malformed...)
}

func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}
