package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

const ignorePrefix = "//lint:ignore"

// suppressionKey addresses one (file, line) position a suppression covers.
type suppressionKey struct {
	file string
	line int
}

// applySuppressions drops diagnostics covered by a well-formed
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// comment on the same line or the line directly above, and appends a "lint"
// diagnostic for every malformed suppression comment. Diagnostics belonging
// to other packages pass through untouched.
func applySuppressions(fset *token.FileSet, pkg *Package, diags []Diagnostic) []Diagnostic {
	covered := make(map[suppressionKey]map[string]bool)
	var malformed []Diagnostic
	files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignored — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed suppression: want //lint:ignore <analyzer>[,<analyzer>...] <reason>",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				bad := ""
				for _, n := range names {
					if !knownAnalyzer(n) {
						bad = n
						break
					}
				}
				if bad != "" {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "suppression names unknown analyzer \"" + bad + "\"",
					})
					continue
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := suppressionKey{pos.Filename, line}
					if covered[k] == nil {
						covered[k] = make(map[string]bool)
					}
					for _, n := range names {
						covered[k][n] = true
					}
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if set := covered[suppressionKey{d.Pos.Filename, d.Pos.Line}]; set != nil && set[d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return append(kept, malformed...)
}

func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}
