package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is a committed inventory of accepted findings. Entries are
// counted per {file, analyzer, message} — line numbers are deliberately
// excluded so unrelated edits above a finding do not invalidate the
// baseline, while any NEW instance of the same message in the same file
// still fails strictly.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one accepted finding group.
type BaselineEntry struct {
	File     string `json:"file"` // module-root relative, forward slashes
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

type baselineKey struct {
	file     string
	analyzer string
	message  string
}

// NewBaseline builds a baseline covering exactly the given diagnostics.
func NewBaseline(diags []Diagnostic, root string) *Baseline {
	counts := make(map[baselineKey]int)
	for _, d := range diags {
		k := baselineKey{relativeURI(root, d.Pos.Filename), d.Analyzer, d.Message}
		counts[k]++
	}
	findings := []BaselineEntry{}
	for k, n := range counts {
		findings = append(findings, BaselineEntry{File: k.file, Analyzer: k.analyzer, Message: k.message, Count: n})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, c := findings[i], findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return &Baseline{Version: 1, Findings: findings}
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s: unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Write renders the baseline as stable, diff-friendly JSON.
func (b *Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Ratchet shrinks the baseline toward the current findings without ever
// growing it: a group survives only if it appears in both the baseline and
// the current run, at the smaller of the two counts. Groups that were fixed
// (absent from current) are dropped — they cannot silently come back — and
// NEW findings are never added; those must be fixed or suppressed with a
// justification. Returns the tightened baseline and whether it changed.
func (b *Baseline) Ratchet(diags []Diagnostic, root string) (*Baseline, bool) {
	current := NewBaseline(diags, root)
	have := make(map[baselineKey]int, len(current.Findings))
	for _, e := range current.Findings {
		have[baselineKey{e.File, e.Analyzer, e.Message}] = e.Count
	}
	out := &Baseline{Version: 1, Findings: []BaselineEntry{}}
	changed := false
	for _, e := range b.Findings {
		n, ok := have[baselineKey{e.File, e.Analyzer, e.Message}]
		if !ok {
			changed = true // fixed: drop the group
			continue
		}
		if n < e.Count {
			changed = true // partially fixed: keep only what remains
			e.Count = n
		}
		out.Findings = append(out.Findings, e)
	}
	return out, changed
}

// WriteFile writes the baseline atomically: a temp file in the target's
// directory followed by a rename, so a crash mid-write never truncates the
// committed inventory.
func (b *Baseline) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("lint: baseline: %w", err)
	}
	werr := b.Write(tmp)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lint: baseline: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lint: baseline: %w", err)
	}
	return nil
}

// Filter drops diagnostics covered by the baseline: each entry absorbs up
// to Count matching findings (by file, analyzer and message); anything
// beyond that — or not listed — passes through and stays fatal.
func (b *Baseline) Filter(diags []Diagnostic, root string) []Diagnostic {
	budget := make(map[baselineKey]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[baselineKey{e.File, e.Analyzer, e.Message}] += e.Count
	}
	var kept []Diagnostic
	for _, d := range diags {
		k := baselineKey{relativeURI(root, d.Pos.Filename), d.Analyzer, d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
