package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// buildCtx evaluates //go:build constraints and _GOOS/_GOARCH filename
// suffixes for the default build context when selecting package files.
var buildCtx = build.Default

// Package is one loaded, parsed and (best-effort) type-checked package
// directory. Non-test files carry full type information; in-package
// _test.go files get types through a second combined check (TestInfo),
// external-test-package files are parsed only.
type Package struct {
	Dir        string      // absolute directory
	ImportPath string      // module-relative import path, or Dir for out-of-module code
	Name       string      // package name of the non-test files ("" if none)
	Files      []*ast.File // non-test files, sorted by file name
	TestFiles  []*ast.File // _test.go files (internal and external test package)
	TestInPkg  []*ast.File // the subset of TestFiles in the package itself (not package foo_test)
	Types      *types.Package
	Info       *types.Info // covers Files only; nil when type-checking failed
	TypeErr    error       // first type-checking error, if any

	// TestInfo covers Files plus TestInPkg, so typed analyzers that opt
	// into test files see real type information there. It is nil when the
	// loader's test type-checking is disabled or failed (TestTypeErr); the
	// fallback is the parse-only treatment test files always had.
	TestInfo    *types.Info
	TestTypeErr error

	cfgs map[*ast.BlockStmt]*CFG // per-function CFG cache (see CFG)
}

// CFG returns the memoized control-flow graph of one function body in this
// package, shared by every dataflow analyzer.
func (p *Package) CFG(body *ast.BlockStmt) *CFG {
	if p.cfgs == nil {
		p.cfgs = make(map[*ast.BlockStmt]*CFG)
	}
	g, ok := p.cfgs[body]
	if !ok {
		g = BuildCFG(body)
		p.cfgs[body] = g
	}
	return g
}

// IsCommand reports whether the package is a main package.
func (p *Package) IsCommand() bool { return p.Name == "main" }

// Loader parses and type-checks package directories using only the standard
// library. Imports inside the enclosing module are resolved recursively from
// source; everything else is delegated to the stdlib source importer. All
// results are memoized, so a whole-repository run type-checks each package
// (and each stdlib dependency) once.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // directory containing go.mod
	ModPath string // module path declared in go.mod

	// IncludeTestTypes (default true) additionally type-checks each
	// package's in-package _test.go files into Package.TestInfo, falling
	// back to parse-only per package when that check fails. qbplint's
	// -tests=false turns it off.
	IncludeTestTypes bool

	std     types.ImporterFrom
	pkgs    map[string]*Package // by absolute dir
	loading map[string]bool     // cycle guard, by absolute dir

	prog    *Program // memoized interprocedural view (see callgraph.go)
	progGen int      // len(pkgs) when prog was built
}

// NewLoader creates a loader for the module whose root directory contains
// go.mod. dir may be any directory inside the module; the root is found by
// walking upward.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:             fset,
		ModRoot:          root,
		ModPath:          path,
		IncludeTestTypes: true,
		std:              importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:             make(map[string]*Package),
		loading:          make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the module
// root and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// importPath maps an absolute directory to its import path within the
// module; directories outside the module keep their path as a synthetic
// import path (testdata fixtures).
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return dir
	}
	if rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// moduleDir inverts importPath for paths inside the module.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load from
// source via the loader itself, everything else falls through to the stdlib
// source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.moduleDir(path); ok {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		if pkg.TypeErr != nil {
			return nil, pkg.TypeErr
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// Load parses and type-checks the package in dir (memoized).
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("lint: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	pkg, err := l.load(abs)
	if err != nil {
		return nil, err
	}
	l.pkgs[abs] = pkg
	return pkg, nil
}

func (l *Loader) load(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		// Honor //go:build constraints and filename suffixes for the
		// default context, like the go tool: without this, mutually
		// exclusive files (e.g. a race / !race pair) type-check together
		// and report a bogus redeclaration. On error, keep the file so
		// the parser reports the problem with a position.
		if ok, merr := buildCtx.MatchFile(dir, e.Name()); merr == nil && !ok {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	pkg := &Package{Dir: dir, ImportPath: l.importPath(dir)}
	for _, name := range names {
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, fmt.Errorf("lint: %w", perr)
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
			continue
		}
		pkg.Files = append(pkg.Files, f)
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
	}
	for _, f := range pkg.TestFiles {
		if pkg.Name != "" && f.Name.Name == pkg.Name {
			pkg.TestInPkg = append(pkg.TestInPkg, f)
		}
	}
	if len(pkg.Files) == 0 {
		return pkg, nil // test-only directory: syntactic analysis only
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(pkg.ImportPath, l.Fset, pkg.Files, info)
	pkg.Types = tpkg
	if firstErr == nil {
		firstErr = err // e.g. an import that failed to load
	}
	if firstErr != nil {
		pkg.TypeErr = firstErr
		pkg.Info = nil
	} else {
		pkg.Info = info
	}
	l.checkTestFiles(pkg)
	return pkg, nil
}

// checkTestFiles type-checks Files together with the in-package test files
// into pkg.TestInfo. The combined check is separate from the export check
// so importers of the package never see test-only symbols; when it fails
// (build-tagged helpers, generated code, ...) the package silently falls
// back to the parse-only treatment of test files.
func (l *Loader) checkTestFiles(pkg *Package) {
	if !l.IncludeTestTypes || pkg.Info == nil || len(pkg.TestInPkg) == 0 {
		return
	}
	files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestInPkg...)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	_, err := conf.Check(pkg.ImportPath, l.Fset, files, info)
	if firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		pkg.TestTypeErr = firstErr
		return
	}
	pkg.TestInfo = info
}
