package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WGBalance checks sync.WaitGroup accounting per function, interprocedural
// through helpers via the WGOps summaries:
//
//   - an Add with no matching Done anywhere in the function's dynamic
//     extent — its own body, nested literals, or a helper the WaitGroup is
//     passed to — leaves Wait blocked forever;
//   - an Add *inside* the spawned goroutine races with the Wait: the
//     spawner may reach Wait before the goroutine has registered itself,
//     and Wait returns early. Add must happen before the go statement.
//
// Done-only functions (worker helpers) and Wait-only functions (a close()
// that joins workers started elsewhere) are fine: the balance is charged
// to the function that Adds.
var WGBalance = &Analyzer{
	Name:       "wg-balance",
	Doc:        "WaitGroup Add needs a matching Done (helpers count) and must precede the go statement",
	NeedsTypes: true,
	Run:        runWGBalance,
}

func runWGBalance(p *Pass) {
	if p.Prog == nil || p.Pkg.Info == nil {
		return
	}
	for _, fi := range p.Prog.FuncsOf(p.Pkg) {
		// Literals are analyzed as part of their enclosing declaration:
		// the Add/Done pairing crosses the literal boundary by design.
		if fi.Decl != nil {
			checkWGBalance(p, fi)
		}
	}
}

type wgCounts struct {
	adds  []token.Pos
	dones int
	waits int
}

func checkWGBalance(p *Pass, fi *FuncInfo) {
	info := fi.Pkg.Info
	counts := map[string]*wgCounts{}
	get := func(key string) *wgCounts {
		c := counts[key]
		if c == nil {
			c = &wgCounts{}
			counts[key] = c
		}
		return c
	}

	// Spans of goroutine literals anywhere in the declaration, for the
	// Add-inside-goroutine check.
	type span struct{ lo, hi token.Pos }
	var goLits []span
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				goLits = append(goLits, span{lit.Pos(), lit.End()})
			}
		}
		return true
	})
	inGoLit := func(pos token.Pos) bool {
		for _, s := range goLits {
			if s.lo <= pos && pos <= s.hi {
				return true
			}
		}
		return false
	}

	found := false
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
				if name, isWG := wgMethods[fn.FullName()]; isWG {
					key := strings.TrimPrefix(renderNode(sel.X), "&")
					c := get(key)
					found = true
					switch name {
					case "Add":
						c.adds = append(c.adds, call.Pos())
						if inGoLit(call.Pos()) {
							p.Reportf(call.Pos(), "%s.Add inside the spawned goroutine races with Wait (the spawner can Wait before this runs); move the Add before the go statement", key)
						}
					case "Done":
						c.dones++
					case "Wait":
						c.waits++
					}
					return true
				}
			}
		}
		// A WaitGroup handed to a helper: fold the callee's per-parameter
		// summary into this function's balance.
		tgts, dyn := p.Prog.funTargets(info, call.Fun)
		if dyn || len(tgts) != 1 || tgts[0] == nil || len(tgts[0].WGOps) == 0 {
			return true
		}
		for i, arg := range call.Args {
			op, ok := tgts[0].WGOps[i]
			if !ok || !op.any() {
				continue
			}
			if !isWaitGroupExpr(info, arg) {
				continue
			}
			key := strings.TrimPrefix(renderNode(arg), "&")
			c := get(key)
			found = true
			if op.Add {
				c.adds = append(c.adds, call.Pos())
			}
			if op.Done {
				c.dones++
			}
			if op.Wait {
				c.waits++
			}
		}
		return true
	})
	if !found {
		return
	}

	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := counts[k]
		if len(c.adds) > 0 && c.dones == 0 {
			p.Reportf(c.adds[0], "%s.Add has no matching Done in this function or any helper it passes the WaitGroup to; Wait blocks forever", k)
		}
	}
}

func isWaitGroupExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	return isWaitGroupType(tv.Type)
}
