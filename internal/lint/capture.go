package lint

import (
	"go/ast"
)

// GoroutineLoopCapture flags `go func(){...}` literals that reference the
// enclosing loop's variables instead of taking them as parameters. Since
// go.mod declares ≥1.22 this is no longer a data race, but the concurrent
// solver's convention remains: a goroutine's inputs are passed explicitly,
// so the reader (and the race detector) can see them. Runs on test files
// too — a racy helper in a test corrupts exactly the runs that matter.
var GoroutineLoopCapture = &Analyzer{
	Name:         "goroutine-loop-capture",
	Doc:          "pass loop variables to go func literals as parameters, not captures",
	IncludeTests: true,
	Run: func(p *Pass) {
		for _, f := range p.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				var loopVars []*ast.Ident
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.RangeStmt:
					for _, e := range []ast.Expr{loop.Key, loop.Value} {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							loopVars = append(loopVars, id)
						}
					}
					body = loop.Body
				case *ast.ForStmt:
					if assign, ok := loop.Init.(*ast.AssignStmt); ok {
						for _, e := range assign.Lhs {
							if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
								loopVars = append(loopVars, id)
							}
						}
					}
					body = loop.Body
				default:
					return true
				}
				if len(loopVars) == 0 {
					return true
				}
				checkLoopBody(p, body, loopVars)
				return true
			})
		}
	},
}

// checkLoopBody reports loop-variable references inside `go func` literals
// within body.
func checkLoopBody(p *Pass, body *ast.BlockStmt, loopVars []*ast.Ident) {
	ast.Inspect(body, func(n ast.Node) bool {
		goStmt, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := goStmt.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		shadowed := paramNames(lit)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || shadowed[id.Name] {
				return true
			}
			for _, lv := range loopVars {
				if !sameVar(p, id, lv) {
					continue
				}
				p.Reportf(id.Pos(), "goroutine captures loop variable %q; pass it as a parameter", id.Name)
				return true
			}
			return true
		})
		return true
	})
}

func paramNames(lit *ast.FuncLit) map[string]bool {
	names := make(map[string]bool)
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				names[name.Name] = true
			}
		}
	}
	return names
}

// sameVar reports whether use refers to the variable declared by decl: by
// object identity when type information exists, by name otherwise (test
// files are not type-checked).
func sameVar(p *Pass, use, decl *ast.Ident) bool {
	if use.Name != decl.Name {
		return false
	}
	if info := p.Pkg.Info; info != nil {
		declObj := info.Defs[decl]
		if useObj := info.Uses[use]; useObj != nil && declObj != nil {
			return useObj == declObj
		}
	}
	return true
}
