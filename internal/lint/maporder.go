package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// MapOrderLeak is a CFG-based taint analysis: values derived from ranging
// over a map are tainted with the range's nondeterministic iteration order,
// and a taint that reaches a function output (return, channel send, write
// to a package variable or through a parameter) without an intervening sort
// is reported. Order-insensitive uses — keyed writes indexed by the range
// key itself, and commutative integer accumulation — are recognized and not
// flagged, which is exactly what a syntactic check cannot do.
//
// In the deterministic solver packages (qbp, gap, flatmat) the analyzer
// additionally reports any call to time.Now or to global math/rand state:
// the multi-start search promises bit-identical output for a fixed seed,
// so no wall-clock or process-global entropy may be reachable there.
var MapOrderLeak = &Analyzer{
	Name:       "map-order-leak",
	Doc:        "map iteration order must not flow into solver output without a sort",
	NeedsTypes: true,
	Run:        runMapOrderLeak,
}

// deterministicPkgs are the package names whose output the paper's
// reproduction pipeline compares bit-for-bit across runs.
var deterministicPkgs = map[string]bool{"qbp": true, "gap": true, "flatmat": true}

// sortKillers are sort-package and slices-package calls whose first
// argument comes out order-normalized.
var sortKillers = map[string]bool{
	"sort.Sort": true, "sort.Stable": true,
	"sort.Slice": true, "sort.SliceStable": true,
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func runMapOrderLeak(p *Pass) {
	info := p.Info()
	forEachFuncBody(p, func(body *ast.BlockStmt) {
		analyzeMapOrder(p, info, body)
	})
	if deterministicPkgs[p.Pkg.Name] {
		reportEntropySources(p, info)
	}
}

// mapTaint is the dataflow fact: which variables currently hold data whose
// value (or element order) depends on a map iteration, and which local
// slice variables alias each other (so sorting one launders the other).
type mapTaint struct {
	tainted map[types.Object]*ast.RangeStmt
	aliases map[types.Object]types.Object
}

func (t mapTaint) clone() mapTaint {
	c := mapTaint{
		tainted: make(map[types.Object]*ast.RangeStmt, len(t.tainted)),
		aliases: make(map[types.Object]types.Object, len(t.aliases)),
	}
	for k, v := range t.tainted {
		c.tainted[k] = v
	}
	for k, v := range t.aliases {
		c.aliases[k] = v
	}
	return c
}

// mapOrderProblem implements FlowProblem over mapTaint facts.
type mapOrderProblem struct {
	mo *mapOrderInterp
}

func (p mapOrderProblem) Entry() mapTaint {
	return mapTaint{tainted: map[types.Object]*ast.RangeStmt{}, aliases: map[types.Object]types.Object{}}
}

func (p mapOrderProblem) Transfer(b *Block, in mapTaint) mapTaint {
	out := in
	for _, n := range b.Nodes {
		out = p.mo.step(out, n, nil)
	}
	return out
}

func (p mapOrderProblem) Join(a, b mapTaint) mapTaint {
	j := a.clone()
	for obj, src := range b.tainted {
		if cur, ok := j.tainted[obj]; !ok || src.Pos() < cur.Pos() {
			j.tainted[obj] = src
		}
	}
	for obj, root := range b.aliases {
		if cur, ok := j.aliases[obj]; ok && cur != root {
			// Conflicting alias info: a nil tombstone, so the entry cannot
			// flip back and forth between joins (keeps the fact monotone).
			j.aliases[obj] = nil
		} else {
			j.aliases[obj] = root
		}
	}
	return j
}

func (p mapOrderProblem) Equal(a, b mapTaint) bool {
	if len(a.tainted) != len(b.tainted) || len(a.aliases) != len(b.aliases) {
		return false
	}
	for k, v := range a.tainted {
		if b.tainted[k] != v {
			return false
		}
	}
	for k, v := range a.aliases {
		if b.aliases[k] != v {
			return false
		}
	}
	return true
}

// mapOrderInterp carries the per-function state shared by the transfer
// function and the reporting pass.
type mapOrderInterp struct {
	pass *Pass
	info *types.Info
}

func analyzeMapOrder(p *Pass, info *types.Info, body *ast.BlockStmt) {
	mo := &mapOrderInterp{pass: p, info: info}
	g := p.Pkg.CFG(body)
	in := SolveForward[mapTaint](g, mapOrderProblem{mo})

	// Second pass with stabilized facts: replay each block and report sinks.
	reported := make(map[*ast.RangeStmt]bool)
	report := func(src *ast.RangeStmt, sink string, pos token.Pos) {
		if reported[src] {
			return
		}
		reported[src] = true
		line := p.Fset.Position(pos).Line
		p.Reportf(src.Pos(), "map iteration order flows into %s at line %d without an intervening sort", sink, line)
	}
	for _, b := range g.ReversePostorder() {
		fact, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			fact = mo.step(fact, n, report)
		}
	}
}

// step applies one CFG node to the fact; when report is non-nil it also
// checks the node's sinks.
func (mo *mapOrderInterp) step(t mapTaint, n ast.Node, report func(*ast.RangeStmt, string, token.Pos)) mapTaint {
	switch s := n.(type) {
	case *ast.RangeStmt:
		return mo.stepRange(t, s)
	case *ast.AssignStmt:
		return mo.stepAssign(t, s, report)
	case *ast.ExprStmt:
		return mo.stepCall(t, s.X)
	case *ast.ReturnStmt:
		if report != nil {
			for _, r := range s.Results {
				if src := mo.exprTaint(t, r); src != nil {
					report(src, "a return value", s.Pos())
				}
			}
		}
	case *ast.SendStmt:
		if report != nil {
			if src := mo.exprTaint(t, s.Value); src != nil {
				report(src, "a channel send", s.Pos())
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						if src := mo.exprTaint(t, vs.Values[i]); src != nil {
							if obj := mo.info.Defs[name]; obj != nil {
								t = t.clone()
								t.tainted[obj] = src
							}
						}
					}
				}
			}
		}
	}
	return t
}

// stepRange taints the key and value variables of a range over a map.
func (mo *mapOrderInterp) stepRange(t mapTaint, s *ast.RangeStmt) mapTaint {
	tv, ok := mo.info.Types[s.X]
	if !ok {
		return t
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return t
	}
	out := t.clone()
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if e == nil {
			continue
		}
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := mo.info.Defs[id]
		if obj == nil {
			obj = mo.info.Uses[id]
		}
		if obj != nil {
			out.tainted[obj] = s
		}
	}
	return out
}

func (mo *mapOrderInterp) stepAssign(t mapTaint, s *ast.AssignStmt, report func(*ast.RangeStmt, string, token.Pos)) mapTaint {
	if len(s.Lhs) != len(s.Rhs) {
		// Tuple assignment (v, ok := m[k] and friends): taint every target
		// when the single source is tainted.
		var src *ast.RangeStmt
		for _, r := range s.Rhs {
			if src = mo.exprTaint(t, r); src != nil {
				break
			}
		}
		if src == nil {
			return t
		}
		out := t.clone()
		for _, lhs := range s.Lhs {
			if obj := mo.lhsObject(lhs); obj != nil {
				out.tainted[obj] = src
			}
		}
		return out
	}
	out := t
	for i, lhs := range s.Lhs {
		rhs := s.Rhs[i]
		obj := mo.lhsObject(lhs)
		src := mo.exprTaint(t, rhs)

		// A write whose destination is selected by the tainted range key
		// (m2[k] = v, l.Arcs[k.a] = append(...)) lands in a slot the key
		// itself determines, so the result is independent of visit order.
		if mo.keyedWrite(t, lhs) {
			continue
		}

		wholeValue := obj != nil && isBareIdent(lhs) && (s.Tok == token.ASSIGN || s.Tok == token.DEFINE)
		if wholeValue {
			// Track slice identity regardless of taint: sorting either name
			// later normalizes both.
			out = out.clone()
			if root := mo.aliasRoot(rhs); root != nil && root != obj {
				out.aliases[obj] = root
			} else {
				delete(out.aliases, obj)
			}
		}
		if src == nil {
			// Untainted overwrite of a whole variable clears its taint.
			if wholeValue {
				delete(out.tainted, obj)
			}
			continue
		}
		if obj == nil {
			continue
		}
		// Commutative integer accumulation (counts[k] += 1, total += v with
		// integer total) yields the same result in any order.
		if mo.isCommutativeAccum(s, i, lhs, rhs) {
			continue
		}
		if report != nil && mo.escapingWrite(lhs, obj) {
			report(src, "a write to "+renderNode(lhs), s.Pos())
		}
		out = out.clone()
		out.tainted[obj] = src
	}
	return out
}

// stepCall kills taint through the recognized sort functions.
func (mo *mapOrderInterp) stepCall(t mapTaint, e ast.Expr) mapTaint {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return t
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return t
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok || !sortKillers[pkgID.Name+"."+sel.Sel.Name] {
		return t
	}
	if obj, isPkg := mo.info.Uses[pkgID].(*types.PkgName); !isPkg || obj == nil {
		return t
	}
	root := rootIdent(call.Args[0])
	if root == nil {
		return t
	}
	obj := mo.info.Uses[root]
	if obj == nil {
		return t
	}
	out := t.clone()
	// Sorting normalizes the slice and everything it aliases.
	for _, o := range aliasClosure(out.aliases, obj) {
		delete(out.tainted, o)
	}
	return out
}

// aliasClosure returns obj plus every object connected to it through the
// alias edges (in either direction). Tombstoned (nil) edges connect nothing.
func aliasClosure(aliases map[types.Object]types.Object, obj types.Object) []types.Object {
	in := map[types.Object]bool{obj: true}
	for changed := true; changed; {
		changed = false
		for a, b := range aliases {
			if b == nil {
				continue
			}
			if in[a] != in[b] {
				in[a], in[b] = true, true
				changed = true
			}
		}
	}
	out := make([]types.Object, 0, len(in))
	//lint:ignore map-order-leak callers consume the closure as a set; order never reaches output
	for o := range in {
		out = append(out, o)
	}
	return out
}

// exprTaint returns the range statement whose iteration order taints e, or
// nil. Function literals are opaque (their bodies have their own CFG).
func (mo *mapOrderInterp) exprTaint(t mapTaint, e ast.Expr) *ast.RangeStmt {
	if e == nil {
		return nil
	}
	var src *ast.RangeStmt
	inspectShallow(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := mo.info.Uses[id]
		if obj == nil {
			obj = mo.info.Defs[id]
		}
		if obj != nil {
			if s, ok := t.tainted[obj]; ok && (src == nil || s.Pos() < src.Pos()) {
				src = s
			}
		}
		return true
	})
	return src
}

// lhsObject resolves the object whose abstract value an assignment to lhs
// updates: the base variable of the ident/selector/index chain.
func (mo *mapOrderInterp) lhsObject(lhs ast.Expr) types.Object {
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return nil
	}
	obj := mo.info.Uses[root]
	if obj == nil {
		obj = mo.info.Defs[root]
	}
	return obj
}

// keyedWrite reports lhs is an indexed write whose index expression itself
// mentions a tainted variable — each key addresses its own slot, so the
// aggregate is iteration-order independent.
func (mo *mapOrderInterp) keyedWrite(t mapTaint, lhs ast.Expr) bool {
	found := false
	inspectShallow(lhs, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if mo.exprTaint(t, ix.Index) != nil {
			found = true
		}
		return true
	})
	return found
}

// isCommutativeAccum reports the assignment is an integer accumulation
// (n += v, n = n + v, n = v + n): addition over int is commutative and
// associative, so the order of contributions cannot change the result.
// Float accumulation is NOT exempt — rounding makes it order sensitive —
// and neither is string concatenation.
func (mo *mapOrderInterp) isCommutativeAccum(s *ast.AssignStmt, i int, lhs, rhs ast.Expr) bool {
	tv, ok := mo.info.Types[lhs]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return false
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		return true
	case token.ASSIGN:
		// Normalize n = n + v and n = v + n.
		bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.AND && bin.Op != token.OR && bin.Op != token.XOR) {
			return false
		}
		want := renderNode(lhs)
		return renderNode(bin.X) == want || renderNode(bin.Y) == want
	}
	return false
}

// escapingWrite reports the assignment publishes data beyond this call
// frame: the target is a package-level variable, or a field/element write
// through something other than a plain local (receiver, parameter,
// captured variable).
func (mo *mapOrderInterp) escapingWrite(lhs ast.Expr, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return true // package-level variable
	}
	if isBareIdent(lhs) {
		return false // whole-value overwrite of a local: tracked, not escaped
	}
	// Field or element write. Through a pointer or reference type the write
	// is visible to the caller.
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan:
		return true
	}
	return false
}

// aliasRoot returns the object of rhs when it is a plain alias-producing
// expression (another slice variable, or an element/field of one).
func (mo *mapOrderInterp) aliasRoot(rhs ast.Expr) types.Object {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
		root := rootIdent(rhs)
		if root == nil {
			return nil
		}
		obj := mo.info.Uses[root]
		if obj == nil {
			obj = mo.info.Defs[root]
		}
		return obj
	}
	return nil
}

func isBareIdent(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.Ident)
	return ok
}

// reportEntropySources flags time.Now and global math/rand reachability in
// the bit-deterministic solver packages.
func reportEntropySources(p *Pass, info *types.Info) {
	for _, f := range p.Files() {
		timeNames, randNames := entropyImports(f)
		if len(timeNames) == 0 && len(randNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if obj, isPkg := info.Uses[id].(*types.PkgName); obj == nil || !isPkg {
				return true
			}
			switch {
			case timeNames[id.Name] && sel.Sel.Name == "Now":
				p.Reportf(sel.Pos(), "time.Now is reachable in deterministic solver package %s; results must depend only on inputs and seed", p.Pkg.Name)
			case randNames[id.Name] && randGlobalFuncs[sel.Sel.Name]:
				p.Reportf(sel.Pos(), "global math/rand state is reachable in deterministic solver package %s; thread a seeded *rand.Rand", p.Pkg.Name)
			}
			return true
		})
	}
}

// entropyImports returns the local names under which time and math/rand
// are imported in f.
func entropyImports(f *ast.File) (timeNames, randNames map[string]bool) {
	timeNames = map[string]bool{}
	randNames = map[string]bool{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch path {
		case "time":
			if name == "" {
				name = "time"
			}
			timeNames[name] = true
		case "math/rand", "math/rand/v2":
			if name == "" {
				name = "rand"
			}
			randNames[name] = true
		}
	}
	return timeNames, randNames
}
