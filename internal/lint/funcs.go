package lint

import "go/ast"

// forEachFuncBody visits every function body in the pass's files: named
// declarations and function literals. Each body gets its own CFG; the
// enclosing function's graph treats a literal as an opaque value, so
// dataflow analyzers must not descend into nested *ast.FuncLit bodies
// while walking block nodes.
func forEachFuncBody(p *Pass, fn func(body *ast.BlockStmt)) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Body)
				}
			case *ast.FuncLit:
				fn(d.Body)
			}
			return true
		})
	}
}

// inspectShallow walks the expression trees of n without entering nested
// function literals (their statements belong to another CFG).
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return fn(m)
	})
}
