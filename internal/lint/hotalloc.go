package lint

import (
	"go/ast"
	"go/types"
)

// hotLoopPackages are the solver kernels whose loops run once per heuristic
// iteration (or more): a per-iteration allocation there is a measurable
// regression, which is why their working memory lives in solver-owned
// scratch buffers.
var hotLoopPackages = map[string]bool{
	"qbp": true,
	"gap": true,
}

// AllocInHotLoop flags allocation sites inside for/range bodies of the hot
// solver packages: `make(...)`, and `append` onto a base that can never
// reuse capacity (nil, a []T(nil) conversion, or a composite literal). Both
// spell "fresh garbage every iteration" — hoist the buffer into the scratch
// struct and reslice it instead. Deliberate once-per-solve setup loops carry
// a //lint:ignore alloc-in-hot-loop suppression with the justification.
//
// The interrupt.Checker cancellation polls the solvers thread through
// their iteration boundaries are exempt by construction: a poll is a
// method call on a stack value (one counter increment on the fast path,
// no make, no fresh append), so it introduces no allocation site for this
// analyzer to flag. The hotalloc_interrupt fixture pins that pattern as
// diagnostic-free.
var AllocInHotLoop = &Analyzer{
	Name: "alloc-in-hot-loop",
	Doc:  "no per-iteration allocations in solver hot loops; hoist into scratch buffers",
	Run: func(p *Pass) {
		if !hotLoopPackages[p.Pkg.Name] {
			return
		}
		seen := make(map[ast.Node]bool)
		for _, f := range p.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				switch loop := n.(type) {
				case *ast.ForStmt:
					reportLoopAllocs(p, loop.Body, seen)
				case *ast.RangeStmt:
					reportLoopAllocs(p, loop.Body, seen)
				}
				return true
			})
		}
	},
}

// reportLoopAllocs reports the allocation sites directly inside body. It does
// not descend into function literals (a closure's allocations happen when it
// runs, not per enclosing iteration) and deduplicates nested-loop bodies,
// which the outer walk visits more than once.
//
// When the interprocedural Program is available (and the package
// type-checked), allocations hidden behind helper calls are reported too: a
// direct call to an unexported module function whose summary says it (or
// anything it statically calls) allocates is the same per-iteration garbage
// with the make one frame down. Exported functions are exempt — they are
// API with their own contracts, and flagging every cross-package call would
// punish composition rather than allocation.
func reportLoopAllocs(p *Pass, body *ast.BlockStmt, seen map[ast.Node]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || seen[call] {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		switch {
		case fn.Name == "make":
			seen[call] = true
			p.Reportf(call.Pos(), "make in a hot solver loop allocates every iteration; hoist into a scratch buffer")
		case fn.Name == "append" && len(call.Args) > 0 && freshSliceBase(call.Args[0]):
			seen[call] = true
			p.Reportf(call.Pos(), "append onto a fresh slice in a hot solver loop allocates every iteration; reuse a scratch buffer")
		case allocatingHelper(p, fn):
			seen[call] = true
			p.Reportf(call.Pos(), "call to %s in a hot solver loop allocates every iteration (make/append in its body or callees); hoist the buffer and pass it in", fn.Name)
		}
		return true
	})
}

// allocatingHelper reports fn names an unexported module function whose
// interprocedural summary allocates. Without a Program or type information
// the analyzer keeps its purely syntactic behavior.
func allocatingHelper(p *Pass, fn *ast.Ident) bool {
	if p.Prog == nil || p.Pkg.Info == nil || ast.IsExported(fn.Name) {
		return false
	}
	tf, ok := p.Pkg.Info.Uses[fn].(*types.Func)
	if !ok {
		return false
	}
	fi := p.Prog.FuncOf(tf)
	return fi != nil && fi.Allocates
}

// freshSliceBase matches append first arguments that can never carry spare
// capacity: nil, a composite literal, or a []T(nil) conversion.
func freshSliceBase(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if _, isSlice := x.Fun.(*ast.ArrayType); isSlice && len(x.Args) == 1 {
			id, ok := ast.Unparen(x.Args[0]).(*ast.Ident)
			return ok && id.Name == "nil"
		}
	}
	return false
}
