package lint

// Generic forward dataflow over the lint CFG. Analyzers implement
// FlowProblem; the solver iterates block transfer functions to a fixpoint
// in reverse postorder with a worklist.
//
// Termination: every analyzer's lattice either has finite height
// (map-order-leak and lock-balance join finite sets/states drawn from the
// function's syntax) or is widened at loop heads after a bounded number of
// visits (flat-bounds drops changing interval bounds to ±∞ via Widen). A
// hard visit cap backstops both arguments so a buggy transfer function can
// only cost time, never loop the linter forever.

// FlowProblem defines one forward analysis. F must behave as an immutable
// value: Transfer and Join return fresh facts rather than mutating inputs.
type FlowProblem[F any] interface {
	// Entry is the fact at function entry.
	Entry() F
	// Transfer applies block b to the incoming fact.
	Transfer(b *Block, in F) F
	// Join merges two facts at a control-flow merge point.
	Join(a, b F) F
	// Equal reports whether two facts are indistinguishable (fixpoint test).
	Equal(a, b F) bool
}

// EdgeRefiner optionally refines the fact flowing along one edge: succIdx
// is the index into from.Succs, so a conditional block (Cond != nil) sees
// succIdx 0 for the true edge and 1 for the false edge. Interval analysis
// uses this to narrow variable ranges under comparisons.
type EdgeRefiner[F any] interface {
	Refine(from *Block, succIdx int, out F) F
}

// Widener optionally accelerates convergence on infinite-height lattices:
// after widenAfter visits of a loop-head block, Widen(prev, next) replaces
// Join's result on that block.
type Widener[F any] interface {
	Widen(prev, next F) F
}

// widenAfter is the number of loop-head visits before widening kicks in:
// two full passes let simple induction variables stabilize their lower
// bound before the upper bound is widened away (and re-refined by the loop
// condition edge).
const widenAfter = 2

// SolveForward runs the analysis to fixpoint and returns the fact at the
// entry of every reachable block.
func SolveForward[F any](g *CFG, p FlowProblem[F]) map[*Block]F {
	rpo := g.ReversePostorder()
	pos := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		pos[b] = i
	}
	heads := g.LoopHeads()
	refiner, _ := p.(EdgeRefiner[F])
	widener, _ := p.(Widener[F])

	in := make(map[*Block]F, len(rpo))
	hasIn := make(map[*Block]bool, len(rpo))
	visits := make(map[*Block]int, len(rpo))
	in[g.Entry] = p.Entry()
	hasIn[g.Entry] = true

	inWork := make(map[*Block]bool, len(rpo))
	work := []*Block{g.Entry}
	inWork[g.Entry] = true

	// Hard backstop: generous for any real function, final for pathological
	// transfer functions.
	maxSteps := 64 * (len(rpo) + 4)
	for steps := 0; len(work) > 0 && steps < maxSteps; steps++ {
		// Pop the earliest block in reverse postorder for fast convergence.
		best := 0
		for i := 1; i < len(work); i++ {
			if pos[work[i]] < pos[work[best]] {
				best = i
			}
		}
		b := work[best]
		work[best] = work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false

		out := p.Transfer(b, in[b])
		for k, s := range b.Succs {
			next := out
			if refiner != nil {
				next = refiner.Refine(b, k, next)
			}
			if !hasIn[s] {
				in[s] = next
				hasIn[s] = true
			} else {
				joined := p.Join(in[s], next)
				if widener != nil && heads[s] && visits[s] >= widenAfter {
					joined = widener.Widen(in[s], joined)
				}
				if p.Equal(in[s], joined) {
					continue
				}
				in[s] = joined
			}
			visits[s]++
			if !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	return in
}
