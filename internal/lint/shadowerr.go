package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShadowErr flags the classic shadowed-error bug: an inner `:=` rebinds an
// error variable that also exists in an enclosing function scope, and the
// OUTER variable is read again after the inner scope has closed — so
// whatever the shadowed assignment produced is invisible to the later
// check, which silently consults stale state. Runs on test files too (via
// the loader's combined type-check): table-driven tests redefine err in
// nested blocks constantly and are where this bug hides best.
//
// Shadows introduced in an if/for/switch init clause
// (`if err := f(); err != nil`) are exempt: there the declaration is
// syntactically bound to its own check, which is the idiom Go recommends
// precisely to LIMIT scope — confusing it with the outer variable is not
// plausible.
var ShadowErr = &Analyzer{
	Name:         "shadow-err",
	Doc:          "an inner err := shadowing an outer error later re-checked reads stale state",
	NeedsTypes:   true,
	IncludeTests: true,
	Run:          runShadowErr,
}

func runShadowErr(p *Pass) {
	info := p.Info()
	errType := types.Universe.Lookup("error").Type()

	// Index every read/write reference per variable object.
	usePos := make(map[types.Object][]token.Pos)
	for id, obj := range info.Uses {
		if _, isVar := obj.(*types.Var); isVar {
			usePos[obj] = append(usePos[obj], id.Pos())
		}
	}

	for _, f := range p.Files() {
		// Collect init-clause assignments: those shadows are idiomatic.
		initStmts := make(map[ast.Stmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.IfStmt:
				initStmts[s.Init] = true
			case *ast.ForStmt:
				initStmts[s.Init] = true
			case *ast.SwitchStmt:
				initStmts[s.Init] = true
			case *ast.TypeSwitchStmt:
				initStmts[s.Init] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || initStmts[as] {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				inner, ok := info.Defs[id].(*types.Var)
				if !ok || !types.Identical(inner.Type(), errType) {
					continue
				}
				outer := shadowedVar(inner, id.Name)
				if outer == nil || !types.Identical(outer.Type(), errType) {
					continue
				}
				// Only function-local outers: shadowing a package-level
				// error variable and reading it later is a different (and
				// rarer) story than the stale-err pattern.
				if outer.Parent() == nil || outer.Parent().Parent() == types.Universe {
					continue
				}
				// The bug needs the outer value to be consulted after the
				// inner binding's scope has ended; reads before (or none)
				// cannot observe stale state.
				scopeEnd := inner.Parent().End()
				staleRead := false
				for _, pos := range usePos[outer] {
					if pos >= scopeEnd {
						staleRead = true
						break
					}
				}
				if !staleRead {
					continue
				}
				p.Reportf(id.Pos(), "%s := shadows %s from an enclosing scope; the check after this block reads the outer (stale) value", id.Name, id.Name)
			}
			return true
		})
	}
}

// shadowedVar finds the variable named name in a scope strictly enclosing
// inner's own scope, visible at inner's position.
func shadowedVar(inner *types.Var, name string) *types.Var {
	scope := inner.Parent()
	if scope == nil || scope.Parent() == nil {
		return nil
	}
	_, obj := scope.Parent().LookupParent(name, inner.Pos())
	if obj == nil || obj == inner {
		return nil
	}
	v, _ := obj.(*types.Var)
	return v
}
