// Fixture: malformed suppression comments that must themselves be reported.
package fixture

// NoReason omits the justification text.
func NoReason(n int) int {
	if n <= 0 {
		//lint:ignore panic-in-library
		panic("n must be positive") // suppression above is malformed: still flagged
	}
	return n
}

// UnknownName names an analyzer that does not exist.
func UnknownName(n int) int {
	if n <= 0 {
		//lint:ignore no-such-analyzer because reasons
		panic("n must be positive")
	}
	return n
}
