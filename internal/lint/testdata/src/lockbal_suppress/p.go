// Fixture: a deliberate lock handoff documented with a suppression.
package fixture

import "sync"

// Pipeline hands its lock across goroutine boundaries.
type Pipeline struct {
	mu sync.Mutex
}

// Acquire transfers lock ownership to the caller by contract; the matching
// Release runs in another frame.
func (p *Pipeline) Acquire() {
	//lint:ignore lock-balance lock ownership transfers to the caller by contract
	p.mu.Lock()
}

// Release is the matching half of the handoff.
func (p *Pipeline) Release() {
	p.mu.Unlock()
}
