// Positive fixture: exact comparison of computed floats.
package fixture

// Converged compares two accumulated costs exactly.
func Converged(prev, cur float64) bool {
	return prev == cur // line 6: diagnostic
}

// Changed compares a ratio against a non-zero constant.
func Changed(improve float64) bool {
	return improve != 1.0 // line 11: diagnostic
}
