// Fixture: result summaries carry interval facts across call boundaries.
// upTo and offset are summarized bottom-up; flat-bounds then proves (or
// refutes) the indexing in their callers.
package flatmat

import fm "repro/internal/flatmat"

// upTo returns len(xs); its summary is the exact point len($xs).
func upTo(xs []int64) int {
	return len(xs)
}

// offset returns n+1; its summary is the point $n+1, valid when n ≥ 0.
func offset(n int) int {
	return n + 1
}

// Prefix slices to the summarized length — provably within bounds.
func Prefix(m *fm.Matrix) []int64 {
	return m.V[:upTo(m.V)]
}

// Shifted indexes at offset(i) with i < len-1, so i+1 ≤ len-1: provable.
func Shifted(m *fm.Matrix) int64 {
	var s int64
	for i := 0; i < len(m.V)-1; i++ {
		s += m.V[offset(i)]
	}
	return s
}

// ShiftedAll lets i run to len, so offset(i) can reach len: reported.
func ShiftedAll(m *fm.Matrix) int64 {
	var s int64
	for i := 0; i < len(m.V); i++ {
		s += m.V[offset(i)]
	}
	return s
}
