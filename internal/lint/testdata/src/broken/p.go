// Fixture: fails type-checking (undefined identifier) but parses, so the
// driver must emit a typecheck diagnostic and still run syntactic analyzers.
package fixture

// Boom references an undefined name and also panics.
func Boom() int {
	panic("still visible to the syntactic panic analyzer")
	return undefinedName
}
