// Fixture: flat-vector accesses the interval prover can discharge,
// including the full Theorem-1 obligation via the integer-division rule
// (len(m.V)/m.Stride − 1)·m.Stride + m.Stride − 1 ≤ len(m.V) − 1.
package flatmat

import fm "repro/internal/flatmat"

// SumAll walks the vector with loop-bounded indices.
func SumAll(m *fm.Matrix) int64 {
	var s int64
	for i := 0; i < len(m.V); i++ {
		s += m.V[i]
	}
	return s
}

// SumPacked proves the packed index i*Stride+j stays below len(m.V) for
// i < rows and j < Stride, where rows = len(m.V)/m.Stride.
func SumPacked(m *fm.Matrix) int64 {
	var s int64
	rows := len(m.V) / m.Stride
	for i := 0; i < rows; i++ {
		for j := 0; j < m.Stride; j++ {
			s += m.V[i*m.Stride+j]
		}
	}
	return s
}

// Halves splits the vector at a provably in-range midpoint.
func Halves(m *fm.Matrix) ([]int64, []int64) {
	mid := len(m.V) / 2
	return m.V[:mid], m.V[mid:]
}
