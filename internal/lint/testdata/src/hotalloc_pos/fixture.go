// Positive fixture: per-iteration allocations in a hot solver package.
// The package is named qbp so the analyzer treats its loops as hot.
package qbp

// MakeInLoop allocates a fresh buffer every iteration.
func MakeInLoop(n int) int {
	total := 0
	for k := 0; k < n; k++ {
		buf := make([]int, n) // line 9: make in loop
		total += len(buf)
	}
	return total
}

// AppendFresh rebuilds slices from scratch inside a range loop.
func AppendFresh(xs []int) [][]int {
	var out [][]int
	for _, x := range xs {
		row := append([]int{}, x)        // line 19: composite-literal base
		row = append([]int(nil), row...) // line 20: typed-nil base
		out = append(out, row)
	}
	return out
}

// NestedLoop: the inner loop's make is reported exactly once even though
// both loop walks visit it.
func NestedLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			total += len(make([]int, j)) // line 32: one diagnostic, not two
		}
	}
	return total
}
