// Fixture: solver loops reachable from an entry point that never poll for
// cancellation. Solve builds a Checker — so the package clearly promises
// cancellation — but none of its loops ever consult it.
package solver

import (
	"context"

	"repro/internal/interrupt"
)

// Solve runs four shapes of unpolled loops. The lone Now() poll after the
// loops guards nothing.
func Solve(ctx context.Context, iterations int, work []int) int {
	ck := interrupt.New(ctx, 0)
	done := 0
	for k := 0; k < iterations; k++ { // knob-bounded, no poll
		done += work[k%len(work)]
	}
	queue := []int{1}
	for len(queue) > 0 { // worklist-driven, no poll
		queue = queue[1:]
	}
	for { // unconditional, exits only on progress
		if done > 3 {
			break
		}
		done++
	}
	if ck.Now() {
		return -1
	}
	return done + drain(make(chan int))
}

// drain is unexported but reachable from Solve, so its loop is checked too.
func drain(ch chan int) int {
	total := 0
	for v := range ch { // range over channel, no poll
		total += v
	}
	return total
}
