// Fixture: a finding silenced by a well-formed suppression comment.
package fixture

// MustPositive panics on bad input by design; the suppression documents why.
func MustPositive(n int) int {
	if n <= 0 {
		//lint:ignore panic-in-library contract helper, documented to panic
		panic("n must be positive")
	}
	return n
}
