// Fixture: entropy sources inside a deterministic solver package. The
// package NAME (qbp) selects the strict policy, not the directory.
package qbp

import (
	"math/rand"
	"time"
)

// Stamp leaks wall-clock time into solver state.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter draws from process-global randomness (also caught by
// unseeded-rand; map-order-leak adds the determinism-contract framing).
func Jitter() int {
	return rand.Intn(4)
}
