// Fixture: a justified lockset-race suppression — an intentionally
// approximate counter where torn updates are acceptable.
package solver

import "sync"

// ApproxCounter tolerates lost increments by design.
func ApproxCounter() int {
	var wg sync.WaitGroup
	n := 0
	wg.Add(2)
	go func() {
		defer wg.Done()
		//lint:ignore lockset-race approximate telemetry counter; lost updates are acceptable
		n++
	}()
	go func() {
		defer wg.Done()
		//lint:ignore lockset-race approximate telemetry counter; lost updates are acceptable
		n++
	}()
	wg.Wait()
	return n
}
