// Fixture: a worklist loop whose total work is bounded by a visited guard.
// The analyzer cannot prove that, so the exemption is pinned with an
// explicit suppression — the one escape hatch the contract allows.
package solver

import (
	"context"

	"repro/internal/interrupt"
)

// Solve walks a graph breadth-first; each node enters the queue at most
// once, so the drain is bounded by len(adj) and needs no poll. The checker
// guards the caller's surrounding refinement loop, not this walk.
func Solve(ctx context.Context, adj [][]int) []int {
	ck := interrupt.New(ctx, 0)
	if ck.Now() {
		return nil
	}
	visited := make([]bool, len(adj))
	visited[0] = true
	queue := []int{0}
	var order []int
	//lint:ignore cancel-poll BFS visits each node exactly once (visited guard); bounded by len(adj)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range adj[v] {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return order
}
