// Positive fixture: inline flat-index packing outside the helper packages.
package fixture

// Value recomputes the Theorem-1 packing by hand, in both operand orders.
func Value(q [][]int64, a []int, m int) int64 {
	var v int64
	for j1, i1 := range a {
		row := q[i1+j1*m] // line 9: diagnostic
		for j2, i2 := range a {
			v += row[j2*m+i2] // line 11: diagnostic
		}
	}
	return v
}
