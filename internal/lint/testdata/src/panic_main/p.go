// Negative fixture: panic in package main is allowed (a command owns its
// process).
package main

func main() {
	panic("commands may crash")
}
