// Fixture: shared variables written from concurrently-live goroutines with
// no consistent lock. Every case must be reported by lockset-race.
package solver

import "sync"

// TwoWriters: two goroutines increment the same captured counter lock-free.
func TwoWriters() int {
	var wg sync.WaitGroup
	n := 0
	wg.Add(2)
	go func() {
		defer wg.Done()
		n++ // first write by position: the report lands here
	}()
	go func() {
		defer wg.Done()
		n++
	}()
	wg.Wait()
	return n
}

// LoopedWriter: one replicated goroutine races with its own instances.
func LoopedWriter(k int) int {
	var wg sync.WaitGroup
	total := 0
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total += 1
		}()
	}
	wg.Wait()
	return total
}

// SpawnerWrites: the spawner mutates state while the worker still runs.
func SpawnerWrites() int {
	var wg sync.WaitGroup
	state := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		state = 1
	}()
	state = 2 // between spawn and Wait: concurrent with the goroutine
	wg.Wait()
	return state
}
