// Fixture: the multilevel hierarchy build's allocation profile is pinned —
// contracting a level allocates the coarse graph's arrays exactly once per
// level (a handful of times per solve), which carries the documented
// alloc-in-hot-loop suppression, while the per-pass refinement sweep reuses
// solver-owned scratch through a [:0] reslice and must stay
// diagnostic-free. The package is named qbp so the analyzer treats its
// loops as hot.
package qbp

type levelGraph struct {
	rowPtr []int
	col    []int32
	weight []int64
	sizes  []int64
}

type sweepScratch struct {
	moves []int
}

// coarsenAll is the once-per-solve hierarchy construction: each iteration
// contracts one level, and the coarse arrays it allocates live for the whole
// V-cycle — a deliberate one-time allocation per level, exempted with a
// justification.
func coarsenAll(g *levelGraph, target int) []*levelGraph {
	levels := []*levelGraph{g}
	for top := g; len(top.sizes) > target; {
		nc := len(top.sizes) / 2
		cg := &levelGraph{}
		//lint:ignore alloc-in-hot-loop one-time hierarchy build, once per level
		cg.rowPtr, cg.sizes = make([]int, nc+1), make([]int64, nc)
		for j, s := range top.sizes {
			cg.sizes[j/2] += s
		}
		levels = append(levels, cg)
		top = cg
	}
	return levels
}

// sweepMoves is the steady-state refinement pattern: the append base is a
// [:0] reslice of reusable scratch, so passes after the first allocate
// nothing.
func sweepMoves(g *levelGraph, sc *sweepScratch, dirty []bool) []int {
	moves := sc.moves[:0]
	for j, dj := range dirty {
		if !dj {
			continue
		}
		for k := g.rowPtr[j]; k < g.rowPtr[j+1]; k++ {
			if g.weight[k] != 0 {
				moves = append(moves, int(g.col[k]))
			}
		}
	}
	sc.moves = moves
	return moves
}
