// Fixture: balanced lock usage — explicit release on every path, deferred
// release (direct and through a closure), read locks, and an unlock-only
// helper whose lock is held by the caller.
package fixture

import "sync"

// Counter guards a value with a RWMutex.
type Counter struct {
	mu sync.RWMutex
	n  int
}

// Add balances on the straight path.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// Snapshot releases via defer on every path, including the early return.
func (c *Counter) Snapshot(clamp bool) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if clamp && c.n < 0 {
		return 0
	}
	return c.n
}

// Guarded releases inside a deferred closure.
func (c *Counter) Guarded(f func() int) int {
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
	}()
	return f()
}

// releaseLocked is an unlock-only helper: the caller holds the lock, so a
// single Unlock here is not a double release.
func (c *Counter) releaseLocked() {
	c.n = 0
	c.mu.Unlock()
}

// Branchy releases on both arms before returning.
func (c *Counter) Branchy(hi bool) int {
	c.mu.Lock()
	if hi {
		c.n++
		c.mu.Unlock()
		return c.n
	}
	c.mu.Unlock()
	return 0
}
