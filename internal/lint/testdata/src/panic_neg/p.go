// Negative fixture: library code that returns errors, plus a local function
// that happens to be named panic (allowed — it is not the builtin).
package fixture

import "fmt"

// F reports bad input as an error.
func F(x int) (int, error) {
	if x < 0 {
		return 0, fmt.Errorf("negative input %d", x)
	}
	return x, nil
}

type logger struct{}

// panic here is a method, not the builtin.
func (logger) panic(msg string) {}

// G calls the method, not the builtin.
func G() {
	var l logger
	l.panic("fine")
}
