// Fixture: ceiling-scale arithmetic certified safe by each of the guard
// rules: compensating bound (satAdd/satScale shapes), else-branch guard,
// sentinel clearing, constant headroom, and the interprocedural interval
// rule. Nothing here should be reported.
package solver

import "math"

const ceiling = int64(1) << 35

// satAdd is the compensating-guard idiom: the early exit bounds a by
// ceiling-b, so a+b cannot exceed ceiling.
func satAdd(a, b int64) int64 {
	if a > ceiling-b {
		return ceiling
	}
	return a + b
}

// satScale is the quotient form of the same guard.
func satScale(w int64) int64 {
	if w > ceiling/4 {
		return ceiling
	}
	return w * 4
}

// addClamped guards in the then-branch and accumulates in the else.
func addClamped(w, best int64) int64 {
	if best > math.MaxInt64-w {
		w = math.MaxInt64
	} else {
		w += best
	}
	return w
}

// countCapped advances a tainted counter under a constant cap; one more
// step from below ceiling has headroom to spare.
func countCapped(pen int64) int64 {
	if pen < ceiling {
		pen++
	}
	return pen
}

// SumBounded excludes the unset marker before accumulating, clearing the
// only taint source of best.
func SumBounded(vals []int64, total int64) int64 {
	best := int64(math.MaxInt64)
	for _, v := range vals {
		if v < best {
			best = v
		}
	}
	if best == math.MaxInt64 {
		return total
	}
	return total + best
}

// ViaSummary leans on satAdd's result summary: the callee caps its result
// at ceiling, so the interval pass proves s+1 has constant headroom.
func ViaSummary(n int64) int64 {
	if n < 0 {
		return 0
	}
	s := satAdd(n, 3)
	return s + 1
}

// Total threads ceiling-scale arguments through the helpers so their
// parameters are genuinely tainted — the guards, not an absence of taint,
// are what keep this fixture clean.
func Total(costs []int64) int64 {
	t := int64(0)
	for range costs {
		t = satAdd(t, ceiling)
	}
	t = satScale(t)
	t = addClamped(t, ceiling)
	return countCapped(t)
}
