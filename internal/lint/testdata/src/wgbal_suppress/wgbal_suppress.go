// Fixture: a justified wg-balance suppression — the Done lives behind a
// dynamic dispatch the summary cannot see.
package solver

import "sync"

// hooks is a callback table; the registered hook calls Done.
var hooks []func(*sync.WaitGroup)

// DynamicDone registers workers whose Done happens through the hook table.
func DynamicDone() {
	var wg sync.WaitGroup
	//lint:ignore wg-balance the Done is issued by the registered hook, invoked reflectively
	wg.Add(len(hooks))
	for _, h := range hooks {
		go h(&wg)
	}
	wg.Wait()
}
