// Fixture: WaitGroup misuse — an Add with no matching Done anywhere, and
// an Add inside the spawned goroutine racing with Wait. Both must be
// reported by wg-balance.
package solver

import "sync"

func work(int) {}

// AddNoDone: nothing ever calls Done, so Wait blocks forever.
func AddNoDone(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go work(i)
	}
	wg.Wait()
}

// AddInside: the goroutine registers itself after the spawner may already
// be in Wait.
func AddInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1)
			defer wg.Done()
			work(0)
		}()
	}
	wg.Wait()
}
