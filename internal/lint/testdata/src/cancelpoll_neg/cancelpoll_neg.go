// Fixture: loops that poll for cancellation or are exempt by construction.
// None of these should be reported by cancel-poll.
package solver

import (
	"context"

	"repro/internal/interrupt"
)

// SolvePolled guards every unbounded loop with a context poll.
func SolvePolled(ctx context.Context, iterations int, work []int64) int64 {
	var total int64
	for k := 0; k < iterations; k++ { // polled via ctx.Err
		if ctx.Err() != nil {
			break
		}
		total += work[k%len(work)]
	}
	for { // polled via select on ctx.Done
		select {
		case <-ctx.Done():
			return total
		default:
		}
		if total > 100 {
			break
		}
		total++
	}
	// Problem-size loops terminate on their own; no poll required.
	for i := 0; i < len(work); i++ {
		total += work[i]
	}
	// A compound condition is bounded if either side bounds it: j < len(work)
	// does, even though b < iterations alone would not.
	for j, b := 0, 0; j < len(work) && b < iterations; j++ {
		total += work[j]
		b++
	}
	// A counter that merely *is named* like a knob is not knob-bounded:
	// iter here counts to a constant, not to an iteration budget.
	for iter := 0; iter < 4; iter++ {
		total++
	}
	return total
}

// SolvePasses uses the sticky-flag idiom: the inner sweep polls ck.Now(),
// and the outer pass loop exits on the sticky ck.Stopped() read. Because
// this function polls, Stopped counts as its loop guard.
func SolvePasses(ctx context.Context, sweeps int) int {
	ck := interrupt.New(ctx, 0)
	total := 0
	for {
		for k := 0; k < sweeps; k++ {
			if ck.Now() {
				break
			}
			total++
		}
		if total > 10 || ck.Stopped() {
			break
		}
	}
	return total
}
