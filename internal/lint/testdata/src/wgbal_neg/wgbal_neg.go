// Fixture: balanced WaitGroup accounting — the standard Add-before-spawn /
// deferred-Done shape, a Done-only worker helper charged to its caller via
// the WGOps summary, and a Wait-only join. wg-balance must stay silent.
package solver

import "sync"

// Standard: Add before the go statement, deferred Done inside the literal.
func Standard(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// worker is Done-only: the balance is charged to the function that Adds.
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

// HelperDone: the Done lives in the helper; the summary connects it.
func HelperDone(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go worker(&wg)
	}
	wg.Wait()
}

// join is Wait-only: the workers were registered elsewhere.
func join(wg *sync.WaitGroup) {
	wg.Wait()
}

// JoinElsewhere exercises the Wait-only helper.
func JoinElsewhere() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	join(&wg)
}
