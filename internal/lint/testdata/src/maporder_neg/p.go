// Fixture: order-insensitive map consumption — none of these may be
// flagged. Covers the unconditional sort, the sort-through-alias, keyed
// writes addressed by the range key itself, and commutative integer
// accumulation.
package fixture

import "sort"

// SortedKeys normalizes before returning.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SortedViaAlias sorts under another name for the same backing array.
func SortedViaAlias(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	view := out
	sort.Strings(view)
	return out
}

// Invert writes each entry into the slot its own key selects; the final
// map is identical for every visit order.
func Invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Total accumulates integers: addition over int is commutative and
// associative, so order cannot show in the result.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
