// Fixture: a real map-order leak silenced with a justified suppression.
package fixture

// Members deliberately returns keys in arbitrary order; every caller treats
// the result as an unordered set.
func Members(m map[string]bool) []string {
	var out []string
	//lint:ignore map-order-leak callers treat the result as an unordered set
	for k := range m {
		out = append(out, k)
	}
	return out
}
