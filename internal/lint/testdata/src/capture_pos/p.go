// Positive fixture: goroutines capturing enclosing loop variables.
package fixture

import "sync"

// RangeCapture captures the range variable.
func RangeCapture(xs []int, out []int) {
	var wg sync.WaitGroup
	for k, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[k] = x * x // line 13: two diagnostics (k and x)
		}()
	}
	wg.Wait()
}

// ForCapture captures the classic three-clause loop variable.
func ForCapture(n int, out []int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = i // line 26: two diagnostics (i twice)
		}()
	}
	wg.Wait()
}
