// Negative fixture: the allowed float comparisons — zero-value sentinels,
// tolerance helpers, and non-float operands.
package fixture

import "math"

// Defaults treats 0 as "unset", the config-struct idiom.
func Defaults(slack float64) float64 {
	if slack == 0 {
		return 1.4
	}
	return slack
}

// approxEqual is a tolerance helper: the exact comparison inside it guards
// the degenerate both-zero case and is allowed by the helper-name rule.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Ints compares integers, never flagged.
func Ints(a, b int) bool {
	return a == b
}

// UsesHelper routes the float comparison through the tolerance helper.
func UsesHelper(a, b float64) bool {
	return approxEqual(a, b, 1e-9)
}
