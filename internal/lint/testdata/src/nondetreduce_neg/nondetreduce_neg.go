// Fixture: deterministic goroutine fan-ins. Results keyed by job index,
// integer accumulation, and min-style reductions are order-insensitive and
// must not be reported.
package solver

// result pairs a job index with its value so the reducer can place it.
type result struct {
	idx int
	val float64
}

// MergeKeyed stores each result at its job index — the blessed pattern.
func MergeKeyed(jobs []float64) []float64 {
	ch := make(chan result)
	for i := range jobs {
		go func(k int) { ch <- result{idx: k, val: jobs[k] * 2} }(i)
	}
	out := make([]float64, len(jobs))
	for i := 0; i < len(jobs); i++ {
		r := <-ch
		out[r.idx] = r.val // keyed by received index: deterministic
	}
	return out
}

// MergeInt accumulates integers — associative and commutative, so arrival
// order cannot change the total.
func MergeInt(jobs []int) int {
	ch := make(chan int)
	for _, j := range jobs {
		go func(v int) { ch <- v }(j)
	}
	total := 0
	for i := 0; i < len(jobs); i++ {
		v := <-ch
		total += v
	}
	return total
}

// MergeMin keeps the minimum — order-insensitive by definition.
func MergeMin(jobs []int) int {
	ch := make(chan int)
	for _, j := range jobs {
		go func(v int) { ch <- v }(j)
	}
	best := 1 << 30
	for i := 0; i < len(jobs); i++ {
		v := <-ch
		if v < best {
			best = v
		}
	}
	return best
}
