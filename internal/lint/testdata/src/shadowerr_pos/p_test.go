// In-package test file: shadow-err sees it through the loader's combined
// files+tests type-check (Package.TestInfo).
package fixture

func totalForTest(a, b string) (int, error) {
	n, err := parse(a)
	if b != "" {
		m, err := parse(b)
		if err != nil {
			m = 0
		}
		n += m
	}
	if err != nil {
		return 0, err
	}
	return n, nil
}
