// Fixture: inner err := shadowing an outer err that is re-checked after
// the inner scope closes — the later check reads stale state.
package fixture

import "errors"

var errEmpty = errors.New("empty")

func parse(s string) (int, error) {
	if s == "" {
		return 0, errEmpty
	}
	return len(s), nil
}

// Total silently ignores a failed parse of b: the inner err is handled
// only by zeroing m, and the final check consults the outer err.
func Total(a, b string) (int, error) {
	n, err := parse(a)
	if b != "" {
		m, err := parse(b)
		if err != nil {
			m = 0
		}
		n += m
	}
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Validate handles a failed re-parse only by clearing the payload; the
// final return still consults the outer err — the inner result is lost.
func Validate(s string) error {
	_, err := parse(s)
	if s != "" {
		err := parse2(s)
		if err != nil {
			s = ""
		}
	}
	return err
}

func parse2(s string) error {
	_, err := parse(s + s)
	return err
}
