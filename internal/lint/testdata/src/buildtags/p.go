// Fixture: mutually exclusive build-tagged files must not type-check
// together — without constraint matching the loader would report a bogus
// redeclaration of flagged.
package fixture

func Flagged() bool { return flagged }
