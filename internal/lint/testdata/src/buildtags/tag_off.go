//go:build !sometag

package fixture

const flagged = false
