// Fixture: channel protocol violations — double close, send after close,
// range with no reachable close, and an unbuffered send whose spawner can
// return without receiving. Every case must be reported by chan-protocol.
package solver

import "errors"

var errFail = errors.New("fail")

// DoubleClose closes ch twice on a straight-line path.
func DoubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch)
}

// SendAfterClose panics at runtime regardless of buffering.
func SendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1
}

// RangeNoClose never lets the consuming loop terminate.
func RangeNoClose(n int) int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// OrphanSend leaks its goroutine on the error path: the unbuffered send
// blocks forever once the spawner has returned.
func OrphanSend(fail bool) (int, error) {
	ch := make(chan int)
	go func() {
		ch <- 42
	}()
	if fail {
		return 0, errFail
	}
	return <-ch, nil
}
