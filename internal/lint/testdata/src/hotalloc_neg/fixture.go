// Negative fixture: a hot solver package (named gap) whose loops reuse
// hoisted buffers — nothing to report.
package gap

// Hoisted allocates once, then reslices inside the loop.
func Hoisted(n int) int {
	buf := make([]int, 0, n)
	total := 0
	for k := 0; k < n; k++ {
		buf = buf[:0]
		buf = append(buf, k) // growing a reused buffer is fine
		total += len(buf)
	}
	return total
}

// SetupLoop is a once-per-solve initialization loop; the allocation is
// deliberate and suppressed with a justification.
func SetupLoop(rows [][]int) [][]int {
	out := make([][]int, len(rows))
	for i, row := range rows {
		//lint:ignore alloc-in-hot-loop one-time setup, not in the iteration path
		out[i] = make([]int, len(row))
		copy(out[i], row)
	}
	return out
}

// ClosureAlloc: allocations inside a func literal are the closure's, not the
// loop's.
func ClosureAlloc(n int) []func() []int {
	var fns []func() []int
	for k := 0; k < n; k++ {
		fns = append(fns, func() []int { return make([]int, 1) })
	}
	return fns
}
