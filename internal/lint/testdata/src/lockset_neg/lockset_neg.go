// Fixture: concurrent writes that are correctly synchronized — a shared
// mutex, a channel handoff, happens-before ordering around spawn/Wait, and
// index-disjoint element writes. lockset-race must stay silent.
package solver

import "sync"

// MutexProtected: both writers hold the same mutex at the write.
func MutexProtected() int {
	var mu sync.Mutex
	var wg sync.WaitGroup
	n := 0
	wg.Add(2)
	go func() {
		defer wg.Done()
		mu.Lock()
		n++
		mu.Unlock()
	}()
	go func() {
		defer wg.Done()
		mu.Lock()
		n++
		mu.Unlock()
	}()
	wg.Wait()
	return n
}

// SentValue: v moves over the channel; the send/recv pair orders the
// goroutine's write before the spawner's.
func SentValue() int {
	ch := make(chan int, 1)
	var wg sync.WaitGroup
	v := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		v = 10
		ch <- v
	}()
	got := <-ch
	v = got + 1
	wg.Wait()
	return v
}

// PrePost: initialization before the spawn and reduction after Wait are
// happens-before ordered; the goroutine only reads.
func PrePost() int {
	var wg sync.WaitGroup
	n := 1
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = n
	}()
	wg.Wait()
	n = 2
	return n
}

// Slots: each worker owns its slot; element writes are exempt.
func Slots(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			out[k] = k * k
		}(i)
	}
	wg.Wait()
	return out
}
