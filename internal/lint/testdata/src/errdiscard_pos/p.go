// Positive fixture: error values discarded with the blank identifier.
package fixture

import "strconv"

// Parse drops the error from a (T, error) call.
func Parse(s string) int {
	n, _ := strconv.Atoi(s) // line 8: diagnostic
	return n
}

func mayFail() error { return nil }

// Fire discards a bare error result.
func Fire() {
	_ = mayFail() // line 16: diagnostic
}
