// Positive fixture: math/rand global-state use, including under a renamed
// import.
package fixture

import (
	"math/rand"
	mrand "math/rand"
)

// Pick draws from the process-global source.
func Pick(n int) int {
	return rand.Intn(n) // line 12: diagnostic
}

// Shuffle uses the global source under a renamed import.
func Shuffle(xs []int) {
	mrand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // line 17: diagnostic
}

// Reseed mutates shared global state.
func Reseed(seed int64) {
	rand.Seed(seed) // line 22: diagnostic
}
