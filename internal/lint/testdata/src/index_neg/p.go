// Negative fixture: flat indices come from a helper; plain additive or
// multiplicative subscripts stay allowed.
package fixture

func pack(i, j, m int) int { return i + j*m }

// Value uses the designated helper for packing.
func Value(q [][]int64, a []int, m int) int64 {
	var v int64
	for j1, i1 := range a {
		row := q[pack(i1, j1, m)]
		for j2, i2 := range a {
			v += row[pack(i2, j2, m)]
		}
	}
	return v
}

// Windows shows index arithmetic that is not a flattening: offset sums and
// scaled strides alone are fine.
func Windows(xs []int64, base, k, stride int) int64 {
	return xs[base+k] + xs[k*stride]
}
