// Fixture: map iteration order escaping into function outputs. The first
// case is the showcase for the dataflow engine: a sort call IS present
// after the loop, so any syntactic "range-then-no-sort" check stays silent —
// only the CFG sees the path on which the sort is skipped.
package fixture

import "sort"

// KeysMaybeSorted publishes raw map order whenever sorted is false.
func KeysMaybeSorted(m map[string]int, sorted bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	if sorted {
		sort.Strings(out)
	}
	return out
}

// SumWeights accumulates floats in map order; float addition rounds, so the
// visit order changes the result in the last bits.
func SumWeights(m map[string]float64) float64 {
	var s float64
	for _, w := range m {
		s += w
	}
	return s
}

// AnyLabel returns whichever value the runtime happens to visit first.
func AnyLabel(m map[int]string) string {
	label := ""
	for _, v := range m {
		if label == "" {
			label = v
		}
	}
	return label
}
