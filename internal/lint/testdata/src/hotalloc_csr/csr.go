// Fixture: the CSR coupling layer's allocation profile is pinned — the
// one-time construction loop allocates and carries the documented
// alloc-in-hot-loop suppression (it runs once per solve, not per
// iteration), while the steady-state dirty-column scan appends onto a [:0]
// reslice of solver-owned scratch, which reuses capacity and must stay
// diagnostic-free. The package is named qbp so the analyzer treats its
// loops as hot.
package qbp

type csr struct {
	rowPtr []int32
	col    []int32
}

type scratchCSR struct {
	dirty []int
}

// buildCSR is the once-per-solve construction: the per-row buffer is a
// deliberate one-time allocation, exempted with a justification.
func buildCSR(adj [][]int) *csr {
	c := &csr{rowPtr: make([]int32, 1, len(adj)+1)}
	for _, row := range adj {
		//lint:ignore alloc-in-hot-loop one-time CSR build, once per solve
		buf := make([]int32, 0, len(row))
		for _, o := range row {
			buf = append(buf, int32(o))
		}
		c.col = append(c.col, buf...)
		c.rowPtr = append(c.rowPtr, int32(len(c.col)))
	}
	return c
}

// dirtyColumns is the steady-state pattern of the incremental η update: the
// append base is a [:0] reslice of reusable scratch, so iterations after the
// first allocate nothing.
func (c *csr) dirtyColumns(sc *scratchCSR, moved []bool) []int {
	cols := sc.dirty[:0]
	for j, mv := range moved {
		if !mv {
			continue
		}
		for k := c.rowPtr[j]; k < c.rowPtr[j+1]; k++ {
			cols = append(cols, int(c.col[k]))
		}
	}
	sc.dirty = cols
	return cols
}
