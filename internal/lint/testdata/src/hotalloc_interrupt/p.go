// Fixture: the cooperative-cancellation helper is exempt from the
// alloc-in-hot-loop analyzer — its amortized polls are method calls on a
// stack value (one counter increment, no make, no fresh append), so
// threading a Checker through a hot solver loop must be diagnostic-free.
// The package is named qbp so the analyzer treats its loops as hot.
package qbp

import (
	"context"

	"repro/internal/interrupt"
)

// IterateWithPolls runs a hot loop with an iteration-boundary cancellation
// poll and an amortized inner poll, the exact pattern the solvers use.
func IterateWithPolls(ctx context.Context, iterations int) int {
	ck := interrupt.New(ctx, 0)
	scratch := make([]int64, 64)
	done := 0
	for k := 0; k < iterations; k++ {
		if ck.Now() {
			break
		}
		for j := range scratch {
			if ck.Stop() {
				break
			}
			scratch[j]++
		}
		done++
	}
	if ck.Stopped() {
		return -done
	}
	return done
}
