// Fixture: goroutine fan-ins whose reductions depend on arrival order —
// append into an outer slice, float accumulation, and a counter-keyed store.
package solver

import "sync"

// MergeAppend collects worker results in whatever order they arrive.
func MergeAppend(jobs []int) []int {
	ch := make(chan int)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			ch <- v * v
		}(j)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	var out []int
	for v := range ch {
		out = append(out, v) // arrival order leaks into out
	}
	return out
}

// MergeFloat sums floats in arrival order; float addition is not
// associative, so the total depends on scheduling.
func MergeFloat(jobs []float64) float64 {
	ch := make(chan float64)
	for _, j := range jobs {
		go func(v float64) { ch <- v }(j)
	}
	total := 0.0
	for i := 0; i < len(jobs); i++ {
		v := <-ch
		total += v // order-dependent float accumulation
	}
	return total
}

// MergeCounter re-creates arrival order with a counter key.
func MergeCounter(jobs []int, out []int) {
	ch := make(chan int)
	for _, j := range jobs {
		go func(v int) { ch <- v }(j)
	}
	k := 0
	for i := 0; i < len(jobs); i++ {
		v := <-ch
		out[k] = v // k advances with arrivals, not with job identity
		k++
	}
}
