// Negative fixture: allocations in loops are fine outside the designated
// hot solver packages.
package fixture

// ColdMakeInLoop would be flagged in qbp/gap but this package is not hot.
func ColdMakeInLoop(n int) int {
	total := 0
	for k := 0; k < n; k++ {
		total += len(make([]int, k))
	}
	return total
}
