// Fixture: imports a package from the enclosing module to prove the loader
// resolves module-internal imports from source. Must be diagnostic-free.
package fixture

import "repro/internal/geometry"

// Span measures the diameter of a small grid under the given metric.
func Span(metric geometry.Metric) (int64, error) {
	g := geometry.Grid{Rows: 2, Cols: 2}
	return g.Diameter(metric)
}
