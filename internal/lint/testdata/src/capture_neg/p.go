// Negative fixture: loop variables passed to goroutines as parameters, or
// rebound before capture.
package fixture

import "sync"

// Param passes the loop variables explicitly.
func Param(xs []int, out []int) {
	var wg sync.WaitGroup
	for k, x := range xs {
		wg.Add(1)
		go func(k, x int) {
			defer wg.Done()
			out[k] = x * x
		}(k, x)
	}
	wg.Wait()
}

// Rebound shadows the loop variable with a per-iteration copy first.
func Rebound(xs []int, out []int) {
	var wg sync.WaitGroup
	for k := range xs {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[k] = k
		}()
	}
	wg.Wait()
}

// NoGoroutine uses the loop variable in a plain closure, which is fine.
func NoGoroutine(xs []int) int {
	sum := 0
	for _, x := range xs {
		f := func() { sum += x }
		f()
	}
	return sum
}
