// Fixture: flat-vector accesses the interval prover must reject. The
// package is named flatmat so raw-index-arith (which owns a different
// invariant) stays out of the way and flat-bounds is isolated.
package flatmat

import fm "repro/internal/flatmat"

// At subscripts with the Theorem-1 packing but nothing bounds i or j.
func At(m *fm.Matrix, i, j int) int64 {
	return m.V[i*m.Stride+j]
}

// RowSlice has the same problem in slice form.
func RowSlice(m *fm.Matrix, i int) []int64 {
	return m.V[i*m.Stride : (i+1)*m.Stride]
}

// OffByOne runs the loop head one step too far: i may equal len(m.V).
func OffByOne(m *fm.Matrix) int64 {
	var s int64
	for i := 0; i <= len(m.V); i++ {
		s += m.V[i]
	}
	return s
}
