// Fixture: the poll arrives through an interface method. Class-hierarchy
// analysis resolves stopper.Stopping to every module-internal implementation;
// ckStopper's polls the Checker, so the dynamic call counts as a poll.
package solver

import (
	"context"

	"repro/internal/interrupt"
)

type stopper interface {
	Stopping() bool
}

type ckStopper struct{ ck *interrupt.Checker }

func (s *ckStopper) Stopping() bool { return s.ck.Stop() }

// Solve polls through the interface.
func Solve(ctx context.Context, iterations int) int {
	ck := interrupt.New(ctx, 0)
	st := stopper(&ckStopper{ck: &ck})
	done := 0
	for k := 0; k < iterations; k++ {
		if st.Stopping() {
			break
		}
		done++
	}
	return done
}
