// Fixture: the poll arrives through a tracked function value. Run stores a
// Checker-polling literal in Options.OnIteration; function-value tracking
// must resolve the field call in Solve's loop guard to that literal.
package solver

import (
	"context"

	"repro/internal/interrupt"
)

// Options carries a caller-supplied stop check.
type Options struct {
	OnIteration func() bool
}

// Solve exits its knob loop when the callback fires.
func Solve(ctx context.Context, opts Options, iterations int) int {
	done := 0
	for k := 0; k < iterations; k++ {
		if opts.OnIteration != nil && opts.OnIteration() {
			break
		}
		done++
	}
	return done
}

// Run wires a real poll into the callback.
func Run(ctx context.Context) int {
	ck := interrupt.New(ctx, 0)
	poll := func() bool { return ck.Stop() }
	return Solve(ctx, Options{OnIteration: poll}, 100)
}
