// Fixture: one //lint:ignore line naming several analyzers. The one-line
// goroutine triggers lockset-race (unlocked shared write) and wg-balance
// twice (Add inside the spawned goroutine, Add with no Done); a single
// comment listing both analyzers must silence all three findings.
package solver

import "sync"

// MultiSuppressed stacks the violations onto one line on purpose.
func MultiSuppressed() int {
	var wg sync.WaitGroup
	n := 0
	//lint:ignore lockset-race,wg-balance fixture: one line suppresses several analyzers
	go func() { n++; wg.Add(1) }()
	go func() {
		n++
	}()
	wg.Wait()
	return n
}
