// Fixture: unbalanced lock usage the CFG pass must catch — a leak on an
// early-return path and a straight-line double release.
package fixture

import "sync"

// Registry guards a map with a plain mutex.
type Registry struct {
	mu    sync.Mutex
	items map[string]int
}

// Get leaks the lock whenever the key is missing.
func (r *Registry) Get(key string) (int, bool) {
	r.mu.Lock()
	v, ok := r.items[key]
	if !ok {
		return 0, false
	}
	r.mu.Unlock()
	return v, true
}

// Reset releases twice on the only path through the function.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.items = nil
	r.mu.Unlock()
	r.mu.Unlock()
}
