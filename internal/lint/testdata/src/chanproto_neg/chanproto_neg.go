// Fixture: disciplined channel use. The multistart drain pattern is the
// positive model: unbuffered jobs channel, workers ranging over it, a
// ctx-gated feed select, then close + Wait. chan-protocol must stay silent.
package solver

import (
	"context"
	"sync"
)

// Drain is the multistart worker-pool shape.
func Drain(ctx context.Context, starts, workers int) []int {
	jobs := make(chan int)
	results := make([]int, starts)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobs {
				results[k] = k * 2
			}
		}()
	}
feed:
	for k := 0; k < starts; k++ {
		select {
		case jobs <- k:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return results
}

// SelectEscape: the sending goroutine has a ctx way out, so an abandoning
// spawner does not strand it.
func SelectEscape(ctx context.Context) int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 42:
		case <-ctx.Done():
		}
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// BufferedSend: a buffered result slot never blocks the producer.
func BufferedSend() int {
	ch := make(chan int, 1)
	go func() { ch <- 7 }()
	return <-ch
}

// MaybeClosed: the close state differs across paths; the analysis only
// reports provable violations.
func MaybeClosed(c bool) {
	ch := make(chan int, 1)
	if c {
		close(ch)
		return
	}
	ch <- 1
}

// closeAll is the close helper; the ChanOps summary credits it to callers.
func closeAll(ch chan int) { close(ch) }

// HelperClosed ranges over a channel whose close happens inside a helper.
func HelperClosed(n int) int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	closeAll(ch)
	total := 0
	for v := range ch {
		total += v
	}
	return total
}
