// Fixture: shared-frame callbacks. A literal stored into an Options field
// and invoked from every worker goroutine has one frame shared by all of
// them; writes to its captured variables need a lock. The constructor
// variant checks that funcValues resolves call-returned literals.
package solver

import "sync"

// Options carries a progress callback invoked from worker goroutines.
type Options struct {
	OnEvent func(int)
}

func runWorkers(n int, o Options) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if o.OnEvent != nil {
				o.OnEvent(k)
			}
		}(i)
	}
	wg.Wait()
}

// RacyCallback counts calls lock-free — every worker shares the frame.
func RacyCallback(n int) int {
	calls := 0
	runWorkers(n, Options{OnEvent: func(int) {
		calls++
	}})
	return calls
}

// LockedCallback serializes the shared frame with a mutex.
func LockedCallback(n int) int {
	var mu sync.Mutex
	calls := 0
	runWorkers(n, Options{OnEvent: func(int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
	}})
	return calls
}

// eventCounter builds the callback behind a constructor; the returned
// literal is resolved through the call.
func eventCounter() func(int) {
	n := 0
	return func(int) {
		n++
	}
}

// RacyConstructed hands the constructed callback to the workers.
func RacyConstructed(k int) {
	runWorkers(k, Options{OnEvent: eventCounter()})
}
