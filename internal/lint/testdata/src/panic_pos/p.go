// Positive fixture: panics in a library package.
package fixture

import "fmt"

// F panics directly.
func F(x int) int {
	if x < 0 {
		panic("negative input") // line 9: diagnostic
	}
	return x
}

// G panics through fmt.Sprintf.
func G(kind int) string {
	switch kind {
	case 0:
		return "zero"
	}
	panic(fmt.Sprintf("unknown kind %d", kind)) // line 20: diagnostic
}
