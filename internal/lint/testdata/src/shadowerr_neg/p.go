// Fixture: error rebinding patterns that are fine — tuple reassignment in
// the same scope, an inner err fully handled with no later outer read, an
// inner err with no outer err in sight, and the if/for/switch init-clause
// idiom.
package fixture

import "errors"

var errOdd = errors.New("odd")

func check(n int) (int, error) {
	if n%2 == 1 {
		return 0, errOdd
	}
	return n, nil
}

// Chain reuses the same err variable: := in the same scope redeclares
// nothing, so no shadow exists.
func Chain(a, b int) (int, error) {
	x, err := check(a)
	if err != nil {
		return 0, err
	}
	y, err := check(b)
	if err != nil {
		return 0, err
	}
	return x + y, nil
}

// Handled shadows err but never reads the outer one afterwards.
func Handled(a, b int) int {
	n, err := check(a)
	if err != nil {
		n = 0
	}
	if b > 0 {
		m, err := check(b)
		if err != nil {
			m = 0
		}
		n += m
	}
	return n
}

// InitClause shadows err in if and switch init statements — the idiom Go
// recommends to limit scope — then re-checks the outer err. Exempt.
func InitClause(a, b int) (int, error) {
	n, err := check(a)
	if _, err := check(b); err != nil {
		n++
	}
	switch _, err := check(b + 1); {
	case err != nil:
		n--
	}
	for _, err := check(b + 2); err != nil; err = nil {
		n += 2
	}
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Fresh has no outer err to shadow.
func Fresh(a int) int {
	if a > 0 {
		v, err := check(a)
		if err != nil {
			return 0
		}
		return v
	}
	return 0
}
