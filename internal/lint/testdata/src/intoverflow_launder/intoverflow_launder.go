// Fixture: the taint-laundering boundary. Values stored into slice elements
// are deliberately not tracked — element reads come back clean, so the
// accumulation over out is not a candidate even though a ceiling-scale value
// was spread into it. Keeping stores out of the taint set is what lets the
// analyzer stay flow-insensitive without flagging every buffer in the repo.
package solver

import "math"

// Spread clamps a penalty into a buffer, then sums the buffer.
func Spread(out []int64, pen int64) int64 {
	if pen > math.MaxInt64/2 {
		pen = math.MaxInt64 / 2
	}
	for i := range out {
		out[i] = pen // store drops taint at the element boundary
	}
	total := int64(0)
	for _, v := range out {
		total += v // v read back from the slice: untainted
	}
	return total
}
