// Fixture: locks acquired through helper methods. lockExitDelta summarizes
// lock()/unlock() as net acquire/release of $recv.mu, so the lockset at
// the write still contains c.mu. One goroutine skipping the helper breaks
// the consistent lockset and must be reported.
package solver

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) lock() {
	//lint:ignore lock-balance acquire helper: the matching unlock() is the release half
	c.mu.Lock()
}

func (c *counter) unlock() { c.mu.Unlock() }

// HelperLocked: both writers go through the helpers — clean.
func HelperLocked() int {
	var c counter
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.lock()
		c.n++
		c.unlock()
	}()
	go func() {
		defer wg.Done()
		c.lock()
		c.n++
		c.unlock()
	}()
	wg.Wait()
	return c.n
}

// OneSideUnlocked: the second writer skips the helper.
func OneSideUnlocked() int {
	var c counter
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.lock()
		c.n++
		c.unlock()
	}()
	go func() {
		defer wg.Done()
		c.n++ // no lock held: the report lands on the unprotected write
	}()
	wg.Wait()
	return c.n
}
