// Negative fixture: blank assignments that do not discard errors, and errors
// that are actually handled.
package fixture

import "strconv"

// Lookup discards a bool, not an error.
func Lookup(m map[string]int, k string) int {
	v, _ := m[k]
	return v
}

// Handled checks the error.
func Handled(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return n
}

// Index discards a non-error value from a multi-result call.
func Index(s string) byte {
	for i, c := range s {
		_ = i
		return byte(c)
	}
	return 0
}
