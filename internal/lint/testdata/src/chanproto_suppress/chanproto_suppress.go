// Fixture: a justified chan-protocol suppression — an idempotent shutdown
// path whose double close is guarded at runtime by a recover elsewhere.
package solver

// ShutdownTwice is test-harness code that tolerates the panic.
func ShutdownTwice() {
	ch := make(chan int)
	close(ch)
	//lint:ignore chan-protocol shutdown harness intentionally double-closes to assert the panic
	close(ch)
}
