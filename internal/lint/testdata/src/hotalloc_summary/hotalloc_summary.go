// Fixture: interprocedural allocation summaries. A hot loop calling an
// unexported helper that allocates is as bad as spelling the make inline;
// exported helpers are exempt because their contract is visible at the API
// boundary.
package qbp

// buildScratch hides an allocation behind a call.
func buildScratch(n int) []int64 {
	return make([]int64, n)
}

// reuse only writes into the buffer it was handed.
func reuse(buf []int64) []int64 {
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Fresh allocates too, but is exported: callers see the contract.
func Fresh(n int) []int64 {
	return make([]int64, n)
}

// Sweep is the hot loop.
func Sweep(rounds, n int) int64 {
	var total int64
	for r := 0; r < rounds; r++ {
		buf := buildScratch(n) // allocates every iteration via the helper
		total += buf[0]
	}
	scratch := make([]int64, n)
	for r := 0; r < rounds; r++ {
		buf := reuse(scratch) // non-allocating helper: clean
		total += buf[0]
	}
	for r := 0; r < rounds; r++ {
		total += Fresh(n)[0] // exported callee: exempt
	}
	return total
}
