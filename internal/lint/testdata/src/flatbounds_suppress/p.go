// Fixture: an unprovable-but-correct kernel access with the caller
// contract recorded in a suppression.
package flatmat

import fm "repro/internal/flatmat"

// Tail returns the vector from row r onward. The prover cannot see the
// caller's r < Rows() guarantee.
func Tail(m *fm.Matrix, r int) []int64 {
	//lint:ignore flat-bounds caller guarantees r < len(m.V)/m.Stride (kernel contract)
	return m.V[r*m.Stride:]
}
