// Fixture: unguarded arithmetic on ceiling-scale int64 values. bigPenalty
// and math.MaxInt64 seed the taint; every flagged site combines a tainted
// operand without a headroom guard.
package solver

import "math"

const bigPenalty = int64(1) << 35

// Accumulate folds an unset-marker minimum straight into a sum.
func Accumulate(costs []int64) int64 {
	best := int64(math.MaxInt64)
	for _, c := range costs {
		if c < best {
			best = c
		}
	}
	total := int64(0)
	total += best // best may still be MaxInt64
	return total
}

// Scale multiplies the penalty by a runtime count.
func Scale(n int) int64 {
	return bigPenalty * int64(n) // no bound on n
}

// Inflate grows a penalty-scale accumulator without checking headroom.
func Inflate(pen int64) int64 {
	if pen == 0 {
		pen = bigPenalty
	}
	pen *= 2 // tainted *=
	pen++    // tainted ++
	return pen
}
