// Negative fixture: randomness threaded through an explicit seeded
// *rand.Rand, plus a non-package identifier named rand.
package fixture

import "math/rand"

// Pick draws from a caller-seeded generator.
func Pick(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

type fakeRand struct{}

func (fakeRand) Intn(n int) int { return 0 }

// Local draws from a local variable that shadows the import name.
func Local(n int) int {
	var rand fakeRand
	return rand.Intn(n)
}
