// Fixture: a deliberate shadow with the justification on record.
package fixture

import "errors"

var errNeg = errors.New("negative")

func abs(n int) (int, error) {
	if n < 0 {
		return -n, errNeg
	}
	return n, nil
}

// BestEffort intentionally keeps the first error and treats the second
// computation as advisory.
func BestEffort(a, b int) (int, error) {
	x, err := abs(a)
	if b != 0 {
		//lint:ignore shadow-err second abs is advisory; first error is the one reported
		y, err := abs(b)
		if err == nil {
			x += y
		}
	}
	return x, err
}
