package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NondetReduce guards the determinism contract at goroutine fan-in points.
// The solvers promise bit-identical results for a fixed seed, and the
// parallel paths keep that promise by keying every worker's result with its
// job index (multistart's `results[k] = ...`) so the reduction order is
// fixed no matter which goroutine finishes first.
//
// The analyzer finds channels that spawned goroutine literals send into,
// then inspects the loops that drain them. A reduction is order-dependent —
// and reported — when the merge loop:
//
//   - appends the received values to an outer slice (append preserves
//     arrival order);
//   - accumulates into a float (float addition is not associative, so the
//     sum depends on arrival order);
//   - stores under a key the loop itself advances (a counter re-creates
//     arrival order with extra steps).
//
// Stores keyed by data received on the channel, integer accumulation, and
// min/max-style reductions are order-insensitive and stay silent.
// Goroutines that fill a shared map are out of scope here: iterating such a
// map is nondeterministic whether or not goroutines wrote it, and the
// sort-aware map-order-leak analyzer already owns that invariant.
var NondetReduce = &Analyzer{
	Name:       "nondet-reduce",
	Doc:        "goroutine fan-in must reduce deterministically: key results by job index or combine order-insensitively",
	NeedsTypes: true,
	Run:        runNondetReduce,
}

func runNondetReduce(p *Pass) {
	info := p.Pkg.Info
	if info == nil {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkNondetReduce(p, info, fd.Body)
			}
		}
	}
}

func checkNondetReduce(p *Pass, info *types.Info, body *ast.BlockStmt) {
	var spawned []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				spawned = append(spawned, lit)
			}
		}
		return true
	})
	if len(spawned) == 0 {
		return
	}

	// Channels the goroutines send into, restricted to variables captured
	// from the enclosing function — those are the fan-in points the spawner
	// will drain.
	chans := make(map[*types.Var]bool)
	for _, lit := range spawned {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if x, ok := n.(*ast.SendStmt); ok {
				if v := exprVar(info, x.Chan); v != nil && !posWithin(lit, v.Pos()) {
					chans[v] = true
				}
			}
			return true
		})
	}
	if len(chans) == 0 {
		return
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.RangeStmt:
			if v := exprVar(info, loop.X); v != nil && chans[v] {
				// Range over a channel yields the element in Key.
				checkMergeLoop(p, info, loop.Body, rangeVars(info, loop))
			}
		case *ast.ForStmt:
			recv := loopReceives(info, loop, chans)
			if len(recv) > 0 {
				checkMergeLoop(p, info, loop.Body, recv)
			}
		}
		return true
	})
}

// rangeVars returns the loop variables bound by a range statement.
func rangeVars(info *types.Info, loop *ast.RangeStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, e := range []ast.Expr{loop.Key, loop.Value} {
		if e == nil {
			continue
		}
		if v := exprVar(info, e); v != nil {
			out[v] = true
		}
	}
	return out
}

// loopReceives collects variables assigned from `<-ch` receives on the
// recorded fan-in channels inside the loop (v := <-ch and v, ok := <-ch).
func loopReceives(info *types.Info, loop *ast.ForStmt, chans map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(loop, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		un, ok := ast.Unparen(as.Rhs[0]).(*ast.UnaryExpr)
		if !ok || un.Op != token.ARROW {
			return true
		}
		ch := exprVar(info, un.X)
		if ch == nil || !chans[ch] {
			return true
		}
		if v := exprVar(info, as.Lhs[0]); v != nil {
			out[v] = true
		}
		return true
	})
	return out
}

// checkMergeLoop reports the first order-dependent sink in a loop draining
// a goroutine-fed channel.
func checkMergeLoop(p *Pass, info *types.Info, body *ast.BlockStmt, received map[*types.Var]bool) {
	if pos, reason := orderDependentSink(info, body, received); reason != "" {
		p.Reportf(pos, "goroutine results are reduced in arrival order (%s); key them by job index or use an order-insensitive reduction", reason)
	}
}

// orderDependentSink scans a merge-loop body for a reduction whose result
// depends on arrival order. received holds the loop's binding of the
// channel element: stores keyed by it are the deterministic pattern.
func orderDependentSink(info *types.Info, body *ast.BlockStmt, received map[*types.Var]bool) (token.Pos, string) {
	counters := mutatedCounters(info, body)
	var pos token.Pos
	var reason string
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			if isFloat(info, as.Lhs[0]) {
				pos, reason = as.TokPos, "float accumulation is not associative"
			}
		case token.ASSIGN, token.DEFINE:
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			// x = append(x, ...) onto an outer slice keeps arrival order.
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
					if tv := exprVar(info, as.Lhs[0]); tv != nil && tv == exprVar(info, call.Args[0]) {
						pos, reason = as.TokPos, "append preserves arrival order"
						return false
					}
				}
			}
			// x = x + v on floats is the spelled-out accumulation.
			if bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok && (bin.Op == token.ADD || bin.Op == token.SUB) {
				if isFloat(info, as.Lhs[0]) && mentionsVar(info, bin, exprVar(info, as.Lhs[0])) {
					pos, reason = as.TokPos, "float accumulation is not associative"
					return false
				}
			}
			// Counter-keyed store: out[i] with i advanced by the loop is
			// arrival order in disguise. Keys derived from the received
			// element are the deterministic pattern.
			if idx, ok := ast.Unparen(as.Lhs[0]).(*ast.IndexExpr); ok {
				if mentionsAny(info, idx.Index, received) {
					return true
				}
				if kv := exprVar(info, idx.Index); kv != nil && counters[kv] {
					pos, reason = as.TokPos, "store keyed by a loop counter follows arrival order"
					return false
				}
			}
		}
		return true
	})
	return pos, reason
}

// mutatedCounters returns integer variables the loop body itself advances
// (i++ or i += step).
func mutatedCounters(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IncDecStmt:
			if v := exprVar(info, x.X); v != nil && isIntegerVar(v) {
				out[v] = true
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN || x.Tok == token.SUB_ASSIGN {
				if v := exprVar(info, x.Lhs[0]); v != nil && isIntegerVar(v) {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

// exprVar resolves the base identifier of an expression to its variable.
func exprVar(info *types.Info, e ast.Expr) *types.Var {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

func mentionsVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	if v == nil {
		return false
	}
	return mentionsAny(info, e, map[*types.Var]bool{v: true})
}

func mentionsAny(info *types.Info, e ast.Expr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, _ := info.Uses[id].(*types.Var); v != nil && vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

func posWithin(lit *ast.FuncLit, pos token.Pos) bool {
	return lit.Pos() <= pos && pos <= lit.End()
}
