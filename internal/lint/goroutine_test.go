package lint

import (
	"testing"
)

// fixtureProgram loads one fixture directory and returns the converged
// interprocedural view plus the loaded package.
func fixtureProgram(t *testing.T, dir string) (*Program, *Package) {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.Load("testdata/src/" + dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	return l.Program(), pkg
}

// declNamed finds the FuncInfo of the declared function (or method) with
// the given name in pkg.
func declNamed(t *testing.T, prog *Program, pkg *Package, name string) *FuncInfo {
	t.Helper()
	var found *FuncInfo
	for fn, fi := range prog.funcs {
		if fi.Pkg == pkg && fi.Decl != nil && fn.Name() == name {
			found = fi
		}
	}
	if found == nil {
		t.Fatalf("function %s not found in %s", name, pkg.Dir)
	}
	return found
}

func TestSpawnSites(t *testing.T) {
	prog, pkg := fixtureProgram(t, "lockset_pos")

	two := declNamed(t, prog, pkg, "TwoWriters")
	sites := prog.SpawnSites(two)
	if len(sites) != 2 {
		t.Fatalf("TwoWriters spawn sites = %d, want 2", len(sites))
	}
	for _, s := range sites {
		if s.InLoop {
			t.Errorf("TwoWriters spawn at %v marked InLoop", s.Go.Pos())
		}
		if s.Target == nil || s.Target.Lit == nil {
			t.Fatalf("TwoWriters spawn target not resolved to a literal")
		}
		if !prog.SpawnTarget(s.Target) {
			t.Errorf("spawned literal not marked SpawnTarget")
		}
	}

	looped := declNamed(t, prog, pkg, "LoopedWriter")
	sites = prog.SpawnSites(looped)
	if len(sites) != 1 || !sites[0].InLoop {
		t.Fatalf("LoopedWriter spawn sites = %+v, want one in-loop site", sites)
	}
}

func TestEscapedAndFreeVars(t *testing.T) {
	prog, pkg := fixtureProgram(t, "lockset_pos")
	two := declNamed(t, prog, pkg, "TwoWriters")

	sites := prog.SpawnSites(two)
	var free []string
	for _, v := range prog.FreeVars(sites[0].Target) {
		free = append(free, v.Name())
	}
	if len(free) != 2 || free[0] != "wg" || free[1] != "n" {
		t.Errorf("FreeVars(spawned literal) = %v, want [wg n]", free)
	}

	var escaped []string
	for _, v := range prog.EscapedVars(two) {
		escaped = append(escaped, v.Name())
	}
	if len(escaped) != 2 || escaped[0] != "wg" || escaped[1] != "n" {
		t.Errorf("EscapedVars(TwoWriters) = %v, want [wg n]", escaped)
	}
}

func TestHandoffVars(t *testing.T) {
	prog, pkg := fixtureProgram(t, "lockset_neg")
	sent := declNamed(t, prog, pkg, "SentValue")

	names := make(map[string]bool)
	for v := range prog.HandoffVars(sent) {
		names[v.Name()] = true
	}
	// v is sent from the goroutine, got receives in the spawner: both are
	// ordered by the channel and exempt from lockset-race.
	if !names["v"] || !names["got"] {
		t.Errorf("HandoffVars(SentValue) = %v, want v and got", names)
	}
}

func TestAcquiresSummary(t *testing.T) {
	prog, pkg := fixtureProgram(t, "lockset_helper")
	lock := declNamed(t, prog, pkg, "lock")
	if len(lock.Acquires) != 1 || lock.Acquires[0] != "$recv.mu" {
		t.Errorf("lock helper Acquires = %v, want [$recv.mu]", lock.Acquires)
	}
	if d := prog.lockExitDelta(lock); d["$recv.mu"] != 1 {
		t.Errorf("lockExitDelta(lock) = %v, want $recv.mu held at exit", d)
	}
	unlock := declNamed(t, prog, pkg, "unlock")
	if d := prog.lockExitDelta(unlock); d["$recv.mu"] != -1 {
		t.Errorf("lockExitDelta(unlock) = %v, want $recv.mu released", d)
	}
}

func TestChanOpsSummary(t *testing.T) {
	prog, pkg := fixtureProgram(t, "chanproto_neg")
	closeAll := declNamed(t, prog, pkg, "closeAll")
	op, ok := closeAll.ChanOps[0]
	if !ok || !op.Close || op.Send || op.Recv {
		t.Errorf("closeAll ChanOps[0] = %+v, want close-only", op)
	}
}

func TestWGOpsSummary(t *testing.T) {
	prog, pkg := fixtureProgram(t, "wgbal_neg")
	worker := declNamed(t, prog, pkg, "worker")
	op, ok := worker.WGOps[0]
	if !ok || !op.Done || op.Add || op.Wait {
		t.Errorf("worker WGOps[0] = %+v, want done-only", op)
	}
	join := declNamed(t, prog, pkg, "join")
	op, ok = join.WGOps[0]
	if !ok || !op.Wait || op.Add || op.Done {
		t.Errorf("join WGOps[0] = %+v, want wait-only", op)
	}
}

func TestConcurrentLits(t *testing.T) {
	prog, pkg := fixtureProgram(t, "lockset_closure")
	concurrent := 0
	for _, fi := range prog.lits {
		if fi.Pkg == pkg && prog.ConcurrentLit(fi) {
			concurrent++
		}
	}
	// The three OnEvent callbacks (two inline, one constructor-returned)
	// share their frames across workers; the spawned worker literal itself
	// is a spawn target, not a shared-frame literal.
	if concurrent != 3 {
		t.Errorf("concurrent literals in lockset_closure = %d, want 3", concurrent)
	}
}
