package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockBalance runs a CFG dataflow tracking sync.Mutex / sync.RWMutex
// acquire state per lock expression. It reports a Lock whose critical
// section can reach function exit without the matching Unlock on some path
// (unless a deferred release is registered on every such path), and an
// Unlock on a lock the analysis proves was already released.
//
// Write locks (Lock/Unlock) and read locks (RLock/RUnlock) are balanced
// independently; promoted methods through embedding resolve to the same
// sync methods and are handled identically.
var LockBalance = &Analyzer{
	Name:       "lock-balance",
	Doc:        "every sync.Mutex Lock must be released on all paths to function exit",
	NeedsTypes: true,
	Run:        runLockBalance,
}

// lockMethods maps the fully-qualified sync locking methods to their role.
// The value is +1 for acquire, -1 for release; the bool marks the read side
// of an RWMutex.
var lockMethods = map[string]struct {
	delta int
	read  bool
}{
	"(*sync.Mutex).Lock":      {+1, false},
	"(*sync.Mutex).Unlock":    {-1, false},
	"(*sync.RWMutex).Lock":    {+1, false},
	"(*sync.RWMutex).Unlock":  {-1, false},
	"(*sync.RWMutex).RLock":   {+1, true},
	"(*sync.RWMutex).RUnlock": {-1, true},
}

type lockState uint8

const (
	lockUnknown  lockState = iota // not seen / balance unknown (entry state)
	lockHeld                      // acquired on every path reaching here
	lockReleased                  // an Unlock provably executed most recently
	lockMaybe                     // held on some path, not on another
)

// lockFact is the dataflow fact: the state of each lock key plus the locks
// for which a deferred release is registered on every path reaching here.
type lockFact struct {
	state    map[string]lockState
	pos      map[string]token.Pos // earliest acquire site while held/maybe
	deferred map[string]bool      // must-analysis: deferred Unlock registered
}

func newLockFact() lockFact {
	return lockFact{
		state:    map[string]lockState{},
		pos:      map[string]token.Pos{},
		deferred: map[string]bool{},
	}
}

func (f lockFact) clone() lockFact {
	c := newLockFact()
	for k, v := range f.state {
		c.state[k] = v
	}
	for k, v := range f.pos {
		c.pos[k] = v
	}
	for k := range f.deferred {
		c.deferred[k] = true
	}
	return c
}

type lockProblem struct {
	lb *lockInterp
}

func (p lockProblem) Entry() lockFact { return newLockFact() }

func (p lockProblem) Transfer(b *Block, in lockFact) lockFact {
	out := in
	for _, n := range b.Nodes {
		out = p.lb.step(out, n, nil)
	}
	return out
}

func (p lockProblem) Join(a, b lockFact) lockFact {
	j := newLockFact()
	keys := map[string]bool{}
	for k := range a.state {
		keys[k] = true
	}
	for k := range b.state {
		keys[k] = true
	}
	for k := range keys {
		sa, sb := a.state[k], b.state[k]
		switch {
		case sa == sb:
			j.state[k] = sa
		case sa == lockHeld || sb == lockHeld || sa == lockMaybe || sb == lockMaybe:
			j.state[k] = lockMaybe
		default: // unknown vs released: the release is no longer proven
			j.state[k] = lockUnknown
		}
		pa, pb := a.pos[k], b.pos[k]
		switch {
		case pa != token.NoPos && pb != token.NoPos:
			j.pos[k] = min(pa, pb)
		case pa != token.NoPos:
			j.pos[k] = pa
		case pb != token.NoPos:
			j.pos[k] = pb
		}
	}
	// Deferred releases only count when registered on every incoming path.
	for k := range a.deferred {
		if b.deferred[k] {
			j.deferred[k] = true
		}
	}
	return j
}

func (p lockProblem) Equal(a, b lockFact) bool {
	if len(a.state) != len(b.state) || len(a.pos) != len(b.pos) || len(a.deferred) != len(b.deferred) {
		return false
	}
	for k, v := range a.state {
		if b.state[k] != v {
			return false
		}
	}
	for k, v := range a.pos {
		if b.pos[k] != v {
			return false
		}
	}
	for k := range a.deferred {
		if !b.deferred[k] {
			return false
		}
	}
	return true
}

type lockInterp struct {
	pass *Pass
	info *types.Info
}

func runLockBalance(p *Pass) {
	info := p.Info()
	forEachFuncBody(p, func(body *ast.BlockStmt) {
		analyzeLockBalance(p, info, body)
	})
}

func analyzeLockBalance(p *Pass, info *types.Info, body *ast.BlockStmt) {
	lb := &lockInterp{pass: p, info: info}
	if !lb.mentionsLocks(body) {
		return
	}
	g := p.Pkg.CFG(body)
	in := SolveForward[lockFact](g, lockProblem{lb})

	// Replay blocks for path-sensitive reports (double unlock).
	for _, b := range g.ReversePostorder() {
		fact, ok := in[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			fact = lb.step(fact, n, p)
		}
	}

	// Exit check: any lock held (or maybe held) at exit without a deferred
	// release leaks out of the function.
	exit, ok := in[g.Exit]
	if !ok {
		return
	}
	keys := make([]string, 0, len(exit.state))
	for k := range exit.state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := exit.state[k]
		if (st != lockHeld && st != lockMaybe) || exit.deferred[k] {
			continue
		}
		pos := exit.pos[k]
		if pos == token.NoPos {
			pos = body.Pos()
		}
		verb := "reaches"
		if st == lockMaybe {
			verb = "can reach"
		}
		lb.pass.Reportf(pos, "%s acquired here %s function exit without release", lockKeyLabel(k), verb)
	}
}

// step applies one CFG node; when p is non-nil, double unlocks are
// reported.
func (lb *lockInterp) step(f lockFact, n ast.Node, p *Pass) lockFact {
	switch s := n.(type) {
	case *ast.ExprStmt:
		key, delta, pos, ok := lb.lockOp(s.X)
		if !ok {
			return f
		}
		out := f.clone()
		if delta > 0 {
			out.state[key] = lockHeld
			if cur, have := out.pos[key]; !have || pos < cur {
				out.pos[key] = pos
			}
		} else {
			if p != nil && f.state[key] == lockReleased {
				p.Reportf(pos, "%s released twice on this path", lockKeyLabel(key))
			}
			out.state[key] = lockReleased
			delete(out.pos, key)
		}
		return out
	case *ast.DeferStmt:
		keys := lb.deferredReleases(s)
		if len(keys) == 0 {
			return f
		}
		out := f.clone()
		for _, k := range keys {
			out.deferred[k] = true
		}
		return out
	}
	return f
}

// lockOp decodes a call expression as a lock/unlock on a sync primitive.
// The key is the rendered receiver expression, suffixed for the read side.
func (lb *lockInterp) lockOp(e ast.Expr) (key string, delta int, pos token.Pos, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", 0, token.NoPos, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, token.NoPos, false
	}
	fn, isFn := lb.info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", 0, token.NoPos, false
	}
	op, known := lockMethods[fn.FullName()]
	if !known {
		return "", 0, token.NoPos, false
	}
	key = renderNode(sel.X)
	if op.read {
		key += "\x00R"
	}
	return key, op.delta, call.Pos(), true
}

// deferredReleases returns the lock keys a defer statement releases: either
// `defer mu.Unlock()` directly, or unlock calls inside an immediately
// deferred function literal.
func (lb *lockInterp) deferredReleases(s *ast.DeferStmt) []string {
	if key, delta, _, ok := lb.lockOp(s.Call); ok && delta < 0 {
		return []string{key}
	}
	lit, isLit := ast.Unparen(s.Call.Fun).(*ast.FuncLit)
	if !isLit {
		return nil
	}
	var keys []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		es, isExpr := n.(*ast.ExprStmt)
		if !isExpr {
			return true
		}
		if key, delta, _, ok := lb.lockOp(es.X); ok && delta < 0 {
			keys = append(keys, key)
		}
		return true
	})
	return keys
}

// mentionsLocks is a cheap pre-filter so functions without sync calls skip
// the dataflow entirely.
func (lb *lockInterp) mentionsLocks(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || found {
			return !found
		}
		if fn, ok := lb.info.Uses[sel.Sel].(*types.Func); ok {
			if _, known := lockMethods[fn.FullName()]; known {
				found = true
			}
		}
		return !found
	})
	return found
}

// lockKeyLabel renders a lock key back to source form for diagnostics.
func lockKeyLabel(key string) string {
	if expr, read := cutLockSuffix(key); read {
		return "read lock " + expr
	} else {
		return "mutex " + expr
	}
}

func cutLockSuffix(key string) (string, bool) {
	const suffix = "\x00R"
	if len(key) > len(suffix) && key[len(key)-len(suffix):] == suffix {
		return key[:len(key)-len(suffix)], true
	}
	return key, false
}
