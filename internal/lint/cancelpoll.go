package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CancelPoll pins the cancellation contract: every statically-unbounded
// loop reachable from a solver entry point must be able to exit on a
// cancellation poll. An entry point is an exported function of a non-main
// package that imports internal/interrupt and is either named Solve* or
// takes a context.Context; reachability runs over the call graph
// (including goroutine spawns and tracked function values).
//
// Loops that must poll:
//
//   - `for {}` and condition-only loops whose condition is not a counting
//     comparison (`for !done`, `for len(queue) > 0`, `for h.Len() > 0`) —
//     the compiler can bound none of these;
//   - counting loops whose bound mentions an iteration knob (an identifier
//     containing iter/step/pass/round/epoch/sweep) — `for k := 1;
//     k <= iterations; k++` runs as long as the user asked, so it must
//     honor the user's deadline too;
//   - `for range ch` over a channel.
//
// Counting loops bounded by problem size (`for i := 0; i < n; i++`) or by
// constants are exempt: they terminate with the instance and polling them
// would put a branch in every kernel scan.
//
// A loop satisfies the contract when it exits under a poll: its condition
// polls, or some if/select inside it guards a `return`/loop-`break` with a
// call that transitively reaches ctx.Err/ctx.Done (interrupt.Checker.Stop
// and .Now qualify through their own bodies). The sticky Stopped() read
// qualifies only inside a function that also really polls: that is the
// pass-loop idiom — the inner selection loop polls Now() and the outer
// pass loop breaks on the sticky flag — not a poll by itself.
var CancelPoll = &Analyzer{
	Name:       "cancel-poll",
	Doc:        "unbounded solver loops must exit on an interrupt.Checker/context poll",
	NeedsTypes: true,
	Run:        runCancelPoll,
}

func runCancelPoll(p *Pass) {
	if p.Prog == nil || p.Pkg.Info == nil {
		return
	}
	for _, fi := range p.Prog.FuncsOf(p.Pkg) {
		if !p.Prog.Reachable(fi) {
			continue
		}
		c := &cancelPollCheck{p: p, fi: fi}
		c.check()
	}
}

type cancelPollCheck struct {
	p  *Pass
	fi *FuncInfo
}

func (c *cancelPollCheck) check() {
	labels := make(map[ast.Stmt]string)
	inspectShallow(c.fi.Body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			labels[ls.Stmt] = ls.Label.Name
		}
		return true
	})
	inspectShallow(c.fi.Body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			why := c.forNeedsPoll(loop)
			if why == "" {
				return true
			}
			if loop.Cond != nil && c.nodePolls(loop.Cond) {
				return true
			}
			if !c.satisfied(loop.Body, labels[loop]) {
				c.report(loop.Pos(), why)
			}
		case *ast.RangeStmt:
			if tv, ok := c.p.Pkg.Info.Types[loop.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if !c.satisfied(loop.Body, labels[loop]) {
						c.report(loop.Pos(), "range-over-channel")
					}
				}
			}
		}
		return true
	})
}

func (c *cancelPollCheck) report(pos token.Pos, why string) {
	c.p.Reportf(pos, "%s loop in %s is reachable from a solver entry point but never polls for cancellation; guard an exit with interrupt.Checker.Stop/Now or ctx.Err/ctx.Done", why, c.fi.Name())
}

// forNeedsPoll classifies a for loop; "" means exempt.
func (c *cancelPollCheck) forNeedsPoll(loop *ast.ForStmt) string {
	if loop.Cond == nil {
		return "unconditional"
	}
	return c.condNeedsPoll(loop.Cond, loopCounters(loop))
}

// condNeedsPoll classifies a loop condition; "" means it bounds the loop
// without a poll. A conjunction runs only while both sides hold, so one
// bounding side exempts it; a disjunction needs both sides bounding.
func (c *cancelPollCheck) condNeedsPoll(cond ast.Expr, counters map[string]bool) string {
	cond = ast.Unparen(cond)
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return "statically-unbounded"
	}
	switch bin.Op {
	case token.LAND:
		left, right := c.condNeedsPoll(bin.X, counters), c.condNeedsPoll(bin.Y, counters)
		if left == "" || right == "" {
			return ""
		}
		return left
	case token.LOR:
		if why := c.condNeedsPoll(bin.X, counters); why != "" {
			return why
		}
		return c.condNeedsPoll(bin.Y, counters)
	}
	if !isComparisonOp(bin.Op) {
		return "statically-unbounded"
	}
	_, xIdent := ast.Unparen(bin.X).(*ast.Ident)
	_, yIdent := ast.Unparen(bin.Y).(*ast.Ident)
	if !xIdent && !yIdent {
		return "worklist-driven"
	}
	if condMentionsKnob(cond, counters) {
		return "iteration-knob-bounded"
	}
	return ""
}

// loopCounters collects the identifiers the loop header itself advances
// (init or post). Whatever they are named — gap's repair counts `iter`, the
// polish sweeps count `round` — they are the counting side of the bound,
// not an iteration knob; the knob test applies to the other side.
func loopCounters(loop *ast.ForStmt) map[string]bool {
	out := make(map[string]bool)
	record := func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
	}
	if loop.Init != nil {
		record(loop.Init)
	}
	if loop.Post != nil {
		record(loop.Post)
	}
	return out
}

func isComparisonOp(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// knobFragments are the naming conventions of user-supplied iteration
// budgets across the solvers (iterations, maxSteps, passes, sweeps, …).
var knobFragments = []string{"iter", "step", "pass", "round", "epoch", "sweep"}

func condMentionsKnob(cond ast.Expr, counters map[string]bool) bool {
	found := false
	inspectShallow(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && !counters[id.Name] {
			lower := strings.ToLower(id.Name)
			for _, frag := range knobFragments {
				if strings.Contains(lower, frag) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// nodePolls reports n contains a call that polls for cancellation: a
// direct ctx.Err/ctx.Done, or a call whose resolved targets carry the
// Polls summary (Checker.Stop/Now, any helper that reaches them). In a
// function that genuinely polls somewhere, the sticky Checker.Stopped read
// also counts — that is the pass-loop idiom, where the inner selection
// loop polls Now() and the outer pass loop breaks on the sticky flag.
func (c *cancelPollCheck) nodePolls(n ast.Node) bool {
	info := c.p.Pkg.Info
	found := false
	inspectShallow(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPollCall(info, call) {
			found = true
			return false
		}
		tgts, _ := c.p.Prog.funTargets(info, call.Fun)
		for _, t := range tgts {
			if t == nil {
				continue
			}
			if t.Polls || (c.fi.Polls && isStickyRead(t)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isStickyRead matches interrupt.Checker.Stopped.
func isStickyRead(t *FuncInfo) bool {
	return t.Fn != nil && t.Fn.Name() == "Stopped" &&
		t.Fn.Pkg() != nil && t.Fn.Pkg().Name() == "interrupt"
}

// satisfied searches the loop body for a poll-guarded exit.
func (c *cancelPollCheck) satisfied(body *ast.BlockStmt, label string) bool {
	sat := false
	var walk func(stmts []ast.Stmt, depth int)
	walk = func(stmts []ast.Stmt, depth int) {
		for _, s := range stmts {
			if sat {
				return
			}
			switch x := s.(type) {
			case *ast.LabeledStmt:
				walk([]ast.Stmt{x.Stmt}, depth)
			case *ast.BlockStmt:
				walk(x.List, depth)
			case *ast.IfStmt:
				polls := c.nodePolls(x.Cond) || (x.Init != nil && c.nodePolls(x.Init))
				if polls && (c.exits(x.Body.List, label, depth) || c.elseExits(x.Else, label, depth)) {
					sat = true
					return
				}
				walk(x.Body.List, depth)
				switch e := x.Else.(type) {
				case *ast.BlockStmt:
					walk(e.List, depth)
				case *ast.IfStmt:
					walk([]ast.Stmt{e}, depth)
				}
			case *ast.SelectStmt:
				for _, cl := range x.Body.List {
					cc, ok := cl.(*ast.CommClause)
					if !ok {
						continue
					}
					// A clause receiving a poll (<-ctx.Done()) whose body
					// leaves the loop: break there targets the select, so
					// only return or a labeled break count (depth+1).
					if cc.Comm != nil && c.nodePolls(cc.Comm) && c.exits(cc.Body, label, depth+1) {
						sat = true
						return
					}
					walk(cc.Body, depth+1)
				}
			case *ast.ForStmt:
				walk(x.Body.List, depth+1)
			case *ast.RangeStmt:
				walk(x.Body.List, depth+1)
			case *ast.SwitchStmt:
				walkCaseBodies(x.Body, func(ss []ast.Stmt) { walk(ss, depth+1) })
			case *ast.TypeSwitchStmt:
				walkCaseBodies(x.Body, func(ss []ast.Stmt) { walk(ss, depth+1) })
			}
		}
	}
	walk(body.List, 0)
	return sat
}

func (c *cancelPollCheck) elseExits(els ast.Stmt, label string, depth int) bool {
	switch e := els.(type) {
	case *ast.BlockStmt:
		return c.exits(e.List, label, depth)
	case *ast.IfStmt:
		return c.exits([]ast.Stmt{e}, label, depth)
	}
	return false
}

// exits reports the statements (some branch through them) leave the loop:
// a return anywhere, an unlabeled break at the loop's own nesting depth,
// or a break labeled with the loop's label.
func (c *cancelPollCheck) exits(stmts []ast.Stmt, label string, depth int) bool {
	found := false
	var walk func(ss []ast.Stmt, d int)
	walk = func(ss []ast.Stmt, d int) {
		for _, s := range ss {
			if found {
				return
			}
			switch x := s.(type) {
			case *ast.ReturnStmt:
				found = true
			case *ast.BranchStmt:
				if x.Tok != token.BREAK {
					continue
				}
				if x.Label != nil {
					if label != "" && x.Label.Name == label {
						found = true
					}
				} else if d == 0 {
					found = true
				}
			case *ast.LabeledStmt:
				walk([]ast.Stmt{x.Stmt}, d)
			case *ast.BlockStmt:
				walk(x.List, d)
			case *ast.IfStmt:
				walk(x.Body.List, d)
				switch e := x.Else.(type) {
				case *ast.BlockStmt:
					walk(e.List, d)
				case *ast.IfStmt:
					walk([]ast.Stmt{e}, d)
				}
			case *ast.ForStmt:
				walk(x.Body.List, d+1)
			case *ast.RangeStmt:
				walk(x.Body.List, d+1)
			case *ast.SwitchStmt:
				walkCaseBodies(x.Body, func(ss []ast.Stmt) { walk(ss, d+1) })
			case *ast.TypeSwitchStmt:
				walkCaseBodies(x.Body, func(ss []ast.Stmt) { walk(ss, d+1) })
			case *ast.SelectStmt:
				for _, cl := range x.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						walk(cc.Body, d+1)
					}
				}
			}
		}
	}
	walk(stmts, depth)
	return found
}

func walkCaseBodies(body *ast.BlockStmt, fn func([]ast.Stmt)) {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			fn(cc.Body)
		}
	}
}
