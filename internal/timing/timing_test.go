package timing

import (
	"math/rand"
	"strings"
	"testing"
)

// pipeline builds REG → comb(a) → comb(b) → REG with configurable delays.
func pipeline(dreg, da, db int64) *Graph {
	return &Graph{
		Intrinsic: []int64{dreg, da, db, dreg},
		Endpoint:  []bool{true, false, false, true},
		Arcs: []Arc{
			{From: 0, To: 1},
			{From: 1, To: 2},
			{From: 2, To: 3},
		},
	}
}

func TestValidate(t *testing.T) {
	g := pipeline(1, 2, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := pipeline(1, 2, 3)
	bad.Intrinsic[1] = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative delay accepted")
	}
	bad = pipeline(1, 2, 3)
	bad.Arcs[0].To = 9
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range arc accepted")
	}
	bad = pipeline(1, 2, 3)
	bad.Endpoint = bad.Endpoint[:2]
	if err := bad.Validate(); err == nil {
		t.Fatal("short endpoint vector accepted")
	}
	if err := (&Graph{}).Validate(); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	g := &Graph{
		Intrinsic: []int64{1, 1, 1},
		Endpoint:  []bool{false, false, false},
		Arcs:      []Arc{{0, 1}, {1, 2}, {2, 0}},
	}
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("combinational cycle not rejected: %v", err)
	}
}

func TestCycleThroughRegisterAllowed(t *testing.T) {
	// A feedback loop broken by a register is fine.
	g := &Graph{
		Intrinsic: []int64{1, 2, 3},
		Endpoint:  []bool{true, false, false},
		Arcs:      []Arc{{0, 1}, {1, 2}, {2, 0}},
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("registered loop rejected: %v", err)
	}
}

func TestCriticalPathDelay(t *testing.T) {
	// REG(1) → a(2) → b(3) → REG(1): worst path 1+2+3+1 = 7.
	g := pipeline(1, 2, 3)
	got, err := CriticalPathDelay(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("critical path = %d, want 7", got)
	}
}

func TestDeriveBudgets(t *testing.T) {
	// Cycle time 13, path delay 7 over 3 arcs, hop estimate 1:
	// every arc's budget = 13 − 7 − 1·(3−1) = 4.
	g := pipeline(1, 2, 3)
	budgets, err := Derive(g, Options{CycleTime: 13, HopEstimate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(budgets) != 3 {
		t.Fatalf("%d budgets, want 3", len(budgets))
	}
	for _, b := range budgets {
		if b.MaxDelay != 4 {
			t.Fatalf("arc %d→%d budget %d, want 4", b.From, b.To, b.MaxDelay)
		}
	}
}

func TestDeriveDropsVacuousBudgets(t *testing.T) {
	// One slow side branch, one fast: on a generous cycle the fast arcs'
	// budgets exceed the topology's diameter and are dropped.
	g := &Graph{
		//            REG   slow  fast  REG
		Intrinsic: []int64{1, 20, 2, 1},
		Endpoint:  []bool{true, false, false, true},
		Arcs:      []Arc{{0, 1}, {1, 3}, {0, 2}, {2, 3}},
	}
	budgets, err := Derive(g, Options{CycleTime: 30, HopEstimate: 0, MaxUseful: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Slow path 1+20+1 = 22 → budget 8 per arc ≥ 6? 30−22 = 8 ≥ 6 → also
	// dropped; tighten the cycle so the slow arcs stay critical.
	budgets, err = Derive(g, Options{CycleTime: 25, HopEstimate: 0, MaxUseful: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range budgets {
		if b.From == 0 && b.To == 2 || b.From == 2 && b.To == 3 {
			t.Fatalf("fast arc %d→%d should be vacuous (budget %d)", b.From, b.To, b.MaxDelay)
		}
	}
	if len(budgets) != 2 {
		t.Fatalf("%d critical budgets, want the 2 slow arcs", len(budgets))
	}
	// Slow arcs: 25−22 = 3.
	for _, b := range budgets {
		if b.MaxDelay != 3 {
			t.Fatalf("slow arc budget %d, want 3", b.MaxDelay)
		}
	}
}

func TestDeriveUnachievable(t *testing.T) {
	g := pipeline(1, 2, 3)
	if _, err := Derive(g, Options{CycleTime: 6}); err == nil {
		t.Fatal("cycle shorter than the intrinsic path accepted")
	}
	if _, err := Derive(g, Options{CycleTime: 0}); err == nil {
		t.Fatal("zero cycle time accepted")
	}
	if _, err := Derive(g, Options{CycleTime: 10, HopEstimate: -1}); err == nil {
		t.Fatal("negative hop estimate accepted")
	}
}

func TestReconvergentPaths(t *testing.T) {
	// Diamond: REG → a → (b | c) → d → REG, b slower than c. The a→… and
	// …→d budgets must be driven by the slow branch.
	g := &Graph{
		//            REG  a   b   c   d  REG
		Intrinsic: []int64{1, 2, 10, 1, 2, 1},
		Endpoint:  []bool{true, false, false, false, false, true},
		Arcs:      []Arc{{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}},
	}
	budgets, err := Derive(g, Options{CycleTime: 24, HopEstimate: 0})
	if err != nil {
		t.Fatal(err)
	}
	byArc := map[[2]int]int64{}
	for _, b := range budgets {
		byArc[[2]int{b.From, b.To}] = b.MaxDelay
	}
	// Slow path: 1+2+10+2+1 = 16 → budget 8 on its arcs.
	for _, a := range [][2]int{{0, 1}, {1, 2}, {2, 4}, {4, 5}} {
		if byArc[a] != 8 {
			t.Fatalf("arc %v budget %d, want 8 (slow branch governs)", a, byArc[a])
		}
	}
	// Fast branch interior: 1+2+1+2+1 = 7 → budget 17.
	for _, a := range [][2]int{{1, 3}, {3, 4}} {
		if byArc[a] != 17 {
			t.Fatalf("arc %v budget %d, want 17", a, byArc[a])
		}
	}
}

func TestConstraintsKeepTightest(t *testing.T) {
	budgets := []Budget{
		{From: 2, To: 5, MaxDelay: 4},
		{From: 5, To: 2, MaxDelay: 2}, // reverse direction, tighter
		{From: 1, To: 3, MaxDelay: 7},
	}
	cs := Constraints(budgets)
	if len(cs) != 2 {
		t.Fatalf("%d constraints, want 2 merged pairs", len(cs))
	}
	for _, c := range cs {
		if c.From == 2 && c.To == 5 {
			if c.MaxDelay != 2 {
				t.Fatalf("pair (2,5) bound %d, want tightest 2", c.MaxDelay)
			}
		}
	}
}

// Property: for random registered DAGs, every derived budget is exactly the
// cycle time minus the worst through-path delay minus the hop charges,
// verified against exhaustive path enumeration.
func TestDeriveAgainstPathEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(6)
		g := &Graph{
			Intrinsic: make([]int64, n),
			Endpoint:  make([]bool, n),
		}
		for j := 0; j < n; j++ {
			g.Intrinsic[j] = int64(1 + rng.Intn(5))
			g.Endpoint[j] = rng.Intn(3) == 0
		}
		g.Endpoint[0] = true
		g.Endpoint[n-1] = true
		// Forward arcs only (j1 < j2) keep the interior acyclic.
		for j1 := 0; j1 < n; j1++ {
			for j2 := j1 + 1; j2 < n; j2++ {
				if rng.Intn(3) == 0 {
					g.Arcs = append(g.Arcs, Arc{From: j1, To: j2})
				}
			}
		}
		if len(g.Arcs) == 0 {
			continue
		}
		cp, err := CriticalPathDelay(g)
		if err != nil {
			t.Fatal(err)
		}
		cycle := cp + int64(1+rng.Intn(10))
		hop := int64(rng.Intn(3))
		budgets, err := Derive(g, Options{CycleTime: cycle, HopEstimate: hop})
		if err != nil {
			// Hop charges can push a tight cycle over; that is a
			// legitimate outcome, not a test failure.
			continue
		}
		want := enumerateBudgets(g, cycle, hop)
		if len(budgets) != len(want) {
			t.Fatalf("trial %d: %d budgets, want %d", trial, len(budgets), len(want))
		}
		for _, b := range budgets {
			if want[[2]int{b.From, b.To}] != b.MaxDelay {
				t.Fatalf("trial %d: arc %d→%d budget %d, want %d",
					trial, b.From, b.To, b.MaxDelay, want[[2]int{b.From, b.To}])
			}
		}
	}
}

// enumerateBudgets recomputes every arc budget by explicit enumeration of
// all register-to-register paths (exponential; test sizes only).
func enumerateBudgets(g *Graph, cycle, hop int64) map[[2]int]int64 {
	fwd := g.forwardAdj()
	type pathStat struct {
		delay int64
		arcs  int64
	}
	// For every arc, the worst (delay, then arcs) path through it.
	worst := map[[2]int]pathStat{}
	var walk func(j int, delay int64, arcs []Arc)
	record := func(delay int64, arcs []Arc) {
		for _, a := range arcs {
			k := [2]int{a.From, a.To}
			st, ok := worst[k]
			cand := pathStat{delay: delay, arcs: int64(len(arcs))}
			if !ok || cand.delay > st.delay || (cand.delay == st.delay && cand.arcs > st.arcs) {
				worst[k] = cand
			}
		}
	}
	bwd := g.backwardAdj()
	var arcsStack []Arc
	walk = func(j int, delay int64, _ []Arc) {
		delay += g.Intrinsic[j]
		// Paths end at endpoints and at combinational dead ends (implicit
		// primary outputs) — matching Derive's semantics.
		if (g.Endpoint[j] || len(fwd[j]) == 0) && len(arcsStack) > 0 {
			record(delay, arcsStack)
			if g.Endpoint[j] {
				return
			}
		}
		if !g.Endpoint[j] || len(arcsStack) == 0 {
			for _, to := range fwd[j] {
				arcsStack = append(arcsStack, Arc{From: j, To: to})
				walk(to, delay, nil)
				arcsStack = arcsStack[:len(arcsStack)-1]
			}
		}
	}
	for j := range g.Intrinsic {
		// Path starts: endpoints and implicit primary inputs.
		if g.Endpoint[j] || len(bwd[j]) == 0 {
			walk(j, 0, nil)
		}
	}
	out := map[[2]int]int64{}
	for k, st := range worst {
		out[k] = cycle - st.delay - hop*(st.arcs-1)
	}
	return out
}
