// Package timing derives the pairwise routing-delay budgets D_C of the
// partitioning formulation from a register-to-register timing model, the
// way the paper describes its constraints: "driven by system cycle time and
// … derived from the delay equations and intrinsic delay in combinational
// circuit components" (§1, §2).
//
// The model is a combinational DAG over the circuit's components: every
// component carries an intrinsic delay, every wire is a directed signal arc
// whose routing delay depends on the final partitioning, and path endpoints
// (registers, primary I/O) anchor cycle-time paths. For a cycle time T,
// every register-to-register path p must satisfy
//
//	Σ intrinsic(v) + Σ routing(e)  ≤  T     over v, e on p.
//
// The budget of one arc (j1, j2) is the slack the worst path through that
// arc leaves for its own routing when every *other* arc on the path is
// charged a pessimistic per-hop routing estimate:
//
//	D_C(j1,j2) = T − worstPathDelay(j1,j2) − est·(worstPathArcs(j1,j2) − 1)
//
// where worstPathDelay is the largest total intrinsic delay over paths
// through the arc and worstPathArcs the number of arcs on that path. Arcs
// whose budget reaches the maximum inter-partition delay are reported as
// unconstrained — exactly the constraints the paper "discarded" from the
// N² total, keeping only the critical ones (Table I).
package timing

import (
	"errors"
	"fmt"

	"repro/internal/model"
)

// Graph is the combinational timing model of a circuit.
type Graph struct {
	// Intrinsic[j] is the internal delay of component j (≥ 0).
	Intrinsic []int64
	// Arcs are the directed signal connections (from driving component to
	// driven component). Typically one per wire direction of interest.
	Arcs []Arc
	// Endpoint[j] marks registered components (or primary I/O): paths
	// start after and end at endpoints. Combinational components have
	// Endpoint[j] = false.
	Endpoint []bool
}

// Arc is one directed signal connection.
type Arc struct {
	From, To int
}

// Validate checks shapes and acyclicity over the combinational interior
// (paths may start and end at endpoints, but a cycle that never crosses an
// endpoint has unbounded delay and is rejected).
func (g *Graph) Validate() error {
	n := len(g.Intrinsic)
	if n == 0 {
		return errors.New("timing: empty graph")
	}
	if len(g.Endpoint) != n {
		return fmt.Errorf("timing: Endpoint has %d entries, want %d", len(g.Endpoint), n)
	}
	for j, d := range g.Intrinsic {
		if d < 0 {
			return fmt.Errorf("timing: component %d has negative intrinsic delay %d", j, d)
		}
	}
	for k, a := range g.Arcs {
		if a.From < 0 || a.From >= n || a.To < 0 || a.To >= n || a.From == a.To {
			return fmt.Errorf("timing: arc %d (%d→%d) invalid", k, a.From, a.To)
		}
	}
	// Combinational cycle check: DFS over arcs that do not *enter* an
	// endpoint (paths are cut at endpoints).
	adj := g.forwardAdj()
	state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
	var visit func(j int) error
	visit = func(j int) error {
		state[j] = 1
		for _, to := range adj[j] {
			if g.Endpoint[to] {
				continue // path terminates at a register
			}
			switch state[to] {
			case 1:
				return fmt.Errorf("timing: combinational cycle through component %d", to)
			case 0:
				if err := visit(to); err != nil {
					return err
				}
			}
		}
		state[j] = 2
		return nil
	}
	for j := 0; j < n; j++ {
		if state[j] == 0 {
			if err := visit(j); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *Graph) forwardAdj() [][]int {
	adj := make([][]int, len(g.Intrinsic))
	for _, a := range g.Arcs {
		adj[a.From] = append(adj[a.From], a.To)
	}
	return adj
}

func (g *Graph) backwardAdj() [][]int {
	adj := make([][]int, len(g.Intrinsic))
	for _, a := range g.Arcs {
		adj[a.To] = append(adj[a.To], a.From)
	}
	return adj
}

// pathInfo is the worst (largest) accumulated intrinsic delay and arc count
// from/to the nearest endpoints.
type pathInfo struct {
	delay int64
	arcs  int64
}

// longest computes, for every component, the worst accumulated intrinsic
// delay and arc count from a path start (for backward) or to a path end
// (for forward), by memoized DFS. Endpoints contribute their own intrinsic
// delay but stop propagation.
func (g *Graph) longest(adj [][]int) []pathInfo {
	n := len(g.Intrinsic)
	info := make([]pathInfo, n)
	done := make([]bool, n)
	var visit func(j int) pathInfo
	visit = func(j int) pathInfo {
		if done[j] {
			return info[j]
		}
		done[j] = true // safe: Validate rejects combinational cycles
		best := pathInfo{}
		if !g.Endpoint[j] {
			for _, next := range adj[j] {
				p := visit(next)
				cand := pathInfo{delay: p.delay, arcs: p.arcs + 1}
				if cand.delay > best.delay || (cand.delay == best.delay && cand.arcs > best.arcs) {
					best = cand
				}
			}
		}
		best.delay += g.Intrinsic[j]
		info[j] = best
		return best
	}
	for j := 0; j < n; j++ {
		visit(j)
	}
	return info
}

// Budget is one derived routing budget.
type Budget struct {
	From, To int
	MaxDelay int64
}

// Options tunes Derive.
type Options struct {
	// CycleTime is the clock period T (required, > 0).
	CycleTime int64
	// HopEstimate is the pessimistic routing delay charged to every
	// *other* arc of the worst path; ≥ 0 (0 gives the loosest budgets).
	HopEstimate int64
	// MaxUseful is the largest inter-partition delay of the target
	// topology; budgets ≥ MaxUseful are vacuous and dropped (the paper's
	// "discarded" non-critical constraints). ≤ 0 keeps everything.
	MaxUseful int64
}

// Derive computes a routing budget for every arc and returns the critical
// ones. An arc with a negative budget makes the cycle time unachievable
// regardless of partitioning; Derive reports it as an error.
func Derive(g *Graph, opts Options) ([]Budget, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.CycleTime <= 0 {
		return nil, errors.New("timing: cycle time must be positive")
	}
	if opts.HopEstimate < 0 {
		return nil, errors.New("timing: hop estimate must be non-negative")
	}
	arrive := g.longest(g.backwardAdj()) // worst delay from a path start *into* j (inclusive)
	leave := g.longest(g.forwardAdj())   // worst delay from j *to* a path end (inclusive)

	var budgets []Budget
	for _, a := range g.Arcs {
		// Worst path through the arc: arrive at From, cross, leave from To.
		delay := arrive[a.From].delay + leave[a.To].delay
		arcs := arrive[a.From].arcs + leave[a.To].arcs + 1
		budget := opts.CycleTime - delay - opts.HopEstimate*(arcs-1)
		if budget < 0 {
			return nil, fmt.Errorf("timing: arc %d→%d needs %d of delay on a %d cycle: unachievable",
				a.From, a.To, delay+opts.HopEstimate*(arcs-1), opts.CycleTime)
		}
		if opts.MaxUseful > 0 && budget >= opts.MaxUseful {
			continue // vacuous: any placement satisfies it
		}
		budgets = append(budgets, Budget{From: a.From, To: a.To, MaxDelay: budget})
	}
	return budgets, nil
}

// Constraints converts derived budgets into model timing constraints,
// keeping the tightest bound per unordered pair (the model treats D_C
// symmetrically).
func Constraints(budgets []Budget) []model.TimingConstraint {
	type key struct{ a, b int }
	tight := make(map[key]int64, len(budgets))
	order := make([]key, 0, len(budgets))
	for _, b := range budgets {
		x, y := b.From, b.To
		if x > y {
			x, y = y, x
		}
		k := key{x, y}
		if cur, ok := tight[k]; !ok {
			tight[k] = b.MaxDelay
			order = append(order, k)
		} else if b.MaxDelay < cur {
			tight[k] = b.MaxDelay
		}
	}
	out := make([]model.TimingConstraint, 0, len(order))
	for _, k := range order {
		out = append(out, model.TimingConstraint{From: k.a, To: k.b, MaxDelay: tight[k]})
	}
	return out
}

// CriticalPathDelay returns the worst register-to-register intrinsic delay
// (the minimum achievable cycle time with zero routing delay).
func CriticalPathDelay(g *Graph) (int64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	arrive := g.longest(g.backwardAdj())
	leave := g.longest(g.forwardAdj())
	var worst int64
	for _, a := range g.Arcs {
		if d := arrive[a.From].delay + leave[a.To].delay; d > worst {
			worst = d
		}
	}
	return worst, nil
}
