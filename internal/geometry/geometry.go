// Package geometry builds partition-array topologies: the M×M
// interconnection cost (B) and routing delay (D) matrices of the
// partitioning formulation, derived from the physical placement of the
// partitions. The paper's example (§3.3) and evaluation (16 partitions) use
// rectangular grids with Manhattan distances between adjacent slots; the
// formulation itself allows arbitrary B and D, so several metrics are
// provided.
package geometry

import "fmt"

// Metric selects how the inter-partition distance matrix is derived from
// grid positions.
type Metric int

const (
	// Manhattan is |Δrow| + |Δcol|, the paper's wire-length and delay
	// model for grid-arranged partitions (adjacent slots are distance 1).
	Manhattan Metric = iota
	// SquaredEuclidean is Δrow² + Δcol², the "quadratic wire length"
	// metric the paper mentions as an alternative cost.
	SquaredEuclidean
	// UnitCrossing is 0 on the diagonal and 1 elsewhere: the quadratic
	// term then counts the total number of wire crossings between
	// partitions.
	UnitCrossing
	// Chebyshev is max(|Δrow|, |Δcol|), a useful delay model when diagonal
	// routing resources exist.
	Chebyshev
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case Manhattan:
		return "manhattan"
	case SquaredEuclidean:
		return "squared"
	case UnitCrossing:
		return "crossing"
	case Chebyshev:
		return "chebyshev"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// ParseMetric converts a metric name produced by String back to a Metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "manhattan":
		return Manhattan, nil
	case "squared":
		return SquaredEuclidean, nil
	case "crossing":
		return UnitCrossing, nil
	case "chebyshev":
		return Chebyshev, nil
	}
	return 0, fmt.Errorf("geometry: unknown metric %q", s)
}

// Valid reports whether m is one of the defined metrics.
func (m Metric) Valid() error {
	switch m {
	case Manhattan, SquaredEuclidean, UnitCrossing, Chebyshev:
		return nil
	}
	return fmt.Errorf("geometry: unknown metric %d", int(m))
}

// Grid is a rows×cols array of partition slots. Slot i sits at
// (row, col) = (i/cols, i%cols); slots are numbered row-major, matching the
// paper's 2×2 example where partitions 1..4 occupy the array
//
//	1 2
//	3 4
type Grid struct {
	Rows, Cols int
}

// M returns the number of slots.
func (g Grid) M() int { return g.Rows * g.Cols }

// Position returns the (row, col) of slot i.
func (g Grid) Position(i int) (row, col int) { return i / g.Cols, i % g.Cols }

// Slot returns the slot index at (row, col).
func (g Grid) Slot(row, col int) int { return row*g.Cols + col }

// Distance returns the metric distance between slots i1 and i2. An unknown
// metric is an error, not a panic: metrics arrive from CLI flags and
// serialized configs, so the library reports them instead of crashing.
func (g Grid) Distance(i1, i2 int, metric Metric) (int64, error) {
	if err := metric.Valid(); err != nil {
		return 0, err
	}
	return g.distance(i1, i2, metric), nil
}

// distance computes the metric distance for an already-validated metric.
func (g Grid) distance(i1, i2 int, metric Metric) int64 {
	r1, c1 := g.Position(i1)
	r2, c2 := g.Position(i2)
	dr, dc := abs(r1-r2), abs(c1-c2)
	switch metric {
	case Manhattan:
		return int64(dr + dc)
	case SquaredEuclidean:
		return int64(dr*dr + dc*dc)
	case UnitCrossing:
		if i1 == i2 {
			return 0
		}
		return 1
	case Chebyshev:
		if dr > dc {
			return int64(dr)
		}
		return int64(dc)
	}
	return 0 // unreachable: metric validated by every exported entry point
}

// DistanceMatrix returns the full M×M distance matrix for the metric.
func (g Grid) DistanceMatrix(metric Metric) ([][]int64, error) {
	if err := metric.Valid(); err != nil {
		return nil, err
	}
	m := g.M()
	mat := make([][]int64, m)
	for i1 := 0; i1 < m; i1++ {
		row := make([]int64, m)
		for i2 := 0; i2 < m; i2++ {
			row[i2] = g.distance(i1, i2, metric)
		}
		mat[i1] = row
	}
	return mat, nil
}

// Diameter returns the largest entry of the metric distance matrix.
func (g Grid) Diameter(metric Metric) (int64, error) {
	return g.Distance(0, g.M()-1, metric)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
