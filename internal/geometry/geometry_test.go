package geometry

import (
	"testing"
	"testing/quick"
)

func TestPaperTwoByTwoManhattan(t *testing.T) {
	// §3.3: B = D for the 2×2 array, adjacent partitions distance 1.
	g := Grid{Rows: 2, Cols: 2}
	want := [][]int64{
		{0, 1, 1, 2},
		{1, 0, 2, 1},
		{1, 2, 0, 1},
		{2, 1, 1, 0},
	}
	got, err := g.DistanceMatrix(Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for k := range want[i] {
			if got[i][k] != want[i][k] {
				t.Fatalf("Manhattan[%d][%d] = %d, want %d", i, k, got[i][k], want[i][k])
			}
		}
	}
}

func TestSlotPositionRoundTrip(t *testing.T) {
	g := Grid{Rows: 4, Cols: 4}
	for i := 0; i < g.M(); i++ {
		r, c := g.Position(i)
		if g.Slot(r, c) != i {
			t.Fatalf("Slot(Position(%d)) = %d", i, g.Slot(r, c))
		}
	}
}

func TestMetrics(t *testing.T) {
	g := Grid{Rows: 3, Cols: 4}
	// Slots 0 = (0,0) and 11 = (2,3).
	cases := []struct {
		m    Metric
		want int64
	}{
		{Manhattan, 5},
		{SquaredEuclidean, 13},
		{UnitCrossing, 1},
		{Chebyshev, 3},
	}
	for _, tc := range cases {
		if got, err := g.Distance(0, 11, tc.m); err != nil || got != tc.want {
			t.Errorf("%v distance = %d, %v, want %d", tc.m, got, err, tc.want)
		}
		if got, err := g.Distance(7, 7, tc.m); err != nil || got != 0 {
			t.Errorf("%v self-distance = %d, %v, want 0", tc.m, got, err)
		}
	}
}

func TestDiameter(t *testing.T) {
	g := Grid{Rows: 4, Cols: 4}
	if got, err := g.Diameter(Manhattan); err != nil || got != 6 {
		t.Fatalf("4×4 Manhattan diameter = %d, %v, want 6", got, err)
	}
	if got, err := g.Diameter(Chebyshev); err != nil || got != 3 {
		t.Fatalf("4×4 Chebyshev diameter = %d, %v, want 3", got, err)
	}
}

func TestMetricStringRoundTrip(t *testing.T) {
	for _, m := range []Metric{Manhattan, SquaredEuclidean, UnitCrossing, Chebyshev} {
		got, err := ParseMetric(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMetric(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMetric("bogus"); err == nil {
		t.Fatal("ParseMetric accepted bogus metric")
	}
}

// Property: every metric matrix is symmetric with zero diagonal, and
// Manhattan obeys the triangle inequality.
func TestMatrixProperties(t *testing.T) {
	f := func(rows8, cols8 uint8) bool {
		rows := int(rows8%5) + 1
		cols := int(cols8%5) + 1
		g := Grid{Rows: rows, Cols: cols}
		for _, metric := range []Metric{Manhattan, SquaredEuclidean, UnitCrossing, Chebyshev} {
			mat, err := g.DistanceMatrix(metric)
			if err != nil {
				return false
			}
			for i := range mat {
				if mat[i][i] != 0 {
					return false
				}
				for k := range mat {
					if mat[i][k] != mat[k][i] || mat[i][k] < 0 {
						return false
					}
				}
			}
		}
		man, err := g.DistanceMatrix(Manhattan)
		if err != nil {
			return false
		}
		for i := range man {
			for k := range man {
				for l := range man {
					if man[i][k] > man[i][l]+man[l][k] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownMetricErrors(t *testing.T) {
	g := Grid{Rows: 2, Cols: 2}
	bad := Metric(99)
	if err := bad.Valid(); err == nil {
		t.Fatal("Valid accepted Metric(99)")
	}
	if _, err := g.Distance(0, 1, bad); err == nil {
		t.Fatal("Distance accepted an unknown metric")
	}
	if _, err := g.DistanceMatrix(bad); err == nil {
		t.Fatal("DistanceMatrix accepted an unknown metric")
	}
	if _, err := g.Diameter(bad); err == nil {
		t.Fatal("Diameter accepted an unknown metric")
	}
}
