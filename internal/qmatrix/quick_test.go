package qmatrix_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/adjacency"
	"repro/internal/geometry"
	"repro/internal/model"
	. "repro/internal/qmatrix"
)

// quickSeed generates small random instances for the quick properties.
type quickSeed struct {
	Seed int64
	N    uint8
}

func (quickSeed) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickSeed{Seed: r.Int63(), N: uint8(2 + r.Intn(5))})
}

func (qs quickSeed) build() (*model.Problem, model.Assignment) {
	rng := rand.New(rand.NewSource(qs.Seed))
	n := int(qs.N)
	grid := geometry.Grid{Rows: 2, Cols: 2}
	dist, _ := grid.DistanceMatrix(geometry.Manhattan)
	c := &model.Circuit{Sizes: make([]int64, n)}
	for j := range c.Sizes {
		c.Sizes[j] = 1
	}
	for j1 := 0; j1 < n; j1++ {
		for j2 := j1 + 1; j2 < n; j2++ {
			if rng.Intn(2) == 0 {
				c.Wires = append(c.Wires, model.Wire{From: j1, To: j2, Weight: 1 + rng.Int63n(4)})
			}
			if rng.Intn(3) == 0 {
				c.Timing = append(c.Timing, model.TimingConstraint{From: j1, To: j2, MaxDelay: rng.Int63n(3)})
			}
		}
	}
	lin := make([][]int64, 4)
	for i := range lin {
		lin[i] = make([]int64, n)
		for j := range lin[i] {
			lin[i][j] = rng.Int63n(5)
		}
	}
	topo := &model.Topology{
		Capacities: []int64{int64(n), int64(n), int64(n), int64(n)},
		Cost:       dist,
		Delay:      dist,
	}
	p := &model.Problem{Circuit: c, Topology: topo, Alpha: 1, Beta: 1, Linear: lin}
	a := make(model.Assignment, n)
	for j := range a {
		a[j] = rng.Intn(4)
	}
	return p, a
}

// Property: yᵀQy on the un-embedded matrix equals the model objective for
// every instance and assignment — the §3.1 transformation is exact.
func TestQuickBaseValueEqualsObjective(t *testing.T) {
	f := func(qs quickSeed) bool {
		p, a := qs.build()
		q := DenseBase(p)
		return Value(q, a, p.M()) == p.Objective(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Q̂ coincides with the base Q on the region of feasible pairs
// (the precondition of Theorem 2), for any penalty.
func TestQuickQhatCoincidesOverR(t *testing.T) {
	f := func(qs quickSeed, rawPen uint8) bool {
		p, _ := qs.build()
		penalty := int64(rawPen) + 1
		base := DenseBase(p)
		qhat := DenseQhat(p, penalty)
		adj := adjacency.Build(p.Circuit)
		m, n := p.M(), p.N()
		for r1 := 0; r1 < m*n; r1++ {
			i1, j1 := Unpack(r1, m)
			for r2 := 0; r2 < m*n; r2++ {
				i2, j2 := Unpack(r2, m)
				if FeasiblePair(adj, p.Topology.Delay, i1, j1, i2, j2) {
					if qhat[r1][r2] != base[r1][r2] {
						return false
					}
				} else if qhat[r1][r2] != penalty {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: for timing-feasible assignments, yᵀQ̂y equals yᵀQy (Lemma 1 of
// the appendix: coincident matrices agree over F_R).
func TestQuickLemma1(t *testing.T) {
	f := func(qs quickSeed, rawPen uint8) bool {
		p, a := qs.build()
		if !p.TimingFeasible(a) {
			return true // Lemma 1 speaks only about F_R
		}
		penalty := int64(rawPen) + 1
		base := DenseBase(p)
		qhat := DenseQhat(p, penalty)
		return Value(base, a, p.M()) == Value(qhat, a, p.M())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
