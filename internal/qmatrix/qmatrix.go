// Package qmatrix implements the paper's §3 transformation of the
// partitioning problem into quadratic Boolean form: the packing of the
// x[i][j] indicator matrix into a length-M·N vector y, the construction of
// the cost matrix Q (linear term on the diagonal, a[j1][j2]·b[i1][i2]
// couplings elsewhere), and the two timing-constraint embeddings:
//
//   - Theorem 1 (exact): entries outside the region of feasible pairs R are
//     replaced by a constant U > 2·Σ|q|, making the unconstrained problem
//     exactly equivalent to the timing-constrained one.
//   - Theorem 2 (soft): entries outside R are replaced by any raised value
//     (the paper uses 50); if the minimizer of the modified problem is
//     timing-feasible it is optimal for the original problem.
//
// Dense matrices are only for small instances and tests; the solvers
// enumerate Q̂'s nonzeros from adjacency lists instead (paper §4.3).
package qmatrix

import (
	"math"

	"repro/internal/adjacency"
	"repro/internal/model"
)

// Pack maps (partition i, component j) to the flat index
// r = i + j·M, the 0-based form of the paper's r = i + (j−1)·M.
func Pack(i, j, m int) int { return i + j*m }

// Unpack inverts Pack.
func Unpack(r, m int) (i, j int) { return r % m, r / m }

// FeasiblePair reports whether ((i1,j1),(i2,j2)) belongs to the region of
// feasible pairs R: assigning j1→i1 and j2→i2 does not violate the timing
// constraint from j1 to j2, i.e. D(i1,i2) ≤ D_C(j1,j2). Pairs with j1 == j2
// are vacuously feasible here (they are excluded by C3, not by timing).
func FeasiblePair(adj *adjacency.Lists, delay [][]int64, i1, j1, i2, j2 int) bool {
	if j1 == j2 {
		return true
	}
	dc := adj.MaxDelay(j1, j2)
	if dc == model.Unconstrained {
		return true
	}
	return delay[i1][i2] <= dc
}

// DenseBase builds the M·N × M·N cost matrix Q of §3.1 with the scaling
// factors folded in: diagonal entries α·p[i][j], off-diagonal entries
// β·a[j1][j2]·b[i1][i2] with A interpreted symmetrically. No timing
// embedding is applied.
func DenseBase(p *model.Problem) [][]int64 {
	return dense(p, nil, 0)
}

// DenseQhat builds the soft-embedded cost matrix Q̂ of Theorem 2: like
// DenseBase, but every entry whose index pair lies outside the region of
// feasible pairs R is *set* to penalty, exactly as in the paper's §3.3
// worked example (where the 5·2 coupling at a timing-violating slot appears
// as 50, not 60).
func DenseQhat(p *model.Problem, penalty int64) [][]int64 {
	adj := adjacency.Build(p.Circuit)
	return dense(p, adj, penalty)
}

// DenseTheorem1 builds the exactly-embedded matrix Q' of Theorem 1 and
// returns it together with the constant U = 2·Σ|q| + 1 used for the
// infeasible entries.
func DenseTheorem1(p *model.Problem) ([][]int64, int64) {
	base := DenseBase(p)
	var sum int64
	for _, row := range base {
		for _, v := range row {
			if v < 0 {
				sum -= v
			} else {
				sum += v
			}
		}
	}
	u := 2*sum + 1
	adj := adjacency.Build(p.Circuit)
	q := dense(p, adj, u)
	return q, u
}

func dense(p *model.Problem, adj *adjacency.Lists, penalty int64) [][]int64 {
	m, n := p.M(), p.N()
	mn := m * n
	b := p.Topology.Cost
	d := p.Topology.Delay
	q := make([][]int64, mn)
	for r := range q {
		q[r] = make([]int64, mn)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			q[Pack(i, j, m)][Pack(i, j, m)] = p.Alpha * p.LinearAt(i, j)
		}
	}
	var weights [][]int64 // weights[j1][j2] = a, symmetric
	if adj == nil {
		adj = adjacency.Build(p.Circuit)
	}
	weights = make([][]int64, n)
	for j := 0; j < n; j++ {
		weights[j] = make([]int64, n)
		for _, arc := range adj.Arcs[j] {
			weights[j][arc.Other] = arc.Weight
		}
	}
	for j1 := 0; j1 < n; j1++ {
		for j2 := 0; j2 < n; j2++ {
			if j1 == j2 {
				continue
			}
			w := weights[j1][j2]
			dc := adj.MaxDelay(j1, j2)
			for i1 := 0; i1 < m; i1++ {
				for i2 := 0; i2 < m; i2++ {
					r1, r2 := Pack(i1, j1, m), Pack(i2, j2, m)
					if penalty != 0 && dc != model.Unconstrained && d[i1][i2] > dc {
						q[r1][r2] = penalty
					} else {
						q[r1][r2] = p.Beta * w * b[i1][i2]
					}
				}
			}
		}
	}
	return q
}

// Value evaluates yᵀQy for the binary vector y induced by a complete
// assignment a: y[Pack(a[j], j)] = 1.
func Value(q [][]int64, a model.Assignment, m int) int64 {
	var v int64
	for j1, i1 := range a {
		r1 := Pack(i1, j1, m)
		row := q[r1]
		for j2, i2 := range a {
			v += row[Pack(i2, j2, m)]
		}
	}
	return v
}

// Omega computes the bound vector ω of equation (2): for every flat index
// r = (i1, j1),
//
//	ω_r ≥ max over y ∈ S of Σ_s q̂[r][s]·y_s.
//
// Because every y ∈ S assigns each component to exactly one partition (C3),
// the column sum decomposes per component, so
// ω_r = q̂[r][r] + Σ_{j2≠j1} max_{i2} q̂[r][(i2,j2)] is a valid bound. It is
// computed sparsely from the adjacency lists in O(M·nnz); components not
// coupled to j1 contribute only zero entries.
func Omega(p *model.Problem, adj *adjacency.Lists, penalty int64) []int64 {
	m, n := p.M(), p.N()
	b := p.Topology.Cost
	d := p.Topology.Delay
	omega := make([]int64, m*n)
	// maxB[i1] = max_{i2} b[i1][i2]
	maxB := make([]int64, m)
	for i1 := 0; i1 < m; i1++ {
		for i2 := 0; i2 < m; i2++ {
			if b[i1][i2] > maxB[i1] {
				maxB[i1] = b[i1][i2]
			}
		}
	}
	for j1 := 0; j1 < n; j1++ {
		for i1 := 0; i1 < m; i1++ {
			w := p.Alpha * p.LinearAt(i1, j1)
			for _, arc := range adj.Arcs[j1] {
				// max over i2 of the (i1,j1)-(i2,arc.Other) entry:
				// either the raised penalty (if some i2 violates the
				// timing bound) or the largest wire coupling.
				best := int64(0)
				if arc.Weight > 0 {
					best = p.Beta * arc.Weight * maxB[i1]
				}
				if arc.MaxDelay != model.Unconstrained {
					for i2 := 0; i2 < m; i2++ {
						if d[i1][i2] > arc.MaxDelay {
							if penalty > best {
								best = penalty
							}
							break
						}
					}
				}
				// Saturate: with a Theorem-1 penalty in play each term can
				// be ceiling-scale, and a high-degree component would wrap
				// the sum negative — a "bound" the branch-and-bound search
				// would then happily prune everything against. ω_r stays a
				// valid upper bound when pinned at MaxInt64. best ≥ 0, so
				// the headroom test itself cannot overflow.
				if w > math.MaxInt64-best {
					w = math.MaxInt64
				} else {
					w += best
				}
			}
			omega[Pack(i1, j1, m)] = w
		}
	}
	return omega
}
