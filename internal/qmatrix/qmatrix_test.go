package qmatrix_test

import (
	"math/rand"
	"testing"

	"repro/internal/adjacency"
	"repro/internal/bruteforce"
	"repro/internal/geometry"
	"repro/internal/model"
	"repro/internal/paperex"
	. "repro/internal/qmatrix"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, m := range []int{1, 3, 4, 16} {
		for j := 0; j < 5; j++ {
			for i := 0; i < m; i++ {
				r := Pack(i, j, m)
				gi, gj := Unpack(r, m)
				if gi != i || gj != j {
					t.Fatalf("Unpack(Pack(%d,%d,%d)) = (%d,%d)", i, j, m, gi, gj)
				}
			}
		}
	}
	// r = i + (j-1)M of the paper, 0-based: consecutive i within a column.
	if Pack(0, 0, 4) != 0 || Pack(3, 0, 4) != 3 || Pack(0, 1, 4) != 4 {
		t.Fatal("Pack does not match the paper's column-major packing")
	}
}

// TestPaperExampleQhat reproduces the 12×12 matrix printed in §3.3 of the
// paper entry-for-entry.
func TestPaperExampleQhat(t *testing.T) {
	p := paperex.MustNew()
	got := DenseQhat(p, paperex.Penalty)
	want := paperex.Qhat()
	if len(got) != 12 {
		t.Fatalf("Q̂ is %d×%d, want 12×12", len(got), len(got))
	}
	for r1 := range want {
		for r2 := range want[r1] {
			if got[r1][r2] != want[r1][r2] {
				i1, j1 := Unpack(r1, 4)
				i2, j2 := Unpack(r2, 4)
				t.Fatalf("Q̂[(%d,%d)][(%d,%d)] = %d, want %d",
					i1, j1, i2, j2, got[r1][r2], want[r1][r2])
			}
		}
	}
}

// TestValueMatchesObjective checks that yᵀQy on the un-embedded matrix
// equals the PP objective for every assignment of the paper example.
func TestValueMatchesObjective(t *testing.T) {
	p := paperex.MustNew()
	q := DenseBase(p)
	a := model.Assignment{0, 0, 0}
	m := p.M()
	var rec func(j int)
	rec = func(j int) {
		if j == len(a) {
			if got, want := Value(q, a, m), p.Objective(a); got != want {
				t.Fatalf("Value(%v) = %d, want objective %d", a, got, want)
			}
			return
		}
		for i := 0; i < m; i++ {
			a[j] = i
			rec(j + 1)
		}
	}
	rec(0)
}

// randomProblem builds a small random instance on a 2×2 grid with loose or
// tight capacities.
func randomProblem(rng *rand.Rand, n int, tight bool) *model.Problem {
	grid := geometry.Grid{Rows: 2, Cols: 2}
	dist, _ := grid.DistanceMatrix(geometry.Manhattan)
	c := &model.Circuit{Sizes: make([]int64, n)}
	var total int64
	for j := range c.Sizes {
		c.Sizes[j] = int64(1 + rng.Intn(4))
		total += c.Sizes[j]
	}
	for j1 := 0; j1 < n; j1++ {
		for j2 := j1 + 1; j2 < n; j2++ {
			if rng.Intn(2) == 0 {
				c.Wires = append(c.Wires, model.Wire{From: j1, To: j2, Weight: int64(1 + rng.Intn(3))})
			}
			if rng.Intn(3) == 0 {
				c.Timing = append(c.Timing, model.TimingConstraint{From: j1, To: j2, MaxDelay: int64(rng.Intn(3))})
			}
		}
	}
	cap := total // loose: everything fits anywhere
	if tight {
		cap = total/2 + 2
	}
	topo := &model.Topology{
		Capacities: []int64{cap, cap, cap, cap},
		Cost:       dist,
		Delay:      dist,
	}
	var lin [][]int64
	if rng.Intn(2) == 0 {
		lin = make([][]int64, 4)
		for i := range lin {
			lin[i] = make([]int64, n)
			for j := range lin[i] {
				lin[i][j] = int64(rng.Intn(5))
			}
		}
	}
	p, err := model.NewProblem(c, topo, 1, 1, lin)
	if err != nil {
		panic(err)
	}
	return p
}

// TestTheorem1Equivalence: the exact big-U embedding makes the
// unconstrained-in-C2 problem equivalent to the timing-constrained one —
// same optimal value, and the QBP minimizer is feasible — whenever a
// feasible solution exists.
func TestTheorem1Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	feasibleSeen := 0
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng, 4+rng.Intn(2), trial%2 == 0)
		exact, err := bruteforce.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !exact.Found {
			continue // F_R empty: Theorem 1 does not apply
		}
		feasibleSeen++
		q1, u := DenseTheorem1(p)
		if u <= 0 {
			t.Fatalf("trial %d: non-positive U %d", trial, u)
		}
		emb, err := bruteforce.SolveQBP(p, q1)
		if err != nil {
			t.Fatal(err)
		}
		if !emb.Found {
			t.Fatalf("trial %d: embedded QBP found nothing", trial)
		}
		if emb.Value != exact.Value {
			t.Fatalf("trial %d: embedded optimum %d != constrained optimum %d", trial, emb.Value, exact.Value)
		}
		if !p.TimingFeasible(emb.Assignment) {
			t.Fatalf("trial %d: embedded minimizer violates timing: %v", trial, emb.Assignment)
		}
		if got := p.Objective(emb.Assignment); got != exact.Value {
			t.Fatalf("trial %d: embedded minimizer objective %d != optimum %d", trial, got, exact.Value)
		}
	}
	if feasibleSeen < 10 {
		t.Fatalf("only %d feasible trials; generator too restrictive for a meaningful test", feasibleSeen)
	}
}

// TestTheorem2Soundness: with the soft penalty (50), *if* the minimizer of
// QBP(Q̂) is timing-feasible then it is optimal for the constrained problem.
func TestTheorem2Soundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	applied := 0
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng, 4+rng.Intn(2), trial%2 == 1)
		exact, err := bruteforce.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		qhat := DenseQhat(p, 50)
		soft, err := bruteforce.SolveQBP(p, qhat)
		if err != nil {
			t.Fatal(err)
		}
		if !soft.Found || !p.TimingFeasible(soft.Assignment) {
			continue // theorem's hypothesis not met; nothing to check
		}
		applied++
		if !exact.Found {
			t.Fatalf("trial %d: soft minimizer feasible but exact search found nothing", trial)
		}
		if got := p.Objective(soft.Assignment); got != exact.Value {
			t.Fatalf("trial %d: soft minimizer objective %d != constrained optimum %d", trial, got, exact.Value)
		}
	}
	if applied < 10 {
		t.Fatalf("theorem hypothesis met in only %d trials", applied)
	}
}

// TestOmegaIsValidBound: ω_r must dominate Σ_s q̂[r][s]·y_s for every
// capacity-feasible assignment y (equation 2).
func TestOmegaIsValidBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, 4, trial%2 == 0)
		const penalty = 50
		adj := adjacency.Build(p.Circuit)
		omega := Omega(p, adj, penalty)
		qhat := DenseQhat(p, penalty)
		m, n := p.M(), p.N()
		a := make(model.Assignment, n)
		var rec func(j int)
		rec = func(j int) {
			if j == n {
				if !p.CapacityFeasible(a) {
					return
				}
				for r := 0; r < m*n; r++ {
					var sum int64
					for j2, i2 := range a {
						sum += qhat[r][Pack(i2, j2, m)]
					}
					if sum > omega[r] {
						t.Fatalf("trial %d: ω[%d] = %d < column sum %d under %v", trial, r, omega[r], sum, a)
					}
				}
				return
			}
			for i := 0; i < m; i++ {
				a[j] = i
				rec(j + 1)
			}
		}
		rec(0)
	}
}

func TestDenseTheorem1UDominates(t *testing.T) {
	p := paperex.MustNew()
	q, u := DenseTheorem1(p)
	base := DenseBase(p)
	var sum int64
	for _, row := range base {
		for _, v := range row {
			if v < 0 {
				sum -= v
			} else {
				sum += v
			}
		}
	}
	if u <= 2*sum {
		t.Fatalf("U = %d does not satisfy U > 2Σ|q| = %d", u, 2*sum)
	}
	// Every infeasible slot holds exactly U, every feasible slot matches base.
	adj := adjacency.Build(p.Circuit)
	m, n := p.M(), p.N()
	for r1 := 0; r1 < m*n; r1++ {
		i1, j1 := Unpack(r1, m)
		for r2 := 0; r2 < m*n; r2++ {
			i2, j2 := Unpack(r2, m)
			if FeasiblePair(adj, p.Topology.Delay, i1, j1, i2, j2) {
				if q[r1][r2] != base[r1][r2] {
					t.Fatalf("feasible slot (%d,%d) altered: %d != %d", r1, r2, q[r1][r2], base[r1][r2])
				}
			} else if q[r1][r2] != u {
				t.Fatalf("infeasible slot (%d,%d) = %d, want U=%d", r1, r2, q[r1][r2], u)
			}
		}
	}
}
