// Package bitset provides dense, fixed-length bit vectors and per-partition
// membership indexes for the solve kernels: 64 components per machine word,
// popcount-based size queries, and word-skip iteration over set (or clear)
// bits. The hot loops of the QBP/GAP/interchange kernels spend much of
// their time asking "which components are marked?" over mostly-unmarked
// index ranges; a packed word answers 64 of those tests with one load and
// a TrailingZeros64, which is where the measured speedups of the
// BitsetMembership benchmarks come from.
//
// Determinism note: iteration (NextSet/AppendIndices) is always ascending,
// the same order a plain `for i := 0; i < n; i++` scan over a []bool
// produces, so replacing a bool-slice scan with a bitset scan can never
// reorder the visits of a deterministic sweep.
package bitset

import "math/bits"

// Set is a fixed-length bit vector over indexes [0, Len()). The zero value
// is an empty zero-length set; use New for a sized one.
type Set struct {
	words []uint64
	n     int
}

// New returns a set of n bits, all clear.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)>>6), n: n}
}

// Len returns the number of bits the set holds.
func (s *Set) Len() int { return s.n }

// Words exposes the packed backing array (little-endian bit order within
// each word: bit i lives at words[i>>6] bit i&63). Callers may read words
// directly for fused word-level scans — e.g. `candWords[w] | dirtyWords[w]`
// — but must not set bits at indexes ≥ Len().
func (s *Set) Words() []uint64 { return s.words }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// Set sets bit i. Branch-free: setting an already-set bit is a no-op, so
// dedup guards ("if !seen[i]") become unconditional ORs.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Reset clears every bit — O(Len/64) word stores, not O(Len) bool stores.
func (s *Set) Reset() {
	for w := range s.words {
		s.words[w] = 0
	}
}

// Count returns the number of set bits (population count).
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the smallest set index ≥ i, or Len() when none remains.
// Safe to call with i ≥ Len() (returns Len()).
func (s *Set) NextSet(i int) int {
	if i >= s.n {
		return s.n
	}
	w := i >> 6
	if rem := s.words[w] >> uint(i&63); rem != 0 {
		return i + bits.TrailingZeros64(rem)
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w<<6 + bits.TrailingZeros64(s.words[w])
		}
	}
	return s.n
}

// NextClear returns the smallest clear index ≥ i, or Len() when none
// remains. Safe to call with i ≥ Len() (returns Len()).
func (s *Set) NextClear(i int) int {
	for i < s.n {
		w := i >> 6
		if rem := ^s.words[w] >> uint(i&63); rem != 0 {
			i += bits.TrailingZeros64(rem)
			if i > s.n {
				i = s.n
			}
			return i
		}
		i = (w + 1) << 6
	}
	return s.n
}

// AppendIndices appends the set indexes in ascending order to dst and
// returns the extended slice. Zero words are skipped 64 indexes at a time.
func (s *Set) AppendIndices(dst []int) []int {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Membership indexes one assignment u ∈ [0,m)ⁿ as m per-partition bitsets
// over the n components: bit j of Part(i) ⇔ u[j] == i. All m parts share
// one backing array (one allocation, cache-contiguous).
type Membership struct {
	m, n  int
	wpr   int // words per part
	parts []Set
}

// NewMembership returns an all-empty membership index for m partitions of
// n components. Call Build to populate it from an assignment.
func NewMembership(m, n int) *Membership {
	wpr := (n + 63) >> 6
	backing := make([]uint64, m*wpr)
	ms := &Membership{m: m, n: n, wpr: wpr, parts: make([]Set, m)}
	for i := range ms.parts {
		ms.parts[i] = Set{words: backing[i*wpr : (i+1)*wpr], n: n}
	}
	return ms
}

// M returns the number of partitions, N the number of components.
func (ms *Membership) M() int { return ms.m }

// N returns the number of components.
func (ms *Membership) N() int { return ms.n }

// Part returns partition i's membership set. Mutate only through Move (or
// Build) so the parts stay a disjoint cover of [0, N()).
func (ms *Membership) Part(i int) *Set { return &ms.parts[i] }

// Count returns the number of components currently in partition i.
func (ms *Membership) Count(i int) int { return ms.parts[i].Count() }

// Build resets the index and populates it from assignment u; every u[j]
// must lie in [0, M()).
func (ms *Membership) Build(u []int) {
	for i := range ms.parts {
		ms.parts[i].Reset()
	}
	for j, i := range u {
		ms.parts[i].Set(j)
	}
}

// Move relocates component j from partition `from` to partition `to` (a
// no-op when they are equal).
func (ms *Membership) Move(j, from, to int) {
	if from == to {
		return
	}
	ms.parts[from].Clear(j)
	ms.parts[to].Set(j)
}
