package bitset

import (
	"math/rand"
	"testing"
)

// TestSetAgainstBoolSlice drives a Set and a reference []bool through the
// same random operation sequence and checks every query agrees at every
// step, across lengths that cover empty, sub-word, word-aligned and
// multi-word backing arrays.
func TestSetAgainstBoolSlice(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		rng := rand.New(rand.NewSource(int64(n + 1)))
		s := New(n)
		ref := make([]bool, n)
		if s.Len() != n {
			t.Fatalf("Len() = %d, want %d", s.Len(), n)
		}
		for step := 0; step < 400; step++ {
			if n > 0 {
				i := rng.Intn(n)
				switch rng.Intn(3) {
				case 0:
					s.Set(i)
					ref[i] = true
				case 1:
					s.Clear(i)
					ref[i] = false
				case 2:
					if rng.Intn(20) == 0 {
						s.Reset()
						for k := range ref {
							ref[k] = false
						}
					}
				}
			}
			checkAgainst(t, s, ref)
		}
	}
}

func checkAgainst(t *testing.T, s *Set, ref []bool) {
	t.Helper()
	n := len(ref)
	count, any := 0, false
	for i, v := range ref {
		if s.Test(i) != v {
			t.Fatalf("Test(%d) = %v, want %v", i, s.Test(i), v)
		}
		if v {
			count++
			any = true
		}
	}
	if got := s.Count(); got != count {
		t.Fatalf("Count() = %d, want %d", got, count)
	}
	if got := s.Any(); got != any {
		t.Fatalf("Any() = %v, want %v", got, any)
	}
	// NextSet/NextClear from every start, including past the end.
	for i := 0; i <= n+1; i++ {
		wantSet, wantClear := n, n
		for k := i; k < n; k++ {
			if ref[k] {
				wantSet = k
				break
			}
		}
		for k := i; k < n; k++ {
			if !ref[k] {
				wantClear = k
				break
			}
		}
		if i > n {
			wantSet, wantClear = n, n
		}
		if got := s.NextSet(i); got != wantSet {
			t.Fatalf("NextSet(%d) = %d, want %d", i, got, wantSet)
		}
		if got := s.NextClear(i); got != wantClear {
			t.Fatalf("NextClear(%d) = %d, want %d", i, got, wantClear)
		}
	}
	var wantIdx []int
	for i, v := range ref {
		if v {
			wantIdx = append(wantIdx, i)
		}
	}
	gotIdx := s.AppendIndices(nil)
	if len(gotIdx) != len(wantIdx) {
		t.Fatalf("AppendIndices: %d indexes, want %d", len(gotIdx), len(wantIdx))
	}
	for k := range gotIdx {
		if gotIdx[k] != wantIdx[k] {
			t.Fatalf("AppendIndices[%d] = %d, want %d", k, gotIdx[k], wantIdx[k])
		}
	}
}

// TestAppendIndicesReusesDst pins the scratch-reuse contract: appending into
// a truncated slice with capacity must not allocate a fresh array.
func TestAppendIndicesReusesDst(t *testing.T) {
	s := New(100)
	s.Set(3)
	s.Set(77)
	buf := make([]int, 0, 100)
	out := s.AppendIndices(buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendIndices reallocated despite sufficient capacity")
	}
	if len(out) != 2 || out[0] != 3 || out[1] != 77 {
		t.Fatalf("AppendIndices = %v, want [3 77]", out)
	}
}

// TestMembership drives Membership through random Build/Move sequences and
// checks the parts always form the exact partition of the assignment, with
// popcount sizes matching a per-element count.
func TestMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, shape := range []struct{ m, n int }{{1, 1}, {2, 10}, {4, 64}, {7, 200}} {
		m, n := shape.m, shape.n
		u := make([]int, n)
		for j := range u {
			u[j] = rng.Intn(m)
		}
		ms := NewMembership(m, n)
		if ms.M() != m || ms.N() != n {
			t.Fatalf("M,N = %d,%d want %d,%d", ms.M(), ms.N(), m, n)
		}
		ms.Build(u)
		checkMembership(t, ms, u)
		for step := 0; step < 300; step++ {
			j := rng.Intn(n)
			to := rng.Intn(m)
			ms.Move(j, u[j], to)
			u[j] = to
			checkMembership(t, ms, u)
		}
		// Build over a dirty index must fully replace the old state.
		for j := range u {
			u[j] = rng.Intn(m)
		}
		ms.Build(u)
		checkMembership(t, ms, u)
	}
}

func checkMembership(t *testing.T, ms *Membership, u []int) {
	t.Helper()
	counts := make([]int, ms.M())
	for _, i := range u {
		counts[i]++
	}
	total := 0
	for i := 0; i < ms.M(); i++ {
		if got := ms.Count(i); got != counts[i] {
			t.Fatalf("Count(%d) = %d, want %d", i, got, counts[i])
		}
		total += ms.Count(i)
		part := ms.Part(i)
		for j := part.NextSet(0); j < ms.N(); j = part.NextSet(j + 1) {
			if u[j] != i {
				t.Fatalf("Part(%d) contains %d, but u[%d] = %d", i, j, j, u[j])
			}
		}
	}
	if total != len(u) {
		t.Fatalf("parts cover %d components, want %d", total, len(u))
	}
}
