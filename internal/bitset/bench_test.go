package bitset

import (
	"math/bits"
	"math/rand"
	"testing"
)

// BenchmarkBitsetMembership measures the three kernel access patterns the
// solve loops replaced with bitsets, each against its plain-slice
// reference, at the acceptance shape N=2000, deg≈12:
//
//   - dirty: incremental-η dirty-column discovery — walk the CSR rows of
//     the moved components and collect the distinct partner set
//     (kernel.go etaIncremental). Plain: O(N) moved scan + branchy dedup
//     append. Bitset: word-skip moved iteration + branch-free OR + packed
//     extraction.
//   - scan: polish/strongPolish candidate sweep — visit components marked
//     candidate-or-dirty in ascending order (qbp.go strong sweeps).
//     Plain: O(N) two-bool test per component. Bitset: one fused
//     (cand|dirty) word load per 64 components.
//   - size: partition-size query (gains table overload checks).
//     Plain: O(N) assignment scan. Bitset: popcount.
//
// The fixtures pin realistic hot-loop densities: ~2% of components moved
// per incremental step, ~5% of components marked per sweep.
func BenchmarkBitsetMembership(b *testing.B) {
	const (
		n   = 2000
		m   = 16
		deg = 12
	)
	rng := rand.New(rand.NewSource(7))

	// Fixed random adjacency, deg≈12 partners per component, ascending.
	adj := make([][]int32, n)
	for j := range adj {
		seen := make(map[int32]bool)
		for len(adj[j]) < deg {
			o := int32(rng.Intn(n))
			if int(o) == j || seen[o] {
				continue
			}
			seen[o] = true
			adj[j] = append(adj[j], o)
		}
	}
	u := make([]int, n)
	for j := range u {
		u[j] = rng.Intn(m)
	}

	nMoved := n / 50 // ~2% of the iterate moved
	movedIdx := rng.Perm(n)[:nMoved]
	movedPlain := make([]bool, n)
	movedBits := New(n)
	for _, j := range movedIdx {
		movedPlain[j] = true
		movedBits.Set(j)
	}

	b.Run("dirty_plain", func(b *testing.B) {
		b.ReportAllocs()
		dirty := make([]bool, n)
		cols := make([]int, 0, n)
		for i := 0; i < b.N; i++ {
			cols = cols[:0]
			for j := 0; j < n; j++ {
				if !movedPlain[j] {
					continue
				}
				for _, o := range adj[j] {
					if !dirty[o] {
						dirty[o] = true
						cols = append(cols, int(o))
					}
				}
			}
			for _, o := range cols {
				dirty[o] = false
			}
			sink = len(cols)
		}
	})
	b.Run("dirty_bitset", func(b *testing.B) {
		b.ReportAllocs()
		dirty := New(n)
		cols := make([]int, 0, n)
		for i := 0; i < b.N; i++ {
			cols = cols[:0]
			for j := movedBits.NextSet(0); j < n; j = movedBits.NextSet(j + 1) {
				for _, o := range adj[j] {
					dirty.Set(int(o))
				}
			}
			cols = dirty.AppendIndices(cols)
			dirty.Reset()
			sink = len(cols)
		}
	})

	// ~5% of components marked for the sweep scan.
	candPlain := make([]bool, n)
	dirtyPlain := make([]bool, n)
	candBits, dirtyBits := New(n), New(n)
	for _, j := range rng.Perm(n)[:n/40] {
		candPlain[j] = true
		candBits.Set(j)
	}
	for _, j := range rng.Perm(n)[:n/40] {
		dirtyPlain[j] = true
		dirtyBits.Set(j)
	}

	b.Run("scan_plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			visited := 0
			for j := 0; j < n; j++ {
				if !candPlain[j] && !dirtyPlain[j] {
					continue
				}
				visited++
			}
			sink = visited
		}
	})
	b.Run("scan_bitset", func(b *testing.B) {
		b.ReportAllocs()
		cw, dw := candBits.Words(), dirtyBits.Words()
		for i := 0; i < b.N; i++ {
			visited := 0
			for j := 0; j < n; {
				w := j >> 6
				rem := (cw[w] | dw[w]) >> uint(j&63)
				if rem == 0 {
					j = (w + 1) << 6
					continue
				}
				j += bits.TrailingZeros64(rem)
				if j >= n {
					break
				}
				visited++
				j++
			}
			sink = visited
		}
	})

	memb := NewMembership(m, n)
	memb.Build(u)
	b.Run("size_plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count := 0
			part := i % m
			for j := 0; j < n; j++ {
				if u[j] == part {
					count++
				}
			}
			sink = count
		}
	})
	b.Run("size_bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = memb.Count(i % m)
		}
	})
}

// sink defeats dead-code elimination of the benchmark bodies.
var sink int
