// Package lap solves the Linear Assignment Problem: given an n×m cost
// matrix (n ≤ m), choose a distinct column for every row minimizing the
// total cost. It is the §2.2.2 special case of the partitioning problem
// (M = N, unit sizes and capacities) and the subproblem Burkard's original
// heuristic solves in STEP 4 and STEP 6 when the solution space is the set
// of permutations (§4.2); the QAP adapter uses it for exactly that.
//
// The implementation is the O(n²m) shortest-augmenting-path algorithm with
// dual potentials (Jonker–Volgenant style), which is exact.
package lap

import (
	"errors"
	"math"
)

// Solve returns assign with assign[row] = column and the minimal total cost.
// cost must be rectangular with len(cost) ≤ len(cost[0]). Entries may be any
// finite float64 (negative costs are fine); +Inf marks a forbidden slot.
func Solve(cost [][]float64) (assign []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, errors.New("lap: more rows than columns")
	}
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, errors.New("lap: ragged cost matrix")
		}
		for _, c := range row {
			if math.IsNaN(c) {
				return nil, 0, errors.New("lap: NaN cost")
			}
			_ = i
		}
	}

	// 1-based arrays in the classic formulation: u,v are dual potentials,
	// p[j] is the row matched to column j (0 = unmatched), way[j] is the
	// previous column on the alternating path.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)
	way := make([]int, m+1)
	minv := make([]float64, m+1)
	used := make([]bool, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || math.IsInf(delta, 1) {
				return nil, 0, errors.New("lap: no feasible assignment (forbidden slots block all augmenting paths)")
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][assign[i]]
	}
	return assign, total, nil
}
