package lap

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce finds the optimal row→column matching by enumerating all
// column subsets/permutations (n ≤ ~7).
func bruteForce(cost [][]float64) float64 {
	n, m := len(cost), len(cost[0])
	used := make([]bool, m)
	best := math.Inf(1)
	// No pruning: with negative costs a partial sum above the incumbent can
	// still end up optimal.
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if i == n {
			if acc < best {
				best = acc
			}
			return
		}
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			rec(i+1, acc+cost[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return best
}

func TestKnownSquare(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5", total)
	}
	seen := make(map[int]bool)
	for i, j := range assign {
		if seen[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		seen[j] = true
		_ = i
	}
}

func TestRectangular(t *testing.T) {
	cost := [][]float64{
		{10, 2, 8, 9},
		{7, 3, 7, 2},
	}
	_, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 4 { // 2 + 2
		t.Fatalf("total = %v, want 4", total)
	}
}

func TestForbiddenSlots(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, 1},
		{1, inf},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assign=%v total=%v, want cross assignment of cost 2", assign, total)
	}
}

func TestInfeasibleForbidden(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, inf},
		{1, 2},
	}
	if _, _, err := Solve(cost); err == nil {
		t.Fatal("fully forbidden row accepted")
	}
}

func TestShapeErrors(t *testing.T) {
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, _, err := Solve([][]float64{{1}, {2}}); err == nil {
		t.Fatal("more rows than columns accepted")
	}
	if _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN accepted")
	}
	if assign, total, err := Solve(nil); err != nil || assign != nil || total != 0 {
		t.Fatal("empty instance should be trivially solved")
	}
}

func TestNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	_, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -10 {
		t.Fatalf("total = %v, want -10", total)
	}
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*200-100) / 4
			}
		}
		assign, total, err := Solve(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(cost)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: total %v, brute force %v (cost=%v)", trial, total, want, cost)
		}
		seen := make(map[int]bool)
		var check float64
		for i, j := range assign {
			if j < 0 || j >= m || seen[j] {
				t.Fatalf("trial %d: invalid assignment %v", trial, assign)
			}
			seen[j] = true
			check += cost[i][j]
		}
		if math.Abs(check-total) > 1e-9 {
			t.Fatalf("trial %d: reported total %v != recomputed %v", trial, total, check)
		}
	}
}

func BenchmarkSolve100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 1000
		}
	}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, _, err := Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}
