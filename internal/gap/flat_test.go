package gap

// Exactness tests for the flat cost paths: for costs whose values are
// integers (the QBP subproblem case), the int64 FlatCosts path, the float64
// FlatCosts64 path and the classic bin-major Costs path must make identical
// decisions — same assignment, same cost, same ok.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/qmatrix"
)

// randomIntegralInstance builds one GAP instance in all three cost
// representations.
func randomIntegralInstance(rng *rand.Rand) (byRows, byFlat64, byFlatInt *Instance) {
	return integralInstance(rng, 2+rng.Intn(5), 4+rng.Intn(20))
}

// integralInstance builds an m×n instance with integer-valued costs in all
// three representations.
func integralInstance(rng *rand.Rand, m, n int) (byRows, byFlat64, byFlatInt *Instance) {
	sizes := make([]int64, n)
	var total int64
	for j := range sizes {
		sizes[j] = 1 + int64(rng.Intn(9))
		total += sizes[j]
	}
	caps := make([]int64, m)
	slack := 1.1 + rng.Float64()
	for i := range caps {
		caps[i] = int64(float64(total) * slack / float64(m))
	}
	costs := make([][]float64, m)
	flat64 := make([]float64, m*n)
	flatInt := make([]int64, m*n)
	for i := range costs {
		costs[i] = make([]float64, n)
		for j := range costs[i] {
			c := int64(rng.Intn(200))
			costs[i][j] = float64(c)
			flat64[qmatrix.Pack(i, j, m)] = float64(c)
			flatInt[qmatrix.Pack(i, j, m)] = c
		}
	}
	byRows = &Instance{Costs: costs, Sizes: sizes, Capacities: caps}
	byFlat64 = &Instance{FlatCosts64: flat64, Sizes: sizes, Capacities: caps}
	byFlatInt = &Instance{FlatCosts: flatInt, Sizes: sizes, Capacities: caps}
	return byRows, byFlat64, byFlatInt
}

func TestFlatPathsAgreeExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		byRows, byFlat64, byFlatInt := randomIntegralInstance(rng)
		for _, in := range []*Instance{byRows, byFlat64, byFlatInt} {
			if err := in.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		for _, refine := range []RefineLevel{RefineNone, RefineShift, RefineSwap} {
			opt := Options{Refine: refine, MaxRefinePasses: 3}
			aR, cR, okR := Solve(context.Background(), byRows, opt)
			a64, c64, ok64 := Solve(context.Background(), byFlat64, opt)
			aI, cI, okI := Solve(context.Background(), byFlatInt, opt)
			if okR != ok64 || okR != okI {
				t.Fatalf("trial %d refine=%d: ok %v/%v/%v", trial, refine, okR, ok64, okI)
			}
			if cR != c64 || cR != cI {
				t.Fatalf("trial %d refine=%d: cost %v/%v/%v", trial, refine, cR, c64, cI)
			}
			for j := range aR {
				if aR[j] != a64[j] || aR[j] != aI[j] {
					t.Fatalf("trial %d refine=%d: assignment diverged at item %d: %d/%d/%d",
						trial, refine, j, aR[j], a64[j], aI[j])
				}
			}
			// Instance.Cost agrees across representations too.
			if okR {
				if byRows.Cost(aR) != byFlatInt.Cost(aI) || byRows.Cost(aR) != byFlat64.Cost(a64) {
					t.Fatalf("trial %d: Cost() diverged across representations", trial)
				}
			}
		}
	}
}

func TestFlatExactAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		byRows, byFlat64, byFlatInt := randomIntegralInstance(rng)
		if byRows.N() > 10 {
			continue // keep branch and bound cheap
		}
		aR, cR, okR := SolveExact(context.Background(), byRows)
		a64, c64, ok64 := SolveExact(context.Background(), byFlat64)
		aI, cI, okI := SolveExact(context.Background(), byFlatInt)
		if okR != ok64 || okR != okI {
			t.Fatalf("trial %d: ok %v/%v/%v", trial, okR, ok64, okI)
		}
		if !okR {
			continue
		}
		if cR != c64 || cR != cI {
			t.Fatalf("trial %d: cost %v/%v/%v", trial, cR, c64, cI)
		}
		for j := range aR {
			if aR[j] != a64[j] || aR[j] != aI[j] {
				t.Fatalf("trial %d: exact assignment diverged at item %d", trial, j)
			}
		}
	}
}

func TestFlatValidate(t *testing.T) {
	in := &Instance{
		FlatCosts:  make([]int64, 5),
		Sizes:      []int64{1, 2, 3},
		Capacities: []int64{10, 10},
	}
	if err := in.Validate(); err == nil {
		t.Fatal("short FlatCosts accepted")
	}
	in.FlatCosts = make([]int64, 6)
	if err := in.Validate(); err != nil {
		t.Fatalf("valid flat instance rejected: %v", err)
	}
	bad := &Instance{
		FlatCosts64: []float64{0, 1, 2},
		Sizes:       []int64{1, 2, 3},
		Capacities:  []int64{10},
	}
	bad.FlatCosts64[1] = nan()
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN FlatCosts64 accepted")
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}
