package gap

import (
	"context"
	"testing"
	"time"
)

// cancelInstance is a small feasible instance for the contract tests.
func cancelInstance() *Instance {
	return &Instance{
		Costs: [][]float64{
			{1, 9, 9, 2},
			{9, 1, 2, 9},
			{2, 9, 1, 9},
		},
		Sizes:      []int64{1, 1, 1, 1},
		Capacities: []int64{2, 2, 2},
	}
}

// TestSolveCancelledStillConstructs: the heuristic's constructor always
// runs (its output is what makes the assignment valid at all); a cancelled
// ctx only skips the refinement sweeps.
func TestSolveCancelledStillConstructs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	assign, _, ok := Solve(ctx, cancelInstance(), Options{Refine: RefineSwap})
	if !ok {
		t.Fatal("cancelled Solve lost the constructed assignment")
	}
	if len(assign) != 4 {
		t.Fatalf("assignment has %d entries, want 4", len(assign))
	}
	// The construction must still be capacity-feasible.
	loads := make([]int64, 3)
	for j, i := range assign {
		if i < 0 || i >= 3 {
			t.Fatalf("component %d assigned out of range: %d", j, i)
		}
		loads[i]++
	}
	for i, l := range loads {
		if l > 2 {
			t.Fatalf("agent %d overloaded: %d > 2", i, l)
		}
	}
}

// TestSolveExactCancelledReturnsPromptly: an already-cancelled ctx stops
// the branch-and-bound at its first amortization window, before any
// incumbent exists.
func TestSolveExactCancelledReturnsPromptly(t *testing.T) {
	// Large enough that a full exact solve would take far longer than the
	// test; the cancelled dfs must abandon it almost immediately.
	const n, m = 40, 4
	in := &Instance{
		Costs:      make([][]float64, m),
		Sizes:      make([]int64, n),
		Capacities: []int64{n, n, n, n},
	}
	for i := range in.Costs {
		in.Costs[i] = make([]float64, n)
		for j := range in.Costs[i] {
			in.Costs[i][j] = float64((i*7+j*13)%10) + 1
		}
	}
	for j := range in.Sizes {
		in.Sizes[j] = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	assign, _, ok := SolveExact(ctx, in)
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("cancelled SolveExact ran for %v", elapsed)
	}
	// The first amortization window may still reach a leaf, so an
	// incumbent is allowed — but it must then be a complete assignment.
	if ok && len(assign) != n {
		t.Fatalf("incumbent has %d entries, want %d", len(assign), n)
	}
}

// TestSolveExactDeadlineKeepsIncumbent: a deadline mid-search returns the
// best incumbent found so far as a feasible upper bound.
func TestSolveExactDeadlineKeepsIncumbent(t *testing.T) {
	const n, m = 26, 4
	in := &Instance{
		Costs:      make([][]float64, m),
		Sizes:      make([]int64, n),
		Capacities: []int64{n, n, n, n},
	}
	for i := range in.Costs {
		in.Costs[i] = make([]float64, n)
		for j := range in.Costs[i] {
			in.Costs[i][j] = float64((i*11+j*17)%13) + 1
		}
	}
	for j := range in.Sizes {
		in.Sizes[j] = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	assign, _, ok := SolveExact(ctx, in)
	if ok && len(assign) != n {
		t.Fatalf("incumbent has %d entries, want %d", len(assign), n)
	}
}
