package gap

// Benchmarks for the three cost representations of Solve. The flat paths
// avoid the per-call transpose; the int64 path additionally runs the whole
// constructor/refinement in integer arithmetic.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkGAPSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	byRows, byFlat64, byFlatInt := integralInstance(rng, 6, 150)
	opt := Options{Refine: RefineSwap, MaxRefinePasses: 3}
	for _, c := range []struct {
		name string
		in   *Instance
	}{
		{"rows", byRows},
		{"flat64", byFlat64},
		{"flatint", byFlatInt},
	} {
		b.Run(fmt.Sprintf("%s/n=%d", c.name, c.in.N()), func(b *testing.B) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				if _, _, ok := Solve(context.Background(), c.in, opt); !ok {
					b.Fatal("infeasible")
				}
			}
		})
	}
}
