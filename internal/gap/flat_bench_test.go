package gap

// Benchmarks for the three cost representations of Solve. The flat paths
// avoid the per-call transpose; the int64 path additionally runs the whole
// constructor/refinement in integer arithmetic.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkGAPSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	byRows, byFlat64, byFlatInt := integralInstance(rng, 6, 150)
	opt := Options{Refine: RefineSwap, MaxRefinePasses: 3}
	for _, c := range []struct {
		name string
		in   *Instance
	}{
		{"rows", byRows},
		{"flat64", byFlat64},
		{"flatint", byFlatInt},
	} {
		b.Run(fmt.Sprintf("%s/n=%d", c.name, c.in.N()), func(b *testing.B) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				if _, _, ok := Solve(context.Background(), c.in, opt); !ok {
					b.Fatal("infeasible")
				}
			}
		})
	}
	// Density sweep: cost columns built like the η of a degree-deg circuit
	// (sum of a few shared effective rows), the exact subproblem shape the
	// sparse qbp kernels hand over via FlatCosts.
	for _, deg := range []int{4, 16, 149} {
		in := sparseEtaInstance(rng, 6, 150, deg)
		b.Run(fmt.Sprintf("eta/deg=%d/n=%d", deg, in.N()), func(b *testing.B) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				if _, _, ok := Solve(context.Background(), in, opt); !ok {
					b.Fatal("infeasible")
				}
			}
		})
	}
}

// sparseEtaInstance mimics the STEP 4 subproblem of an average-degree-deg
// circuit: each item's cost column is the weighted sum of deg rows drawn
// from a small shared table, the structure the effective-row η kernels
// produce. Only the cost values vary with deg — the solve itself stays
// O(M·N) — so the sweep tracks how cost structure, not size, moves the
// constructor and refinement.
func sparseEtaInstance(rng *rand.Rand, m, n, deg int) *Instance {
	rows := make([][]int64, 4*m)
	for i := range rows {
		rows[i] = make([]int64, m)
		for r := range rows[i] {
			rows[i][r] = rng.Int63n(6)
		}
	}
	flat := make([]int64, m*n)
	sizes := make([]int64, n)
	var total int64
	for j := 0; j < n; j++ {
		sizes[j] = 1 + int64(rng.Intn(9))
		total += sizes[j]
		col := flat[j*m : (j+1)*m]
		for k := 0; k < deg; k++ {
			w := 1 + rng.Int63n(3)
			row := rows[rng.Intn(len(rows))]
			for r := range col {
				col[r] += w * row[r]
			}
		}
	}
	caps := make([]int64, m)
	for i := range caps {
		caps[i] = int64(float64(total) * 1.3 / float64(m))
	}
	return &Instance{FlatCosts: flat, Sizes: sizes, Capacities: caps}
}
