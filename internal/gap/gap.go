// Package gap solves the (min-cost) Generalized Assignment Problem: assign
// each of N items, item j with size s_j, to one of M bins with capacities
// c_i, minimizing Σ cost[i][j], subject to every bin's total assigned size
// staying within its capacity.
//
// This is the subproblem the generalized Burkard heuristic solves in STEP 4
// and STEP 6 of the paper's §4.3 (where the solution space S is the set of
// capacity-feasible assignments rather than permutations). The constructor
// is the Martello–Toth MTHG regret heuristic (ref [12] of the paper),
// followed by shift and swap local refinement; an exact branch-and-bound
// solver is provided for cross-checking on small instances.
//
// The solver core is generic over the cost element type and runs on an
// item-major flat cost layout (all bins of one item contiguous, the access
// pattern of every inner loop here). Callers on the hot path hand costs in
// directly via FlatCosts (int64, the all-integral QBP subproblems) or
// FlatCosts64 (float64); the classic bin-major Costs matrix remains
// supported and is transposed into a scratch buffer per call. For costs
// whose values are integers exactly representable in float64, the int64 and
// float64 paths make identical decisions.
package gap

import (
	"container/heap"
	"context"
	"errors"
	"math"

	"repro/internal/bitset"
	"repro/internal/interrupt"
	"repro/internal/qmatrix"
)

// Instance is a minimization GAP. Exactly one cost representation must be
// set: Costs, FlatCosts or FlatCosts64.
type Instance struct {
	Costs [][]float64 // M×N: Costs[i][j] = cost of placing item j in bin i
	// FlatCosts is an optional item-major flat integer cost matrix:
	// FlatCosts[qmatrix.Pack(i, j, M)] (= i + j·M) is the cost of placing
	// item j in bin i. When set it takes precedence over the other
	// representations and the solve runs entirely in int64 — no float64
	// round-trip.
	FlatCosts []int64
	// FlatCosts64 is the float64 analogue of FlatCosts, for subproblems
	// with fractional costs (the heuristic's STEP 6 direction vector).
	// Used when FlatCosts is nil; takes precedence over Costs.
	FlatCosts64 []float64
	Sizes       []int64 // N item sizes, > 0
	Capacities  []int64 // M bin capacities, ≥ 0
}

// M returns the number of bins.
func (in *Instance) M() int { return len(in.Capacities) }

// N returns the number of items.
func (in *Instance) N() int { return len(in.Sizes) }

// Validate checks matrix shapes and sign invariants.
func (in *Instance) Validate() error {
	m, n := in.M(), in.N()
	if m == 0 {
		return errors.New("gap: no bins")
	}
	switch {
	case in.FlatCosts != nil:
		if len(in.FlatCosts) != m*n {
			return errors.New("gap: flat cost matrix length != M·N")
		}
	case in.FlatCosts64 != nil:
		if len(in.FlatCosts64) != m*n {
			return errors.New("gap: flat cost matrix length != M·N")
		}
		for _, c := range in.FlatCosts64 {
			if math.IsNaN(c) {
				return errors.New("gap: NaN cost")
			}
		}
	default:
		if len(in.Costs) != m {
			return errors.New("gap: cost matrix row count != M")
		}
		for _, row := range in.Costs {
			if len(row) != n {
				return errors.New("gap: cost matrix column count != N")
			}
			for _, c := range row {
				if math.IsNaN(c) {
					return errors.New("gap: NaN cost")
				}
			}
		}
	}
	for _, s := range in.Sizes {
		if s <= 0 {
			return errors.New("gap: non-positive item size")
		}
	}
	for _, c := range in.Capacities {
		if c < 0 {
			return errors.New("gap: negative capacity")
		}
	}
	return nil
}

// Cost returns the total cost of a complete assignment under whichever cost
// representation is set.
func (in *Instance) Cost(assign []int) float64 {
	m := in.M()
	switch {
	case in.FlatCosts != nil:
		var t int64
		for j, i := range assign {
			t += in.FlatCosts[qmatrix.Pack(i, j, m)]
		}
		return float64(t)
	case in.FlatCosts64 != nil:
		var t float64
		for j, i := range assign {
			t += in.FlatCosts64[qmatrix.Pack(i, j, m)]
		}
		return t
	default:
		var t float64
		for j, i := range assign {
			t += in.Costs[i][j]
		}
		return t
	}
}

// Feasible reports whether assign respects all bin capacities.
func (in *Instance) Feasible(assign []int) bool {
	loads := make([]int64, in.M())
	for j, i := range assign {
		if i < 0 || i >= in.M() {
			return false
		}
		loads[i] += in.Sizes[j]
	}
	for i, l := range loads {
		if l > in.Capacities[i] {
			return false
		}
	}
	return true
}

// RefineLevel selects how much local improvement follows the constructor.
type RefineLevel int

const (
	// RefineNone returns the raw MTHG construction.
	RefineNone RefineLevel = iota
	// RefineShift repeatedly relocates single items to cheaper feasible
	// bins until no move improves.
	RefineShift
	// RefineSwap additionally exchanges item pairs between bins; costlier
	// (O(N²) per pass) but stronger.
	RefineSwap
)

// Options tunes Solve.
type Options struct {
	Refine          RefineLevel
	MaxRefinePasses int // ≤ 0 means a safe default
}

// number is the cost element constraint of the generic solver core.
type number interface{ ~int64 | ~float64 }

// view is the solver's internal window onto an instance: item-major flat
// costs plus the size/capacity vectors.
type view[T number] struct {
	flat  []T
	m     int
	sizes []int64
	caps  []int64
}

// col returns the contiguous cost column of item j (one entry per bin).
func (v *view[T]) col(j int) []T { return v.flat[j*v.m : (j+1)*v.m] }

func (v *view[T]) n() int { return len(v.sizes) }

func (v *view[T]) cost(assign []int) T {
	var t T
	for j, i := range assign {
		t += v.col(j)[i]
	}
	return t
}

// Solve runs MTHG plus refinement. It returns the assignment (assign[j] =
// bin), its cost, and whether it is capacity-feasible. On pathological
// instances where the constructor dead-ends and repair fails, the returned
// assignment may be infeasible (ok = false); callers that require
// feasibility must check.
//
// Cancellation: the constructor always runs to completion (its result is
// what makes the assignment valid at all); a cancelled ctx skips or cuts
// short the refinement sweeps, so the caller still gets a feasible — just
// less polished — assignment back promptly.
func Solve(ctx context.Context, in *Instance, opt Options) (assign []int, cost float64, ok bool) {
	ck := interrupt.New(ctx, 0)
	switch {
	case in.FlatCosts != nil:
		v := &view[int64]{flat: in.FlatCosts, m: in.M(), sizes: in.Sizes, caps: in.Capacities}
		a, c, ok := solve(v, opt, &ck)
		return a, float64(c), ok
	case in.FlatCosts64 != nil:
		v := &view[float64]{flat: in.FlatCosts64, m: in.M(), sizes: in.Sizes, caps: in.Capacities}
		return solve(v, opt, &ck)
	default:
		v := &view[float64]{flat: transpose(in.Costs, in.N()), m: in.M(), sizes: in.Sizes, caps: in.Capacities}
		return solve(v, opt, &ck)
	}
}

// transpose flattens a bin-major matrix into the item-major layout.
func transpose(costs [][]float64, n int) []float64 {
	m := len(costs)
	flat := make([]float64, m*n)
	for i, row := range costs {
		for j, c := range row {
			flat[qmatrix.Pack(i, j, m)] = c
		}
	}
	return flat
}

func solve[T number](v *view[T], opt Options, ck *interrupt.Checker) (assign []int, cost T, ok bool) {
	assign, ok = construct(v)
	if ok {
		refine(v, assign, opt, ck)
	}
	return assign, v.cost(assign), ok
}

// regretItem is a heap entry: the cached best/second-best feasible bins of
// an unassigned item. The ordering keys are held as float64 regardless of
// the cost element type; integer costs below 2⁵³ convert exactly, so the
// int64 path orders identically to the float64 path.
type regretItem struct {
	j            int
	best, second int     // bin indices; -1 when absent
	bestC        float64 // cost at best
	regret       float64 // second-best − best (+Inf when only one bin fits)
}

type regretHeap []regretItem

func (h regretHeap) Len() int { return len(h) }
func (h regretHeap) Less(a, b int) bool {
	// Max-heap on regret; ties broken by cheaper best cost for determinism.
	// Exact float comparison is deliberate in both guards: a comparator must
	// stay transitive, and an epsilon here would break the heap invariant.
	//lint:ignore float-equality ordering tie-break, not a value comparison
	if h[a].regret != h[b].regret {
		return h[a].regret > h[b].regret
	}
	//lint:ignore float-equality ordering tie-break, not a value comparison
	if h[a].bestC != h[b].bestC {
		return h[a].bestC < h[b].bestC
	}
	return h[a].j < h[b].j
}
func (h regretHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *regretHeap) Push(x any)   { *h = append(*h, x.(regretItem)) }
func (h *regretHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// score computes the best/second-best feasible bins of item j given the
// remaining capacities. ok is false when no bin fits.
func score[T number](v *view[T], j int, remaining []int64) (it regretItem, ok bool) {
	it = regretItem{j: j, best: -1, second: -1}
	sz := v.sizes[j]
	col := v.col(j)
	var bestC, secondC T
	for i := range v.caps {
		if remaining[i] < sz {
			continue
		}
		c := col[i]
		switch {
		case it.best < 0 || c < bestC:
			it.second, secondC = it.best, bestC
			it.best, bestC = i, c
		case it.second < 0 || c < secondC:
			it.second, secondC = i, c
		}
	}
	if it.best < 0 {
		return it, false
	}
	it.bestC = float64(bestC)
	if it.second < 0 {
		it.regret = math.Inf(1)
	} else {
		it.regret = float64(secondC) - float64(bestC)
	}
	return it, true
}

// construct is the MTHG regret constructor with lazy cache revalidation:
// since capacities only shrink, a cached (best, second) stays valid as long
// as both bins still fit the item.
func construct[T number](v *view[T]) (assign []int, ok bool) {
	n := v.n()
	assign = make([]int, n)
	for j := range assign {
		assign[j] = -1
	}
	remaining := append([]int64(nil), v.caps...)

	h := make(regretHeap, 0, n)
	for j := 0; j < n; j++ {
		it, fits := score(v, j, remaining)
		if !fits {
			return repair(v, assign, remaining, j)
		}
		h = append(h, it)
	}
	heap.Init(&h)

	// Bounded drain: every pop either assigns an item for good or
	// revalidates one stale cache entry, and entries only go stale when a
	// capacity shrank — at most n shrinks, so the loop is O(n²) worst case
	// and terminates with the instance.
	//lint:ignore cancel-poll heap drain is bounded by n assignments plus one revalidation per capacity shrink
	for h.Len() > 0 {
		it := heap.Pop(&h).(regretItem)
		if assign[it.j] >= 0 {
			continue
		}
		sz := v.sizes[it.j]
		stale := remaining[it.best] < sz ||
			(it.second >= 0 && remaining[it.second] < sz)
		if stale {
			fresh, fits := score(v, it.j, remaining)
			if !fits {
				// Repair completes the whole assignment, so no restart
				// of the constructor is needed.
				return repair(v, assign, remaining, it.j)
			}
			heap.Push(&h, fresh)
			continue
		}
		assign[it.j] = it.best
		remaining[it.best] -= sz
	}
	return assign, true
}

// repair finishes a construction that dead-ended: the stuck item (and any
// other still-unassigned items) are forced into the bin with the largest
// remaining capacity, then overloaded bins are relieved by cheapest-penalty
// shifts. Returns ok = false when overloads cannot be eliminated.
func repair[T number](v *view[T], assign []int, remaining []int64, stuck int) ([]int, bool) {
	m := v.m
	force := func(j int) {
		best := 0
		for i := 1; i < m; i++ {
			if remaining[i] > remaining[best] {
				best = i
			}
		}
		assign[j] = best
		remaining[best] -= v.sizes[j]
	}
	force(stuck)
	for j := range assign {
		if assign[j] < 0 {
			// Prefer a feasible bin if one exists; force otherwise.
			if it, fits := score(v, j, remaining); fits {
				assign[j] = it.best
				remaining[it.best] -= v.sizes[j]
			} else {
				force(j)
			}
		}
	}
	// Relieve overloads: repeatedly move the item whose relocation costs
	// least from an overloaded bin to a bin with slack.
	for iter := 0; iter < len(assign)*m+m; iter++ {
		over := -1
		for i := 0; i < m; i++ {
			if remaining[i] < 0 {
				over = i
				break
			}
		}
		if over < 0 {
			return assign, true
		}
		bestJ, bestI := -1, -1
		bestPenalty := math.Inf(1)
		for j, i := range assign {
			if i != over {
				continue
			}
			sz := v.sizes[j]
			col := v.col(j)
			for i2 := 0; i2 < m; i2++ {
				if i2 == over || remaining[i2] < sz {
					continue
				}
				pen := float64(col[i2] - col[over])
				if pen < bestPenalty {
					bestPenalty, bestJ, bestI = pen, j, i2
				}
			}
		}
		if bestJ < 0 {
			return assign, false
		}
		assign[bestJ] = bestI
		remaining[over] += v.sizes[bestJ]
		remaining[bestI] -= v.sizes[bestJ]
	}
	return assign, false
}

// refine applies shift (and optionally swap) local search in place. Checks
// ck at sweep boundaries: every sweep leaves the assignment and the
// remaining-capacity vector consistent, so stopping between sweeps is safe.
func refine[T number](v *view[T], assign []int, opt Options, ck *interrupt.Checker) {
	passes := opt.MaxRefinePasses
	if passes <= 0 {
		passes = 50
	}
	if opt.Refine == RefineNone {
		return
	}
	m, n := v.m, v.n()
	remaining := append([]int64(nil), v.caps...)
	for j, i := range assign {
		remaining[i] -= v.sizes[j]
	}
	// One sweep of single-item relocations; cheap (O(N·M)), so it always
	// runs to convergence inside each outer pass.
	shiftSweep := func() bool {
		improved := false
		for j := 0; j < n; j++ {
			cur := assign[j]
			sz := v.sizes[j]
			col := v.col(j)
			bestI, bestC := cur, col[cur]
			for i := 0; i < m; i++ {
				if i == cur || remaining[i] < sz {
					continue
				}
				if c := col[i]; c < bestC {
					bestI, bestC = i, c
				}
			}
			if bestI != cur {
				assign[j] = bestI
				remaining[cur] += sz
				remaining[bestI] -= sz
				improved = true
			}
		}
		return improved
	}
	swapSweep := func() bool {
		improved := false
		for j1 := 0; j1 < n; j1++ {
			i1 := assign[j1]
			s1 := v.sizes[j1]
			col1 := v.col(j1)
			for j2 := j1 + 1; j2 < n; j2++ {
				i2 := assign[j2]
				if i1 == i2 {
					continue
				}
				s2 := v.sizes[j2]
				if remaining[i1]+s1 < s2 || remaining[i2]+s2 < s1 {
					continue
				}
				col2 := v.col(j2)
				delta := col1[i2] + col2[i1] - col1[i1] - col2[i2]
				if float64(delta) < -1e-12 {
					assign[j1], assign[j2] = i2, i1
					remaining[i1] += s1 - s2
					remaining[i2] += s2 - s1
					i1 = assign[j1]
					s1 = v.sizes[j1]
					improved = true
				}
			}
		}
		return improved
	}
	// MaxRefinePasses caps only the expensive sweeps (swap O(N²), eject as
	// a last resort): each outer pass first drains all shift moves.
	for pass := 0; pass < passes; pass++ {
		if ck.Now() {
			return
		}
		for k := 0; k < 200; k++ {
			if !shiftSweep() || ck.Now() {
				break
			}
		}
		if opt.Refine < RefineSwap || ck.Now() {
			return
		}
		improved := swapSweep()
		// Ejection is the expensive last resort: only scan for depth-2
		// chains once shifts and swaps have dried up — at most once per
		// refine pass, so its transient members index is noise next to the
		// O(N·M²) chain scan it fronts.
		//lint:ignore alloc-in-hot-loop eject runs at most once per refine pass; its scan dominates the transient members index
		if !improved && eject(v, assign, remaining) {
			improved = true
		}
		if !improved {
			return
		}
	}
}

// eject performs depth-2 shifts: move item j into bin i after evicting one
// item k from i to a third bin, when the combined cost delta is negative.
// This escapes local optima that single shifts and pairwise swaps cannot
// (three-way rotations). Returns whether any move was applied.
func eject[T number](v *view[T], assign []int, remaining []int64) bool {
	m, n := v.m, v.n()
	members := bitset.NewMembership(m, n)
	members.Build(assign)
	moved := false
	for j := 0; j < n; j++ {
		s := assign[j]
		sj := v.sizes[j]
		colJ := v.col(j)
		for i := 0; i < m; i++ {
			if i == s {
				continue
			}
			gain0 := float64(colJ[i] - colJ[s])
			if remaining[i] >= sj {
				continue // plain shift handles this case
			}
			// Find the cheapest eviction k: i → b that makes room. The
			// membership bitset iterates bin i ascending — the identical
			// candidate order the sorted member lists used to produce.
			bestDelta := math.Inf(1)
			bestK, bestB := -1, -1
			bin := members.Part(i)
			for k := bin.NextSet(0); k < n; k = bin.NextSet(k + 1) {
				sk := v.sizes[k]
				if remaining[i]+sk < sj {
					continue
				}
				colK := v.col(k)
				for b := 0; b < m; b++ {
					room := remaining[b]
					if b == s {
						room += sj // j will have left s by the time k arrives
					}
					if b == i || room < sk {
						continue
					}
					d := float64(colK[b] - colK[i])
					if d < bestDelta {
						bestDelta, bestK, bestB = d, k, b
					}
				}
			}
			if bestK >= 0 && gain0+bestDelta < -1e-12 {
				// Apply: k out of i, j into i.
				remaining[i] += v.sizes[bestK]
				remaining[bestB] -= v.sizes[bestK]
				assign[bestK] = bestB
				remaining[s] += sj
				remaining[i] -= sj
				assign[j] = i
				// Two O(1) bit moves keep the membership index exact; the
				// old sorted-slice lists paid a shifted copy per move.
				members.Move(bestK, i, bestB)
				members.Move(j, s, i)
				moved = true
				break
			}
		}
	}
	return moved
}

// SolveExact finds the optimal assignment by depth-first branch and bound
// with a per-item best-cost lower bound. Intended for small instances
// (N ≲ 14) in tests. Returns ok = false when no feasible assignment exists.
// A ctx cancelled mid-search aborts the remaining tree and returns the
// incumbent found so far (ok = false when none was reached yet) — the
// result is then a feasible upper bound, not a proven optimum.
func SolveExact(ctx context.Context, in *Instance) (assign []int, cost float64, ok bool) {
	ck := interrupt.New(ctx, 4096)
	switch {
	case in.FlatCosts != nil:
		v := &view[int64]{flat: in.FlatCosts, m: in.M(), sizes: in.Sizes, caps: in.Capacities}
		return solveExact(v, &ck)
	case in.FlatCosts64 != nil:
		v := &view[float64]{flat: in.FlatCosts64, m: in.M(), sizes: in.Sizes, caps: in.Capacities}
		return solveExact(v, &ck)
	default:
		v := &view[float64]{flat: transpose(in.Costs, in.N()), m: in.M(), sizes: in.Sizes, caps: in.Capacities}
		return solveExact(v, &ck)
	}
}

// solveExact accumulates bounds and costs in float64 for both element
// types: the float64 path reproduces the historical arithmetic exactly, and
// integral costs below 2⁵³ stay exact under the conversion. The dfs polls
// ck once per amortization window (node-count granularity), so the search
// core stays branch-cheap.
func solveExact[T number](v *view[T], ck *interrupt.Checker) (assign []int, cost float64, ok bool) {
	m, n := v.m, v.n()
	// Branch on items in decreasing size for earlier capacity pruning.
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if v.sizes[order[b]] > v.sizes[order[a]] {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	// Lower bound suffix in branch order: lb[j] = Σ_{k ≥ j} min_i cost of
	// item order[k] (capacity ignored).
	lb := make([]float64, n+1)
	for j := n - 1; j >= 0; j-- {
		best := math.Inf(1)
		col := v.col(order[j])
		for i := 0; i < m; i++ {
			if c := float64(col[i]); c < best {
				best = c
			}
		}
		lb[j] = lb[j+1] + best
	}

	bestCost := math.Inf(1)
	var bestAssign []int
	cur := make([]int, n)
	remaining := append([]int64(nil), v.caps...)
	var dfs func(depth int, acc float64)
	dfs = func(depth int, acc float64) {
		if ck.Stop() {
			return
		}
		if acc+lb[depth] >= bestCost {
			return
		}
		if depth == n {
			bestCost = acc
			bestAssign = append([]int(nil), cur...)
			return
		}
		j := order[depth]
		sz := v.sizes[j]
		col := v.col(j)
		for i := 0; i < m; i++ {
			if remaining[i] < sz {
				continue
			}
			cur[j] = i
			remaining[i] -= sz
			dfs(depth+1, acc+float64(col[i]))
			remaining[i] += sz
		}
	}
	dfs(0, 0)
	if bestAssign == nil {
		return nil, 0, false
	}
	return bestAssign, bestCost, true
}
