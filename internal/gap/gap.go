// Package gap solves the (min-cost) Generalized Assignment Problem: assign
// each of N items, item j with size s_j, to one of M bins with capacities
// c_i, minimizing Σ cost[i][j], subject to every bin's total assigned size
// staying within its capacity.
//
// This is the subproblem the generalized Burkard heuristic solves in STEP 4
// and STEP 6 of the paper's §4.3 (where the solution space S is the set of
// capacity-feasible assignments rather than permutations). The constructor
// is the Martello–Toth MTHG regret heuristic (ref [12] of the paper),
// followed by shift and swap local refinement; an exact branch-and-bound
// solver is provided for cross-checking on small instances.
package gap

import (
	"container/heap"
	"errors"
	"math"
)

// Instance is a minimization GAP.
type Instance struct {
	Costs      [][]float64 // M×N: Costs[i][j] = cost of placing item j in bin i
	Sizes      []int64     // N item sizes, > 0
	Capacities []int64     // M bin capacities, ≥ 0
}

// M returns the number of bins.
func (in *Instance) M() int { return len(in.Capacities) }

// N returns the number of items.
func (in *Instance) N() int { return len(in.Sizes) }

// Validate checks matrix shapes and sign invariants.
func (in *Instance) Validate() error {
	m, n := in.M(), in.N()
	if m == 0 {
		return errors.New("gap: no bins")
	}
	if len(in.Costs) != m {
		return errors.New("gap: cost matrix row count != M")
	}
	for _, row := range in.Costs {
		if len(row) != n {
			return errors.New("gap: cost matrix column count != N")
		}
		for _, c := range row {
			if math.IsNaN(c) {
				return errors.New("gap: NaN cost")
			}
		}
	}
	for _, s := range in.Sizes {
		if s <= 0 {
			return errors.New("gap: non-positive item size")
		}
	}
	for _, c := range in.Capacities {
		if c < 0 {
			return errors.New("gap: negative capacity")
		}
	}
	return nil
}

// Cost returns the total cost of a complete assignment.
func (in *Instance) Cost(assign []int) float64 {
	var t float64
	for j, i := range assign {
		t += in.Costs[i][j]
	}
	return t
}

// Feasible reports whether assign respects all bin capacities.
func (in *Instance) Feasible(assign []int) bool {
	loads := make([]int64, in.M())
	for j, i := range assign {
		if i < 0 || i >= in.M() {
			return false
		}
		loads[i] += in.Sizes[j]
	}
	for i, l := range loads {
		if l > in.Capacities[i] {
			return false
		}
	}
	return true
}

// RefineLevel selects how much local improvement follows the constructor.
type RefineLevel int

const (
	// RefineNone returns the raw MTHG construction.
	RefineNone RefineLevel = iota
	// RefineShift repeatedly relocates single items to cheaper feasible
	// bins until no move improves.
	RefineShift
	// RefineSwap additionally exchanges item pairs between bins; costlier
	// (O(N²) per pass) but stronger.
	RefineSwap
)

// Options tunes Solve.
type Options struct {
	Refine          RefineLevel
	MaxRefinePasses int // ≤ 0 means a safe default
}

// Solve runs MTHG plus refinement. It returns the assignment (assign[j] =
// bin), its cost, and whether it is capacity-feasible. On pathological
// instances where the constructor dead-ends and repair fails, the returned
// assignment may be infeasible (ok = false); callers that require
// feasibility must check.
func Solve(in *Instance, opt Options) (assign []int, cost float64, ok bool) {
	assign, ok = construct(in)
	if ok {
		refine(in, assign, opt)
	}
	return assign, in.Cost(assign), ok
}

// regretItem is a heap entry: the cached best/second-best feasible bins of
// an unassigned item.
type regretItem struct {
	j            int
	best, second int     // bin indices; -1 when absent
	bestC        float64 // cost at best
	regret       float64 // second-best − best (+Inf when only one bin fits)
}

type regretHeap []regretItem

func (h regretHeap) Len() int { return len(h) }
func (h regretHeap) Less(a, b int) bool {
	// Max-heap on regret; ties broken by cheaper best cost for determinism.
	// Exact float comparison is deliberate in both guards: a comparator must
	// stay transitive, and an epsilon here would break the heap invariant.
	//lint:ignore float-equality ordering tie-break, not a value comparison
	if h[a].regret != h[b].regret {
		return h[a].regret > h[b].regret
	}
	//lint:ignore float-equality ordering tie-break, not a value comparison
	if h[a].bestC != h[b].bestC {
		return h[a].bestC < h[b].bestC
	}
	return h[a].j < h[b].j
}
func (h regretHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *regretHeap) Push(x any)   { *h = append(*h, x.(regretItem)) }
func (h *regretHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// score computes the best/second-best feasible bins of item j given the
// remaining capacities. ok is false when no bin fits.
func score(in *Instance, j int, remaining []int64) (it regretItem, ok bool) {
	it = regretItem{j: j, best: -1, second: -1}
	sz := in.Sizes[j]
	var bestC, secondC float64
	for i := range in.Capacities {
		if remaining[i] < sz {
			continue
		}
		c := in.Costs[i][j]
		switch {
		case it.best < 0 || c < bestC:
			it.second, secondC = it.best, bestC
			it.best, bestC = i, c
		case it.second < 0 || c < secondC:
			it.second, secondC = i, c
		}
	}
	if it.best < 0 {
		return it, false
	}
	it.bestC = bestC
	if it.second < 0 {
		it.regret = math.Inf(1)
	} else {
		it.regret = secondC - bestC
	}
	return it, true
}

// construct is the MTHG regret constructor with lazy cache revalidation:
// since capacities only shrink, a cached (best, second) stays valid as long
// as both bins still fit the item.
func construct(in *Instance) (assign []int, ok bool) {
	n := in.N()
	assign = make([]int, n)
	for j := range assign {
		assign[j] = -1
	}
	remaining := append([]int64(nil), in.Capacities...)

	h := make(regretHeap, 0, n)
	for j := 0; j < n; j++ {
		it, fits := score(in, j, remaining)
		if !fits {
			return repair(in, assign, remaining, j)
		}
		h = append(h, it)
	}
	heap.Init(&h)

	for h.Len() > 0 {
		it := heap.Pop(&h).(regretItem)
		if assign[it.j] >= 0 {
			continue
		}
		sz := in.Sizes[it.j]
		stale := remaining[it.best] < sz ||
			(it.second >= 0 && remaining[it.second] < sz)
		if stale {
			fresh, fits := score(in, it.j, remaining)
			if !fits {
				// Repair completes the whole assignment, so no restart
				// of the constructor is needed.
				return repair(in, assign, remaining, it.j)
			}
			heap.Push(&h, fresh)
			continue
		}
		assign[it.j] = it.best
		remaining[it.best] -= sz
	}
	return assign, true
}

// repair finishes a construction that dead-ended: the stuck item (and any
// other still-unassigned items) are forced into the bin with the largest
// remaining capacity, then overloaded bins are relieved by cheapest-penalty
// shifts. Returns ok = false when overloads cannot be eliminated.
func repair(in *Instance, assign []int, remaining []int64, stuck int) ([]int, bool) {
	m := in.M()
	force := func(j int) {
		best := 0
		for i := 1; i < m; i++ {
			if remaining[i] > remaining[best] {
				best = i
			}
		}
		assign[j] = best
		remaining[best] -= in.Sizes[j]
	}
	force(stuck)
	for j := range assign {
		if assign[j] < 0 {
			// Prefer a feasible bin if one exists; force otherwise.
			if it, fits := score(in, j, remaining); fits {
				assign[j] = it.best
				remaining[it.best] -= in.Sizes[j]
			} else {
				force(j)
			}
		}
	}
	// Relieve overloads: repeatedly move the item whose relocation costs
	// least from an overloaded bin to a bin with slack.
	for iter := 0; iter < len(assign)*m+m; iter++ {
		over := -1
		for i := 0; i < m; i++ {
			if remaining[i] < 0 {
				over = i
				break
			}
		}
		if over < 0 {
			return assign, true
		}
		bestJ, bestI := -1, -1
		bestPenalty := math.Inf(1)
		for j, i := range assign {
			if i != over {
				continue
			}
			sz := in.Sizes[j]
			for i2 := 0; i2 < m; i2++ {
				if i2 == over || remaining[i2] < sz {
					continue
				}
				pen := in.Costs[i2][j] - in.Costs[over][j]
				if pen < bestPenalty {
					bestPenalty, bestJ, bestI = pen, j, i2
				}
			}
		}
		if bestJ < 0 {
			return assign, false
		}
		assign[bestJ] = bestI
		remaining[over] += in.Sizes[bestJ]
		remaining[bestI] -= in.Sizes[bestJ]
	}
	return assign, false
}

// refine applies shift (and optionally swap) local search in place.
func refine(in *Instance, assign []int, opt Options) {
	passes := opt.MaxRefinePasses
	if passes <= 0 {
		passes = 50
	}
	if opt.Refine == RefineNone {
		return
	}
	m, n := in.M(), in.N()
	remaining := append([]int64(nil), in.Capacities...)
	for j, i := range assign {
		remaining[i] -= in.Sizes[j]
	}
	// One sweep of single-item relocations; cheap (O(N·M)), so it always
	// runs to convergence inside each outer pass.
	shiftSweep := func() bool {
		improved := false
		for j := 0; j < n; j++ {
			cur := assign[j]
			sz := in.Sizes[j]
			bestI, bestC := cur, in.Costs[cur][j]
			for i := 0; i < m; i++ {
				if i == cur || remaining[i] < sz {
					continue
				}
				if c := in.Costs[i][j]; c < bestC {
					bestI, bestC = i, c
				}
			}
			if bestI != cur {
				assign[j] = bestI
				remaining[cur] += sz
				remaining[bestI] -= sz
				improved = true
			}
		}
		return improved
	}
	swapSweep := func() bool {
		improved := false
		for j1 := 0; j1 < n; j1++ {
			i1 := assign[j1]
			s1 := in.Sizes[j1]
			for j2 := j1 + 1; j2 < n; j2++ {
				i2 := assign[j2]
				if i1 == i2 {
					continue
				}
				s2 := in.Sizes[j2]
				if remaining[i1]+s1 < s2 || remaining[i2]+s2 < s1 {
					continue
				}
				delta := in.Costs[i2][j1] + in.Costs[i1][j2] -
					in.Costs[i1][j1] - in.Costs[i2][j2]
				if delta < -1e-12 {
					assign[j1], assign[j2] = i2, i1
					remaining[i1] += s1 - s2
					remaining[i2] += s2 - s1
					i1 = assign[j1]
					s1 = in.Sizes[j1]
					improved = true
				}
			}
		}
		return improved
	}
	// MaxRefinePasses caps only the expensive sweeps (swap O(N²), eject as
	// a last resort): each outer pass first drains all shift moves.
	for pass := 0; pass < passes; pass++ {
		for k := 0; k < 200; k++ {
			if !shiftSweep() {
				break
			}
		}
		if opt.Refine < RefineSwap {
			return
		}
		improved := swapSweep()
		// Ejection is the expensive last resort: only scan for depth-2
		// chains once shifts and swaps have dried up.
		if !improved && eject(in, assign, remaining) {
			improved = true
		}
		if !improved {
			return
		}
	}
}

// eject performs depth-2 shifts: move item j into bin i after evicting one
// item k from i to a third bin, when the combined cost delta is negative.
// This escapes local optima that single shifts and pairwise swaps cannot
// (three-way rotations). Returns whether any move was applied.
func eject(in *Instance, assign []int, remaining []int64) bool {
	m, n := in.M(), in.N()
	members := make([][]int, m)
	for j, i := range assign {
		members[i] = append(members[i], j)
	}
	moved := false
	for j := 0; j < n; j++ {
		s := assign[j]
		sj := in.Sizes[j]
		for i := 0; i < m; i++ {
			if i == s {
				continue
			}
			gain0 := in.Costs[i][j] - in.Costs[s][j]
			if remaining[i] >= sj {
				continue // plain shift handles this case
			}
			// Find the cheapest eviction k: i → b that makes room.
			bestDelta := math.Inf(1)
			bestK, bestB := -1, -1
			for _, k := range members[i] {
				sk := in.Sizes[k]
				if remaining[i]+sk < sj {
					continue
				}
				for b := 0; b < m; b++ {
					room := remaining[b]
					if b == s {
						room += sj // j will have left s by the time k arrives
					}
					if b == i || room < sk {
						continue
					}
					d := in.Costs[b][k] - in.Costs[i][k]
					if d < bestDelta {
						bestDelta, bestK, bestB = d, k, b
					}
				}
			}
			if bestK >= 0 && gain0+bestDelta < -1e-12 {
				// Apply: k out of i, j into i.
				remaining[i] += in.Sizes[bestK]
				remaining[bestB] -= in.Sizes[bestK]
				assign[bestK] = bestB
				remaining[s] += sj
				remaining[i] -= sj
				assign[j] = i
				// Rebuild membership lazily: restart scan.
				for x := range members {
					members[x] = members[x][:0]
				}
				for jj, ii := range assign {
					members[ii] = append(members[ii], jj)
				}
				moved = true
				break
			}
		}
	}
	return moved
}

// SolveExact finds the optimal assignment by depth-first branch and bound
// with a per-item best-cost lower bound. Intended for small instances
// (N ≲ 14) in tests. Returns ok = false when no feasible assignment exists.
func SolveExact(in *Instance) (assign []int, cost float64, ok bool) {
	m, n := in.M(), in.N()
	// Lower bound suffix: lb[j] = Σ_{k ≥ j} min_i cost[i][k] (capacity
	// ignored).
	lb := make([]float64, n+1)
	for j := n - 1; j >= 0; j-- {
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if in.Costs[i][j] < best {
				best = in.Costs[i][j]
			}
		}
		lb[j] = lb[j+1] + best
	}
	// Branch on items in decreasing size for earlier capacity pruning.
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if in.Sizes[order[b]] > in.Sizes[order[a]] {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	// Recompute the suffix bound in branch order.
	for j := n - 1; j >= 0; j-- {
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if in.Costs[i][order[j]] < best {
				best = in.Costs[i][order[j]]
			}
		}
		lb[j] = lb[j+1] + best
	}

	bestCost := math.Inf(1)
	var bestAssign []int
	cur := make([]int, n)
	remaining := append([]int64(nil), in.Capacities...)
	var dfs func(depth int, acc float64)
	dfs = func(depth int, acc float64) {
		if acc+lb[depth] >= bestCost {
			return
		}
		if depth == n {
			bestCost = acc
			bestAssign = append([]int(nil), cur...)
			return
		}
		j := order[depth]
		sz := in.Sizes[j]
		for i := 0; i < m; i++ {
			if remaining[i] < sz {
				continue
			}
			cur[j] = i
			remaining[i] -= sz
			dfs(depth+1, acc+in.Costs[i][j])
			remaining[i] += sz
		}
	}
	dfs(0, 0)
	if bestAssign == nil {
		return nil, 0, false
	}
	return bestAssign, bestCost, true
}
