package gap

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

func randomInstance(rng *rand.Rand, m, n int, slack float64) *Instance {
	in := &Instance{
		Costs:      make([][]float64, m),
		Sizes:      make([]int64, n),
		Capacities: make([]int64, m),
	}
	var total int64
	for j := 0; j < n; j++ {
		in.Sizes[j] = int64(1 + rng.Intn(9))
		total += in.Sizes[j]
	}
	capEach := int64(math.Ceil(float64(total) / float64(m) * slack))
	for i := 0; i < m; i++ {
		in.Capacities[i] = capEach
		in.Costs[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			in.Costs[i][j] = math.Floor(rng.Float64() * 100)
		}
	}
	return in
}

func TestValidate(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(1)), 3, 5, 1.5)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *in
	bad.Sizes = append([]int64(nil), in.Sizes...)
	bad.Sizes[0] = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero size accepted")
	}
	bad2 := *in
	bad2.Capacities = nil
	if err := bad2.Validate(); err == nil {
		t.Fatal("no bins accepted")
	}
	bad3 := *in
	bad3.Costs = in.Costs[:1]
	if err := bad3.Validate(); err == nil {
		t.Fatal("misshapen costs accepted")
	}
}

func TestSolveSmallKnown(t *testing.T) {
	// Two bins, three items. Item sizes force a split.
	in := &Instance{
		Costs: [][]float64{
			{1, 10, 10},
			{10, 1, 1},
		},
		Sizes:      []int64{5, 5, 5},
		Capacities: []int64{10, 10},
	}
	assign, cost, ok := Solve(context.Background(), in, Options{Refine: RefineSwap})
	if !ok {
		t.Fatal("feasible instance reported infeasible")
	}
	if cost != 3 {
		t.Fatalf("cost = %v, want 3 (assign=%v)", cost, assign)
	}
	if !in.Feasible(assign) {
		t.Fatalf("infeasible result %v", assign)
	}
}

func TestSolveRespectsCapacityWhenCheapBinIsFull(t *testing.T) {
	// Everyone prefers bin 0 but it only fits one item.
	in := &Instance{
		Costs: [][]float64{
			{0, 0, 0},
			{5, 6, 7},
		},
		Sizes:      []int64{4, 4, 4},
		Capacities: []int64{4, 12},
	}
	assign, cost, ok := Solve(context.Background(), in, Options{Refine: RefineShift})
	if !ok || !in.Feasible(assign) {
		t.Fatalf("expected feasible solution, got ok=%v assign=%v", ok, assign)
	}
	// Optimal: the item with the largest bin-1 cost (item 2... no: we pay
	// bin-1 cost for two items; cheapest pair is {0,1} → 11; item 2 → bin 0.
	if cost != 11 {
		t.Fatalf("cost = %v, want 11 (assign=%v)", cost, assign)
	}
}

func TestSolveExactKnown(t *testing.T) {
	in := &Instance{
		Costs: [][]float64{
			{2, 9, 3},
			{4, 1, 8},
		},
		Sizes:      []int64{3, 3, 3},
		Capacities: []int64{6, 6},
	}
	assign, cost, ok := SolveExact(context.Background(), in)
	if !ok {
		t.Fatal("exact solver failed")
	}
	if cost != 6 { // items 0,2 → bin 0 (2+3), item 1 → bin 1 (1)
		t.Fatalf("exact cost = %v, want 6 (assign=%v)", cost, assign)
	}
}

func TestSolveExactInfeasible(t *testing.T) {
	in := &Instance{
		Costs:      [][]float64{{1, 1}},
		Sizes:      []int64{3, 3},
		Capacities: []int64{5},
	}
	if _, _, ok := SolveExact(context.Background(), in); ok {
		t.Fatal("infeasible instance solved")
	}
}

// The heuristic must always return feasible solutions on instances with
// reasonable slack, and stay within a modest factor of the exact optimum.
func TestHeuristicNearExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var sum float64
	count, far := 0, 0
	for trial := 0; trial < 150; trial++ {
		m := 2 + rng.Intn(3)
		n := 3 + rng.Intn(8)
		slack := 1.2 + rng.Float64()
		in := randomInstance(rng, m, n, slack)
		exact, exCost, exOK := SolveExact(context.Background(), in)
		assign, cost, ok := Solve(context.Background(), in, Options{Refine: RefineSwap})
		if !exOK {
			continue // extremely tight; heuristic may legitimately fail too
		}
		if !ok {
			t.Fatalf("trial %d: heuristic failed on exactly-feasible instance", trial)
		}
		if !in.Feasible(assign) {
			t.Fatalf("trial %d: heuristic returned infeasible assignment", trial)
		}
		if cost+1e-9 < exCost {
			t.Fatalf("trial %d: heuristic cost %v below exact optimum %v (%v vs %v)", trial, cost, exCost, assign, exact)
		}
		if exCost > 0 {
			r := cost / exCost
			sum += r
			count++
			if r > 1.5 {
				far++
			}
			if r > 2.5 {
				t.Fatalf("trial %d: heuristic %0.2f× from optimum (%v vs %v)", trial, r, cost, exCost)
			}
		}
	}
	// MTHG + shift/swap/eject is a heuristic: require near-optimality in
	// distribution, tolerating rare capacity-locked rotations it cannot see.
	if mean := sum / float64(count); mean > 1.05 {
		t.Fatalf("mean quality ratio %0.3f over %d trials; want ≤ 1.05", mean, count)
	}
	if far > count/50 {
		t.Fatalf("%d/%d trials strayed beyond 1.5× from optimum", far, count)
	}
}

// Very tight capacities: total size equals total capacity. MTHG must
// construct (possibly via repair) a feasible packing when one exists.
func TestTightPacking(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	solved := 0
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(2)
		n := 4 + rng.Intn(6)
		in := randomInstance(rng, m, n, 1.02)
		_, _, exOK := SolveExact(context.Background(), in)
		assign, _, ok := Solve(context.Background(), in, Options{Refine: RefineShift})
		if ok && !in.Feasible(assign) {
			t.Fatalf("trial %d: ok=true but infeasible", trial)
		}
		if exOK && ok {
			solved++
		}
		if ok && !exOK {
			t.Fatalf("trial %d: heuristic feasible but exact says infeasible", trial)
		}
	}
	if solved < 40 {
		t.Fatalf("heuristic solved only %d tight instances", solved)
	}
}

func TestRefineImprovesOrKeeps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		in := randomInstance(rng, 4, 12, 1.5)
		_, costNone, okN := Solve(context.Background(), in, Options{Refine: RefineNone})
		_, costShift, okS := Solve(context.Background(), in, Options{Refine: RefineShift})
		_, costSwap, okW := Solve(context.Background(), in, Options{Refine: RefineSwap})
		if !okN || !okS || !okW {
			continue
		}
		if costShift > costNone+1e-9 {
			t.Fatalf("trial %d: shift refinement worsened cost %v → %v", trial, costNone, costShift)
		}
		if costSwap > costShift+1e-9 {
			t.Fatalf("trial %d: swap refinement worsened cost %v → %v", trial, costShift, costSwap)
		}
	}
}

func TestCostAndFeasibleHelpers(t *testing.T) {
	in := &Instance{
		Costs:      [][]float64{{1, 2}, {3, 4}},
		Sizes:      []int64{1, 1},
		Capacities: []int64{1, 1},
	}
	if got := in.Cost([]int{0, 1}); got != 5 {
		t.Fatalf("Cost = %v, want 5", got)
	}
	if !in.Feasible([]int{0, 1}) {
		t.Fatal("balanced assignment reported infeasible")
	}
	if in.Feasible([]int{0, 0}) {
		t.Fatal("overloaded assignment reported feasible")
	}
	if in.Feasible([]int{0, 7}) {
		t.Fatal("out-of-range assignment reported feasible")
	}
}

func BenchmarkSolveM16N600(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	in := randomInstance(rng, 16, 600, 1.15)
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		if _, _, ok := Solve(context.Background(), in, Options{Refine: RefineShift}); !ok {
			b.Fatal("infeasible")
		}
	}
}
