package multilevel

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/qbp"
)

// TestPreCancelledReturnsError: the standing contract's first clause — a
// ctx already cancelled at entry does no work and returns ctx.Err().
func TestPreCancelledReturnsError(t *testing.T) {
	p := testInstance(t, 300, 1200, 400, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, p, Options{CoarsenTarget: 50}); err != context.Canceled {
		t.Fatalf("pre-cancelled Solve returned %v, want context.Canceled", err)
	}
}

// TestCancellationTransparency: a cancellable ctx that never fires must
// leave the result bit-identical to context.Background() — the poll only
// reads, never perturbs.
func TestCancellationTransparency(t *testing.T) {
	p := testInstance(t, 500, 2100, 700, 21)
	opts := Options{
		Coarse:        qbp.MultiStartOptions{Base: qbp.Options{Iterations: 15, Seed: 3}, Starts: 2},
		CoarsenTarget: 80,
	}
	ref, err := Solve(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := Solve(ctx, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stopped || ref.Stopped {
		t.Fatalf("unfired ctx marked Stopped (got=%v ref=%v)", got.Stopped, ref.Stopped)
	}
	if got.Objective != ref.Objective || got.Feasible != ref.Feasible {
		t.Fatalf("unfired ctx diverged: η %d/%v vs %d/%v", got.Objective, got.Feasible, ref.Objective, ref.Feasible)
	}
	for j := range ref.Assignment {
		if got.Assignment[j] != ref.Assignment[j] {
			t.Fatalf("unfired ctx diverged at component %d", j)
		}
	}
}

// TestMidSolveCancelBestSoFar: cancelling during the coarse solve returns
// the coarse incumbent projected to the finest level with Stopped set —
// complete, in range, and capacity-feasible (the projection preserves
// loads exactly).
func TestMidSolveCancelBestSoFar(t *testing.T) {
	p := testInstance(t, 600, 2500, 800, 22)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	res, err := Solve(ctx, p, Options{
		Coarse: qbp.MultiStartOptions{
			Base: qbp.Options{
				Iterations: 400,
				Seed:       5,
				OnProgress: func(pr qbp.Progress) {
					if pr.Iteration >= 3 && fired.CompareAndSwap(false, true) {
						cancel()
					}
				},
			},
			Starts: 1,
		},
		CoarsenTarget: 100,
	})
	if err != nil {
		t.Fatalf("mid-solve cancel returned error %v, want best-so-far result", err)
	}
	if !res.Stopped {
		t.Fatal("mid-solve cancel did not set Stopped")
	}
	if len(res.Assignment) != p.N() {
		t.Fatalf("best-so-far assignment has %d entries, want %d", len(res.Assignment), p.N())
	}
	if !p.Normalized().CapacityFeasible(res.Assignment) {
		t.Fatal("best-so-far assignment violates capacity")
	}
}
