package multilevel

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fm"
	"repro/internal/interrupt"
	"repro/internal/kl"
	"repro/internal/model"
	"repro/internal/qbp"
	"repro/internal/validate"
)

// Defaults for Options; see the field comments.
const (
	DefaultCoarsenTarget = 2048
	DefaultMaxLevels     = 64
	DefaultRefinePasses  = 2
	DefaultGFMMaxN       = 4096
	DefaultGKLMaxN       = 512
)

// Options tunes Solve and Coarsen.
type Options struct {
	// Coarse configures the flat QBP multistart solve of the coarsest
	// level. Base.RelaxTiming governs the whole V-cycle (matching guards,
	// refinement admissibility), Base.Seed drives every seeded choice, and
	// Workers is the only concurrency knob — coarsening and refinement are
	// strictly serial, so fixed-seed results are bit-identical for every
	// Workers value, exactly like the flat solver. Base.Initial is honored
	// only when the problem needs no coarsening (the identity path, where
	// Solve degenerates to the flat multistart solve); coarser levels
	// derive their own cluster-based seed.
	Coarse qbp.MultiStartOptions
	// CoarsenTarget stops coarsening once a level has at most this many
	// components — the size handed to the flat solver; ≤ 0 means
	// DefaultCoarsenTarget.
	CoarsenTarget int
	// MaxLevels bounds the hierarchy depth; ≤ 0 means DefaultMaxLevels.
	MaxLevels int
	// RefinePasses bounds the per-level refinement passes during
	// uncoarsening; ≤ 0 means DefaultRefinePasses.
	RefinePasses int
	// GFMMaxN is the largest level refined with the GFM/GKL gain-table
	// refiners (boundary-restricted); larger levels use the greedy
	// boundary sweep. ≤ 0 means DefaultGFMMaxN.
	GFMMaxN int
	// GKLMaxN is the largest level additionally polished with GKL swap
	// passes (O(N²) selection — keep small); ≤ 0 means DefaultGKLMaxN.
	GKLMaxN int
	// OnLevel, when set, observes each level as the uncoarsening pass
	// finishes it (coarsest first).
	OnLevel func(LevelStat)
}

func (o *Options) coarsenTarget() int {
	if o.CoarsenTarget <= 0 {
		return DefaultCoarsenTarget
	}
	return o.CoarsenTarget
}

// LevelStat describes one hierarchy level in a Result.
type LevelStat struct {
	Level int // 0 = finest (the input problem)
	N     int // components at this level
	Pairs int // distinct coupled component pairs (merged arcs)
	Moves int // refinement moves applied during uncoarsening
}

// Result is the outcome of a V-cycle solve. Objective, WireLength and
// Feasible are computed on the input problem — the hierarchy is exact, so
// they equal the per-level accounting, but they are recomputed at the
// finest level so the numbers a caller sees never depend on the hierarchy
// being correct.
type Result struct {
	Assignment model.Assignment
	Objective  int64 // α·linear + β·quadratic on the input problem
	WireLength int64
	Feasible   bool
	// Stopped reports the V-cycle was cut short by ctx cancellation: the
	// coarse solve returned its incumbent and/or later refinement was
	// skipped, and the assignment is the best-so-far projected to the
	// finest level.
	Stopped bool
	Levels  []LevelStat // finest first
	Coarse  *qbp.Result // the coarsest-level flat solve
}

// Hierarchy is a contraction hierarchy over a (normalized) problem:
// levels[0] is the finest graph, maps[k] sends a level-k component to its
// level-k+1 cluster. Build with Coarsen; Solve uses one internally.
type Hierarchy struct {
	norm   *model.Problem
	levels []*level
	maps   [][]int32
	stats  []LevelStat
}

type level struct {
	g   *graph
	lin [][]int64 // folded linear matrix, nil ⇒ zero
}

// Levels returns the number of levels (≥ 1; 1 means no coarsening).
func (h *Hierarchy) Levels() int { return len(h.levels) }

// LevelSize returns the component count of level k.
func (h *Hierarchy) LevelSize(k int) int { return h.levels[k].g.n }

// Problem materializes level k as a flat PP(1,1) instance over the
// original topology. Level 0 is the input problem with parallel wires
// merged and parallel budgets tightened — the same aggregation every solver
// applies internally.
func (h *Hierarchy) Problem(k int) (*model.Problem, error) {
	lvl := h.levels[k]
	name := fmt.Sprintf("%s/L%d", h.norm.Circuit.Name, k)
	return lvl.g.problem(name, h.norm.Topology, lvl.lin)
}

// Project maps a level-k assignment down to the finest level: every fine
// component inherits its cluster's partition. The hierarchy invariants
// (DESIGN.md §15) make this exact — the level-k objective of a equals the
// finest-level objective of the projection, and feasibility carries over.
func (h *Hierarchy) Project(k int, a model.Assignment) model.Assignment {
	cur := append([]int(nil), a...)
	for l := k; l > 0; l-- {
		cl := h.maps[l-1]
		fine := make([]int, h.levels[l-1].g.n)
		for j := range fine {
			fine[j] = cur[cl[j]]
		}
		cur = fine
	}
	return cur
}

// Coarsen builds the contraction hierarchy for p: deterministic heavy-edge
// matching level by level until the top level has at most
// opts.CoarsenTarget components, matching stalls (a level shrinks by less
// than 5%), or opts.MaxLevels is reached. The input problem is normalized
// to PP(1,1) first; every level is validated with the reusable
// timing-budget check before it joins the hierarchy.
func Coarsen(p *model.Problem, opts Options) (*Hierarchy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	norm := p.Normalized()
	if err := validate.CheckBudgets(norm.N(), norm.Circuit.Timing); err != nil {
		return nil, err
	}
	g0, err := levelZero(norm)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{
		norm:   norm,
		levels: []*level{{g: g0, lin: norm.Linear}},
		stats:  []LevelStat{{Level: 0, N: g0.n, Pairs: g0.pairs}},
	}

	target := opts.coarsenTarget()
	maxLevels := opts.MaxLevels
	if maxLevels <= 0 {
		maxLevels = DefaultMaxLevels
	}
	relax := opts.Coarse.Base.RelaxTiming
	topo := norm.Topology
	maxDiag := maxDiagDelay(topo.Delay)
	needIntra := false
	for i := range topo.Cost {
		if topo.Cost[i][i] != 0 {
			needIntra = true
			break
		}
	}
	var maxCap int64
	for _, c := range topo.Capacities {
		if c > maxCap {
			maxCap = c
		}
	}
	total := norm.Circuit.TotalSize()

	for len(h.levels) < maxLevels {
		top := h.levels[len(h.levels)-1]
		if top.g.n <= target {
			break
		}
		// Clusters must stay placeable: cap merged size at 3/2 of the
		// average coarse-component size at the target, and never above the
		// largest partition.
		limit := (3 * total) / (2 * int64(target))
		if limit > maxCap {
			limit = maxCap
		}
		if limit < 1 {
			limit = 1
		}
		cl, nc := heavyEdgeMatch(top.g, limit, maxDiag, relax)
		if nc > top.g.n-top.g.n/20 {
			break // matching stalled; a deeper hierarchy would not shrink
		}
		cg, intra, err := top.g.contract(cl, nc, maxDiag, relax, needIntra)
		if err != nil {
			return nil, err
		}
		for _, md := range cg.maxDelay {
			if md != model.Unconstrained && md < 0 {
				return nil, fmt.Errorf("multilevel: contraction produced a negative timing budget %d at level %d", md, len(h.levels))
			}
		}
		h.maps = append(h.maps, cl)
		h.levels = append(h.levels, &level{g: cg, lin: foldLinear(top.lin, cl, nc, intra, topo.Cost)})
		h.stats = append(h.stats, LevelStat{Level: len(h.levels) - 1, N: cg.n, Pairs: cg.pairs})
	}
	return h, nil
}

// Solve runs the V-cycle: Coarsen, solve the coarsest level with the flat
// QBP multistart, then uncoarsen — projecting the assignment down one level
// at a time and re-polishing each level with boundary-restricted GFM/GKL
// (small levels) or the greedy boundary sweep (large levels).
//
// The standing solver contracts hold: a ctx already cancelled at entry
// returns ctx.Err(); cancellation mid-solve returns the best-so-far
// assignment projected to the finest level with Result.Stopped set; a ctx
// that never fires leaves the result bit-identical to an uncancelled run;
// and fixed-seed results are bit-identical for every Coarse.Workers value.
func Solve(ctx context.Context, p *model.Problem, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h, err := Coarsen(p, opts)
	if err != nil {
		return nil, err
	}
	norm := h.norm
	relax := opts.Coarse.Base.RelaxTiming
	stats := append([]LevelStat(nil), h.stats...)

	// Coarsest level: materialize and hand to the flat solver. With no
	// coarser levels this IS the flat solve (the identity path); otherwise
	// a ratio-cut cluster seed replaces any caller-supplied initial, which
	// is indexed on the finest level and meaningless here.
	L := len(h.levels)
	coarseP, err := h.Problem(L - 1)
	if err != nil {
		return nil, err
	}
	if err := validate.CheckBudgets(coarseP.N(), coarseP.Circuit.Timing); err != nil {
		return nil, err
	}
	co := opts.Coarse
	if L > 1 {
		co.Base.Initial = clusterSeed(coarseP)
	}
	cr, err := qbp.SolveMultiStart(ctx, coarseP, co)
	if err != nil {
		return nil, err
	}
	stopped := cr.Stopped
	cur := append([]int(nil), cr.Assignment...)
	if !cr.Feasible && !relax && L > 1 {
		// Deterministic tail-repair of residual timing violations before
		// committing the coarse solution to the descent (capacity is
		// preserved by construction).
		qbp.MinConflicts(coarseP, cur, co.Base.Seed, 20*coarseP.N())
	}

	// Uncoarsen: refine each level below the coarsest after projecting the
	// assignment onto it.
	ck := interrupt.New(ctx, 0)
	passes := opts.RefinePasses
	if passes <= 0 {
		passes = DefaultRefinePasses
	}
	gfmMaxN := opts.GFMMaxN
	if gfmMaxN <= 0 {
		gfmMaxN = DefaultGFMMaxN
	}
	gklMaxN := opts.GKLMaxN
	if gklMaxN <= 0 {
		gklMaxN = DefaultGKLMaxN
	}
	//lint:ignore cancel-poll bounded by the level count; must run to completion to project best-so-far down, and refineLevel polls internally
	for k := L - 1; ; k-- {
		if k < L-1 {
			moves, s, rerr := refineLevel(ctx, &ck, h, k, cur, passes, gfmMaxN, gklMaxN, relax, co.Base.Seed)
			if rerr != nil {
				return nil, rerr
			}
			stats[k].Moves = moves
			stopped = stopped || s
		}
		if opts.OnLevel != nil {
			opts.OnLevel(stats[k])
		}
		if k == 0 {
			break
		}
		cl := h.maps[k-1]
		fine := make([]int, h.levels[k-1].g.n)
		for j := range fine {
			fine[j] = cur[cl[j]]
		}
		cur = fine
	}

	a := model.Assignment(cur)
	return &Result{
		Assignment: a,
		Objective:  norm.Objective(a),
		WireLength: norm.WireLength(a),
		Feasible:   norm.Feasible(a),
		Stopped:    stopped || ctx.Err() != nil,
		Levels:     stats,
		Coarse:     cr,
	}, nil
}

// refineLevel polishes the assignment cur (mutated in place or replaced
// via copy — the caller passes a slice it owns) at hierarchy level k.
// Returns the move count and whether refinement was cut short.
func refineLevel(ctx context.Context, ck *interrupt.Checker, h *Hierarchy, k int, cur []int, passes, gfmMaxN, gklMaxN int, relax bool, seed int64) (int, bool, error) {
	if ck.Now() {
		return 0, true, nil // cancelled: keep projecting, skip polish
	}
	lvl := h.levels[k]
	topo := h.norm.Topology
	n := lvl.g.n
	timingOK := relax || lvl.g.timingFeasibleOn(cur, topo.Delay)
	if !timingOK {
		// Projection is exact, so these violations came down from the
		// coarser levels (min-merged budgets can over-tighten a coarse
		// problem into infeasibility) — and this level has strictly more
		// freedom to fix them. Repair before polishing: the deterministic
		// greedy sweep first, then the seeded min-conflicts tail-cleaner on
		// a timing-only view of the level (capacity-preserving, and
		// MinConflicts never reads the wires, so the cheap materialization
		// is exact for it).
		loads := make([]int64, len(topo.Capacities))
		for j, i := range cur {
			loads[i] += lvl.g.sizes[j]
		}
		timingOK = repairSweep(ck, lvl.g, lvl.lin, topo, cur, loads) == 0
		if !timingOK && !ck.Stopped() {
			if tp, err := lvl.g.timingOnlyProblem(topo); err == nil {
				timingOK = qbp.MinConflicts(tp, cur, seed, 30*n) == 0
			}
		}
	}
	if n > gfmMaxN || !timingOK {
		// Large level, or residual violations the gain-table refiners
		// refuse: the greedy sweep improves without ever adding a
		// violation.
		loads := make([]int64, len(topo.Capacities))
		for j, i := range cur {
			loads[i] += lvl.g.sizes[j]
		}
		moves := sweepRefine(ck, lvl.g, lvl.lin, topo, cur, loads, passes, relax)
		return moves, ck.Stopped(), nil
	}
	lp, err := h.Problem(k)
	if err != nil {
		return 0, false, err
	}
	moves := 0
	fr, err := fm.Solve(ctx, lp, cur, fm.Options{MaxPasses: passes, RelaxTiming: relax, BoundaryOnly: true})
	if err != nil {
		if ctx.Err() != nil {
			return 0, true, nil
		}
		return 0, false, err
	}
	copy(cur, fr.Assignment)
	moves += fr.Moves
	if fr.Stopped {
		return moves, true, nil
	}
	if n <= gklMaxN {
		kr, err := kl.Solve(ctx, lp, cur, kl.Options{MaxPasses: passes, RelaxTiming: relax, BoundaryOnly: true})
		if err != nil {
			if ctx.Err() != nil {
				return moves, true, nil
			}
			return moves, false, err
		}
		copy(cur, kr.Assignment)
		moves += kr.Swaps
		if kr.Stopped {
			return moves, true, nil
		}
	}
	return moves, false, nil
}

// clusterSeed derives a capacity-feasible initial assignment for the
// coarsest level from its natural ratio-cut clusters (the paper's "first
// type" of partitioning as a seed for the second). Returns nil when
// clustering or placement fails — the flat solver then falls back to its
// seeded random start.
func clusterSeed(p *model.Problem) model.Assignment {
	cls, err := cluster.Clusters(p.Circuit, p.M(), cluster.Options{})
	if err != nil {
		return nil
	}
	a, err := cluster.SeedAssignment(p, cls)
	if err != nil {
		return nil
	}
	return a
}
