package multilevel

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// FuzzProjection drives the hierarchy invariants over randomized
// (seed, n, target) triples: coarsen, draw random coarse assignments at the
// top level, and require exact η accounting, identical loads, and downward
// timing feasibility — the tentpole's bit-exact projection contract under
// fuzzed instance shapes.
func FuzzProjection(f *testing.F) {
	f.Add(int64(1), 200, 30)
	f.Add(int64(7), 500, 64)
	f.Add(int64(13), 150, 10)
	f.Add(int64(99), 800, 200)
	f.Fuzz(func(t *testing.T, seed int64, n, target int) {
		if n < 20 || n > 1200 {
			n = 20 + int(uint(n)%1181)
		}
		if target < 2 || target > n {
			target = 2 + int(uint(target)%uint(n-1))
		}
		wires := 4 * n
		timing := n / 2
		p := testInstance(t, n, wires, timing, seed)
		h, err := Coarsen(p, Options{CoarsenTarget: target})
		if err != nil {
			t.Fatalf("Coarsen(n=%d target=%d seed=%d): %v", n, target, seed, err)
		}
		top := h.Levels() - 1
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		m := p.M()
		for trial := 0; trial < 4; trial++ {
			ak := make(model.Assignment, h.LevelSize(top))
			for j := range ak {
				ak[j] = rng.Intn(m)
			}
			checkProjection(t, h, top, ak)
		}
	})
}
