package multilevel

import (
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/interrupt"
	"repro/internal/model"
)

// sweepRefine polishes an assignment on a level too large for the GFM/GKL
// refiners: deterministic greedy descent passes restricted to the
// boundary-dirty neighborhood. Each pass visits the dirty components in
// ascending index order; a component moves to its best strictly-improving
// admissible partition (capacity always, timing unless relax), and a move
// re-dirties the mover and its neighbors for the next pass. Every applied
// move strictly decreases the level objective — the sweep terminates, keeps
// a feasible assignment feasible, and never increases the violation count
// of an infeasible one (a moved component lands satisfying all of its own
// budgets). Mutates a and loads in place; returns the number of moves.
//
// Cancellation is checked at pass boundaries and amortized inside the
// sweep; stopping mid-pass is safe because every prefix of applied moves is
// already an improvement.
func sweepRefine(ck *interrupt.Checker, g *graph, lin [][]int64, topo *model.Topology, a []int, loads []int64, maxPasses int, relax bool) int {
	m := len(topo.Capacities)
	b := topo.Cost
	d := topo.Delay
	bp := func(x, y int) int64 { return b[x][y] + b[y][x] }

	cur := bitset.New(g.n)
	next := bitset.New(g.n)
	// Seed with the boundary of the incoming (projected) assignment: any
	// component with a wire crossing partitions. Interior components can
	// only gain from linear terms or same-partition diagonal couplings;
	// those are reachable once a neighbor's move dirties them.
	for u := 0; u < g.n; u++ {
		for k := g.rowPtr[u]; k < g.rowPtr[u+1]; k++ {
			if g.weight[k] != 0 && a[g.col[k]] != a[u] {
				cur.Set(u)
				break
			}
		}
	}

	row := make([]int64, m)
	moves := 0
	for pass := 0; pass < maxPasses; pass++ {
		if ck.Now() || !cur.Any() {
			break
		}
		next.Reset()
		passMoves := 0
		cw := cur.Words()
		for wi, wv := range cw {
			for rem := wv; rem != 0; rem &= rem - 1 {
				j := wi<<6 + bits.TrailingZeros64(rem)
				if ck.Stop() {
					return moves
				}
				f := a[j]
				for t := 0; t < m; t++ {
					if lin != nil {
						row[t] = lin[t][j] - lin[f][j]
					} else {
						row[t] = 0
					}
				}
				for k := g.rowPtr[j]; k < g.rowPtr[j+1]; k++ {
					w := g.weight[k]
					if w == 0 {
						continue
					}
					av := a[g.col[k]]
					base := w * bp(f, av)
					for t := 0; t < m; t++ {
						row[t] += w*bp(t, av) - base
					}
				}
				best, bestDelta := -1, int64(0)
				for t := 0; t < m; t++ {
					if t == f || row[t] >= bestDelta {
						continue // strict improvement only, ties to smallest t
					}
					if loads[t]+g.sizes[j] > topo.Capacities[t] {
						continue
					}
					if !relax && !moveTimingOK(g, a, d, j, t) {
						continue
					}
					best, bestDelta = t, row[t]
				}
				if best < 0 {
					continue
				}
				loads[f] -= g.sizes[j]
				loads[best] += g.sizes[j]
				a[j] = best
				moves++
				passMoves++
				next.Set(j)
				for k := g.rowPtr[j]; k < g.rowPtr[j+1]; k++ {
					if g.weight[k] != 0 {
						next.Set(int(g.col[k]))
					}
				}
			}
		}
		if passMoves == 0 {
			break
		}
		cur, next = next, cur
	}
	return moves
}

// repairSweep is the deterministic per-level counterpart of the solver's
// min-conflicts tail-cleaner: projection is exact, so any timing violations
// an assignment carries were already present at the coarser level — but the
// finer level has more freedom to fix them. Passes visit the violated
// components in ascending index order and move each to the
// capacity-admissible partition minimizing (its violation count, its
// objective delta, the partition index) lexicographically, applying the
// move only when the violation count strictly drops. Every applied move
// strictly decreases the level's total violated-pair count, so the sweep
// terminates. Mutates a and loads; returns the remaining violated-pair
// count.
func repairSweep(ck *interrupt.Checker, g *graph, lin [][]int64, topo *model.Topology, a []int, loads []int64) int {
	m := len(topo.Capacities)
	b := topo.Cost
	d := topo.Delay
	bp := func(x, y int) int64 { return b[x][y] + b[y][x] }

	violAt := func(j, at int) int {
		v := 0
		for k := g.rowPtr[j]; k < g.rowPtr[j+1]; k++ {
			md := g.maxDelay[k]
			if md == model.Unconstrained {
				continue
			}
			o := a[g.col[k]]
			if d[at][o] > md || d[o][at] > md {
				v++
			}
		}
		return v
	}
	total := func() int {
		t := 0
		for u := 0; u < g.n; u++ {
			for k := g.rowPtr[u]; k < g.rowPtr[u+1]; k++ {
				v := int(g.col[k])
				md := g.maxDelay[k]
				if v <= u || md == model.Unconstrained {
					continue
				}
				iu, iv := a[u], a[v]
				if d[iu][iv] > md || d[iv][iu] > md {
					t++
				}
			}
		}
		return t
	}

	row := make([]int64, m)
	remaining := total()
	for remaining > 0 {
		if ck.Now() {
			break
		}
		moved := false
		for j := 0; j < g.n; j++ {
			if ck.Stop() {
				return total()
			}
			f := a[j]
			vf := violAt(j, f)
			if vf == 0 {
				continue
			}
			for t := 0; t < m; t++ {
				if lin != nil {
					row[t] = lin[t][j] - lin[f][j]
				} else {
					row[t] = 0
				}
			}
			for k := g.rowPtr[j]; k < g.rowPtr[j+1]; k++ {
				w := g.weight[k]
				if w == 0 {
					continue
				}
				av := a[g.col[k]]
				base := w * bp(f, av)
				for t := 0; t < m; t++ {
					row[t] += w*bp(t, av) - base
				}
			}
			best, bestV, bestD := -1, vf, int64(0)
			for t := 0; t < m; t++ {
				if t == f || loads[t]+g.sizes[j] > topo.Capacities[t] {
					continue
				}
				vt := violAt(j, t)
				if vt < bestV || (vt == bestV && best >= 0 && row[t] < bestD) {
					best, bestV, bestD = t, vt, row[t]
				}
			}
			if best < 0 {
				continue
			}
			loads[f] -= g.sizes[j]
			loads[best] += g.sizes[j]
			a[j] = best
			remaining -= vf - bestV
			moved = true
		}
		if !moved {
			break
		}
	}
	return remaining
}

// moveTimingOK reports whether component j placed on partition t satisfies
// every finite budget against the current positions of its partners (both
// delay directions).
func moveTimingOK(g *graph, a []int, d [][]int64, j, t int) bool {
	for k := g.rowPtr[j]; k < g.rowPtr[j+1]; k++ {
		md := g.maxDelay[k]
		if md == model.Unconstrained {
			continue
		}
		o := a[g.col[k]]
		if d[t][o] > md || d[o][t] > md {
			return false
		}
	}
	return true
}
